// pdceval example: evaluating a tool that does not exist yet.
//
// The paper's second objective: "serve as a unified platform for PDC tool
// developers for identifying the deficiencies and bottlenecks in existing
// systems and for defining the requirements of future systems."
//
// In 1995 the future system was MPI. Here we define an MPI-like cost
// profile -- direct transport like p4, tree collectives, a proper reduction
// primitive, lower fixed overheads -- and race it against the three
// catalogued tools on the TPL primitives.
#include <cstdio>
#include <vector>

#include "mp/api.hpp"
#include "mp/pack.hpp"

using namespace pdc;

namespace {

mp::ToolProfile mpi_prototype(host::PlatformId platform) {
  // Start from p4 (the closest architecture) and tighten it.
  mp::ToolProfile p = mp::tool_profile(mp::ToolKind::P4, platform);
  p.send_fixed = p.send_fixed / 2;  // leaner matching & buffer management
  p.recv_fixed = p.recv_fixed / 2;
  p.send_copies = 0.5;  // single-copy eager path
  p.recv_copies = 0.3;
  p.collective_step = p.collective_step / 2;
  p.broadcast_algo = mp::ToolProfile::BroadcastAlgo::BinomialTree;
  p.reduce_algo = mp::ToolProfile::ReduceAlgo::RecursiveDoubling;
  p.barrier_algo = mp::ToolProfile::BarrierAlgo::Dissemination;
  return p;
}

double pingpong_ms(host::PlatformId platform, const mp::ToolProfile* custom,
                   mp::ToolKind tool, std::int64_t bytes) {
  auto program = [bytes](mp::Communicator& c) -> sim::Task<void> {
    if (c.rank() == 0) {
      co_await c.send(1, 1, mp::make_payload(mp::Bytes(static_cast<std::size_t>(bytes))));
      (void)co_await c.recv(1, 2);
    } else {
      mp::Message m = co_await c.recv(0, 1);
      co_await c.send(0, 2, m.data);
    }
  };
  const auto out = custom
                       ? mp::run_spmd_with_profile(platform, 2, tool, *custom, program)
                       : mp::run_spmd(platform, 2, tool, program);
  return out.elapsed.millis();
}

double reduce_ms(host::PlatformId platform, const mp::ToolProfile* custom, mp::ToolKind tool,
                 int procs) {
  auto program = [](mp::Communicator& c) -> sim::Task<void> {
    std::vector<double> v(10000, 1.0);
    if (c.has_global_sum()) co_await c.global_sum(v);
  };
  const auto out = custom
                       ? mp::run_spmd_with_profile(platform, procs, tool, *custom, program)
                       : mp::run_spmd(platform, procs, tool, program);
  return out.elapsed.millis();
}

}  // namespace

int main() {
  constexpr auto kPlatform = host::PlatformId::AlphaFddi;
  const auto mpi = mpi_prototype(kPlatform);

  std::printf("Racing an MPI-like prototype against the 1995 field on %s\n\n",
              host::to_string(kPlatform));
  std::printf("%-14s %14s %14s %16s\n", "tool", "pingpong 1KB", "pingpong 64KB",
              "reduce 10k dbl x8");
  for (auto tool : mp::all_tools()) {
    std::printf("%-14s %12.3fms %12.3fms %14.3fms\n", mp::to_string(tool),
                pingpong_ms(kPlatform, nullptr, tool, 1024),
                pingpong_ms(kPlatform, nullptr, tool, 65536),
                reduce_ms(kPlatform, nullptr, tool, 8));
  }
  std::printf("%-14s %12.3fms %12.3fms %14.3fms\n", "MPI-prototype",
              pingpong_ms(kPlatform, &mpi, mp::ToolKind::P4, 1024),
              pingpong_ms(kPlatform, &mpi, mp::ToolKind::P4, 65536),
              reduce_ms(kPlatform, &mpi, mp::ToolKind::P4, 8));

  std::printf("\n(PVM shows 0ms for reduce: no global operation -- exactly the gap the\n"
              " prototype fills. This is the methodology used as a design tool.)\n");
  return 0;
}
