// pdceval example: the paper's headline use case -- "assist users in
// evaluating the suitability of any particular system to their needs".
//
// Three audiences evaluate the same three tools on the same cluster; the
// weight factors (the paper's Section 2 mechanism) produce three different
// recommendations.
#include <cstdio>

#include "eval/methodology.hpp"

using namespace pdc;

namespace {

void run_profile(const char* who, eval::EvaluationConfig cfg) {
  std::printf("%s (TPL x%.1f, APL x%.1f, ADL x%.1f on %s, %d procs)\n", who,
              cfg.level_weights.tpl, cfg.level_weights.apl, cfg.level_weights.adl,
              host::to_string(cfg.platform), cfg.procs);
  std::printf("  %-10s %8s %8s %8s %9s\n", "tool", "TPL", "APL", "ADL", "overall");
  for (const auto& e : eval::evaluate_tools(cfg)) {
    std::printf("  %-10s %8.3f %8.3f %8.3f %9.3f\n", mp::to_string(e.tool), e.tpl_score,
                e.apl_score, e.adl_score, e.overall);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Multi-level tool selection with audience weight factors\n");
  std::printf("(scores normalised to the best tool per level; 1.000 = best)\n\n");

  // 1. A performance engineer: only runtime matters.
  eval::EvaluationConfig perf;
  perf.platform = host::PlatformId::AlphaFddi;
  perf.procs = 8;
  perf.level_weights = {.tpl = 2.0, .apl = 3.0, .adl = 0.5};
  run_profile("Performance engineer", perf);

  // 2. A course instructor: students must learn and debug quickly.
  eval::EvaluationConfig teaching;
  teaching.platform = host::PlatformId::SunEthernet;
  teaching.procs = 4;
  teaching.level_weights = {.tpl = 0.5, .apl = 1.0, .adl = 3.0};
  for (auto& [c, w] : teaching.adl_weights.weights) {
    if (c == eval::Criterion::EaseOfProgramming || c == eval::Criterion::DebuggingSupport) {
      w = 4.0;
    }
  }
  run_profile("Course instructor", teaching);

  // 3. A lab running WAN experiments: balanced, on NYNET.
  eval::EvaluationConfig wan;
  wan.platform = host::PlatformId::SunAtmWan;
  wan.procs = 4;
  run_profile("WAN research lab", wan);

  std::printf("Different weights, different winners -- the methodology's point.\n");
  return 0;
}
