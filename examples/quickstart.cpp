// pdceval quickstart: write one message-passing program, run it unchanged
// under all three 1995 tools on two platforms, and read the simulated
// clock.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <numeric>
#include <vector>

#include "mp/api.hpp"
#include "mp/pack.hpp"

using namespace pdc;

namespace {

// A tiny SPMD program: every rank contributes its rank-stamped vector to
// rank 0, which replies with the element-wise totals.
sim::Task<void> gather_and_reply(mp::Communicator& comm) {
  constexpr int kTagUp = 1, kTagDown = 2;
  std::vector<std::int32_t> mine(1024, comm.rank() + 1);

  if (comm.rank() == 0) {
    std::vector<std::int32_t> totals = mine;
    for (int r = 1; r < comm.size(); ++r) {
      mp::Message m = co_await comm.recv(mp::kAnySource, kTagUp);
      const auto v = mp::unpack_vector<std::int32_t>(*m.data);
      for (std::size_t i = 0; i < totals.size(); ++i) totals[i] += v[i];
    }
    mp::Bytes reply = *mp::pack_vector(totals);
    co_await comm.broadcast(0, reply, kTagDown);
  } else {
    co_await comm.send(0, kTagUp, mp::pack_vector(mine));
    mp::Bytes reply;
    co_await comm.broadcast(0, reply, kTagDown);
    const auto totals = mp::unpack_vector<std::int32_t>(reply);
    // Every rank now holds sum(1..P) in each slot.
    (void)totals;
  }
}

}  // namespace

int main() {
  std::printf("pdceval quickstart: one program, three tools, two platforms\n\n");
  std::printf("%-22s %-10s %10s %10s %12s\n", "platform", "tool", "time(ms)", "messages",
              "bytes moved");
  for (auto platform : {host::PlatformId::SunEthernet, host::PlatformId::AlphaFddi}) {
    for (auto tool : mp::all_tools()) {
      const auto out = mp::run_spmd(platform, 4, tool, gather_and_reply);
      std::printf("%-22s %-10s %10.3f %10llu %12llu\n", host::to_string(platform),
                  mp::to_string(tool), out.elapsed.millis(),
                  static_cast<unsigned long long>(out.messages),
                  static_cast<unsigned long long>(out.payload_bytes));
    }
  }
  std::printf("\nSame program, same data -- the differences are the tools'\n"
              "architectures: daemon routing, packetisation, collective algorithms.\n");
  return 0;
}
