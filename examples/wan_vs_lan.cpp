// pdceval example: the paper's WAN feasibility study -- "it is feasible to
// build distributed computing systems across an ATM WAN and their
// performance is comparable to those based on LANs" (Section 3.2.1),
// "and can outperform LANs if higher speed network technology such as ATM
// is used" (Section 3.3).
//
// We reproduce that comparison: the four applications on 4 SUNs, Ethernet
// LAN vs NYNET ATM WAN, with p4.
#include <cstdio>

#include "eval/apl.hpp"
#include "eval/tpl.hpp"

using namespace pdc;

int main() {
  std::printf("Is wide-area distributed computing feasible? (paper Section 3.2/3.3)\n\n");

  std::printf("Raw snd/recv round trip, 2 SUNs, p4 (ms):\n");
  std::printf("%8s %12s %12s %12s\n", "KB", "Ethernet", "ATM-LAN", "ATM-WAN");
  for (std::int64_t bytes : {1024LL, 16384LL, 65536LL}) {
    std::printf("%8lld %12.2f %12.2f %12.2f\n", static_cast<long long>(bytes / 1024),
                eval::sendrecv_ms(host::PlatformId::SunEthernet, mp::ToolKind::P4, bytes),
                eval::sendrecv_ms(host::PlatformId::SunAtmLan, mp::ToolKind::P4, bytes),
                eval::sendrecv_ms(host::PlatformId::SunAtmWan, mp::ToolKind::P4, bytes));
  }

  std::printf("\nApplications, 4 SUNs, p4 (seconds):\n");
  std::printf("%-12s %12s %12s %10s\n", "app", "Ethernet", "ATM-WAN", "speedup");
  for (eval::AppKind app : eval::all_apps()) {
    const double lan = eval::app_time_s(host::PlatformId::SunEthernet, mp::ToolKind::P4, app, 4);
    const double wan = eval::app_time_s(host::PlatformId::SunAtmWan, mp::ToolKind::P4, app, 4);
    std::printf("%-12s %12.3f %12.3f %9.2fx\n", eval::to_string(app), lan, wan, lan / wan);
  }
  std::printf("\n(ATM-WAN nodes are 40 MHz IPXs vs the Ethernet cluster's 33 MHz ELCs;\n"
              " the communication-heavy apps gain far more than the CPU ratio alone.)\n");
  std::printf("\nConclusion (matches the paper): a high-speed WAN beats a slow LAN --\n"
              "distance matters less than the network technology and the software on it.\n");
  return 0;
}
