// pdceval -- trace subsystem unit tests: sink ring mechanics, analyses over
// hand-built record streams, exporters and the JSON shape validator. These
// run in every build flavour -- they feed records into the Sink directly,
// so they need no compiled-in probes.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "trace/analyze.hpp"
#include "trace/export.hpp"
#include "trace/probe.hpp"

namespace trace = pdc::trace;

namespace {

trace::Record rec(trace::Kind kind, std::int64_t t, int rank) {
  trace::Record r;
  r.kind = kind;
  r.t_ns = t;
  r.rank = static_cast<std::int16_t>(rank);
  return r;
}

}  // namespace

// -- Sink --------------------------------------------------------------------

TEST(TraceSink, CapacityRoundsUpToPowerOfTwo) {
  trace::Sink s(5);
  EXPECT_EQ(s.capacity(), 8u);
  trace::Sink s2(1024);
  EXPECT_EQ(s2.capacity(), 1024u);
}

TEST(TraceSink, WraparoundKeepsMostRecentInOrderAndCountsDrops) {
  trace::Sink s(4, trace::kAllMask);
  for (int i = 0; i < 7; ++i) s.emit(rec(trace::Kind::Compute, i, 0));
  EXPECT_EQ(s.stats().emitted, 7u);
  EXPECT_EQ(s.stats().dropped, 3u);  // flight-recorder mode: oldest overwritten
  EXPECT_EQ(s.size(), 4u);
  const auto snap = s.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(snap[static_cast<std::size_t>(i)].t_ns, 3 + i);
}

TEST(TraceSink, SaturationAtTinyCapacityReportsDrops) {
  trace::Sink s(1, trace::kAllMask);
  ASSERT_EQ(s.capacity(), 1u);
  for (int i = 0; i < 100; ++i) s.emit(rec(trace::Kind::Compute, i, 0));
  EXPECT_EQ(s.stats().emitted, 100u);
  EXPECT_EQ(s.stats().dropped, 99u);
  const auto snap = s.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].t_ns, 99);  // the survivor is the newest record
}

TEST(TraceSink, CategoryMaskFiltersAtEmit) {
  trace::Sink s(16, trace::kCatMp);  // Mp only
  s.emit(rec(trace::Kind::Compute, 1, 0));        // Mp: kept
  s.emit(rec(trace::Kind::Frame, 2, 0));          // Net: filtered
  s.emit(rec(trace::Kind::Retransmit, 3, 0));     // Transport: filtered
  s.emit(rec(trace::Kind::EventDispatch, 4, 0));  // Sim: filtered
  EXPECT_EQ(s.stats().emitted, 1u);
  EXPECT_EQ(s.size(), 1u);
}

TEST(TraceSink, DefaultMaskExcludesSimAndHostLanes) {
  trace::Sink s(16);  // kDefaultMask
  s.emit(rec(trace::Kind::EventDispatch, 1, 0));  // per-event firehose: opt-in
  s.emit(rec(trace::Kind::HostWork, 0, 0));       // wall clock: opt-in
  s.emit(rec(trace::Kind::SendBegin, 2, 0));
  s.emit(rec(trace::Kind::Frame, 3, 0));
  s.emit(rec(trace::Kind::Retransmit, 4, 0));
  EXPECT_EQ(s.size(), 3u);
}

TEST(TraceSink, ClearKeepsCapacityAndMask) {
  trace::Sink s(8, trace::kAllMask);
  for (int i = 0; i < 20; ++i) s.emit(rec(trace::Kind::Compute, i, 0));
  s.clear();
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.stats().emitted, 0u);
  EXPECT_EQ(s.capacity(), 8u);
  s.emit(rec(trace::Kind::Compute, 0, 0));
  EXPECT_EQ(s.size(), 1u);
}

TEST(TraceSink, ScopedCaptureInstallsAndRestoresNested) {
  EXPECT_FALSE(trace::active());
  trace::emit(rec(trace::Kind::Compute, 0, 0));  // no sink: silently ignored
  trace::Sink outer(16, trace::kAllMask);
  trace::Sink inner(16, trace::kAllMask);
  {
    const trace::ScopedCapture a(outer);
    EXPECT_EQ(trace::current(), &outer);
    {
      const trace::ScopedCapture b(inner);
      EXPECT_EQ(trace::current(), &inner);
      trace::emit(rec(trace::Kind::Compute, 1, 0));
    }
    EXPECT_EQ(trace::current(), &outer);
    trace::emit(rec(trace::Kind::Compute, 2, 0));
  }
  EXPECT_FALSE(trace::active());
  EXPECT_EQ(inner.size(), 1u);
  EXPECT_EQ(outer.size(), 1u);
}

// -- analyses over a hand-built 3-rank DAG -----------------------------------
//
// Rank 0 computes then sends msg 1 to rank 1; rank 1 receives it, computes,
// and sends msg 2 to rank 2; rank 2 was waiting the whole time. The longest
// recv-after-send chain therefore spans all three ranks and covers the full
// makespan (800 ns) exactly.
namespace {

std::vector<trace::Record> three_rank_dag() {
  using K = trace::Kind;
  std::vector<trace::Record> rs;
  auto add = [&](K kind, std::int64_t t, int rank, int peer, std::uint64_t id,
                 std::int64_t bytes, std::int64_t aux0, std::int64_t aux1) {
    trace::Record r;
    r.kind = kind;
    r.t_ns = t;
    r.rank = static_cast<std::int16_t>(rank);
    r.peer = static_cast<std::int16_t>(peer);
    r.id = id;
    r.bytes = bytes;
    r.aux0 = aux0;
    r.aux1 = aux1;
    r.tag = 7;
    rs.push_back(r);
  };
  add(K::Compute, 0, 0, -1, 0, 0, /*duration*/ 100, 0);
  add(K::SendBegin, 100, 0, 1, 1, 64, 0, 0);
  add(K::SendEnd, 200, 0, 1, 1, 64, 0, /*begin*/ 100);
  add(K::MsgWire, 200, 0, 1, 1, 64, /*arrival*/ 300, /*attempt*/ 1);
  add(K::Frame, 200, 0, 1, 0, 80, /*svc start*/ 210, /*svc end*/ 290);
  add(K::RecvEnd, 350, 1, 0, 1, 64, /*match*/ 320, /*begin*/ 50);
  add(K::Compute, 350, 1, -1, 0, 0, 150, 0);
  add(K::SendBegin, 500, 1, 2, 2, 64, 0, 0);
  add(K::SendEnd, 600, 1, 2, 2, 64, 0, 500);
  add(K::MsgWire, 600, 1, 2, 2, 64, 700, 1);
  add(K::Frame, 600, 1, 2, 0, 90, 600, 690);
  add(K::RecvEnd, 800, 2, 1, 2, 64, 750, 0);
  return rs;
}

}  // namespace

TEST(TraceAnalyze, MakespanIsLastTracedOccurrence) {
  EXPECT_EQ(trace::makespan_ns(three_rank_dag()), 800);
  EXPECT_EQ(trace::makespan_ns({}), 0);
}

TEST(TraceAnalyze, CriticalPathOnKnownDagCoversFullMakespan) {
  const auto records = three_rank_dag();
  const auto cp = trace::critical_path(records);
  EXPECT_EQ(cp.makespan_ns, 800);
  EXPECT_EQ(cp.covered_ns, 800);  // chain explains the entire run
  EXPECT_DOUBLE_EQ(cp.coverage(), 1.0);
  EXPECT_EQ(cp.compute_ns, 250);  // 100 on rank 0 + 150 on rank 1
  EXPECT_EQ(cp.wire_ns, 200);     // two 100 ns wire hops
  EXPECT_EQ(cp.overhead_ns, 350);

  // Chronological, disjoint, alternating through the message chain.
  ASSERT_EQ(cp.segments.size(), 10u);
  using SK = trace::PathSegment::Kind;
  const SK expect_kinds[] = {SK::Compute,  SK::Overhead, SK::Wire,    SK::Overhead,
                             SK::Overhead, SK::Compute,  SK::Overhead, SK::Wire,
                             SK::Overhead, SK::Overhead};
  const int expect_rank[] = {0, 0, 0, 1, 1, 1, 1, 1, 2, 2};
  std::int64_t prev_end = 0;
  for (std::size_t i = 0; i < cp.segments.size(); ++i) {
    EXPECT_EQ(cp.segments[i].kind, expect_kinds[i]) << "segment " << i;
    EXPECT_EQ(cp.segments[i].rank, expect_rank[i]) << "segment " << i;
    EXPECT_EQ(cp.segments[i].t0_ns, prev_end) << "segment " << i;  // gapless here
    prev_end = cp.segments[i].t1_ns;
  }
  EXPECT_EQ(prev_end, 800);

  const auto top = cp.top(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_GE(top[0].duration_ns(), top[1].duration_ns());
  EXPECT_GE(top[1].duration_ns(), top[2].duration_ns());
  EXPECT_EQ(top[0].duration_ns(), 150);  // rank 1's compute span is the longest
}

TEST(TraceAnalyze, BlockingBreakdownAccountsPerRank) {
  const auto b = trace::blocking_breakdown(three_rank_dag());
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(b[0].compute_ns, 100);
  EXPECT_EQ(b[0].send_ns, 100);
  EXPECT_EQ(b[0].sends, 1);
  EXPECT_EQ(b[0].recvs, 0);
  EXPECT_EQ(b[1].compute_ns, 150);
  EXPECT_EQ(b[1].send_ns, 100);
  EXPECT_EQ(b[1].recv_wait_ns, 270);  // posted at 50, matched at 320
  EXPECT_EQ(b[1].unpack_ns, 30);
  EXPECT_EQ(b[1].queue_ns, 0);   // rank 1's frame started service immediately
  EXPECT_EQ(b[1].wire_ns, 90);
  EXPECT_EQ(b[2].recv_wait_ns, 750);
  EXPECT_EQ(b[2].unpack_ns, 50);
  EXPECT_EQ(b[2].other_ns, 0);  // 750 + 50 == makespan
  EXPECT_EQ(b[0].queue_ns, 10);  // frame enqueued at 200, serviced at 210
}

TEST(TraceAnalyze, CommMatrixSumsBytesAndCounts) {
  const auto m = trace::comm_matrix(three_rank_dag());
  ASSERT_EQ(m.p, 3);
  EXPECT_EQ(m.bytes_at(0, 1), 64);
  EXPECT_EQ(m.bytes_at(1, 2), 64);
  EXPECT_EQ(m.bytes_at(0, 2), 0);
  EXPECT_EQ(m.msgs_at(0, 1), 1);
  EXPECT_EQ(m.total_bytes(), 128);
  EXPECT_EQ(m.total_msgs(), 2);
}

TEST(TraceAnalyze, LinkUtilizationPerDirectedLink) {
  const auto u = trace::link_utilization(three_rank_dag(), 8);
  EXPECT_EQ(u.span_ns, 800);
  ASSERT_EQ(u.links.size(), 2u);  // 0->1 and 1->2, ordered
  EXPECT_EQ(u.links[0].src, 0);
  EXPECT_EQ(u.links[0].dst, 1);
  EXPECT_EQ(u.links[0].busy_ns, 80);
  EXPECT_EQ(u.links[0].queue_ns, 10);
  EXPECT_EQ(u.links[0].frames, 1);
  EXPECT_EQ(u.links[0].wire_bytes, 80);
  EXPECT_EQ(u.links[1].busy_ns, 90);
  EXPECT_DOUBLE_EQ(u.utilization(u.links[0]), 0.1);
  // Timeline buckets sum to the busy total.
  std::int64_t bucket_sum = 0;
  for (auto v : u.links[0].timeline) bucket_sum += v;
  EXPECT_EQ(bucket_sum, u.links[0].busy_ns);
}

TEST(TraceAnalyze, RetransmitAndDropCountsLandOnTheRightRank) {
  auto records = three_rank_dag();
  trace::Record r;
  r.kind = trace::Kind::Retransmit;
  r.t_ns = 400;
  r.rank = 0;
  r.peer = 1;
  records.push_back(r);
  r.kind = trace::Kind::CorruptReject;
  r.rank = 1;
  r.peer = 0;
  records.push_back(r);
  const auto b = trace::blocking_breakdown(records);
  EXPECT_EQ(b[0].retransmits, 1);
  EXPECT_EQ(b[1].corrupt_rejected, 1);
  EXPECT_EQ(b[2].retransmits, 0);
}

TEST(TraceAnalyze, CriticalPathIsEmptyOnEmptyStream) {
  const auto cp = trace::critical_path({});
  EXPECT_EQ(cp.makespan_ns, 0);
  EXPECT_TRUE(cp.segments.empty());
  EXPECT_DOUBLE_EQ(cp.coverage(), 0.0);
}

TEST(TraceAnalyze, TextReportMentionsEverySection) {
  const std::string report = trace::text_report(three_rank_dag());
  EXPECT_NE(report.find("blocking breakdown"), std::string::npos);
  EXPECT_NE(report.find("communication matrix"), std::string::npos);
  EXPECT_NE(report.find("link utilisation"), std::string::npos);
  EXPECT_NE(report.find("critical path"), std::string::npos);
  EXPECT_NE(report.find("timeline"), std::string::npos);
}

// -- exporters ---------------------------------------------------------------

TEST(TraceExport, PerfettoJsonValidatesAndPairsFlows) {
  const std::string json = trace::export_perfetto_json(three_rank_dag());
  const auto res = trace::validate_perfetto_json(json);
  EXPECT_TRUE(res.ok) << res.error;
  EXPECT_GT(res.events, 0u);
  EXPECT_EQ(res.flows, 4u);  // two messages, an "s" and an "f" each
}

TEST(TraceExport, EmptyStreamStillExportsValidJson) {
  const std::string json = trace::export_perfetto_json({});
  const auto res = trace::validate_perfetto_json(json);
  EXPECT_TRUE(res.ok) << res.error;
}

TEST(TraceExport, CsvHasHeaderPlusOneRowPerRecord) {
  const auto records = three_rank_dag();
  const std::string csv = trace::export_csv(records);
  std::size_t lines = 0;
  for (char c : csv) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, records.size() + 1);
  EXPECT_EQ(csv.rfind("kind,t_ns,rank,peer,tag,bytes,id,aux0,aux1\n", 0), 0u);
  EXPECT_NE(csv.find("send_begin,100,0,1,7,64,1,0,0"), std::string::npos);
}

TEST(TraceExport, ValidatorRejectsMalformedInput) {
  EXPECT_FALSE(trace::validate_perfetto_json("").ok);
  EXPECT_FALSE(trace::validate_perfetto_json("{").ok);
  EXPECT_FALSE(trace::validate_perfetto_json("[]").ok);                  // not an object
  EXPECT_FALSE(trace::validate_perfetto_json("{\"a\":1}").ok);           // no traceEvents
  EXPECT_FALSE(trace::validate_perfetto_json("{\"traceEvents\":1}").ok);  // wrong type
  // Slice without ts/dur.
  EXPECT_FALSE(trace::validate_perfetto_json("{\"traceEvents\":[{\"ph\":\"X\"}]}").ok);
  // Flow start with no matching finish.
  EXPECT_FALSE(trace::validate_perfetto_json(
                   "{\"traceEvents\":[{\"ph\":\"s\",\"ts\":1,\"id\":9}]}")
                   .ok);
  // Trailing garbage.
  EXPECT_FALSE(trace::validate_perfetto_json("{\"traceEvents\":[]} x").ok);
  // Minimal valid shapes pass.
  EXPECT_TRUE(trace::validate_perfetto_json("{\"traceEvents\":[]}").ok);
  EXPECT_TRUE(trace::validate_perfetto_json(
                  "{\"traceEvents\":[{\"ph\":\"M\",\"name\":\"process_name\"}]}")
                  .ok);
}

TEST(TraceRecord, CategoryCoversEveryKindAndStaysOneCacheLine) {
  static_assert(sizeof(trace::Record) <= 56);
  EXPECT_EQ(trace::category(trace::Kind::SendBegin), trace::kCatMp);
  EXPECT_EQ(trace::category(trace::Kind::Frame), trace::kCatNet);
  EXPECT_EQ(trace::category(trace::Kind::DupDiscard), trace::kCatTransport);
  EXPECT_EQ(trace::category(trace::Kind::EventDispatch), trace::kCatSim);
  EXPECT_EQ(trace::category(trace::Kind::HostWork), trace::kCatHost);
  EXPECT_STREQ(trace::to_string(trace::Kind::MsgWire), "msg_wire");
}
