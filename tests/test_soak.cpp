// Property-based soak suite (the tentpole's proof): sweep seeds x fault
// plans x tools x apps and assert the distributed result still equals the
// serial reference, that replaying a (seed, FaultPlan) is bit-identical,
// and that a zero-fault plan leaves app timings byte-identical to the
// plain-wire API.
//
// Tiers: the default (CI) tier runs one seed per cell; set PDC_SOAK=full
// for the extended sweep (more seeds, more fault shapes, more procs).
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "apps/fft/parallel.hpp"
#include "apps/jpeg/parallel.hpp"
#include "apps/mc/montecarlo.hpp"
#include "apps/sort/psrs.hpp"
#include "eval/apl.hpp"
#include "fault/plan.hpp"
#include "mp/api.hpp"

namespace pdc {
namespace {

using eval::AppKind;
using fault::FaultPlan;
using host::PlatformId;
using mp::ToolKind;

bool full_tier() {
  const char* env = std::getenv("PDC_SOAK");
  return env != nullptr && std::string_view(env) == "full";
}

std::vector<std::uint64_t> soak_seeds() {
  if (full_tier()) return {1, 2, 3, 4, 5};
  return {1};
}

/// Fault shapes to soak under. The first is the acceptance-criteria shape:
/// 20% drop + 5% corruption on every link.
std::vector<FaultPlan> soak_plans(std::uint64_t seed) {
  std::vector<FaultPlan> plans;
  plans.push_back(FaultPlan::uniform(0.20, 0.05, 0.0, 0.0, {}, seed));
  if (full_tier()) {
    plans.push_back(FaultPlan::uniform(0.05, 0.0, 0.2, 0.3, sim::milliseconds(2), seed + 10));
    plans.push_back(FaultPlan::uniform(0.10, 0.02, 0.1, 0.1, sim::milliseconds(1), seed + 20));
  }
  return plans;
}

std::vector<int> soak_procs() {
  if (full_tier()) return {2, 4};
  return {2};
}

/// Run `app` distributed on (platform, tool, procs) under `plan`, assert
/// the result equals the serial reference, and return the outcome.
mp::RunOutcome run_and_check(PlatformId platform, ToolKind tool, AppKind app, int procs,
                             const FaultPlan& plan, std::uint64_t workload_seed) {
  switch (app) {
    case AppKind::Jpeg: {
      const auto img = apps::jpeg::make_test_image(32, 32, workload_seed);
      const auto expected = apps::jpeg::compress(img, 50);
      std::vector<std::int16_t> got;
      auto program = [&](mp::Communicator& c) -> sim::Task<void> {
        co_await apps::jpeg::compress_distributed(c, img, 50, c.rank() == 0 ? &got : nullptr);
      };
      const auto out = mp::run_spmd_faulty(platform, procs, tool, plan, program);
      EXPECT_EQ(got, expected);
      return out;
    }
    case AppKind::Fft2d: {
      const auto expected =
          apps::fft::fft2d_serial(apps::fft::make_test_signal(16, workload_seed));
      apps::fft::Matrix got;
      auto program = [&](mp::Communicator& c) -> sim::Task<void> {
        co_await apps::fft::fft2d_distributed(c, 16, workload_seed,
                                              c.rank() == 0 ? &got : nullptr);
      };
      const auto out = mp::run_spmd_faulty(platform, procs, tool, plan, program);
      EXPECT_EQ(got.n, 16);
      EXPECT_LT(apps::fft::max_abs_diff(got, expected), 1e-9);
      return out;
    }
    case AppKind::MonteCarlo: {
      const auto expected = apps::mc::integrate_serial(60'000, 4, procs, workload_seed);
      apps::mc::Result got{};
      auto program = [&](mp::Communicator& c) -> sim::Task<void> {
        apps::mc::Result local{};
        co_await apps::mc::integrate_distributed(c, 60'000, 4, workload_seed, &local);
        if (c.rank() == 0) got = local;
      };
      const auto out = mp::run_spmd_faulty(platform, procs, tool, plan, program);
      EXPECT_EQ(got.samples, expected.samples);
      // Serial reduces in a different order; last-ulp tolerance as in test_apps.
      EXPECT_NEAR(got.estimate, expected.estimate, 1e-12);
      return out;
    }
    case AppKind::Psrs: {
      const auto expected = apps::sort::sort_serial(12'000, procs, workload_seed);
      std::vector<std::int32_t> got;
      auto program = [&](mp::Communicator& c) -> sim::Task<void> {
        co_await apps::sort::psrs_distributed(c, 12'000, workload_seed,
                                              c.rank() == 0 ? &got : nullptr);
      };
      const auto out = mp::run_spmd_faulty(platform, procs, tool, plan, program);
      EXPECT_EQ(got, expected);
      return out;
    }
  }
  throw std::logic_error("unknown app");
}

PlatformId platform_for(AppKind app) {
  // Keep one shared-bus and several switched fabrics in rotation.
  switch (app) {
    case AppKind::Jpeg:
      return PlatformId::AlphaFddi;
    case AppKind::Fft2d:
      return PlatformId::Sp1Switch;
    case AppKind::MonteCarlo:
      return PlatformId::SunEthernet;
    case AppKind::Psrs:
      return PlatformId::SunAtmLan;
  }
  return PlatformId::SunEthernet;
}

struct SoakCombo {
  ToolKind tool;
  AppKind app;
};

class FaultSoak : public ::testing::TestWithParam<SoakCombo> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, FaultSoak,
    ::testing::Values(SoakCombo{ToolKind::P4, AppKind::Jpeg},
                      SoakCombo{ToolKind::P4, AppKind::Fft2d},
                      SoakCombo{ToolKind::P4, AppKind::MonteCarlo},
                      SoakCombo{ToolKind::P4, AppKind::Psrs},
                      SoakCombo{ToolKind::Pvm, AppKind::Jpeg},
                      SoakCombo{ToolKind::Pvm, AppKind::Fft2d},
                      SoakCombo{ToolKind::Pvm, AppKind::MonteCarlo},
                      SoakCombo{ToolKind::Pvm, AppKind::Psrs},
                      SoakCombo{ToolKind::Express, AppKind::Jpeg},
                      SoakCombo{ToolKind::Express, AppKind::Fft2d},
                      SoakCombo{ToolKind::Express, AppKind::MonteCarlo},
                      SoakCombo{ToolKind::Express, AppKind::Psrs}),
    [](const auto& info) {
      const char* app = "";
      switch (info.param.app) {
        case AppKind::Jpeg: app = "Jpeg"; break;
        case AppKind::Fft2d: app = "Fft"; break;
        case AppKind::MonteCarlo: app = "Mc"; break;
        case AppKind::Psrs: app = "Psrs"; break;
      }
      return std::string(to_string(info.param.tool)) + "_" + app;
    });

TEST_P(FaultSoak, LossyWireStillMatchesSerialReference) {
  const SoakCombo combo = GetParam();
  std::int64_t total_retransmits = 0;
  for (const std::uint64_t seed : soak_seeds()) {
    for (const auto& plan : soak_plans(seed)) {
      for (const int procs : soak_procs()) {
        const auto out =
            run_and_check(platform_for(combo.app), combo.tool, combo.app, procs, plan, seed + 7);
        total_retransmits += out.transport.retransmits;
        EXPECT_GT(out.injected.frames, 0);
      }
    }
  }
  // 20% drop over a whole app run cannot pass loss-free.
  EXPECT_GT(total_retransmits, 0);
}

TEST_P(FaultSoak, ReplayIsBitIdentical) {
  const SoakCombo combo = GetParam();
  const FaultPlan plan =
      FaultPlan::uniform(0.15, 0.03, 0.05, 0.1, sim::milliseconds(1), 0x50AC);
  const auto a = run_and_check(platform_for(combo.app), combo.tool, combo.app, 2, plan, 11);
  const auto b = run_and_check(platform_for(combo.app), combo.tool, combo.app, 2, plan, 11);
  EXPECT_EQ(a.elapsed.ns, b.elapsed.ns);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.transport, b.transport);
  EXPECT_EQ(a.injected.drops, b.injected.drops);
  EXPECT_EQ(a.injected.corruptions, b.injected.corruptions);
  EXPECT_EQ(a.injected.duplicates, b.injected.duplicates);
}

TEST_P(FaultSoak, ZeroFaultPlanIsByteIdenticalToPlainWire) {
  const SoakCombo combo = GetParam();
  // app_time_s dispatches on plan.enabled(): a dead plan must reproduce
  // the plain-wire timing to the last bit.
  const double plain = eval::app_time_s(platform_for(combo.app), combo.tool, combo.app, 2);
  const double dead_plan =
      eval::app_time_s(platform_for(combo.app), combo.tool, combo.app, 2, {}, FaultPlan{});
  EXPECT_EQ(plain, dead_plan);
}

}  // namespace
}  // namespace pdc
