// Tests for the message-passing layer: point-to-point semantics per tool,
// collectives correctness, daemon routing, pack/unpack, and the SPMD driver.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <numeric>
#include <vector>

#include "mp/api.hpp"
#include "mp/buffer_pool.hpp"
#include "mp/communicator.hpp"
#include "mp/native.hpp"
#include "mp/pack.hpp"

namespace pdc::mp {
namespace {

using host::PlatformId;

class ToolFixture : public ::testing::TestWithParam<ToolKind> {};

INSTANTIATE_TEST_SUITE_P(AllTools, ToolFixture,
                         ::testing::Values(ToolKind::P4, ToolKind::Pvm, ToolKind::Express),
                         [](const auto& info) { return std::string(to_string(info.param)); });

TEST(Pack, RoundTripVectors) {
  std::vector<double> v{1.5, -2.25, 1e100};
  auto p = pack_vector(v);
  EXPECT_EQ(unpack_vector<double>(*p), v);

  Packer pk;
  pk.put<std::int32_t>(7);
  pk.put_span<std::int64_t>(std::vector<std::int64_t>{10, 20, 30});
  pk.put<double>(2.5);
  auto payload = pk.finish();
  Unpacker u(*payload);
  EXPECT_EQ(u.get<std::int32_t>(), 7);
  EXPECT_EQ(u.get_vector<std::int64_t>(), (std::vector<std::int64_t>{10, 20, 30}));
  EXPECT_DOUBLE_EQ(u.get<double>(), 2.5);
  EXPECT_EQ(u.remaining(), 0u);
}

TEST(Pack, UnpackerRejectsTruncation) {
  Bytes b(3);
  Unpacker u(b);
  EXPECT_THROW((void)u.get<std::int64_t>(), std::out_of_range);
  EXPECT_THROW(unpack_vector<double>(b), std::invalid_argument);
}

TEST_P(ToolFixture, PingPongDeliversPayloadIntact) {
  std::vector<std::int32_t> echoed;
  auto program = [&echoed](Communicator& c) -> sim::Task<void> {
    if (c.rank() == 0) {
      std::vector<std::int32_t> data(1000);
      std::iota(data.begin(), data.end(), 0);
      co_await c.send(1, 17, pack_vector(data));
      Message m = co_await c.recv(1, 18);
      echoed = unpack_vector<std::int32_t>(*m.data);
    } else {
      Message m = co_await c.recv(0, 17);
      co_await c.send(0, 18, m.data);
    }
  };
  auto out = run_spmd(PlatformId::SunEthernet, 2, GetParam(), program);
  ASSERT_EQ(echoed.size(), 1000u);
  EXPECT_EQ(echoed[999], 999);
  EXPECT_GT(out.elapsed, sim::Duration::zero());
  EXPECT_GE(out.messages, 2u);
}

TEST_P(ToolFixture, TagAndSourceMatching) {
  std::vector<int> order;
  auto program = [&order](Communicator& c) -> sim::Task<void> {
    if (c.rank() == 0) {
      co_await c.send(1, 5, empty_payload());
      co_await c.send(1, 6, empty_payload());
    } else if (c.rank() == 2) {
      co_await c.send(1, 5, empty_payload());
    } else {
      // Receive tag 6 first even though tag 5 arrives first.
      Message a = co_await c.recv(kAnySource, 6);
      order.push_back(a.tag);
      Message b = co_await c.recv(2, 5);
      order.push_back(b.src);
      Message d = co_await c.recv(0, kAnyTag);
      order.push_back(d.tag);
    }
  };
  run_spmd(PlatformId::AlphaFddi, 3, GetParam(), program);
  EXPECT_EQ(order, (std::vector<int>{6, 2, 5}));
}

TEST_P(ToolFixture, BroadcastReachesEveryRank) {
  constexpr int kProcs = 7;  // deliberately not a power of two
  std::vector<std::vector<std::int32_t>> got(kProcs);
  auto program = [&got](Communicator& c) -> sim::Task<void> {
    Bytes data;
    if (c.rank() == 2) {
      std::vector<std::int32_t> v{1, 2, 3, 4, 5};
      data = *pack_vector(v);
    }
    co_await c.broadcast(2, data, 99);
    got[static_cast<std::size_t>(c.rank())] = unpack_vector<std::int32_t>(data);
  };
  run_spmd(PlatformId::AlphaFddi, kProcs, GetParam(), program);
  for (const auto& v : got) EXPECT_EQ(v, (std::vector<std::int32_t>{1, 2, 3, 4, 5}));
}

TEST_P(ToolFixture, BarrierSynchronises) {
  constexpr int kProcs = 5;
  std::vector<double> release_times(kProcs, -1);
  auto program = [&release_times](Communicator& c) -> sim::Task<void> {
    // Rank r works r*10 ms, then everyone meets at the barrier.
    co_await c.sim().delay(sim::milliseconds(10) * c.rank());
    co_await c.barrier();
    release_times[static_cast<std::size_t>(c.rank())] = c.sim().now().seconds();
  };
  run_spmd(PlatformId::AlphaFddi, kProcs, GetParam(), program);
  // Nobody leaves the barrier before the slowest rank arrived (40 ms).
  for (double t : release_times) EXPECT_GE(t, 0.040);
}

TEST_P(ToolFixture, BarrierRepeatsBackToBack) {
  auto program = [](Communicator& c) -> sim::Task<void> {
    for (int i = 0; i < 5; ++i) co_await c.barrier();
  };
  auto out = run_spmd(PlatformId::SunAtmLan, 4, GetParam(), program);
  EXPECT_GT(out.elapsed, sim::Duration::zero());
}

TEST_P(ToolFixture, SelfSendLoopsBack) {
  bool ok = false;
  auto program = [&ok](Communicator& c) -> sim::Task<void> {
    if (c.rank() == 0) {
      std::vector<double> v{3.25};
      co_await c.send(0, 1, pack_vector(v));
      Message m = co_await c.recv(0, 1);
      ok = unpack_vector<double>(*m.data)[0] == 3.25;
    }
    co_return;
  };
  run_spmd(PlatformId::SunEthernet, 2, GetParam(), program);
  EXPECT_TRUE(ok);
}

TEST(GlobalSum, P4AndExpressComputeExactSums) {
  for (ToolKind kind : {ToolKind::P4, ToolKind::Express}) {
    for (int procs : {2, 3, 4, 7, 8}) {
      std::vector<std::vector<double>> results(static_cast<std::size_t>(procs));
      auto program = [&results, procs](Communicator& c) -> sim::Task<void> {
        std::vector<double> v(16);
        for (std::size_t i = 0; i < v.size(); ++i) {
          v[i] = static_cast<double>(c.rank() + 1) * static_cast<double>(i);
        }
        co_await c.global_sum(v);
        results[static_cast<std::size_t>(c.rank())] = v;
        (void)procs;
      };
      run_spmd(PlatformId::AlphaFddi, procs, kind, program);
      const double rank_sum = procs * (procs + 1) / 2.0;
      for (const auto& v : results) {
        ASSERT_EQ(v.size(), 16u);
        for (std::size_t i = 0; i < v.size(); ++i) {
          EXPECT_DOUBLE_EQ(v[i], rank_sum * static_cast<double>(i))
              << to_string(kind) << " procs=" << procs << " i=" << i;
        }
      }
    }
  }
}

TEST(GlobalSum, IntVectorsSupported) {
  std::vector<std::int32_t> result;
  auto program = [&result](Communicator& c) -> sim::Task<void> {
    std::vector<std::int32_t> v{1, 2, 3};
    co_await c.global_sum(v);
    if (c.rank() == 0) result = v;
  };
  run_spmd(PlatformId::SunEthernet, 4, ToolKind::P4, program);
  EXPECT_EQ(result, (std::vector<std::int32_t>{4, 8, 12}));
}

TEST(GlobalSum, PvmLacksGlobalOps) {
  // As in the paper: "PVM does not support any global operation".
  auto program = [](Communicator& c) -> sim::Task<void> {
    std::vector<double> v{1.0};
    co_await c.global_sum(v);
  };
  EXPECT_THROW(run_spmd(PlatformId::SunEthernet, 2, ToolKind::Pvm, program), ToolUnsupported);
}

TEST(Semantics, PvmSendIsAsynchronousP4Blocks) {
  // Measure the sender-side cost of one 64 KB send with no receiver
  // processing: PVM's fire-and-forget returns well before p4's blocking
  // send on the same platform.
  auto sender_cost = [](ToolKind kind) {
    sim::Duration cost{};
    auto program = [&cost](Communicator& c) -> sim::Task<void> {
      if (c.rank() == 0) {
        Bytes big(65536);
        const auto t0 = c.sim().now();
        co_await c.send(1, 1, make_payload(std::move(big)));
        cost = c.sim().now() - t0;
      } else {
        (void)co_await c.recv(0, 1);
      }
    };
    run_spmd(PlatformId::SunEthernet, 2, kind, program);
    return cost;
  };
  EXPECT_LT(sender_cost(ToolKind::Pvm), sender_cost(ToolKind::P4));
}

TEST(Semantics, DaemonRoutingUsedOnlyByPvm) {
  auto daemon_requests = [](ToolKind kind) {
    sim::Simulation simulation;
    host::Cluster cluster(simulation, PlatformId::SunEthernet, 2);
    Runtime rt(cluster, kind);
    auto program = [](Communicator& c) -> sim::Task<void> {
      if (c.rank() == 0) {
        co_await c.send(1, 1, make_payload(Bytes(100)));
      } else {
        (void)co_await c.recv(0, 1);
      }
    };
    for (int r = 0; r < 2; ++r) simulation.spawn(program(rt.comm(r)));
    simulation.run();
    return rt.daemon(0).requests() + rt.daemon(1).requests();
  };
  EXPECT_GT(daemon_requests(ToolKind::Pvm), 0u);
  EXPECT_EQ(daemon_requests(ToolKind::P4), 0u);
  EXPECT_EQ(daemon_requests(ToolKind::Express), 0u);
}

TEST(Semantics, MessagesArriveInOrderBetweenPairs) {
  std::vector<int> seen;
  auto program = [&seen](Communicator& c) -> sim::Task<void> {
    constexpr int kN = 20;
    if (c.rank() == 0) {
      for (int i = 0; i < kN; ++i) {
        std::vector<std::int32_t> v{i};
        co_await c.send(1, 7, pack_vector(v));
      }
    } else {
      for (int i = 0; i < kN; ++i) {
        Message m = co_await c.recv(0, 7);
        seen.push_back(unpack_vector<std::int32_t>(*m.data)[0]);
      }
    }
  };
  for (ToolKind kind : all_tools()) {
    seen.clear();
    run_spmd(PlatformId::SunAtmLan, 2, kind, program);
    ASSERT_EQ(seen.size(), 20u) << to_string(kind);
    for (int i = 0; i < 20; ++i) EXPECT_EQ(seen[static_cast<std::size_t>(i)], i);
  }
}

TEST(Native, VeneersExerciseSamePaths) {
  bool ok = false;
  auto program = [&ok](Communicator& c) -> sim::Task<void> {
    if (c.runtime().kind() == ToolKind::Pvm) {
      native::Pvm pvm(c);
      if (c.rank() == 0) {
        pvm.pvm_initsend();
        std::vector<std::int32_t> v{5, 6};
        pvm.pvm_pk<std::int32_t>(v);
        co_await pvm.pvm_send(1, 3);
        co_await pvm.pvm_barrier();
      } else {
        Message m = co_await pvm.pvm_recv(0, 3);
        Unpacker u(*m.data);
        ok = u.get_vector<std::int32_t>() == std::vector<std::int32_t>{5, 6};
        co_await pvm.pvm_barrier();
      }
    }
    co_return;
  };
  run_spmd(PlatformId::SunEthernet, 2, ToolKind::Pvm, program);
  EXPECT_TRUE(ok);

  bool ok2 = false;
  auto program2 = [&ok2](Communicator& c) -> sim::Task<void> {
    native::Express ex{c};
    if (c.rank() == 0) {
      std::vector<double> v{1.0};
      co_await ex.exsend(9, 1, pack_vector(v));
      co_await ex.exsync();
    } else {
      Message m = co_await ex.exreceive(9, 0);
      ok2 = unpack_vector<double>(*m.data)[0] == 1.0;
      co_await ex.exsync();
    }
  };
  run_spmd(PlatformId::AlphaFddi, 2, ToolKind::Express, program2);
  EXPECT_TRUE(ok2);
}

TEST(Pack, EmptySpanRoundTrips) {
  // Regression: an empty span may have data() == nullptr; put_span must not
  // do pointer arithmetic on it (UB caught by UBSan).
  Packer pk;
  pk.put<std::int32_t>(42);
  pk.put_span<double>(std::span<const double>{});
  pk.put<std::int32_t>(7);
  auto payload = pk.finish();

  PayloadReader r(payload);
  EXPECT_EQ(r.get<std::int32_t>(), 42);
  EXPECT_TRUE(r.get_span<double>().empty());
  EXPECT_EQ(r.get<std::int32_t>(), 7);
  EXPECT_EQ(r.remaining(), 0u);

  // Zero-element pack_vector and payload_span agree on the empty case too.
  auto p2 = pack_vector(std::span<const double>{});
  EXPECT_TRUE(p2->empty());
  EXPECT_TRUE(payload_span<double>(*p2).empty());
}

TEST(Pack, MalformedLengthPrefixRejected) {
  // A corrupted length prefix whose n * sizeof(T) wraps 64-bit arithmetic
  // must not pass the bounds check. 0x2000'0000'0000'0001 * 8 == 8 (mod
  // 2^64), so a naive `pos + n * sizeof(T) > size` check would accept it.
  Packer pk;
  pk.put<std::uint64_t>(0x2000'0000'0000'0001ULL);
  pk.put<double>(1.0);
  auto payload = pk.finish();

  Unpacker u(*payload);
  EXPECT_THROW((void)u.get_vector<double>(), std::out_of_range);
  PayloadReader r(payload);
  EXPECT_THROW((void)r.get_span<double>(), std::out_of_range);
  PayloadReader r2(payload);
  EXPECT_THROW((void)r2.get_vector<double>(), std::out_of_range);
}

TEST(Pack, PayloadReaderBorrowsWithoutCopying) {
  std::vector<double> data{1.0, 2.0, 3.0, 4.0};
  Packer pk;
  pk.put<std::uint64_t>(99);  // 8-byte header keeps the span 8-aligned
  pk.put_span<double>(data);
  auto payload = pk.finish();

  PayloadReader r(payload);
  EXPECT_EQ(r.get<std::uint64_t>(), 99u);
  const auto s = r.get_span<double>();
  ASSERT_EQ(s.size(), data.size());
  EXPECT_TRUE(std::equal(s.begin(), s.end(), data.begin()));
  // Genuinely zero-copy: the span points into the payload's own bytes.
  EXPECT_EQ(reinterpret_cast<const std::byte*>(s.data()),
            payload->data() + sizeof(std::uint64_t) + sizeof(std::uint64_t));
  // The reader shares ownership: spans stay valid after the caller's
  // reference goes away.
  payload.reset();
  EXPECT_DOUBLE_EQ(s[3], 4.0);
}

TEST(Pack, PayloadReaderRejectsMisalignedSpan) {
  // A 4-byte header leaves the doubles at offset 12 -- misaligned. The
  // zero-copy reader must refuse rather than hand out a UB span.
  Packer pk;
  pk.put<std::int32_t>(1);
  pk.put_span<double>(std::vector<double>{1.0, 2.0});
  auto payload = pk.finish();

  PayloadReader r(payload);
  EXPECT_EQ(r.get<std::int32_t>(), 1);
  EXPECT_THROW((void)r.get_span<double>(), std::runtime_error);
}

TEST(BufferPool, RecyclesAcrossAcquireReleaseCycles) {
  auto& pool = BufferPool::local();
  pool.trim();
  pool.reset_stats();

  Bytes b = pool.acquire(1000);
  EXPECT_EQ(b.size(), 1000u);
  EXPECT_EQ(pool.stats().misses, 1u);
  const auto cap = b.capacity();
  EXPECT_GE(cap, 1024u);  // rounded up to the size class
  pool.release(std::move(b));
  EXPECT_EQ(pool.stats().releases, 1u);
  EXPECT_EQ(pool.cached_buffers(), 1u);

  // Same class comes back from the free list, not the heap.
  Bytes c = pool.acquire(600);
  EXPECT_EQ(c.size(), 600u);
  EXPECT_EQ(c.capacity(), cap);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_GT(pool.stats().bytes_recycled, 0u);
  EXPECT_GT(pool.stats().hit_rate(), 0.0);
  pool.release(std::move(c));
  pool.trim();
  EXPECT_EQ(pool.cached_buffers(), 0u);
}

TEST(BufferPool, DisabledPoolBypassesFreeLists) {
  auto& pool = BufferPool::local();
  pool.trim();
  pool.reset_stats();
  pool.set_enabled(false);
  Bytes b = pool.acquire(512);
  pool.release(std::move(b));
  EXPECT_EQ(pool.cached_buffers(), 0u);
  EXPECT_EQ(pool.stats().hits, 0u);
  EXPECT_EQ(pool.stats().discards, 1u);
  pool.set_enabled(true);
}

TEST(BufferPool, DroppedPayloadsReturnTheirBuffers) {
  auto& pool = BufferPool::local();
  pool.trim();
  pool.reset_stats();
  {
    auto p = pack_vector(std::vector<double>(256, 1.0));
    EXPECT_EQ(pool.stats().releases, 0u);
  }
  // Payload death routed the 2 KiB buffer back into the pool.
  EXPECT_EQ(pool.stats().releases, 1u);
  EXPECT_EQ(pool.cached_buffers(), 1u);
  pool.trim();
}

TEST(Broadcast, PayloadOverloadSharesOneBufferTreeWide) {
  constexpr int kRanks = 4;
  std::array<const Bytes*, kRanks> seen{};
  std::array<std::vector<double>, kRanks> values;
  auto program = [&](Communicator& c) -> sim::Task<void> {
    Payload pay;
    if (c.rank() == 0) pay = pack_vector(std::vector<double>{3.5, -1.25});
    co_await c.broadcast(0, pay, 5);
    seen[static_cast<std::size_t>(c.rank())] = pay.get();
    const auto s = payload_span<double>(*pay);
    values[static_cast<std::size_t>(c.rank())].assign(s.begin(), s.end());
  };
  run_spmd(PlatformId::Sp1Switch, kRanks, ToolKind::Express, program);
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_EQ(values[static_cast<std::size_t>(r)], (std::vector<double>{3.5, -1.25}));
    // Zero-copy: every rank holds the SAME buffer, not a per-hop clone.
    EXPECT_EQ(seen[static_cast<std::size_t>(r)], seen[0]);
  }
}

TEST(Broadcast, BytesOverloadStillMaterialisesPerRank) {
  std::array<std::vector<double>, 3> got;
  auto program = [&got](Communicator& c) -> sim::Task<void> {
    Bytes b;
    if (c.rank() == 0) b = *pack_vector(std::vector<double>{7.0, 8.0});
    co_await c.broadcast(0, b, 5);
    got[static_cast<std::size_t>(c.rank())] = unpack_vector<double>(b);
  };
  run_spmd(PlatformId::SunEthernet, 3, ToolKind::P4, program);
  for (const auto& v : got) EXPECT_EQ(v, (std::vector<double>{7.0, 8.0}));
}

TEST(Barrier, DisseminationHandlesNonPowerOfTwoSizes) {
  // Express uses the dissemination barrier; its partner arithmetic
  // (rank - 2^k mod P) must hold for non-power-of-two P too.
  for (int p : {3, 5, 6, 7}) {
    std::vector<int> before(static_cast<std::size_t>(p), 0);
    bool all_arrived = true;
    auto program = [&](Communicator& c) -> sim::Task<void> {
      // Stagger arrival so slow ranks genuinely lag.
      co_await c.compute_flops(1e4 * (c.rank() + 1));
      before[static_cast<std::size_t>(c.rank())] = 1;
      co_await c.barrier();
      // After release, every rank must observe every arrival.
      for (int r = 0; r < c.size(); ++r) {
        if (before[static_cast<std::size_t>(r)] != 1) all_arrived = false;
      }
    };
    run_spmd(PlatformId::AlphaFddi, p, ToolKind::Express, program);
    EXPECT_TRUE(all_arrived) << "P=" << p;
  }
}

TEST(RunSpmd, ReportsCountersAndValidatesArgs) {
  auto program = [](Communicator& c) -> sim::Task<void> {
    if (c.rank() == 0) co_await c.send(1, 1, make_payload(Bytes(256)));
    if (c.rank() == 1) (void)co_await c.recv();
    co_return;
  };
  auto out = run_spmd(PlatformId::Sp1Switch, 2, ToolKind::P4, program);
  EXPECT_EQ(out.messages, 1u);
  EXPECT_EQ(out.payload_bytes, 256u);
  EXPECT_GT(out.events, 0u);

  auto bad = [](Communicator& c) -> sim::Task<void> {
    co_await c.send(99, 1, empty_payload());
  };
  EXPECT_THROW(run_spmd(PlatformId::Sp1Switch, 2, ToolKind::P4, bad), std::out_of_range);
}

}  // namespace
}  // namespace pdc::mp
