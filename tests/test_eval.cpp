// Evaluation-framework tests: ADL criteria, weighted methodology, ranking,
// and determinism of the whole stack.
#include <gtest/gtest.h>

#include "eval/apl.hpp"
#include "eval/criteria.hpp"
#include "eval/methodology.hpp"
#include "eval/tpl.hpp"
#include "mp/api.hpp"

namespace pdc::eval {
namespace {

using host::PlatformId;
using mp::ToolKind;

TEST(Criteria, MatrixMatchesPaperSection331) {
  // Spot checks straight from the paper's table.
  EXPECT_EQ(adl_rating(ToolKind::P4, Criterion::EaseOfProgramming),
            Support::PartiallySupported);
  EXPECT_EQ(adl_rating(ToolKind::Pvm, Criterion::EaseOfProgramming),
            Support::WellSupported);
  EXPECT_EQ(adl_rating(ToolKind::Express, Criterion::DebuggingSupport),
            Support::WellSupported);
  EXPECT_EQ(adl_rating(ToolKind::Pvm, Criterion::Customization), Support::NotSupported);
  EXPECT_EQ(adl_rating(ToolKind::Express, Criterion::Integration), Support::NotSupported);
  for (ToolKind t : mp::all_tools()) {
    EXPECT_EQ(adl_rating(t, Criterion::Portability), Support::WellSupported);
    EXPECT_EQ(adl_rating(t, Criterion::ErrorHandling), Support::PartiallySupported);
  }
}

TEST(Criteria, UniformAdlScoresMatchHandComputation) {
  // P4: 3 WS + 6 PS                  -> (3*1.0 + 6*0.5)/9 = 6/9.
  EXPECT_NEAR(adl_score(ToolKind::P4, AdlWeights::uniform()), 6.0 / 9.0, 1e-12);
  // PVM: 6 WS + 2 PS + 1 NS         -> 7/9.
  EXPECT_NEAR(adl_score(ToolKind::Pvm, AdlWeights::uniform()), 7.0 / 9.0, 1e-12);
  // Express: 5 WS + 3 PS + 1 NS     -> 6.5/9.
  EXPECT_NEAR(adl_score(ToolKind::Express, AdlWeights::uniform()), 6.5 / 9.0, 1e-12);
}

TEST(Criteria, WeightsShiftTheRanking) {
  // Uniform: PVM has the best ADL score.
  const auto u = AdlWeights::uniform();
  EXPECT_GT(adl_score(ToolKind::Pvm, u), adl_score(ToolKind::P4, u));
  // A debugging-obsessed profile flips the winner to Express.
  AdlWeights debug_heavy = AdlWeights::uniform();
  for (auto& [c, w] : debug_heavy.weights) {
    if (c == Criterion::DebuggingSupport) w = 10.0;
  }
  EXPECT_GT(adl_score(ToolKind::Express, debug_heavy), adl_score(ToolKind::Pvm, debug_heavy));
}

TEST(Criteria, NegativeWeightRejected) {
  AdlWeights bad = AdlWeights::uniform();
  bad.weights[0].second = -1.0;
  EXPECT_THROW((void)adl_score(ToolKind::P4, bad), std::invalid_argument);
}

TEST(Criteria, Table1NativeCalls) {
  EXPECT_EQ(native_call(ToolKind::Express, Primitive::GlobalSum), "excombine");
  EXPECT_EQ(native_call(ToolKind::Pvm, Primitive::GlobalSum), "Not Available");
  EXPECT_EQ(native_call(ToolKind::P4, Primitive::SendRecv), "p4_send/p4_recv");
  EXPECT_EQ(native_call(ToolKind::Pvm, Primitive::Broadcast), "pvm_mcast");
}

TEST(Methodology, ScoresAreNormalisedAndSorted) {
  EvaluationConfig cfg;
  cfg.platform = PlatformId::SunAtmLan;
  cfg.procs = 4;
  cfg.apl.image_size = 128;  // keep the test fast
  cfg.apl.mc_samples = 200'000;
  cfg.apl.mc_rounds = 4;
  cfg.apl.sort_keys = 50'000;
  cfg.apl.fft_n = 32;
  const auto evals = evaluate_tools(cfg);
  ASSERT_EQ(evals.size(), 3u);
  for (std::size_t i = 0; i + 1 < evals.size(); ++i) {
    EXPECT_GE(evals[i].overall, evals[i + 1].overall);
  }
  bool someone_best_tpl = false;
  for (const auto& e : evals) {
    EXPECT_GE(e.tpl_score, 0.0);
    EXPECT_LE(e.tpl_score, 1.0);
    EXPECT_GE(e.apl_score, 0.0);
    EXPECT_LE(e.apl_score, 1.0 + 1e-12);
    EXPECT_GE(e.adl_score, 0.0);
    EXPECT_LE(e.adl_score, 1.0);
    if (e.tpl_score > 0.99) someone_best_tpl = true;
  }
  EXPECT_TRUE(someone_best_tpl);  // the best tool scores ~1.0 by construction
  // On every platform in this study, p4 wins the communication levels.
  EXPECT_EQ(evals.front().tool, ToolKind::P4);
}

TEST(Methodology, LevelWeightsChangeTheWinner) {
  EvaluationConfig cfg;
  cfg.platform = PlatformId::SunEthernet;
  cfg.procs = 4;
  cfg.apl.image_size = 128;
  cfg.apl.mc_samples = 200'000;
  cfg.apl.mc_rounds = 4;
  cfg.apl.sort_keys = 50'000;
  cfg.apl.fft_n = 32;
  cfg.level_weights = {.tpl = 1.0, .apl = 0.0, .adl = 0.0};
  const auto perf_only = evaluate_tools(cfg);
  EXPECT_EQ(perf_only.front().tool, ToolKind::P4);

  cfg.level_weights = {.tpl = 0.0, .apl = 0.0, .adl = 1.0};
  const auto usability_only = evaluate_tools(cfg);
  EXPECT_EQ(usability_only.front().tool, ToolKind::Pvm);  // best uniform ADL
}

TEST(Methodology, InvalidWeightsRejected) {
  EvaluationConfig cfg;
  cfg.level_weights = {.tpl = -1.0, .apl = 1.0, .adl = 1.0};
  EXPECT_THROW(evaluate_tools(cfg), std::invalid_argument);
  cfg.level_weights = {.tpl = 0.0, .apl = 0.0, .adl = 0.0};
  EXPECT_THROW(evaluate_tools(cfg), std::invalid_argument);
}

TEST(Methodology, PvmTplScoreZeroWithoutGlobalSum) {
  // "Not Available" disqualifies a tool at TPL, as in the paper's Table 4.
  EXPECT_EQ(tpl_score(PlatformId::SunEthernet, ToolKind::Pvm, 4, 16384, 40000), 0.0);
  EXPECT_GT(tpl_score(PlatformId::SunEthernet, ToolKind::P4, 4, 16384, 40000), 0.0);
}

TEST(Methodology, RankByPrimitiveShapes) {
  const auto sr = rank_by_primitive(PlatformId::SunEthernet, Primitive::SendRecv, 4, 16384);
  ASSERT_EQ(sr.size(), 3u);
  EXPECT_EQ(sr[0], ToolKind::P4);
  const auto gs = rank_by_primitive(PlatformId::SunEthernet, Primitive::GlobalSum, 4, 160000);
  ASSERT_EQ(gs.size(), 2u);  // PVM omitted
  EXPECT_EQ(gs[0], ToolKind::P4);
  EXPECT_EQ(gs[1], ToolKind::Express);
}

TEST(Determinism, Table3GoldenCellsExactlyMatchPreOptimizationKernel) {
  // Golden regression: these three Table 3 cells were captured (to full
  // double precision) from the original std::function + binary-heap kernel.
  // The zero-allocation Event / three-lane queue rewrite must reproduce the
  // paper tables bit-for-bit, so any drift here is a determinism bug, not a
  // tolerance issue -- hence EXPECT_DOUBLE_EQ on exact captured values.
  EXPECT_DOUBLE_EQ(sendrecv_ms(PlatformId::SunEthernet, ToolKind::Pvm, 65536),
                   202.50319999999999);
  EXPECT_DOUBLE_EQ(sendrecv_ms(PlatformId::SunAtmLan, ToolKind::P4, 8192),
                   6.7196720000000001);
  EXPECT_DOUBLE_EQ(sendrecv_ms(PlatformId::SunEthernet, ToolKind::Express, 1024),
                   8.0451999999999995);
}

TEST(Determinism, IdenticalRunsProduceIdenticalClocks) {
  for (ToolKind tool : mp::all_tools()) {
    const double a = sendrecv_ms(PlatformId::SunAtmWan, tool, 8192);
    const double b = sendrecv_ms(PlatformId::SunAtmWan, tool, 8192);
    EXPECT_EQ(a, b) << mp::to_string(tool);
  }
  const double x = app_time_s(PlatformId::AlphaFddi, ToolKind::Pvm, AppKind::Psrs, 4);
  const double y = app_time_s(PlatformId::AlphaFddi, ToolKind::Pvm, AppKind::Psrs, 4);
  EXPECT_EQ(x, y);
}

}  // namespace
}  // namespace pdc::eval
