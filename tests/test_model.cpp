// Performance-model layer tests: lattice fitting (recovery, determinism,
// the two-term collective form), skeleton composition algebra, and the
// cross-validation harness with its EXPERIMENTS.md error gates.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "model/crossval.hpp"
#include "model/model.hpp"
#include "model/pattern_sim.hpp"
#include "model/skeleton.hpp"
#include "trace/export.hpp"

namespace pdc::model {
namespace {

using host::PlatformId;
using mp::ToolKind;

// -- hypothesis lattice -----------------------------------------------------

TEST(Lattice, CanonicalOrderAndSize) {
  const auto& l = hypothesis_lattice();
  EXPECT_EQ(l.size(), 105u);  // 7 proc terms x 5 N exponents x 3 log exponents
  EXPECT_TRUE(l.front() == (Hypothesis{0.0, 0, ProcTerm::One}));
  for (std::size_t i = 0; i < l.size(); ++i) {
    for (std::size_t j = i + 1; j < l.size(); ++j) {
      EXPECT_FALSE(l[i] == l[j]) << i << " vs " << j;
    }
  }
}

TEST(Lattice, ProcTermValuesAndClamps) {
  EXPECT_DOUBLE_EQ(proc_term_value(ProcTerm::One, 64.0), 1.0);
  EXPECT_DOUBLE_EQ(proc_term_value(ProcTerm::P, 64.0), 64.0);
  EXPECT_DOUBLE_EQ(proc_term_value(ProcTerm::LogP, 8.0), 3.0);
  EXPECT_DOUBLE_EQ(proc_term_value(ProcTerm::SqrtP, 16.0), 4.0);
  EXPECT_DOUBLE_EQ(proc_term_value(ProcTerm::PLogP, 4.0), 8.0);
  // The staircase: exact at powers of two, ceil in between.
  EXPECT_DOUBLE_EQ(proc_term_value(ProcTerm::CeilLogP, 4.0), 2.0);
  EXPECT_DOUBLE_EQ(proc_term_value(ProcTerm::CeilLogP, 5.0), 3.0);
  EXPECT_DOUBLE_EQ(proc_term_value(ProcTerm::CeilLogP, 8.0), 3.0);
  // Fan-out count, clamped away from 0 so log-fits stay finite.
  EXPECT_DOUBLE_EQ(proc_term_value(ProcTerm::PMinus1, 9.0), 8.0);
  EXPECT_DOUBLE_EQ(proc_term_value(ProcTerm::PMinus1, 1.0), 1.0);
  // 1-rank / 0-byte clamps never zero a term or produce -inf.
  EXPECT_DOUBLE_EQ(proc_term_value(ProcTerm::LogP, 1.0), 1.0);
  const Hypothesis h{1.0, 2, ProcTerm::LogP};
  EXPECT_GT(h.basis(0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ((Hypothesis{0.0, 1, ProcTerm::One}.size_basis(0.0)), 1.0);
}

TEST(Lattice, OpTermNeedsBothProcAndSizeFactors) {
  EXPECT_FALSE((Hypothesis{0.0, 0, ProcTerm::One}.has_op_term()));
  EXPECT_FALSE((Hypothesis{1.0, 1, ProcTerm::One}.has_op_term()));
  EXPECT_FALSE((Hypothesis{0.0, 0, ProcTerm::P}.has_op_term()));  // f == g column
  EXPECT_TRUE((Hypothesis{1.0, 0, ProcTerm::P}.has_op_term()));
  EXPECT_TRUE((Hypothesis{0.0, 1, ProcTerm::CeilLogP}.has_op_term()));
}

// -- fitting ----------------------------------------------------------------

[[nodiscard]] std::vector<Observation> synth_grid(double c0, double c1, double c2,
                                                  const Hypothesis& h) {
  std::vector<Observation> obs;
  for (double n : {256.0, 1024.0, 3072.0, 4096.0, 16384.0}) {
    for (double p : {2.0, 3.0, 4.0, 6.0, 8.0, 16.0}) {
      obs.push_back({n, p,
                     c0 + c1 * proc_term_value(h.proc, p) + c2 * h.basis(n, p)});
    }
  }
  return obs;
}

TEST(Fit, RecoversSingleTermModelExactly) {
  const Hypothesis truth{1.0, 0, ProcTerm::LogP};
  const auto obs = synth_grid(0.5, 0.0, 3e-4, truth);
  const FittedModel m = fit_model(obs);
  EXPECT_TRUE(m.term == truth) << m.to_string();
  EXPECT_NEAR(m.c0, 0.5, 1e-6);
  EXPECT_NEAR(m.c2, 3e-4, 1e-9);
  EXPECT_LT(m.score, 1e-12);
  EXPECT_EQ(m.points, obs.size());
}

TEST(Fit, RecoversTwoTermCollectiveForm) {
  // The classic (alpha + beta N) * steps shape: a per-operation latency
  // and a per-byte cost, both scaled by a linear fan-out.
  const Hypothesis truth{1.0, 0, ProcTerm::PMinus1};
  const auto obs = synth_grid(0.1, 0.05, 2e-5, truth);
  const FittedModel m = fit_model(obs);
  EXPECT_TRUE(m.term == truth) << m.to_string();
  EXPECT_NEAR(m.c1, 0.05, 1e-4);
  EXPECT_NEAR(m.c2, 2e-5, 1e-7);
  EXPECT_LT(m.score, 1e-10);
}

TEST(Fit, StaircaseSeparatedFromSmoothLogByNonPowerOfTwoProcs) {
  const Hypothesis truth{1.0, 0, ProcTerm::CeilLogP};
  const auto obs = synth_grid(0.2, 0.01, 1e-5, truth);
  const FittedModel m = fit_model(obs);
  EXPECT_EQ(m.term.proc, ProcTerm::CeilLogP) << m.to_string();
}

TEST(Fit, ConstantDataSelectsTheConstantHypothesis) {
  std::vector<Observation> obs;
  for (double n : {64.0, 256.0, 1024.0}) {
    for (double p : {2.0, 4.0}) obs.push_back({n, p, 7.25});
  }
  const FittedModel m = fit_model(obs);
  EXPECT_TRUE(m.term == hypothesis_lattice().front()) << m.to_string();
  EXPECT_NEAR(m.c0, 7.25, 1e-9);
  EXPECT_DOUBLE_EQ(m.c1, 0.0);
  EXPECT_DOUBLE_EQ(m.c2, 0.0);
}

TEST(Fit, SingleProcGridDropsTheCollinearOpColumn) {
  // With only P=2 observed, f(P) is collinear with the constant column:
  // the seed must fall back to the two-column system, not blow up.
  std::vector<Observation> obs;
  for (double n : {256.0, 512.0, 1024.0, 2048.0, 4096.0}) {
    obs.push_back({n, 2.0, 0.3 + 4e-4 * n});
  }
  const FittedModel m = fit_model(obs);
  EXPECT_NEAR(m.predict_ms(1024.0, 2.0), 0.3 + 4e-4 * 1024.0, 1e-6);
  EXPECT_LT(m.score, 1e-10);
}

TEST(Fit, RejectsEmptyAndNonPositiveObservations) {
  EXPECT_THROW((void)fit_model({}), std::invalid_argument);
  const std::vector<Observation> bad = {{64.0, 2.0, 1.0}, {128.0, 2.0, 0.0}};
  EXPECT_THROW((void)fit_model(bad), std::invalid_argument);
}

TEST(Fit, BitIdenticalAcrossRepeatedRuns) {
  const auto obs = synth_grid(0.02, 0.004, 1e-6, {1.5, 1, ProcTerm::P});
  const FittedModel a = fit_model(obs);
  const FittedModel b = fit_model(obs);
  EXPECT_EQ(std::memcmp(&a.c0, &b.c0, sizeof a.c0), 0);
  EXPECT_EQ(std::memcmp(&a.c1, &b.c1, sizeof a.c1), 0);
  EXPECT_EQ(std::memcmp(&a.c2, &b.c2, sizeof a.c2), 0);
  EXPECT_EQ(std::memcmp(&a.score, &b.score, sizeof a.score), 0);
  EXPECT_TRUE(a.term == b.term);
  EXPECT_EQ(to_json(a), to_json(b));
}

// -- skeleton algebra -------------------------------------------------------

TEST(Skeleton, SerialSumsAndConstantsCarryTheirValue) {
  const auto s = Skeleton::serial({Skeleton::constant("a", 1.0),
                                   Skeleton::constant("b", 2.5)});
  EXPECT_DOUBLE_EQ(s.cost_ms(0.0, 0.0), 3.5);
}

TEST(Skeleton, PipelineIsFillPlusSlowestStagePerItem) {
  const auto pipe = Skeleton::pipeline({Skeleton::constant("s1", 1.0),
                                        Skeleton::constant("s2", 3.0),
                                        Skeleton::constant("s3", 2.0)},
                                       5);
  EXPECT_DOUBLE_EQ(pipe.cost_ms(0.0, 0.0), 6.0 + 4.0 * 3.0);
}

TEST(Skeleton, MapReduceIsWavesTimesTaskPlusReduce) {
  const auto mr = Skeleton::map_reduce(Skeleton::constant("task", 2.0), 10, 4,
                                       Skeleton::constant("reduce", 5.0));
  EXPECT_DOUBLE_EQ(mr.cost_ms(0.0, 0.0), 3.0 * 2.0 + 5.0);  // ceil(10/4) waves
}

TEST(Skeleton, TaskPoolIsGreedyMakespanFlooredByHead) {
  const std::vector<Skeleton> tasks = {
      Skeleton::constant("t", 5.0), Skeleton::constant("t", 1.0),
      Skeleton::constant("t", 1.0), Skeleton::constant("t", 1.0)};
  const auto fast_head = Skeleton::task_pool(tasks, 2, Skeleton::constant("h", 0.1));
  EXPECT_DOUBLE_EQ(fast_head.cost_ms(0.0, 0.0), 5.0);  // [5] vs [1,1,1]
  const auto slow_head = Skeleton::task_pool(tasks, 2, Skeleton::constant("h", 2.0));
  EXPECT_DOUBLE_EQ(slow_head.cost_ms(0.0, 0.0), 8.0);  // 4 tasks x 2 ms head
}

TEST(Skeleton, OverlapTakesTheSlowestPart) {
  const auto o = Skeleton::overlap({Skeleton::constant("comm", 2.0),
                                    Skeleton::constant("work", 3.0)});
  EXPECT_DOUBLE_EQ(o.cost_ms(0.0, 0.0), 3.0);
}

TEST(Skeleton, ArgsPinAndScaleMultiplies) {
  FittedModel linear;
  linear.c2 = 1.0;
  linear.term = {1.0, 0, ProcTerm::One};
  const auto leaf = Skeleton::primitive("lin", linear);
  EXPECT_DOUBLE_EQ(leaf.cost_ms(100.0, 8.0), 100.0);
  EXPECT_DOUBLE_EQ(leaf.with_args(4.0, std::nullopt).cost_ms(100.0, 8.0), 4.0);
  EXPECT_DOUBLE_EQ(leaf.scaled(0.5).cost_ms(100.0, 8.0), 50.0);
  EXPECT_EQ(leaf.with_args(4.0, 2.0).scaled(0.5).describe(),
            "(scale 0.5 (at n=4 p=2 lin))");
}

TEST(Skeleton, ConstructorsValidate) {
  EXPECT_THROW((void)Skeleton::serial({}), std::invalid_argument);
  EXPECT_THROW((void)Skeleton::overlap({}), std::invalid_argument);
  EXPECT_THROW((void)Skeleton::constant("x", -1.0), std::invalid_argument);
  EXPECT_THROW((void)Skeleton::pipeline({Skeleton::constant("s", 1.0)}, 0),
               std::invalid_argument);
  EXPECT_THROW((void)Skeleton::map_reduce(Skeleton::constant("t", 1.0), 0, 2,
                                          Skeleton::constant("r", 1.0)),
               std::invalid_argument);
  EXPECT_THROW((void)Skeleton::task_pool({Skeleton::constant("t", 1.0)}, 0,
                                         Skeleton::constant("h", 1.0)),
               std::invalid_argument);
  EXPECT_THROW((void)Skeleton::constant("x", 1.0).scaled(-0.5), std::invalid_argument);
}

TEST(Skeleton, PatternSkeletonHonoursBackgroundSendOverlap) {
  PatternLeaves leaves;
  leaves.sendrecv.c2 = 1e-3;  // 1 us per byte round trip
  leaves.sendrecv.term = {1.0, 0, ProcTerm::One};
  const double work = 10.0;
  const auto serial_stage =
      pattern_skeleton(PatternKind::Pipeline, leaves, 4096, 4, 8, 0, work, false);
  const auto overlap_stage =
      pattern_skeleton(PatternKind::Pipeline, leaves, 4096, 4, 8, 0, work, true);
  const double hop = 0.5 * 1e-3 * 4096.0;
  EXPECT_DOUBLE_EQ(serial_stage.cost_ms(4096.0, 4.0), 3.0 * (hop + work) + 7.0 * (hop + work));
  EXPECT_DOUBLE_EQ(overlap_stage.cost_ms(4096.0, 4.0), 3.0 * work + 7.0 * work);
  EXPECT_NE(serial_stage.describe().find("(serial"), std::string::npos);
  EXPECT_NE(overlap_stage.describe().find("(overlap"), std::string::npos);
}

// -- cross-validation harness ----------------------------------------------

TEST(CrossVal, PrimitiveCellMeetsTheErrorGateWithExtrapolation) {
  TrainGrid train;
  train.sizes = {256, 512, 1024, 2048, 4096, 8192};
  const std::vector<HoldoutPoint> holdout = {{768, 2}, {3072, 2}, {16384, 2}};
  const CellReport r = cross_validate_primitive(
      ToolKind::P4, PlatformId::ClusterFlat, eval::Primitive::SendRecv, train, holdout,
      direct_measure(1));
  ASSERT_EQ(r.points.size(), 3u);
  EXPECT_FALSE(r.points[0].extrapolated);
  EXPECT_TRUE(r.points[2].extrapolated);  // 16384 beyond the 8192 training max
  EXPECT_LE(r.median_rel_err, 0.15);
  for (const PointReport& p : r.points) EXPECT_GT(p.measured_ms, 0.0);
}

TEST(CrossVal, PatternCellMeetsTheComposedGate) {
  PatternConfig cfg;
  cfg.kind = PatternKind::Pipeline;
  cfg.bytes = 4096;
  cfg.procs = {4};
  cfg.tasks = 8;
  cfg.flops = 1.0e6;
  cfg.train.sizes = {256, 1024, 4096, 16384};
  const CellReport r = cross_validate_pattern(ToolKind::P4, PlatformId::ClusterFlat,
                                              cfg, direct_measure(1));
  ASSERT_EQ(r.points.size(), 1u);
  EXPECT_LE(r.median_rel_err, 0.25);
  EXPECT_FALSE(r.skeleton.empty());
}

TEST(CrossVal, FitsAreBitIdenticalAcrossSweepThreadCounts) {
  TrainGrid train;
  train.sizes = {512, 1024, 2048, 4096};
  const std::vector<HoldoutPoint> holdout = {{3072, 2}};
  const CellReport a = cross_validate_primitive(
      ToolKind::Express, PlatformId::AlphaFddi, eval::Primitive::SendRecv, train,
      holdout, direct_measure(1));
  const CellReport b = cross_validate_primitive(
      ToolKind::Express, PlatformId::AlphaFddi, eval::Primitive::SendRecv, train,
      holdout, direct_measure(7));
  EXPECT_EQ(to_json(a), to_json(b));
}

TEST(CrossVal, UnsupportedPrimitiveThrows) {
  TrainGrid train;
  train.sizes = {256, 1024};
  // PVM has no global operation; the harness must refuse, not fit garbage.
  EXPECT_THROW((void)cross_validate_primitive(ToolKind::Pvm, PlatformId::ClusterFlat,
                                              eval::Primitive::GlobalSum, train,
                                              {}, direct_measure(1)),
               std::runtime_error);
}

TEST(CrossVal, PatternSimsMatchDirectInvocation) {
  // The reference simulations the harness validates against are ordinary
  // run_spmd programs: deterministic and positive.
  const double a = pipeline_sim_ms(PlatformId::ClusterFlat, ToolKind::P4, 4, 1024, 8, 0.0);
  const double b = pipeline_sim_ms(PlatformId::ClusterFlat, ToolKind::P4, 4, 1024, 8, 0.0);
  EXPECT_GT(a, 0.0);
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_FALSE(mapreduce_sim_ms(PlatformId::ClusterFlat, ToolKind::Pvm, 4, 1024, 8,
                                256, 0.0)
                   .has_value());
}

// -- JSON shapes ------------------------------------------------------------

TEST(ModelJson, ReportsPassTheRecursiveDescentChecker) {
  const auto obs = synth_grid(0.1, 0.02, 1e-5, {1.0, 1, ProcTerm::P});
  std::string err;
  EXPECT_TRUE(trace::validate_json(to_json(fit_model(obs)), &err)) << err;

  TrainGrid train;
  train.sizes = {512, 1024, 2048};
  const std::vector<HoldoutPoint> holdout = {{1536, 2}};
  const CellReport cell = cross_validate_primitive(
      ToolKind::P4, PlatformId::ClusterFlat, eval::Primitive::SendRecv, train, holdout,
      direct_measure(1));
  EXPECT_TRUE(trace::validate_json(to_json(cell), &err)) << err;

  SuiteReport suite;
  suite.cells.push_back(cell);
  EXPECT_TRUE(trace::validate_json(to_json(suite), &err)) << err;

  EXPECT_FALSE(trace::validate_json("{\"unterminated\":", &err));
  EXPECT_FALSE(err.empty());
}

}  // namespace
}  // namespace pdc::model
