// pdceval -- multi-tenant scheduler invariants.
//
// Property matrix over (seed x arrival rate x job mix x fabric) plus
// hand-checked golden scenarios. The strict planner properties (backfill
// never delays the head job, aging bounds starvation) are asserted on the
// flat fabric with pure-delay jobs whose runtimes cannot depend on
// placement or contention; the message-passing mixes pin determinism
// (replay, sweep threads, sim threads, fault soak) where contention is
// real and emergent.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "eval/sched_cell.hpp"
#include "kernels/dispatch.hpp"
#include "mp/api.hpp"
#include "mp/communicator.hpp"
#include "sched/scheduler.hpp"
#include "sched/workload.hpp"
#include "sim/rng.hpp"

namespace pdc {
namespace {

using sched::JobSpec;
using sched::JobState;
using sched::JobStats;
using sched::Policy;
using sched::ScheduleConfig;
using sched::ScheduleOutcome;

/// Pin the intra-run thread count for a scope (set_sim_threads is
/// thread-local; gtest runs every test on the main thread).
struct SimThreadsGuard {
  explicit SimThreadsGuard(int t) { mp::set_sim_threads(t); }
  ~SimThreadsGuard() { mp::set_sim_threads(0); }
};

/// A job that holds its nodes for exactly `d` of simulated time and never
/// touches the network: runtime is placement- and contention-independent,
/// which is what makes the strict planner properties assertable.
[[nodiscard]] mp::RankProgram delay_program(sim::Duration d) {
  return [d](mp::Communicator& c) -> sim::Task<void> { co_await c.sim().delay(d); };
}

[[nodiscard]] JobSpec delay_job(int id, sim::TimePoint submit, int ranks, sim::Duration dur,
                                int user = 0, std::int64_t priority = 0) {
  return JobSpec{.id = id,
                 .user = user,
                 .submit = submit,
                 .ranks = ranks,
                 .walltime = dur,  // exact request: reservations match reality
                 .priority = priority,
                 .tool = mp::ToolKind::P4,
                 .program = delay_program(dur)};
}

/// Random delay-job stream (sizes and durations from a seeded stream).
[[nodiscard]] std::vector<JobSpec> random_delay_jobs(std::uint64_t seed, int njobs, int max_ranks,
                                                     double rate_hz) {
  sim::Rng rng(sim::named_stream(seed, "test.sched.delayjobs"));
  std::vector<JobSpec> jobs;
  sim::TimePoint t{};
  for (int i = 0; i < njobs; ++i) {
    t = t + sim::microseconds(static_cast<std::int64_t>(1e6 / rate_hz * rng.next_double() * 2));
    const int ranks = rng.uniform_i32(1, max_ranks);
    const sim::Duration dur = sim::microseconds(rng.uniform_i32(50, 800));
    jobs.push_back(delay_job(i, t, ranks, dur, i % 3));
  }
  return jobs;
}

void expect_no_overlap(const ScheduleOutcome& out) {
  const auto& jobs = out.jobs;
  for (std::size_t a = 0; a < jobs.size(); ++a) {
    if (jobs[a].state != JobState::Completed) continue;
    for (std::size_t b = a + 1; b < jobs.size(); ++b) {
      if (jobs[b].state != JobState::Completed) continue;
      const bool nodes_meet = jobs[a].base_node < jobs[b].base_node + jobs[b].ranks &&
                              jobs[b].base_node < jobs[a].base_node + jobs[a].ranks;
      const bool times_meet =
          jobs[a].start < jobs[b].complete && jobs[b].start < jobs[a].complete;
      EXPECT_FALSE(nodes_meet && times_meet)
          << "jobs " << jobs[a].id << " and " << jobs[b].id << " overlap";
    }
  }
}

void expect_identical(const ScheduleOutcome& a, const ScheduleOutcome& b) {
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].id, b.jobs[i].id);
    EXPECT_EQ(a.jobs[i].state, b.jobs[i].state);
    EXPECT_EQ(a.jobs[i].base_node, b.jobs[i].base_node);
    EXPECT_EQ(a.jobs[i].start.ns, b.jobs[i].start.ns);
    EXPECT_EQ(a.jobs[i].complete.ns, b.jobs[i].complete.ns);
    EXPECT_EQ(a.jobs[i].transport, b.jobs[i].transport);
  }
  EXPECT_EQ(a.makespan.ns, b.makespan.ns);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.payload_bytes, b.payload_bytes);
  EXPECT_EQ(a.transport, b.transport);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.rejected, b.rejected);
}

[[nodiscard]] eval::SchedCell mp_cell(host::PlatformId platform, int nodes, double rate,
                                      int njobs, std::uint64_t seed) {
  eval::SchedCell cell;
  cell.platform = platform;
  cell.nodes = nodes;
  cell.arrival_rate_hz = rate;
  cell.njobs = njobs;
  cell.seed = seed;
  return cell;
}

// -- property matrix ---------------------------------------------------------

TEST(SchedProperty, NoOverlapAcrossMatrix) {
  for (const std::uint64_t seed : {1ULL, 2ULL}) {
    for (const double rate : {500.0, 5000.0}) {
      for (const host::PlatformId platform :
           {host::PlatformId::ClusterFlat, host::PlatformId::ClusterFatTree}) {
        // Delay mix: placement-independent runtimes.
        ScheduleOutcome out = sched::run_schedule(
            ScheduleConfig{.platform = platform, .nodes = 64},
            random_delay_jobs(seed, 16, 48, rate));
        EXPECT_EQ(out.completed, 16);
        expect_no_overlap(out);
        // Message-passing mix: contention through the shared fabric.
        const auto cell_out = eval::run_sched_cell(mp_cell(platform, 64, rate, 12, seed));
        EXPECT_EQ(cell_out.schedule.completed, 12);
        expect_no_overlap(cell_out.schedule);
      }
    }
  }
}

TEST(SchedProperty, ConservationEveryJobAccounted) {
  for (const std::uint64_t seed : {3ULL, 4ULL}) {
    for (const bool backfill : {true, false}) {
      ScheduleConfig config{.platform = host::PlatformId::ClusterFlat, .nodes = 32};
      config.policy.backfill = backfill;
      ScheduleOutcome out = sched::run_schedule(config, random_delay_jobs(seed, 20, 32, 2000.0));
      EXPECT_EQ(out.completed + out.rejected, 20);
      for (const JobStats& j : out.jobs) {
        ASSERT_EQ(j.state, JobState::Completed);
        EXPECT_GE(j.start.ns, j.submit.ns);
        EXPECT_GE(j.complete.ns, j.start.ns);
        EXPECT_GE(j.base_node, 0);
        EXPECT_LE(j.base_node + j.ranks, 32);
      }
    }
  }
}

TEST(SchedProperty, BackfillNeverDelaysHeadJob) {
  // Crafted: j0 takes half the machine, j1 (head-of-queue after j0) needs
  // all of it, j2 fits in the hole j0 leaves. Backfill must run j2 early
  // without moving j1's start by a nanosecond.
  const auto scenario = [] {
    std::vector<JobSpec> jobs;
    jobs.push_back(delay_job(0, {}, 4, sim::milliseconds(1)));
    jobs.push_back(delay_job(1, {}, 8, sim::milliseconds(1)));
    jobs.push_back(delay_job(2, {}, 4, sim::microseconds(200)));
    return jobs;
  };
  ScheduleConfig fifo{.platform = host::PlatformId::ClusterFlat, .nodes = 8};
  fifo.policy.backfill = false;
  ScheduleConfig bf = fifo;
  bf.policy.backfill = true;

  const ScheduleOutcome out_fifo = sched::run_schedule(fifo, scenario());
  const ScheduleOutcome out_bf = sched::run_schedule(bf, scenario());
  EXPECT_EQ(out_bf.jobs[1].start.ns, out_fifo.jobs[1].start.ns);  // head untouched
  EXPECT_LT(out_bf.jobs[2].start.ns, out_fifo.jobs[2].start.ns);  // j2 backfilled
  EXPECT_LT(out_bf.makespan.ns, out_fifo.makespan.ns);

  // Random streams: with exact walltimes on a contention-free fabric,
  // conservative backfill starts every job no later than FIFO does.
  for (const std::uint64_t seed : {5ULL, 6ULL}) {
    const ScheduleOutcome f = sched::run_schedule(fifo, random_delay_jobs(seed, 18, 8, 3000.0));
    const ScheduleOutcome b = sched::run_schedule(bf, random_delay_jobs(seed, 18, 8, 3000.0));
    for (std::size_t i = 0; i < f.jobs.size(); ++i) {
      EXPECT_LE(b.jobs[i].start.ns, f.jobs[i].start.ns) << "job " << f.jobs[i].id;
    }
  }
}

TEST(SchedProperty, AgingBoundsStarvation) {
  // A full-machine low-priority job arriving into a stream of half-machine
  // high-priority arrivals that keeps the machine from ever draining: each
  // new arrival outranks the big job and re-plans ahead of it, sliding its
  // reservation forever (classic starvation) unless aging lets its waiting
  // time overtake the stream's base priority.
  const auto scenario = [] {
    std::vector<JobSpec> jobs;
    jobs.push_back(delay_job(0, sim::TimePoint{} + sim::microseconds(150), 8,
                             sim::milliseconds(1), 0, 0));
    for (int i = 0; i < 24; ++i) {
      jobs.push_back(delay_job(1 + i, sim::TimePoint{} + sim::microseconds(300) * i, 4,
                               sim::milliseconds(1), 1, 100));
    }
    return jobs;
  };
  ScheduleConfig starve{.platform = host::PlatformId::ClusterFlat, .nodes = 8};
  ScheduleConfig aged = starve;
  aged.policy.aging_per_sec = 1'000'000;  // +1000 points per queued ms

  const ScheduleOutcome out_starved = sched::run_schedule(starve, scenario());
  const ScheduleOutcome out_aged = sched::run_schedule(aged, scenario());
  // jobs are reported in arrival order; find the big job by id.
  const auto big = [](const ScheduleOutcome& out) {
    return *std::find_if(out.jobs.begin(), out.jobs.end(),
                         [](const JobStats& j) { return j.id == 0; });
  };
  const std::int64_t wait_starved = big(out_starved).queue_wait().ns;
  const std::int64_t wait_aged = big(out_aged).queue_wait().ns;
  EXPECT_LT(wait_aged, wait_starved);
  // Aging overtakes the stream's base priority after ~100us of waiting, so
  // the big job runs within a few jobs' worth of drain, not after all 24.
  EXPECT_LT(wait_aged, sim::milliseconds(4).ns);
  EXPECT_GT(wait_starved, sim::milliseconds(6).ns);
  EXPECT_GT(out_aged.fairness, out_starved.fairness);
}

// -- determinism -------------------------------------------------------------

TEST(SchedDeterminism, BitIdenticalReplay) {
  const eval::SchedCell cell = mp_cell(host::PlatformId::ClusterFatTree, 128, 2500.0, 20, 11);
  const auto a = eval::run_sched_cell(cell);
  const auto b = eval::run_sched_cell(cell);
  expect_identical(a.schedule, b.schedule);
  ASSERT_EQ(a.per_tool.size(), b.per_tool.size());
  for (std::size_t i = 0; i < a.per_tool.size(); ++i) {
    EXPECT_EQ(a.per_tool[i].completed, b.per_tool[i].completed);
    EXPECT_EQ(a.per_tool[i].goodput, b.per_tool[i].goodput);
  }
}

TEST(SchedDeterminism, SweepThreadCountInvariant) {
  std::vector<eval::SchedCell> cells;
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    cells.push_back(mp_cell(host::PlatformId::ClusterFlat, 64, 2000.0, 10, seed));
  }
  const auto serial = eval::sweep_sched(cells, 1);
  const auto fanned = eval::sweep_sched(cells, 4);
  ASSERT_EQ(serial.size(), fanned.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_identical(serial[i].schedule, fanned[i].schedule);
  }
}

TEST(SchedDeterminism, SimThreadsBitIdentical) {
  const eval::SchedCell cell = mp_cell(host::PlatformId::ClusterFatTree, 256, 3000.0, 24, 7);
  ScheduleOutcome serial, sharded;
  {
    SimThreadsGuard guard(1);
    serial = eval::run_sched_cell(cell).schedule;
  }
  {
    SimThreadsGuard guard(8);
    sharded = eval::run_sched_cell(cell).schedule;
  }
  expect_identical(serial, sharded);
}

// -- golden pins -------------------------------------------------------------

// Three jobs on an 8-node flat crossbar, all submitted at t=0, pure delay
// workloads, 50us launch overhead:
//   j0: 4 ranks, 1 ms     j1: 8 ranks, 1 ms     j2: 4 ranks, 0.2 ms
// FIFO runs them strictly in order; backfill slides j2 into the four nodes
// j0 leaves idle. Every instant below is hand-checkable.
TEST(SchedGolden, FlatThreeJobsFifoVsBackfill) {
  const auto scenario = [] {
    std::vector<JobSpec> jobs;
    jobs.push_back(delay_job(0, {}, 4, sim::milliseconds(1)));
    jobs.push_back(delay_job(1, {}, 8, sim::milliseconds(1)));
    jobs.push_back(delay_job(2, {}, 4, sim::microseconds(200)));
    return jobs;
  };
  ScheduleConfig fifo{.platform = host::PlatformId::ClusterFlat, .nodes = 8};
  fifo.policy.backfill = false;
  ScheduleConfig bf = fifo;
  bf.policy.backfill = true;

  const ScheduleOutcome f = sched::run_schedule(fifo, scenario());
  EXPECT_EQ(f.jobs[0].start.ns, 50'000);
  EXPECT_EQ(f.jobs[0].complete.ns, 1'050'000);
  EXPECT_EQ(f.jobs[1].start.ns, 1'100'000);
  EXPECT_EQ(f.jobs[1].complete.ns, 2'100'000);
  EXPECT_EQ(f.jobs[2].start.ns, 2'150'000);
  EXPECT_EQ(f.jobs[2].complete.ns, 2'350'000);
  EXPECT_EQ(f.makespan.ns, 2'350'000);
  EXPECT_DOUBLE_EQ(f.utilization, 12.8e6 / (8 * 2.35e6));

  const ScheduleOutcome b = sched::run_schedule(bf, scenario());
  EXPECT_EQ(b.jobs[0].start.ns, 50'000);
  EXPECT_EQ(b.jobs[1].start.ns, 1'100'000);    // head job: same as FIFO
  EXPECT_EQ(b.jobs[2].start.ns, 50'000);       // backfilled beside j0
  EXPECT_EQ(b.jobs[2].complete.ns, 250'000);
  EXPECT_EQ(b.jobs[2].base_node, 4);
  EXPECT_EQ(b.makespan.ns, 2'100'000);
  EXPECT_DOUBLE_EQ(b.utilization, 12.8e6 / (8 * 2.1e6));
}

// The same shape on a 32-node fat-tree: the placer must keep the 16-rank
// job inside one pod (base 0) and backfill the 8-rank job pod-aligned at
// base 16. Delay jobs never touch the wire, so instants match the flat pin.
TEST(SchedGolden, FatTreePodAlignedBackfill) {
  const auto scenario = [] {
    std::vector<JobSpec> jobs;
    jobs.push_back(delay_job(0, {}, 16, sim::milliseconds(1)));
    jobs.push_back(delay_job(1, {}, 32, sim::milliseconds(1)));
    jobs.push_back(delay_job(2, {}, 8, sim::microseconds(200)));
    return jobs;
  };
  ScheduleConfig config{.platform = host::PlatformId::ClusterFatTree, .nodes = 32};
  const ScheduleOutcome out = sched::run_schedule(config, scenario());
  EXPECT_EQ(out.jobs[0].base_node, 0);
  EXPECT_EQ(out.jobs[0].start.ns, 50'000);
  EXPECT_EQ(out.jobs[1].base_node, 0);
  EXPECT_EQ(out.jobs[1].start.ns, 1'100'000);
  EXPECT_EQ(out.jobs[2].base_node, 16);  // pod-aligned: zero boundary crossings
  EXPECT_EQ(out.jobs[2].start.ns, 50'000);
  EXPECT_EQ(out.makespan.ns, 2'100'000);
}

TEST(SchedGolden, ScalarAndSimdDispatchIdentical) {
  const eval::SchedCell cell = mp_cell(host::PlatformId::ClusterFlat, 64, 2000.0, 12, 9);
  kernels::force_scalar(true);
  const auto scalar = eval::run_sched_cell(cell);
  kernels::force_scalar(false);
  const auto simd = eval::run_sched_cell(cell);
  expect_identical(scalar.schedule, simd.schedule);
}

// -- fault soak --------------------------------------------------------------

TEST(SchedFault, SoakDistributedEqualsSerial) {
  eval::SchedCell cell = mp_cell(host::PlatformId::ClusterFatTree, 256, 3000.0, 24, 13);
  cell.faults = fault::FaultPlan::uniform(0.05);

  ScheduleOutcome serial, sharded;
  {
    SimThreadsGuard guard(1);
    serial = eval::run_sched_cell(cell).schedule;
  }
  {
    SimThreadsGuard guard(8);
    sharded = eval::run_sched_cell(cell).schedule;
  }
  expect_identical(serial, sharded);
  EXPECT_EQ(serial.injected.frames, sharded.injected.frames);
  EXPECT_EQ(serial.injected.drops, sharded.injected.drops);

  // The wire really injected faults and the transport really recovered.
  EXPECT_EQ(serial.completed, 24);
  EXPECT_GT(serial.injected.drops, 0);
  EXPECT_GT(serial.transport.retransmits, 0);

  // Per-job transport stats aggregate exactly to the schedule totals.
  mp::TransportStats sum;
  for (const JobStats& j : serial.jobs) sum += j.transport;
  EXPECT_EQ(sum, serial.transport);
}

// -- edge cases --------------------------------------------------------------

TEST(SchedEdge, ZeroDurationJobs) {
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 4; ++i) jobs.push_back(delay_job(i, {}, 4, sim::Duration::zero()));
  const ScheduleConfig config{.platform = host::PlatformId::ClusterFlat, .nodes = 16};
  const ScheduleOutcome out = sched::run_schedule(config, jobs);
  EXPECT_EQ(out.completed, 4);
  for (const JobStats& j : out.jobs) {
    EXPECT_EQ(j.complete.ns, j.start.ns);  // zero work, zero span
    EXPECT_GE(j.start.ns, 50'000);         // still pays the launch overhead
  }
  expect_no_overlap(out);
  const ScheduleOutcome replay = sched::run_schedule(config, jobs);
  expect_identical(out, replay);
}

TEST(SchedEdge, OversizedJobRejected) {
  std::vector<JobSpec> jobs;
  jobs.push_back(delay_job(0, {}, 16, sim::milliseconds(1)));  // > 8 nodes
  jobs.push_back(delay_job(1, {}, 8, sim::microseconds(100)));
  const ScheduleConfig config{.platform = host::PlatformId::ClusterFlat, .nodes = 8};
  const ScheduleOutcome out = sched::run_schedule(config, jobs);
  EXPECT_EQ(out.rejected, 1);
  EXPECT_EQ(out.completed, 1);
  EXPECT_EQ(out.jobs[0].state, JobState::Rejected);
  EXPECT_EQ(out.jobs[0].base_node, -1);
  EXPECT_EQ(out.jobs[1].state, JobState::Completed);
  // The rejected job must not have delayed the feasible one.
  EXPECT_EQ(out.jobs[1].start.ns, 50'000);
}

TEST(SchedEdge, SimultaneousArrivalsTieBreakById) {
  // Six full-machine jobs, all submitted at the same instant, handed to
  // the driver in scrambled order: the schedule must serialize them by id,
  // and be byte-identical however the input vector was ordered.
  std::vector<JobSpec> in_order, scrambled;
  for (int i = 0; i < 6; ++i) {
    in_order.push_back(delay_job(i, {}, 8, sim::microseconds(500)));
  }
  for (const int i : {3, 0, 5, 1, 4, 2}) {
    scrambled.push_back(delay_job(i, {}, 8, sim::microseconds(500)));
  }
  const ScheduleConfig config{.platform = host::PlatformId::ClusterFlat, .nodes = 8};
  const ScheduleOutcome a = sched::run_schedule(config, in_order);
  const ScheduleOutcome b = sched::run_schedule(config, scrambled);
  expect_identical(a, b);
  for (std::size_t i = 0; i + 1 < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].id, static_cast<int>(i));
    EXPECT_LT(a.jobs[i].start.ns, a.jobs[i + 1].start.ns);
  }
}

TEST(SchedEdge, SimultaneousCompletionsDeterministic) {
  // Two half-machine jobs complete at the same instant; two full-machine
  // jobs are queued behind them. The double completion must free the whole
  // machine atomically enough to launch the queued jobs in id order, and
  // identically on every run.
  const auto scenario = [] {
    std::vector<JobSpec> jobs;
    jobs.push_back(delay_job(0, {}, 4, sim::microseconds(400)));
    jobs.push_back(delay_job(1, {}, 4, sim::microseconds(400)));
    jobs.push_back(delay_job(2, {}, 8, sim::microseconds(100)));
    jobs.push_back(delay_job(3, {}, 8, sim::microseconds(100)));
    return jobs;
  };
  const ScheduleConfig config{.platform = host::PlatformId::ClusterFlat, .nodes = 8};
  const ScheduleOutcome a = sched::run_schedule(config, scenario());
  const ScheduleOutcome b = sched::run_schedule(config, scenario());
  expect_identical(a, b);
  EXPECT_EQ(a.jobs[0].complete.ns, a.jobs[1].complete.ns);
  EXPECT_LT(a.jobs[2].start.ns, a.jobs[3].start.ns);
  expect_no_overlap(a);
}

// -- workload generator ------------------------------------------------------

TEST(SchedWorkload, GeneratorDeterministicAndSeedSensitive) {
  sched::WorkloadSpec spec{.seed = 42,
                           .arrival_rate_hz = 1000.0,
                           .njobs = 32,
                           .users = 4,
                           .templates = eval::default_job_mix()};
  const auto a = sched::generate_workload(spec);
  const auto b = sched::generate_workload(spec);
  ASSERT_EQ(a.size(), 32u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, static_cast<int>(i));
    EXPECT_EQ(a[i].submit.ns, b[i].submit.ns);
    EXPECT_EQ(a[i].user, b[i].user);
    EXPECT_EQ(a[i].ranks, b[i].ranks);
    if (i > 0) {
      EXPECT_GE(a[i].submit.ns, a[i - 1].submit.ns);
    }
    EXPECT_GE(a[i].user, 0);
    EXPECT_LT(a[i].user, 4);
  }
  spec.seed = 43;
  const auto c = sched::generate_workload(spec);
  int diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff += a[i].submit.ns != c[i].submit.ns;
  EXPECT_GT(diff, 0);  // a new seed moves the arrivals
}

}  // namespace
}  // namespace pdc
