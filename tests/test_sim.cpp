// Unit tests for the simulation kernel: time arithmetic, event ordering,
// coroutine tasks, delays, mailboxes, resources, locks, RNG and stats.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/frame_pool.hpp"
#include "sim/mailbox.hpp"
#include "sim/pooled_function.hpp"
#include "sim/resource.hpp"
#include "sim/rng.hpp"
#include "sim/simulation.hpp"
#include "sim/stats.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "sim/timer.hpp"

namespace pdc::sim {
namespace {

TEST(Time, ArithmeticAndComparison) {
  EXPECT_EQ(milliseconds(1), microseconds(1000));
  EXPECT_EQ(seconds(1) + milliseconds(500), milliseconds(1500));
  EXPECT_LT(microseconds(999), milliseconds(1));
  EXPECT_EQ((TimePoint::origin() + seconds(2)) - seconds(1), TimePoint{1'000'000'000});
  EXPECT_DOUBLE_EQ(milliseconds(250).seconds(), 0.25);
  EXPECT_DOUBLE_EQ(from_seconds(1.5).millis(), 1500.0);
  EXPECT_EQ(from_seconds(-0.5), milliseconds(-500));
  EXPECT_EQ(3 * milliseconds(2), milliseconds(6));
  EXPECT_EQ(milliseconds(7) / 2, microseconds(3500));
}

TEST(EventQueue, OrdersByTimeThenFifo) {
  EventQueue q;
  std::vector<int> order;
  q.push(TimePoint{10}, [&] { order.push_back(1); });
  q.push(TimePoint{5}, [&] { order.push_back(2); });
  q.push(TimePoint{10}, [&] { order.push_back(3); });
  q.push(TimePoint{5}, [&] { order.push_back(4); });
  while (!q.empty()) q.pop()();
  EXPECT_EQ(order, (std::vector<int>{2, 4, 1, 3}));
}

TEST(EventQueue, ReversedPushOrderStillSortsByTime) {
  // Descending push times defeat both fast lanes; everything lands in the
  // heap and must still come out time-ordered.
  EventQueue q;
  std::vector<int> order;
  for (int i = 100; i > 0; --i) {
    q.push(TimePoint{i}, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop()();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i + 1);
}

TEST(EventQueue, InterleavedPushPopKeepsFifoAmongEqualTimes) {
  // Property test: under an interleaved stream of push / push_now / pop,
  // the pop order must equal ascending (time, push index) no matter which
  // internal lane (FIFO fast lane, sorted run, heap) each push lands in.
  Rng rng(20260806);
  EventQueue q;
  std::vector<std::pair<std::int64_t, int>> model;  // (time.ns, push index)
  std::vector<int> fired;
  int next_id = 0;
  TimePoint now{};
  for (int round = 0; round < 600; ++round) {
    const auto pushes = rng.uniform(0, 3);
    for (std::uint64_t k = 0; k < pushes; ++k) {
      const TimePoint t = now + Duration{static_cast<std::int64_t>(rng.uniform(0, 3))};
      const int id = next_id++;
      Event ev{[&fired, id] { fired.push_back(id); }};
      if (t == now) {
        q.push_now(t, std::move(ev));  // contract: t is the current min time
      } else {
        q.push(t, std::move(ev));
      }
      model.emplace_back(t.ns, id);
    }
    if (!q.empty() && rng.uniform(0, 2) > 0) {
      TimePoint at{};
      Event ev;
      ASSERT_TRUE(q.pop_next(TimePoint{1'000'000}, at, ev));
      EXPECT_GE(at, now);
      now = at;
      ev();
    }
  }
  while (!q.empty()) q.pop()();
  // Reference order: stable sort by time preserves push order among ties.
  std::stable_sort(model.begin(), model.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  ASSERT_EQ(fired.size(), model.size());
  for (std::size_t i = 0; i < model.size(); ++i) EXPECT_EQ(fired[i], model[i].second);
}

TEST(EventQueue, ClearResetsSequenceCounter) {
  // After clear(), a rebuilt queue must reproduce the exact (time, seq)
  // ordering of a fresh one -- same-time FIFO must not be perturbed by
  // sequence numbers left over from before the clear.
  const auto fill_and_drain = [](EventQueue& q) {
    std::vector<int> order;
    q.push(TimePoint{7}, [&] { order.push_back(0); });
    q.push_now(TimePoint{3}, [&] { order.push_back(1); });
    q.push(TimePoint{3}, [&] { order.push_back(2); });
    q.push(TimePoint{1}, [&] { order.push_back(3); });
    while (!q.empty()) q.pop()();
    return order;
  };
  EventQueue fresh;
  const auto expected = fill_and_drain(fresh);

  EventQueue q;
  for (int i = 0; i < 10; ++i) q.push(TimePoint{i}, [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(fill_and_drain(q), expected);
}

TEST(EventQueue, StatsCountLaneHits) {
  EventQueue q;
  q.push_now(TimePoint{0}, [] {});  // fast lane
  q.push_now(TimePoint{0}, [] {});  // fast lane
  q.push(TimePoint{5}, [] {});      // sorted run
  q.push(TimePoint{6}, [] {});      // sorted run
  q.push(TimePoint{2}, [] {});      // out of order -> heap
  EXPECT_EQ(q.stats().lane_pushes, 2u);
  EXPECT_EQ(q.stats().run_pushes, 2u);
  EXPECT_EQ(q.stats().heap_pushes, 1u);
  std::vector<TimePoint> times;
  while (!q.empty()) {
    times.push_back(q.next_time());
    q.pop()();
  }
  EXPECT_EQ(times, (std::vector<TimePoint>{TimePoint{0}, TimePoint{0}, TimePoint{2},
                                           TimePoint{5}, TimePoint{6}}));
  q.clear();
  EXPECT_EQ(q.stats().lane_pushes, 0u);
}

TEST(Event, InlineAndHeapCallablesBothRunAfterMove) {
  // Small capture: stays in the inline buffer. Large capture: heap slow
  // path. Both must survive the queue's internal moves.
  int small_hits = 0;
  Event small{[&small_hits] { ++small_hits; }};
  Event moved_small{std::move(small)};
  moved_small();
  EXPECT_EQ(small_hits, 1);

  std::array<char, 128> big_payload{};
  big_payload[0] = 42;
  int big_hit = 0;
  Event big{[big_payload, &big_hit] { big_hit = big_payload[0]; }};
  Event moved_big{std::move(big)};
  Event moved_again;
  moved_again = std::move(moved_big);
  moved_again();
  EXPECT_EQ(big_hit, 42);
}

TEST(FramePool, RecyclesFixedSizeBlocks) {
  auto& pool = FramePool::local();
  pool.trim();
  pool.reset_stats();

  void* a = pool.allocate(200);  // 256-byte class
  EXPECT_EQ(pool.stats().misses, 1u);
  pool.deallocate(a, 200);
  EXPECT_EQ(pool.stats().releases, 1u);
  EXPECT_EQ(pool.cached_blocks(), 1u);

  // Anything in the same class reuses the cached block.
  void* b = pool.allocate(129);
  EXPECT_EQ(b, a);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_GT(pool.stats().hit_rate(), 0.0);
  pool.deallocate(b, 129);
  pool.trim();
  EXPECT_EQ(pool.cached_blocks(), 0u);
}

TEST(FramePool, OversizeBlocksFallThroughToHeap) {
  auto& pool = FramePool::local();
  pool.trim();
  pool.reset_stats();
  void* p = pool.allocate(1 << 20);  // above the largest class
  EXPECT_EQ(pool.stats().misses, 1u);
  pool.deallocate(p, 1 << 20);
  EXPECT_EQ(pool.cached_blocks(), 0u);  // never cached
  EXPECT_EQ(pool.stats().discards, 1u);
}

TEST(PooledFunction, InvokesMovesAndReleasesItsBlock) {
  auto& pool = FramePool::local();
  pool.trim();
  pool.reset_stats();

  std::array<int, 8> payload{1, 2, 3, 4, 5, 6, 7, 8};
  int sum = 0;
  {
    PooledFunction<void(int)> f{[payload, &sum](int scale) {
      for (int v : payload) sum += v * scale;
    }};
    EXPECT_TRUE(static_cast<bool>(f));
    PooledFunction<void(int)> g{std::move(f)};
    EXPECT_FALSE(static_cast<bool>(f));
    g(2);
  }
  EXPECT_EQ(sum, 72);
  // The capture block went back to the freelist, not the heap.
  EXPECT_EQ(pool.stats().releases, 1u);
  EXPECT_EQ(pool.cached_blocks(), 1u);
  pool.trim();
}

TEST(Task, CoroutineFramesRecycleThroughTheFramePool) {
  auto& pool = FramePool::local();
  Simulation simu;
  auto child = []() -> Task<int> { co_return 21; };
  auto parent = [&child](int& out) -> Task<void> {
    const int a = co_await child();  // child frame dies with this statement
    const int b = co_await child();  // ...and this frame reuses its block
    out = a + b;
  };
  int out = 0;
  pool.trim();
  pool.reset_stats();
  simu.spawn(parent(out));
  simu.run();
  EXPECT_EQ(out, 42);
  EXPECT_GE(pool.stats().releases, 2u);
  EXPECT_GE(pool.stats().hits, 1u);
  pool.trim();
}

TEST(Simulation, DelayAdvancesClock) {
  Simulation sim;
  TimePoint seen{};
  sim.spawn([](Simulation& s, TimePoint& out) -> Task<> {
    co_await s.delay(milliseconds(5));
    co_await s.delay(microseconds(250));
    out = s.now();
  }(sim, seen));
  sim.run();
  EXPECT_EQ(seen, TimePoint::origin() + microseconds(5250));
}

TEST(Simulation, NegativeDelayThrows) {
  Simulation sim;
  sim.spawn([](Simulation& s) -> Task<> {
    co_await s.delay(milliseconds(-1));
  }(sim));
  EXPECT_THROW(sim.run(), std::invalid_argument);
}

TEST(Simulation, SpawnedProcessesInterleaveDeterministically) {
  Simulation sim;
  std::vector<std::string> log;
  auto proc = [](Simulation& s, std::vector<std::string>& log, std::string name,
                 Duration step) -> Task<> {
    for (int i = 0; i < 3; ++i) {
      co_await s.delay(step);
      log.push_back(name + std::to_string(i));
    }
  };
  sim.spawn(proc(sim, log, "a", milliseconds(2)));
  sim.spawn(proc(sim, log, "b", milliseconds(3)));
  sim.run();
  EXPECT_EQ(log, (std::vector<std::string>{"a0", "b0", "a1", "b1", "a2", "b2"}));
}

TEST(Simulation, NestedTasksPropagateValuesAndExceptions) {
  Simulation sim;
  int result = 0;
  auto leaf = [](Simulation& s) -> Task<int> {
    co_await s.delay(milliseconds(1));
    co_return 42;
  };
  sim.spawn([](Simulation& s, auto& leaf, int& out) -> Task<> {
    out = co_await leaf(s);
  }(sim, leaf, result));
  sim.run();
  EXPECT_EQ(result, 42);

  Simulation sim2;
  auto thrower = [](Simulation& s) -> Task<int> {
    co_await s.delay(milliseconds(1));
    throw std::runtime_error("leaf failed");
  };
  bool caught = false;
  sim2.spawn([](Simulation& s, auto& thrower, bool& caught) -> Task<> {
    try {
      (void)co_await thrower(s);
    } catch (const std::runtime_error&) {
      caught = true;
    }
  }(sim2, thrower, caught));
  sim2.run();
  EXPECT_TRUE(caught);
}

TEST(Simulation, RootProcessExceptionSurfacesFromRun) {
  Simulation sim;
  sim.spawn([](Simulation& s) -> Task<> {
    co_await s.delay(milliseconds(1));
    throw std::logic_error("root failed");
  }(sim), "failing");
  EXPECT_THROW(sim.run(), std::logic_error);
}

TEST(Simulation, DeadlockIsDetected) {
  Simulation sim;
  auto box = std::make_unique<Mailbox<int>>(sim);
  sim.spawn([](Mailbox<int>& b) -> Task<> {
    (void)co_await b.recv();  // nobody ever sends
  }(*box), "starved");
  EXPECT_THROW(sim.run(), DeadlockDetected);
}

TEST(Simulation, EventBudgetGuardsRunaways) {
  Simulation sim;
  sim.set_event_budget(100);
  sim.spawn([](Simulation& s) -> Task<> {
    for (;;) co_await s.delay(microseconds(1));
  }(sim));
  EXPECT_THROW(sim.run(), EventBudgetExceeded);
}

TEST(Mailbox, FifoAndMatcherSelection) {
  Simulation sim;
  Mailbox<int> box(sim);
  std::vector<int> got;
  sim.spawn([](Simulation& s, Mailbox<int>& b, std::vector<int>& got) -> Task<> {
    co_await s.delay(milliseconds(1));
    b.push(7);
    b.push(8);
    b.push(9);
    (void)got;
    co_return;
  }(sim, box, got), "producer");
  sim.spawn([](Mailbox<int>& b, std::vector<int>& got) -> Task<> {
    got.push_back(co_await b.recv([](const int& v) { return v % 2 == 1; }));
    got.push_back(co_await b.recv([](const int& v) { return v % 2 == 1; }));
    got.push_back(co_await b.recv());
  }(box, got), "consumer");
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{7, 9, 8}));
}

TEST(Mailbox, WaiterWokenOnPush) {
  Simulation sim;
  Mailbox<int> box(sim);
  TimePoint when{};
  sim.spawn([](Simulation& s, Mailbox<int>& b, TimePoint& when) -> Task<> {
    const int v = co_await b.recv();
    EXPECT_EQ(v, 5);
    when = s.now();
  }(sim, box, when));
  sim.spawn([](Simulation& s, Mailbox<int>& b) -> Task<> {
    co_await s.delay(milliseconds(3));
    b.push(5);
  }(sim, box));
  sim.run();
  EXPECT_EQ(when, TimePoint::origin() + milliseconds(3));
}

TEST(Mailbox, TryRecvAndPoll) {
  Simulation sim;
  Mailbox<int> box(sim);
  EXPECT_FALSE(box.poll());
  EXPECT_EQ(box.try_recv(), std::nullopt);
  box.push(3);
  EXPECT_TRUE(box.poll());
  EXPECT_FALSE(box.poll([](const int& v) { return v > 5; }));
  EXPECT_EQ(box.try_recv().value(), 3);
  EXPECT_EQ(box.pending(), 0u);
}

TEST(SerialResource, BusyUntilQueueing) {
  Simulation sim;
  SerialResource res(sim, "dev");
  EXPECT_EQ(res.reserve(milliseconds(10)), TimePoint::origin() + milliseconds(10));
  EXPECT_EQ(res.reserve(milliseconds(5)), TimePoint::origin() + milliseconds(15));
  EXPECT_EQ(res.busy_time(), milliseconds(15));
  EXPECT_EQ(res.requests(), 2u);
}

TEST(SerialResource, ReserveFromFutureStart) {
  Simulation sim;
  SerialResource res(sim, "dev");
  // Idle resource, window starting in the future.
  EXPECT_EQ(res.reserve_from(TimePoint{1000}, Duration{500}), TimePoint{1500});
  // Busy resource dominates the future start.
  EXPECT_EQ(res.reserve_from(TimePoint{1200}, Duration{100}), TimePoint{1600});
  EXPECT_THROW(res.reserve(Duration{-1}), std::invalid_argument);
}

TEST(FifoLock, MutualExclusionInFifoOrder) {
  Simulation sim;
  FifoLock lock(sim);
  std::vector<int> order;
  auto worker = [](Simulation& s, FifoLock& lock, std::vector<int>& order, int id,
                   Duration hold) -> Task<> {
    auto guard = co_await ScopedLock::take(lock);
    order.push_back(id);
    co_await s.delay(hold);
  };
  for (int i = 0; i < 3; ++i) sim.spawn(worker(sim, lock, order, i, milliseconds(2)));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_FALSE(lock.locked());
  EXPECT_EQ(sim.now(), TimePoint::origin() + milliseconds(6));
}

TEST(Rng, DeterministicAndSplittable) {
  Rng a(1234), b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng c = a.split();
  EXPECT_NE(a.next_u64(), c.next_u64());
  Rng d(42);
  for (int i = 0; i < 1000; ++i) {
    const double x = d.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    const auto v = d.uniform(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(Rng, UniformCoversRangeRoughly) {
  Rng r(7);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 10000; ++i) ++hits[static_cast<std::size_t>(r.uniform(0, 9))];
  for (int h : hits) EXPECT_GT(h, 800);
}

TEST(RunningStats, WelfordMatchesClosedForm) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

// ---------- satellite: mailbox edge cases -----------------------------------

/// A miniature message envelope for wildcard-matching tests: the same shape
/// the mp layer matches on (source, tag), small enough for MatchPred's
/// inline context.
struct Envelope {
  int src;
  int tag;
  int body;
};

/// Wildcard matcher: -1 matches any source / any tag (PVM pvm_recv(-1, -1),
/// p4 type -1 semantics).
struct WildcardMatch {
  int src;
  int tag;
  bool operator()(const Envelope& e) const {
    return (src < 0 || e.src == src) && (tag < 0 || e.tag == tag);
  }
};

TEST(MailboxEdge, WildcardSourceAndTagMatching) {
  Simulation sim;
  Mailbox<Envelope> box(sim);
  std::vector<int> got;
  sim.spawn([](Simulation& s, Mailbox<Envelope>& b) -> Task<> {
    co_await s.delay(milliseconds(1));
    b.push({.src = 2, .tag = 9, .body = 1});
    b.push({.src = 3, .tag = 5, .body = 2});
    b.push({.src = 2, .tag = 5, .body = 3});
  }(sim, box), "producer");
  sim.spawn([](Mailbox<Envelope>& b, std::vector<int>& got) -> Task<> {
    // Exact (src, tag) skips earlier queued items.
    got.push_back((co_await b.recv(WildcardMatch{2, 5})).body);
    // Wildcard source, exact tag: oldest tag-5 item remaining.
    got.push_back((co_await b.recv(WildcardMatch{-1, 5})).body);
    // Full wildcard drains in arrival order.
    got.push_back((co_await b.recv(WildcardMatch{-1, -1})).body);
  }(box, got), "consumer");
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{3, 2, 1}));
}

TEST(MailboxEdge, SameTimestampPushesKeepFifoOrder) {
  // Multiple pushes at one simulated instant must drain in push order, and
  // a same-instant producer/consumer interleaving must not reorder: the
  // fast-lane event queue is FIFO within a timestamp.
  Simulation sim;
  Mailbox<int> box(sim);
  std::vector<int> got;
  sim.spawn([](Simulation& s, Mailbox<int>& b) -> Task<> {
    co_await s.delay(milliseconds(2));
    for (int i = 0; i < 6; ++i) b.push(i);  // all at t = 2 ms
  }(sim, box), "producer");
  sim.spawn([](Mailbox<int>& b, std::vector<int>& got) -> Task<> {
    for (int i = 0; i < 6; ++i) got.push_back(co_await b.recv());
  }(box, got), "consumer");
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(MailboxEdge, CompetingReceiversServedInArrivalOrder) {
  // Two waiters with overlapping predicates: a push wakes the waiter that
  // arrived first among those whose matcher accepts, so a selective waiter
  // is not starved by a wildcard one that arrived later.
  Simulation sim;
  Mailbox<Envelope> box(sim);
  std::vector<std::pair<char, int>> got;
  sim.spawn([](Mailbox<Envelope>& b, std::vector<std::pair<char, int>>& got) -> Task<> {
    got.emplace_back('s', (co_await b.recv(WildcardMatch{-1, 7})).body);  // selective, first
  }(box, got), "selective");
  sim.spawn([](Simulation& s, Mailbox<Envelope>& b, std::vector<std::pair<char, int>>& got)
                -> Task<> {
    co_await s.delay(microseconds(1));
    got.emplace_back('w', (co_await b.recv(WildcardMatch{-1, -1})).body);  // wildcard, second
  }(sim, box, got), "wildcard");
  sim.spawn([](Simulation& s, Mailbox<Envelope>& b) -> Task<> {
    co_await s.delay(milliseconds(1));
    b.push({.src = 0, .tag = 7, .body = 10});  // both match; selective waiter wins (older)
    b.push({.src = 0, .tag = 3, .body = 20});  // only the wildcard waiter matches
  }(sim, box), "producer");
  sim.run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], std::make_pair('s', 10));
  EXPECT_EQ(got[1], std::make_pair('w', 20));
}

TEST(MailboxEdge, NonMatchingPushQueuesPastBlockedWaiter) {
  // A waiter whose matcher rejects an item must leave it queued for later
  // receivers instead of consuming or dropping it.
  Simulation sim;
  Mailbox<Envelope> box(sim);
  int selective = 0, sweeper = 0;
  sim.spawn([](Mailbox<Envelope>& b, int& selective) -> Task<> {
    selective = (co_await b.recv(WildcardMatch{5, -1})).body;
  }(box, selective), "selective");
  sim.spawn([](Simulation& s, Mailbox<Envelope>& b, int& sweeper) -> Task<> {
    co_await s.delay(milliseconds(2));
    sweeper = (co_await b.recv()).body;
  }(sim, box, sweeper), "sweeper");
  sim.spawn([](Simulation& s, Mailbox<Envelope>& b) -> Task<> {
    co_await s.delay(milliseconds(1));
    b.push({.src = 1, .tag = 0, .body = 111});  // rejected by the selective waiter
    b.push({.src = 5, .tag = 0, .body = 555});
  }(sim, box), "producer");
  sim.run();
  EXPECT_EQ(selective, 555);
  EXPECT_EQ(sweeper, 111);
}

// ---------- satellite: one-shot cancellable timer ---------------------------

TEST(Timer, ArmFiresAtDeadline) {
  Simulation sim;
  Timer timer(sim);
  TimePoint fired{};
  sim.spawn([](Simulation& s, Timer& t, TimePoint& fired) -> Task<> {
    t.arm(s.now() + milliseconds(5), [&s, &fired] { fired = s.now(); });
    EXPECT_TRUE(t.armed());
    co_return;
  }(sim, timer, fired));
  sim.run();
  EXPECT_EQ(fired, TimePoint::origin() + milliseconds(5));
  EXPECT_FALSE(timer.armed());
}

TEST(Timer, CancelSuppressesCallbackButHoldsClock) {
  Simulation sim;
  Timer timer(sim);
  bool fired = false;
  sim.spawn([](Simulation& s, Timer& t, bool& fired) -> Task<> {
    t.arm(s.now() + milliseconds(10), [&fired] { fired = true; });
    co_await s.delay(milliseconds(1));
    t.cancel();
    EXPECT_FALSE(t.armed());
  }(sim, timer, fired));
  // Documented cost of cancel(): the queued no-op still pops, so the run
  // ends at the timer's original deadline.
  EXPECT_EQ(sim.run(), TimePoint::origin() + milliseconds(10));
  EXPECT_FALSE(fired);
}

TEST(Timer, RearmSupersedesEarlierDeadline) {
  Simulation sim;
  Timer timer(sim);
  std::vector<int> fired;
  sim.spawn([](Simulation& s, Timer& t, std::vector<int>& fired) -> Task<> {
    t.arm(s.now() + milliseconds(3), [&fired] { fired.push_back(1); });
    co_await s.delay(milliseconds(1));
    t.arm(s.now() + milliseconds(7), [&fired] { fired.push_back(2); });  // replaces #1
    co_return;
  }(sim, timer, fired));
  sim.run();
  EXPECT_EQ(fired, (std::vector<int>{2}));
}

TEST(Timer, StateOutlivesTimerObject) {
  // Destroying the Timer after cancel() must leave the in-flight event
  // harmless (the shared state keeps the generation check alive).
  Simulation sim;
  bool fired = false;
  {
    Timer timer(sim);
    timer.arm(TimePoint::origin() + milliseconds(4), [&fired] { fired = true; });
    timer.cancel();
  }
  sim.run();
  EXPECT_FALSE(fired);
}

// ---------- identical-timestamp ordering audit ------------------------------
//
// The trace subsystem records events in dispatch order, so dispatch order at
// equal timestamps must itself be pinned: the queue breaks time ties by FIFO
// sequence number, independent of heap internals. These regressions fix that
// contract for the two producers the probes ride on (timers and delays).

TEST(Timer, SameDeadlineTimersFireInArmOrder) {
  Simulation sim;
  Timer a(sim), b(sim), c(sim);
  std::vector<int> fired;
  const TimePoint deadline = TimePoint::origin() + milliseconds(2);
  a.arm(deadline, [&fired] { fired.push_back(1); });
  b.arm(deadline, [&fired] { fired.push_back(2); });
  c.arm(deadline, [&fired] { fired.push_back(3); });
  sim.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(Timer, SameDeadlineMixOfTimersAndDelaysKeepsScheduleOrder) {
  // A delay resuming and a timer firing at the same instant dispatch in the
  // order they were pushed onto the event queue, not by producer kind.
  Simulation sim;
  Timer timer(sim);
  std::vector<char> order;
  sim.spawn([](Simulation& s, std::vector<char>& order) -> Task<> {
    co_await s.delay(milliseconds(3));
    order.push_back('d');
  }(sim, order), "delayer");
  timer.arm(TimePoint::origin() + milliseconds(3),
            [&order] { order.push_back('t'); });
  sim.run();
  // Spawned coroutines start lazily inside run(), so the timer's event was
  // pushed first and FIFO tie-breaking dispatches it first. What matters for
  // trace determinism is that this order is pinned, not which one wins.
  EXPECT_EQ(order, (std::vector<char>{'t', 'd'}));
}

TEST(Timer, RearmAtSameTimestampGetsFreshFifoSlot) {
  // Re-arming at an identical deadline must still fire exactly once and
  // after events queued between the two arms (a new sequence number is
  // allocated; the superseded event is a no-op).
  Simulation sim;
  Timer timer(sim);
  std::vector<int> order;
  const TimePoint deadline = TimePoint::origin() + milliseconds(1);
  timer.arm(deadline, [&order] { order.push_back(1); });
  sim.schedule_at(deadline, [&order] { order.push_back(2); });
  timer.arm(deadline, [&order] { order.push_back(3); });  // supersedes #1
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{2, 3}));
}

}  // namespace
}  // namespace pdc::sim
