// Property-based application tests (pre-fault baseline): for a fixed list
// of seeds, derive randomized workload sizes and assert every distributed
// implementation equals its serial reference across all three tools and
// two platform fabrics (one switched, one shared-bus). The seed list is
// fixed so CI is deterministic; growing it widens the property sweep.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "apps/fft/parallel.hpp"
#include "apps/jpeg/parallel.hpp"
#include "apps/mc/montecarlo.hpp"
#include "apps/sort/psrs.hpp"
#include "mp/api.hpp"
#include "sim/rng.hpp"

namespace pdc {
namespace {

using host::PlatformId;
using mp::ToolKind;

const std::vector<std::uint64_t>& property_seeds() {
  static const std::vector<std::uint64_t> kSeeds = {1, 2, 3};
  return kSeeds;
}

struct Combo {
  ToolKind tool;
  PlatformId platform;
};

class PropertyApps : public ::testing::TestWithParam<Combo> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, PropertyApps,
    ::testing::Values(Combo{ToolKind::P4, PlatformId::AlphaFddi},
                      Combo{ToolKind::P4, PlatformId::Sp1Switch},
                      Combo{ToolKind::Pvm, PlatformId::AlphaFddi},
                      Combo{ToolKind::Pvm, PlatformId::Sp1Switch},
                      Combo{ToolKind::Express, PlatformId::AlphaFddi},
                      Combo{ToolKind::Express, PlatformId::Sp1Switch}),
    [](const auto& info) {
      const char* fabric =
          info.param.platform == PlatformId::AlphaFddi ? "AlphaFddi" : "Sp1Switch";
      return std::string(to_string(info.param.tool)) + "_" + fabric;
    });

TEST_P(PropertyApps, JpegRandomSizesMatchSerialBitExactly) {
  const auto [tool, platform] = GetParam();
  for (const std::uint64_t seed : property_seeds()) {
    sim::Rng rng(sim::named_stream(seed, "pdc.test.jpeg"));
    // Dimensions must be multiples of 8 (JPEG blocks); strips are 8-row
    // aligned, so any multiple works for any proc count.
    const int w = 8 * static_cast<int>(rng.uniform(2, 6));
    const int h = 8 * static_cast<int>(rng.uniform(2, 6));
    const int quality = static_cast<int>(rng.uniform(20, 90));
    const int procs = static_cast<int>(rng.uniform(2, 4));
    const auto img = apps::jpeg::make_test_image(w, h, rng.next_u64());
    const auto expected = apps::jpeg::compress(img, quality);
    std::vector<std::int16_t> got;
    auto program = [&](mp::Communicator& c) -> sim::Task<void> {
      co_await apps::jpeg::compress_distributed(c, img, quality,
                                                c.rank() == 0 ? &got : nullptr);
    };
    mp::run_spmd(platform, procs, tool, program);
    EXPECT_EQ(got, expected) << "seed " << seed << " " << w << "x" << h << " q" << quality
                             << " procs " << procs;
  }
}

TEST_P(PropertyApps, FftRandomSizesMatchSerial) {
  const auto [tool, platform] = GetParam();
  for (const std::uint64_t seed : property_seeds()) {
    sim::Rng rng(sim::named_stream(seed, "pdc.test.fft"));
    const int n = 1 << rng.uniform(3, 5);  // 8, 16, 32 (power of two required)
    const int procs = static_cast<int>(rng.uniform(2, 4));
    const std::uint64_t signal_seed = rng.next_u64();
    const auto expected = apps::fft::fft2d_serial(apps::fft::make_test_signal(n, signal_seed));
    apps::fft::Matrix got;
    auto program = [&](mp::Communicator& c) -> sim::Task<void> {
      co_await apps::fft::fft2d_distributed(c, n, signal_seed, c.rank() == 0 ? &got : nullptr);
    };
    mp::run_spmd(platform, procs, tool, program);
    ASSERT_EQ(got.n, n);
    EXPECT_LT(apps::fft::max_abs_diff(got, expected), 1e-9)
        << "seed " << seed << " n " << n << " procs " << procs;
  }
}

TEST_P(PropertyApps, MonteCarloRandomWorkloadsMatchSerialExactly) {
  const auto [tool, platform] = GetParam();
  for (const std::uint64_t seed : property_seeds()) {
    sim::Rng rng(sim::named_stream(seed, "pdc.test.mc"));
    const auto samples = static_cast<std::int64_t>(rng.uniform(40'000, 150'000));
    const int rounds = static_cast<int>(rng.uniform(2, 6));
    const int procs = static_cast<int>(rng.uniform(2, 4));
    const std::uint64_t mc_seed = rng.next_u64();
    const auto expected = apps::mc::integrate_serial(samples, rounds, procs, mc_seed);
    apps::mc::Result got{};
    auto program = [&](mp::Communicator& c) -> sim::Task<void> {
      apps::mc::Result local{};
      co_await apps::mc::integrate_distributed(c, samples, rounds, mc_seed, &local);
      if (c.rank() == 0) got = local;
    };
    mp::run_spmd(platform, procs, tool, program);
    EXPECT_EQ(got.samples, expected.samples) << "seed " << seed;
    // Serial reduces in a different order; last-ulp tolerance as in test_apps.
    EXPECT_NEAR(got.estimate, expected.estimate, 1e-12) << "seed " << seed;
  }
}

TEST_P(PropertyApps, PsrsRandomKeyCountsMatchSerialSort) {
  const auto [tool, platform] = GetParam();
  for (const std::uint64_t seed : property_seeds()) {
    sim::Rng rng(sim::named_stream(seed, "pdc.test.psrs"));
    const auto keys = static_cast<std::int64_t>(rng.uniform(5'000, 40'000));
    const int procs = static_cast<int>(rng.uniform(2, 4));
    const std::uint64_t key_seed = rng.next_u64();
    const auto expected = apps::sort::sort_serial(keys, procs, key_seed);
    std::vector<std::int32_t> got;
    auto program = [&](mp::Communicator& c) -> sim::Task<void> {
      co_await apps::sort::psrs_distributed(c, keys, key_seed, c.rank() == 0 ? &got : nullptr);
    };
    mp::run_spmd(platform, procs, tool, program);
    EXPECT_EQ(got, expected) << "seed " << seed << " keys " << keys << " procs " << procs;
    EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
  }
}

}  // namespace
}  // namespace pdc
