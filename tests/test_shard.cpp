// pdceval -- sharded event-loop tests (the conservative-lookahead parallel
// engine, PDC_SIM_THREADS > 1).
//
// The engine's one promise is *bit-identical to serial*: every observable
// of a run -- simulated elapsed time, event count, message/byte totals,
// transport and mailbox statistics, fault-injection tallies, exception
// messages, budget accounting -- must be exactly equal between the serial
// loop and any shard count, including under armed fault plans. These tests
// pin that promise across thread counts {1, 2, 8} and the scale fabrics.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "fault/plan.hpp"
#include "host/platform.hpp"
#include "mp/api.hpp"
#include "mp/pack.hpp"
#include "mp/runtime.hpp"
#include "sim/event_queue.hpp"
#include "sim/mailbox.hpp"
#include "sim/simulation.hpp"
#include "sim/task.hpp"

namespace pdc {
namespace {

using fault::FaultPlan;
using host::PlatformId;
using mp::Communicator;
using mp::ToolKind;

/// RAII intra-run thread override: a failing assertion must not leak the
/// setting into later tests (set_sim_threads is thread-local, but gtest
/// runs every test on this thread).
struct SimThreadsGuard {
  explicit SimThreadsGuard(int t) { mp::set_sim_threads(t); }
  ~SimThreadsGuard() { mp::set_sim_threads(0); }
  SimThreadsGuard(const SimThreadsGuard&) = delete;
  SimThreadsGuard& operator=(const SimThreadsGuard&) = delete;
};

/// Packing hoisted out of the coroutine body: GCC mis-analyses vector
/// growth inlined into a coroutine frame and emits a bogus
/// -Wstringop-overflow; a plain function keeps the build warning-clean.
[[gnu::noinline]] mp::Payload rank_payload(std::int64_t v) {
  mp::Packer pk;
  pk.put<std::int64_t>(v);
  return pk.finish();
}

/// Collective fan-in plus a point-to-point ring shift: exercises both the
/// hub (wire transfers) and cross-shard rank-to-rank hand-off.
mp::RankProgram mixed_traffic(int procs, std::atomic<int>& failures) {
  return [procs, &failures](Communicator& c) -> sim::Task<void> {
    std::vector<std::int32_t> v(32, c.rank() + 1);
    co_await c.global_sum(v);
    const auto expected =
        static_cast<std::int32_t>(std::int64_t{procs} * (procs + 1) / 2);
    for (const auto x : v) {
      if (x != expected) failures.fetch_add(1, std::memory_order_relaxed);
    }
    const int right = (c.rank() + 1) % procs;
    const int left = (c.rank() + procs - 1) % procs;
    co_await c.send(right, /*tag=*/5, rank_payload(c.rank()));
    mp::Message m = co_await c.recv(left, /*tag=*/5);
    mp::PayloadReader r(m.data);
    if (r.get<std::int64_t>() != left) failures.fetch_add(1, std::memory_order_relaxed);
  };
}

/// Field-by-field equality between two RunOutcomes; EXPECT per field so a
/// divergence names exactly which observable broke.
void expect_identical(const mp::RunOutcome& base, const mp::RunOutcome& out,
                      const std::string& label) {
  EXPECT_EQ(base.elapsed.ns, out.elapsed.ns) << label;
  EXPECT_EQ(base.events, out.events) << label;
  EXPECT_EQ(base.messages, out.messages) << label;
  EXPECT_EQ(base.payload_bytes, out.payload_bytes) << label;
  EXPECT_EQ(base.transport, out.transport) << label;
  EXPECT_EQ(base.mailbox, out.mailbox) << label;
  EXPECT_EQ(base.injected.frames, out.injected.frames) << label;
  EXPECT_EQ(base.injected.drops, out.injected.drops) << label;
  EXPECT_EQ(base.injected.flap_drops, out.injected.flap_drops) << label;
  EXPECT_EQ(base.injected.corruptions, out.injected.corruptions) << label;
  EXPECT_EQ(base.injected.duplicates, out.injected.duplicates) << label;
  EXPECT_EQ(base.injected.reorders, out.injected.reorders) << label;
}

// ---------- the matrix: thread count x fabric, clean traffic ----------------

TEST(ShardBitIdentical, CleanTrafficAcrossFabricsAndThreadCounts) {
  for (const auto platform : {PlatformId::ClusterFlat, PlatformId::ClusterFatTree,
                              PlatformId::ClusterDragonfly}) {
    constexpr int kProcs = 96;
    std::atomic<int> failures{0};
    mp::RunOutcome baseline;
    {
      SimThreadsGuard guard(1);
      baseline = mp::run_spmd(platform, kProcs, ToolKind::Express,
                              mixed_traffic(kProcs, failures));
    }
    EXPECT_GT(baseline.events, 0u);
    EXPECT_GT(baseline.messages, static_cast<std::uint64_t>(kProcs));
    for (const int threads : {2, 8}) {
      SimThreadsGuard guard(threads);
      const auto out = mp::run_spmd(platform, kProcs, ToolKind::Express,
                                    mixed_traffic(kProcs, failures));
      expect_identical(baseline, out,
                       std::string(host::to_string(platform)) +
                           " threads=" + std::to_string(threads));
    }
    EXPECT_EQ(failures.load(), 0) << host::to_string(platform);
  }
}

// ---------- the matrix under faults: 5% drop, reliable transport ------------

TEST(ShardBitIdentical, FaultSoakFivePercentDropAcrossThreadCounts) {
  constexpr int kProcs = 64;
  const auto plan = FaultPlan::uniform(0.05);
  std::atomic<int> failures{0};
  mp::RunOutcome baseline;
  {
    SimThreadsGuard guard(1);
    baseline = mp::run_spmd_faulty(PlatformId::ClusterFatTree, kProcs, ToolKind::P4,
                                   plan, mixed_traffic(kProcs, failures));
  }
  // The soak must actually soak: drops happened, the transport recovered.
  EXPECT_GT(baseline.injected.drops, 0);
  EXPECT_GT(baseline.transport.retransmits, 0);
  for (const int threads : {2, 8}) {
    SimThreadsGuard guard(threads);
    const auto out = mp::run_spmd_faulty(PlatformId::ClusterFatTree, kProcs,
                                         ToolKind::P4, plan,
                                         mixed_traffic(kProcs, failures));
    expect_identical(baseline, out, "faulty fat-tree threads=" + std::to_string(threads));
  }
  EXPECT_EQ(failures.load(), 0);
}

// ---------- budget accounting is exact at any thread count ------------------

TEST(ShardBudget, TripMessageAndCountMatchSerialExactly) {
  // 16 spinning ranks; the budget trips mid-run. The sharded loop must
  // consume *exactly* the same serial prefix of events before throwing,
  // with the same message -- not "roughly the budget, somewhere near it".
  auto run_case = [](bool sharded) {
    sim::Simulation s;
    if (sharded) s.configure_shards(8, 16, sim::microseconds(5));
    for (int r = 0; r < 16; ++r) {
      s.spawn_on(r,
                 [](sim::Simulation& sim) -> sim::Task<void> {
                   for (;;) co_await sim.delay(sim::microseconds(1));
                 }(s),
                 "spin" + std::to_string(r));
    }
    s.set_event_budget(1000);
    std::string msg;
    try {
      (void)s.run();
    } catch (const sim::EventBudgetExceeded& e) {
      msg = e.what();
    }
    return std::pair<std::string, std::uint64_t>{msg, s.events_processed()};
  };
  const auto serial = run_case(false);
  const auto sharded = run_case(true);
  EXPECT_FALSE(serial.first.empty()) << "serial run never tripped the budget";
  EXPECT_EQ(serial.first, sharded.first);
  EXPECT_EQ(serial.second, sharded.second);
  EXPECT_LE(sharded.second, 1000u);
}

// ---------- deadlock detection still fires under shards ---------------------

TEST(ShardDeadlock, StarvedRanksAreDetected) {
  sim::Simulation s;
  s.configure_shards(4, 8, sim::microseconds(5));
  std::vector<std::unique_ptr<sim::Mailbox<int>>> boxes;
  for (int r = 0; r < 8; ++r) boxes.push_back(std::make_unique<sim::Mailbox<int>>(s));
  for (int r = 0; r < 8; ++r) {
    s.spawn_on(r,
               [](sim::Mailbox<int>& b) -> sim::Task<void> {
                 (void)co_await b.recv();  // nobody ever sends
               }(*boxes[r]),
               "starved" + std::to_string(r));
  }
  EXPECT_THROW((void)s.run(), sim::DeadlockDetected);
}

// ---------- shard-count plumbing --------------------------------------------

TEST(ShardConfig, ClampsAndRejectsLateConfiguration) {
  {
    // More shards than ranks clamps; a lone rank degenerates to serial.
    sim::Simulation s;
    s.configure_shards(8, 1, sim::microseconds(1));
    EXPECT_EQ(s.shard_count(), 1);
  }
  {
    // Zero lookahead cannot bound a window: serial.
    sim::Simulation s;
    s.configure_shards(4, 16, sim::Duration{0});
    EXPECT_EQ(s.shard_count(), 1);
  }
  {
    sim::Simulation s;
    s.configure_shards(4, 16, sim::microseconds(1));
    EXPECT_EQ(s.shard_count(), 4);
    // Contiguous, covering, monotone rank partition.
    int prev = -1;
    for (int r = 0; r < 16; ++r) {
      const int sh = s.shard_of(r);
      EXPECT_GE(sh, prev);
      EXPECT_LT(sh, 4);
      prev = sh;
    }
    EXPECT_EQ(s.shard_of(0), 0);
    EXPECT_EQ(s.shard_of(15), 3);
    EXPECT_THROW(s.configure_shards(2, 16, sim::microseconds(1)), std::logic_error);
  }
  {
    // A simulation that already has work cannot be sharded retroactively.
    sim::Simulation s;
    s.spawn([](sim::Simulation& sim) -> sim::Task<void> {
      co_await sim.delay(sim::microseconds(1));
    }(s));
    EXPECT_THROW(s.configure_shards(2, 4, sim::microseconds(1)), std::logic_error);
  }
}

// ---------- event-queue seq plumbing the sharded loop relies on -------------

TEST(EventQueueSeq, ExplicitSeqsOrderByTimeThenSeq) {
  // push_seq's contract mirrors the sharded loop's single global counter:
  // seqs arrive in increasing order, times may go backwards. Ordering out
  // is (time, seq) -- a later-seq event at an earlier time fires first.
  sim::EventQueue q;
  std::vector<int> order;
  const sim::TimePoint t1{100};
  const sim::TimePoint t2{200};
  q.push_seq(t2, 3, [&] { order.push_back(3); });
  q.push_seq(t1, 7, [&] { order.push_back(7); });  // earlier time, later seq
  q.push_seq(t2, 9, [&] { order.push_back(9); });  // ties with seq 3 on time
  sim::TimePoint at{};
  std::uint64_t seq = 0;
  sim::Event ev;
  ASSERT_TRUE(q.pop_next(sim::TimePoint{1000}, at, seq, ev));
  EXPECT_EQ(at.ns, 100);
  EXPECT_EQ(seq, 7u);
  ev();
  ASSERT_TRUE(q.pop_next(sim::TimePoint{1000}, at, seq, ev));
  EXPECT_EQ(at.ns, 200);
  EXPECT_EQ(seq, 3u);
  ev();
  ASSERT_TRUE(q.pop_next(sim::TimePoint{1000}, at, seq, ev));
  EXPECT_EQ(seq, 9u);
  ev();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(order, (std::vector<int>{7, 3, 9}));
  // Ordinary pushes afterwards continue above the highest explicit seq.
  EXPECT_GE(q.next_seq(), 10u);
}

TEST(EventQueueSeq, SetNextSeqOnlyRaises) {
  sim::EventQueue q;
  q.set_next_seq(50);
  EXPECT_EQ(q.next_seq(), 50u);
  q.set_next_seq(10);  // never lowers: provisional window seqs stay above real ones
  EXPECT_EQ(q.next_seq(), 50u);
  q.push(sim::TimePoint{5}, [] {});
  EXPECT_EQ(q.next_seq(), 51u);
}

}  // namespace
}  // namespace pdc
