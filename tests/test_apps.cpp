// Application suite tests: serial codecs/algorithms are correct, and every
// distributed implementation produces results identical to its serial
// reference under every tool and a sweep of process counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>

#include "apps/fft/parallel.hpp"
#include "apps/jpeg/parallel.hpp"
#include "apps/mc/montecarlo.hpp"
#include "apps/sort/psrs.hpp"
#include "mp/api.hpp"

namespace pdc {
namespace {

using host::PlatformId;
using mp::ToolKind;

// ---------- JPEG codec ------------------------------------------------------

TEST(JpegCodec, DctRoundTripsExactly) {
  double in[8][8], freq[8][8], back[8][8];
  for (int x = 0; x < 8; ++x) {
    for (int y = 0; y < 8; ++y) in[x][y] = std::sin(x * 0.9) * 40 + y * 3 - 20;
  }
  apps::jpeg::forward_dct(in, freq);
  apps::jpeg::inverse_dct(freq, back);
  for (int x = 0; x < 8; ++x) {
    for (int y = 0; y < 8; ++y) EXPECT_NEAR(back[x][y], in[x][y], 1e-9);
  }
}

TEST(JpegCodec, DctOfConstantBlockIsDcOnly) {
  double in[8][8], freq[8][8];
  for (auto& row : in) std::fill(row, row + 8, 100.0);
  apps::jpeg::forward_dct(in, freq);
  EXPECT_NEAR(freq[0][0], 800.0, 1e-9);  // 8 * mean
  for (int u = 0; u < 8; ++u) {
    for (int v = 0; v < 8; ++v) {
      if (u || v) EXPECT_NEAR(freq[u][v], 0.0, 1e-9);
    }
  }
}

TEST(JpegCodec, QuantTableScalesWithQuality) {
  const auto q10 = apps::jpeg::quant_table(10);
  const auto q90 = apps::jpeg::quant_table(90);
  for (std::size_t i = 0; i < q10.size(); ++i) {
    EXPECT_GE(q10[i], q90[i]);
    EXPECT_GE(q90[i], 1);
    EXPECT_LE(q10[i], 255);
  }
}

TEST(JpegCodec, CompressDecompressPreservesImageQuality) {
  const auto img = apps::jpeg::make_test_image(64, 64, 7);
  const auto stream = apps::jpeg::compress(img, 75);
  // It actually compresses: symbol stream smaller than raw pixels.
  EXPECT_LT(stream.size() * sizeof(std::int16_t), img.pixels.size());
  const auto back = apps::jpeg::decompress(stream, 64, 64, 75);
  EXPECT_GT(apps::jpeg::psnr(img, back), 30.0);
  // Lower quality -> smaller stream, lower fidelity.
  const auto stream20 = apps::jpeg::compress(img, 20);
  EXPECT_LT(stream20.size(), stream.size());
  const auto back20 = apps::jpeg::decompress(stream20, 64, 64, 20);
  EXPECT_LT(apps::jpeg::psnr(img, back20), apps::jpeg::psnr(img, back));
}

TEST(JpegCodec, CompressRowsSplitsCleanly) {
  const auto img = apps::jpeg::make_test_image(32, 32, 3);
  const auto whole = apps::jpeg::compress(img, 50);
  auto a = apps::jpeg::compress_rows(img, 0, 16, 50);
  const auto b = apps::jpeg::compress_rows(img, 16, 32, 50);
  a.insert(a.end(), b.begin(), b.end());
  EXPECT_EQ(a, whole);
  EXPECT_THROW(apps::jpeg::compress_rows(img, 3, 16, 50), std::invalid_argument);
}

TEST(JpegCodec, DecompressRejectsCorruptStreams) {
  const auto img = apps::jpeg::make_test_image(16, 16, 5);
  auto stream = apps::jpeg::compress(img, 50);
  EXPECT_THROW(apps::jpeg::decompress({stream.data(), stream.size() - 1}, 16, 16, 50),
               std::invalid_argument);
  EXPECT_THROW(apps::jpeg::decompress(stream, 17, 16, 50), std::invalid_argument);
}

// ---------- FFT -------------------------------------------------------------

TEST(Fft, KnownTransformOfImpulse) {
  std::vector<apps::fft::Complex> v(8, {0, 0});
  v[0] = {1, 0};
  apps::fft::fft1d(v);
  for (const auto& x : v) {
    EXPECT_NEAR(x.real(), 1.0, 1e-12);
    EXPECT_NEAR(x.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, SingleToneLandsInOneBin) {
  constexpr int kN = 64;
  std::vector<apps::fft::Complex> v(kN);
  for (int i = 0; i < kN; ++i) {
    v[static_cast<std::size_t>(i)] = {std::cos(2 * std::numbers::pi * 5 * i / kN), 0.0};
  }
  apps::fft::fft1d(v);
  for (int k = 0; k < kN; ++k) {
    const double mag = std::abs(v[static_cast<std::size_t>(k)]);
    if (k == 5 || k == kN - 5) {
      EXPECT_NEAR(mag, kN / 2.0, 1e-9);
    } else {
      EXPECT_NEAR(mag, 0.0, 1e-9);
    }
  }
}

TEST(Fft, ForwardInverseRoundTrip) {
  auto m = apps::fft::make_test_signal(32, 11);
  const auto original = m;
  auto f = apps::fft::fft2d_serial(std::move(m));
  const auto back = apps::fft::fft2d_serial(std::move(f), /*inverse=*/true);
  EXPECT_LT(apps::fft::max_abs_diff(original, back), 1e-10);
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<apps::fft::Complex> v(12);
  EXPECT_THROW(apps::fft::fft1d(v), std::invalid_argument);
  EXPECT_THROW(apps::fft::make_test_signal(12, 1), std::invalid_argument);
}

// ---------- Distributed == serial, across tools and process counts ----------

struct Combo {
  ToolKind tool;
  int procs;
};

class DistributedApps : public ::testing::TestWithParam<Combo> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, DistributedApps,
    ::testing::Values(Combo{ToolKind::P4, 2}, Combo{ToolKind::P4, 4}, Combo{ToolKind::P4, 8},
                      Combo{ToolKind::Pvm, 2}, Combo{ToolKind::Pvm, 4}, Combo{ToolKind::Pvm, 8},
                      Combo{ToolKind::Express, 2}, Combo{ToolKind::Express, 4},
                      Combo{ToolKind::Express, 8}),
    [](const auto& info) {
      return std::string(to_string(info.param.tool)) + "_" +
             std::to_string(info.param.procs) + "procs";
    });

TEST_P(DistributedApps, JpegMatchesSerialBitExactly) {
  const auto [tool, procs] = GetParam();
  const auto img = apps::jpeg::make_test_image(64, 64, 42);
  const auto expected = apps::jpeg::compress(img, 50);
  std::vector<std::int16_t> got;
  auto program = [&img, &got](mp::Communicator& c) -> sim::Task<void> {
    co_await apps::jpeg::compress_distributed(c, img, 50, c.rank() == 0 ? &got : nullptr);
  };
  mp::run_spmd(PlatformId::AlphaFddi, procs, tool, program);
  EXPECT_EQ(got, expected);
}

TEST_P(DistributedApps, FftMatchesSerial) {
  const auto [tool, procs] = GetParam();
  const auto expected = apps::fft::fft2d_serial(apps::fft::make_test_signal(32, 9));
  apps::fft::Matrix got;
  auto program = [&got](mp::Communicator& c) -> sim::Task<void> {
    co_await apps::fft::fft2d_distributed(c, 32, 9, c.rank() == 0 ? &got : nullptr);
  };
  mp::run_spmd(PlatformId::Sp1Switch, procs, tool, program);
  ASSERT_EQ(got.n, 32);
  EXPECT_LT(apps::fft::max_abs_diff(got, expected), 1e-9);
}

TEST_P(DistributedApps, MonteCarloMatchesSerialExactly) {
  const auto [tool, procs] = GetParam();
  const auto expected = apps::mc::integrate_serial(160'000, 4, procs, 77);
  apps::mc::Result got{};
  auto program = [&got, procs](mp::Communicator& c) -> sim::Task<void> {
    apps::mc::Result local{};
    co_await apps::mc::integrate_distributed(c, 160'000, 4, 77, &local);
    if (c.rank() == 0) got = local;
    (void)procs;
  };
  mp::run_spmd(PlatformId::SunEthernet, procs, tool, program);
  EXPECT_EQ(got.samples, expected.samples);
  EXPECT_NEAR(got.estimate, expected.estimate, 1e-12);
  EXPECT_NEAR(got.estimate, std::numbers::pi, 0.01);
}

TEST_P(DistributedApps, PsrsMatchesSerialSort) {
  const auto [tool, procs] = GetParam();
  const auto expected = apps::sort::sort_serial(40'000, procs, 5);
  std::vector<std::int32_t> got;
  auto program = [&got](mp::Communicator& c) -> sim::Task<void> {
    co_await apps::sort::psrs_distributed(c, 40'000, 5, c.rank() == 0 ? &got : nullptr);
  };
  mp::run_spmd(PlatformId::SunAtmLan, std::min(procs, 4), tool, program);
  const auto check = apps::sort::sort_serial(40'000, std::min(procs, 4), 5);
  EXPECT_EQ(got, check);
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
  (void)expected;
}

TEST(DistributedApps, SingleProcessDegeneratesGracefully) {
  for (ToolKind tool : mp::all_tools()) {
    std::vector<std::int32_t> got;
    auto program = [&got](mp::Communicator& c) -> sim::Task<void> {
      co_await apps::sort::psrs_distributed(c, 10'000, 3, &got);
    };
    mp::run_spmd(PlatformId::AlphaFddi, 1, tool, program);
    EXPECT_EQ(got, apps::sort::sort_serial(10'000, 1, 3)) << to_string(tool);
  }
}

}  // namespace
}  // namespace pdc
