// Unit tests for network models and platform/host substrates.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "host/platform.hpp"
#include "net/shared_bus.hpp"
#include "net/switched.hpp"
#include "sim/simulation.hpp"

namespace pdc {
namespace {

using host::PlatformId;

TEST(CpuModel, CostScalesWithRates) {
  const auto& alpha = host::platform_spec(PlatformId::AlphaFddi).cpu;
  const auto& elc = host::platform_spec(PlatformId::SunEthernet).cpu;
  // 1 Mflop on a 40 Mflop/s Alpha = 25 ms.
  EXPECT_NEAR(alpha.compute(1e6).millis(), 25.0, 1e-6);
  // The ELC is slower than the Alpha at everything.
  EXPECT_GT(elc.compute(1e6), alpha.compute(1e6));
  EXPECT_GT(elc.copy(1 << 20), alpha.copy(1 << 20));
  EXPECT_GT(elc.os_crossing, alpha.os_crossing);
  EXPECT_GT(elc.int_ops(1e6), alpha.int_ops(1e6));
}

TEST(SharedBus, SerializationMatchesLineRate) {
  sim::Simulation simu;
  net::SharedBusParams p;
  p.per_frame_gap = sim::Duration::zero();
  p.propagation = sim::Duration::zero();
  p.frame_overhead_bytes = 0;
  net::SharedBusNetwork bus(simu, "eth", p);
  // 10 Mb/s => 1250 bytes per ms.
  const auto t = bus.transfer(0, 1, 1250);
  EXPECT_NEAR((t - sim::TimePoint::origin()).millis(), 1.0, 1e-9);
}

TEST(SharedBus, ConcurrentSendersSerialize) {
  sim::Simulation simu;
  net::SharedBusParams p;
  net::SharedBusNetwork bus(simu, "eth", p);
  const auto t1 = bus.transfer(0, 1, 10000);
  const auto t2 = bus.transfer(2, 3, 10000);
  // Second transfer cannot start before the first finishes (shared medium).
  EXPECT_GE((t2 - t1).ns, ((t1 - sim::TimePoint::origin()) - p.propagation).ns);
}

TEST(SharedBus, ZeroByteMessageStillCostsAFrame) {
  sim::Simulation simu;
  net::SharedBusNetwork bus(simu, "eth", {});
  const auto t = bus.transfer(0, 1, 0);
  EXPECT_GT(t, sim::TimePoint::origin());
  EXPECT_GT(bus.wire_bytes(0), 0);
}

TEST(SharedBus, NegativeBytesClampToOneFrame) {
  // Regression: a negative byte count used to flow straight into
  // `bytes + frames * overhead`, producing negative wire bytes -- i.e. a
  // serialization-time *credit*. It must cost exactly an empty frame.
  sim::Simulation simu;
  net::SharedBusNetwork bus(simu, "eth", {});
  EXPECT_EQ(bus.wire_bytes(-1), bus.wire_bytes(0));
  EXPECT_EQ(bus.wire_bytes(-1'000'000), bus.wire_bytes(0));
  EXPECT_GT(bus.wire_bytes(-1), 0);
}

TEST(Switched, NegativeBytesClampToOneFrame) {
  sim::Simulation simu;
  net::SwitchedNetwork fddi(simu, "fddi", 4, {});
  EXPECT_EQ(fddi.wire_bytes(-1), fddi.wire_bytes(0));
  EXPECT_EQ(fddi.wire_bytes(-1'000'000), fddi.wire_bytes(0));
  EXPECT_GT(fddi.wire_bytes(-1), 0);

  // ATM cell path: negative counts pad up to a single cell, like zero.
  net::SwitchedParams atm_p;
  atm_p.cell_payload = 48;
  atm_p.cell_total = 53;
  net::SwitchedNetwork atm(simu, "atm", 4, atm_p);
  EXPECT_EQ(atm.wire_bytes(-1), atm.wire_bytes(0));
  EXPECT_EQ(atm.wire_bytes(-1'000'000), 53);
}

TEST(SharedBus, ChunkedFramesClosedFormMatchesPerChunkLoop) {
  // The closed form replaced an O(chunks) loop; pin it against the
  // straightforward per-chunk accumulation across awkward combinations
  // (chunk < frame, chunk == frame, chunk straddling frames, ragged tails).
  sim::Simulation simu;
  for (std::int64_t frame_payload : {53, 512, 1500}) {
    net::SharedBusParams params;
    params.frame_payload = frame_payload;
    net::SharedBusNetwork bus(simu, "eth", params);
    for (std::int64_t chunk : {1, 7, 53, 512, 1000, 4096}) {
      net::ChunkProtocol protocol;
      protocol.chunk_bytes = chunk;
      for (std::int64_t bytes :
           {std::int64_t{0}, std::int64_t{1}, chunk - 1, chunk, chunk + 1, 3 * chunk,
            3 * chunk + 17, std::int64_t{100000}}) {
        if (bytes < 0) continue;
        std::int64_t loop_frames = 0;
        if (bytes <= 0) {
          loop_frames = bus.frames_for(0);
        } else {
          for (std::int64_t off = 0; off < bytes; off += chunk) {
            loop_frames += bus.frames_for(std::min(chunk, bytes - off));
          }
        }
        EXPECT_EQ(bus.chunked_frames(bytes, protocol), loop_frames)
            << "frame=" << frame_payload << " chunk=" << chunk << " bytes=" << bytes;
      }
    }
  }
}

TEST(Switched, DistinctPairsRunInParallel) {
  sim::Simulation simu;
  net::SwitchedParams p;
  net::SwitchedNetwork sw(simu, "fddi", 4, p);
  const auto t1 = sw.transfer(0, 1, 100000);
  const auto t2 = sw.transfer(2, 3, 100000);
  // Same size, disjoint ports: identical arrival times.
  EXPECT_EQ(t1, t2);
}

TEST(Switched, ManyToOneQueuesOnReceiverPort) {
  sim::Simulation simu;
  net::SwitchedParams p;
  net::SwitchedNetwork sw(simu, "fddi", 4, p);
  const auto t1 = sw.transfer(1, 0, 100000);
  const auto t2 = sw.transfer(2, 0, 100000);
  const auto t3 = sw.transfer(3, 0, 100000);
  EXPECT_LT(t1, t2);
  EXPECT_LT(t2, t3);
}

TEST(Switched, SameSourceSerializesOnTxPort) {
  sim::Simulation simu;
  net::SwitchedParams p;
  net::SwitchedNetwork sw(simu, "sw", 4, p);
  const auto t1 = sw.transfer(0, 1, 100000);
  const auto t2 = sw.transfer(0, 2, 100000);
  EXPECT_LT(t1, t2);
}

TEST(Switched, AtmCellTax) {
  sim::Simulation simu;
  net::SwitchedParams p;
  p.cell_payload = 48;
  p.cell_total = 53;
  net::SwitchedNetwork atm(simu, "atm", 2, p);
  // 1 byte payload + 8 byte AAL5 trailer -> 1 cell of 53 bytes.
  EXPECT_EQ(atm.wire_bytes(1), 53);
  // 40 bytes + trailer -> exactly one cell; 41 bytes -> two cells.
  EXPECT_EQ(atm.wire_bytes(40), 53);
  EXPECT_EQ(atm.wire_bytes(41), 2 * 53);
  // Large messages: ~10.4% overhead.
  EXPECT_NEAR(static_cast<double>(atm.wire_bytes(65536)) / 65536.0, 53.0 / 48.0, 0.01);
}

TEST(Switched, TrunkAddsCrossSiteCost) {
  sim::Simulation simu;
  net::SwitchedParams p;
  p.trunk_split = 2;
  p.trunk_rate_bps = 155e6;
  net::SwitchedNetwork wan(simu, "wan", 4, p);

  sim::Simulation simu2;
  net::SwitchedParams p2 = p;
  p2.trunk_split.reset();
  net::SwitchedNetwork lan(simu2, "lan", 4, p2);

  const auto same_site = lan.transfer(0, 1, 65536);
  const auto cross_site = wan.transfer(0, 2, 65536);
  EXPECT_GT(cross_site, same_site);
  // Within a site, the WAN behaves like the LAN.
  EXPECT_EQ(wan.transfer(0, 1, 65536), lan.transfer(0, 1, 65536));
}

TEST(Switched, RejectsBadNodeIds) {
  sim::Simulation simu;
  net::SwitchedNetwork sw(simu, "sw", 2, {});
  EXPECT_THROW(sw.transfer(0, 5, 100), std::out_of_range);
  EXPECT_THROW(sw.transfer(-1, 0, 100), std::out_of_range);
}

TEST(Platform, CatalogueMatchesPaper) {
  EXPECT_EQ(host::all_platforms().size(), 6u);
  EXPECT_STREQ(host::to_string(PlatformId::SunEthernet), "SUN/Ethernet");
  EXPECT_STREQ(host::to_string(PlatformId::SunAtmWan), "SUN/ATM-WAN(NYNET)");
  EXPECT_EQ(host::platform_spec(PlatformId::AlphaFddi).max_nodes, 8);
  EXPECT_EQ(host::platform_spec(PlatformId::Sp1Switch).max_nodes, 16);
  EXPECT_DOUBLE_EQ(host::platform_spec(PlatformId::AlphaFddi).cpu.clock_mhz, 150.0);
}

TEST(Platform, ClusterConstruction) {
  sim::Simulation simu;
  host::Cluster c(simu, PlatformId::AlphaFddi, 8);
  EXPECT_EQ(c.size(), 8);
  EXPECT_EQ(c.node(3).id(), 3);
  EXPECT_GT(c.network().line_rate_bps(), 0.0);
  EXPECT_THROW(host::Cluster(simu, PlatformId::SunAtmLan, 9), std::invalid_argument);
  EXPECT_THROW(host::Cluster(simu, PlatformId::SunAtmLan, 0), std::invalid_argument);
}

TEST(Platform, NetworkRelativeSpeeds) {
  // One 64 KB transfer, idle network: ATM LAN beats Ethernet by ~an order
  // of magnitude; the SP-1 crossbar is the fastest wire.
  auto one_transfer = [](PlatformId id) {
    sim::Simulation simu;
    host::Cluster c(simu, id, 4);
    return (c.network().transfer(0, 1, 65536) - sim::TimePoint::origin()).seconds();
  };
  const double eth = one_transfer(PlatformId::SunEthernet);
  const double atm = one_transfer(PlatformId::SunAtmLan);
  const double fddi = one_transfer(PlatformId::AlphaFddi);
  const double sp1 = one_transfer(PlatformId::Sp1Switch);
  EXPECT_GT(eth, 5 * atm);
  EXPECT_GT(eth, 5 * fddi);
  EXPECT_LT(sp1, atm);
  EXPECT_LT(sp1, fddi);
}

}  // namespace
}  // namespace pdc
