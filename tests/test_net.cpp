// Unit tests for network models and platform/host substrates.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "host/platform.hpp"
#include "net/dragonfly.hpp"
#include "net/fat_tree.hpp"
#include "net/shared_bus.hpp"
#include "net/switched.hpp"
#include "sim/simulation.hpp"

namespace pdc {
namespace {

using host::PlatformId;

TEST(CpuModel, CostScalesWithRates) {
  const auto& alpha = host::platform_spec(PlatformId::AlphaFddi).cpu;
  const auto& elc = host::platform_spec(PlatformId::SunEthernet).cpu;
  // 1 Mflop on a 40 Mflop/s Alpha = 25 ms.
  EXPECT_NEAR(alpha.compute(1e6).millis(), 25.0, 1e-6);
  // The ELC is slower than the Alpha at everything.
  EXPECT_GT(elc.compute(1e6), alpha.compute(1e6));
  EXPECT_GT(elc.copy(1 << 20), alpha.copy(1 << 20));
  EXPECT_GT(elc.os_crossing, alpha.os_crossing);
  EXPECT_GT(elc.int_ops(1e6), alpha.int_ops(1e6));
}

TEST(SharedBus, SerializationMatchesLineRate) {
  sim::Simulation simu;
  net::SharedBusParams p;
  p.per_frame_gap = sim::Duration::zero();
  p.propagation = sim::Duration::zero();
  p.frame_overhead_bytes = 0;
  net::SharedBusNetwork bus(simu, "eth", p);
  // 10 Mb/s => 1250 bytes per ms.
  const auto t = bus.transfer(0, 1, 1250);
  EXPECT_NEAR((t - sim::TimePoint::origin()).millis(), 1.0, 1e-9);
}

TEST(SharedBus, ConcurrentSendersSerialize) {
  sim::Simulation simu;
  net::SharedBusParams p;
  net::SharedBusNetwork bus(simu, "eth", p);
  const auto t1 = bus.transfer(0, 1, 10000);
  const auto t2 = bus.transfer(2, 3, 10000);
  // Second transfer cannot start before the first finishes (shared medium).
  EXPECT_GE((t2 - t1).ns, ((t1 - sim::TimePoint::origin()) - p.propagation).ns);
}

TEST(SharedBus, ZeroByteMessageStillCostsAFrame) {
  sim::Simulation simu;
  net::SharedBusNetwork bus(simu, "eth", {});
  const auto t = bus.transfer(0, 1, 0);
  EXPECT_GT(t, sim::TimePoint::origin());
  EXPECT_GT(bus.wire_bytes(0), 0);
}

TEST(SharedBus, NegativeBytesClampToOneFrame) {
  // Regression: a negative byte count used to flow straight into
  // `bytes + frames * overhead`, producing negative wire bytes -- i.e. a
  // serialization-time *credit*. It must cost exactly an empty frame.
  sim::Simulation simu;
  net::SharedBusNetwork bus(simu, "eth", {});
  EXPECT_EQ(bus.wire_bytes(-1), bus.wire_bytes(0));
  EXPECT_EQ(bus.wire_bytes(-1'000'000), bus.wire_bytes(0));
  EXPECT_GT(bus.wire_bytes(-1), 0);
}

TEST(Switched, NegativeBytesClampToOneFrame) {
  sim::Simulation simu;
  net::SwitchedNetwork fddi(simu, "fddi", 4, {});
  EXPECT_EQ(fddi.wire_bytes(-1), fddi.wire_bytes(0));
  EXPECT_EQ(fddi.wire_bytes(-1'000'000), fddi.wire_bytes(0));
  EXPECT_GT(fddi.wire_bytes(-1), 0);

  // ATM cell path: negative counts pad up to a single cell, like zero.
  net::SwitchedParams atm_p;
  atm_p.cell_payload = 48;
  atm_p.cell_total = 53;
  net::SwitchedNetwork atm(simu, "atm", 4, atm_p);
  EXPECT_EQ(atm.wire_bytes(-1), atm.wire_bytes(0));
  EXPECT_EQ(atm.wire_bytes(-1'000'000), 53);
}

TEST(SharedBus, ChunkedFramesClosedFormMatchesPerChunkLoop) {
  // The closed form replaced an O(chunks) loop; pin it against the
  // straightforward per-chunk accumulation across awkward combinations
  // (chunk < frame, chunk == frame, chunk straddling frames, ragged tails).
  sim::Simulation simu;
  for (std::int64_t frame_payload : {53, 512, 1500}) {
    net::SharedBusParams params;
    params.frame_payload = frame_payload;
    net::SharedBusNetwork bus(simu, "eth", params);
    for (std::int64_t chunk : {1, 7, 53, 512, 1000, 4096}) {
      net::ChunkProtocol protocol;
      protocol.chunk_bytes = chunk;
      for (std::int64_t bytes :
           {std::int64_t{0}, std::int64_t{1}, chunk - 1, chunk, chunk + 1, 3 * chunk,
            3 * chunk + 17, std::int64_t{100000}}) {
        if (bytes < 0) continue;
        std::int64_t loop_frames = 0;
        if (bytes <= 0) {
          loop_frames = bus.frames_for(0);
        } else {
          for (std::int64_t off = 0; off < bytes; off += chunk) {
            loop_frames += bus.frames_for(std::min(chunk, bytes - off));
          }
        }
        EXPECT_EQ(bus.chunked_frames(bytes, protocol), loop_frames)
            << "frame=" << frame_payload << " chunk=" << chunk << " bytes=" << bytes;
      }
    }
  }
}

TEST(Switched, DistinctPairsRunInParallel) {
  sim::Simulation simu;
  net::SwitchedParams p;
  net::SwitchedNetwork sw(simu, "fddi", 4, p);
  const auto t1 = sw.transfer(0, 1, 100000);
  const auto t2 = sw.transfer(2, 3, 100000);
  // Same size, disjoint ports: identical arrival times.
  EXPECT_EQ(t1, t2);
}

TEST(Switched, ManyToOneQueuesOnReceiverPort) {
  sim::Simulation simu;
  net::SwitchedParams p;
  net::SwitchedNetwork sw(simu, "fddi", 4, p);
  const auto t1 = sw.transfer(1, 0, 100000);
  const auto t2 = sw.transfer(2, 0, 100000);
  const auto t3 = sw.transfer(3, 0, 100000);
  EXPECT_LT(t1, t2);
  EXPECT_LT(t2, t3);
}

TEST(Switched, SameSourceSerializesOnTxPort) {
  sim::Simulation simu;
  net::SwitchedParams p;
  net::SwitchedNetwork sw(simu, "sw", 4, p);
  const auto t1 = sw.transfer(0, 1, 100000);
  const auto t2 = sw.transfer(0, 2, 100000);
  EXPECT_LT(t1, t2);
}

TEST(Switched, AtmCellTax) {
  sim::Simulation simu;
  net::SwitchedParams p;
  p.cell_payload = 48;
  p.cell_total = 53;
  net::SwitchedNetwork atm(simu, "atm", 2, p);
  // 1 byte payload + 8 byte AAL5 trailer -> 1 cell of 53 bytes.
  EXPECT_EQ(atm.wire_bytes(1), 53);
  // 40 bytes + trailer -> exactly one cell; 41 bytes -> two cells.
  EXPECT_EQ(atm.wire_bytes(40), 53);
  EXPECT_EQ(atm.wire_bytes(41), 2 * 53);
  // Large messages: ~10.4% overhead.
  EXPECT_NEAR(static_cast<double>(atm.wire_bytes(65536)) / 65536.0, 53.0 / 48.0, 0.01);
}

TEST(Switched, TrunkAddsCrossSiteCost) {
  sim::Simulation simu;
  net::SwitchedParams p;
  p.trunk_split = 2;
  p.trunk_rate_bps = 155e6;
  net::SwitchedNetwork wan(simu, "wan", 4, p);

  sim::Simulation simu2;
  net::SwitchedParams p2 = p;
  p2.trunk_split.reset();
  net::SwitchedNetwork lan(simu2, "lan", 4, p2);

  const auto same_site = lan.transfer(0, 1, 65536);
  const auto cross_site = wan.transfer(0, 2, 65536);
  EXPECT_GT(cross_site, same_site);
  // Within a site, the WAN behaves like the LAN.
  EXPECT_EQ(wan.transfer(0, 1, 65536), lan.transfer(0, 1, 65536));
}

TEST(Switched, RejectsBadNodeIds) {
  sim::Simulation simu;
  net::SwitchedNetwork sw(simu, "sw", 2, {});
  EXPECT_THROW(sw.transfer(0, 5, 100), std::out_of_range);
  EXPECT_THROW(sw.transfer(-1, 0, 100), std::out_of_range);
}

// A small fat-tree that is easy to reason about: 4 hosts per edge switch,
// two tiers (capacity 16), 2 uplink planes (2:1 oversubscribed).
net::FatTreeParams small_fat_tree() {
  net::FatTreeParams p;
  p.arity = 4;
  p.levels = 2;
  p.uplinks = 2;
  return p;
}

TEST(FatTree, MeetLevelAndPathLinks) {
  sim::Simulation simu;
  net::FatTreeParams p;
  p.arity = 4;
  p.levels = 3;
  net::FatTreeNetwork ft(simu, "ft", 64, p);
  EXPECT_EQ(ft.meet_level(0, 1), 0);    // same edge switch
  EXPECT_EQ(ft.path_links(0, 1), 0);
  EXPECT_EQ(ft.meet_level(0, 5), 1);    // adjacent edge switches
  EXPECT_EQ(ft.path_links(0, 5), 2);
  EXPECT_EQ(ft.meet_level(0, 17), 2);   // different level-2 subtrees
  EXPECT_EQ(ft.path_links(0, 17), 4);
  EXPECT_EQ(ft.meet_level(3, 3), 0);
}

TEST(FatTree, DistinctEdgePairsRunInParallel) {
  sim::Simulation simu;
  net::FatTreeNetwork ft(simu, "ft", 16, small_fat_tree());
  // Both pairs stay inside their own edge switch: identical arrival times.
  const auto t1 = ft.transfer(0, 1, 1 << 20);
  const auto t2 = ft.transfer(4, 5, 1 << 20);
  EXPECT_EQ(t1, t2);
}

TEST(FatTree, CrossTierTransferCostsMore) {
  sim::Simulation simu;
  net::FatTreeNetwork ft(simu, "ft", 16, small_fat_tree());
  const auto same_edge = ft.transfer(0, 1, 1 << 20);
  sim::Simulation simu2;
  net::FatTreeNetwork ft2(simu2, "ft", 16, small_fat_tree());
  const auto cross = ft2.transfer(0, 15, 1 << 20);
  EXPECT_GT(cross, same_edge);
}

TEST(FatTree, SharedUplinkPlaneSerializes) {
  // D-mod-k: both destinations hash onto plane 0, so the two flows out of
  // edge switch 0 share one uplink cable and must serialize there...
  sim::Simulation simu;
  net::FatTreeNetwork ft(simu, "ft", 16, small_fat_tree());
  (void)ft.transfer(0, 8, 1 << 20);
  const auto contended = ft.transfer(1, 12, 1 << 20);  // 8 % 2 == 12 % 2 == 0
  // ...while a destination on the other plane rides a disjoint cable.
  sim::Simulation simu2;
  net::FatTreeNetwork ft2(simu2, "ft", 16, small_fat_tree());
  (void)ft2.transfer(0, 8, 1 << 20);
  const auto disjoint = ft2.transfer(1, 13, 1 << 20);  // 13 % 2 == 1
  EXPECT_GT(contended, disjoint);
}

TEST(FatTree, RoutingIsDeterministic) {
  // Same construction, same call sequence -> byte-identical arrival times.
  auto run = [] {
    sim::Simulation simu;
    net::FatTreeNetwork ft(simu, "ft", 16, small_fat_tree());
    std::vector<std::int64_t> arrivals;
    for (int src = 0; src < 16; ++src) {
      arrivals.push_back(ft.transfer(src, (src * 7 + 3) % 16, 4096 * (src + 1)).ns);
    }
    return arrivals;
  };
  EXPECT_EQ(run(), run());
}

TEST(FatTree, ResourcesAreCreatedOnFirstUse) {
  sim::Simulation simu;
  net::FatTreeNetwork ft(simu, "ft", 4096, {});
  EXPECT_EQ(ft.active_resources(), 0u);
  (void)ft.transfer(0, 4095, 4096);
  // One tx + one rx port plus the climbed/descended cables -- far from
  // the thousands a fully-materialised fabric would hold.
  EXPECT_LE(ft.active_resources(), 2u + 2u * 3u);
  EXPECT_GE(ft.active_resources(), 2u);
}

TEST(FatTree, RejectsBadIdsAndOverCapacity) {
  sim::Simulation simu;
  net::FatTreeNetwork ft(simu, "ft", 16, small_fat_tree());
  EXPECT_THROW(ft.transfer(0, 16, 100), std::out_of_range);
  EXPECT_THROW(ft.transfer(-1, 0, 100), std::out_of_range);
  // Capacity with arity 4, levels 2 is 16 hosts.
  EXPECT_THROW(net::FatTreeNetwork(simu, "big", 17, small_fat_tree()),
               std::invalid_argument);
}

TEST(FatTree, NegativeBytesClampToOneFrame) {
  sim::Simulation simu;
  net::FatTreeNetwork ft(simu, "ft", 16, small_fat_tree());
  EXPECT_EQ(ft.wire_bytes(-1), ft.wire_bytes(0));
  EXPECT_GT(ft.wire_bytes(-1), 0);
}

net::DragonflyParams small_dragonfly() {
  net::DragonflyParams p;
  p.group_size = 4;
  p.global_links_per_pair = 1;
  return p;
}

TEST(Dragonfly, IntraGroupBeatsInterGroup) {
  sim::Simulation simu;
  net::DragonflyNetwork df(simu, "df", 12, small_dragonfly());
  const auto local = df.transfer(0, 1, 1 << 20);
  sim::Simulation simu2;
  net::DragonflyNetwork df2(simu2, "df", 12, small_dragonfly());
  const auto global = df2.transfer(0, 4, 1 << 20);
  EXPECT_GT(global, local);
}

TEST(Dragonfly, SharedGlobalCableSerializes) {
  // Two flows between the same group pair share the single global cable...
  sim::Simulation simu;
  net::DragonflyNetwork df(simu, "df", 12, small_dragonfly());
  (void)df.transfer(0, 4, 1 << 20);
  const auto contended = df.transfer(1, 5, 1 << 20);
  // ...flows toward different groups ride disjoint cables.
  sim::Simulation simu2;
  net::DragonflyNetwork df2(simu2, "df", 12, small_dragonfly());
  (void)df2.transfer(0, 4, 1 << 20);
  const auto disjoint = df2.transfer(1, 9, 1 << 20);
  EXPECT_GT(contended, disjoint);
}

TEST(Dragonfly, ResourcesAreCreatedOnFirstUse) {
  sim::Simulation simu;
  net::DragonflyNetwork df(simu, "df", 4096, {});
  EXPECT_EQ(df.active_resources(), 0u);
  (void)df.transfer(0, 4095, 4096);
  EXPECT_LE(df.active_resources(), 3u);  // tx + rx + one global cable
}

TEST(Dragonfly, RejectsBadIds) {
  sim::Simulation simu;
  net::DragonflyNetwork df(simu, "df", 12, small_dragonfly());
  EXPECT_THROW(df.transfer(0, 12, 100), std::out_of_range);
  EXPECT_THROW(df.transfer(-1, 0, 100), std::out_of_range);
}

// Regression for byte-count arithmetic at >= 2 GiB per transfer: framing
// math must stay in 64-bit (a 32-bit frames * overhead product would wrap
// past ~2^31 and could even go negative).
TEST(WireBytes, SurvivesMultiGigabyteTransfers) {
  sim::Simulation simu;
  const std::int64_t big = std::int64_t{3} << 30;  // 3 GiB
  {
    net::FatTreeNetwork ft(simu, "ft", 16, small_fat_tree());
    const std::int64_t frames = (big + 4096 - 1) / 4096;
    EXPECT_EQ(ft.wire_bytes(big), big + frames * 48);
    EXPECT_GT(ft.wire_bytes(big), big);
  }
  {
    net::SwitchedParams p;  // FDDI-style framing
    net::SwitchedNetwork sw(simu, "sw", 4, p);
    const std::int64_t frames = (big + p.frame_payload - 1) / p.frame_payload;
    EXPECT_EQ(sw.wire_bytes(big), big + frames * p.frame_overhead_bytes);
  }
  {
    net::SwitchedParams p;
    p.cell_payload = 48;
    p.cell_total = 53;
    net::SwitchedNetwork atm(simu, "atm", 4, p);
    const std::int64_t cells = (big + 8 + 47) / 48;
    EXPECT_EQ(atm.wire_bytes(big), cells * 53);  // ~3.54e9: past int32 range
    EXPECT_GT(atm.wire_bytes(big), std::int64_t{std::numeric_limits<std::int32_t>::max()});
  }
  {
    net::SharedBusParams p;
    net::SharedBusNetwork bus(simu, "eth", p);
    const std::int64_t frames = (big + p.frame_payload - 1) / p.frame_payload;
    EXPECT_EQ(bus.wire_bytes(big), big + frames * p.frame_overhead_bytes);
  }
}

TEST(Platform, ScaleCatalogue) {
  // The paper's field is untouched; the scale platforms live alongside it.
  EXPECT_EQ(host::all_platforms().size(), 6u);
  EXPECT_EQ(host::scale_platforms().size(), 3u);
  for (const auto id : host::scale_platforms()) {
    EXPECT_EQ(host::platform_spec(id).max_nodes, 4096);
    EXPECT_GT(host::platform_spec(id).cpu.clock_mhz, 1000.0);
  }
  EXPECT_STREQ(host::to_string(PlatformId::ClusterFatTree), "CLUSTER/FatTree");
}

TEST(Platform, ClusterNodesAreLazy) {
  sim::Simulation simu;
  host::Cluster c(simu, PlatformId::ClusterFlat, 1024);
  EXPECT_EQ(c.size(), 1024);
  EXPECT_EQ(c.active_nodes(), 0u);
  EXPECT_EQ(c.node(5).id(), 5);
  EXPECT_EQ(c.node(1023).id(), 1023);
  EXPECT_EQ(c.active_nodes(), 2u);
  EXPECT_THROW(host::Cluster(simu, PlatformId::ClusterFlat, 4097), std::invalid_argument);
}

TEST(Platform, CatalogueMatchesPaper) {
  EXPECT_EQ(host::all_platforms().size(), 6u);
  EXPECT_STREQ(host::to_string(PlatformId::SunEthernet), "SUN/Ethernet");
  EXPECT_STREQ(host::to_string(PlatformId::SunAtmWan), "SUN/ATM-WAN(NYNET)");
  EXPECT_EQ(host::platform_spec(PlatformId::AlphaFddi).max_nodes, 8);
  EXPECT_EQ(host::platform_spec(PlatformId::Sp1Switch).max_nodes, 16);
  EXPECT_DOUBLE_EQ(host::platform_spec(PlatformId::AlphaFddi).cpu.clock_mhz, 150.0);
}

TEST(Platform, ClusterConstruction) {
  sim::Simulation simu;
  host::Cluster c(simu, PlatformId::AlphaFddi, 8);
  EXPECT_EQ(c.size(), 8);
  EXPECT_EQ(c.node(3).id(), 3);
  EXPECT_GT(c.network().line_rate_bps(), 0.0);
  EXPECT_THROW(host::Cluster(simu, PlatformId::SunAtmLan, 9), std::invalid_argument);
  EXPECT_THROW(host::Cluster(simu, PlatformId::SunAtmLan, 0), std::invalid_argument);
}

TEST(Platform, NetworkRelativeSpeeds) {
  // One 64 KB transfer, idle network: ATM LAN beats Ethernet by ~an order
  // of magnitude; the SP-1 crossbar is the fastest wire.
  auto one_transfer = [](PlatformId id) {
    sim::Simulation simu;
    host::Cluster c(simu, id, 4);
    return (c.network().transfer(0, 1, 65536) - sim::TimePoint::origin()).seconds();
  };
  const double eth = one_transfer(PlatformId::SunEthernet);
  const double atm = one_transfer(PlatformId::SunAtmLan);
  const double fddi = one_transfer(PlatformId::AlphaFddi);
  const double sp1 = one_transfer(PlatformId::Sp1Switch);
  EXPECT_GT(eth, 5 * atm);
  EXPECT_GT(eth, 5 * fddi);
  EXPECT_LT(sp1, atm);
  EXPECT_LT(sp1, fddi);
}

}  // namespace
}  // namespace pdc
