// Unit tests for the compute-kernel layer (src/kernels): the
// order-preserving contract, pinned pre-kernel golden checksums for every
// app workload (on BOTH dispatch paths), the scratch arena, and the sweep
// host-work telemetry.
//
// The golden constants below were produced by the pre-kernel-layer apps
// (naive DCT with std::cos in the innermost loop, incremental FFT
// twiddles, std::sort, one divide per MC sample) at commit time. The
// kernels layer must reproduce every one of them byte-for-byte; a change
// to any constant means the order-preserving contract was broken.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <complex>
#include <cstdint>
#include <vector>

#include "apps/fft/fft.hpp"
#include "apps/jpeg/codec.hpp"
#include "apps/linalg/lu.hpp"
#include "apps/linalg/matmul.hpp"
#include "apps/mc/montecarlo.hpp"
#include "apps/sort/psrs.hpp"
#include "eval/sweep.hpp"
#include "kernels/arena.hpp"
#include "kernels/dct.hpp"
#include "kernels/dispatch.hpp"
#include "kernels/fft.hpp"
#include "kernels/hostwork.hpp"
#include "kernels/linalg.hpp"
#include "kernels/mc.hpp"
#include "kernels/reference.hpp"
#include "kernels/sort.hpp"
#include "sim/rng.hpp"

namespace pdc {
namespace {

// ---------------------------------------------------------------------------
// Pinned pre-change goldens (see file comment). Seed and workload sizes
// match the APL configurations the paper tables use.
constexpr std::uint64_t kSeed = 20260706;

constexpr std::uint64_t kJpegStreamSize = 25226ULL;
constexpr std::uint64_t kJpegStreamFnv = 0x05477833EB9AD1D1ULL;
constexpr std::uint64_t kJpegPixelsFnv = 0x0BB9269C9CB666BDULL;
constexpr std::uint64_t kJpegPsnrBits = 0x40429FF84961A80EULL;
constexpr std::uint64_t kFftSpectrumFnv = 0xC3B559E1C16933F4ULL;
constexpr std::uint64_t kFftRoundtripFnv = 0x317272A9BA0B385EULL;
constexpr std::uint64_t kPsrsSortedFnv = 0xF0A3726D91E3A489ULL;
constexpr std::uint64_t kMcEstimateBits = 0x400922465630DBA0ULL;
constexpr std::uint64_t kLuFactorsFnv = 0xFF4AEEFBABAFDBFAULL;
constexpr std::uint64_t kLuResidualBits = 0x3D38000000000000ULL;
constexpr std::uint64_t kMatmulFnv = 0xC727AF2BFD5CB647ULL;

std::uint64_t fnv1a(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x00000100000001B3ULL;
  }
  return h;
}

template <typename T>
std::uint64_t fnv1a_vec(const std::vector<T>& v) {
  return fnv1a(v.data(), v.size() * sizeof(T));
}

/// Runs `fn` once per compiled dispatch path (scalar always; AVX2 when the
/// build and CPU provide it), restoring the dispatch override afterwards.
template <typename Fn>
void for_each_isa(Fn&& fn) {
  kernels::force_scalar(true);
  ASSERT_EQ(kernels::active_isa(), kernels::Isa::Scalar);
  fn(kernels::Isa::Scalar);
  kernels::force_scalar(false);
  if (kernels::active_isa() == kernels::Isa::Avx2) {
    fn(kernels::Isa::Avx2);
  }
}

// ---------------------------------------------------------------------------
// Golden reproduction, per app, per dispatch path.

TEST(KernelGoldens, JpegBitIdenticalOnAllPaths) {
  const apps::jpeg::Image img = apps::jpeg::make_test_image(512, 512, kSeed);
  for_each_isa([&](kernels::Isa isa) {
    SCOPED_TRACE(kernels::to_string(isa));
    const auto stream = apps::jpeg::compress(img, 50);
    ASSERT_EQ(stream.size(), kJpegStreamSize);
    EXPECT_EQ(fnv1a_vec(stream), kJpegStreamFnv);
    const apps::jpeg::Image round = apps::jpeg::decompress(stream, 512, 512, 50);
    EXPECT_EQ(fnv1a_vec(round.pixels), kJpegPixelsFnv);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(apps::jpeg::psnr(img, round)), kJpegPsnrBits);
  });
}

TEST(KernelGoldens, FftBitIdenticalOnAllPaths) {
  const apps::fft::Matrix sig = apps::fft::make_test_signal(64, kSeed);
  for_each_isa([&](kernels::Isa isa) {
    SCOPED_TRACE(kernels::to_string(isa));
    const apps::fft::Matrix spec = apps::fft::fft2d_serial(sig, false);
    const apps::fft::Matrix back = apps::fft::fft2d_serial(spec, true);
    EXPECT_EQ(fnv1a_vec(spec.data), kFftSpectrumFnv);
    EXPECT_EQ(fnv1a_vec(back.data), kFftRoundtripFnv);
  });
}

TEST(KernelGoldens, PsrsBitIdenticalOnAllPaths) {
  for_each_isa([&](kernels::Isa isa) {
    SCOPED_TRACE(kernels::to_string(isa));
    const auto sorted = apps::sort::sort_serial(500'000, 8, kSeed);
    EXPECT_EQ(fnv1a_vec(sorted), kPsrsSortedFnv);
  });
}

TEST(KernelGoldens, MonteCarloBitIdenticalOnAllPaths) {
  for_each_isa([&](kernels::Isa isa) {
    SCOPED_TRACE(kernels::to_string(isa));
    const auto mc = apps::mc::integrate_serial(1'500'000, 16, 8, kSeed);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(mc.estimate), kMcEstimateBits);
  });
}

TEST(KernelGoldens, LuBitIdenticalOnAllPaths) {
  const apps::linalg::Mat a = apps::linalg::make_dd_matrix(96, kSeed);
  for_each_isa([&](kernels::Isa isa) {
    SCOPED_TRACE(kernels::to_string(isa));
    const apps::linalg::Mat lu = apps::linalg::lu_serial(a);
    EXPECT_EQ(fnv1a_vec(lu.a), kLuFactorsFnv);
    const double resid = apps::linalg::max_abs_diff(apps::linalg::lu_reconstruct(lu), a);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(resid), kLuResidualBits);
  });
}

TEST(KernelGoldens, MatmulBitIdenticalOnAllPaths) {
  const apps::linalg::Mat a = apps::linalg::make_test_matrix(96, kSeed);
  const apps::linalg::Mat b = apps::linalg::make_test_matrix(96, kSeed ^ 0x5DEECE66DULL);
  for_each_isa([&](kernels::Isa isa) {
    SCOPED_TRACE(kernels::to_string(isa));
    const apps::linalg::Mat c = apps::linalg::multiply_serial(a, b);
    EXPECT_EQ(fnv1a_vec(c.a), kMatmulFnv);
  });
}

// ---------------------------------------------------------------------------
// Kernel vs naive reference, element-for-element.

void fill_block(sim::Rng& rng, double (&b)[8][8]) {
  for (auto& row : b) {
    for (double& v : row) v = rng.next_double() * 256.0 - 128.0;
  }
}

TEST(KernelDct, MatchesReferenceBitForBit) {
  sim::Rng rng(kSeed);
  for (int trial = 0; trial < 32; ++trial) {
    double in[8][8], want[8][8], back_want[8][8];
    fill_block(rng, in);
    kernels::ref::forward_dct(in, want);
    kernels::ref::inverse_dct(want, back_want);
    for_each_isa([&](kernels::Isa isa) {
      SCOPED_TRACE(kernels::to_string(isa));
      double got[8][8], back_got[8][8];
      kernels::forward_dct(in, got);
      kernels::inverse_dct(want, back_got);
      for (int u = 0; u < 8; ++u) {
        for (int v = 0; v < 8; ++v) {
          EXPECT_EQ(std::bit_cast<std::uint64_t>(got[u][v]),
                    std::bit_cast<std::uint64_t>(want[u][v]))
              << "fwd (" << u << "," << v << ")";
          EXPECT_EQ(std::bit_cast<std::uint64_t>(back_got[u][v]),
                    std::bit_cast<std::uint64_t>(back_want[u][v]))
              << "inv (" << u << "," << v << ")";
        }
      }
    });
  }
}

TEST(KernelFft, MatchesReferenceBitForBit) {
  sim::Rng rng(kSeed);
  for (std::size_t n : {1u, 2u, 8u, 64u, 256u}) {
    std::vector<std::complex<double>> base(n);
    for (auto& c : base) c = {rng.next_double() - 0.5, rng.next_double() - 0.5};
    for (bool inverse : {false, true}) {
      auto want = base;
      kernels::ref::fft1d(want, inverse);
      auto got = base;
      kernels::fft1d(got, inverse);
      ASSERT_EQ(fnv1a(got.data(), got.size() * sizeof(got[0])),
                fnv1a(want.data(), want.size() * sizeof(want[0])))
          << "n=" << n << " inverse=" << inverse;
    }
  }
}

TEST(KernelFft, TwiddleTableMatchesRecurrence) {
  const auto tw = kernels::fft_twiddles(64, false);
  ASSERT_EQ(tw.size(), 32u);
  // Same span returned on a second call (cached, stable address).
  EXPECT_EQ(tw.data(), kernels::fft_twiddles(64, false).data());
  EXPECT_EQ(tw[0], std::complex<double>(1.0, 0.0));
}

TEST(KernelSort, MatchesStdSortAcrossDistributions) {
  sim::Rng rng(kSeed);
  auto check = [](std::vector<std::int32_t> v) {
    auto want = v;
    std::sort(want.begin(), want.end());
    kernels::sort_i32(v);
    ASSERT_EQ(v, want);
  };
  check({});
  check({7});
  check({2, 1});
  check(std::vector<std::int32_t>(1000, 42));  // constant: all passes skipped
  std::vector<std::int32_t> random(100'000);
  for (auto& k : random) k = rng.uniform_i32(-1'000'000'000, 1'000'000'000);
  check(random);
  std::sort(random.begin(), random.end());
  check(random);  // already sorted
  std::reverse(random.begin(), random.end());
  check(random);  // reverse sorted
  std::vector<std::int32_t> narrow(50'000);
  for (auto& k : narrow) k = rng.uniform_i32(-3, 3);  // heavy duplicates
  check(narrow);
  std::vector<std::int32_t> extremes = {std::numeric_limits<std::int32_t>::min(),
                                        std::numeric_limits<std::int32_t>::max(), 0, -1, 1,
                                        std::numeric_limits<std::int32_t>::min()};
  check(extremes);
}

TEST(KernelMc, MatchesReferenceBitForBit) {
  for (std::int64_t count : {0, 1, 7, 255, 256, 257, 100'000}) {
    sim::Rng ref_rng(kSeed);
    const double want = kernels::ref::inv_quad_sum(ref_rng, count);
    for_each_isa([&](kernels::Isa isa) {
      SCOPED_TRACE(kernels::to_string(isa));
      sim::Rng rng(kSeed);
      const double got = kernels::inv_quad_sum(rng, count);
      EXPECT_EQ(std::bit_cast<std::uint64_t>(got), std::bit_cast<std::uint64_t>(want))
          << "count=" << count;
      sim::Rng rng2(kSeed);
      const double batched = kernels::inv_quad_sum_batched(rng2, count);
      EXPECT_EQ(std::bit_cast<std::uint64_t>(batched), std::bit_cast<std::uint64_t>(want))
          << "batched count=" << count;
    });
  }
}

TEST(KernelLinalg, MatmulMatchesReferenceBitForBit) {
  sim::Rng rng(kSeed);
  for (int n : {1, 8, 33, 96, 260}) {  // straddles the 256/64 tile sizes
    std::vector<double> a(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
    std::vector<double> b(a.size());
    for (auto& x : a) x = rng.next_double() * 2.0 - 1.0;
    for (auto& x : b) x = rng.next_double() * 2.0 - 1.0;
    std::vector<double> want(a.size()), got(a.size());
    kernels::ref::matmul_rows(a.data(), n, b.data(), n, want.data());
    kernels::matmul_rows(a.data(), n, b.data(), n, got.data());
    ASSERT_EQ(fnv1a_vec(got), fnv1a_vec(want)) << "n=" << n;
  }
}

TEST(KernelLinalg, Rank1SubMatchesPlainLoop) {
  sim::Rng rng(kSeed);
  const int n = 97;
  std::vector<double> row(n), pivot(n);
  for (auto& x : row) x = rng.next_double();
  for (auto& x : pivot) x = rng.next_double();
  const double f = rng.next_double();
  auto want = row;
  for (int j = 5; j < n; ++j) {
    want[static_cast<std::size_t>(j)] -= f * pivot[static_cast<std::size_t>(j)];
  }
  kernels::rank1_sub(row.data(), pivot.data(), f, 5, n);
  EXPECT_EQ(fnv1a_vec(row), fnv1a_vec(want));
}

// ---------------------------------------------------------------------------
// Infrastructure: arena, dispatch, host-work accounting.

TEST(KernelArena, FramesReuseStorageWithoutGrowing) {
  auto& arena = kernels::Arena::local();
  {  // warm up: force at least one block
    kernels::Arena::Frame frame(arena);
    (void)arena.take<double>(1000);
  }
  const auto warm = arena.stats();
  for (int i = 0; i < 100; ++i) {
    kernels::Arena::Frame frame(arena);
    const auto span = arena.take<double>(1000);
    ASSERT_EQ(span.size(), 1000u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(span.data()) % 64, 0u) << "64-byte alignment";
  }
  const auto after = arena.stats();
  EXPECT_EQ(after.grows, warm.grows) << "steady-state frames must not allocate";
  EXPECT_EQ(after.bytes_reserved, warm.bytes_reserved);
  EXPECT_EQ(after.takes, warm.takes + 100);
}

TEST(KernelArena, GrowsAcrossBlocksKeepsSpansValid) {
  auto& arena = kernels::Arena::local();
  kernels::Arena::Frame frame(arena);
  // Two spans bigger than one min-block each: must land in distinct live
  // storage, both writable.
  const auto a = arena.take<std::uint8_t>(200 * 1024);
  const auto b = arena.take<std::uint8_t>(300 * 1024);
  std::fill(a.begin(), a.end(), std::uint8_t{0xAA});
  std::fill(b.begin(), b.end(), std::uint8_t{0xBB});
  EXPECT_EQ(a[0], 0xAA);
  EXPECT_EQ(b[0], 0xBB);
  EXPECT_EQ(a[a.size() - 1], 0xAA);
}

TEST(KernelDispatch, ForceScalarOverridesAndRestores) {
  const auto initial = kernels::active_isa();
  kernels::force_scalar(true);
  EXPECT_EQ(kernels::active_isa(), kernels::Isa::Scalar);
  kernels::force_scalar(false);
  EXPECT_EQ(kernels::active_isa(), initial);
  // The active ISA can only be AVX2 when the TU was compiled in.
  if (!kernels::simd_compiled()) {
    EXPECT_EQ(kernels::active_isa(), kernels::Isa::Scalar);
  }
  EXPECT_STREQ(kernels::to_string(kernels::Isa::Scalar), "scalar");
  EXPECT_STREQ(kernels::to_string(kernels::Isa::Avx2), "avx2");
}

TEST(KernelHostWork, ProbeChargesWallTime) {
  const auto before = kernels::host_work();
  std::vector<std::int32_t> keys(200'000);
  sim::Rng rng(kSeed);
  for (auto& k : keys) k = rng.uniform_i32(-1000, 1000);
  kernels::sort_i32(keys);  // probed kernel entry point
  const auto after = kernels::host_work();
  EXPECT_GT(after.calls, before.calls);
  EXPECT_GT(after.app_ns, before.app_ns);
}

TEST(SweepHostStats, SplitsAppComputeFromSimOverhead) {
  std::vector<eval::AppCell> cells;
  for (int procs : {1, 2}) {
    cells.push_back(
        {host::PlatformId::AlphaFddi, mp::ToolKind::P4, eval::AppKind::MonteCarlo, procs});
  }
  eval::AplConfig cfg;
  (void)eval::sweep_app_s(cells, cfg, 1);
  const auto stats = eval::last_sweep_host_stats();
  EXPECT_EQ(stats.cells, cells.size());
  EXPECT_GT(stats.wall_ns, 0u);
  EXPECT_GT(stats.app_ns, 0u) << "MC cells run real kernel compute";
  EXPECT_GT(stats.kernel_calls, 0u);
  EXPECT_LE(stats.app_ns, stats.wall_ns);
  EXPECT_EQ(stats.sim_ns(), stats.wall_ns - stats.app_ns);
  EXPECT_GT(stats.app_share(), 0.0);
  EXPECT_LE(stats.app_share(), 1.0);
}

TEST(SweepHostStats, ArenaStaysWarmAcrossSweeps) {
  const eval::AppCell sort_cell{host::PlatformId::AlphaFddi, mp::ToolKind::P4,
                                eval::AppKind::Psrs, 2};
  std::vector<eval::AppCell> cells(4, sort_cell);
  eval::AplConfig cfg;
  (void)eval::sweep_app_s(cells, cfg, 1);  // warm the worker's arena
  (void)eval::sweep_app_s(cells, cfg, 1);
  const auto stats = eval::last_sweep_host_stats();
  EXPECT_GT(stats.arena_takes, 0u) << "sort kernels draw scratch from the arena";
  EXPECT_EQ(stats.arena_grows, 0u) << "steady-state sweeps must not grow the arena";
  EXPECT_EQ(stats.arena_bytes, 0u);
}

}  // namespace
}  // namespace pdc
