// Scale-study regression suite (ROADMAP item 1): the simulator must run
// 4096-rank programs on the hierarchical platforms in tier-1 time, with
// per-rank state and per-match mailbox work that stay O(active) as P grows.
//
// The binary overrides operator new with a counting malloc shim so the
// allocs-per-rank assertions measure the real allocation rate of a run --
// the "flat 256 -> 4096" pin is the load-bearing O(active) gate.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <numeric>
#include <vector>

#include "eval/sweep.hpp"
#include "fault/plan.hpp"
#include "host/platform.hpp"
#include "mp/api.hpp"
#include "mp/pack.hpp"
#include "mp/runtime.hpp"
#include "sim/mailbox.hpp"
#include "sim/simulation.hpp"

namespace {
std::atomic<unsigned long long> g_heap_allocs{0};
}  // namespace

// GCC cannot see that the replacement operator-new below hands out malloc
// storage, so pairing it with std::free trips -Wmismatched-new-delete.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace pdc {
namespace {

using fault::FaultPlan;
using host::PlatformId;
using mp::Communicator;
using mp::ToolKind;

unsigned long long heap_allocs() { return g_heap_allocs.load(std::memory_order_relaxed); }

int log2_floor(int p) {
  int l = 0;
  while ((1 << (l + 1)) <= p) ++l;
  return l;
}

// Every rank contributes rank+1 to each element; every rank checks its own
// result, so a wrong value on *any* of the P ranks fails the test without
// materialising O(P * len) result storage.
mp::RankProgram checked_global_sum(int procs, int len, std::atomic<int>& failures) {
  return [procs, len, &failures](Communicator& c) -> sim::Task<void> {
    std::vector<std::int32_t> v(static_cast<std::size_t>(len), c.rank() + 1);
    co_await c.global_sum(v);
    const std::int32_t expected =
        static_cast<std::int32_t>(std::int64_t{procs} * (procs + 1) / 2);
    for (const auto x : v) {
      if (x != expected) failures.fetch_add(1, std::memory_order_relaxed);
    }
  };
}

// ---------- the headline gate: 4096 ranks in tier-1 time --------------------

TEST(ScaleSmoke, GlobalSum1024FatTree) {
  std::atomic<int> failures{0};
  const auto out = mp::run_spmd(PlatformId::ClusterFatTree, 1024, ToolKind::Express,
                                checked_global_sum(1024, 64, failures));
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(out.events, 0u);
  EXPECT_GT(out.messages, 1024u);
}

TEST(ScaleSmoke, GlobalSum4096FatTree) {
  std::atomic<int> failures{0};
  const auto out = mp::run_spmd(PlatformId::ClusterFatTree, 4096, ToolKind::Express,
                                checked_global_sum(4096, 64, failures));
  EXPECT_EQ(failures.load(), 0);
  // Recursive doubling: every rank sends one message per round.
  EXPECT_GE(out.messages, 4096u * 12u);
}

TEST(ScaleSmoke, GlobalSum4096Dragonfly) {
  std::atomic<int> failures{0};
  (void)mp::run_spmd(PlatformId::ClusterDragonfly, 4096, ToolKind::Express,
                     checked_global_sum(4096, 64, failures));
  EXPECT_EQ(failures.load(), 0);
}

// ---------- O(active) allocation gate ---------------------------------------

TEST(AllocsPerRank, FlatUpTo4096) {
  // Recursive doubling does log2(P) rounds per rank, so raw allocs-per-rank
  // legitimately grows ~1.5x from 256 (8 rounds) to 4096 (12 rounds);
  // normalising by rounds removes that. One residual super-linear term is
  // benign and bounded: the thread-local buffer/frame pools retain a fixed
  // 64 entries per class while peak live payloads is O(P) (every rank holds
  // one in-flight message), so the pool hit rate decays toward zero and
  // saturates around P=1024. Gate on the saturated region: 1024 -> 4096
  // must be flat, and 256 -> 4096 comfortably under 2x -- an O(P) per-rank
  // cost (eager mailboxes, per-rank link tables, allocating rank scans)
  // would show up as a ~16x blowup in either bound.
  // Serial engine only: the gate's constants are calibrated against the
  // single-thread allocator profile (warmed thread-local pools). The
  // sharded loop spawns fresh worker threads per run whose pools start
  // cold, a different (bounded, per-run-constant) profile; its memory
  // behaviour is pinned by the mailbox-compaction and soak tests instead.
  mp::set_sim_threads(1);
  auto allocs_per_rank_round = [](int procs) {
    std::atomic<int> failures{0};
    const auto program = checked_global_sum(procs, 64, failures);
    const auto before = heap_allocs();
    (void)mp::run_spmd(PlatformId::ClusterFatTree, procs, ToolKind::Express, program);
    const auto after = heap_allocs();
    EXPECT_EQ(failures.load(), 0);
    return static_cast<double>(after - before) /
           (static_cast<double>(procs) * log2_floor(procs));
  };
  (void)allocs_per_rank_round(256);  // warm thread-local pools and gtest state
  const double at_256 = allocs_per_rank_round(256);
  const double at_1024 = allocs_per_rank_round(1024);
  const double at_4096 = allocs_per_rank_round(4096);
  EXPECT_LT(at_4096, at_1024 * 1.2)
      << "allocs/rank/round grew 1024->4096: " << at_1024 << " -> " << at_4096;
  EXPECT_LT(at_4096, at_256 * 2.0)
      << "allocs/rank/round grew 256->4096: " << at_256 << " -> " << at_4096;
  mp::set_sim_threads(0);  // back to the environment's choice
}

TEST(ActiveState, SparseTrafficAt4096Ranks) {
  // A 4096-slot cluster running a 2-rank exchange materialises per-rank
  // state for exactly the ranks that touched the fabric.
  sim::Simulation simulation;
  host::Cluster cluster(simulation, PlatformId::ClusterFlat, 4096);
  mp::Runtime runtime(cluster, ToolKind::P4);
  std::int64_t got = -1;
  auto program = [&got](Communicator& c) -> sim::Task<void> {
    if (c.rank() == 0) {
      mp::Packer pk;
      pk.put<std::int64_t>(42);
      co_await c.send(4095, 7, pk.finish());
    } else {
      mp::Message m = co_await c.recv(0, 7);
      mp::PayloadReader r(m.data);
      got = r.get<std::int64_t>();
    }
  };
  simulation.spawn(program(runtime.comm(0)), "rank0");
  simulation.spawn(program(runtime.comm(4095)), "rank4095");
  simulation.run();
  EXPECT_EQ(got, 42);
  EXPECT_EQ(cluster.active_nodes(), 2u);
  EXPECT_LE(runtime.active_mailboxes(), 2u);
}

// ---------- mailbox matching stays O(active) under many-to-one --------------

TEST(MailboxScan, ManyToOnePinnedAt256) {
  // 255 senders, one receiver draining in *reverse* arrival order: the
  // unmatched queue holds ~254 messages when the first recv matches. With
  // source-bucketed matching each recv scans only its sender's bucket, so
  // total scan work stays O(P); a linear scan would do ~P^2/2 ~ 32k probes.
  constexpr int kProcs = 256;
  auto program = [](Communicator& c) -> sim::Task<void> {
    if (c.rank() == 0) {
      for (int src = kProcs - 1; src >= 1; --src) {
        (void)co_await c.recv(src, /*tag=*/src);
      }
    } else {
      mp::Packer pk;
      pk.put<std::int64_t>(c.rank());
      co_await c.send(0, /*tag=*/c.rank(), pk.finish());
    }
  };
  const auto out = mp::run_spmd(PlatformId::ClusterFlat, kProcs, ToolKind::P4, program);
  EXPECT_GE(out.mailbox.max_depth, 200u);  // the pile-up really happened
  // One message can be handed straight to a posted waiter without ever
  // queueing; everything else is taken out of the unmatched queue.
  EXPECT_GE(out.mailbox.matches, kProcs - 2u);
  EXPECT_LE(out.mailbox.items_scanned, 8u * kProcs)
      << "bucketed matching regressed to linear scans";
}

TEST(MailboxScan, BucketedMatchingPreservesFifoAndCounts) {
  struct Item {
    int src;
    int val;
  };
  struct SrcMatch {
    int src;
    bool operator()(const Item& it) const { return it.src == src; }
    [[nodiscard]] int bucket_key() const { return src; }
  };
  sim::Simulation simulation;
  sim::Mailbox<Item> box(simulation, +[](const Item& it) { return it.src; });
  box.push({.src = 1, .val = 10});
  box.push({.src = 2, .val = 20});
  box.push({.src = 1, .val = 11});
  box.push({.src = 2, .val = 21});
  EXPECT_EQ(box.stats().max_depth, 4u);

  // Bucketed take: oldest item of that source, untouched others intact.
  auto a = box.try_recv(SrcMatch{2});
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->val, 20);
  EXPECT_EQ(box.stats().items_scanned, 1u);  // bucket scan never saw src 1

  // Unbucketed take still returns global arrival order.
  auto b = box.try_recv();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->val, 10);

  // The bucketed path skips the tombstone left by the global take.
  auto c = box.try_recv(SrcMatch{1});
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->val, 11);
  auto d = box.try_recv(SrcMatch{2});
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->val, 21);
  EXPECT_FALSE(box.try_recv().has_value());
  EXPECT_EQ(box.stats().pushes, 4u);
  EXPECT_EQ(box.stats().matches, 4u);
  EXPECT_EQ(box.pending(), 0u);
}

// ---------- tombstone compaction: long-lived blockers don't pin memory ------

TEST(MailboxCompact, LongSoakDepthStaysBounded) {
  struct Item {
    int src;
    int val;
  };
  struct SrcMatch {
    int src;
    bool operator()(const Item& it) const { return it.src == src; }
    [[nodiscard]] int bucket_key() const { return src; }
  };
  sim::Simulation simulation;
  sim::Mailbox<Item> box(simulation, +[](const Item& it) { return it.src; });
  // A never-matched message parks at the queue front, so reclaim_front()
  // can free nothing for the whole soak: every tombstone behind it stays
  // until a compaction pass sweeps it. This is the scale-study's worst
  // case -- a straggler's unmatched send outliving thousands of rounds.
  box.push({.src = 0, .val = 999});
  constexpr int kRounds = 20'000;
  for (int i = 0; i < kRounds; ++i) {
    box.push({.src = 1, .val = i});
    auto got = box.try_recv(SrcMatch{1});
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->val, i);
  }
  // The growth pin: without compaction the physical queue would hold
  // ~kRounds tombstones behind the blocker.
  EXPECT_LE(box.buffered(), 64u) << "tombstones accumulated behind a live front entry";
  EXPECT_EQ(box.pending(), 1u);
  EXPECT_GT(box.stats().compactions, kRounds / 128u);
  // The blocker survived every rebuild and is still matchable.
  auto blocker = box.try_recv(SrcMatch{0});
  ASSERT_TRUE(blocker.has_value());
  EXPECT_EQ(blocker->val, 999);
  EXPECT_EQ(box.stats().pushes, kRounds + 1u);
  EXPECT_EQ(box.stats().matches, kRounds + 1u);
  EXPECT_EQ(box.pending(), 0u);
}

TEST(MailboxCompact, RebuildPreservesArrivalOrderAndBuckets) {
  struct Item {
    int src;
    int val;
  };
  struct SrcMatch {
    int src;
    bool operator()(const Item& it) const { return it.src == src; }
    [[nodiscard]] int bucket_key() const { return src; }
  };
  sim::Simulation simulation;
  sim::Mailbox<Item> box(simulation, +[](const Item& it) { return it.src; });
  // Interleave two sources -- three churned src-1 items per retained src-2
  // item, so tombstones accumulate *between* live entries faster than live
  // entries do and the queue compacts several times mid-stream.
  constexpr int kItems = 200;
  for (int i = 0; i < kItems; ++i) {
    for (int k = 0; k < 3; ++k) box.push({.src = 1, .val = 3 * i + k});
    box.push({.src = 2, .val = i});
    for (int k = 0; k < 3; ++k) {
      auto got = box.try_recv(SrcMatch{1});
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(got->val, 3 * i + k);
    }
  }
  EXPECT_GT(box.stats().compactions, 0u);
  EXPECT_EQ(box.pending(), static_cast<std::size_t>(kItems));
  // Unbucketed take still returns global arrival order...
  auto first = box.try_recv();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->src, 2);
  EXPECT_EQ(first->val, 0);
  // ...and the rebuilt bucket index drains the rest in arrival order.
  for (int i = 1; i < kItems; ++i) {
    auto got = box.try_recv(SrcMatch{2});
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->val, i);
  }
  EXPECT_FALSE(box.try_recv().has_value());
  EXPECT_EQ(box.pending(), 0u);
}

// ---------- collectives at awkward P on the new fabrics ---------------------

TEST(AwkwardP, CollectivesOnHierarchicalFabrics) {
  for (const auto platform : {PlatformId::ClusterFatTree, PlatformId::ClusterDragonfly}) {
    for (const int procs : {48, 1023}) {
      std::atomic<int> failures{0};
      std::atomic<int> bcast_failures{0};
      auto program = [procs, &failures, &bcast_failures](Communicator& c) -> sim::Task<void> {
        mp::Bytes blob(64, c.rank() == 3 ? std::byte{0x5A} : std::byte{0});
        co_await c.broadcast(3, blob, 17);
        for (const auto byte : blob) {
          if (byte != std::byte{0x5A}) bcast_failures.fetch_add(1);
        }
        std::vector<std::int32_t> v(8, c.rank() + 1);
        co_await c.global_sum(v);
        const auto expected = static_cast<std::int32_t>(std::int64_t{procs} * (procs + 1) / 2);
        for (const auto x : v) {
          if (x != expected) failures.fetch_add(1);
        }
      };
      (void)mp::run_spmd(platform, procs, ToolKind::Express, program);
      EXPECT_EQ(failures.load(), 0) << host::to_string(platform) << " procs=" << procs;
      EXPECT_EQ(bcast_failures.load(), 0) << host::to_string(platform) << " procs=" << procs;
    }
  }
}

// ---------- determinism pins ------------------------------------------------

TEST(Determinism, RepeatedCellsAreBitIdentical) {
  for (const auto platform : host::scale_platforms()) {
    const eval::TplCell cell{.primitive = eval::Primitive::GlobalSum,
                             .platform = platform,
                             .tool = ToolKind::Express,
                             .bytes = 0,
                             .procs = 48,
                             .global_sum_ints = 256};
    const auto first = eval::tpl_cell_ms(cell);
    const auto second = eval::tpl_cell_ms(cell);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(*first, *second) << host::to_string(platform);  // exact, not near
  }
}

TEST(Determinism, SerialAndParallelSweepsMatchOnScalePlatforms) {
  std::vector<eval::TplCell> cells;
  for (const auto platform : host::scale_platforms()) {
    for (const int procs : {16, 48}) {
      cells.push_back({.primitive = eval::Primitive::GlobalSum,
                       .platform = platform,
                       .tool = ToolKind::Express,
                       .bytes = 0,
                       .procs = procs,
                       .global_sum_ints = 128});
      cells.push_back({.primitive = eval::Primitive::SendRecv,
                       .platform = platform,
                       .tool = ToolKind::P4,
                       .bytes = 65536,
                       .procs = procs});
    }
  }
  const auto serial = eval::sweep_tpl_ms(cells, 1);
  const auto serial_mbox = eval::last_sweep_mailbox_stats();
  const auto parallel = eval::sweep_tpl_ms(cells, 4);
  const auto parallel_mbox = eval::last_sweep_mailbox_stats();
  EXPECT_EQ(serial, parallel);
  // The telemetry aggregate is order-independent sums, so it is exactly
  // thread-count-invariant too.
  EXPECT_EQ(serial_mbox.pushes, parallel_mbox.pushes);
  EXPECT_EQ(serial_mbox.matches, parallel_mbox.matches);
  EXPECT_EQ(serial_mbox.items_scanned, parallel_mbox.items_scanned);
  EXPECT_EQ(serial_mbox.peak_depth_sum, parallel_mbox.peak_depth_sum);
  EXPECT_GT(serial_mbox.matches, 0u);
  EXPECT_LT(serial_mbox.scans_per_match(), 4.0);
}

// ---------- faults compose with the hierarchical fabrics --------------------

TEST(FaultCompose, LossyFatTreeAt256StillSumsExactly) {
  std::atomic<int> failures{0};
  const auto out = mp::run_spmd_faulty(PlatformId::ClusterFatTree, 256, ToolKind::P4,
                                       FaultPlan::uniform(0.05),
                                       checked_global_sum(256, 16, failures));
  EXPECT_EQ(failures.load(), 0);  // distributed result == fault-free expectation
  EXPECT_GT(out.injected.drops, 0);
  EXPECT_GT(out.transport.retransmits, 0);
}

}  // namespace
}  // namespace pdc
