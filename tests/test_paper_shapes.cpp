// The scientific regression suite: every qualitative finding of Hariri et
// al. (orderings, crossovers, winners) is asserted against the simulator,
// and the calibrated cells of Table 3 are held within quantitative bands.
// If a cost-model change breaks a paper result, a test here fails.
#include <gtest/gtest.h>

#include "eval/apl.hpp"
#include "eval/paper_data.hpp"
#include "eval/tpl.hpp"

namespace pdc::eval {
namespace {

using host::PlatformId;
using mp::ToolKind;

class MessageSizes : public ::testing::TestWithParam<std::int64_t> {};

INSTANTIATE_TEST_SUITE_P(Table3Sizes, MessageSizes,
                         ::testing::ValuesIn(paper_message_sizes()),
                         [](const auto& info) { return std::to_string(info.param) + "B"; });

// -- Table 3 -----------------------------------------------------------------

TEST_P(MessageSizes, P4WinsSendRecvEverywhere) {
  const auto bytes = GetParam();
  for (PlatformId p :
       {PlatformId::SunEthernet, PlatformId::SunAtmLan, PlatformId::SunAtmWan}) {
    const double p4 = sendrecv_ms(p, ToolKind::P4, bytes);
    EXPECT_LT(p4, sendrecv_ms(p, ToolKind::Pvm, bytes)) << host::to_string(p);
    EXPECT_LT(p4, sendrecv_ms(p, ToolKind::Express, bytes)) << host::to_string(p);
  }
}

TEST_P(MessageSizes, ExpressVsPvmCrossover) {
  // Paper: Express beats PVM for small messages, PVM beats Express for
  // large ones (crossover around 2-4 KB).
  const auto bytes = GetParam();
  for (PlatformId p : {PlatformId::SunEthernet, PlatformId::SunAtmLan}) {
    const double pvm = sendrecv_ms(p, ToolKind::Pvm, bytes);
    const double express = sendrecv_ms(p, ToolKind::Express, bytes);
    if (bytes <= 1024) {
      EXPECT_LT(express, pvm) << host::to_string(p);
    } else if (bytes >= 8192) {
      EXPECT_LT(pvm, express) << host::to_string(p);
    }
  }
}

TEST_P(MessageSizes, AtmWanIsAtmLanPlusSmallConstant) {
  const auto bytes = GetParam();
  for (ToolKind t : {ToolKind::P4, ToolKind::Pvm}) {
    const double lan = sendrecv_ms(PlatformId::SunAtmLan, t, bytes);
    const double wan = sendrecv_ms(PlatformId::SunAtmWan, t, bytes);
    EXPECT_GT(wan, lan);
    EXPECT_LT(wan - lan, 12.0) << "WAN penalty should stay a small constant (ms)";
  }
}

TEST_P(MessageSizes, AtmBeatsEthernetForBulk) {
  const auto bytes = GetParam();
  if (bytes < 8192) return;  // the win is a bulk-transfer effect
  // Grows with message size; 1.9 not 2.0 -- Express's own published ratio
  // is only 2.02 (154ms ATM vs 312ms Ethernet at 64 KB).
  const double factor = bytes >= 16384 ? 1.9 : 1.5;
  for (ToolKind t : mp::all_tools()) {
    EXPECT_LT(sendrecv_ms(PlatformId::SunAtmLan, t, bytes) * factor,
              sendrecv_ms(PlatformId::SunEthernet, t, bytes))
        << mp::to_string(t);
  }
}

TEST_P(MessageSizes, Table3CellsWithinCalibrationBands) {
  const auto bytes = GetParam();
  for (ToolKind t : mp::all_tools()) {
    for (PlatformId p :
         {PlatformId::SunEthernet, PlatformId::SunAtmLan, PlatformId::SunAtmWan}) {
      const auto published = paper::table3_ms(t, p, bytes);
      if (!published) continue;
      const double ours = sendrecv_ms(p, t, bytes);
      // Every cell within 2x; the bulk (64 KB) cells -- which dominate the
      // paper's conclusions -- within 30%.
      EXPECT_LT(ours, *published * 2.0) << mp::to_string(t) << " " << host::to_string(p);
      EXPECT_GT(ours, *published * 0.5) << mp::to_string(t) << " " << host::to_string(p);
      if (bytes == 65536) {
        EXPECT_NEAR(ours / *published, 1.0, 0.30)
            << mp::to_string(t) << " " << host::to_string(p);
      }
    }
  }
}

// -- Figures 2-4 --------------------------------------------------------------

TEST_P(MessageSizes, BroadcastP4BestExpressWorstOnEthernet) {
  const auto bytes = GetParam();
  const double p4 = broadcast_ms(PlatformId::SunEthernet, ToolKind::P4, 4, bytes);
  const double pvm = broadcast_ms(PlatformId::SunEthernet, ToolKind::Pvm, 4, bytes);
  const double express = broadcast_ms(PlatformId::SunEthernet, ToolKind::Express, 4, bytes);
  EXPECT_LT(p4, pvm);
  EXPECT_LT(p4, express);
  if (bytes >= 8192) {
    EXPECT_GT(express, pvm);  // Express worst where bulk dominates
  }
}

TEST_P(MessageSizes, RingAnomalyExpressBeatsPvm) {
  // Paper Figure 3: "Express outperforms PVM for ring communication" even
  // though PVM wins snd/rcv -- the continuous-flow anomaly.
  const auto bytes = GetParam();
  const double p4 = ring_ms(PlatformId::SunEthernet, ToolKind::P4, 4, bytes);
  const double pvm = ring_ms(PlatformId::SunEthernet, ToolKind::Pvm, 4, bytes);
  const double express = ring_ms(PlatformId::SunEthernet, ToolKind::Express, 4, bytes);
  EXPECT_LT(p4, express);
  EXPECT_LT(express, pvm);
  // And on the ATM WAN (paper plots p4 + PVM): p4 leads.
  EXPECT_LT(ring_ms(PlatformId::SunAtmWan, ToolKind::P4, 4, bytes),
            ring_ms(PlatformId::SunAtmWan, ToolKind::Pvm, 4, bytes));
}

TEST(GlobalSumShape, P4BeatsExpressPvmUnavailable) {
  for (std::int64_t ints : {10'000LL, 40'000LL, 100'000LL}) {
    const auto p4 = global_sum_ms(PlatformId::SunEthernet, ToolKind::P4, 4, ints);
    const auto express = global_sum_ms(PlatformId::SunEthernet, ToolKind::Express, 4, ints);
    ASSERT_TRUE(p4 && express);
    EXPECT_LT(*p4, *express) << ints;
    EXPECT_FALSE(global_sum_ms(PlatformId::SunEthernet, ToolKind::Pvm, 4, ints));
    // NYNET is far faster than Ethernet for big vectors (paper Figure 4).
    const auto p4_wan = global_sum_ms(PlatformId::SunAtmWan, ToolKind::P4, 4, ints);
    ASSERT_TRUE(p4_wan);
    EXPECT_LT(*p4_wan, *p4);
  }
}

// -- Figures 5-8: application winners ----------------------------------------

double app(PlatformId p, ToolKind t, AppKind a, int procs) {
  return app_time_s(p, t, a, procs);
}

TEST(AppWinners, AlphaFddiMatchesPaperFigure5) {
  constexpr auto kP = PlatformId::AlphaFddi;
  // p4 best for JPEG and 2D-FFT.
  EXPECT_LT(app(kP, ToolKind::P4, AppKind::Jpeg, 8), app(kP, ToolKind::Pvm, AppKind::Jpeg, 8));
  EXPECT_LT(app(kP, ToolKind::P4, AppKind::Jpeg, 8),
            app(kP, ToolKind::Express, AppKind::Jpeg, 8));
  EXPECT_LT(app(kP, ToolKind::P4, AppKind::Fft2d, 4),
            app(kP, ToolKind::Pvm, AppKind::Fft2d, 4));
  EXPECT_LT(app(kP, ToolKind::P4, AppKind::Fft2d, 4),
            app(kP, ToolKind::Express, AppKind::Fft2d, 4));
  // Express best for Monte Carlo (native excombine/exsync).
  EXPECT_LT(app(kP, ToolKind::Express, AppKind::MonteCarlo, 8),
            app(kP, ToolKind::P4, AppKind::MonteCarlo, 8));
  EXPECT_LT(app(kP, ToolKind::Express, AppKind::MonteCarlo, 8),
            app(kP, ToolKind::Pvm, AppKind::MonteCarlo, 8));
  // PVM best for sorting (asynchronous buffered all-to-all).
  EXPECT_LT(app(kP, ToolKind::Pvm, AppKind::Psrs, 8), app(kP, ToolKind::P4, AppKind::Psrs, 8));
  EXPECT_LT(app(kP, ToolKind::Pvm, AppKind::Psrs, 8),
            app(kP, ToolKind::Express, AppKind::Psrs, 8));
}

TEST(AppWinners, Sp1ConsistentWithAlphaButSlower) {
  // Paper: "results consistent with the ALPHA cluster... execution times
  // significantly higher on IBM-SP1".
  for (AppKind a : all_apps()) {
    EXPECT_GT(app(PlatformId::Sp1Switch, ToolKind::P4, a, 1),
              app(PlatformId::AlphaFddi, ToolKind::P4, a, 1))
        << to_string(a);
  }
  EXPECT_LT(app(PlatformId::Sp1Switch, ToolKind::P4, AppKind::Jpeg, 8),
            app(PlatformId::Sp1Switch, ToolKind::Pvm, AppKind::Jpeg, 8));
  EXPECT_LT(app(PlatformId::Sp1Switch, ToolKind::Pvm, AppKind::Psrs, 8),
            app(PlatformId::Sp1Switch, ToolKind::P4, AppKind::Psrs, 8));
  EXPECT_LT(app(PlatformId::Sp1Switch, ToolKind::Express, AppKind::MonteCarlo, 8),
            app(PlatformId::Sp1Switch, ToolKind::Pvm, AppKind::MonteCarlo, 8));
}

TEST(AppWinners, ApplicationsScaleWithProcessors) {
  // Compute-bound apps must show real speedup on the fast network.
  for (AppKind a : {AppKind::Jpeg, AppKind::MonteCarlo}) {
    const double t1 = app(PlatformId::AlphaFddi, ToolKind::P4, a, 1);
    const double t8 = app(PlatformId::AlphaFddi, ToolKind::P4, a, 8);
    EXPECT_GT(t1 / t8, 4.0) << to_string(a) << " speedup at 8 procs";
    EXPECT_LT(t1 / t8, 8.5) << to_string(a) << " impossible superlinear speedup";
  }
}

TEST(AppWinners, EthernetLimitsScalingMoreThanFddi) {
  // The shared 10 Mb/s segment throttles the communication-heavy JPEG far
  // more than switched FDDI does (paper Figures 5 vs 8).
  const double fddi_speedup = app(PlatformId::AlphaFddi, ToolKind::P4, AppKind::Jpeg, 1) /
                              app(PlatformId::AlphaFddi, ToolKind::P4, AppKind::Jpeg, 8);
  const double eth_speedup = app(PlatformId::SunEthernet, ToolKind::P4, AppKind::Jpeg, 1) /
                             app(PlatformId::SunEthernet, ToolKind::P4, AppKind::Jpeg, 8);
  EXPECT_GT(fddi_speedup, eth_speedup);
}

TEST(AppWinners, WanFeasibility) {
  // Paper Section 3.3: ATM WAN "can outperform LANs" -- compare the
  // communication-heavy JPEG at 4 processes.
  EXPECT_LT(app(PlatformId::SunAtmWan, ToolKind::P4, AppKind::Jpeg, 4),
            app(PlatformId::SunEthernet, ToolKind::P4, AppKind::Jpeg, 4));
}

}  // namespace
}  // namespace pdc::eval
