// pdceval -- end-to-end trace capture tests (built only when PDC_TRACE=ON).
//
// These run real evaluation-grid cells with a capture installed and pin
// (a) that tracing never perturbs the simulated timing, (b) that the
// captured stream is bit-identical across sweep thread counts, and
// (c) golden analysis results on fixed cells -- any change to probe
// placement or the analyses shows up as an exact-integer diff here.
#include <gtest/gtest.h>

#include <vector>

#include "eval/sweep.hpp"
#include "eval/trace_cell.hpp"
#include "mp/api.hpp"
#include "trace/analyze.hpp"
#include "trace/export.hpp"

namespace eval = pdc::eval;
namespace trace = pdc::trace;
namespace host = pdc::host;
namespace mp = pdc::mp;

namespace {

eval::TplCell ping_pong_cell() {
  eval::TplCell cell;
  cell.primitive = eval::Primitive::SendRecv;
  cell.platform = host::PlatformId::SunEthernet;
  cell.tool = mp::ToolKind::P4;
  cell.bytes = 1;
  cell.procs = 2;
  return cell;
}

}  // namespace

TEST(TraceCapture, ProbesAreCompiledIn) {
  EXPECT_TRUE(eval::trace_compiled_in());
}

TEST(TraceCapture, TracedPingPongTimingIsBitIdenticalToUntraced) {
  const auto cell = ping_pong_cell();
  const auto untraced = eval::tpl_cell_ms(cell);
  const auto traced = eval::tpl_cell_traced(cell);
  ASSERT_TRUE(untraced.has_value());
  ASSERT_TRUE(traced.ms.has_value());
  EXPECT_EQ(*traced.ms, *untraced);  // exact: capture must not perturb the sim
  EXPECT_FALSE(traced.records.empty());
  EXPECT_EQ(traced.stats.dropped, 0u);
  EXPECT_EQ(traced.stats.emitted, traced.records.size());
}

TEST(TraceCapture, StreamIsBitIdenticalUnderSimThreadRequests) {
  // An active capture forces the event loop serial (sharding would
  // interleave per-thread emission), so the recorded stream -- and the
  // cell's timing -- must be exactly the same whatever intra-run thread
  // count the caller asked for.
  const auto cell = ping_pong_cell();
  mp::set_sim_threads(1);
  const auto base = eval::tpl_cell_traced(cell);
  mp::set_sim_threads(8);
  const auto sharded = eval::tpl_cell_traced(cell);
  mp::set_sim_threads(0);
  ASSERT_TRUE(base.ms.has_value());
  ASSERT_TRUE(sharded.ms.has_value());
  EXPECT_EQ(*base.ms, *sharded.ms);
  ASSERT_EQ(base.records.size(), sharded.records.size());
  EXPECT_FALSE(base.records.empty());
  // Byte-for-byte via the exporter: every field of every record matches.
  EXPECT_EQ(trace::export_perfetto_json(base.records),
            trace::export_perfetto_json(sharded.records));
}

TEST(TraceCapture, PingPongBreakdownReconcilesWithMakespan) {
  const auto traced = eval::tpl_cell_traced(ping_pong_cell());
  ASSERT_TRUE(traced.ms.has_value());
  const std::int64_t makespan = trace::makespan_ns(traced.records);
  EXPECT_GT(makespan, 0);
  // The traced stream's horizon matches the cell's reported time: the last
  // traced occurrence is the final recv completing the ping-pong.
  EXPECT_EQ(static_cast<double>(makespan) * 1e-6, *traced.ms);

  // Each rank's categories plus idle partition the makespan exactly.
  const auto breakdown = trace::blocking_breakdown(traced.records);
  ASSERT_EQ(breakdown.size(), 2u);
  for (const auto& b : breakdown) {
    EXPECT_EQ(b.compute_ns + b.send_ns + b.recv_wait_ns + b.unpack_ns + b.other_ns,
              makespan)
        << "rank " << b.rank;
    EXPECT_EQ(b.retransmits, 0);
    EXPECT_EQ(b.drops_seen, 0);
  }
  EXPECT_EQ(breakdown[0].sends, breakdown[1].sends);  // symmetric ping-pong
  EXPECT_EQ(breakdown[0].recvs, breakdown[1].recvs);

  // And the export round-trips through the validator.
  const auto res =
      trace::validate_perfetto_json(trace::export_perfetto_json(traced.records));
  EXPECT_TRUE(res.ok) << res.error;
}

TEST(TraceCapture, RingCriticalPathCoversMostOfTheMakespan) {
  eval::TplCell cell;
  cell.primitive = eval::Primitive::Ring;
  cell.platform = host::PlatformId::SunEthernet;
  cell.tool = mp::ToolKind::P4;
  cell.bytes = 1024;
  cell.procs = 4;
  const auto traced = eval::tpl_cell_traced(cell);
  ASSERT_TRUE(traced.ms.has_value());
  const auto cp = trace::critical_path(traced.records);
  EXPECT_EQ(cp.makespan_ns, trace::makespan_ns(traced.records));
  EXPECT_GE(cp.coverage(), 0.90);  // acceptance floor from the design brief
  EXPECT_LE(cp.covered_ns, cp.makespan_ns);  // segments are disjoint
  // Chronological and non-overlapping.
  for (std::size_t i = 1; i < cp.segments.size(); ++i) {
    EXPECT_GE(cp.segments[i].t0_ns, cp.segments[i - 1].t1_ns) << "segment " << i;
  }
}

// -- golden cells ------------------------------------------------------------
//
// Two fixed (tool, app) cells with every analysis result pinned to exact
// integers. The sim is deterministic, so any drift here means a probe moved
// or an analysis changed -- update deliberately, never casually.

TEST(TraceCaptureGolden, P4JpegOnFddi) {
  eval::AppCell cell;
  cell.platform = host::PlatformId::AlphaFddi;
  cell.tool = mp::ToolKind::P4;
  cell.app = eval::AppKind::Jpeg;
  cell.procs = 4;
  const auto traced = eval::app_cell_traced(cell);
  EXPECT_EQ(traced.seconds, eval::app_cell_s(cell));  // capture-neutral

  const std::int64_t makespan = trace::makespan_ns(traced.records);
  const auto m = trace::comm_matrix(traced.records);
  const auto cp = trace::critical_path(traced.records);
  const auto b = trace::blocking_breakdown(traced.records);
  ASSERT_EQ(b.size(), 4u);

  EXPECT_EQ(traced.records.size(), 46u);
  EXPECT_EQ(makespan, 1'073'522'641);  // == app_cell_s to the ns
  EXPECT_EQ(m.total_msgs(), 6);        // scatter 3 strips + gather 3 strips
  EXPECT_EQ(m.total_bytes(), 234'592);
  EXPECT_EQ(cp.covered_ns, 1'073'522'641);  // chain explains the whole run
  EXPECT_EQ(b[0].sends, 3);
  EXPECT_EQ(b[1].recv_wait_ns, 9'936'720);
}

TEST(TraceCaptureGolden, ExpressPsrsOnSp1Switch) {
  eval::AppCell cell;
  cell.platform = host::PlatformId::Sp1Switch;
  cell.tool = mp::ToolKind::Express;
  cell.app = eval::AppKind::Psrs;
  cell.procs = 4;
  const auto traced = eval::app_cell_traced(cell);
  EXPECT_EQ(traced.seconds, eval::app_cell_s(cell));

  const std::int64_t makespan = trace::makespan_ns(traced.records);
  const auto m = trace::comm_matrix(traced.records);
  const auto cp = trace::critical_path(traced.records);

  EXPECT_EQ(traced.records.size(), 155u);
  EXPECT_EQ(makespan, 466'196'561);
  EXPECT_EQ(m.total_msgs(), 18);
  EXPECT_EQ(m.total_bytes(), 1'498'812);
  EXPECT_EQ(cp.covered_ns, 466'022'321);  // 99.96% of the makespan
}

// -- determinism across sweep workers ----------------------------------------

TEST(TraceCapture, StreamsAreBitIdenticalAcrossThreadCounts) {
  std::vector<eval::TplCell> cells;
  for (auto tool : {mp::ToolKind::P4, mp::ToolKind::Pvm, mp::ToolKind::Express}) {
    for (std::int64_t bytes : {1, 4096}) {
      eval::TplCell c;
      c.primitive = eval::Primitive::SendRecv;
      c.platform = host::PlatformId::SunEthernet;
      c.tool = tool;
      c.bytes = bytes;
      c.procs = 2;
      cells.push_back(c);
    }
  }

  auto run = [&](unsigned threads) {
    return eval::parallel_map<eval::TracedTplCell>(
        cells.size(), [&](std::size_t i) { return eval::tpl_cell_traced(cells[i]); },
        threads);
  };
  const auto serial = run(1);
  for (const unsigned threads : {2u, 8u}) {
    const auto fanned = run(threads);
    ASSERT_EQ(fanned.size(), serial.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      EXPECT_EQ(fanned[i].ms, serial[i].ms) << "cell " << i << " @" << threads;
      EXPECT_EQ(fanned[i].stats, serial[i].stats) << "cell " << i << " @" << threads;
      ASSERT_EQ(fanned[i].records.size(), serial[i].records.size())
          << "cell " << i << " @" << threads;
      for (std::size_t r = 0; r < serial[i].records.size(); ++r) {
        ASSERT_EQ(fanned[i].records[r], serial[i].records[r])
            << "cell " << i << " record " << r << " @" << threads;
      }
    }
  }
}

TEST(TraceCapture, TinyRingSaturatesAndKeepsNewestWindow) {
  eval::TraceCapture opt;
  opt.capacity = 16;
  eval::TplCell cell;
  cell.primitive = eval::Primitive::Ring;
  cell.bytes = 1024;
  cell.procs = 4;
  const auto traced = eval::tpl_cell_traced(cell, opt);
  ASSERT_TRUE(traced.ms.has_value());
  EXPECT_EQ(traced.records.size(), 16u);
  EXPECT_GT(traced.stats.dropped, 0u);
  EXPECT_EQ(traced.stats.emitted, traced.stats.dropped + 16u);
  // Flight-recorder semantics: the surviving window is the newest records,
  // still in chronological order.
  for (std::size_t i = 1; i < traced.records.size(); ++i) {
    EXPECT_GE(traced.records[i].t_ns, traced.records[i - 1].t_ns);
  }
}
