// Evaluation-service tests: canonical cell codec, content-addressed
// store (persistence, torn-tail recovery, model-version invalidation),
// CRC frame edge cases over a real socket, and end-to-end bit-identical
// caching -- a cached CellResult must be byte-equal to a freshly
// computed one for every cell kind, including faulted and sharded runs.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "eval/cell.hpp"
#include "evald/client.hpp"
#include "evald/server.hpp"
#include "evald/store.hpp"
#include "fault/plan.hpp"
#include "mp/api.hpp"
#include "mp/checksum.hpp"
#include "../tools/cell_args.hpp"

namespace pdc::evald {
namespace {

using eval::AppCell;
using eval::CellResult;
using eval::CellSpec;
using eval::CellStatus;
using eval::CellType;
using eval::SchedCell;
using eval::TplCell;

// Unique throwaway paths; sockets must stay under sun_path's ~104 bytes.
std::string scratch_path(const std::string& tag) {
  static std::atomic<int> counter{0};
  return "/tmp/pdc_evald_" + std::to_string(::getpid()) + "_" + tag + "_" +
         std::to_string(counter.fetch_add(1));
}

TplCell faulted_tpl_cell() {
  TplCell c;
  c.tool = mp::ToolKind::P4;
  c.platform = host::PlatformId::SunEthernet;
  c.primitive = eval::Primitive::SendRecv;
  c.bytes = 2048;
  c.procs = 2;
  c.faults = fault::FaultPlan::uniform(0.03, 0.01, 0.01, 0.0, sim::microseconds(200), 0xE11A);
  return c;
}

AppCell small_app_cell() {
  AppCell c;
  c.tool = mp::ToolKind::Pvm;
  c.platform = host::PlatformId::AlphaFddi;
  c.app = eval::AppKind::Fft2d;
  c.procs = 4;
  return c;
}

SchedCell small_sched_cell() {
  SchedCell c;
  c.platform = host::PlatformId::ClusterFlat;
  c.nodes = 32;
  c.njobs = 8;
  c.seed = 7;
  c.faults = fault::FaultPlan::uniform(0.02);
  return c;
}

/// A spec that reliably throws ("Cluster: need at least one node"), for
/// the negative-cache paths.
SchedCell infeasible_sched_cell() {
  SchedCell c;
  c.platform = host::PlatformId::ClusterFlat;
  c.nodes = 0;
  c.njobs = 4;
  return c;
}

std::vector<CellSpec> sample_specs() {
  return {CellSpec::of(faulted_tpl_cell()), CellSpec::of(small_app_cell()),
          CellSpec::of(small_sched_cell())};
}

// -- canonical codec --------------------------------------------------------

TEST(CellCodec, SpecRoundTripsForEveryKind) {
  for (const CellSpec& spec : sample_specs()) {
    const auto bytes = eval::encode_spec(spec);
    const auto back = eval::decode_spec(bytes);
    ASSERT_TRUE(back.has_value()) << to_string(spec.type);
    EXPECT_EQ(eval::encode_spec(*back), bytes) << to_string(spec.type);
  }
}

TEST(CellCodec, DecodeRejectsTruncationAndTrailingBytes) {
  const auto bytes = eval::encode_spec(CellSpec::of(faulted_tpl_cell()));
  for (std::size_t cut : {std::size_t{0}, std::size_t{1}, bytes.size() / 2, bytes.size() - 1}) {
    EXPECT_FALSE(eval::decode_spec({bytes.data(), cut}).has_value()) << cut;
  }
  auto longer = bytes;
  longer.push_back(std::byte{0});
  EXPECT_FALSE(eval::decode_spec(longer).has_value());
}

TEST(CellCodec, ResultRoundTripsBitIdentically) {
  for (const CellSpec& spec : sample_specs()) {
    const CellResult result = eval::run_cell(spec);
    const auto bytes = eval::encode_result(result);
    const auto back = eval::decode_result(bytes);
    ASSERT_TRUE(back.has_value()) << to_string(spec.type);
    EXPECT_EQ(eval::encode_result(*back), bytes) << to_string(spec.type);
    EXPECT_TRUE(*back == result) << to_string(spec.type);
  }
}

TEST(CellCodec, KeyIsStableAndVersionSensitive) {
  const auto bytes = eval::encode_spec(CellSpec::of(faulted_tpl_cell()));
  EXPECT_EQ(eval::cell_key(bytes), eval::cell_key(bytes));
  EXPECT_NE(eval::cell_key(bytes, eval::kModelVersion),
            eval::cell_key(bytes, eval::kModelVersion + 1));

  auto other_cell = faulted_tpl_cell();
  other_cell.bytes += 1;
  const auto other = eval::encode_spec(CellSpec::of(other_cell));
  EXPECT_NE(eval::cell_key(bytes), eval::cell_key(other));
}

// -- store ------------------------------------------------------------------

std::vector<std::byte> as_bytes(const std::string& s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

TEST(Store, InsertLookupInvalidate) {
  Store store;  // in-memory
  const auto spec = as_bytes("spec-a");
  const auto result = as_bytes("result-a");
  const auto key = eval::cell_key(spec);

  EXPECT_FALSE(store.lookup(key, spec).has_value());
  store.insert(key, spec, result, false);
  const auto hit = store.lookup(key, spec);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->result, result);
  EXPECT_FALSE(hit->negative);
  EXPECT_EQ(store.entries(), 1u);

  EXPECT_TRUE(store.invalidate(key, spec));
  EXPECT_FALSE(store.lookup(key, spec).has_value());
  EXPECT_FALSE(store.invalidate(key, spec));
  EXPECT_EQ(store.entries(), 0u);
}

TEST(Store, FirstWriterWinsAndNegativeEntriesAreCounted) {
  Store store;
  const auto spec = as_bytes("spec-b");
  const auto key = eval::cell_key(spec);
  store.insert(key, spec, as_bytes("first"), false);
  store.insert(key, spec, as_bytes("second"), false);  // concurrent loser
  EXPECT_EQ(store.lookup(key, spec)->result, as_bytes("first"));
  EXPECT_EQ(store.entries(), 1u);

  const auto bad_spec = as_bytes("spec-bad");
  store.insert(eval::cell_key(bad_spec), bad_spec, as_bytes("boom"), true);
  EXPECT_TRUE(store.lookup(eval::cell_key(bad_spec), bad_spec)->negative);
  EXPECT_EQ(store.stats().negative_entries, 1u);
}

TEST(Store, SurvivesManyEntriesAndGrowth) {
  Store store;
  std::vector<std::vector<std::byte>> specs;
  for (int i = 0; i < 500; ++i) specs.push_back(as_bytes("spec-" + std::to_string(i)));
  for (const auto& s : specs) store.insert(eval::cell_key(s), s, s, false);
  EXPECT_EQ(store.entries(), specs.size());
  for (const auto& s : specs) {
    const auto hit = store.lookup(eval::cell_key(s), s);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->result, s);
  }
}

TEST(Store, InvalidateInsertChurnNeverFillsTheIndex) {
  // Invalidated entries keep their slots until a rehash; churning far more
  // distinct specs than the initial 64-slot capacity while live entries
  // stay at <=1 used to fill every slot with dead records (growth
  // triggered on live count only), after which any probe for an absent
  // key spun forever. Occupancy-based rehashing must keep this bounded.
  Store store;
  for (int i = 0; i < 4096; ++i) {
    const auto spec = as_bytes("churn-" + std::to_string(i));
    const auto key = eval::cell_key(spec);
    store.insert(key, spec, spec, false);
    EXPECT_TRUE(store.invalidate(key, spec));
  }
  EXPECT_EQ(store.entries(), 0u);
  const auto absent = as_bytes("never-inserted");
  EXPECT_FALSE(store.lookup(eval::cell_key(absent), absent).has_value());
  // And the table still works for real inserts afterwards.
  const auto spec = as_bytes("alive-again");
  store.insert(eval::cell_key(spec), spec, spec, false);
  EXPECT_EQ(store.lookup(eval::cell_key(spec), spec)->result, spec);
}

TEST(Store, PersistsAcrossReopenAndTombstonesStick) {
  const std::string path = scratch_path("persist");
  const auto spec_a = as_bytes("spec-a"), spec_b = as_bytes("spec-b");
  {
    Store store(path, 9);
    store.insert(eval::cell_key(spec_a), spec_a, as_bytes("result-a"), false);
    store.insert(eval::cell_key(spec_b), spec_b, as_bytes("result-b"), true);
    store.invalidate(eval::cell_key(spec_b), spec_b);
  }
  {
    Store store(path, 9);
    EXPECT_EQ(store.stats().recovered, 1u);
    const auto hit = store.lookup(eval::cell_key(spec_a), spec_a);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->result, as_bytes("result-a"));
    // The tombstone survived the reopen.
    EXPECT_FALSE(store.lookup(eval::cell_key(spec_b), spec_b).has_value());
  }
  ::unlink(path.c_str());
}

TEST(Store, ModelVersionBumpNeverServesOldBytes) {
  const std::string path = scratch_path("bump");
  const auto spec = as_bytes("spec-v");
  {
    Store store(path, 9);
    store.insert(eval::cell_key(spec, 9), spec, as_bytes("old-bytes"), false);
  }
  {
    Store store(path, 10);
    EXPECT_EQ(store.stats().discarded_stale, 1u);
    EXPECT_EQ(store.entries(), 0u);
    // Neither address can reach the stale record: the store is empty.
    EXPECT_FALSE(store.lookup(eval::cell_key(spec, 9), spec).has_value());
    EXPECT_FALSE(store.lookup(eval::cell_key(spec, 10), spec).has_value());
    store.insert(eval::cell_key(spec, 10), spec, as_bytes("new-bytes"), false);
    EXPECT_EQ(store.lookup(eval::cell_key(spec, 10), spec)->result, as_bytes("new-bytes"));
  }
  {
    // ...and the rewritten store replays only version-10 content.
    Store store(path, 10);
    EXPECT_EQ(store.stats().recovered, 1u);
    EXPECT_EQ(store.lookup(eval::cell_key(spec, 10), spec)->result, as_bytes("new-bytes"));
  }
  ::unlink(path.c_str());
}

TEST(Store, TornTailIsTruncatedOnRecovery) {
  const std::string path = scratch_path("torn");
  const auto spec_a = as_bytes("spec-a"), spec_b = as_bytes("spec-b");
  {
    Store store(path, 9);
    store.insert(eval::cell_key(spec_a), spec_a, as_bytes("result-a"), false);
    store.insert(eval::cell_key(spec_b), spec_b, as_bytes("result-b"), false);
  }
  {
    // A crash mid-append: a length prefix promising more bytes than exist.
    std::ofstream f(path, std::ios::binary | std::ios::app);
    const std::uint32_t len = 100;
    f.write(reinterpret_cast<const char*>(&len), sizeof(len));
    f.write("torn", 4);
  }
  {
    Store store(path, 9);
    EXPECT_EQ(store.stats().recovered, 2u);
    EXPECT_TRUE(store.lookup(eval::cell_key(spec_a), spec_a).has_value());
    EXPECT_TRUE(store.lookup(eval::cell_key(spec_b), spec_b).has_value());
    // The tail was cut away, so appending keeps working...
    const auto spec_c = as_bytes("spec-c");
    store.insert(eval::cell_key(spec_c), spec_c, as_bytes("result-c"), false);
  }
  {
    // ...and the repaired log replays all three.
    Store store(path, 9);
    EXPECT_EQ(store.stats().recovered, 3u);
  }
  ::unlink(path.c_str());
}

// -- framing edge cases over a real socket ----------------------------------

class LiveServer {
 public:
  LiveServer() {
    ServerConfig config;
    config.socket_path = scratch_path("sock");
    server_ = std::make_unique<Server>(config);
    server_->start();
  }
  ~LiveServer() { server_->stop(); }
  [[nodiscard]] const std::string& path() const { return server_->socket_path(); }
  [[nodiscard]] Server& server() { return *server_; }

 private:
  std::unique_ptr<Server> server_;
};

int connect_raw(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  return fd;
}

void send_raw(int fd, const void* data, std::size_t n) {
  EXPECT_EQ(::send(fd, data, n, MSG_NOSIGNAL), static_cast<ssize_t>(n));
}

/// Drain until the peer closes; returns the bytes received.
std::vector<std::byte> recv_until_close(int fd) {
  std::vector<std::byte> all;
  std::byte buf[4096];
  for (;;) {
    const ssize_t got = ::recv(fd, buf, sizeof(buf), 0);
    if (got <= 0) break;
    all.insert(all.end(), buf, buf + got);
  }
  return all;
}

TEST(Framing, ZeroLengthPayloadIsAValidFrame) {
  LiveServer live;
  const int fd = connect_raw(live.path());
  // An empty payload frames fine (len 0, CRC of nothing); the server
  // rejects it as a *message* -- no type byte -- with an error reply.
  ASSERT_TRUE(write_frame(fd, {}));
  std::vector<std::byte> reply;
  ASSERT_EQ(read_frame(fd, reply), FrameStatus::Ok);
  EXPECT_EQ(peek_type(reply), MsgType::Error);
  // ...and then closes: the stream is no longer trusted.
  EXPECT_TRUE(recv_until_close(fd).empty());
  ::close(fd);
}

TEST(Framing, OversizedLengthPrefixClosesWithoutReply) {
  LiveServer live;
  const int fd = connect_raw(live.path());
  const std::uint32_t len = kMaxFramePayload + 1;
  send_raw(fd, &len, sizeof(len));
  EXPECT_TRUE(recv_until_close(fd).empty());
  ::close(fd);
  // The daemon records the violation and keeps serving.
  Client probe(live.path());
  EXPECT_TRUE(probe.ping());
  EXPECT_GE(live.server().stats().frame_errors, 1u);
}

TEST(Framing, TruncatedFrameClosesWithoutReply) {
  LiveServer live;
  const int fd = connect_raw(live.path());
  const std::uint32_t len = 64;
  send_raw(fd, &len, sizeof(len));
  send_raw(fd, "only-ten-b", 10);
  ::shutdown(fd, SHUT_WR);  // stream ends mid-frame
  EXPECT_TRUE(recv_until_close(fd).empty());
  ::close(fd);
  Client probe(live.path());
  EXPECT_TRUE(probe.ping());
}

TEST(Framing, CorruptedCrcIsRejectedWithCleanClose) {
  LiveServer live;
  const int fd = connect_raw(live.path());
  const auto payload = encode_ping();
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  std::uint32_t crc = mp::crc32(payload) ^ 0x1u;  // one bit off
  send_raw(fd, &len, sizeof(len));
  send_raw(fd, payload.data(), payload.size());
  send_raw(fd, &crc, sizeof(crc));
  // No reply, no resync: just a clean close.
  EXPECT_TRUE(recv_until_close(fd).empty());
  ::close(fd);
  Client probe(live.path());
  EXPECT_TRUE(probe.ping());
  EXPECT_GE(live.server().stats().frame_errors, 1u);
}

TEST(Framing, MaximumLengthPrefixItselfIsAccepted) {
  // kMaxFramePayload exactly is legal by contract; sending that much
  // memory through a unit test is wasteful, so pin the boundary at the
  // reader level instead: one byte over must be TooLong, the cap itself
  // must get past the length check (failing later, on truncation).
  LiveServer live;
  {
    const int fd = connect_raw(live.path());
    const std::uint32_t len = kMaxFramePayload;
    send_raw(fd, &len, sizeof(len));
    send_raw(fd, "partial", 7);
    ::shutdown(fd, SHUT_WR);
    // Truncation, not TooLong: the server read past the prefix.
    EXPECT_TRUE(recv_until_close(fd).empty());
    ::close(fd);
  }
  Client probe(live.path());
  EXPECT_TRUE(probe.ping());
}

TEST(Framing, WriteFrameRefusesOversizedPayload) {
  // The cap binds on the writing side too: a frame the reader would
  // reject must never reach the wire (and a >4 GiB payload would
  // silently truncate its u32 length prefix).
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  const std::vector<std::byte> too_big(static_cast<std::size_t>(kMaxFramePayload) + 1);
  EXPECT_FALSE(write_frame(sv[0], too_big));
  // Nothing was sent: once the writer closes, the peer sees a clean EOF
  // rather than a partial frame.
  ::close(sv[0]);
  std::vector<std::byte> payload;
  EXPECT_EQ(read_frame(sv[1], payload), FrameStatus::Eof);
  ::close(sv[1]);
}

// -- CLI cell-spec parsing --------------------------------------------------

TEST(CellArgs, RejectsNonNumericBytesAndProcs) {
  // atoll-style parsing silently turned "abc" into 0, producing a
  // degenerate cell spec instead of a usage error.
  eval::TplCell tpl;
  eval::AppCell app;
  bool is_app = false;
  EXPECT_TRUE(tools::parse_cell_spec("p4:ethernet:sendrecv:2048:4", tpl, app, is_app));
  EXPECT_EQ(tpl.bytes, 2048);
  EXPECT_EQ(tpl.procs, 4);
  for (const char* bad :
       {"p4:ethernet:sendrecv:abc", "p4:ethernet:sendrecv:1k:2", "p4:ethernet:sendrecv:12x:2",
        "p4:ethernet:sendrecv:1:abc", "p4:ethernet:sendrecv:1:2x", "p4:ethernet:sendrecv:-1:2",
        "p4:ethernet:sendrecv:1:0", "p4:ethernet:sendrecv:1:-2",
        "p4:ethernet:sendrecv:1:99999999999"}) {
    EXPECT_FALSE(tools::parse_cell_spec(bad, tpl, app, is_app)) << bad;
  }
  // Empty trailing fields still mean "keep the defaults".
  EXPECT_TRUE(tools::parse_cell_spec("p4:ethernet:sendrecv::", tpl, app, is_app));
}

TEST(CellArgs, RangeParsesSingleLinearAndGeometric) {
  std::vector<std::int64_t> v;
  EXPECT_TRUE(tools::parse_range("4096", v));
  EXPECT_EQ(v, (std::vector<std::int64_t>{4096}));
  EXPECT_TRUE(tools::parse_range("0", v));
  EXPECT_EQ(v, (std::vector<std::int64_t>{0}));
  EXPECT_TRUE(tools::parse_range("2..8x2", v));
  EXPECT_EQ(v, (std::vector<std::int64_t>{2, 4, 6, 8}));
  EXPECT_TRUE(tools::parse_range("2..9x3", v));  // endpoint not hit: stop at <= hi
  EXPECT_EQ(v, (std::vector<std::int64_t>{2, 5, 8}));
  EXPECT_TRUE(tools::parse_range("5..5x1", v));
  EXPECT_EQ(v, (std::vector<std::int64_t>{5}));
  EXPECT_TRUE(tools::parse_range("256..4096*4", v));
  EXPECT_EQ(v, (std::vector<std::int64_t>{256, 1024, 4096}));
  EXPECT_TRUE(tools::parse_range("3..100*10", v));
  EXPECT_EQ(v, (std::vector<std::int64_t>{3, 30}));
}

TEST(CellArgs, RangeRejectsMalformedAndOverflowing) {
  const std::vector<std::int64_t> sentinel{77};
  std::vector<std::int64_t> v = sentinel;
  for (const char* bad :
       {"", "x", "abc", "-1", "1..8", "1..8y2", "1..8x", "1..8*", "1..8x0", "1..8*1",
        "0..8*2", "8..1x1", "-1..8x1", "1..8x-2", "1..abcx2", "1..8x2junk", " 1..8x2",
        "1..9223372036854775808x1", "1..200000x1"}) {
    EXPECT_FALSE(tools::parse_range(bad, v)) << bad;
    EXPECT_EQ(v, sentinel) << bad;  // out is untouched on failure
  }
}

TEST(CellArgs, RangeWalkStopsBeforeInt64Overflow) {
  std::vector<std::int64_t> v;
  // lo * step would overflow int64; the walk must stop, not wrap.
  EXPECT_TRUE(tools::parse_range("4611686018427387904..9223372036854775807*2", v));
  EXPECT_EQ(v, (std::vector<std::int64_t>{4611686018427387904}));
  EXPECT_TRUE(tools::parse_range("9223372036854775800..9223372036854775807x4", v));
  EXPECT_EQ(v, (std::vector<std::int64_t>{9223372036854775800, 9223372036854775804}));
}

// -- end-to-end caching -----------------------------------------------------

TEST(Evald, CachedResultsAreBitIdenticalForEveryCellKind) {
  LiveServer live;
  Client client(live.path());
  for (const CellSpec& spec : sample_specs()) {
    const auto direct = eval::encode_result(eval::run_cell(spec));

    auto first = client.lookup(spec);
    EXPECT_EQ(first.origin, Origin::Computed) << to_string(spec.type);
    EXPECT_EQ(eval::encode_result(first.result), direct) << to_string(spec.type);

    auto second = client.lookup(spec);
    EXPECT_EQ(second.origin, Origin::Cache) << to_string(spec.type);
    EXPECT_EQ(eval::encode_result(second.result), direct) << to_string(spec.type);
  }
}

TEST(Evald, CachedResultsMatchShardedRecomputation) {
  // PRs 1-8 pinned bit-identical replay at any PDC_SIM_THREADS; the cache
  // must therefore agree with a sharded recomputation too -- the daemon
  // computed these serially, the reference below runs the event loop
  // sharded.
  LiveServer live;
  Client client(live.path());
  for (const CellSpec& spec : sample_specs()) {
    const auto served = eval::encode_result(client.lookup(spec).result);
    mp::set_sim_threads(2);
    const auto sharded = eval::encode_result(eval::run_cell(spec));
    mp::set_sim_threads(0);
    EXPECT_EQ(served, sharded) << to_string(spec.type);
  }
}

TEST(Evald, NegativeCachingServesMemoizedFailures) {
  LiveServer live;
  Client client(live.path());
  const CellSpec bad = CellSpec::of(infeasible_sched_cell());

  auto first = client.lookup(bad);
  EXPECT_EQ(first.origin, Origin::Computed);
  EXPECT_EQ(first.result.status, CellStatus::Error);
  EXPECT_FALSE(first.result.error.empty());

  auto second = client.lookup(bad);
  EXPECT_EQ(second.origin, Origin::NegativeCache);
  EXPECT_EQ(eval::encode_result(second.result), eval::encode_result(first.result));
  EXPECT_GE(live.server().stats().negative_hits, 1u);
}

TEST(Evald, MixedSweepOnlySimulatesMissesInRequestOrder) {
  LiveServer live;
  Client client(live.path());
  auto cached_cell = faulted_tpl_cell();
  (void)client.lookup(CellSpec::of(cached_cell));

  auto fresh_cell = cached_cell;
  fresh_cell.bytes *= 2;
  const std::vector<CellSpec> batch{CellSpec::of(fresh_cell), CellSpec::of(cached_cell),
                                    CellSpec::of(infeasible_sched_cell())};
  const auto outcomes = client.sweep(batch);
  ASSERT_EQ(outcomes.size(), batch.size());
  EXPECT_EQ(outcomes[0].origin, Origin::Computed);
  EXPECT_EQ(outcomes[1].origin, Origin::Cache);
  EXPECT_EQ(outcomes[2].origin, Origin::Computed);
  // Reply order is the request order, each slot its own cell.
  EXPECT_EQ(eval::encode_result(outcomes[1].result),
            eval::encode_result(eval::run_cell(batch[1])));
  // A repeat serves everything from memory.
  for (const auto& o : client.sweep(batch)) EXPECT_NE(o.origin, Origin::Computed);
}

TEST(Evald, WarmReportsOriginsWithoutResultBytes) {
  LiveServer live;
  Client client(live.path());
  const auto specs = sample_specs();
  const auto cold = client.warm(specs);
  ASSERT_EQ(cold.size(), specs.size());
  for (const Origin o : cold) EXPECT_EQ(o, Origin::Computed);
  const auto hot = client.warm(specs);
  for (const Origin o : hot) EXPECT_EQ(o, Origin::Cache);
}

TEST(Evald, InvalidationForcesRecomputation) {
  LiveServer live;
  Client client(live.path());
  const CellSpec spec = CellSpec::of(faulted_tpl_cell());
  const auto first = eval::encode_result(client.lookup(spec).result);

  EXPECT_TRUE(client.invalidate(spec));
  EXPECT_FALSE(client.invalidate(spec));  // already gone
  auto redo = client.lookup(spec);
  EXPECT_EQ(redo.origin, Origin::Computed);
  EXPECT_EQ(eval::encode_result(redo.result), first);  // determinism

  EXPECT_GE(client.invalidate_all(), 1u);
  EXPECT_EQ(live.server().stats().entries, 0u);
}

TEST(Evald, DaemonPersistsItsStoreAcrossRestart) {
  const std::string store_path = scratch_path("daemon_store");
  const CellSpec spec = CellSpec::of(small_sched_cell());
  std::vector<std::byte> first;
  ServerConfig config;
  config.store_path = store_path;
  {
    config.socket_path = scratch_path("sock");
    Server server(config);
    server.start();
    Client client(config.socket_path);
    first = eval::encode_result(client.lookup(spec).result);
    server.stop();
  }
  {
    config.socket_path = scratch_path("sock");
    Server server(config);
    server.start();
    Client client(config.socket_path);
    auto served = client.lookup(spec);
    EXPECT_EQ(served.origin, Origin::Cache);  // replayed from disk
    EXPECT_EQ(eval::encode_result(served.result), first);
    server.stop();
  }
  {
    // A model bump opens the same file and finds nothing to serve.
    config.socket_path = scratch_path("sock");
    config.model_version = eval::kModelVersion + 1;
    Server server(config);
    server.start();
    Client client(config.socket_path);
    EXPECT_EQ(client.stats().entries, 0u);
    EXPECT_EQ(client.lookup(spec).origin, Origin::Computed);
    server.stop();
  }
  ::unlink(store_path.c_str());
}

TEST(Evald, ConcurrentClientsAgreeBitIdentically) {
  LiveServer live;
  const auto specs = sample_specs();
  std::vector<std::vector<std::byte>> direct;
  for (const auto& s : specs) direct.push_back(eval::encode_result(eval::run_cell(s)));

  constexpr int kClients = 4;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&] {
      Client client(live.path());
      for (int round = 0; round < 3; ++round) {
        for (std::size_t i = 0; i < specs.size(); ++i) {
          const auto got = eval::encode_result(client.lookup(specs[i]).result);
          if (got != direct[i]) mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  const DaemonStats stats = live.server().stats();
  EXPECT_EQ(stats.connections, static_cast<std::uint64_t>(kClients));
  // Round 1 may race (every client can miss the same cold cell; the store
  // keeps the first insert), but rounds 2 and 3 must hit for everyone.
  EXPECT_GE(stats.hits, static_cast<std::uint64_t>(kClients * 2 * specs.size()));
}

}  // namespace
}  // namespace pdc::evald
