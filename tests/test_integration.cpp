// Cross-module integration and robustness tests: phased programs with
// barrier separation (the paper's stated motivation for synchronisation
// primitives), full-width clusters, failure modes, and the barrier TPL
// probe.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "eval/tpl.hpp"
#include "mp/api.hpp"
#include "mp/pack.hpp"

namespace pdc {
namespace {

using host::PlatformId;
using mp::ToolKind;

// "To prevent asynchronous messages from different phases interfering with
// one another, it is important to synchronize all processes" (paper 2.1).
// Each phase uses the SAME tag; without the barrier, phase-2 messages
// could overtake phase-1 ones from a fast rank. With barriers, every rank
// must observe its phase-1 value before any phase-2 value.
TEST(Integration, BarriersSeparateComputationPhases) {
  for (ToolKind tool : mp::all_tools()) {
    constexpr int kProcs = 6;
    constexpr int kTag = 9;
    std::vector<std::vector<std::int32_t>> seen(kProcs);
    auto program = [&seen](mp::Communicator& c) -> sim::Task<void> {
      const int next = (c.rank() + 1) % c.size();
      const int prev = (c.rank() + c.size() - 1) % c.size();
      for (std::int32_t phase = 0; phase < 3; ++phase) {
        // Fast ranks would race ahead without the barrier.
        co_await c.sim().delay(sim::milliseconds(c.rank()));
        const std::vector<std::int32_t> v(1, phase);
        co_await c.send(next, kTag, mp::pack_vector(v));
        mp::Message m = co_await c.recv(prev, kTag);
        seen[static_cast<std::size_t>(c.rank())].push_back(
            mp::unpack_vector<std::int32_t>(*m.data)[0]);
        co_await c.barrier();
      }
    };
    mp::run_spmd(PlatformId::AlphaFddi, kProcs, tool, program);
    for (const auto& s : seen) {
      EXPECT_EQ(s, (std::vector<std::int32_t>{0, 1, 2})) << mp::to_string(tool);
    }
  }
}

TEST(Integration, FullWidthSp1AllToAll) {
  // The largest configuration in the paper's testbed: 16 SP-1 nodes, every
  // rank exchanging with every other rank simultaneously.
  constexpr int kProcs = 16;
  int received_total = 0;
  auto program = [&received_total, kProcs](mp::Communicator& c) -> sim::Task<void> {
    for (int dst = 0; dst < kProcs; ++dst) {
      if (dst == c.rank()) continue;
      std::vector<std::int32_t> v(256, c.rank());
      co_await c.send(dst, 3, mp::pack_vector(v));
    }
    std::vector<bool> from(kProcs, false);
    for (int i = 1; i < kProcs; ++i) {
      mp::Message m = co_await c.recv(mp::kAnySource, 3);
      EXPECT_FALSE(from[static_cast<std::size_t>(m.src)]);
      from[static_cast<std::size_t>(m.src)] = true;
      EXPECT_EQ(mp::unpack_vector<std::int32_t>(*m.data)[0], m.src);
      ++received_total;
    }
  };
  for (ToolKind tool : mp::all_tools()) {
    received_total = 0;
    mp::run_spmd(PlatformId::Sp1Switch, kProcs, tool, program);
    EXPECT_EQ(received_total, kProcs * (kProcs - 1)) << mp::to_string(tool);
  }
}

TEST(Integration, MissingBarrierParticipantIsDetectedAsDeadlock) {
  // Failure injection: rank 2 "crashes" (returns early) before the
  // barrier; the remaining ranks can never be released, and the simulator
  // reports the deadlock instead of hanging.
  for (ToolKind tool : mp::all_tools()) {
    auto program = [](mp::Communicator& c) -> sim::Task<void> {
      if (c.rank() == 2) co_return;  // crashed process
      co_await c.barrier();
    };
    EXPECT_THROW(mp::run_spmd(PlatformId::AlphaFddi, 4, tool, program),
                 sim::DeadlockDetected)
        << mp::to_string(tool);
  }
}

TEST(Integration, LostReceiverIsDetectedAsDeadlock) {
  auto program = [](mp::Communicator& c) -> sim::Task<void> {
    if (c.rank() == 0) {
      (void)co_await c.recv(1, 42);  // rank 1 never sends
    }
  };
  EXPECT_THROW(mp::run_spmd(PlatformId::SunEthernet, 2, ToolKind::P4, program),
               sim::DeadlockDetected);
}

TEST(Integration, BarrierCostOrderingFollowsToolArchitecture) {
  // On the Alpha's native ports, Express's dissemination exsync beats
  // PVM's coordinator round-trip through the daemons -- part of why
  // Express wins Monte Carlo there.
  const double express = eval::barrier_ms(PlatformId::AlphaFddi, ToolKind::Express, 8);
  const double p4 = eval::barrier_ms(PlatformId::AlphaFddi, ToolKind::P4, 8);
  const double pvm = eval::barrier_ms(PlatformId::AlphaFddi, ToolKind::Pvm, 8);
  EXPECT_LT(express, pvm);
  EXPECT_LT(p4, pvm);
  // Barriers are sub-10ms on a switched 100 Mb/s fabric.
  EXPECT_LT(express, 10.0);
  EXPECT_GT(express, 0.0);
}

TEST(Integration, SimulationStateIsolatedBetweenRuns) {
  // Two consecutive worlds must not share clocks, mailboxes or resources.
  auto program = [](mp::Communicator& c) -> sim::Task<void> {
    if (c.rank() == 0) co_await c.send(1, 1, mp::make_payload(mp::Bytes(4096)));
    if (c.rank() == 1) (void)co_await c.recv();
  };
  const auto a = mp::run_spmd(PlatformId::SunEthernet, 2, ToolKind::Pvm, program);
  const auto b = mp::run_spmd(PlatformId::SunEthernet, 2, ToolKind::Pvm, program);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.events, b.events);
}

}  // namespace
}  // namespace pdc
