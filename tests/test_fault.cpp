// Fault-injection + reliable-transport tests: the CRC and RNG-stream
// building blocks, the FaultyNetwork decorator's contract (deterministic,
// zero-plan == passthrough), and the transport's recovery guarantees under
// drop / corruption / duplication / reordering / link flaps.
#include <gtest/gtest.h>

#include <cstring>
#include <numbers>
#include <vector>

#include "apps/mc/montecarlo.hpp"
#include "eval/tpl.hpp"
#include "fault/faulty_network.hpp"
#include "fault/plan.hpp"
#include "mp/api.hpp"
#include "mp/checksum.hpp"
#include "mp/pack.hpp"
#include "sim/rng.hpp"

namespace pdc {
namespace {

using fault::FaultPlan;
using host::PlatformId;
using mp::ToolKind;

// ---------- CRC32 -----------------------------------------------------------

std::span<const std::byte> bytes_of(const char* s) {
  return {reinterpret_cast<const std::byte*>(s), std::strlen(s)};
}

TEST(Crc32, MatchesIeeeCheckValue) {
  EXPECT_EQ(mp::crc32(bytes_of("123456789")), 0xCBF43926u);
}

TEST(Crc32, EmptyInputIsZero) { EXPECT_EQ(mp::crc32({}), 0u); }

TEST(Crc32, DetectsSingleBitFlips) {
  mp::Bytes data(256);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = std::byte(i * 7 + 1);
  const std::uint32_t good = mp::crc32(data);
  for (std::size_t i = 0; i < data.size(); i += 37) {
    mp::Bytes flipped = data;
    flipped[i] ^= std::byte{0x10};
    EXPECT_NE(mp::crc32(flipped), good) << "flip at byte " << i;
  }
}

// ---------- named RNG streams (satellite: stream-splitting audit) -----------

TEST(NamedStream, DistinctLabelsGiveDistinctStreams) {
  const auto a = sim::named_stream(42, "pdc.fault.network");
  const auto b = sim::named_stream(42, "pdc.app.workload");
  const auto c = sim::named_stream(43, "pdc.fault.network");
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(b, c);
}

TEST(NamedStream, IsDeterministic) {
  constexpr auto kA = sim::named_stream(0xFA17, "pdc.fault.network");
  EXPECT_EQ(sim::named_stream(0xFA17, "pdc.fault.network"), kA);
}

// ---------- FaultPlan -------------------------------------------------------

TEST(FaultPlan, DisabledByDefault) {
  const FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  EXPECT_TRUE(FaultPlan::uniform(0.1).enabled());
  FaultPlan flap_only;
  flap_only.flaps.push_back({.a = 0, .b = 1, .start = {}, .end = sim::TimePoint{1000}});
  EXPECT_TRUE(flap_only.enabled());
  FaultPlan override_only;
  override_only.overrides.push_back({.src = 0, .dst = 1, .faults = {.drop_rate = 0.5}});
  EXPECT_TRUE(override_only.enabled());
}

TEST(FaultPlan, PerLinkOverridesWin) {
  FaultPlan plan = FaultPlan::uniform(0.1);
  plan.overrides.push_back({.src = 2, .dst = 3, .faults = {.drop_rate = 0.9}});
  EXPECT_DOUBLE_EQ(plan.faults_for(0, 1).drop_rate, 0.1);
  EXPECT_DOUBLE_EQ(plan.faults_for(2, 3).drop_rate, 0.9);
  EXPECT_DOUBLE_EQ(plan.faults_for(3, 2).drop_rate, 0.1);  // directed
}

TEST(FaultPlan, FlapWindowMatching) {
  const fault::FlapWindow link{.a = 0, .b = 1, .start = sim::TimePoint{100},
                               .end = sim::TimePoint{200}};
  EXPECT_TRUE(link.covers(0, 1, sim::TimePoint{150}));
  EXPECT_TRUE(link.covers(1, 0, sim::TimePoint{150}));  // undirected pair
  EXPECT_FALSE(link.covers(0, 2, sim::TimePoint{150}));
  EXPECT_FALSE(link.covers(0, 1, sim::TimePoint{99}));
  EXPECT_FALSE(link.covers(0, 1, sim::TimePoint{201}));

  const fault::FlapWindow node{.a = 2, .b = -1, .start = sim::TimePoint{0},
                               .end = sim::TimePoint{100}};
  EXPECT_TRUE(node.covers(2, 5, sim::TimePoint{50}));
  EXPECT_TRUE(node.covers(5, 2, sim::TimePoint{50}));
  EXPECT_FALSE(node.covers(3, 5, sim::TimePoint{50}));

  const fault::FlapWindow blackout{.a = -1, .b = -1, .start = sim::TimePoint{0},
                                   .end = sim::TimePoint{100}};
  EXPECT_TRUE(blackout.covers(3, 5, sim::TimePoint{50}));
}

TEST(FaultyNetworkCtor, RejectsInvalidPlans) {
  sim::Simulation simulation;
  host::Cluster cluster(simulation, PlatformId::SunEthernet, 2);
  auto make = [&](FaultPlan plan) {
    sim::Simulation s2;
    host::Cluster c2(s2, PlatformId::SunEthernet, 2);
    fault::FaultyNetwork wire(s2, c2.take_network(), std::move(plan));
  };
  EXPECT_THROW(make(FaultPlan::uniform(1.0)), std::invalid_argument);
  EXPECT_THROW(make(FaultPlan::uniform(-0.1)), std::invalid_argument);
  FaultPlan bad_jitter = FaultPlan::uniform(0.0, 0.0, 0.0, 0.5, sim::nanoseconds(-1));
  EXPECT_THROW(make(bad_jitter), std::invalid_argument);
  FaultPlan bad_window;
  bad_window.flaps.push_back(
      {.a = 0, .b = 1, .start = sim::TimePoint{200}, .end = sim::TimePoint{100}});
  EXPECT_THROW(make(bad_window), std::invalid_argument);
}

// ---------- zero-fault plan == plain wire, bit for bit ----------------------

TEST(ZeroFaultPlan, RunSpmdFaultyMatchesRunSpmdExactly) {
  auto program = [](mp::Communicator& c) -> sim::Task<void> {
    if (c.rank() == 0) {
      mp::Bytes data(8192, std::byte{0x5A});
      co_await c.send(1, 7, mp::make_payload(std::move(data)));
      (void)co_await c.recv(1, 8);
    } else {
      mp::Message m = co_await c.recv(0, 7);
      co_await c.send(0, 8, m.data);
    }
  };
  for (ToolKind tool : mp::all_tools()) {
    for (PlatformId platform : {PlatformId::SunEthernet, PlatformId::SunAtmLan}) {
      const auto plain = mp::run_spmd(platform, 2, tool, program);
      const auto faulty = mp::run_spmd_faulty(platform, 2, tool, FaultPlan{}, program);
      EXPECT_EQ(plain.elapsed.ns, faulty.elapsed.ns)
          << to_string(tool) << " on " << to_string(platform);
      EXPECT_EQ(plain.events, faulty.events);
      EXPECT_EQ(plain.messages, faulty.messages);
      EXPECT_EQ(faulty.transport, mp::TransportStats{});
      EXPECT_EQ(faulty.injected.frames, 0);  // disabled plan draws nothing
    }
  }
}

TEST(ZeroFaultPlan, Table3GoldenCellsUnchangedThroughFaultPath) {
  // The same three cells test_eval pins to full double precision, here
  // routed through the (disabled) fault axis of the TPL API.
  EXPECT_EQ(eval::sendrecv_ms(PlatformId::SunEthernet, ToolKind::Pvm, 65536, FaultPlan{}),
            202.50319999999999);
  EXPECT_EQ(eval::sendrecv_ms(PlatformId::SunAtmLan, ToolKind::P4, 8192, FaultPlan{}),
            6.7196720000000001);
  EXPECT_EQ(eval::sendrecv_ms(PlatformId::SunEthernet, ToolKind::Express, 1024, FaultPlan{}),
            8.0451999999999995);
}

// ---------- recovery under injected faults ----------------------------------

/// rank 0 streams `count` distinct payloads to rank 1; rank 1 checks value
/// and arrival order, then echoes a final ack so rank 0 outlives the
/// protocol. Data integrity + per-link FIFO in one harness.
mp::RankProgram ordered_stream_program(int count, std::vector<std::int64_t>* received) {
  return [count, received](mp::Communicator& c) -> sim::Task<void> {
    if (c.rank() == 0) {
      for (int i = 0; i < count; ++i) {
        // Built without a braced init list: GCC miscompiles initializer
        // lists inside co_await expressions ("array used as initializer").
        std::vector<std::int64_t> vals(2);
        vals[0] = i;
        vals[1] = std::int64_t{1000003} * i;
        co_await c.send(1, 5, mp::pack_vector(vals));
      }
      (void)co_await c.recv(1, 6);
    } else {
      for (int i = 0; i < count; ++i) {
        mp::Message m = co_await c.recv(0, 5);
        const auto vals = mp::payload_span<std::int64_t>(*m.data);
        received->push_back(vals[0]);
        EXPECT_EQ(vals[1], vals[0] * 1000003);
      }
      co_await c.send(0, 6, mp::make_payload(mp::Bytes(16, std::byte{1})));
    }
  };
}

TEST(FaultRecovery, SurvivesDropsWithRetransmits) {
  std::vector<std::int64_t> received;
  const auto out = mp::run_spmd_faulty(PlatformId::SunEthernet, 2, ToolKind::P4,
                                       FaultPlan::uniform(0.2), ordered_stream_program(40, &received));
  ASSERT_EQ(received.size(), 40u);
  for (int i = 0; i < 40; ++i) EXPECT_EQ(received[static_cast<std::size_t>(i)], i);
  EXPECT_GT(out.injected.drops, 0);
  EXPECT_GT(out.transport.retransmits, 0);
  EXPECT_GT(out.transport.drops_seen, 0);
}

TEST(FaultRecovery, RejectsCorruptionByChecksum) {
  std::vector<std::int64_t> received;
  const auto out =
      mp::run_spmd_faulty(PlatformId::SunAtmLan, 2, ToolKind::P4,
                          FaultPlan::uniform(0.0, 0.15), ordered_stream_program(40, &received));
  ASSERT_EQ(received.size(), 40u);
  EXPECT_GT(out.injected.corruptions, 0);
  EXPECT_GT(out.transport.corrupt_rejected, 0);
  EXPECT_GT(out.transport.retransmits, 0);
}

TEST(FaultRecovery, DiscardsWireDuplicates) {
  std::vector<std::int64_t> received;
  const auto out =
      mp::run_spmd_faulty(PlatformId::SunEthernet, 2, ToolKind::P4,
                          FaultPlan::uniform(0.0, 0.0, 0.4), ordered_stream_program(40, &received));
  // Exactly-once delivery: every duplicate was discarded, none leaked.
  ASSERT_EQ(received.size(), 40u);
  EXPECT_GT(out.injected.duplicates, 0);
  EXPECT_GT(out.transport.dup_discarded, 0);
}

TEST(FaultRecovery, ReorderingJitterPreservesAppOrder) {
  std::vector<std::int64_t> received;
  const auto out = mp::run_spmd_faulty(
      PlatformId::SunAtmLan, 2, ToolKind::P4,
      FaultPlan::uniform(0.0, 0.0, 0.0, 0.5, sim::milliseconds(5)),
      ordered_stream_program(40, &received));
  EXPECT_GT(out.injected.reorders, 0);
  ASSERT_EQ(received.size(), 40u);
  // The transport releases in sequence order, so the app sees FIFO even
  // though frames overtook each other on the wire.
  for (int i = 0; i < 40; ++i) EXPECT_EQ(received[static_cast<std::size_t>(i)], i);
}

TEST(FaultRecovery, RidesOutLinkFlapWindow) {
  FaultPlan plan;  // no random faults, one deterministic outage
  plan.flaps.push_back({.a = 0, .b = 1, .start = sim::TimePoint{0},
                        .end = sim::TimePoint{sim::milliseconds(40).ns}});
  std::vector<std::int64_t> received;
  const auto out = mp::run_spmd_faulty(PlatformId::SunEthernet, 2, ToolKind::P4, plan,
                                       ordered_stream_program(8, &received));
  ASSERT_EQ(received.size(), 8u);
  EXPECT_GT(out.injected.flap_drops, 0);
  EXPECT_GT(out.transport.retransmits, 0);
  // The run cannot end before the window lifts: delivery needed the link.
  EXPECT_GT(out.elapsed, sim::milliseconds(40));
}

TEST(FaultRecovery, PermanentOutageRaisesTransportFailure) {
  FaultPlan plan;
  plan.flaps.push_back({.a = -1, .b = -1, .start = sim::TimePoint{0},
                        .end = sim::TimePoint{sim::seconds(3600).ns}});
  std::vector<std::int64_t> received;
  EXPECT_THROW(mp::run_spmd_faulty(PlatformId::SunEthernet, 2, ToolKind::P4, plan,
                                   ordered_stream_program(2, &received)),
               mp::TransportFailure);
}

// ---------- determinism -----------------------------------------------------

TEST(FaultDeterminism, SameSeedReplaysBitIdentically) {
  const FaultPlan plan = FaultPlan::uniform(0.15, 0.05, 0.1, 0.2, sim::milliseconds(2));
  auto run_once = [&](std::vector<std::int64_t>* received) {
    return mp::run_spmd_faulty(PlatformId::SunEthernet, 2, ToolKind::Pvm, plan,
                               ordered_stream_program(25, received));
  };
  std::vector<std::int64_t> r1, r2;
  const auto a = run_once(&r1);
  const auto b = run_once(&r2);
  EXPECT_EQ(a.elapsed.ns, b.elapsed.ns);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.transport, b.transport);
  EXPECT_EQ(a.injected.frames, b.injected.frames);
  EXPECT_EQ(a.injected.drops, b.injected.drops);
  EXPECT_EQ(a.injected.corruptions, b.injected.corruptions);
  EXPECT_EQ(a.injected.duplicates, b.injected.duplicates);
  EXPECT_EQ(a.injected.reorders, b.injected.reorders);
  EXPECT_EQ(r1, r2);
}

TEST(FaultDeterminism, DifferentSeedsDiverge) {
  std::vector<std::int64_t> r1, r2;
  const auto a =
      mp::run_spmd_faulty(PlatformId::SunEthernet, 2, ToolKind::P4,
                          FaultPlan::uniform(0.25, 0, 0, 0, {}, 1), ordered_stream_program(30, &r1));
  const auto b =
      mp::run_spmd_faulty(PlatformId::SunEthernet, 2, ToolKind::P4,
                          FaultPlan::uniform(0.25, 0, 0, 0, {}, 2), ordered_stream_program(30, &r2));
  // Both recover the same app data...
  EXPECT_EQ(r1, r2);
  // ...but the injected fault sequence (and hence timing) differs.
  EXPECT_NE(a.elapsed.ns, b.elapsed.ns);
}

// ---------- satellite: MC results immune to the fault RNG stream ------------

TEST(RngIsolation, MonteCarloUnchangedByZeroRatePlanAndByDrops) {
  const auto expected = apps::mc::integrate_serial(120'000, 4, 2, 99);
  auto run_mc = [&](const FaultPlan& plan) {
    apps::mc::Result got{};
    auto program = [&got](mp::Communicator& c) -> sim::Task<void> {
      apps::mc::Result local{};
      co_await apps::mc::integrate_distributed(c, 120'000, 4, 99, &local);
      if (c.rank() == 0) got = local;
    };
    mp::run_spmd_faulty(PlatformId::SunEthernet, 2, ToolKind::P4, plan, program);
    return got;
  };
  // Plain-wire distributed run: the bit-exact reference for RNG isolation.
  // (Serial differs from distributed in the last ulp of the reduction, so
  // it is only a 1e-12 reference — same tolerance the app suite uses.)
  apps::mc::Result plain{};
  auto plain_program = [&plain](mp::Communicator& c) -> sim::Task<void> {
    apps::mc::Result local{};
    co_await apps::mc::integrate_distributed(c, 120'000, 4, 99, &local);
    if (c.rank() == 0) plain = local;
  };
  mp::run_spmd(PlatformId::SunEthernet, 2, ToolKind::P4, plain_program);
  EXPECT_EQ(plain.samples, expected.samples);
  EXPECT_NEAR(plain.estimate, expected.estimate, 1e-12);
  // A zero-rate plan must not perturb a single app-level RNG draw: the
  // fault stream is a named substream, not a sibling of the app's.
  const auto with_dead_plan = run_mc(FaultPlan{});
  EXPECT_EQ(with_dead_plan.samples, plain.samples);
  EXPECT_EQ(with_dead_plan.estimate, plain.estimate);  // bit-identical
  // Even a lossy wire only delays messages; the numerics are untouched.
  const auto with_drops = run_mc(FaultPlan::uniform(0.1));
  EXPECT_EQ(with_drops.samples, plain.samples);
  EXPECT_EQ(with_drops.estimate, plain.estimate);  // bit-identical
  EXPECT_NEAR(with_drops.estimate, std::numbers::pi, 0.02);
}

}  // namespace
}  // namespace pdc
