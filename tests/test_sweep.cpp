// Sweep-runner tests: the parallel table regeneration must be
// element-for-element identical to the serial loop it replaced, for any
// thread count, and must fail deterministically.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "eval/paper_data.hpp"
#include "eval/sweep.hpp"
#include "eval/trace_cell.hpp"
#include "fault/plan.hpp"

namespace pdc::eval {
namespace {

using host::PlatformId;
using mp::ToolKind;

TEST(Sweep, ThreadCountResolution) {
  EXPECT_EQ(sweep_threads(3), 3u);
  EXPECT_GE(sweep_threads(0), 1u);  // env var or hardware_concurrency, min 1
}

TEST(Sweep, ParallelForCoversEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 257;  // not a multiple of any thread count
  for (unsigned threads : {1u, 2u, 4u, 7u}) {
    std::vector<std::atomic<int>> hits(kN);
    parallel_for_index(kN, threads, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(Sweep, LowestFailingIndexExceptionWins) {
  // Two cells throw; the rethrown exception must always be the lower
  // index's, independent of which worker reached it first.
  for (int round = 0; round < 5; ++round) {
    try {
      parallel_for_index(64, 4, [](std::size_t i) {
        if (i == 11) throw std::runtime_error("cell 11");
        if (i == 47) throw std::out_of_range("cell 47");
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "cell 11");
    }
  }
}

TEST(Sweep, NonUniformNonPowerOfTwoGridIsBitIdenticalAcrossThreads) {
  // The performance-model training grids are deliberately irregular:
  // non-power-of-two sizes and odd process counts, different axes per
  // primitive. The sweep must stay element-for-element bit-identical to
  // the serial walk on those too -- the fitted models inherit their
  // determinism from exactly this guarantee.
  std::vector<TplCell> cells;
  for (std::int64_t bytes : {768LL, 1536LL, 3072LL, 6144LL, 12288LL}) {
    for (int procs : {2, 3, 5, 6, 7, 12}) {
      cells.push_back({Primitive::Broadcast, PlatformId::ClusterFatTree,
                       ToolKind::Express, bytes, procs, 0});
      cells.push_back({Primitive::GlobalSum, PlatformId::ClusterDragonfly,
                       ToolKind::P4, 0, procs, bytes / 4});
    }
    cells.push_back({Primitive::SendRecv, PlatformId::ClusterFlat, ToolKind::Pvm,
                     bytes, 2, 0});
  }
  const auto serial = sweep_tpl_ms(cells, 1);
  ASSERT_EQ(serial.size(), cells.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_TRUE(serial[i].has_value()) << i;
    EXPECT_GT(*serial[i], 0.0) << i;
  }
  for (unsigned threads : {2u, 3u, 8u}) {
    const auto parallel = sweep_tpl_ms(cells, threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      // Bit-identical, not merely close.
      EXPECT_EQ(*parallel[i], *serial[i]) << "cell " << i << ", " << threads << " threads";
    }
  }
}

TEST(Sweep, TplGridParallelMatchesSerialElementForElement) {
  // A slice of the Table 3 / Figure 2 grid: every primitive family, the
  // PVM global-sum hole included.
  std::vector<TplCell> cells;
  for (std::int64_t bytes : {0LL, 1024LL, 16384LL}) {
    for (ToolKind t : {ToolKind::Pvm, ToolKind::P4, ToolKind::Express}) {
      cells.push_back({Primitive::SendRecv, PlatformId::SunEthernet, t, bytes, 2, 0});
      cells.push_back({Primitive::Broadcast, PlatformId::SunAtmLan, t, bytes, 4, 0});
      cells.push_back({Primitive::GlobalSum, PlatformId::AlphaFddi, t, 0, 4, 10000});
    }
  }
  const auto serial = sweep_tpl_ms(cells, 1);
  ASSERT_EQ(serial.size(), cells.size());
  for (unsigned threads : {2u, 4u, 7u}) {
    const auto parallel = sweep_tpl_ms(cells, threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(parallel[i].has_value(), serial[i].has_value()) << i;
      if (serial[i]) {
        // Bit-identical, not approximately equal: each cell is its own
        // Simulation, so thread count must not perturb a single ULP.
        EXPECT_EQ(*parallel[i], *serial[i]) << "cell " << i << ", " << threads << " threads";
      }
    }
  }
}

TEST(Sweep, AppGridParallelMatchesSerialElementForElement) {
  AplConfig cfg;
  cfg.image_size = 64;
  cfg.fft_n = 16;
  cfg.mc_samples = 50'000;
  cfg.mc_rounds = 2;
  cfg.sort_keys = 20'000;
  std::vector<AppCell> cells;
  for (AppKind app : all_apps()) {
    for (int procs : {1, 2, 4}) {
      for (ToolKind t : {ToolKind::Pvm, ToolKind::P4}) {
        cells.push_back({PlatformId::AlphaFddi, t, app, procs});
      }
    }
  }
  const auto serial = sweep_app_s(cells, cfg, 1);
  const auto parallel = sweep_app_s(cells, cfg, 4);
  ASSERT_EQ(serial.size(), cells.size());
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(parallel[i], serial[i]) << "cell " << i;
  }
}

TEST(Sweep, PoolTelemetryAggregatesAcrossWorkers) {
  // Any grid that moves payloads should show fleet-wide pool activity, and
  // the steady-state recycling rate should be high: after each worker's
  // first few cells, every payload buffer is a pool hit.
  std::vector<TplCell> cells;
  for (int i = 0; i < 32; ++i) {
    cells.push_back({Primitive::GlobalSum, PlatformId::AlphaFddi, ToolKind::Express, 0, 4, 4096});
  }
  (void)sweep_tpl_ms(cells, 4);
  const auto stats = last_sweep_pool_stats();
  EXPECT_GT(stats.hits + stats.misses, 0u);
  EXPECT_GT(stats.releases, 0u);
  EXPECT_GT(stats.bytes_recycled, 0u);
  EXPECT_GT(stats.hit_rate(), 0.9);

  // The aggregate is per-run: a fresh sweep resets it.
  (void)sweep_tpl_ms({{Primitive::SendRecv, PlatformId::SunEthernet, ToolKind::P4, 64, 2, 0}}, 2);
  const auto fresh = last_sweep_pool_stats();
  EXPECT_LT(fresh.hits + fresh.misses, stats.hits + stats.misses);
}

// ---------- satellite: full Table 3 determinism regression -----------------

namespace {

/// The complete Table 3 grid in print order (the same construction as
/// bench_table3_sendrecv), optionally with a fault plan on every cell.
std::vector<TplCell> table3_cells(const fault::FaultPlan& faults = {}) {
  const ToolKind tools[] = {ToolKind::Pvm, ToolKind::P4, ToolKind::Express};
  const PlatformId platforms[] = {PlatformId::SunEthernet, PlatformId::SunAtmLan,
                                  PlatformId::SunAtmWan};
  std::vector<TplCell> cells;
  for (std::int64_t bytes : paper_message_sizes()) {
    for (ToolKind tool : tools) {
      for (PlatformId p : platforms) {
        if (tool == ToolKind::Express && p == PlatformId::SunAtmWan) continue;
        cells.push_back({Primitive::SendRecv, p, tool, bytes, 2, 0, faults});
      }
    }
  }
  return cells;
}

struct EnvThreads {
  // RAII PDC_SWEEP_THREADS override (tests in this suite run serially).
  explicit EnvThreads(const char* v) { ::setenv("PDC_SWEEP_THREADS", v, 1); }
  ~EnvThreads() { ::unsetenv("PDC_SWEEP_THREADS"); }
};

}  // namespace

TEST(SweepDeterminism, FullTable3TwiceInOneProcessIsBitIdentical) {
  const auto cells = table3_cells();
  const auto first = sweep_tpl_ms(cells);
  const auto second = sweep_tpl_ms(cells);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    ASSERT_TRUE(first[i].has_value()) << i;
    EXPECT_EQ(*first[i], *second[i]) << "cell " << i;
  }
}

TEST(SweepDeterminism, ThreadCountEnvDoesNotPerturbResultsOrCounterTotals) {
  const auto cells = table3_cells();
  std::vector<std::optional<double>> r1, r8;
  SweepPoolStats p1, p8;
  SweepFaultStats f1, f8;
  {
    const EnvThreads env("1");
    r1 = sweep_tpl_ms(cells, /*threads=*/0);  // 0 -> resolve from env
    p1 = last_sweep_pool_stats();
    f1 = last_sweep_fault_stats();
  }
  {
    const EnvThreads env("8");
    r8 = sweep_tpl_ms(cells, /*threads=*/0);
    p8 = last_sweep_pool_stats();
    f8 = last_sweep_fault_stats();
  }
  ASSERT_EQ(r1.size(), r8.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    ASSERT_EQ(r1[i].has_value(), r8[i].has_value()) << i;
    if (r1[i]) EXPECT_EQ(*r1[i], *r8[i]) << "cell " << i;
  }
  // Pool telemetry: the hit/miss split depends on how cells land on worker
  // threads (each thread pays its own cold misses), but the totals are a
  // property of the workload, not the schedule.
  EXPECT_EQ(p1.hits + p1.misses, p8.hits + p8.misses);
  EXPECT_EQ(p1.releases + p1.discards, p8.releases + p8.discards);
  // Fault counters on a fault-free sweep: exactly zero either way.
  EXPECT_EQ(f1.transport, f8.transport);
  EXPECT_EQ(f1.transport.retransmits, 0);
  EXPECT_EQ(f1.injected.frames, f8.injected.frames);
  EXPECT_EQ(f1.injected.frames, 0);
}

TEST(SweepDeterminism, FaultedSweepReplaysBitIdenticallyAcrossThreadCounts) {
  // The fault-plan axis: every cell carries the same lossy rates but its own
  // plan seed (cells with a shared seed replay the same fault-RNG prefix, so
  // short runs would be perfectly correlated). Cells are independent
  // Simulations with plan-seeded fault streams, so both the timings and the
  // aggregated wire/transport counters must replay exactly, at any thread
  // count.
  auto cells = table3_cells(fault::FaultPlan::uniform(0.10, 0.02, 0.05, 0.1,
                                                      sim::milliseconds(1)));
  for (std::size_t i = 0; i < cells.size(); ++i) cells[i].faults.seed = 0x7AB1E3 + i;
  const auto serial = sweep_tpl_ms(cells, 1);
  const auto fault_serial = last_sweep_fault_stats();
  EXPECT_GT(fault_serial.transport.retransmits, 0);
  EXPECT_GT(fault_serial.injected.frames, 0);
  EXPECT_GT(fault_serial.injected.drops, 0);
  for (unsigned threads : {2u, 8u}) {
    const auto parallel = sweep_tpl_ms(cells, threads);
    const auto fault_parallel = last_sweep_fault_stats();
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(parallel[i].has_value(), serial[i].has_value()) << i;
      if (serial[i]) EXPECT_EQ(*parallel[i], *serial[i]) << "cell " << i;
    }
    EXPECT_EQ(fault_parallel.transport, fault_serial.transport) << threads << " threads";
    EXPECT_EQ(fault_parallel.injected.frames, fault_serial.injected.frames);
    EXPECT_EQ(fault_parallel.injected.drops, fault_serial.injected.drops);
    EXPECT_EQ(fault_parallel.injected.corruptions, fault_serial.injected.corruptions);
    EXPECT_EQ(fault_parallel.injected.duplicates, fault_serial.injected.duplicates);
    EXPECT_EQ(fault_parallel.injected.reorders, fault_serial.injected.reorders);
  }
}

TEST(SweepDeterminism, TraceStreamsAreBitIdenticalAcrossThreadCounts) {
  // Each cell re-run with a capture installed must produce the identical
  // record stream no matter which sweep worker executes it: the sink is
  // thread-local per cell and the simulation is single-threaded, so the
  // stream is a pure function of the cell. In the default PDC_TRACE=OFF
  // build the streams are empty and this degenerates to the timing check;
  // the CI trace job runs it with the probes compiled in.
  std::vector<TplCell> cells;
  for (auto tool : {ToolKind::P4, ToolKind::Pvm, ToolKind::Express}) {
    for (std::int64_t bytes : {16, 16384}) {
      TplCell c;
      c.tool = tool;
      c.bytes = bytes;
      cells.push_back(c);
    }
  }
  auto run = [&](unsigned threads) {
    return parallel_map<TracedTplCell>(
        cells.size(), [&](std::size_t i) { return tpl_cell_traced(cells[i]); },
        threads);
  };
  const auto serial = run(1);
  EXPECT_EQ(serial.front().records.empty(), !trace_compiled_in());
  for (unsigned threads : {2u, 8u}) {
    const auto fanned = run(threads);
    ASSERT_EQ(fanned.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(fanned[i].ms, serial[i].ms) << "cell " << i;
      EXPECT_EQ(fanned[i].stats, serial[i].stats) << "cell " << i;
      ASSERT_EQ(fanned[i].records.size(), serial[i].records.size()) << "cell " << i;
      for (std::size_t r = 0; r < serial[i].records.size(); ++r) {
        ASSERT_EQ(fanned[i].records[r], serial[i].records[r])
            << "cell " << i << " record " << r << " at " << threads << " threads";
      }
    }
  }
}

TEST(SweepTelemetry, ConcurrentSweepsKeepTheirOwnStats) {
  // Regression: the last_sweep_*_stats() accessors used to read global
  // aggregates, so a clean sweep racing a faulted sweep on another thread
  // (exactly what the evaluation daemon does) could observe the other
  // request's injected-fault counters. Each accessor now reports the last
  // sweep *submitted from the calling thread*; a clean sweep must read
  // zero injected frames no matter what runs next door.
  std::vector<TplCell> faulty_cells, clean_cells;
  for (std::int64_t bytes : {256, 1024, 4096}) {
    TplCell c;
    c.bytes = bytes;
    c.faults = fault::FaultPlan::uniform(0.05, 0.0, 0.0, 0.0, sim::microseconds(100), 0xF457);
    faulty_cells.push_back(c);
    c.faults = {};
    clean_cells.push_back(c);
  }

  for (int round = 0; round < 3; ++round) {
    std::atomic<int> ready{0};
    SweepFaultStats clean_seen{}, faulty_seen{};
    std::thread faulty([&] {
      ready.fetch_add(1);
      while (ready.load() < 2) {}
      (void)sweep_tpl_ms(faulty_cells, 2);
      faulty_seen = last_sweep_fault_stats();
    });
    std::thread clean([&] {
      ready.fetch_add(1);
      while (ready.load() < 2) {}
      (void)sweep_tpl_ms(clean_cells, 2);
      clean_seen = last_sweep_fault_stats();
    });
    faulty.join();
    clean.join();
    EXPECT_GT(faulty_seen.injected.frames, 0) << "round " << round;
    EXPECT_EQ(clean_seen.injected.frames, 0) << "round " << round;
    EXPECT_EQ(clean_seen.injected.drops, 0) << "round " << round;
    EXPECT_EQ(clean_seen.transport.retransmits, 0) << "round " << round;
  }
}

}  // namespace
}  // namespace pdc::eval
