// Sweep-runner tests: the parallel table regeneration must be
// element-for-element identical to the serial loop it replaced, for any
// thread count, and must fail deterministically.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "eval/sweep.hpp"

namespace pdc::eval {
namespace {

using host::PlatformId;
using mp::ToolKind;

TEST(Sweep, ThreadCountResolution) {
  EXPECT_EQ(sweep_threads(3), 3u);
  EXPECT_GE(sweep_threads(0), 1u);  // env var or hardware_concurrency, min 1
}

TEST(Sweep, ParallelForCoversEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 257;  // not a multiple of any thread count
  for (unsigned threads : {1u, 2u, 4u, 7u}) {
    std::vector<std::atomic<int>> hits(kN);
    parallel_for_index(kN, threads, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(Sweep, LowestFailingIndexExceptionWins) {
  // Two cells throw; the rethrown exception must always be the lower
  // index's, independent of which worker reached it first.
  for (int round = 0; round < 5; ++round) {
    try {
      parallel_for_index(64, 4, [](std::size_t i) {
        if (i == 11) throw std::runtime_error("cell 11");
        if (i == 47) throw std::out_of_range("cell 47");
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "cell 11");
    }
  }
}

TEST(Sweep, TplGridParallelMatchesSerialElementForElement) {
  // A slice of the Table 3 / Figure 2 grid: every primitive family, the
  // PVM global-sum hole included.
  std::vector<TplCell> cells;
  for (std::int64_t bytes : {0LL, 1024LL, 16384LL}) {
    for (ToolKind t : {ToolKind::Pvm, ToolKind::P4, ToolKind::Express}) {
      cells.push_back({Primitive::SendRecv, PlatformId::SunEthernet, t, bytes, 2, 0});
      cells.push_back({Primitive::Broadcast, PlatformId::SunAtmLan, t, bytes, 4, 0});
      cells.push_back({Primitive::GlobalSum, PlatformId::AlphaFddi, t, 0, 4, 10000});
    }
  }
  const auto serial = sweep_tpl_ms(cells, 1);
  ASSERT_EQ(serial.size(), cells.size());
  for (unsigned threads : {2u, 4u, 7u}) {
    const auto parallel = sweep_tpl_ms(cells, threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(parallel[i].has_value(), serial[i].has_value()) << i;
      if (serial[i]) {
        // Bit-identical, not approximately equal: each cell is its own
        // Simulation, so thread count must not perturb a single ULP.
        EXPECT_EQ(*parallel[i], *serial[i]) << "cell " << i << ", " << threads << " threads";
      }
    }
  }
}

TEST(Sweep, AppGridParallelMatchesSerialElementForElement) {
  AplConfig cfg;
  cfg.image_size = 64;
  cfg.fft_n = 16;
  cfg.mc_samples = 50'000;
  cfg.mc_rounds = 2;
  cfg.sort_keys = 20'000;
  std::vector<AppCell> cells;
  for (AppKind app : all_apps()) {
    for (int procs : {1, 2, 4}) {
      for (ToolKind t : {ToolKind::Pvm, ToolKind::P4}) {
        cells.push_back({PlatformId::AlphaFddi, t, app, procs});
      }
    }
  }
  const auto serial = sweep_app_s(cells, cfg, 1);
  const auto parallel = sweep_app_s(cells, cfg, 4);
  ASSERT_EQ(serial.size(), cells.size());
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(parallel[i], serial[i]) << "cell " << i;
  }
}

TEST(Sweep, PoolTelemetryAggregatesAcrossWorkers) {
  // Any grid that moves payloads should show fleet-wide pool activity, and
  // the steady-state recycling rate should be high: after each worker's
  // first few cells, every payload buffer is a pool hit.
  std::vector<TplCell> cells;
  for (int i = 0; i < 32; ++i) {
    cells.push_back({Primitive::GlobalSum, PlatformId::AlphaFddi, ToolKind::Express, 0, 4, 4096});
  }
  (void)sweep_tpl_ms(cells, 4);
  const auto stats = last_sweep_pool_stats();
  EXPECT_GT(stats.hits + stats.misses, 0u);
  EXPECT_GT(stats.releases, 0u);
  EXPECT_GT(stats.bytes_recycled, 0u);
  EXPECT_GT(stats.hit_rate(), 0.9);

  // The aggregate is per-run: a fresh sweep resets it.
  (void)sweep_tpl_ms({{Primitive::SendRecv, PlatformId::SunEthernet, ToolKind::P4, 64, 2, 0}}, 2);
  const auto fresh = last_sweep_pool_stats();
  EXPECT_LT(fresh.hits + fresh.misses, stats.hits + stats.misses);
}

}  // namespace
}  // namespace pdc::eval
