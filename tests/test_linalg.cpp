// Numerical-class SU PDABS applications (paper Table 2): dense matrix
// multiplication and LU decomposition -- serial correctness plus
// distributed == serial under every tool and several process counts.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/linalg/lu.hpp"
#include "apps/linalg/matmul.hpp"
#include "mp/api.hpp"

namespace pdc::apps::linalg {
namespace {

using host::PlatformId;
using mp::ToolKind;

TEST(MatMul, SerialIdentityAndAssociativity) {
  const int n = 8;
  Mat a = make_test_matrix(n, 1);
  Mat identity{n, std::vector<double>(static_cast<std::size_t>(n) * n, 0.0)};
  for (int i = 0; i < n; ++i) identity.at(i, i) = 1.0;
  EXPECT_LT(max_abs_diff(multiply_serial(a, identity), a), 1e-15);
  EXPECT_LT(max_abs_diff(multiply_serial(identity, a), a), 1e-15);
  // (A*I)*A == A*(I*A)
  EXPECT_LT(max_abs_diff(multiply_serial(multiply_serial(a, identity), a),
                         multiply_serial(a, multiply_serial(identity, a))),
            1e-12);
}

TEST(MatMul, RejectsMismatchedSizes) {
  const Mat a = make_test_matrix(4, 1);
  const Mat b = make_test_matrix(8, 2);
  EXPECT_THROW(multiply_serial(a, b), std::invalid_argument);
  EXPECT_THROW((void)max_abs_diff(a, b), std::invalid_argument);
}

class LinalgTools : public ::testing::TestWithParam<ToolKind> {};
INSTANTIATE_TEST_SUITE_P(AllTools, LinalgTools,
                         ::testing::ValuesIn(mp::all_tools()),
                         [](const auto& info) { return std::string(to_string(info.param)); });

TEST_P(LinalgTools, DistributedMatMulMatchesSerialBitExactly) {
  const int n = 16;
  const Mat a = make_test_matrix(n, 3);
  const Mat b = make_test_matrix(n, 4);
  const Mat expected = multiply_serial(a, b);
  for (int procs : {1, 2, 4, 8}) {
    Mat c;
    auto program = [&](mp::Communicator& comm) -> sim::Task<void> {
      co_await multiply_distributed(comm, a, b, comm.rank() == 0 ? &c : nullptr);
    };
    mp::run_spmd(PlatformId::Sp1Switch, procs, GetParam(), program);
    ASSERT_EQ(c.n, n);
    // Same operation order per row -> bit-identical to serial.
    EXPECT_EQ(c.a, expected.a) << procs << " procs";
  }
}

TEST(Lu, SerialFactorsReconstruct) {
  const Mat a = make_dd_matrix(12, 7);
  const Mat lu = lu_serial(a);
  EXPECT_LT(max_abs_diff(lu_reconstruct(lu), a), 1e-9);
}

TEST(Lu, ZeroPivotRejected) {
  Mat a{2, {0.0, 1.0, 1.0, 0.0}};  // singular leading minor
  EXPECT_THROW(lu_serial(a), std::domain_error);
}

TEST_P(LinalgTools, DistributedLuMatchesSerialBitExactly) {
  const int n = 12;
  const Mat a = make_dd_matrix(n, 9);
  const Mat expected = lu_serial(a);
  for (int procs : {1, 2, 3, 4}) {  // row-cyclic: any process count works
    Mat lu;
    auto program = [&](mp::Communicator& comm) -> sim::Task<void> {
      co_await lu_distributed(comm, a, comm.rank() == 0 ? &lu : nullptr);
    };
    mp::run_spmd(PlatformId::AlphaFddi, procs, GetParam(), program);
    ASSERT_EQ(lu.n, n);
    EXPECT_EQ(lu.a, expected.a) << procs << " procs";
  }
}

TEST(Lu, ScalingRegimesMatchCommunicationStructure) {
  // LU broadcasts one pivot row per step, so small systems are
  // communication-bound (parallel slower than serial) while large systems
  // amortise the broadcasts and speed up -- the classic surface-to-volume
  // crossover.
  auto timed = [](int n, int procs) {
    const Mat a = make_dd_matrix(n, 11);
    auto program = [&](mp::Communicator& comm) -> sim::Task<void> {
      co_await lu_distributed(comm, a, nullptr);
    };
    return mp::run_spmd(PlatformId::AlphaFddi, procs, ToolKind::P4, program)
        .elapsed.seconds();
  };
  EXPECT_GT(timed(64, 4), timed(64, 1));   // tiny system: comm dominates
  EXPECT_LT(timed(384, 4), timed(384, 1));  // large system: compute dominates
}

}  // namespace
}  // namespace pdc::apps::linalg
