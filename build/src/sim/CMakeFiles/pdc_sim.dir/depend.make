# Empty dependencies file for pdc_sim.
# This may be replaced when dependencies are built.
