file(REMOVE_RECURSE
  "libpdc_sim.a"
)
