file(REMOVE_RECURSE
  "CMakeFiles/pdc_sim.dir/event_queue.cpp.o"
  "CMakeFiles/pdc_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/pdc_sim.dir/resource.cpp.o"
  "CMakeFiles/pdc_sim.dir/resource.cpp.o.d"
  "CMakeFiles/pdc_sim.dir/simulation.cpp.o"
  "CMakeFiles/pdc_sim.dir/simulation.cpp.o.d"
  "libpdc_sim.a"
  "libpdc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
