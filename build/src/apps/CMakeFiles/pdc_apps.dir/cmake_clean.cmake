file(REMOVE_RECURSE
  "CMakeFiles/pdc_apps.dir/fft/fft.cpp.o"
  "CMakeFiles/pdc_apps.dir/fft/fft.cpp.o.d"
  "CMakeFiles/pdc_apps.dir/fft/parallel.cpp.o"
  "CMakeFiles/pdc_apps.dir/fft/parallel.cpp.o.d"
  "CMakeFiles/pdc_apps.dir/jpeg/codec.cpp.o"
  "CMakeFiles/pdc_apps.dir/jpeg/codec.cpp.o.d"
  "CMakeFiles/pdc_apps.dir/jpeg/parallel.cpp.o"
  "CMakeFiles/pdc_apps.dir/jpeg/parallel.cpp.o.d"
  "CMakeFiles/pdc_apps.dir/linalg/lu.cpp.o"
  "CMakeFiles/pdc_apps.dir/linalg/lu.cpp.o.d"
  "CMakeFiles/pdc_apps.dir/linalg/matmul.cpp.o"
  "CMakeFiles/pdc_apps.dir/linalg/matmul.cpp.o.d"
  "CMakeFiles/pdc_apps.dir/mc/montecarlo.cpp.o"
  "CMakeFiles/pdc_apps.dir/mc/montecarlo.cpp.o.d"
  "CMakeFiles/pdc_apps.dir/sort/psrs.cpp.o"
  "CMakeFiles/pdc_apps.dir/sort/psrs.cpp.o.d"
  "libpdc_apps.a"
  "libpdc_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdc_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
