
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/fft/fft.cpp" "src/apps/CMakeFiles/pdc_apps.dir/fft/fft.cpp.o" "gcc" "src/apps/CMakeFiles/pdc_apps.dir/fft/fft.cpp.o.d"
  "/root/repo/src/apps/fft/parallel.cpp" "src/apps/CMakeFiles/pdc_apps.dir/fft/parallel.cpp.o" "gcc" "src/apps/CMakeFiles/pdc_apps.dir/fft/parallel.cpp.o.d"
  "/root/repo/src/apps/jpeg/codec.cpp" "src/apps/CMakeFiles/pdc_apps.dir/jpeg/codec.cpp.o" "gcc" "src/apps/CMakeFiles/pdc_apps.dir/jpeg/codec.cpp.o.d"
  "/root/repo/src/apps/jpeg/parallel.cpp" "src/apps/CMakeFiles/pdc_apps.dir/jpeg/parallel.cpp.o" "gcc" "src/apps/CMakeFiles/pdc_apps.dir/jpeg/parallel.cpp.o.d"
  "/root/repo/src/apps/linalg/lu.cpp" "src/apps/CMakeFiles/pdc_apps.dir/linalg/lu.cpp.o" "gcc" "src/apps/CMakeFiles/pdc_apps.dir/linalg/lu.cpp.o.d"
  "/root/repo/src/apps/linalg/matmul.cpp" "src/apps/CMakeFiles/pdc_apps.dir/linalg/matmul.cpp.o" "gcc" "src/apps/CMakeFiles/pdc_apps.dir/linalg/matmul.cpp.o.d"
  "/root/repo/src/apps/mc/montecarlo.cpp" "src/apps/CMakeFiles/pdc_apps.dir/mc/montecarlo.cpp.o" "gcc" "src/apps/CMakeFiles/pdc_apps.dir/mc/montecarlo.cpp.o.d"
  "/root/repo/src/apps/sort/psrs.cpp" "src/apps/CMakeFiles/pdc_apps.dir/sort/psrs.cpp.o" "gcc" "src/apps/CMakeFiles/pdc_apps.dir/sort/psrs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mp/CMakeFiles/pdc_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pdc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/pdc_host.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pdc_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
