# Empty compiler generated dependencies file for pdc_apps.
# This may be replaced when dependencies are built.
