file(REMOVE_RECURSE
  "libpdc_apps.a"
)
