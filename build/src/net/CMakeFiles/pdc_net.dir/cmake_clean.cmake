file(REMOVE_RECURSE
  "CMakeFiles/pdc_net.dir/shared_bus.cpp.o"
  "CMakeFiles/pdc_net.dir/shared_bus.cpp.o.d"
  "CMakeFiles/pdc_net.dir/switched.cpp.o"
  "CMakeFiles/pdc_net.dir/switched.cpp.o.d"
  "libpdc_net.a"
  "libpdc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
