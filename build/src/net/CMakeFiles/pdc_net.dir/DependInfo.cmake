
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/shared_bus.cpp" "src/net/CMakeFiles/pdc_net.dir/shared_bus.cpp.o" "gcc" "src/net/CMakeFiles/pdc_net.dir/shared_bus.cpp.o.d"
  "/root/repo/src/net/switched.cpp" "src/net/CMakeFiles/pdc_net.dir/switched.cpp.o" "gcc" "src/net/CMakeFiles/pdc_net.dir/switched.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pdc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
