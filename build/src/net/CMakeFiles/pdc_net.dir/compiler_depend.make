# Empty compiler generated dependencies file for pdc_net.
# This may be replaced when dependencies are built.
