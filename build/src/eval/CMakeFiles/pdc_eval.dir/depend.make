# Empty dependencies file for pdc_eval.
# This may be replaced when dependencies are built.
