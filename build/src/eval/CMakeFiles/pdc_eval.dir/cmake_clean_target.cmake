file(REMOVE_RECURSE
  "libpdc_eval.a"
)
