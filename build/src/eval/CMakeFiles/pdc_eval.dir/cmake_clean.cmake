file(REMOVE_RECURSE
  "CMakeFiles/pdc_eval.dir/apl.cpp.o"
  "CMakeFiles/pdc_eval.dir/apl.cpp.o.d"
  "CMakeFiles/pdc_eval.dir/criteria.cpp.o"
  "CMakeFiles/pdc_eval.dir/criteria.cpp.o.d"
  "CMakeFiles/pdc_eval.dir/methodology.cpp.o"
  "CMakeFiles/pdc_eval.dir/methodology.cpp.o.d"
  "CMakeFiles/pdc_eval.dir/tpl.cpp.o"
  "CMakeFiles/pdc_eval.dir/tpl.cpp.o.d"
  "libpdc_eval.a"
  "libpdc_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdc_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
