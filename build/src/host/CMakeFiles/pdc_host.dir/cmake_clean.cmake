file(REMOVE_RECURSE
  "CMakeFiles/pdc_host.dir/platform.cpp.o"
  "CMakeFiles/pdc_host.dir/platform.cpp.o.d"
  "libpdc_host.a"
  "libpdc_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdc_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
