# Empty dependencies file for pdc_host.
# This may be replaced when dependencies are built.
