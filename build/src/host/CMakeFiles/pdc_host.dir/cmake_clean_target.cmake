file(REMOVE_RECURSE
  "libpdc_host.a"
)
