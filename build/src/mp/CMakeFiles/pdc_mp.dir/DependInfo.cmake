
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mp/api.cpp" "src/mp/CMakeFiles/pdc_mp.dir/api.cpp.o" "gcc" "src/mp/CMakeFiles/pdc_mp.dir/api.cpp.o.d"
  "/root/repo/src/mp/communicator.cpp" "src/mp/CMakeFiles/pdc_mp.dir/communicator.cpp.o" "gcc" "src/mp/CMakeFiles/pdc_mp.dir/communicator.cpp.o.d"
  "/root/repo/src/mp/profile.cpp" "src/mp/CMakeFiles/pdc_mp.dir/profile.cpp.o" "gcc" "src/mp/CMakeFiles/pdc_mp.dir/profile.cpp.o.d"
  "/root/repo/src/mp/runtime.cpp" "src/mp/CMakeFiles/pdc_mp.dir/runtime.cpp.o" "gcc" "src/mp/CMakeFiles/pdc_mp.dir/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/host/CMakeFiles/pdc_host.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pdc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pdc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
