file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_sendrecv.dir/bench_table3_sendrecv.cpp.o"
  "CMakeFiles/bench_table3_sendrecv.dir/bench_table3_sendrecv.cpp.o.d"
  "bench_table3_sendrecv"
  "bench_table3_sendrecv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_sendrecv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
