# Empty compiler generated dependencies file for bench_fig6_apps_sp1.
# This may be replaced when dependencies are built.
