# Empty dependencies file for bench_fig2_broadcast.
# This may be replaced when dependencies are built.
