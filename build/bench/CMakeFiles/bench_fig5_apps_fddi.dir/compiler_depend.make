# Empty compiler generated dependencies file for bench_fig5_apps_fddi.
# This may be replaced when dependencies are built.
