file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_apps_fddi.dir/bench_fig5_apps_fddi.cpp.o"
  "CMakeFiles/bench_fig5_apps_fddi.dir/bench_fig5_apps_fddi.cpp.o.d"
  "bench_fig5_apps_fddi"
  "bench_fig5_apps_fddi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_apps_fddi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
