file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_apps_atmwan.dir/bench_fig7_apps_atmwan.cpp.o"
  "CMakeFiles/bench_fig7_apps_atmwan.dir/bench_fig7_apps_atmwan.cpp.o.d"
  "bench_fig7_apps_atmwan"
  "bench_fig7_apps_atmwan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_apps_atmwan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
