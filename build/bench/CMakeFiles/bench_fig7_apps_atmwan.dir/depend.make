# Empty dependencies file for bench_fig7_apps_atmwan.
# This may be replaced when dependencies are built.
