file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_globalsum.dir/bench_fig4_globalsum.cpp.o"
  "CMakeFiles/bench_fig4_globalsum.dir/bench_fig4_globalsum.cpp.o.d"
  "bench_fig4_globalsum"
  "bench_fig4_globalsum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_globalsum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
