# Empty dependencies file for bench_fig8_apps_ethernet.
# This may be replaced when dependencies are built.
