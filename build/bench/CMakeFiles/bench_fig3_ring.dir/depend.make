# Empty dependencies file for bench_fig3_ring.
# This may be replaced when dependencies are built.
