file(REMOVE_RECURSE
  "CMakeFiles/wan_vs_lan.dir/wan_vs_lan.cpp.o"
  "CMakeFiles/wan_vs_lan.dir/wan_vs_lan.cpp.o.d"
  "wan_vs_lan"
  "wan_vs_lan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_vs_lan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
