# Empty dependencies file for wan_vs_lan.
# This may be replaced when dependencies are built.
