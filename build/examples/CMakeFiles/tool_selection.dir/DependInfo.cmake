
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/tool_selection.cpp" "examples/CMakeFiles/tool_selection.dir/tool_selection.cpp.o" "gcc" "examples/CMakeFiles/tool_selection.dir/tool_selection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/pdc_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/pdc_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/mp/CMakeFiles/pdc_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/pdc_host.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pdc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pdc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
