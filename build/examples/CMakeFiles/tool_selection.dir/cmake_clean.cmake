file(REMOVE_RECURSE
  "CMakeFiles/tool_selection.dir/tool_selection.cpp.o"
  "CMakeFiles/tool_selection.dir/tool_selection.cpp.o.d"
  "tool_selection"
  "tool_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
