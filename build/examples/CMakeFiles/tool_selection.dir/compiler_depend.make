# Empty compiler generated dependencies file for tool_selection.
# This may be replaced when dependencies are built.
