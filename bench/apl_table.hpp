// Shared table printer for the application-performance figures (5-8).
#pragma once

#include <cstdio>
#include <vector>

#include "eval/apl.hpp"
#include "eval/sweep.hpp"

namespace pdc::bench {

/// Print one paper figure: the four applications on `platform`, execution
/// time vs processor count for each tool. All cells are measured up front
/// through the parallel sweep runner (deterministic, bit-identical to a
/// serial loop), then printed in figure order.
inline void print_apl_figure(const char* title, host::PlatformId platform,
                             const std::vector<int>& procs,
                             const std::vector<mp::ToolKind>& tools) {
  const auto skip = [](eval::AppKind app, int p) {
    // The paper's 2D-FFT codes require the processor count to divide the
    // problem dimension; skip non-divisors as the paper's plots do.
    return app == eval::AppKind::Fft2d && (p & (p - 1)) != 0;
  };

  std::vector<eval::AppCell> cells;
  for (eval::AppKind app : eval::all_apps()) {
    for (int p : procs) {
      if (skip(app, p)) continue;
      for (auto t : tools) cells.push_back({platform, t, app, p});
    }
  }
  const std::vector<double> seconds = eval::sweep_app_s(cells);

  std::printf("%s (sweep: %u threads, %zu cells)\n", title, eval::sweep_threads(),
              cells.size());
  std::size_t next = 0;
  for (eval::AppKind app : eval::all_apps()) {
    std::printf("\n%s on %s (seconds)\n", eval::to_string(app), host::to_string(platform));
    std::printf("%6s", "procs");
    for (auto t : tools) std::printf(" %10s", mp::to_string(t));
    std::printf("\n");
    for (int p : procs) {
      if (skip(app, p)) continue;
      std::printf("%6d", p);
      for (std::size_t i = 0; i < tools.size(); ++i) std::printf(" %10.4f", seconds[next++]);
      std::printf("\n");
    }
  }
}

}  // namespace pdc::bench
