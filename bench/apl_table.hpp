// Shared table printer for the application-performance figures (5-8).
#pragma once

#include <cstdio>
#include <vector>

#include "eval/apl.hpp"

namespace pdc::bench {

/// Print one paper figure: the four applications on `platform`, execution
/// time vs processor count for each tool.
inline void print_apl_figure(const char* title, host::PlatformId platform,
                             const std::vector<int>& procs,
                             const std::vector<mp::ToolKind>& tools) {
  std::printf("%s\n", title);
  for (eval::AppKind app : eval::all_apps()) {
    std::printf("\n%s on %s (seconds)\n", eval::to_string(app), host::to_string(platform));
    std::printf("%6s", "procs");
    for (auto t : tools) std::printf(" %10s", mp::to_string(t));
    std::printf("\n");
    for (int p : procs) {
      // The paper's 2D-FFT codes require the processor count to divide the
      // problem dimension; skip non-divisors as the paper's plots do.
      if (app == eval::AppKind::Fft2d && (p & (p - 1)) != 0) continue;
      std::printf("%6d", p);
      for (auto t : tools) {
        std::printf(" %10.4f", eval::app_time_s(platform, t, app, p));
      }
      std::printf("\n");
    }
  }
}

}  // namespace pdc::bench
