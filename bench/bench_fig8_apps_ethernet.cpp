// Regenerates paper Figure 8: the four applications on SUN SPARCstations
// over shared 10 Mb/s Ethernet, 1-8 processors, Express / p4 / PVM.
#include "apl_table.hpp"

int main() {
  pdc::bench::print_apl_figure(
      "Figure 8: Application performances on SUN/Ethernet",
      pdc::host::PlatformId::SunEthernet, {1, 2, 3, 4, 5, 6, 7, 8},
      {pdc::mp::ToolKind::Express, pdc::mp::ToolKind::P4, pdc::mp::ToolKind::Pvm});
  return 0;
}
