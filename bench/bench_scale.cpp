// Weak/strong scaling of the simulator at large rank counts (ROADMAP item
// 1): ping-pong, global-sum, broadcast and the Monte Carlo APL app across
// P in {16, 64, 256, 1024, 4096} on the three scale platforms (flat
// crossbar, 3-level fat-tree, dragonfly). Reported per benchmark:
//   events_per_s    -- simulator event throughput (the scaling signal)
//   allocs_per_rank -- heap allocations / rank (flat => O(active) state)
//   sim_ms          -- simulated time of the run (determinism anchor)
//   peak_rss_mb     -- process high-water RSS (monotone across benchmarks)
#include <benchmark/benchmark.h>

#include <sys/resource.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "eval/apl.hpp"
#include "eval/sweep.hpp"
#include "host/platform.hpp"
#include "mp/api.hpp"
#include "mp/pack.hpp"
#include "sim/simulation.hpp"

// Heap-allocation telemetry: count every operator-new in the process so the
// scaling curves report allocations-per-rank, not just wall time.
static std::atomic<unsigned long long> g_heap_allocs{0};

// GCC cannot see that the replacement operator-new above hands out malloc
// storage, so pairing it with std::free trips -Wmismatched-new-delete.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace {

using namespace pdc;
using host::PlatformId;
using mp::Communicator;
using mp::ToolKind;

unsigned long long heap_allocs() { return g_heap_allocs.load(std::memory_order_relaxed); }

double peak_rss_mb() {
  rusage u{};
  getrusage(RUSAGE_SELF, &u);
  return static_cast<double>(u.ru_maxrss) / 1024.0;  // Linux: ru_maxrss in KiB
}

struct RunTally {
  std::uint64_t events{0};
  std::uint64_t allocs{0};
  double sim_ms{0.0};
  int runs{0};

  void add(const mp::RunOutcome& out, unsigned long long allocs_before) {
    events += out.events;
    allocs += heap_allocs() - allocs_before;
    sim_ms = out.elapsed.millis();  // identical every iteration (determinism)
    ++runs;
  }

  void report(benchmark::State& state, int procs) const {
    const double n = runs > 0 ? runs : 1;
    state.counters["events_per_s"] =
        benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
    state.counters["allocs_per_rank"] =
        static_cast<double>(allocs) / (n * static_cast<double>(procs));
    state.counters["sim_ms"] = sim_ms;
    state.counters["peak_rss_mb"] = peak_rss_mb();
    state.counters["ranks"] = static_cast<double>(procs);
  }
};

PlatformId scale_platform(std::int64_t index) {
  return host::scale_platforms().at(static_cast<std::size_t>(index));
}

// -- global sum: strong (fixed total elements) and weak (fixed per-rank) -----

mp::RankProgram global_sum_program(int len) {
  return [len](Communicator& c) -> sim::Task<void> {
    std::vector<std::int32_t> v(static_cast<std::size_t>(len), c.rank() + 1);
    co_await c.global_sum(v);
    benchmark::DoNotOptimize(v.data());
  };
}

void BM_GlobalSumStrong(benchmark::State& state) {
  const auto platform = scale_platform(state.range(0));
  const int procs = static_cast<int>(state.range(1));
  const int len = static_cast<int>(16384 / procs) + 1;  // total work ~ constant
  RunTally tally;
  for (auto _ : state) {
    const auto before = heap_allocs();
    const auto out = mp::run_spmd(platform, procs, ToolKind::Express, global_sum_program(len));
    tally.add(out, before);
  }
  tally.report(state, procs);
  state.SetLabel(host::to_string(platform));
}

void BM_GlobalSumWeak(benchmark::State& state) {
  const auto platform = scale_platform(state.range(0));
  const int procs = static_cast<int>(state.range(1));
  RunTally tally;
  for (auto _ : state) {  // 256 ints per rank regardless of P
    const auto before = heap_allocs();
    const auto out = mp::run_spmd(platform, procs, ToolKind::Express, global_sum_program(256));
    tally.add(out, before);
  }
  tally.report(state, procs);
  state.SetLabel(host::to_string(platform));
}

// -- ping-pong at P=4096: two active ranks in a huge idle cluster ------------

void BM_PingPong4096(benchmark::State& state) {
  const auto platform = scale_platform(state.range(0));
  constexpr int kProcs = 4096;
  auto program = [](Communicator& c) -> sim::Task<void> {
    constexpr int kRounds = 8;
    if (c.rank() == 0) {
      for (int i = 0; i < kRounds; ++i) {
        co_await c.send(kProcs - 1, 1, mp::make_payload(mp::Bytes(65536)));
        (void)co_await c.recv(kProcs - 1, 2);
      }
    } else if (c.rank() == kProcs - 1) {
      for (int i = 0; i < kRounds; ++i) {
        mp::Message m = co_await c.recv(0, 1);
        co_await c.send(0, 2, m.data);
      }
    }
    co_return;
  };
  RunTally tally;
  for (auto _ : state) {
    const auto before = heap_allocs();
    const auto out = mp::run_spmd(platform, kProcs, ToolKind::P4, program);
    tally.add(out, before);
  }
  tally.report(state, kProcs);
  state.SetLabel(host::to_string(platform));
}

// -- broadcast: binomial tree touches every rank -----------------------------

void BM_Broadcast(benchmark::State& state) {
  const auto platform = scale_platform(state.range(0));
  const int procs = static_cast<int>(state.range(1));
  auto program = [](Communicator& c) -> sim::Task<void> {
    mp::Bytes blob(16384);
    co_await c.broadcast(0, blob, 9);
    benchmark::DoNotOptimize(blob.data());
  };
  RunTally tally;
  for (auto _ : state) {
    const auto before = heap_allocs();
    const auto out = mp::run_spmd(platform, procs, ToolKind::Express, program);
    tally.add(out, before);
  }
  tally.report(state, procs);
  state.SetLabel(host::to_string(platform));
}

// -- intra-run thread sweep: one P=1024 cell sharded 1/2/4/8 ways ------------
//
// The conservative-lookahead engine's scaling signal: the same weak
// global-sum cell, event loop sharded across PDC_SIM_THREADS worker
// threads. `speedup_vs_serial` is events/s relative to the threads=1 row
// of the same fabric (measured in the same process, so the baseline is
// always the row above). Simulated results are bit-identical at every
// thread count -- sim_ms must not move -- so the only thing this sweep is
// allowed to change is the wall clock. Measured speedup saturates at
// min(threads, physical cores): on a single-core runner every row reports
// ~1.0 and the sweep degenerates to a sharding-overhead measurement.

std::array<double, 3> g_serial_eps{};  // threads=1 events/s, per fabric

void BM_GlobalSumSharded(benchmark::State& state) {
  const auto platform_idx = static_cast<std::size_t>(state.range(0));
  const auto platform = scale_platform(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  constexpr int kProcs = 1024;
  mp::set_sim_threads(threads);
  std::uint64_t events = 0;
  double sim_ms = 0.0;
  const auto wall0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    const auto out =
        mp::run_spmd(platform, kProcs, ToolKind::Express, global_sum_program(256));
    events += out.events;
    sim_ms = out.elapsed.millis();  // identical every iteration and thread count
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0).count();
  mp::set_sim_threads(0);
  const double eps = wall_s > 0.0 ? static_cast<double>(events) / wall_s : 0.0;
  if (threads == 1) g_serial_eps[platform_idx] = eps;
  state.counters["events_per_s"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["sim_threads"] = static_cast<double>(threads);
  state.counters["speedup_vs_serial"] =
      g_serial_eps[platform_idx] > 0.0 ? eps / g_serial_eps[platform_idx] : 0.0;
  state.counters["sim_ms"] = sim_ms;
  state.counters["ranks"] = static_cast<double>(kProcs);
  state.SetLabel(host::to_string(platform));
}

// -- one APL application: Monte Carlo integration ----------------------------

void BM_AppMonteCarlo(benchmark::State& state) {
  const auto platform = scale_platform(state.range(0));
  const int procs = static_cast<int>(state.range(1));
  eval::AplConfig cfg;
  cfg.mc_samples = 200'000;  // trimmed workload: the fabric is the subject
  cfg.mc_rounds = 4;
  double sim_s = 0.0;
  for (auto _ : state) {
    sim_s = eval::app_cell_s(
        {.platform = platform, .tool = ToolKind::Express, .app = eval::AppKind::MonteCarlo,
         .procs = procs},
        cfg);
    benchmark::DoNotOptimize(sim_s);
  }
  state.counters["sim_ms"] = sim_s * 1e3;
  state.counters["peak_rss_mb"] = peak_rss_mb();
  state.counters["ranks"] = static_cast<double>(procs);
  state.SetLabel(host::to_string(platform));
}

void ScaleArgs(benchmark::internal::Benchmark* b) {
  for (std::int64_t platform = 0; platform < 3; ++platform) {
    for (const std::int64_t procs : {16, 64, 256, 1024, 4096}) {
      b->Args({platform, procs});
    }
  }
}

BENCHMARK(BM_GlobalSumStrong)->Apply(ScaleArgs)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GlobalSumWeak)->Apply(ScaleArgs)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PingPong4096)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Broadcast)
    ->Args({0, 1024})->Args({0, 4096})
    ->Args({1, 1024})->Args({1, 4096})
    ->Args({2, 1024})->Args({2, 4096})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AppMonteCarlo)
    ->Args({1, 16})->Args({1, 64})->Args({1, 256})->Args({1, 1024})->Args({1, 4096})
    ->Unit(benchmark::kMillisecond);
// threads=1 must precede the sharded rows of its fabric: it seeds the
// speedup baseline.
BENCHMARK(BM_GlobalSumSharded)
    ->Args({0, 1})->Args({0, 2})->Args({0, 4})->Args({0, 8})
    ->Args({1, 1})->Args({1, 2})->Args({1, 4})->Args({1, 8})
    ->Args({2, 1})->Args({2, 2})->Args({2, 4})->Args({2, 8})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
