// Wall-clock performance of the simulator itself (google-benchmark), plus
// the ablations DESIGN.md calls out: coroutine scheduling overhead, the
// event-kind mix (coroutine resumes vs callable events), the event queue's
// fast-lane hit rate, allocation telemetry for the payload/frame pools, and
// parallel sweep scaling.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <numeric>
#include <vector>

#include "eval/sweep.hpp"
#include "eval/tpl.hpp"
#include "mp/api.hpp"
#include "mp/buffer_pool.hpp"
#include "mp/pack.hpp"
#include "sim/frame_pool.hpp"
#include "sim/mailbox.hpp"
#include "sim/simulation.hpp"

// Heap-allocation telemetry: count every operator-new in the process so the
// pool ablations can report allocations-per-operation, not just wall time.
static std::atomic<unsigned long long> g_heap_allocs{0};

// GCC cannot see that the replacement operator-new above hands out malloc
// storage, so pairing it with std::free trips -Wmismatched-new-delete.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace {

using namespace pdc;

unsigned long long heap_allocs() { return g_heap_allocs.load(std::memory_order_relaxed); }

void set_pools_enabled(bool on) {
  mp::BufferPool::local().set_enabled(on);
  sim::FramePool::local().set_enabled(on);
}

// Raw event throughput: how many scheduled events/second the kernel runs.
void BM_EventLoop(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation simu;
    int counter = 0;
    for (int i = 0; i < events; ++i) {
      simu.schedule_at(sim::TimePoint{i}, [&counter] { ++counter; });
    }
    simu.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EventLoop)->Arg(1000)->Arg(100000);

// Adversarial event order: times pushed high-to-low so every push misses the
// sorted run and pays a heap sift -- the queue's worst case.
void BM_EventLoopReversed(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation simu;
    int counter = 0;
    for (int i = events; i > 0; --i) {
      simu.schedule_at(sim::TimePoint{i}, [&counter] { ++counter; });
    }
    simu.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EventLoopReversed)->Arg(1000)->Arg(100000);

// Coroutine ablation: ping-pong between two processes through a mailbox --
// measures suspend/resume + matching overhead per message. Also reports the
// event queue's fast-lane hit rate (same-time resumes that bypassed both
// the sorted run and the heap).
void BM_CoroutinePingPong(benchmark::State& state) {
  const int rounds = static_cast<int>(state.range(0));
  double lane_rate = 0.0;
  for (auto _ : state) {
    sim::Simulation simu;
    sim::Mailbox<int> a(simu), b(simu);
    auto ping = [](sim::Mailbox<int>& in, sim::Mailbox<int>& out, int n) -> sim::Task<> {
      for (int i = 0; i < n; ++i) {
        out.push(i);
        (void)co_await in.recv();
      }
    };
    auto pong = [](sim::Mailbox<int>& in, sim::Mailbox<int>& out, int n) -> sim::Task<> {
      for (int i = 0; i < n; ++i) {
        const int v = co_await in.recv();
        out.push(v);
      }
    };
    simu.spawn(ping(a, b, rounds));
    simu.spawn(pong(b, a, rounds));
    simu.run();
    const auto& qs = simu.queue_stats();
    const double total =
        static_cast<double>(qs.lane_pushes + qs.run_pushes + qs.heap_pushes);
    if (total > 0) lane_rate = static_cast<double>(qs.lane_pushes) / total;
  }
  state.SetItemsProcessed(state.iterations() * rounds * 2);
  state.counters["fast_lane_rate"] = lane_rate;
}
BENCHMARK(BM_CoroutinePingPong)->Arg(1000)->Arg(10000);

// Event-kind-mix ablation: one coroutine ticking through simulated time
// with `Arg` plain callable events scheduled per tick. Arg=0 is the pure
// resume path; higher Args shift the mix toward type-erased callables.
void BM_EventKindMix(benchmark::State& state) {
  const int callables_per_tick = static_cast<int>(state.range(0));
  constexpr int kTicks = 2000;
  for (auto _ : state) {
    sim::Simulation simu;
    long counter = 0;
    auto ticker = [](sim::Simulation& s, long& counter, int per_tick) -> sim::Task<> {
      for (int t = 0; t < kTicks; ++t) {
        for (int c = 0; c < per_tick; ++c) {
          s.schedule_in(sim::Duration{1}, [&counter] { ++counter; });
        }
        co_await s.delay(sim::Duration{2});
      }
    };
    simu.spawn(ticker(simu, counter, callables_per_tick));
    simu.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * kTicks * (1 + callables_per_tick));
}
BENCHMARK(BM_EventKindMix)->Arg(0)->Arg(1)->Arg(4);

// Full-stack message rate: simulated 1 KB messages through a tool runtime.
void BM_ToolMessageThroughput(benchmark::State& state) {
  const auto tool = static_cast<mp::ToolKind>(state.range(0));
  for (auto _ : state) {
    auto program = [](mp::Communicator& c) -> sim::Task<void> {
      constexpr int kN = 200;
      if (c.rank() == 0) {
        for (int i = 0; i < kN; ++i) {
          co_await c.send(1, 7, mp::make_payload(mp::Bytes(1024)));
        }
      } else {
        for (int i = 0; i < kN; ++i) (void)co_await c.recv(0, 7);
      }
    };
    auto out = mp::run_spmd(host::PlatformId::AlphaFddi, 2, tool, program);
    benchmark::DoNotOptimize(out.messages);
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_ToolMessageThroughput)
    ->Arg(static_cast<int>(mp::ToolKind::P4))
    ->Arg(static_cast<int>(mp::ToolKind::Pvm))
    ->Arg(static_cast<int>(mp::ToolKind::Express));

// Allocation ablation for the zero-copy payload pipeline: heap allocations
// attributable to ONE 1024-element double global sum at P=16 (Express =
// recursive doubling on the SP-1 switch), measured subtractively -- a run
// with kSums sums minus an identical run with none, so spawn/teardown and
// the app's own working vector cancel out. Arg(0) = pools disabled (the
// pre-pool allocation profile); Arg(1) = pools enabled. Counters report the
// headline number plus both pools' hit rates.
void BM_GlobalSumAllocs(benchmark::State& state) {
  const bool pooled = state.range(0) != 0;
  constexpr int kSums = 50;
  auto run = [](bool with_sum, int sums) {
    auto program = [with_sum, sums](mp::Communicator& c) -> sim::Task<void> {
      for (int r = 0; r < sums; ++r) {
        std::vector<double> v(1024, static_cast<double>(c.rank()));
        if (with_sum) co_await c.global_sum(v);
        benchmark::DoNotOptimize(v.data());
      }
    };
    (void)mp::run_spmd(host::PlatformId::Sp1Switch, 16, mp::ToolKind::Express, program);
  };

  set_pools_enabled(pooled);
  run(true, 1);  // warm pools and statics out of the measurement
  mp::BufferPool::local().reset_stats();
  sim::FramePool::local().reset_stats();
  const auto base0 = heap_allocs();
  run(false, kSums);
  const auto base1 = heap_allocs();
  run(true, kSums);
  const auto with = heap_allocs() - base1;
  const auto without = base1 - base0;
  const double allocs_per_sum =
      static_cast<double>(with - without) / static_cast<double>(kSums);
  const double buf_hit = mp::BufferPool::local().stats().hit_rate();
  const double frame_hit = sim::FramePool::local().stats().hit_rate();

  for (auto _ : state) {
    run(true, kSums);
    benchmark::ClobberMemory();
  }
  set_pools_enabled(true);

  state.SetItemsProcessed(state.iterations() * kSums);
  state.counters["allocs_per_sum"] = allocs_per_sum;
  state.counters["buffer_pool_hit_rate"] = buf_hit;
  state.counters["frame_pool_hit_rate"] = frame_hit;
}
BENCHMARK(BM_GlobalSumAllocs)->Arg(0)->Arg(1);

// In-place reduce throughput: the recursive-doubling global sum (Express)
// end to end, pools off vs on -- wall-clock counterpart of the allocation
// ablation above.
void BM_ReduceRecursiveDoubling(benchmark::State& state) {
  const bool pooled = state.range(0) != 0;
  constexpr int kSums = 20;
  set_pools_enabled(pooled);
  for (auto _ : state) {
    auto program = [](mp::Communicator& c) -> sim::Task<void> {
      std::vector<double> v(1024, static_cast<double>(c.rank()));
      for (int r = 0; r < kSums; ++r) co_await c.global_sum(v);
      benchmark::DoNotOptimize(v.data());
    };
    auto out = mp::run_spmd(host::PlatformId::Sp1Switch, 16, mp::ToolKind::Express, program);
    benchmark::DoNotOptimize(out.messages);
  }
  set_pools_enabled(true);
  state.SetItemsProcessed(state.iterations() * kSums);
}
BENCHMARK(BM_ReduceRecursiveDoubling)->Arg(0)->Arg(1);

// Pack/read-path ablation: owning unpack_vector (materialises a fresh
// vector) vs the zero-copy payload_span borrow, over a 1024-double payload.
void BM_PackReadPath(benchmark::State& state) {
  const bool zero_copy = state.range(0) != 0;
  const std::vector<double> v = [] {
    std::vector<double> x(1024);
    std::iota(x.begin(), x.end(), 0.0);
    return x;
  }();
  for (auto _ : state) {
    auto p = mp::pack_vector(v);
    double sum = 0;
    if (zero_copy) {
      for (double d : mp::payload_span<double>(*p)) sum += d;
    } else {
      for (double d : mp::unpack_vector<double>(*p)) sum += d;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PackReadPath)->Arg(0)->Arg(1);

// End-to-end cost of regenerating one Table 3 cell.
void BM_Table3Cell(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        eval::sendrecv_ms(host::PlatformId::SunEthernet, mp::ToolKind::Pvm, 65536));
  }
}
BENCHMARK(BM_Table3Cell);

// Sweep scaling: the full Table 3 snd/recv grid (64 cells) fanned over
// `Arg` worker threads. Arg=1 is the serial baseline; wall-clock speedup
// tops out at the machine's core count, while results stay bit-identical.
void BM_SweepTable3(benchmark::State& state) {
  const auto threads = static_cast<unsigned>(state.range(0));
  std::vector<eval::TplCell> cells;
  for (std::int64_t bytes : eval::paper_message_sizes()) {
    for (mp::ToolKind tool : {mp::ToolKind::Pvm, mp::ToolKind::P4, mp::ToolKind::Express}) {
      for (host::PlatformId p : {host::PlatformId::SunEthernet, host::PlatformId::SunAtmLan,
                                 host::PlatformId::SunAtmWan}) {
        if (tool == mp::ToolKind::Express && p == host::PlatformId::SunAtmWan) continue;
        cells.push_back({eval::Primitive::SendRecv, p, tool, bytes, 2, 0});
      }
    }
  }
  for (auto _ : state) {
    auto ms = eval::sweep_tpl_ms(cells, threads);
    benchmark::DoNotOptimize(ms.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(cells.size()));
  // Host-work split of the last sweep: TPL cells are pure simulation (no
  // app kernels), so app_share ~ 0 here; the counter proves the telemetry
  // costs nothing and gives app sweeps a baseline to compare against.
  const auto host = eval::last_sweep_host_stats();
  state.counters["host_app_share"] = host.app_share();
  state.counters["host_cell_us"] =
      host.cells > 0
          ? static_cast<double>(host.wall_ns) / static_cast<double>(host.cells) * 1e-3
          : 0.0;
}
BENCHMARK(BM_SweepTable3)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
