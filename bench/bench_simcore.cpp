// Wall-clock performance of the simulator itself (google-benchmark), plus
// the two ablations DESIGN.md calls out: coroutine scheduling overhead and
// the cost of contention modelling.
#include <benchmark/benchmark.h>

#include "eval/tpl.hpp"
#include "mp/api.hpp"
#include "mp/pack.hpp"
#include "sim/mailbox.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace pdc;

// Raw event throughput: how many scheduled events/second the kernel runs.
void BM_EventLoop(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation simu;
    int counter = 0;
    for (int i = 0; i < events; ++i) {
      simu.schedule_at(sim::TimePoint{i}, [&counter] { ++counter; });
    }
    simu.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EventLoop)->Arg(1000)->Arg(100000);

// Coroutine ablation: ping-pong between two processes through a mailbox --
// measures suspend/resume + matching overhead per message.
void BM_CoroutinePingPong(benchmark::State& state) {
  const int rounds = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation simu;
    sim::Mailbox<int> a(simu), b(simu);
    auto ping = [](sim::Mailbox<int>& in, sim::Mailbox<int>& out, int n) -> sim::Task<> {
      for (int i = 0; i < n; ++i) {
        out.push(i);
        (void)co_await in.recv();
      }
    };
    auto pong = [](sim::Mailbox<int>& in, sim::Mailbox<int>& out, int n) -> sim::Task<> {
      for (int i = 0; i < n; ++i) {
        const int v = co_await in.recv();
        out.push(v);
      }
    };
    simu.spawn(ping(a, b, rounds));
    simu.spawn(pong(b, a, rounds));
    simu.run();
  }
  state.SetItemsProcessed(state.iterations() * rounds * 2);
}
BENCHMARK(BM_CoroutinePingPong)->Arg(1000)->Arg(10000);

// Full-stack message rate: simulated 1 KB messages through a tool runtime.
void BM_ToolMessageThroughput(benchmark::State& state) {
  const auto tool = static_cast<mp::ToolKind>(state.range(0));
  for (auto _ : state) {
    auto program = [](mp::Communicator& c) -> sim::Task<void> {
      constexpr int kN = 200;
      if (c.rank() == 0) {
        for (int i = 0; i < kN; ++i) {
          co_await c.send(1, 7, mp::make_payload(mp::Bytes(1024)));
        }
      } else {
        for (int i = 0; i < kN; ++i) (void)co_await c.recv(0, 7);
      }
    };
    auto out = mp::run_spmd(host::PlatformId::AlphaFddi, 2, tool, program);
    benchmark::DoNotOptimize(out.messages);
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_ToolMessageThroughput)
    ->Arg(static_cast<int>(mp::ToolKind::P4))
    ->Arg(static_cast<int>(mp::ToolKind::Pvm))
    ->Arg(static_cast<int>(mp::ToolKind::Express));

// End-to-end cost of regenerating one Table 3 cell.
void BM_Table3Cell(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        eval::sendrecv_ms(host::PlatformId::SunEthernet, mp::ToolKind::Pvm, 65536));
  }
}
BENCHMARK(BM_Table3Cell);

}  // namespace

BENCHMARK_MAIN();
