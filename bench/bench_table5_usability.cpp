// Regenerates the paper's usability assessment (Section 3.3.1 table) and
// Table 1 (primitive-to-native-call mapping), then demonstrates the weight-
// factor mechanism: the same ratings aggregated under three audience
// profiles.
#include <cstdio>

#include "eval/criteria.hpp"

int main() {
  using namespace pdc::eval;
  using pdc::mp::ToolKind;

  std::printf("Table 1: Communication primitives for evaluating tools at TPL\n\n");
  std::printf("%-22s %-22s %-22s %-22s\n", "Primitive", "Express", "p4", "PVM");
  for (Primitive p : all_primitives()) {
    std::printf("%-22s %-22s %-22s %-22s\n", to_string(p),
                native_call(ToolKind::Express, p).c_str(),
                native_call(ToolKind::P4, p).c_str(),
                native_call(ToolKind::Pvm, p).c_str());
  }

  std::printf("\nSection 3.3.1: usability criteria assessment (WS/PS/NS)\n\n");
  std::printf("%-34s %-8s %-8s %-8s\n", "Criterion", "P4", "PVM", "Express");
  for (Criterion c : all_criteria()) {
    std::printf("%-34s %-8s %-8s %-8s\n", to_string(c),
                to_string(adl_rating(ToolKind::P4, c)),
                to_string(adl_rating(ToolKind::Pvm, c)),
                to_string(adl_rating(ToolKind::Express, c)));
  }

  std::printf("\nWeighted ADL scores (WS=1.0, PS=0.5, NS=0.0):\n\n");
  struct Profile {
    const char* name;
    AdlWeights weights;
  };
  AdlWeights novice = AdlWeights::uniform();  // beginner: ease + debugging matter most
  for (auto& [c, w] : novice.weights) {
    if (c == Criterion::EaseOfProgramming || c == Criterion::DebuggingSupport) w = 3.0;
  }
  AdlWeights integrator = AdlWeights::uniform();  // production: integration + runtime
  for (auto& [c, w] : integrator.weights) {
    if (c == Criterion::Integration || c == Criterion::RunTimeInterface ||
        c == Criterion::ErrorHandling) {
      w = 3.0;
    }
  }
  const Profile profiles[] = {{"uniform weights", AdlWeights::uniform()},
                              {"novice developer", novice},
                              {"systems integrator", integrator}};
  std::printf("%-22s %-8s %-8s %-8s\n", "Profile", "P4", "PVM", "Express");
  for (const auto& prof : profiles) {
    std::printf("%-22s %-8.3f %-8.3f %-8.3f\n", prof.name,
                adl_score(ToolKind::P4, prof.weights),
                adl_score(ToolKind::Pvm, prof.weights),
                adl_score(ToolKind::Express, prof.weights));
  }
  std::printf("\nNote how the ranking shifts with the audience -- the paper's central\n");
  std::printf("argument for weight factors over a single fixed criterion.\n");
  return 0;
}
