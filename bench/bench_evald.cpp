// Evaluation-service throughput (ROADMAP item 4). Reported per benchmark:
//   lookups_per_s  -- cells served per wall second (the headline: cached
//                     batched lookups must exceed 1e5/s)
//   cells_per_s    -- cold-path cells simulated per second; compare
//                     BM_ColdSweepDaemon against BM_ColdSweepDirect to see
//                     the daemon's overhead on a cache-miss sweep (the
//                     target is within 5%)
//
// Three layers: the raw store (hash + probe + byte-compare), a live
// daemon serving batched cached sweeps over its Unix socket (the real hot
// path, framing and CRC included), and single-cell round-trips (RTT
// bound, the reason clients batch).
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstdint>
#include <string>
#include <vector>

#include "eval/cell.hpp"
#include "eval/sweep.hpp"
#include "evald/client.hpp"
#include "evald/server.hpp"
#include "evald/store.hpp"
#include "fault/plan.hpp"

namespace {

using namespace pdc;

std::string scratch_socket() {
  static int counter = 0;
  return "/tmp/pdc_bench_evald_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter++) + ".sock";
}

/// A cheap synthetic result: lookup cost does not depend on how the
/// bytes were produced, so the store benchmark skips the simulations.
std::vector<std::byte> synthetic_result() {
  eval::CellResult r;
  r.type = eval::CellType::Tpl;
  r.tpl_ms = 1.0;
  return eval::encode_result(r);
}

/// Cold-sweep workload: faulted 64 KiB send/receive on every tool x
/// platform (18 cells, several hundred microseconds of simulation each,
/// the regime a daemon actually serves). Cheap cells would only measure
/// framing overhead; these measure what the service adds to real work.
std::vector<eval::TplCell> faulted_cells() {
  std::vector<eval::TplCell> cells;
  for (const host::PlatformId platform : host::all_platforms()) {
    for (const mp::ToolKind tool : {mp::ToolKind::P4, mp::ToolKind::Pvm, mp::ToolKind::Express}) {
      eval::TplCell c;
      c.tool = tool;
      c.platform = platform;
      c.primitive = eval::Primitive::SendRecv;
      c.bytes = 65536;
      c.procs = 2;
      c.faults =
          fault::FaultPlan::uniform(0.03, 0.01, 0.01, 0.0, sim::microseconds(200), 0xBE7C);
      cells.push_back(c);
    }
  }
  return cells;
}

void BM_StoreHotLookup(benchmark::State& state) {
  evald::Store store;  // in-memory
  const auto result = synthetic_result();
  std::vector<std::vector<std::byte>> specs;
  std::vector<std::uint64_t> keys;
  for (const eval::CellSpec& spec : eval::table3_grid()) {
    specs.push_back(eval::encode_spec(spec));
    keys.push_back(eval::cell_key(specs.back()));
    store.insert(keys.back(), specs.back(), result, false);
  }

  std::uint64_t lookups = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < specs.size(); ++i) {
      auto hit = store.lookup(keys[i], specs[i]);
      benchmark::DoNotOptimize(hit);
    }
    lookups += specs.size();
  }
  state.counters["lookups_per_s"] =
      benchmark::Counter(static_cast<double>(lookups), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_StoreHotLookup);

void BM_CachedSweepLookups(benchmark::State& state) {
  evald::ServerConfig config;
  config.socket_path = scratch_socket();
  evald::Server server(config);
  server.start();
  evald::Client client(config.socket_path);
  const auto grid = eval::table3_grid();  // 144 cells per round-trip
  (void)client.warm(grid);                // fill the cache once, untimed

  std::uint64_t lookups = 0;
  for (auto _ : state) {
    auto origins = client.warm(grid);
    benchmark::DoNotOptimize(origins);
    lookups += origins.size();
  }
  state.counters["lookups_per_s"] =
      benchmark::Counter(static_cast<double>(lookups), benchmark::Counter::kIsRate);
  server.stop();
}
BENCHMARK(BM_CachedSweepLookups)->UseRealTime();

void BM_CachedSweepWithResultBytes(benchmark::State& state) {
  // Same as above but shipping every encoded CellResult back, the way an
  // analysis client consumes a sweep.
  evald::ServerConfig config;
  config.socket_path = scratch_socket();
  evald::Server server(config);
  server.start();
  evald::Client client(config.socket_path);
  const auto grid = eval::table3_grid();
  (void)client.warm(grid);

  std::uint64_t lookups = 0;
  for (auto _ : state) {
    auto outcomes = client.sweep(grid);
    benchmark::DoNotOptimize(outcomes);
    lookups += outcomes.size();
  }
  state.counters["lookups_per_s"] =
      benchmark::Counter(static_cast<double>(lookups), benchmark::Counter::kIsRate);
  server.stop();
}
BENCHMARK(BM_CachedSweepWithResultBytes)->UseRealTime();

void BM_SingleCellRoundTrip(benchmark::State& state) {
  // One cached cell per frame: the RTT floor that batching exists to beat.
  evald::ServerConfig config;
  config.socket_path = scratch_socket();
  evald::Server server(config);
  server.start();
  evald::Client client(config.socket_path);
  const eval::CellSpec spec = eval::table3_grid().front();
  (void)client.lookup(spec);

  std::uint64_t lookups = 0;
  for (auto _ : state) {
    auto outcome = client.lookup(spec);
    benchmark::DoNotOptimize(outcome);
    ++lookups;
  }
  state.counters["lookups_per_s"] =
      benchmark::Counter(static_cast<double>(lookups), benchmark::Counter::kIsRate);
  server.stop();
}
BENCHMARK(BM_SingleCellRoundTrip)->UseRealTime();

void BM_ColdSweepDirect(benchmark::State& state) {
  // Reference: the same fresh cells run straight through eval::sweep.
  const auto cells_in = faulted_cells();
  std::uint64_t cells = 0;
  for (auto _ : state) {
    auto ms = eval::sweep_tpl_ms(cells_in, 0);
    benchmark::DoNotOptimize(ms);
    cells += cells_in.size();
  }
  state.counters["cells_per_s"] =
      benchmark::Counter(static_cast<double>(cells), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ColdSweepDirect)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_ColdSweepDaemon(benchmark::State& state) {
  // The same cells through the daemon with the cache emptied first, so
  // every cell is a miss: measures what the service layer (framing, CRC,
  // store inserts) adds on top of the simulations. Target: within 5% of
  // BM_ColdSweepDirect.
  evald::ServerConfig config;
  config.socket_path = scratch_socket();
  evald::Server server(config);
  server.start();
  evald::Client client(config.socket_path);
  std::vector<eval::CellSpec> grid;
  for (const eval::TplCell& c : faulted_cells()) grid.push_back(eval::CellSpec::of(c));

  std::uint64_t cells = 0;
  for (auto _ : state) {
    state.PauseTiming();
    (void)client.invalidate_all();
    state.ResumeTiming();
    auto outcomes = client.sweep(grid);
    benchmark::DoNotOptimize(outcomes);
    cells += outcomes.size();
  }
  state.counters["cells_per_s"] =
      benchmark::Counter(static_cast<double>(cells), benchmark::Counter::kIsRate);
  server.stop();
}
BENCHMARK(BM_ColdSweepDaemon)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
