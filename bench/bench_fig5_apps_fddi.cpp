// Regenerates paper Figure 5: the four SU PDABS applications on the DEC
// Alpha / FDDI cluster, 1-8 processors, Express / p4 / PVM.
//
// Expected shape (paper): p4 best for JPEG and 2D-FFT (communication-
// heavy); PVM best for Sorting (asynchronous buffered all-to-all); Express
// best for Monte Carlo (cheap excombine/exsync in the Alpha native port).
#include "apl_table.hpp"

int main() {
  pdc::bench::print_apl_figure(
      "Figure 5: Application performances on ALPHA/FDDI",
      pdc::host::PlatformId::AlphaFddi, {1, 2, 3, 4, 5, 6, 7, 8},
      {pdc::mp::ToolKind::Express, pdc::mp::ToolKind::P4, pdc::mp::ToolKind::Pvm});
  return 0;
}
