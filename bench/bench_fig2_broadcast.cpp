// Regenerates paper Figure 2: broadcast timing among 4 SUN workstations
// over Ethernet (PVM, p4, Express) and over the ATM WAN / NYNET (PVM, p4 --
// the paper does not plot Express on ATM).
#include <cstdio>

#include "eval/tpl.hpp"

int main() {
  using namespace pdc;
  using host::PlatformId;
  using mp::ToolKind;
  constexpr int kProcs = 4;

  std::printf("Figure 2: broadcast timing using %d SUNs (milliseconds)\n\n", kProcs);
  std::printf("%8s |%28s |%19s\n", "", "Ethernet", "ATM WAN (NYNET)");
  std::printf("%8s |%9s %9s %8s |%9s %9s\n", "KB", "PVM", "p4", "Express", "PVM", "p4");
  std::printf("---------+-----------------------------+--------------------\n");
  for (std::int64_t bytes : eval::paper_message_sizes()) {
    std::printf("%8lld |", static_cast<long long>(bytes) / 1024);
    for (ToolKind t : {ToolKind::Pvm, ToolKind::P4, ToolKind::Express}) {
      std::printf(" %9.2f", eval::broadcast_ms(PlatformId::SunEthernet, t, kProcs, bytes));
    }
    std::printf(" |");
    for (ToolKind t : {ToolKind::Pvm, ToolKind::P4}) {
      std::printf(" %9.2f", eval::broadcast_ms(PlatformId::SunAtmWan, t, kProcs, bytes));
    }
    std::printf("\n");
  }
  std::printf("\nExpected shape (paper): p4 best, Express worst on Ethernet; the\n"
              "snd/rcv winner is not automatically the broadcast winner -- the\n"
              "broadcast algorithm (binomial tree vs sequential) dominates.\n");
  return 0;
}
