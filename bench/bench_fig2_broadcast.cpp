// Regenerates paper Figure 2: broadcast timing among 4 SUN workstations
// over Ethernet (PVM, p4, Express) and over the ATM WAN / NYNET (PVM, p4 --
// the paper does not plot Express on ATM). Cells are measured through the
// parallel sweep runner; values are bit-identical to a serial loop.
#include <cstdio>
#include <vector>

#include "eval/sweep.hpp"
#include "eval/tpl.hpp"

int main() {
  using namespace pdc;
  using host::PlatformId;
  using mp::ToolKind;
  constexpr int kProcs = 4;

  std::vector<eval::TplCell> cells;
  for (std::int64_t bytes : eval::paper_message_sizes()) {
    for (ToolKind t : {ToolKind::Pvm, ToolKind::P4, ToolKind::Express}) {
      cells.push_back(
          {eval::Primitive::Broadcast, PlatformId::SunEthernet, t, bytes, kProcs, 0});
    }
    for (ToolKind t : {ToolKind::Pvm, ToolKind::P4}) {
      cells.push_back(
          {eval::Primitive::Broadcast, PlatformId::SunAtmWan, t, bytes, kProcs, 0});
    }
  }
  const std::vector<std::optional<double>> ms = eval::sweep_tpl_ms(cells);

  std::printf("Figure 2: broadcast timing using %d SUNs (milliseconds)"
              " (sweep: %u threads, %zu cells)\n\n",
              kProcs, eval::sweep_threads(), cells.size());
  std::printf("%8s |%28s |%19s\n", "", "Ethernet", "ATM WAN (NYNET)");
  std::printf("%8s |%9s %9s %8s |%9s %9s\n", "KB", "PVM", "p4", "Express", "PVM", "p4");
  std::printf("---------+-----------------------------+--------------------\n");
  std::size_t next = 0;
  for (std::int64_t bytes : eval::paper_message_sizes()) {
    std::printf("%8lld |", static_cast<long long>(bytes) / 1024);
    for (int i = 0; i < 3; ++i) std::printf(" %9.2f", ms[next++].value());
    std::printf(" |");
    for (int i = 0; i < 2; ++i) std::printf(" %9.2f", ms[next++].value());
    std::printf("\n");
  }
  std::printf("\nExpected shape (paper): p4 best, Express worst on Ethernet; the\n"
              "snd/rcv winner is not automatically the broadcast winner -- the\n"
              "broadcast algorithm (binomial tree vs sequential) dominates.\n");
  return 0;
}
