// Regenerates paper Figure 7: the four applications on SUN SPARCstations
// over the NYNET ATM WAN, 1-4 processors, p4 and PVM (as in the paper).
//
// Expected shape (paper): distributed computing across a WAN is feasible --
// the curves resemble (and for large transfers beat) the Ethernet LAN.
#include "apl_table.hpp"

int main() {
  pdc::bench::print_apl_figure(
      "Figure 7: Application performances on SUN/ATM-WAN (NYNET)",
      pdc::host::PlatformId::SunAtmWan, {1, 2, 3, 4},
      {pdc::mp::ToolKind::P4, pdc::mp::ToolKind::Pvm});
  return 0;
}
