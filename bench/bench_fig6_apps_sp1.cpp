// Regenerates paper Figure 6: the four applications on the IBM SP-1 with
// the Allnode crossbar switch, 1-8 processors, Express / p4 / PVM.
//
// Expected shape (paper): consistent with the Alpha results, but with
// uniformly higher execution times (slower nodes).
#include "apl_table.hpp"

int main() {
  pdc::bench::print_apl_figure(
      "Figure 6: Application performances on IBM-SP1 (crossbar switch)",
      pdc::host::PlatformId::Sp1Switch, {1, 2, 3, 4, 5, 6, 7, 8},
      {pdc::mp::ToolKind::Express, pdc::mp::ToolKind::P4, pdc::mp::ToolKind::Pvm});
  return 0;
}
