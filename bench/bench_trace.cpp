// Wall-clock cost of the trace subsystem (google-benchmark): the per-record
// emit path, category-mask rejection, capture overhead on a real evaluation
// cell, and -- the number the PDC_TRACE=OFF default build stands on -- the
// cost of running a cell with probes compiled in but no sink installed.
// Emit-path benches drive the Sink directly, so they measure the same code
// in both build flavours; the cell benches report `traced_ratio` so CI can
// assert the disabled path stays within noise of the baseline.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "eval/sweep.hpp"
#include "eval/trace_cell.hpp"
#include "trace/analyze.hpp"
#include "trace/export.hpp"
#include "trace/sink.hpp"

namespace {

using namespace pdc;

trace::Record sample_record(std::int64_t t) {
  trace::Record r;
  r.kind = trace::Kind::SendEnd;
  r.t_ns = t;
  r.bytes = 1024;
  r.id = static_cast<std::uint64_t>(t);
  r.rank = 0;
  r.peer = 1;
  r.tag = 42;
  r.aux1 = t - 100;
  return r;
}

// One accepted record: mask test, 56-byte store, two index bumps.
void BM_TraceEmit(benchmark::State& state) {
  trace::Sink sink(1 << 16, trace::kAllMask);
  std::int64_t t = 0;
  for (auto _ : state) {
    sink.emit(sample_record(++t));
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

// A record the category mask rejects: the cheapest path through emit().
void BM_TraceEmitMasked(benchmark::State& state) {
  trace::Sink sink(1 << 16, trace::kCatNet);  // SendEnd is Mp: filtered
  std::int64_t t = 0;
  for (auto _ : state) {
    sink.emit(sample_record(++t));
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

// The free-function probe body with no sink installed: one thread-local
// load and a null test. This is the runtime-disabled cost every compiled-in
// probe pays.
void BM_TraceEmitNoSink(benchmark::State& state) {
  std::int64_t t = 0;
  for (auto _ : state) {
    trace::emit(sample_record(++t));
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

eval::TplCell bench_cell() {
  eval::TplCell cell;
  cell.primitive = eval::Primitive::SendRecv;
  cell.bytes = 4096;
  return cell;
}

// Baseline: the Table-3 send/recv cell exactly as the sweep runs it. In the
// default build this is probe-free code; in a PDC_TRACE=ON build the probes
// are present but dormant (no sink). Comparing this bench across the two
// build flavours is the compiled-in-overhead measurement CI performs.
void BM_TplCellUntraced(benchmark::State& state) {
  const auto cell = bench_cell();
  for (auto _ : state) {
    auto ms = eval::tpl_cell_ms(cell);
    benchmark::DoNotOptimize(ms);
  }
}

// The same cell with a live capture: full record stream into the ring.
// In the OFF build the stream is empty, so the delta vs untraced is the
// capture plumbing only; in the ON build it is the true per-run emit cost.
void BM_TplCellTraced(benchmark::State& state) {
  const auto cell = bench_cell();
  std::uint64_t emitted = 0;
  for (auto _ : state) {
    auto traced = eval::tpl_cell_traced(cell);
    emitted += traced.stats.emitted;
    benchmark::DoNotOptimize(traced);
  }
  state.counters["records_per_run"] = benchmark::Counter(
      static_cast<double>(emitted) / static_cast<double>(state.iterations()));
  state.counters["compiled_in"] =
      benchmark::Counter(eval::trace_compiled_in() ? 1 : 0);
}

// Post-run analysis + export cost over a real captured stream (ON build) or
// an empty one (OFF build) -- bounds what `pdctrace --report --json` adds.
void BM_TraceAnalyzeAndExport(benchmark::State& state) {
  const auto traced = eval::tpl_cell_traced(bench_cell());
  for (auto _ : state) {
    auto report = trace::text_report(traced.records);
    auto json = trace::export_perfetto_json(traced.records);
    benchmark::DoNotOptimize(report);
    benchmark::DoNotOptimize(json);
  }
  state.counters["records"] =
      benchmark::Counter(static_cast<double>(traced.records.size()));
}

BENCHMARK(BM_TraceEmit);
BENCHMARK(BM_TraceEmitMasked);
BENCHMARK(BM_TraceEmitNoSink);
BENCHMARK(BM_TplCellUntraced);
BENCHMARK(BM_TplCellTraced);
BENCHMARK(BM_TraceAnalyzeAndExport);

}  // namespace

BENCHMARK_MAIN();
