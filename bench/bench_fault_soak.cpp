// Fault soak bench: goodput of the reliable transport as the wire degrades.
//
// For each tool, streams a fixed payload (64 x 8 KB messages, rank 0 -> 1,
// SUN/Ethernet) through FaultyNetwork at increasing drop rates and reports
// simulated elapsed time, goodput, and the transport/injection counters.
// drop = 0 rides the plain fast path (no fault plan, no draws), so the first
// row doubles as the no-overhead baseline.
//
// Everything here is simulated time: rows are bit-reproducible from the
// (seed, FaultPlan) in the table and make good regression anchors.
#include <cstdio>
#include <vector>

#include "fault/plan.hpp"
#include "mp/api.hpp"
#include "mp/pack.hpp"

int main() {
  using namespace pdc;
  using host::PlatformId;
  using mp::ToolKind;

  constexpr int kMessages = 64;
  constexpr std::int64_t kBytes = 8192;
  constexpr double kDropRates[] = {0.0, 0.05, 0.10, 0.20};

  const auto stream_program = [](mp::Communicator& c) -> sim::Task<void> {
    constexpr int kTag = 3;
    if (c.rank() == 0) {
      for (int i = 0; i < kMessages; ++i) {
        co_await c.send(1, kTag, mp::make_payload(mp::Bytes(kBytes, std::byte{0x5A})));
      }
      (void)co_await c.recv(1, kTag + 1);  // final credit: stream fully landed
    } else {
      for (int i = 0; i < kMessages; ++i) (void)co_await c.recv(0, kTag);
      co_await c.send(0, kTag + 1, mp::make_payload(mp::Bytes(8, std::byte{1})));
    }
  };

  std::printf("Reliable-transport soak: %d x %lld B stream, SUN/Ethernet, 2 procs\n",
              kMessages, static_cast<long long>(kBytes));
  std::printf("(corrupt 1%%, duplicate 5%%, reorder 10%% + 1 ms jitter ride along "
              "whenever drop > 0)\n\n");
  std::printf("%-8s %6s | %10s %12s | %7s %7s %7s %7s | %7s\n", "tool", "drop",
              "elapsed_ms", "goodput_MB/s", "retx", "drops", "crc", "dups", "frames");
  std::printf("---------------+-------------------------+--------------------------------+"
              "--------\n");

  const double payload_mb = static_cast<double>(kMessages) * static_cast<double>(kBytes) /
                            (1024.0 * 1024.0);
  for (ToolKind tool : mp::all_tools()) {
    for (double drop : kDropRates) {
      fault::FaultPlan plan;  // drop == 0: disabled plan, plain fast path
      if (drop > 0.0) {
        plan = fault::FaultPlan::uniform(drop, 0.01, 0.05, 0.10, sim::milliseconds(1),
                                         0xB0A7 + static_cast<std::uint64_t>(drop * 100));
      }
      const mp::RunOutcome out = mp::run_spmd_faulty(PlatformId::SunEthernet, 2, tool, plan,
                                                     stream_program);
      const double ms = out.elapsed.millis();
      const double goodput = ms > 0.0 ? payload_mb / (ms / 1000.0) : 0.0;
      std::printf("%-8s %5.0f%% | %10.2f %12.3f | %7lld %7lld %7lld %7lld | %7lld\n",
                  mp::to_string(tool), drop * 100.0, ms, goodput,
                  static_cast<long long>(out.transport.retransmits),
                  static_cast<long long>(out.transport.drops_seen),
                  static_cast<long long>(out.transport.corrupt_rejected),
                  static_cast<long long>(out.transport.dup_discarded),
                  static_cast<long long>(out.injected.frames));
    }
    std::printf("\n");
  }
  return 0;
}
