// Regenerates paper Figure 3: ring (loop) communication among 4 SUNs over
// Ethernet (PVM, p4, Express) and the ATM WAN (PVM, p4): every node sends
// to its successor and receives from its predecessor, 4 rounds.
#include <cstdio>

#include "eval/tpl.hpp"

int main() {
  using namespace pdc;
  using host::PlatformId;
  using mp::ToolKind;
  constexpr int kProcs = 4;

  std::printf("Figure 3: ring(loop) timing using %d SUNs (milliseconds)\n\n", kProcs);
  std::printf("%8s |%28s |%19s\n", "", "Ethernet", "ATM WAN (NYNET)");
  std::printf("%8s |%9s %9s %8s |%9s %9s\n", "KB", "PVM", "p4", "Express", "PVM", "p4");
  std::printf("---------+-----------------------------+--------------------\n");
  for (std::int64_t bytes : eval::paper_message_sizes()) {
    std::printf("%8lld |", static_cast<long long>(bytes) / 1024);
    for (ToolKind t : {ToolKind::Pvm, ToolKind::P4, ToolKind::Express}) {
      std::printf(" %9.2f", eval::ring_ms(PlatformId::SunEthernet, t, kProcs, bytes));
    }
    std::printf(" |");
    for (ToolKind t : {ToolKind::Pvm, ToolKind::P4}) {
      std::printf(" %9.2f", eval::ring_ms(PlatformId::SunAtmWan, t, kProcs, bytes));
    }
    std::printf("\n");
  }
  std::printf("\nExpected shape (paper): p4 best; Express OUTPERFORMS PVM here even\n"
              "though PVM wins snd/rcv -- Express's buffer layer suits continuous\n"
              "flow, while PVM's single-threaded pvmd serialises in+out traffic.\n");
  return 0;
}
