// Regenerates paper Table 3: snd/recv round-trip times on SUN SPARCstations
// over Ethernet, ATM LAN and ATM WAN, for PVM, p4 and Express, message
// sizes 0..64 KB. Prints measured (simulated) values side by side with the
// paper's published numbers.
#include <cstdio>

#include "eval/paper_data.hpp"
#include "eval/tpl.hpp"

int main() {
  using namespace pdc;
  using host::PlatformId;
  using mp::ToolKind;

  std::printf("Table 3: snd/recv timing for SUN SPARCstations (milliseconds)\n");
  std::printf("sim = this reproduction, paper = Hariri et al. 1995\n\n");
  std::printf("%8s |%25s |%25s |%25s\n", "", "PVM", "p4", "Express");
  std::printf("%8s |%8s %8s %7s |%8s %8s %7s |%8s %8s %7s\n", "KB", "Eth", "ATM-LAN",
              "ATM-WAN", "Eth", "ATM-LAN", "ATM-WAN", "Eth", "ATM-LAN", "ATM-WAN");
  std::printf("---------+--------------------------+--------------------------+"
              "--------------------------\n");

  for (std::int64_t bytes : eval::paper_message_sizes()) {
    std::printf("%8lld |", static_cast<long long>(bytes) / 1024);
    for (ToolKind tool : {ToolKind::Pvm, ToolKind::P4, ToolKind::Express}) {
      for (PlatformId p :
           {PlatformId::SunEthernet, PlatformId::SunAtmLan, PlatformId::SunAtmWan}) {
        if (tool == ToolKind::Express && p == PlatformId::SunAtmWan) {
          std::printf(" %7s", "-");  // not measured in the paper
        } else {
          std::printf(" %8.2f", eval::sendrecv_ms(p, tool, bytes));
        }
      }
      std::printf(" |");
    }
    std::printf("\n  paper: |");
    for (ToolKind tool : {ToolKind::Pvm, ToolKind::P4, ToolKind::Express}) {
      for (PlatformId p :
           {PlatformId::SunEthernet, PlatformId::SunAtmLan, PlatformId::SunAtmWan}) {
        auto v = eval::paper::table3_ms(tool, p, bytes);
        if (v) {
          std::printf(" %8.2f", *v);
        } else {
          std::printf(" %7s", "-");
        }
      }
      std::printf(" |");
    }
    std::printf("\n");
  }
  std::printf("\nExpected shape: p4 fastest everywhere; Express beats PVM at <=1KB,\n"
              "PVM beats Express at >=2KB; ATM-WAN ~= ATM-LAN plus a small constant.\n");
  return 0;
}
