// Regenerates paper Table 3: snd/recv round-trip times on SUN SPARCstations
// over Ethernet, ATM LAN and ATM WAN, for PVM, p4 and Express, message
// sizes 0..64 KB. Prints measured (simulated) values side by side with the
// paper's published numbers.
//
// All cells are measured first through the parallel sweep runner (each cell
// is its own Simulation, so the values are bit-identical to a serial loop),
// then printed in table order.
#include <cstdio>
#include <vector>

#include "eval/paper_data.hpp"
#include "eval/sweep.hpp"
#include "eval/tpl.hpp"

int main() {
  using namespace pdc;
  using host::PlatformId;
  using mp::ToolKind;

  const ToolKind tools[] = {ToolKind::Pvm, ToolKind::P4, ToolKind::Express};
  const PlatformId platforms[] = {PlatformId::SunEthernet, PlatformId::SunAtmLan,
                                  PlatformId::SunAtmWan};
  const auto measured = [](ToolKind tool, PlatformId p) {
    return !(tool == ToolKind::Express && p == PlatformId::SunAtmWan);  // not in the paper
  };

  // Build the cell grid in print order, sweep it, then consume in the same
  // order while printing.
  std::vector<eval::TplCell> cells;
  for (std::int64_t bytes : eval::paper_message_sizes()) {
    for (ToolKind tool : tools) {
      for (PlatformId p : platforms) {
        if (measured(tool, p)) {
          cells.push_back({eval::Primitive::SendRecv, p, tool, bytes, 2, 0});
        }
      }
    }
  }
  const std::vector<std::optional<double>> ms = eval::sweep_tpl_ms(cells);

  std::printf("Table 3: snd/recv timing for SUN SPARCstations (milliseconds)\n");
  std::printf("sim = this reproduction, paper = Hariri et al. 1995"
              " (sweep: %u threads, %zu cells)\n\n",
              eval::sweep_threads(), cells.size());
  std::printf("%8s |%25s |%25s |%25s\n", "", "PVM", "p4", "Express");
  std::printf("%8s |%8s %8s %7s |%8s %8s %7s |%8s %8s %7s\n", "KB", "Eth", "ATM-LAN",
              "ATM-WAN", "Eth", "ATM-LAN", "ATM-WAN", "Eth", "ATM-LAN", "ATM-WAN");
  std::printf("---------+--------------------------+--------------------------+"
              "--------------------------\n");

  std::size_t next = 0;
  for (std::int64_t bytes : eval::paper_message_sizes()) {
    std::printf("%8lld |", static_cast<long long>(bytes) / 1024);
    for (ToolKind tool : tools) {
      for (PlatformId p : platforms) {
        if (measured(tool, p)) {
          std::printf(" %8.2f", ms[next++].value());
        } else {
          std::printf(" %7s", "-");
        }
      }
      std::printf(" |");
    }
    std::printf("\n  paper: |");
    for (ToolKind tool : tools) {
      for (PlatformId p : platforms) {
        auto v = eval::paper::table3_ms(tool, p, bytes);
        if (v) {
          std::printf(" %8.2f", *v);
        } else {
          std::printf(" %7s", "-");
        }
      }
      std::printf(" |");
    }
    std::printf("\n");
  }
  std::printf("\nExpected shape: p4 fastest everywhere; Express beats PVM at <=1KB,\n"
              "PVM beats Express at >=2KB; ATM-WAN ~= ATM-LAN plus a small constant.\n");
  return 0;
}
