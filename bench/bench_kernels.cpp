// Ablation benchmarks for the compute-kernel layer: every fast kernel
// against the naive reference it replaced (kernels::ref, the executable
// spec of the order-preserving contract), plus end-to-end APL cells and a
// host-stats-instrumented app sweep. Regenerate the JSON snapshot with
// `cmake --build build --target bench-json` (writes BENCH_kernels.json).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <complex>
#include <cstdint>
#include <vector>

#include "apps/jpeg/codec.hpp"
#include "eval/apl.hpp"
#include "eval/sweep.hpp"
#include "kernels/dct.hpp"
#include "kernels/dispatch.hpp"
#include "kernels/fft.hpp"
#include "kernels/linalg.hpp"
#include "kernels/mc.hpp"
#include "kernels/reference.hpp"
#include "kernels/sort.hpp"
#include "sim/rng.hpp"

namespace {

using namespace pdc;

constexpr std::uint64_t kSeed = 20260706;

// ---------------------------------------------------------------------------
// 8x8 DCT: the JPEG hot loop. Reference calls std::cos 8192x per block.

void fill_block(sim::Rng& rng, double (&b)[8][8]) {
  for (auto& row : b) {
    for (double& v : row) v = rng.next_double() * 256.0 - 128.0;
  }
}

void BM_DctForwardRef(benchmark::State& state) {
  sim::Rng rng(kSeed);
  double in[8][8], out[8][8];
  fill_block(rng, in);
  for (auto _ : state) {
    kernels::ref::forward_dct(in, out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_DctForwardRef);

void BM_DctForwardKernel(benchmark::State& state) {
  kernels::force_scalar(state.range(0) != 0);
  sim::Rng rng(kSeed);
  double in[8][8], out[8][8];
  fill_block(rng, in);
  for (auto _ : state) {
    kernels::forward_dct(in, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel(kernels::to_string(kernels::active_isa()));
  kernels::force_scalar(false);
}
BENCHMARK(BM_DctForwardKernel)->Arg(1)->Arg(0);  // 1 = forced scalar

void BM_DctInverseRef(benchmark::State& state) {
  sim::Rng rng(kSeed);
  double in[8][8], out[8][8];
  fill_block(rng, in);
  for (auto _ : state) {
    kernels::ref::inverse_dct(in, out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_DctInverseRef);

void BM_DctInverseKernel(benchmark::State& state) {
  kernels::force_scalar(state.range(0) != 0);
  sim::Rng rng(kSeed);
  double in[8][8], out[8][8];
  fill_block(rng, in);
  for (auto _ : state) {
    kernels::inverse_dct(in, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel(kernels::to_string(kernels::active_isa()));
  kernels::force_scalar(false);
}
BENCHMARK(BM_DctInverseKernel)->Arg(1)->Arg(0);

// ---------------------------------------------------------------------------
// FFT: cached twiddle tables vs per-butterfly recurrence.

void BM_Fft1dRef(benchmark::State& state) {
  sim::Rng rng(kSeed);
  std::vector<std::complex<double>> base(static_cast<std::size_t>(state.range(0)));
  for (auto& c : base) c = {rng.next_double() - 0.5, rng.next_double() - 0.5};
  for (auto _ : state) {
    auto v = base;
    kernels::ref::fft1d(v, false);
    benchmark::DoNotOptimize(v.data());
  }
}
BENCHMARK(BM_Fft1dRef)->Arg(64)->Arg(1024);

void BM_Fft1dKernel(benchmark::State& state) {
  sim::Rng rng(kSeed);
  std::vector<std::complex<double>> base(static_cast<std::size_t>(state.range(0)));
  for (auto& c : base) c = {rng.next_double() - 0.5, rng.next_double() - 0.5};
  for (auto _ : state) {
    auto v = base;
    kernels::fft1d(v, false);
    benchmark::DoNotOptimize(v.data());
  }
}
BENCHMARK(BM_Fft1dKernel)->Arg(64)->Arg(1024);

// ---------------------------------------------------------------------------
// Sort: branchless radix vs std::sort, PSRS-shaped keys.

void BM_SortStd(benchmark::State& state) {
  sim::Rng rng(kSeed);
  std::vector<std::int32_t> base(static_cast<std::size_t>(state.range(0)));
  for (auto& k : base) k = rng.uniform_i32(-1'000'000'000, 1'000'000'000);
  for (auto _ : state) {
    auto v = base;
    std::sort(v.begin(), v.end());
    benchmark::DoNotOptimize(v.data());
  }
}
BENCHMARK(BM_SortStd)->Arg(62'500)->Arg(500'000);

void BM_SortRadix(benchmark::State& state) {
  sim::Rng rng(kSeed);
  std::vector<std::int32_t> base(static_cast<std::size_t>(state.range(0)));
  for (auto& k : base) k = rng.uniform_i32(-1'000'000'000, 1'000'000'000);
  for (auto _ : state) {
    auto v = base;
    kernels::sort_i32(v);
    benchmark::DoNotOptimize(v.data());
  }
}
BENCHMARK(BM_SortRadix)->Arg(62'500)->Arg(500'000);

// ---------------------------------------------------------------------------
// Monte Carlo: the ablation that went the other way. The fused loop (ref
// shape, production path) beats the batched variant because the splitmix
// RNG carries no long dependency chain -- divides already overlap across
// iterations, so batching only adds memory traffic. Kept measured so the
// finding stays visible.

void BM_McRef(benchmark::State& state) {
  for (auto _ : state) {
    sim::Rng rng(kSeed);
    benchmark::DoNotOptimize(kernels::ref::inv_quad_sum(rng, state.range(0)));
  }
}
BENCHMARK(BM_McRef)->Arg(100'000);

void BM_McKernel(benchmark::State& state) {
  for (auto _ : state) {
    sim::Rng rng(kSeed);
    benchmark::DoNotOptimize(kernels::inv_quad_sum(rng, state.range(0)));
  }
}
BENCHMARK(BM_McKernel)->Arg(100'000);

void BM_McBatchedAblation(benchmark::State& state) {
  kernels::force_scalar(state.range(1) != 0);
  for (auto _ : state) {
    sim::Rng rng(kSeed);
    benchmark::DoNotOptimize(kernels::inv_quad_sum_batched(rng, state.range(0)));
  }
  state.SetLabel(kernels::to_string(kernels::active_isa()));
  kernels::force_scalar(false);
}
BENCHMARK(BM_McBatchedAblation)->Args({100'000, 1})->Args({100'000, 0});

// ---------------------------------------------------------------------------
// Matmul: (jj, kk) cache blocking vs plain i-k-j.

void BM_MatmulRef(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sim::Rng rng(kSeed);
  std::vector<double> a(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  std::vector<double> b(a.size()), c(a.size());
  for (auto& x : a) x = rng.next_double();
  for (auto& x : b) x = rng.next_double();
  for (auto _ : state) {
    kernels::ref::matmul_rows(a.data(), n, b.data(), n, c.data());
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_MatmulRef)->Arg(96)->Arg(384);

void BM_MatmulKernel(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sim::Rng rng(kSeed);
  std::vector<double> a(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  std::vector<double> b(a.size()), c(a.size());
  for (auto& x : a) x = rng.next_double();
  for (auto& x : b) x = rng.next_double();
  for (auto _ : state) {
    kernels::matmul_rows(a.data(), n, b.data(), n, c.data());
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_MatmulKernel)->Arg(96)->Arg(384);

// ---------------------------------------------------------------------------
// End-to-end: one JPEG APL cell (the workload the paper's Figure 5 sweeps)
// and an app sweep with the host-work split as reported counters.

void BM_JpegAplCell(benchmark::State& state) {
  const eval::AppCell cell{host::PlatformId::AlphaFddi, mp::ToolKind::P4, eval::AppKind::Jpeg,
                           static_cast<int>(state.range(0))};
  const eval::AplConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::app_cell_s(cell, cfg));
  }
}
BENCHMARK(BM_JpegAplCell)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_AppSweepHostStats(benchmark::State& state) {
  std::vector<eval::AppCell> cells;
  for (eval::AppKind app : eval::all_apps()) {
    for (int procs : {1, 4}) {
      cells.push_back({host::PlatformId::AlphaFddi, mp::ToolKind::P4, app, procs});
    }
  }
  const eval::AplConfig cfg;
  for (auto _ : state) {
    auto s = eval::sweep_app_s(cells, cfg, 1);
    benchmark::DoNotOptimize(s.data());
  }
  const auto stats = eval::last_sweep_host_stats();
  state.counters["app_share"] = stats.app_share();
  state.counters["kernel_calls_per_sweep"] =
      static_cast<double>(stats.kernel_calls) / static_cast<double>(std::max<std::uint64_t>(
                                                    1, stats.cells / cells.size()));
  state.counters["arena_grows"] = static_cast<double>(stats.arena_grows);
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(cells.size()));
}
BENCHMARK(BM_AppSweepHostStats)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
