// Regenerates paper Figure 4: global vector summation on 4 SUNs -- p4 and
// Express over Ethernet, p4 over the NYNET ATM WAN. PVM is absent: it has
// no global operation (paper Section 3.2.4).
#include <cstdio>

#include "eval/tpl.hpp"

int main() {
  using namespace pdc;
  using host::PlatformId;
  using mp::ToolKind;
  constexpr int kProcs = 4;

  std::printf("Figure 4: global vector sum using %d SUNs (milliseconds)\n\n", kProcs);
  std::printf("%10s |%10s %10s %10s %10s\n", "# ints", "p4/Eth", "Expr/Eth", "p4/NYNET",
              "PVM");
  std::printf("-----------+-------------------------------------------\n");
  for (std::int64_t n : {0LL, 10000LL, 20000LL, 40000LL, 60000LL, 80000LL, 100000LL}) {
    const auto p4_eth = eval::global_sum_ms(PlatformId::SunEthernet, ToolKind::P4, kProcs, n);
    const auto ex_eth =
        eval::global_sum_ms(PlatformId::SunEthernet, ToolKind::Express, kProcs, n);
    const auto p4_wan = eval::global_sum_ms(PlatformId::SunAtmWan, ToolKind::P4, kProcs, n);
    const auto pvm = eval::global_sum_ms(PlatformId::SunEthernet, ToolKind::Pvm, kProcs, n);
    std::printf("%10lld |%10.2f %10.2f %10.2f %10s\n", static_cast<long long>(n), *p4_eth,
                *ex_eth, *p4_wan, pvm ? "?" : "n/a");
  }
  std::printf("\nExpected shape (paper): p4 beats Express; ATM WAN far below Ethernet\n"
              "for large vectors; PVM not evaluable (no global operation).\n");
  return 0;
}
