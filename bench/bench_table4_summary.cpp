// Regenerates paper Table 4: the summary ranking of tool communication
// performance per platform and primitive, derived from the TPL benchmarks
// (not hand-entered -- the rankings are computed from simulated runs).
#include <cstdio>

#include "eval/methodology.hpp"

namespace {

void print_rank_row(const char* label, pdc::host::PlatformId platform,
                    pdc::eval::Primitive prim, int procs, std::int64_t bytes,
                    const char* paper) {
  std::printf("  %-12s:", label);
  for (auto tool : pdc::eval::rank_by_primitive(platform, prim, procs, bytes)) {
    std::printf(" %-8s", pdc::mp::to_string(tool));
  }
  std::printf("  (paper: %s)\n", paper);
}

}  // namespace

int main() {
  using pdc::eval::Primitive;
  using pdc::host::PlatformId;

  std::printf("Table 4: Summary of tool performance on different platforms\n");
  std::printf("(rankings computed from the TPL benchmarks at 16 KB, 4 processes;\n");
  std::printf(" global sum at 40000 integers)\n\n");

  std::printf("SUN/Ethernet\n");
  print_rank_row("snd/rcv", PlatformId::SunEthernet, Primitive::SendRecv, 4, 16384,
                 "p4, PVM, Express");
  print_rank_row("broadcast", PlatformId::SunEthernet, Primitive::Broadcast, 4, 16384,
                 "p4, PVM, Express");
  print_rank_row("ring", PlatformId::SunEthernet, Primitive::Ring, 4, 16384,
                 "p4, Express, PVM");
  print_rank_row("global sum", PlatformId::SunEthernet, Primitive::GlobalSum, 4, 160000,
                 "p4, Express (PVM: not available)");

  std::printf("\nSUN/ATM\n");
  print_rank_row("snd/rcv", PlatformId::SunAtmLan, Primitive::SendRecv, 4, 16384,
                 "p4, PVM, Express");
  print_rank_row("broadcast", PlatformId::SunAtmWan, Primitive::Broadcast, 4, 16384,
                 "p4, PVM");
  print_rank_row("ring", PlatformId::SunAtmWan, Primitive::Ring, 4, 16384, "p4, PVM");

  std::printf("\n\"The tool that provides the best performance in executing its\n");
  std::printf("communication primitives will also give the best performance results\n");
  std::printf("for a large number of distributed applications.\" (paper, Section 2.1)\n");
  return 0;
}
