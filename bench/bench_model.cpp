// Performance-model layer costs (DESIGN 5.16). Reported per benchmark:
//   fits_per_s   -- full 105-hypothesis lattice fits per second (seed +
//                   Gauss-Newton refinement per hypothesis)
//   evals_per_s  -- composed-skeleton cost evaluations per second (the
//                   quantity a what-if sweep spends once models exist)
//   cells_per_s  -- cross-validated cells per second, simulations included
//
// The interesting comparison is BM_SkeletonEval against BM_CrossValidate:
// predicting a pattern from fitted models is microseconds while
// simulating it is milliseconds -- that gap is the whole point of the
// model layer.
#include <benchmark/benchmark.h>

#include <vector>

#include "model/crossval.hpp"
#include "model/model.hpp"
#include "model/skeleton.hpp"

namespace {

using namespace pdc;
using model::Hypothesis;
using model::Observation;
using model::ProcTerm;

std::vector<Observation> synthetic_grid() {
  const Hypothesis truth{1.0, 0, ProcTerm::CeilLogP};
  std::vector<Observation> obs;
  for (double n : {256.0, 1024.0, 3072.0, 4096.0, 8192.0, 16384.0}) {
    for (double p : {2.0, 3.0, 4.0, 6.0, 8.0, 16.0}) {
      obs.push_back(
          {n, p, 0.1 + (0.05 + 2e-5 * n) * model::proc_term_value(truth.proc, p)});
    }
  }
  return obs;
}

void BM_FitLattice(benchmark::State& state) {
  const auto obs = synthetic_grid();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::fit_model(obs));
  }
  state.counters["fits_per_s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
  state.counters["observations"] = static_cast<double>(obs.size());
}
BENCHMARK(BM_FitLattice);

void BM_SkeletonEval(benchmark::State& state) {
  const model::FittedModel leaf = model::fit_model(synthetic_grid());
  model::PatternLeaves leaves;
  leaves.sendrecv = leaf;
  const model::Skeleton skel = model::pattern_skeleton(
      model::PatternKind::Pipeline, leaves, 4096, 8, 16, 0, 0.05, false);
  double n = 4096.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(skel.cost_ms(n, 8.0));
    n += 1.0;  // defeat value memoisation without branching
  }
  state.counters["evals_per_s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SkeletonEval);

void BM_CrossValidatePrimitive(benchmark::State& state) {
  model::TrainGrid train;
  train.sizes = {256, 1024, 4096, 16384};
  const std::vector<model::HoldoutPoint> holdout = {{3072, 2}, {32768, 2}};
  const auto measure = model::direct_measure(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::cross_validate_primitive(
        mp::ToolKind::P4, host::PlatformId::ClusterFlat, eval::Primitive::SendRecv,
        train, holdout, measure));
  }
  state.counters["cells_per_s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CrossValidatePrimitive);

void BM_DefaultSuite(benchmark::State& state) {
  const auto measure = model::direct_measure(0);
  for (auto _ : state) {
    const model::SuiteReport suite = model::run_default_suite(measure);
    benchmark::DoNotOptimize(suite.worst_primitive_median());
  }
}
BENCHMARK(BM_DefaultSuite)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
