// Multi-tenant scheduler throughput (ROADMAP item 2): one SchedCell per
// (platform x arrival rate), backfill on, default job mix. Reported per
// benchmark:
//   jobs_per_s     -- completed jobs / wall second (planner + sim throughput)
//   events_per_s   -- simulator event throughput under contention
//   utilization    -- busy-node fraction of the schedule (simulated)
//   makespan_ms    -- simulated schedule length (determinism anchor)
//   mean_slowdown  -- mean bounded slowdown across completed jobs
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "eval/sched_cell.hpp"
#include "host/platform.hpp"

namespace {

using namespace pdc;

eval::SchedCell make_cell(host::PlatformId platform, double rate_hz) {
  eval::SchedCell cell;
  cell.platform = platform;
  cell.nodes = 64;
  cell.arrival_rate_hz = rate_hz;
  cell.njobs = 32;
  cell.users = 4;
  cell.seed = 7;
  return cell;
}

void BM_SchedCell(benchmark::State& state) {
  const auto platform = host::scale_platforms().at(static_cast<std::size_t>(state.range(0)));
  const double rate_hz = static_cast<double>(state.range(1));
  const auto cell = make_cell(platform, rate_hz);

  std::uint64_t jobs = 0;
  std::uint64_t events = 0;
  double utilization = 0.0;
  double makespan_ms = 0.0;
  double mean_slowdown = 0.0;
  for (auto _ : state) {
    const auto out = eval::run_sched_cell(cell);
    jobs += static_cast<std::uint64_t>(out.schedule.completed);
    events += out.schedule.events;
    utilization = out.schedule.utilization;  // identical every iteration
    makespan_ms = out.schedule.makespan.millis();
    double slowdown = 0.0;
    int n = 0;
    for (const auto& j : out.schedule.jobs) {
      if (j.state != sched::JobState::Completed) continue;
      slowdown += j.bounded_slowdown();
      ++n;
    }
    mean_slowdown = n > 0 ? slowdown / n : 0.0;
  }
  state.counters["jobs_per_s"] =
      benchmark::Counter(static_cast<double>(jobs), benchmark::Counter::kIsRate);
  state.counters["events_per_s"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["utilization"] = utilization;
  state.counters["makespan_ms"] = makespan_ms;
  state.counters["mean_slowdown"] = mean_slowdown;
  state.SetLabel(host::to_string(platform));
}

void SchedArgs(benchmark::internal::Benchmark* b) {
  for (std::int64_t platform = 0; platform < 3; ++platform)
    for (std::int64_t rate : {500, 2000, 8000}) b->Args({platform, rate});
}

BENCHMARK(BM_SchedCell)->Apply(SchedArgs)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
