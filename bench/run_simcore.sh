#!/bin/sh
# Regenerate BENCH_simcore.json (kernel microbenchmark numbers) at the repo
# root. Equivalent to `cmake --build build --target bench-json`.
set -eu
root="$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)"
build="${BUILD_DIR:-$root/build}"

cmake --build "$build" --target bench_simcore -j
"$build/bench/bench_simcore" \
  --benchmark_format=json \
  --benchmark_min_time=0.2 \
  --benchmark_repetitions=3 \
  --benchmark_out="$root/BENCH_simcore.json" \
  --benchmark_out_format=json
echo "wrote $root/BENCH_simcore.json"
