// pdceval -- pdcevald: the evaluation-as-a-service daemon.
//
//   pdcevald --socket /tmp/pdcevald.sock --store cells.pdce
//   pdcevald --socket /tmp/pdcevald.sock              # in-memory store
//
// Binds the Unix-domain socket, replays the persisted store (discarding
// it wholesale when it was written under a different model version), then
// serves pdceval clients until SIGINT/SIGTERM. Exit prints the final
// cache counters so a scripted run (CI smoke) can assert hit rates from
// the daemon side too.
#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

#include "eval/cell.hpp"
#include "evald/server.hpp"

namespace {

[[noreturn]] void usage(int code) {
  std::fprintf(stderr,
               "pdcevald: memoizing evaluation daemon\n"
               "  --socket PATH    Unix-domain socket to serve on (default /tmp/pdcevald.sock)\n"
               "  --store PATH     persistent cell store file (default: in-memory only)\n"
               "  --model-version N  override the content-address version (testing)\n");
  std::exit(code);
}

}  // namespace

int main(int argc, char** argv) {
  pdc::evald::ServerConfig config;
  config.socket_path = "/tmp/pdcevald.sock";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(2);
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") usage(0);
    else if (arg == "--socket") config.socket_path = value();
    else if (arg == "--store") config.store_path = value();
    else if (arg == "--model-version") config.model_version = std::strtoull(value().c_str(), nullptr, 0);
    else usage(2);
  }

  // Block the shutdown signals before any thread exists so the accept and
  // connection threads inherit the mask and sigwait() below is the only
  // consumer.
  sigset_t stop_set;
  sigemptyset(&stop_set);
  sigaddset(&stop_set, SIGINT);
  sigaddset(&stop_set, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &stop_set, nullptr);

  try {
    pdc::evald::Server server(config);
    const pdc::evald::DaemonStats boot = server.stats();
    std::printf("pdcevald: serving on %s (store: %s, model version %llu",
                config.socket_path.c_str(),
                config.store_path.empty() ? "in-memory" : config.store_path.c_str(),
                static_cast<unsigned long long>(boot.model_version));
    if (boot.recovered > 0) {
      std::printf(", %llu cells recovered", static_cast<unsigned long long>(boot.recovered));
    }
    std::printf(")\n");
    std::fflush(stdout);
    server.start();

    int sig = 0;
    while (sigwait(&stop_set, &sig) != 0) {}
    std::printf("pdcevald: signal %d, shutting down\n", sig);
    server.stop();

    const pdc::evald::DaemonStats s = server.stats();
    std::printf("pdcevald: %llu requests, %llu cells served (%llu computed, %llu hits, "
                "%llu negative hits), %llu entries, %llu frame errors\n",
                static_cast<unsigned long long>(s.requests),
                static_cast<unsigned long long>(s.cells_served),
                static_cast<unsigned long long>(s.cells_computed),
                static_cast<unsigned long long>(s.hits),
                static_cast<unsigned long long>(s.negative_hits),
                static_cast<unsigned long long>(s.entries),
                static_cast<unsigned long long>(s.frame_errors));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pdcevald: %s\n", e.what());
    return 1;
  }
  return 0;
}
