// pdceval -- pdceval: client for the pdcevald evaluation service.
//
//   pdceval --tool p4 --platform ethernet --primitive sendrecv --bytes 4096
//   pdceval --cell pvm:fddi:fft::4
//   pdceval --sched --platform flat --nodes 64 --jobs 24
//   pdceval --warm table3        # execute-and-cache the Table 3 grid
//   pdceval --stats
//   pdceval --invalidate --cell p4:ethernet:sendrecv:1:2
//   pdceval --invalidate-all
//
// Every answer is printed with its origin -- cache, computed, or
// negative-cache -- so scripts (and the CI smoke job) can assert that a
// repeated sweep is served from memory rather than re-simulated.
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <vector>

#include "cell_args.hpp"
#include "evald/client.hpp"

namespace {

using pdc::eval::CellSpec;
using pdc::eval::CellStatus;
using pdc::evald::Origin;

[[noreturn]] void usage(int code) {
  std::fprintf(stderr,
               "pdceval: look up evaluation cells in a pdcevald daemon\n"
               "  --server PATH            daemon socket (default /tmp/pdcevald.sock)\n"
               "  --tool p4|pvm|express    cell flags, as pdctrace\n"
               "  --platform %s\n"
               "  --primitive sendrecv|broadcast|ring|globalsum   (TPL cell)\n"
               "  --app jpeg|fft|mc|psrs                          (APL cell)\n"
               "  --bytes N --procs N --ints N\n"
               "  --drop R --corrupt R --dup R --seed S           fault plan\n"
               "  --cell T:P:W:B:N         compact cell spec\n"
               "  --sched                  scheduling cell, with pdcsched flags\n"
               "    --nodes N --jobs N --rate R --users N --policy backfill|fifo --aging P\n"
               "  --warm table3            execute-and-cache the Table 3 grid\n"
               "  --stats                  print daemon counters\n"
               "  --invalidate             drop the selected cell from the store\n"
               "  --invalidate-all         drop the whole store\n"
               "  --ping                   liveness probe\n",
               pdc::tools::kPlatformNames);
  std::exit(code);
}

const char* origin_name(Origin o) {
  switch (o) {
    case Origin::Cache: return "cache";
    case Origin::Computed: return "computed";
    case Origin::NegativeCache: return "negative-cache";
  }
  return "?";
}

void print_outcome(const CellSpec& spec, const pdc::evald::Client::Outcome& out) {
  const pdc::eval::CellResult& r = out.result;
  switch (r.status) {
    case CellStatus::Error:
      std::printf("[%s] error: %s\n", origin_name(out.origin), r.error.c_str());
      return;
    case CellStatus::Unsupported:
      std::printf("[%s] not available in this tool\n", origin_name(out.origin));
      return;
    case CellStatus::Ok:
      break;
  }
  switch (spec.type) {
    case pdc::eval::CellType::Tpl:
      std::printf("[%s] %s on %s, %s, %lld bytes, procs %d -> %.6f simulated ms\n",
                  origin_name(out.origin), pdc::mp::to_string(spec.tpl.tool),
                  pdc::host::to_string(spec.tpl.platform),
                  pdc::eval::to_string(spec.tpl.primitive),
                  static_cast<long long>(spec.tpl.bytes), spec.tpl.procs, r.tpl_ms);
      break;
    case pdc::eval::CellType::App:
      std::printf("[%s] %s on %s, app %s, procs %d -> %.6f simulated s\n",
                  origin_name(out.origin), pdc::mp::to_string(spec.app.tool),
                  pdc::host::to_string(spec.app.platform), pdc::eval::to_string(spec.app.app),
                  spec.app.procs, r.app_s);
      break;
    case pdc::eval::CellType::Sched: {
      const pdc::sched::ScheduleOutcome& s = r.sched.schedule;
      std::printf("[%s] %s, %d nodes, %d jobs -> completed %d rejected %d makespan %.3f ms "
                  "utilization %.1f%%\n",
                  origin_name(out.origin), pdc::host::to_string(spec.sched.platform),
                  spec.sched.nodes, spec.sched.njobs, s.completed, s.rejected,
                  s.makespan.millis(), 100.0 * s.utilization);
      break;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string server = "/tmp/pdcevald.sock";
  pdc::eval::TplCell tpl;
  tpl.bytes = 1;
  tpl.procs = 2;
  pdc::eval::AppCell app;
  app.procs = 2;
  pdc::eval::SchedCell sched;
  bool is_app = false;
  bool is_sched = false;
  bool have_cell = false;
  bool do_stats = false;
  bool do_ping = false;
  bool do_invalidate = false;
  bool do_invalidate_all = false;
  std::string warm_sweep;
  double drop = 0.0, corrupt = 0.0, duplicate = 0.0;
  std::uint64_t seed = 0xFA17;
  bool have_seed = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "pdceval: %s needs a value\n", arg.c_str());
        usage(2);
      }
      return argv[++i];
    };
    bool ok = true;
    if (arg == "--help" || arg == "-h") usage(0);
    else if (arg == "--server") server = value();
    else if (arg == "--tool") { ok = pdc::tools::parse_tool(value(), tpl.tool); app.tool = tpl.tool; have_cell = true; }
    else if (arg == "--platform") {
      ok = pdc::tools::parse_platform(value(), tpl.platform);
      app.platform = tpl.platform;
      sched.platform = tpl.platform;
      have_cell = true;
    }
    else if (arg == "--primitive") { ok = pdc::tools::parse_primitive(value(), tpl.primitive); is_app = false; have_cell = true; }
    else if (arg == "--app") { ok = pdc::tools::parse_app(value(), app.app); is_app = true; have_cell = true; }
    else if (arg == "--bytes") { tpl.bytes = std::atoll(value().c_str()); have_cell = true; }
    else if (arg == "--procs") { tpl.procs = std::atoi(value().c_str()); app.procs = tpl.procs; have_cell = true; }
    else if (arg == "--ints") { tpl.global_sum_ints = std::atoll(value().c_str()); have_cell = true; }
    else if (arg == "--drop") drop = std::atof(value().c_str());
    else if (arg == "--corrupt") corrupt = std::atof(value().c_str());
    else if (arg == "--dup") duplicate = std::atof(value().c_str());
    else if (arg == "--seed") { seed = std::strtoull(value().c_str(), nullptr, 0); have_seed = true; }
    else if (arg == "--cell") { ok = pdc::tools::parse_cell_spec(value(), tpl, app, is_app); have_cell = true; }
    else if (arg == "--sched") { is_sched = true; have_cell = true; }
    else if (arg == "--nodes") sched.nodes = std::atoi(value().c_str());
    else if (arg == "--jobs") sched.njobs = std::atoi(value().c_str());
    else if (arg == "--rate") sched.arrival_rate_hz = std::atof(value().c_str());
    else if (arg == "--users") sched.users = std::atoi(value().c_str());
    else if (arg == "--policy") {
      const std::string p = value();
      if (p == "backfill") sched.policy.backfill = true;
      else if (p == "fifo") sched.policy.backfill = false;
      else ok = false;
    }
    else if (arg == "--aging") sched.policy.aging_per_sec = std::atoll(value().c_str());
    else if (arg == "--warm") warm_sweep = value();
    else if (arg == "--stats") do_stats = true;
    else if (arg == "--invalidate") do_invalidate = true;
    else if (arg == "--invalidate-all") do_invalidate_all = true;
    else if (arg == "--ping") do_ping = true;
    else {
      std::fprintf(stderr, "pdceval: unknown option %s\n", arg.c_str());
      usage(2);
    }
    if (!ok) {
      std::fprintf(stderr, "pdceval: bad value for %s\n", arg.c_str());
      usage(2);
    }
  }

  if (drop > 0.0 || corrupt > 0.0 || duplicate > 0.0) {
    const auto plan = pdc::fault::FaultPlan::uniform(drop, corrupt, duplicate, 0.0,
                                                     pdc::sim::microseconds(500), seed);
    tpl.faults = plan;
    app.faults = plan;
    sched.faults = plan;
  }
  if (is_sched && have_seed) sched.seed = seed;
  if (is_sched && !pdc::tools::is_cluster_platform(sched.platform)) {
    std::fprintf(stderr, "pdceval: --sched needs a cluster platform (flat|fattree|dragonfly)\n");
    usage(2);
  }

  CellSpec spec = is_sched ? CellSpec::of(sched)
                : is_app   ? CellSpec::of(app)
                           : CellSpec::of(tpl);

  try {
    pdc::evald::Client client(server);

    if (do_ping) {
      std::printf(client.ping() ? "pong\n" : "no pong\n");
      return 0;
    }
    if (do_invalidate_all) {
      std::printf("invalidated %llu entries\n",
                  static_cast<unsigned long long>(client.invalidate_all()));
      return 0;
    }
    if (do_invalidate) {
      if (!have_cell) {
        std::fprintf(stderr, "pdceval: --invalidate needs a cell spec\n");
        usage(2);
      }
      std::printf(client.invalidate(spec) ? "invalidated\n" : "not cached\n");
      return 0;
    }
    if (!warm_sweep.empty()) {
      if (warm_sweep != "table3") {
        std::fprintf(stderr, "pdceval: unknown sweep %s (try table3)\n", warm_sweep.c_str());
        usage(2);
      }
      const std::vector<CellSpec> grid = pdc::eval::table3_grid();
      const std::vector<Origin> origins = client.warm(grid);
      std::size_t cached = 0, computed = 0, negative = 0;
      for (const Origin o : origins) {
        if (o == Origin::Computed) ++computed;
        else if (o == Origin::NegativeCache) ++negative;
        else ++cached;
      }
      std::printf("warm %s: %zu cells, %zu cached, %zu negative-cached, %zu computed "
                  "(%.1f%% served from cache)\n",
                  warm_sweep.c_str(), origins.size(), cached, negative, computed,
                  origins.empty() ? 0.0
                                  : 100.0 * static_cast<double>(cached + negative) /
                                        static_cast<double>(origins.size()));
      return 0;
    }
    if (do_stats) {
      const pdc::evald::DaemonStats s = client.stats();
      std::printf("model version  %llu\n", static_cast<unsigned long long>(s.model_version));
      std::printf("entries        %llu (%llu negative)\n",
                  static_cast<unsigned long long>(s.entries),
                  static_cast<unsigned long long>(s.negative_entries));
      std::printf("hits           %llu (%llu negative)\n",
                  static_cast<unsigned long long>(s.hits),
                  static_cast<unsigned long long>(s.negative_hits));
      std::printf("misses         %llu\n", static_cast<unsigned long long>(s.misses));
      std::printf("inserts        %llu\n", static_cast<unsigned long long>(s.inserts));
      std::printf("invalidated    %llu\n", static_cast<unsigned long long>(s.invalidated));
      std::printf("log bytes      %llu\n", static_cast<unsigned long long>(s.log_bytes));
      std::printf("recovered      %llu\n", static_cast<unsigned long long>(s.recovered));
      std::printf("requests       %llu\n", static_cast<unsigned long long>(s.requests));
      std::printf("cells served   %llu (%llu computed)\n",
                  static_cast<unsigned long long>(s.cells_served),
                  static_cast<unsigned long long>(s.cells_computed));
      std::printf("connections    %llu\n", static_cast<unsigned long long>(s.connections));
      std::printf("frame errors   %llu\n", static_cast<unsigned long long>(s.frame_errors));
      return 0;
    }
    if (!have_cell) {
      std::fprintf(stderr, "pdceval: nothing to do (give a cell, --warm, --stats or --ping)\n");
      usage(2);
    }
    print_outcome(spec, client.lookup(spec));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pdceval: %s\n", e.what());
    return 1;
  }
  return 0;
}
