// pdceval -- pdceval: client for the pdcevald evaluation service.
//
//   pdceval --tool p4 --platform ethernet --primitive sendrecv --bytes 4096
//   pdceval --cell pvm:fddi:fft::4
//   pdceval --sched --platform flat --nodes 64 --jobs 24
//   pdceval --warm table3        # execute-and-cache the Table 3 grid
//   pdceval --stats
//   pdceval --invalidate --cell p4:ethernet:sendrecv:1:2
//   pdceval --invalidate-all
//
// --bytes / --procs / --ints also take sweep ranges ("256..16384*2"
// geometric, "2..8x2" linear); more than one resulting cell turns the
// lookup into one batched sweep frame, and `--warm grid` execute-and-
// caches the same cross-product. --json prints every mode's answer as a
// JSON value for scripting (same schema pdcmodel consumes).
//
// Every answer is printed with its origin -- cache, computed, or
// negative-cache -- so scripts (and the CI smoke job) can assert that a
// repeated sweep is served from memory rather than re-simulated.
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <vector>

#include "cell_args.hpp"
#include "evald/client.hpp"

namespace {

using pdc::eval::CellSpec;
using pdc::eval::CellStatus;
using pdc::evald::Origin;

[[noreturn]] void usage(int code) {
  std::fprintf(stderr,
               "pdceval: look up evaluation cells in a pdcevald daemon\n"
               "  --server PATH            daemon socket (default /tmp/pdcevald.sock)\n"
               "  --tool p4|pvm|express    cell flags, as pdctrace\n"
               "  --platform %s\n"
               "  --primitive sendrecv|broadcast|ring|globalsum   (TPL cell)\n"
               "  --app jpeg|fft|mc|psrs                          (APL cell)\n"
               "  --bytes R --procs R --ints R\n"
               "      R = N, N0..N1xSTEP (linear) or N0..N1*K (geometric);\n"
               "      >1 resulting cell runs as one batched sweep\n"
               "  --drop R --corrupt R --dup R --seed S           fault plan\n"
               "  --cell T:P:W:B:N         compact cell spec\n"
               "  --sched                  scheduling cell, with pdcsched flags\n"
               "    --nodes N --jobs N --rate R --users N --policy backfill|fifo --aging P\n"
               "  --warm table3            execute-and-cache the Table 3 grid\n"
               "  --warm grid              execute-and-cache the --bytes/--procs/--ints grid\n"
               "  --json                   print answers as JSON (cells, sweeps, stats)\n"
               "  --stats                  print daemon counters\n"
               "  --invalidate             drop the selected cell from the store\n"
               "  --invalidate-all         drop the whole store\n"
               "  --ping                   liveness probe\n",
               pdc::tools::kPlatformNames);
  std::exit(code);
}

const char* origin_name(Origin o) {
  switch (o) {
    case Origin::Cache: return "cache";
    case Origin::Computed: return "computed";
    case Origin::NegativeCache: return "negative-cache";
  }
  return "?";
}

void print_outcome(const CellSpec& spec, const pdc::evald::Client::Outcome& out) {
  const pdc::eval::CellResult& r = out.result;
  switch (r.status) {
    case CellStatus::Error:
      std::printf("[%s] error: %s\n", origin_name(out.origin), r.error.c_str());
      return;
    case CellStatus::Unsupported:
      std::printf("[%s] not available in this tool\n", origin_name(out.origin));
      return;
    case CellStatus::Ok:
      break;
  }
  switch (spec.type) {
    case pdc::eval::CellType::Tpl:
      std::printf("[%s] %s on %s, %s, %lld bytes, procs %d -> %.6f simulated ms\n",
                  origin_name(out.origin), pdc::mp::to_string(spec.tpl.tool),
                  pdc::host::to_string(spec.tpl.platform),
                  pdc::eval::to_string(spec.tpl.primitive),
                  static_cast<long long>(spec.tpl.bytes), spec.tpl.procs, r.tpl_ms);
      break;
    case pdc::eval::CellType::App:
      std::printf("[%s] %s on %s, app %s, procs %d -> %.6f simulated s\n",
                  origin_name(out.origin), pdc::mp::to_string(spec.app.tool),
                  pdc::host::to_string(spec.app.platform), pdc::eval::to_string(spec.app.app),
                  spec.app.procs, r.app_s);
      break;
    case pdc::eval::CellType::Sched: {
      const pdc::sched::ScheduleOutcome& s = r.sched.schedule;
      std::printf("[%s] %s, %d nodes, %d jobs -> completed %d rejected %d makespan %.3f ms "
                  "utilization %.1f%%\n",
                  origin_name(out.origin), pdc::host::to_string(spec.sched.platform),
                  spec.sched.nodes, spec.sched.njobs, s.completed, s.rejected,
                  s.makespan.millis(), 100.0 * s.utilization);
      break;
    }
  }
}

// -- JSON output (--json) ----------------------------------------------------
//
// All names and enum strings here are shell-safe tokens, so no escaping is
// needed; the shape is validated by trace::validate_json in the tests.

std::string spec_json(const pdc::eval::CellSpec& spec) {
  char buf[256];
  switch (spec.type) {
    case pdc::eval::CellType::Tpl:
      std::snprintf(buf, sizeof buf,
                    "{\"type\":\"tpl\",\"tool\":\"%s\",\"platform\":\"%s\","
                    "\"primitive\":\"%s\",\"bytes\":%lld,\"procs\":%d,\"ints\":%lld}",
                    pdc::mp::to_string(spec.tpl.tool), pdc::host::to_string(spec.tpl.platform),
                    pdc::eval::to_string(spec.tpl.primitive),
                    static_cast<long long>(spec.tpl.bytes), spec.tpl.procs,
                    static_cast<long long>(spec.tpl.global_sum_ints));
      break;
    case pdc::eval::CellType::App:
      std::snprintf(buf, sizeof buf,
                    "{\"type\":\"app\",\"tool\":\"%s\",\"platform\":\"%s\","
                    "\"app\":\"%s\",\"procs\":%d}",
                    pdc::mp::to_string(spec.app.tool), pdc::host::to_string(spec.app.platform),
                    pdc::eval::to_string(spec.app.app), spec.app.procs);
      break;
    case pdc::eval::CellType::Sched:
      std::snprintf(buf, sizeof buf,
                    "{\"type\":\"sched\",\"platform\":\"%s\",\"nodes\":%d,\"jobs\":%d}",
                    pdc::host::to_string(spec.sched.platform), spec.sched.nodes,
                    spec.sched.njobs);
      break;
  }
  return buf;
}

std::string outcome_json(const pdc::eval::CellSpec& spec,
                         const pdc::evald::Client::Outcome& out) {
  std::string s = "{\"spec\":" + spec_json(spec) + ",\"origin\":\"";
  s += origin_name(out.origin);
  s += "\",\"status\":\"";
  const pdc::eval::CellResult& r = out.result;
  char buf[160];
  switch (r.status) {
    case CellStatus::Error: return s + "error\"}";
    case CellStatus::Unsupported: return s + "unsupported\"}";
    case CellStatus::Ok: break;
  }
  s += "ok\",";
  switch (spec.type) {
    case pdc::eval::CellType::Tpl:
      std::snprintf(buf, sizeof buf, "\"ms\":%.17g}", r.tpl_ms);
      break;
    case pdc::eval::CellType::App:
      std::snprintf(buf, sizeof buf, "\"s\":%.17g}", r.app_s);
      break;
    case pdc::eval::CellType::Sched:
      std::snprintf(buf, sizeof buf,
                    "\"completed\":%d,\"rejected\":%d,\"makespan_ms\":%.17g,"
                    "\"utilization\":%.17g}",
                    r.sched.schedule.completed, r.sched.schedule.rejected,
                    r.sched.schedule.makespan.millis(), r.sched.schedule.utilization);
      break;
  }
  return s + buf;
}

std::string stats_json(const pdc::evald::DaemonStats& s) {
  char buf[640];
  std::snprintf(
      buf, sizeof buf,
      "{\"model_version\":%llu,\"entries\":%llu,\"negative_entries\":%llu,"
      "\"hits\":%llu,\"negative_hits\":%llu,\"misses\":%llu,\"inserts\":%llu,"
      "\"invalidated\":%llu,\"log_bytes\":%llu,\"recovered\":%llu,\"requests\":%llu,"
      "\"cells_served\":%llu,\"cells_computed\":%llu,\"connections\":%llu,"
      "\"frame_errors\":%llu}",
      static_cast<unsigned long long>(s.model_version),
      static_cast<unsigned long long>(s.entries),
      static_cast<unsigned long long>(s.negative_entries),
      static_cast<unsigned long long>(s.hits),
      static_cast<unsigned long long>(s.negative_hits),
      static_cast<unsigned long long>(s.misses),
      static_cast<unsigned long long>(s.inserts),
      static_cast<unsigned long long>(s.invalidated),
      static_cast<unsigned long long>(s.log_bytes),
      static_cast<unsigned long long>(s.recovered),
      static_cast<unsigned long long>(s.requests),
      static_cast<unsigned long long>(s.cells_served),
      static_cast<unsigned long long>(s.cells_computed),
      static_cast<unsigned long long>(s.connections),
      static_cast<unsigned long long>(s.frame_errors));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::string server = "/tmp/pdcevald.sock";
  pdc::eval::TplCell tpl;
  tpl.bytes = 1;
  tpl.procs = 2;
  pdc::eval::AppCell app;
  app.procs = 2;
  pdc::eval::SchedCell sched;
  bool is_app = false;
  bool is_sched = false;
  bool have_cell = false;
  bool do_stats = false;
  bool do_ping = false;
  bool do_invalidate = false;
  bool do_invalidate_all = false;
  std::string warm_sweep;
  double drop = 0.0, corrupt = 0.0, duplicate = 0.0;
  std::uint64_t seed = 0xFA17;
  bool have_seed = false;
  bool json = false;
  std::vector<std::int64_t> bytes_range{tpl.bytes};
  std::vector<std::int64_t> procs_range{tpl.procs};
  std::vector<std::int64_t> ints_range{tpl.global_sum_ints};

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "pdceval: %s needs a value\n", arg.c_str());
        usage(2);
      }
      return argv[++i];
    };
    bool ok = true;
    if (arg == "--help" || arg == "-h") usage(0);
    else if (arg == "--server") server = value();
    else if (arg == "--tool") { ok = pdc::tools::parse_tool(value(), tpl.tool); app.tool = tpl.tool; have_cell = true; }
    else if (arg == "--platform") {
      ok = pdc::tools::parse_platform(value(), tpl.platform);
      app.platform = tpl.platform;
      sched.platform = tpl.platform;
      have_cell = true;
    }
    else if (arg == "--primitive") { ok = pdc::tools::parse_primitive(value(), tpl.primitive); is_app = false; have_cell = true; }
    else if (arg == "--app") { ok = pdc::tools::parse_app(value(), app.app); is_app = true; have_cell = true; }
    else if (arg == "--bytes") { ok = pdc::tools::parse_range(value(), bytes_range); have_cell = true; }
    else if (arg == "--procs") {
      ok = pdc::tools::parse_range(value(), procs_range);
      for (std::int64_t p : procs_range) {
        ok = ok && p > 0 && p <= std::numeric_limits<int>::max();
      }
      have_cell = true;
    }
    else if (arg == "--ints") { ok = pdc::tools::parse_range(value(), ints_range); have_cell = true; }
    else if (arg == "--drop") drop = std::atof(value().c_str());
    else if (arg == "--corrupt") corrupt = std::atof(value().c_str());
    else if (arg == "--dup") duplicate = std::atof(value().c_str());
    else if (arg == "--seed") { seed = std::strtoull(value().c_str(), nullptr, 0); have_seed = true; }
    else if (arg == "--cell") {
      ok = pdc::tools::parse_cell_spec(value(), tpl, app, is_app);
      if (ok) {
        // The compact spec carries single values; reset the range axes so
        // they take effect (a later --bytes/--procs/--ints still overrides).
        bytes_range = {tpl.bytes};
        procs_range = {tpl.procs};
        ints_range = {tpl.global_sum_ints};
      }
      have_cell = true;
    }
    else if (arg == "--sched") { is_sched = true; have_cell = true; }
    else if (arg == "--nodes") {
      std::int64_t v = 0;
      ok = pdc::tools::parse_number(value(), v) && v > 0 && v <= std::numeric_limits<int>::max();
      if (ok) sched.nodes = static_cast<int>(v);
    }
    else if (arg == "--jobs") {
      std::int64_t v = 0;
      ok = pdc::tools::parse_number(value(), v) && v > 0 && v <= std::numeric_limits<int>::max();
      if (ok) sched.njobs = static_cast<int>(v);
    }
    else if (arg == "--rate") sched.arrival_rate_hz = std::atof(value().c_str());
    else if (arg == "--users") {
      std::int64_t v = 0;
      ok = pdc::tools::parse_number(value(), v) && v > 0 && v <= std::numeric_limits<int>::max();
      if (ok) sched.users = static_cast<int>(v);
    }
    else if (arg == "--policy") {
      const std::string p = value();
      if (p == "backfill") sched.policy.backfill = true;
      else if (p == "fifo") sched.policy.backfill = false;
      else ok = false;
    }
    else if (arg == "--aging") sched.policy.aging_per_sec = std::atoll(value().c_str());
    else if (arg == "--warm") warm_sweep = value();
    else if (arg == "--json") json = true;
    else if (arg == "--stats") do_stats = true;
    else if (arg == "--invalidate") do_invalidate = true;
    else if (arg == "--invalidate-all") do_invalidate_all = true;
    else if (arg == "--ping") do_ping = true;
    else {
      std::fprintf(stderr, "pdceval: unknown option %s\n", arg.c_str());
      usage(2);
    }
    if (!ok) {
      std::fprintf(stderr, "pdceval: bad value for %s\n", arg.c_str());
      usage(2);
    }
  }

  if (drop > 0.0 || corrupt > 0.0 || duplicate > 0.0) {
    const auto plan = pdc::fault::FaultPlan::uniform(drop, corrupt, duplicate, 0.0,
                                                     pdc::sim::microseconds(500), seed);
    tpl.faults = plan;
    app.faults = plan;
    sched.faults = plan;
  }
  if (is_sched && have_seed) sched.seed = seed;
  if (is_sched && !pdc::tools::is_cluster_platform(sched.platform)) {
    std::fprintf(stderr, "pdceval: --sched needs a cluster platform (flat|fattree|dragonfly)\n");
    usage(2);
  }

  // Cross-product of the range axes, in axis-major order (bytes, then
  // ints, then procs) so sweep output order is reproducible.
  std::vector<CellSpec> specs;
  if (is_sched) {
    specs.push_back(CellSpec::of(sched));
  } else if (is_app) {
    for (std::int64_t p : procs_range) {
      app.procs = static_cast<int>(p);
      specs.push_back(CellSpec::of(app));
    }
  } else {
    for (std::int64_t b : bytes_range) {
      for (std::int64_t n : ints_range) {
        for (std::int64_t p : procs_range) {
          tpl.bytes = b;
          tpl.global_sum_ints = n;
          tpl.procs = static_cast<int>(p);
          specs.push_back(CellSpec::of(tpl));
        }
      }
    }
  }

  try {
    pdc::evald::Client client(server);

    if (do_ping) {
      std::printf(client.ping() ? "pong\n" : "no pong\n");
      return 0;
    }
    if (do_invalidate_all) {
      std::printf("invalidated %llu entries\n",
                  static_cast<unsigned long long>(client.invalidate_all()));
      return 0;
    }
    if (do_invalidate) {
      if (!have_cell || specs.size() != 1) {
        std::fprintf(stderr, "pdceval: --invalidate needs exactly one cell spec\n");
        usage(2);
      }
      std::printf(client.invalidate(specs[0]) ? "invalidated\n" : "not cached\n");
      return 0;
    }
    if (!warm_sweep.empty()) {
      if (warm_sweep != "table3" && warm_sweep != "grid") {
        std::fprintf(stderr, "pdceval: unknown sweep %s (try table3 or grid)\n",
                     warm_sweep.c_str());
        usage(2);
      }
      if (warm_sweep == "grid" && !have_cell) {
        std::fprintf(stderr, "pdceval: --warm grid needs cell flags with ranges\n");
        usage(2);
      }
      const std::vector<CellSpec> grid =
          warm_sweep == "table3" ? pdc::eval::table3_grid() : specs;
      const std::vector<Origin> origins = client.warm(grid);
      std::size_t cached = 0, computed = 0, negative = 0;
      for (const Origin o : origins) {
        if (o == Origin::Computed) ++computed;
        else if (o == Origin::NegativeCache) ++negative;
        else ++cached;
      }
      if (json) {
        std::printf("{\"warm\":\"%s\",\"cells\":%zu,\"cached\":%zu,"
                    "\"negative_cached\":%zu,\"computed\":%zu}\n",
                    warm_sweep.c_str(), origins.size(), cached, negative, computed);
        return 0;
      }
      std::printf("warm %s: %zu cells, %zu cached, %zu negative-cached, %zu computed "
                  "(%.1f%% served from cache)\n",
                  warm_sweep.c_str(), origins.size(), cached, negative, computed,
                  origins.empty() ? 0.0
                                  : 100.0 * static_cast<double>(cached + negative) /
                                        static_cast<double>(origins.size()));
      return 0;
    }
    if (do_stats) {
      const pdc::evald::DaemonStats s = client.stats();
      if (json) {
        std::printf("%s\n", stats_json(s).c_str());
        return 0;
      }
      std::printf("model version  %llu\n", static_cast<unsigned long long>(s.model_version));
      std::printf("entries        %llu (%llu negative)\n",
                  static_cast<unsigned long long>(s.entries),
                  static_cast<unsigned long long>(s.negative_entries));
      std::printf("hits           %llu (%llu negative)\n",
                  static_cast<unsigned long long>(s.hits),
                  static_cast<unsigned long long>(s.negative_hits));
      std::printf("misses         %llu\n", static_cast<unsigned long long>(s.misses));
      std::printf("inserts        %llu\n", static_cast<unsigned long long>(s.inserts));
      std::printf("invalidated    %llu\n", static_cast<unsigned long long>(s.invalidated));
      std::printf("log bytes      %llu\n", static_cast<unsigned long long>(s.log_bytes));
      std::printf("recovered      %llu\n", static_cast<unsigned long long>(s.recovered));
      std::printf("requests       %llu\n", static_cast<unsigned long long>(s.requests));
      std::printf("cells served   %llu (%llu computed)\n",
                  static_cast<unsigned long long>(s.cells_served),
                  static_cast<unsigned long long>(s.cells_computed));
      std::printf("connections    %llu\n", static_cast<unsigned long long>(s.connections));
      std::printf("frame errors   %llu\n", static_cast<unsigned long long>(s.frame_errors));
      return 0;
    }
    if (!have_cell) {
      std::fprintf(stderr, "pdceval: nothing to do (give a cell, --warm, --stats or --ping)\n");
      usage(2);
    }
    if (specs.size() == 1) {
      const auto out = client.lookup(specs[0]);
      if (json) std::printf("%s\n", outcome_json(specs[0], out).c_str());
      else print_outcome(specs[0], out);
    } else {
      const std::vector<pdc::evald::Client::Outcome> outs = client.sweep(specs);
      if (json) {
        std::string doc = "[";
        for (std::size_t i = 0; i < outs.size(); ++i) {
          if (i > 0) doc += ',';
          doc += outcome_json(specs[i], outs[i]);
        }
        doc += "]";
        std::printf("%s\n", doc.c_str());
      } else {
        for (std::size_t i = 0; i < outs.size(); ++i) print_outcome(specs[i], outs[i]);
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pdceval: %s\n", e.what());
    return 1;
  }
  return 0;
}
