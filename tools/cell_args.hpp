// pdceval -- cell-spec argument parsing shared by the CLIs.
//
// pdctrace, pdcsched and pdceval all turn the same flag vocabulary
// (tool / platform / primitive / app names, compact T:P:W:B:N cell
// specs) into cell structs; this header is the one copy of that
// mapping. Platform names cover both the paper's six hosts and the
// three synthetic cluster fabrics -- tools that only accept a subset
// (pdcsched wants a cluster) check with is_cluster_platform() after
// parsing rather than keeping a private name table.
#pragma once

#include <charconv>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "eval/cell.hpp"

namespace pdc::tools {

[[nodiscard]] inline bool parse_tool(const std::string& s, mp::ToolKind& out) {
  if (s == "p4") out = mp::ToolKind::P4;
  else if (s == "pvm") out = mp::ToolKind::Pvm;
  else if (s == "express") out = mp::ToolKind::Express;
  else return false;
  return true;
}

[[nodiscard]] inline bool parse_platform(const std::string& s, host::PlatformId& out) {
  using host::PlatformId;
  if (s == "ethernet") out = PlatformId::SunEthernet;
  else if (s == "atmlan") out = PlatformId::SunAtmLan;
  else if (s == "atmwan") out = PlatformId::SunAtmWan;
  else if (s == "fddi") out = PlatformId::AlphaFddi;
  else if (s == "sp1switch") out = PlatformId::Sp1Switch;
  else if (s == "sp1ethernet") out = PlatformId::Sp1Ethernet;
  else if (s == "flat") out = PlatformId::ClusterFlat;
  else if (s == "fattree") out = PlatformId::ClusterFatTree;
  else if (s == "dragonfly") out = PlatformId::ClusterDragonfly;
  else return false;
  return true;
}

[[nodiscard]] inline bool is_cluster_platform(host::PlatformId p) {
  return p == host::PlatformId::ClusterFlat || p == host::PlatformId::ClusterFatTree ||
         p == host::PlatformId::ClusterDragonfly;
}

inline constexpr const char* kPlatformNames =
    "ethernet|atmlan|atmwan|fddi|sp1switch|sp1ethernet|flat|fattree|dragonfly";

[[nodiscard]] inline bool parse_primitive(const std::string& s, eval::Primitive& out) {
  using eval::Primitive;
  if (s == "sendrecv") out = Primitive::SendRecv;
  else if (s == "broadcast") out = Primitive::Broadcast;
  else if (s == "ring") out = Primitive::Ring;
  else if (s == "globalsum") out = Primitive::GlobalSum;
  else return false;
  return true;
}

[[nodiscard]] inline bool parse_app(const std::string& s, eval::AppKind& out) {
  using eval::AppKind;
  if (s == "jpeg") out = AppKind::Jpeg;
  else if (s == "fft") out = AppKind::Fft2d;
  else if (s == "mc") out = AppKind::MonteCarlo;
  else if (s == "psrs") out = AppKind::Psrs;
  else return false;
  return true;
}

/// Strict decimal parse of the whole string; false on any non-numeric
/// byte (atoll-style silent zeroes would turn a typo into a degenerate
/// cell spec instead of a usage error).
[[nodiscard]] inline bool parse_number(const std::string& s, std::int64_t& out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

/// Sweep ranges for bytes / procs / ints axes:
///
///   "4096"          one value
///   "2..8x2"        linear:    2, 4, 6, 8         (step 2)
///   "256..4096*4"   geometric: 256, 1024, 4096    (factor 4)
///
/// Endpoints are inclusive; the walk stops at the last value <= hi. Every
/// number is a strict full-string std::from_chars parse, and the range is
/// rejected (false, `out` untouched) when lo > hi, the step is < 1, the
/// factor is < 2, a geometric range starts at 0, the walk would overflow
/// int64, or the expansion exceeds kMaxRangeValues elements -- a typo'd
/// "1..1000000000x1" should be a usage error, not a 8 GB vector.
inline constexpr std::size_t kMaxRangeValues = 1 << 16;

[[nodiscard]] inline bool parse_range(const std::string& s, std::vector<std::int64_t>& out) {
  const std::size_t dots = s.find("..");
  std::int64_t lo = 0;
  if (dots == std::string::npos) {
    if (!parse_number(s, lo) || lo < 0) return false;
    out.assign(1, lo);
    return true;
  }
  const std::string head = s.substr(0, dots);
  const std::string tail = s.substr(dots + 2);
  const std::size_t sep = tail.find_first_of("x*");
  if (sep == std::string::npos) return false;
  const bool geometric = tail[sep] == '*';
  std::int64_t hi = 0;
  std::int64_t step = 0;
  if (!parse_number(head, lo) || !parse_number(tail.substr(0, sep), hi) ||
      !parse_number(tail.substr(sep + 1), step)) {
    return false;
  }
  if (lo < 0 || lo > hi) return false;
  if (geometric ? (step < 2 || lo == 0) : step < 1) return false;
  std::vector<std::int64_t> vals;
  for (std::int64_t v = lo; v <= hi;) {
    if (vals.size() >= kMaxRangeValues) return false;
    vals.push_back(v);
    if (geometric) {
      if (v > hi / step) break;  // next value would pass hi (or overflow)
      v *= step;
    } else {
      if (step > hi - v) break;
      v += step;
    }
  }
  out = std::move(vals);
  return true;
}

/// tool:platform:primitive-or-app:bytes:procs ("p4:ethernet:sendrecv:1:2").
/// Empty trailing fields keep whatever defaults the cells carry in.
/// The tool/platform/procs fields land in BOTH cells so the caller can
/// pick either by `is_app`.
[[nodiscard]] inline bool parse_cell_spec(const std::string& spec, eval::TplCell& tpl,
                                          eval::AppCell& app, bool& is_app) {
  std::vector<std::string> parts;
  std::stringstream ss(spec);
  std::string part;
  while (std::getline(ss, part, ':')) parts.push_back(part);
  if (parts.size() < 3 || parts.size() > 5) return false;
  if (!parse_tool(parts[0], tpl.tool)) return false;
  if (!parse_platform(parts[1], tpl.platform)) return false;
  if (parse_primitive(parts[2], tpl.primitive)) {
    is_app = false;
  } else if (parse_app(parts[2], app.app)) {
    is_app = true;
  } else {
    return false;
  }
  app.tool = tpl.tool;
  app.platform = tpl.platform;
  if (parts.size() > 3 && !parts[3].empty()) {
    if (!parse_number(parts[3], tpl.bytes) || tpl.bytes < 0) return false;
  }
  if (parts.size() > 4 && !parts[4].empty()) {
    std::int64_t procs = 0;
    if (!parse_number(parts[4], procs) || procs <= 0 ||
        procs > std::numeric_limits<int>::max()) {
      return false;
    }
    tpl.procs = static_cast<int>(procs);
    app.procs = tpl.procs;
  }
  return true;
}

}  // namespace pdc::tools
