// pdceval -- pdcsched: run one multi-tenant scheduling cell and report
// per-job and per-tool outcomes.
//
//   pdcsched --platform flat --nodes 64 --jobs 24 --rate 2000 --seed 1
//   pdcsched --platform fattree --nodes 256 --policy fifo --jobs 32
//   pdcsched --platform dragonfly --nodes 128 --aging 10 --drop 0.02
//
// The schedule is bit-deterministic from the flags alone: the same command
// prints the same table on every run and at every PDC_SIM_THREADS.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "cell_args.hpp"
#include "eval/sched_cell.hpp"

namespace {

[[noreturn]] void usage(int code) {
  std::fprintf(stderr,
               "pdcsched: schedule a seeded job stream on one simulated cluster\n"
               "  --platform flat|fattree|dragonfly   fabric (default flat)\n"
               "  --nodes N                           cluster size (default 64)\n"
               "  --jobs N                            jobs to generate (default 24)\n"
               "  --rate R                            arrivals per simulated second (default 2000)\n"
               "  --users N                           submitting users (default 4)\n"
               "  --seed S                            workload seed (default 1)\n"
               "  --policy backfill|fifo              planner (default backfill)\n"
               "  --aging P                           priority points per queued second\n"
               "  --drop R                            uniform frame drop rate (fault plan)\n"
               "  --per-job                           print the per-job table\n");
  std::exit(code);
}

}  // namespace

int main(int argc, char** argv) {
  pdc::eval::SchedCell cell;
  bool per_job = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(2);
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") usage(0);
    else if (arg == "--platform") {
      // The shared parser knows all nine platform names; a scheduling cell
      // only makes sense on a cluster fabric.
      if (!pdc::tools::parse_platform(value(), cell.platform) ||
          !pdc::tools::is_cluster_platform(cell.platform)) {
        usage(2);
      }
    } else if (arg == "--nodes") cell.nodes = std::atoi(value().c_str());
    else if (arg == "--jobs") cell.njobs = std::atoi(value().c_str());
    else if (arg == "--rate") cell.arrival_rate_hz = std::atof(value().c_str());
    else if (arg == "--users") cell.users = std::atoi(value().c_str());
    else if (arg == "--seed") cell.seed = std::strtoull(value().c_str(), nullptr, 0);
    else if (arg == "--policy") {
      const std::string p = value();
      if (p == "backfill") cell.policy.backfill = true;
      else if (p == "fifo") cell.policy.backfill = false;
      else usage(2);
    } else if (arg == "--aging") cell.policy.aging_per_sec = std::atoll(value().c_str());
    else if (arg == "--drop") cell.faults = pdc::fault::FaultPlan::uniform(std::atof(value().c_str()));
    else if (arg == "--per-job") per_job = true;
    else usage(2);
  }
  if (cell.nodes <= 0 || cell.njobs <= 0) usage(2);

  const pdc::eval::SchedCellOutcome out = pdc::eval::run_sched_cell(cell);
  const pdc::sched::ScheduleOutcome& s = out.schedule;

  std::printf("pdcsched: %s, %d nodes, %d jobs @ %.0f/s, seed %llu, %s%s\n",
              pdc::host::to_string(cell.platform), cell.nodes, cell.njobs,
              cell.arrival_rate_hz, static_cast<unsigned long long>(cell.seed),
              cell.policy.backfill ? "backfill" : "fifo",
              cell.faults.enabled() ? ", faulty wire" : "");
  std::printf("  completed %d  rejected %d  makespan %.3f ms  utilization %.1f%%  fairness %.3f\n",
              s.completed, s.rejected, s.makespan.millis(), 100.0 * s.utilization, s.fairness);
  std::printf("  events %llu  messages %llu  payload %llu B\n",
              static_cast<unsigned long long>(s.events),
              static_cast<unsigned long long>(s.messages),
              static_cast<unsigned long long>(s.payload_bytes));
  if (s.transport.retransmits + s.transport.drops_seen > 0) {
    std::printf("  transport: %lld retransmits, %lld drops seen, %lld frames injected faulty\n",
                static_cast<long long>(s.transport.retransmits),
                static_cast<long long>(s.transport.drops_seen),
                static_cast<long long>(s.injected.drops + s.injected.flap_drops));
  }

  std::printf("  %-8s %5s %10s %12s %12s %8s\n", "tool", "jobs", "wait(ms)", "slowdown",
              "node-ms", "goodput");
  for (const pdc::eval::ToolGoodput& g : out.per_tool) {
    std::printf("  %-8s %5d %10.3f %12.2f %12.2f %8.2f\n", pdc::mp::to_string(g.tool),
                g.completed, g.mean_wait_ms, g.mean_slowdown, g.node_millis, g.goodput);
  }

  if (per_job) {
    std::printf("  %4s %4s %-8s %5s %5s %10s %10s %10s %s\n", "id", "user", "tool", "ranks",
                "base", "submit(ms)", "wait(ms)", "run(ms)", "state");
    for (const pdc::sched::JobStats& j : s.jobs) {
      const bool done = j.state == pdc::sched::JobState::Completed;
      std::printf("  %4d %4d %-8s %5d %5d %10.3f %10.3f %10.3f %s\n", j.id, j.user,
                  pdc::mp::to_string(j.tool), j.ranks, j.base_node, j.submit.millis(),
                  done ? j.queue_wait().millis() : 0.0, done ? j.run_time().millis() : 0.0,
                  pdc::sched::to_string(j.state));
    }
  }
  return 0;
}
