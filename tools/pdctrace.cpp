// pdceval -- pdctrace: run one evaluation-grid cell with tracing enabled
// and export/report the resulting event stream.
//
//   pdctrace --tool p4 --platform ethernet --primitive sendrecv
//            --bytes 1 --procs 2 --json trace.json
//   pdctrace --tool pvm --platform fddi --app fft --procs 4 --report
//   pdctrace --trace-cell p4:ethernet:sendrecv:1:2 --json trace.json
//   pdctrace --validate trace.json
//
// Built in every configuration. With PDC_TRACE=OFF the cell still runs and
// the timing is printed, but the stream is empty (a warning says so) --
// exported files are valid but contain no events.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "cell_args.hpp"
#include "eval/trace_cell.hpp"
#include "trace/analyze.hpp"
#include "trace/export.hpp"

namespace {

using pdc::eval::AppCell;
using pdc::eval::TplCell;
using pdc::tools::parse_app;
using pdc::tools::parse_platform;
using pdc::tools::parse_primitive;
using pdc::tools::parse_tool;

struct Options {
  TplCell tpl;
  AppCell app;
  bool is_app{false};
  pdc::eval::TraceCapture capture;
  std::string json_path;
  std::string csv_path;
  std::string validate_path;
  bool report{true};
  double drop{0.0};
  double corrupt{0.0};
  double duplicate{0.0};
  std::uint64_t seed{0xFA17};
};

[[noreturn]] void usage(int code) {
  std::fprintf(stderr,
               "pdctrace: trace one evaluation cell\n"
               "  --tool p4|pvm|express         message-passing tool\n"
               "  --platform %s\n"
               "  --primitive sendrecv|broadcast|ring|globalsum   (TPL cell)\n"
               "  --app jpeg|fft|mc|psrs                          (APL cell)\n"
               "  --bytes N --procs N --ints N  cell size parameters\n"
               "  --drop R --corrupt R --dup R --seed S   fault plan\n"
               "  --buffer N                    trace ring capacity (records)\n"
               "  --categories LIST             default|all|mp,net,transport,sim,host\n"
               "  --json FILE --csv FILE        exporters\n"
               "  --report / --no-report        text analysis (default on)\n"
               "  --trace-cell T:P:W:B:N        compact cell spec (tool:platform:\n"
               "                                primitive-or-app:bytes:procs)\n"
               "  --validate FILE               JSON-shape check an exported trace\n",
               pdc::tools::kPlatformNames);
  std::exit(code);
}

[[nodiscard]] bool parse_categories(const std::string& list, std::uint32_t& mask) {
  mask = 0;
  std::stringstream ss(list);
  std::string part;
  while (std::getline(ss, part, ',')) {
    if (part == "default") mask |= pdc::trace::kDefaultMask;
    else if (part == "all") mask |= pdc::trace::kAllMask;
    else if (part == "mp") mask |= pdc::trace::kCatMp;
    else if (part == "net") mask |= pdc::trace::kCatNet;
    else if (part == "transport") mask |= pdc::trace::kCatTransport;
    else if (part == "sim") mask |= pdc::trace::kCatSim;
    else if (part == "host") mask |= pdc::trace::kCatHost;
    else return false;
  }
  return mask != 0;
}

[[nodiscard]] bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

int run_validate(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "pdctrace: cannot open %s\n", path.c_str());
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const auto res = pdc::trace::validate_perfetto_json(buf.str());
  if (!res.ok) {
    std::fprintf(stderr, "pdctrace: %s: INVALID: %s\n", path.c_str(), res.error.c_str());
    return 1;
  }
  std::printf("pdctrace: %s: ok (%zu events, %zu flow events)\n", path.c_str(), res.events,
              res.flows);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  o.tpl.bytes = 1;
  o.tpl.procs = 2;
  o.app.procs = 2;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "pdctrace: %s needs a value\n", arg.c_str());
        usage(2);
      }
      return argv[++i];
    };
    bool ok = true;
    if (arg == "--help" || arg == "-h") usage(0);
    else if (arg == "--tool") { const auto v = next(); ok = parse_tool(v, o.tpl.tool); o.app.tool = o.tpl.tool; }
    else if (arg == "--platform") { const auto v = next(); ok = parse_platform(v, o.tpl.platform); o.app.platform = o.tpl.platform; }
    else if (arg == "--primitive") { ok = parse_primitive(next(), o.tpl.primitive); o.is_app = false; }
    else if (arg == "--app") { ok = parse_app(next(), o.app.app); o.is_app = true; }
    else if (arg == "--bytes") o.tpl.bytes = std::atoll(next().c_str());
    else if (arg == "--procs") { o.tpl.procs = std::atoi(next().c_str()); o.app.procs = o.tpl.procs; }
    else if (arg == "--ints") o.tpl.global_sum_ints = std::atoll(next().c_str());
    else if (arg == "--drop") o.drop = std::atof(next().c_str());
    else if (arg == "--corrupt") o.corrupt = std::atof(next().c_str());
    else if (arg == "--dup") o.duplicate = std::atof(next().c_str());
    else if (arg == "--seed") o.seed = std::strtoull(next().c_str(), nullptr, 0);
    else if (arg == "--buffer") o.capture.capacity = static_cast<std::size_t>(std::atoll(next().c_str()));
    else if (arg == "--categories") ok = parse_categories(next(), o.capture.mask);
    else if (arg == "--json") o.json_path = next();
    else if (arg == "--csv") o.csv_path = next();
    else if (arg == "--report") o.report = true;
    else if (arg == "--no-report") o.report = false;
    else if (arg == "--trace-cell") ok = pdc::tools::parse_cell_spec(next(), o.tpl, o.app, o.is_app);
    else if (arg == "--validate") o.validate_path = next();
    else {
      std::fprintf(stderr, "pdctrace: unknown option %s\n", arg.c_str());
      usage(2);
    }
    if (!ok) {
      std::fprintf(stderr, "pdctrace: bad value for %s\n", arg.c_str());
      usage(2);
    }
  }

  if (!o.validate_path.empty()) return run_validate(o.validate_path);

  if (o.drop > 0.0 || o.corrupt > 0.0 || o.duplicate > 0.0) {
    const auto plan =
        pdc::fault::FaultPlan::uniform(o.drop, o.corrupt, o.duplicate, 0.0,
                                       pdc::sim::microseconds(500), o.seed);
    o.tpl.faults = plan;
    o.app.faults = plan;
  }

  if (!pdc::eval::trace_compiled_in()) {
    std::fprintf(stderr,
                 "pdctrace: warning: built with PDC_TRACE=OFF -- the cell runs "
                 "but the trace will be empty (rebuild with -DPDC_TRACE=ON)\n");
  }

  std::vector<pdc::trace::Record> records;
  pdc::trace::SinkStats stats;
  // Invalid cell shapes (too many procs for the platform, bad sizes) throw
  // from the cluster setup; a CLI reports them, it doesn't abort.
  try {
    if (o.is_app) {
      const auto res = pdc::eval::app_cell_traced(o.app, {}, o.capture);
      records = res.records;
      stats = res.stats;
      std::printf("cell: %s on %s, app %s, procs %d -> %.6f simulated s\n",
                  pdc::mp::to_string(o.app.tool), pdc::host::to_string(o.app.platform),
                  pdc::eval::to_string(o.app.app), o.app.procs, res.seconds);
    } else {
      const auto res = pdc::eval::tpl_cell_traced(o.tpl, o.capture);
      records = res.records;
      stats = res.stats;
      if (!res.ms) {
        std::printf("cell: %s on %s, %s: not available in this tool\n",
                    pdc::mp::to_string(o.tpl.tool), pdc::host::to_string(o.tpl.platform),
                    pdc::eval::to_string(o.tpl.primitive));
        return 0;
      }
      std::printf("cell: %s on %s, %s, %lld bytes, procs %d -> %.6f simulated ms\n",
                  pdc::mp::to_string(o.tpl.tool), pdc::host::to_string(o.tpl.platform),
                  pdc::eval::to_string(o.tpl.primitive),
                  static_cast<long long>(o.tpl.bytes), o.tpl.procs, *res.ms);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pdctrace: cannot run cell: %s\n", e.what());
    return 2;
  }
  std::printf("trace: %llu records captured, %llu dropped (ring capacity %zu)\n",
              static_cast<unsigned long long>(stats.emitted - stats.dropped),
              static_cast<unsigned long long>(stats.dropped), o.capture.capacity);

  if (!o.json_path.empty()) {
    const std::string json = pdc::trace::export_perfetto_json(records);
    if (!write_file(o.json_path, json)) {
      std::fprintf(stderr, "pdctrace: cannot write %s\n", o.json_path.c_str());
      return 2;
    }
    const auto check = pdc::trace::validate_perfetto_json(json);
    std::printf("wrote %s (%zu events%s)\n", o.json_path.c_str(), check.events,
                check.ok ? "" : ", VALIDATION FAILED");
    if (!check.ok) {
      std::fprintf(stderr, "pdctrace: internal error: %s\n", check.error.c_str());
      return 1;
    }
  }
  if (!o.csv_path.empty()) {
    if (!write_file(o.csv_path, pdc::trace::export_csv(records))) {
      std::fprintf(stderr, "pdctrace: cannot write %s\n", o.csv_path.c_str());
      return 2;
    }
    std::printf("wrote %s (%zu rows)\n", o.csv_path.c_str(), records.size());
  }
  if (o.report && !records.empty()) {
    std::fputs(pdc::trace::text_report(records).c_str(), stdout);
  }
  return 0;
}
