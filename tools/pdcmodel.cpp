// pdcmodel -- fit analytic performance models from sweeps, compose them
// through parallel-pattern skeletons, and cross-validate against the
// simulator (ROADMAP item 3).
//
//   pdcmodel --fit --tool p4 --platform fddi --primitive broadcast
//            --sizes 1024..16384*4 --procs 2..8x2 [--at 32768:16]...
//   pdcmodel --crossval --tool p4 --platform fattree --primitive globalsum
//            --sizes 1024..16384*4 --procs 2..16x2 --holdout 8192:24
//            --holdout 8192:32 [--gate 0.15]
//   pdcmodel --compose pipeline --tool express --platform flat
//            --sizes 256..16384*2 --bytes 4096 --procs 4..8x4 --tasks 16
//   pdcmodel --suite [--gate-primitive 0.15 --gate-pattern 0.25]
//   (each command is one line; wrapped here for width)
//
// Training measurements run through eval::sweep by default; --server
// routes them through a pdcevald daemon instead, so a warmed store answers
// from memory and the fit costs no simulation at all. Either path yields
// bit-identical observations, hence bit-identical models. --json prints
// machine-readable reports (validated JSON; schema in src/model).
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "cell_args.hpp"
#include "evald/client.hpp"
#include "model/crossval.hpp"

namespace {

using pdc::model::CellReport;
using pdc::model::FittedModel;
using pdc::model::HoldoutPoint;
using pdc::model::MeasureTpl;
using pdc::model::PatternConfig;
using pdc::model::PatternKind;
using pdc::model::SuiteReport;
using pdc::model::TrainGrid;

[[noreturn]] void usage(int code) {
  std::fprintf(stderr,
               "pdcmodel: fit, compose and cross-validate performance models\n"
               "  --fit                    fit one primitive on the training grid\n"
               "  --crossval               fit, then validate on --holdout points\n"
               "  --compose pipeline|mapreduce|taskpool\n"
               "                           fit leaves, compose the skeleton, validate\n"
               "                           against the pattern simulation\n"
               "  --suite                  the canonical EXPERIMENTS.md suite\n"
               "  --tool p4|pvm|express  --platform %s\n"
               "  --primitive sendrecv|broadcast|ring|globalsum\n"
               "  --sizes R --procs R      training grid (R = N | N0..N1xS | N0..N1*K;\n"
               "                           sizes are bytes, or int32 counts for globalsum)\n"
               "  --at SIZE:PROCS          extra prediction point after --fit (repeatable)\n"
               "  --holdout SIZE:PROCS     held-out validation point (repeatable)\n"
               "  --bytes N --tasks N --ints N --flops F   composed-pattern workload\n"
               "  --server PATH            fetch training data from a pdcevald daemon\n"
               "  --threads N              sweep worker threads (default: env/auto)\n"
               "  --gate X                 exit 1 if median rel. error > X (--crossval)\n"
               "  --gate-primitive X --gate-pattern X    same for --suite\n"
               "  --json                   print reports as JSON\n",
               pdc::tools::kPlatformNames);
  std::exit(code);
}

[[nodiscard]] bool parse_point(const std::string& s, HoldoutPoint& out) {
  const std::size_t colon = s.find(':');
  if (colon == std::string::npos) return false;
  std::int64_t size = 0, procs = 0;
  if (!pdc::tools::parse_number(s.substr(0, colon), size) ||
      !pdc::tools::parse_number(s.substr(colon + 1), procs)) {
    return false;
  }
  if (size < 0 || procs < 2 || procs > 1 << 20) return false;
  out.size = size;
  out.procs = static_cast<int>(procs);
  return true;
}

/// Measure through a pdcevald daemon: ships the batch as one sweep frame,
/// maps Unsupported to nullopt (same contract as eval::sweep_tpl_ms) and
/// throws on execution errors.
[[nodiscard]] MeasureTpl daemon_measure(const std::string& socket_path) {
  auto client = std::make_shared<pdc::evald::Client>(socket_path);
  return [client](const std::vector<pdc::eval::TplCell>& cells) {
    std::vector<pdc::eval::CellSpec> specs;
    specs.reserve(cells.size());
    for (const pdc::eval::TplCell& c : cells) specs.push_back(pdc::eval::CellSpec::of(c));
    const auto outs = client->sweep(specs);
    std::vector<std::optional<double>> ms;
    ms.reserve(outs.size());
    for (const auto& out : outs) {
      switch (out.result.status) {
        case pdc::eval::CellStatus::Ok: ms.emplace_back(out.result.tpl_ms); break;
        case pdc::eval::CellStatus::Unsupported: ms.emplace_back(std::nullopt); break;
        case pdc::eval::CellStatus::Error:
          throw std::runtime_error("daemon cell error: " + out.result.error);
      }
    }
    return ms;
  };
}

void print_points(const CellReport& r) {
  for (const auto& p : r.points) {
    std::printf("  n=%-8.0f p=%-5.0f measured %.6f ms  predicted %.6f ms  "
                "err %5.1f%%%s\n",
                p.n, p.p, p.measured_ms, p.predicted_ms, 100.0 * p.rel_err,
                p.extrapolated ? "  [extrapolated]" : "");
  }
  std::printf("  median err %.1f%%  max err %.1f%%", 100.0 * r.median_rel_err,
              100.0 * r.max_rel_err);
  if (r.median_extrapolated_err > 0.0) {
    std::printf("  extrapolated median %.1f%%", 100.0 * r.median_extrapolated_err);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  enum class Mode { None, Fit, CrossVal, Compose, Suite };
  Mode mode = Mode::None;
  namespace tools = pdc::tools;
  pdc::mp::ToolKind tool = pdc::mp::ToolKind::P4;
  pdc::host::PlatformId platform = pdc::host::PlatformId::SunEthernet;
  pdc::eval::Primitive primitive = pdc::eval::Primitive::SendRecv;
  PatternKind pattern = PatternKind::Pipeline;
  std::vector<std::int64_t> sizes{256, 1024, 4096, 16384};
  std::vector<std::int64_t> procs{2, 4, 8};
  std::vector<HoldoutPoint> at_points;
  std::vector<HoldoutPoint> holdout;
  std::int64_t bytes = 4096;
  std::int64_t ints = 1024;
  std::int64_t tasks = 16;
  double flops = 0.0;
  std::string server;
  std::int64_t threads = 0;
  double gate = -1.0, gate_primitive = -1.0, gate_pattern = -1.0;
  bool json = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "pdcmodel: %s needs a value\n", arg.c_str());
        usage(2);
      }
      return argv[++i];
    };
    bool ok = true;
    if (arg == "--help" || arg == "-h") usage(0);
    else if (arg == "--fit") mode = Mode::Fit;
    else if (arg == "--crossval") mode = Mode::CrossVal;
    else if (arg == "--suite") mode = Mode::Suite;
    else if (arg == "--compose") {
      mode = Mode::Compose;
      const std::string p = value();
      if (p == "pipeline") pattern = PatternKind::Pipeline;
      else if (p == "mapreduce") pattern = PatternKind::MapReduce;
      else if (p == "taskpool") pattern = PatternKind::TaskPool;
      else ok = false;
    }
    else if (arg == "--tool") ok = tools::parse_tool(value(), tool);
    else if (arg == "--platform") ok = tools::parse_platform(value(), platform);
    else if (arg == "--primitive") ok = tools::parse_primitive(value(), primitive);
    else if (arg == "--sizes") ok = tools::parse_range(value(), sizes);
    else if (arg == "--procs") {
      ok = tools::parse_range(value(), procs);
      for (std::int64_t p : procs) ok = ok && p >= 2 && p <= 1 << 20;
    }
    else if (arg == "--at") { at_points.emplace_back(); ok = parse_point(value(), at_points.back()); }
    else if (arg == "--holdout") { holdout.emplace_back(); ok = parse_point(value(), holdout.back()); }
    else if (arg == "--bytes") ok = tools::parse_number(value(), bytes) && bytes >= 0;
    else if (arg == "--ints") ok = tools::parse_number(value(), ints) && ints > 0;
    else if (arg == "--tasks") ok = tools::parse_number(value(), tasks) && tasks > 0 && tasks <= 1 << 20;
    else if (arg == "--flops") { flops = std::atof(value().c_str()); ok = flops >= 0.0; }
    else if (arg == "--server") server = value();
    else if (arg == "--threads") ok = tools::parse_number(value(), threads) && threads >= 0;
    else if (arg == "--gate") gate = std::atof(value().c_str());
    else if (arg == "--gate-primitive") gate_primitive = std::atof(value().c_str());
    else if (arg == "--gate-pattern") gate_pattern = std::atof(value().c_str());
    else if (arg == "--json") json = true;
    else {
      std::fprintf(stderr, "pdcmodel: unknown option %s\n", arg.c_str());
      usage(2);
    }
    if (!ok) {
      std::fprintf(stderr, "pdcmodel: bad value for %s\n", arg.c_str());
      usage(2);
    }
  }
  if (mode == Mode::None) {
    std::fprintf(stderr, "pdcmodel: pick one of --fit / --crossval / --compose / --suite\n");
    usage(2);
  }

  try {
    const MeasureTpl measure = server.empty()
                                   ? pdc::model::direct_measure(static_cast<unsigned>(threads))
                                   : daemon_measure(server);
    TrainGrid train;
    train.sizes = sizes;
    train.procs.clear();
    for (std::int64_t p : procs) train.procs.push_back(static_cast<int>(p));

    switch (mode) {
      case Mode::Fit: {
        // --fit is --crossval with the prediction points doubling as the
        // holdout set (none given: report the fit alone).
        const CellReport r = pdc::model::cross_validate_primitive(
            tool, platform, primitive, train, at_points, measure);
        if (json) {
          std::printf("%s\n", pdc::model::to_json(r).c_str());
          break;
        }
        std::printf("%s: %s  (lattice score %.3g, %zu points)\n", r.label.c_str(),
                    r.model.to_string().c_str(), r.model.score, r.model.points);
        print_points(r);
        break;
      }
      case Mode::CrossVal: {
        if (holdout.empty()) {
          std::fprintf(stderr, "pdcmodel: --crossval needs at least one --holdout\n");
          usage(2);
        }
        const CellReport r = pdc::model::cross_validate_primitive(
            tool, platform, primitive, train, holdout, measure);
        if (json) std::printf("%s\n", pdc::model::to_json(r).c_str());
        else {
          std::printf("%s: %s\n", r.label.c_str(), r.model.to_string().c_str());
          print_points(r);
        }
        if (gate >= 0.0 && r.median_rel_err > gate) {
          std::fprintf(stderr, "pdcmodel: median error %.1f%% over gate %.1f%%\n",
                       100.0 * r.median_rel_err, 100.0 * gate);
          return 1;
        }
        break;
      }
      case Mode::Compose: {
        PatternConfig cfg;
        cfg.kind = pattern;
        cfg.bytes = bytes;
        cfg.ints = ints;
        cfg.tasks = static_cast<int>(tasks);
        cfg.flops = flops;
        cfg.procs = train.procs;
        cfg.train = train;
        const CellReport r = pdc::model::cross_validate_pattern(tool, platform, cfg, measure);
        if (json) std::printf("%s\n", pdc::model::to_json(r).c_str());
        else {
          std::printf("%s: %s\n", r.label.c_str(), r.skeleton.c_str());
          print_points(r);
        }
        if (gate >= 0.0 && r.median_rel_err > gate) {
          std::fprintf(stderr, "pdcmodel: median error %.1f%% over gate %.1f%%\n",
                       100.0 * r.median_rel_err, 100.0 * gate);
          return 1;
        }
        break;
      }
      case Mode::Suite: {
        const SuiteReport suite = pdc::model::run_default_suite(measure);
        if (json) std::printf("%s\n", pdc::model::to_json(suite).c_str());
        else {
          for (const CellReport& r : suite.cells) {
            std::printf("%-28s median %5.1f%%  max %5.1f%%", r.label.c_str(),
                        100.0 * r.median_rel_err, 100.0 * r.max_rel_err);
            if (r.median_extrapolated_err > 0.0) {
              std::printf("  extrapolated %5.1f%%", 100.0 * r.median_extrapolated_err);
            }
            std::printf("\n");
          }
          std::printf("worst primitive median %.1f%%  worst pattern median %.1f%%\n",
                      100.0 * suite.worst_primitive_median(),
                      100.0 * suite.worst_pattern_median());
        }
        bool failed = false;
        if (gate_primitive >= 0.0 && suite.worst_primitive_median() > gate_primitive) {
          std::fprintf(stderr, "pdcmodel: worst primitive median %.1f%% over gate %.1f%%\n",
                       100.0 * suite.worst_primitive_median(), 100.0 * gate_primitive);
          failed = true;
        }
        if (gate_pattern >= 0.0 && suite.worst_pattern_median() > gate_pattern) {
          std::fprintf(stderr, "pdcmodel: worst pattern median %.1f%% over gate %.1f%%\n",
                       100.0 * suite.worst_pattern_median(), 100.0 * gate_pattern);
          failed = true;
        }
        if (failed) return 1;
        break;
      }
      case Mode::None: break;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pdcmodel: %s\n", e.what());
    return 1;
  }
  return 0;
}
