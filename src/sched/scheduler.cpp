#include "sched/scheduler.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "fault/faulty_network.hpp"
#include "mp/api.hpp"
#include "mp/communicator.hpp"
#include "mp/profile.hpp"
#include "trace/probe.hpp"

namespace pdc::sched {

namespace {

/// Topology alignment grain: the unit the placer tries not to straddle.
/// Fat-tree leaf pods hold `arity` hosts; dragonfly groups hold 64; every
/// other catalogued fabric is distance-uniform, so alignment buys nothing.
[[nodiscard]] int placement_grain(host::PlatformId platform) noexcept {
  switch (platform) {
    case host::PlatformId::ClusterFatTree: return 16;
    case host::PlatformId::ClusterDragonfly: return 64;
    default: return 1;
  }
}

}  // namespace

Scheduler::Scheduler(sim::Simulation& sim, host::Cluster& cluster, Policy policy)
    : sim_(sim),
      cluster_(cluster),
      policy_(policy),
      lookahead_(cluster.network().lookahead()),
      grain_(placement_grain(cluster.platform())) {
  if (policy_.launch_overhead < sim::Duration::zero()) {
    throw std::invalid_argument("Scheduler: negative launch overhead");
  }
}

Scheduler::~Scheduler() = default;

void Scheduler::submit(JobSpec spec) {
  auto job = std::make_unique<Job>();
  job->stats.id = spec.id;
  job->stats.user = spec.user;
  job->stats.ranks = spec.ranks;
  job->stats.tool = spec.tool;
  job->stats.submit = spec.submit;
  job->spec = std::move(spec);
  jobs_.push_back(std::move(job));
  const std::size_t idx = jobs_.size() - 1;
  sim_.schedule_hub(jobs_.back()->spec.submit, sim::Event{[this, idx] { on_arrival(idx); }});
}

void Scheduler::on_arrival(std::size_t index) {
  Job& job = *jobs_.at(index);
  PDC_TRACE_BLOCK {
    trace::emit({.t_ns = sim_.now().ns,
                 .aux0 = job.spec.ranks,
                 .kind = trace::Kind::SchedSubmit,
                 .rank = static_cast<std::int16_t>(job.spec.user),
                 .tag = job.spec.id});
  }
  if (job.spec.ranks <= 0 || job.spec.ranks > cluster_.size() ||
      job.spec.walltime < sim::Duration::zero()) {
    job.stats.state = JobState::Rejected;
    return;
  }
  queue_.push_back(&job);
  replan();
}

std::int64_t Scheduler::effective_priority(const Job& job, sim::TimePoint now) const noexcept {
  const std::int64_t wait_ns = (now - job.spec.submit).ns;
  // Proportional integer aging (points * wait / 1s), not wait/1s truncated
  // first -- sub-second waits must age too. Fits in 64 bits for any sane
  // aging rate (1e6 pts/s x 1e3 s of wait ~ 1e15).
  const std::int64_t aged = wait_ns > 0 ? policy_.aging_per_sec * wait_ns / 1'000'000'000 : 0;
  return job.spec.priority + aged;
}

sim::Duration Scheduler::reservation_width(const Job& job) const noexcept {
  // A zero-walltime request still holds its nodes for one representable
  // instant, so reservations never degenerate to empty intervals.
  return job.spec.walltime > sim::Duration::zero() ? job.spec.walltime : sim::nanoseconds(1);
}

sim::TimePoint Scheduler::start_time_from(sim::TimePoint now) const noexcept {
  // Launch overhead, floored at the fabric lookahead: in a sharded run the
  // spawn must land beyond the open window, and using the same floor in
  // serial runs keeps start instants identical across PDC_SIM_THREADS.
  const sim::Duration d = policy_.launch_overhead > lookahead_ ? policy_.launch_overhead
                                                               : lookahead_;
  return now + d;
}

int Scheduler::best_base(int ranks, sim::TimePoint at, sim::Duration width,
                         const std::vector<Commitment>& commitments) const {
  // Busy node spans overlapping [at, at + width).
  std::vector<std::pair<int, int>> busy;  // [first, last) node
  const sim::TimePoint end = at + width;
  for (const Commitment& c : commitments) {
    if (c.from < end && c.until > at) busy.emplace_back(c.base, c.base + c.count);
  }
  std::sort(busy.begin(), busy.end());

  int best = -1;
  int best_crossings = 0;
  auto consider = [&](int base) {
    const int crossings = (base + ranks - 1) / grain_ - base / grain_;
    if (best < 0 || crossings < best_crossings) {
      best = base;
      best_crossings = crossings;
    }
  };
  auto scan_gap = [&](int lo, int hi) {
    if (hi - lo < ranks) return;
    consider(lo);
    // First grain-aligned base inside the gap (if distinct and it fits):
    // crossing-minimal without enumerating every base.
    const int aligned = ((lo + grain_ - 1) / grain_) * grain_;
    if (aligned != lo && aligned + ranks <= hi) consider(aligned);
  };

  int cursor = 0;
  for (const auto& [lo, hi] : busy) {
    if (lo > cursor) scan_gap(cursor, lo);
    cursor = std::max(cursor, hi);
  }
  scan_gap(cursor, cluster_.size());
  return best;
}

Scheduler::Placement Scheduler::earliest_fit(
    const Job& job, const std::vector<Commitment>& commitments) const {
  const sim::TimePoint now = sim_.now();
  const sim::Duration width = reservation_width(job);

  // Candidate start times: now, plus every commitment expiry. At the
  // latest expiry the cluster is empty, so the search always terminates
  // with a fit (infeasible sizes were rejected at submit).
  std::vector<sim::TimePoint> candidates{now};
  for (const Commitment& c : commitments) {
    if (c.until > now) candidates.push_back(c.until);
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()), candidates.end());

  for (const sim::TimePoint t : candidates) {
    const int base = best_base(job.spec.ranks, t, width, commitments);
    if (base >= 0) return Placement{t, base};
  }
  return Placement{now, -1};  // unreachable for accepted jobs
}

void Scheduler::replan() {
  if (queue_.empty()) return;
  const sim::TimePoint now = sim_.now();

  // Priority order: aged priority desc, then (submit, id) -- with flat
  // priorities and no aging this is exactly arrival (FIFO) order.
  std::stable_sort(queue_.begin(), queue_.end(), [&](const Job* a, const Job* b) {
    const std::int64_t pa = effective_priority(*a, now);
    const std::int64_t pb = effective_priority(*b, now);
    if (pa != pb) return pa > pb;
    if (a->spec.submit != b->spec.submit) return a->spec.submit < b->spec.submit;
    return a->spec.id < b->spec.id;
  });

  // Commitments start with reality: every running job holds its nodes from
  // now until its requested end (clamped forward when overrunning -- the
  // planner only ever reasons about the future).
  std::vector<Commitment> commitments;
  commitments.reserve(running_.size() + queue_.size());
  for (const Job* r : running_) {
    sim::TimePoint until = r->stats.start + reservation_width(*r);
    if (until <= now) until = now + sim::nanoseconds(1);
    commitments.push_back(Commitment{r->stats.base_node, r->spec.ranks, now, until});
  }

  std::vector<Job*> still_queued;
  bool blocked = false;  // FIFO mode: the first unplaceable job blocks the rest
  for (Job* j : queue_) {
    if (blocked) {
      still_queued.push_back(j);
      continue;
    }
    const Placement p = earliest_fit(*j, commitments);
    if (p.base >= 0 && p.at == now) {
      launch(*j, p.base);
      commitments.push_back(
          Commitment{p.base, j->spec.ranks, now, now + reservation_width(*j)});
    } else if (policy_.backfill && p.base >= 0) {
      // Conservative reservation: later (lower-priority) jobs must plan
      // around it, so they can only fill gaps -- never delay this job.
      commitments.push_back(
          Commitment{p.base, j->spec.ranks, p.at, p.at + reservation_width(*j)});
      still_queued.push_back(j);
    } else {
      blocked = !policy_.backfill;
      still_queued.push_back(j);
    }
  }
  queue_ = std::move(still_queued);
}

void Scheduler::launch(Job& job, int base) {
  // The planner's decision is re-checked against reality: a placement may
  // never overlap a job that actually holds nodes, whatever the estimates
  // said. This makes the no-overlap invariant unconditional.
  for (const Job* r : running_) {
    if (base < r->stats.base_node + r->spec.ranks && r->stats.base_node < base + job.spec.ranks) {
      throw std::logic_error("Scheduler::launch: placement overlaps running job " +
                             std::to_string(r->spec.id));
    }
  }
  const sim::TimePoint now = sim_.now();
  const sim::TimePoint start = start_time_from(now);
  job.stats.state = JobState::Running;
  job.stats.base_node = base;
  job.stats.start = start;
  job.remaining = job.spec.ranks;
  job.runtime = std::make_unique<mp::Runtime>(
      cluster_, job.spec.tool, mp::tool_profile(job.spec.tool, cluster_.platform()),
      mp::NodeRange{base, job.spec.ranks});
  running_.push_back(&job);
  PDC_TRACE_BLOCK {
    trace::emit({.t_ns = now.ns,
                 .aux0 = base,
                 .aux1 = job.spec.ranks,
                 .kind = trace::Kind::SchedPlace,
                 .rank = static_cast<std::int16_t>(job.spec.user),
                 .tag = job.spec.id});
    trace::emit({.t_ns = start.ns,
                 .aux0 = base,
                 .kind = trace::Kind::SchedStart,
                 .rank = static_cast<std::int16_t>(job.spec.user),
                 .tag = job.spec.id});
  }
  for (int r = 0; r < job.spec.ranks; ++r) {
    sim_.spawn_on_at(base + r, start, job_rank(job, r),
                     "sched.job" + std::to_string(job.spec.id) + ".rank" + std::to_string(r));
  }
}

sim::Task<void> Scheduler::job_rank(Job& job, int rank) {
  co_await job.spec.program(job.runtime->comm(rank));
  // Completion bookkeeping belongs to the hub domain (it mutates scheduler
  // state and may launch onto other shards). hub_inline runs it at this
  // event's exact position in the global order -- and must stay the last
  // push this coroutine makes.
  sim_.schedule_hub_inline(sim::Event{[this, j = &job] { rank_finished(*j); }});
}

void Scheduler::rank_finished(Job& job) {
  if (--job.remaining > 0) return;
  job.stats.state = JobState::Completed;
  job.stats.complete = sim_.now();
  PDC_TRACE_BLOCK {
    trace::emit({.t_ns = job.stats.complete.ns,
                 .aux0 = job.stats.start.ns,
                 .aux1 = job.spec.ranks,
                 .kind = trace::Kind::SchedComplete,
                 .rank = static_cast<std::int16_t>(job.spec.user),
                 .tag = job.spec.id});
  }
  running_.erase(std::find(running_.begin(), running_.end(), &job));
  replan();
}

int Scheduler::unfinished() const noexcept {
  int n = 0;
  for (const auto& j : jobs_) {
    n += j->stats.state == JobState::Queued || j->stats.state == JobState::Running;
  }
  return n;
}

ScheduleOutcome Scheduler::harvest() const {
  ScheduleOutcome out;
  out.jobs.reserve(jobs_.size());

  sim::TimePoint last_complete = sim::TimePoint::origin();
  std::int64_t busy_node_ns = 0;
  // Per-user bounded-slowdown sums, keyed by user id (sorted for
  // deterministic iteration; user ids are small ints).
  std::vector<std::pair<int, std::pair<double, int>>> users;  // user -> (sum, n)
  auto user_slot = [&](int user) -> std::pair<double, int>& {
    for (auto& [u, acc] : users) {
      if (u == user) return acc;
    }
    users.emplace_back(user, std::pair<double, int>{0.0, 0});
    return users.back().second;
  };

  for (const auto& j : jobs_) {
    JobStats stats = j->stats;
    if (j->runtime) {
      for (int r = 0; r < j->spec.ranks; ++r) stats.transport += j->runtime->transport_stats(r);
      out.messages += j->runtime->messages_sent();
      out.payload_bytes += j->runtime->payload_bytes_sent();
      out.transport += stats.transport;
    }
    switch (stats.state) {
      case JobState::Completed: {
        ++out.completed;
        last_complete = std::max(last_complete, stats.complete);
        busy_node_ns += static_cast<std::int64_t>(stats.ranks) * stats.run_time().ns;
        auto& [sum, n] = user_slot(stats.user);
        sum += stats.bounded_slowdown();
        ++n;
        break;
      }
      case JobState::Rejected:
        ++out.rejected;
        break;
      default:
        break;
    }
    out.jobs.push_back(std::move(stats));
  }

  out.makespan = last_complete - sim::TimePoint::origin();
  if (out.makespan > sim::Duration::zero() && cluster_.size() > 0) {
    out.utilization = static_cast<double>(busy_node_ns) /
                      (static_cast<double>(cluster_.size()) *
                       static_cast<double>(out.makespan.ns));
  }

  // Jain fairness over per-user mean bounded slowdown: 1 when every user
  // sees the same service quality, 1/n when one user absorbs all the wait.
  std::sort(users.begin(), users.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  double sum = 0.0, sum_sq = 0.0;
  int n = 0;
  for (const auto& [u, acc] : users) {
    if (acc.second == 0) continue;
    const double mean = acc.first / acc.second;
    sum += mean;
    sum_sq += mean * mean;
    ++n;
  }
  if (n > 0 && sum_sq > 0.0) out.fairness = (sum * sum) / (n * sum_sq);
  return out;
}

ScheduleOutcome run_schedule(const ScheduleConfig& config, std::vector<JobSpec> jobs) {
  sim::Simulation simulation;
  host::Cluster cluster(simulation, config.platform, config.nodes);
  fault::FaultyNetwork* wire = nullptr;
  if (config.faults.enabled()) {
    auto faulty =
        std::make_unique<fault::FaultyNetwork>(simulation, cluster.take_network(), config.faults);
    wire = faulty.get();
    cluster.install_network(std::move(faulty));
  }

  int want = mp::sim_threads();
  PDC_TRACE_BLOCK {
    // Captured streams record the serial order; keep them bit-identical.
    want = 1;
  }
  if (want > 1) {
    simulation.configure_shards(want, config.nodes, cluster.network().lookahead());
  }

  Scheduler scheduler(simulation, cluster, config.policy);
  std::sort(jobs.begin(), jobs.end(), [](const JobSpec& a, const JobSpec& b) {
    return a.submit != b.submit ? a.submit < b.submit : a.id < b.id;
  });
  for (JobSpec& j : jobs) scheduler.submit(std::move(j));
  simulation.run();

  ScheduleOutcome out = scheduler.harvest();
  out.events = simulation.events_processed();
  if (wire) out.injected = wire->stats();
  return out;
}

}  // namespace pdc::sched
