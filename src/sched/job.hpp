// pdceval -- multi-tenant scheduler job model.
//
// A JobSpec is pure data plus the rank program the job will run once
// placed: who submitted it, when, how many contiguous nodes it wants, how
// long it promises to hold them (the walltime request the conservative
// backfill planner reserves against), and which tool runtime to build for
// it. Everything the planner orders on is integer state, so schedules are
// bit-reproducible from (workload, policy, platform) alone.
#pragma once

#include <cstdint>

#include "mp/api.hpp"
#include "mp/tool.hpp"
#include "sim/time.hpp"

namespace pdc::sched {

using JobId = std::int32_t;

enum class JobState : std::uint8_t {
  Queued,     ///< submitted, waiting for a placement
  Running,    ///< placed; rank programs launched
  Completed,  ///< every rank finished
  Rejected,   ///< infeasible request (e.g. more ranks than the cluster has)
};

[[nodiscard]] constexpr const char* to_string(JobState s) noexcept {
  switch (s) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Completed: return "completed";
    case JobState::Rejected: return "rejected";
  }
  return "?";
}

/// One job of the open-loop arrival stream. `walltime` is the *requested*
/// reservation width (real schedulers would kill at walltime; here an
/// overrunning job simply keeps its nodes until its ranks finish -- the
/// planner re-reserves around reality at every event, and the launch-time
/// overlap check makes the no-overlap invariant unconditional).
struct JobSpec {
  JobId id{0};
  int user{0};
  sim::TimePoint submit{};
  int ranks{1};
  sim::Duration walltime{};
  std::int64_t priority{0};  ///< base priority; higher runs earlier
  mp::ToolKind tool{mp::ToolKind::P4};
  mp::RankProgram program;
};

/// Scheduling policy knobs. Defaults give priority-ordered conservative
/// backfill with no aging; `backfill = false` degrades to strict FIFO
/// (the first unplaceable job blocks everything behind it).
struct Policy {
  bool backfill{true};
  /// Priority points added per queued second (integer maths:
  /// `priority + aging_per_sec * wait_ns / 1e9`). Zero disables aging; a
  /// positive value bounds starvation -- any queued job eventually outranks
  /// a stream of high-base-priority arrivals.
  std::int64_t aging_per_sec{0};
  /// Simulated cost of launching a placed job (fork/exec, tool start-up).
  /// The effective start delay is max(launch_overhead, network lookahead)
  /// so serial and sharded runs launch at identical instants.
  sim::Duration launch_overhead{sim::microseconds(50)};
};

/// Per-job outcome record, filled in as the job moves through the states.
struct JobStats {
  JobId id{0};
  int user{0};
  int ranks{0};
  int base_node{-1};  ///< first node of the contiguous placement (-1: never placed)
  mp::ToolKind tool{mp::ToolKind::P4};
  JobState state{JobState::Queued};
  sim::TimePoint submit{};
  sim::TimePoint start{};     ///< rank programs began (includes launch overhead)
  sim::TimePoint complete{};  ///< last rank finished
  mp::TransportStats transport{};  ///< reliability work summed over the job's ranks

  [[nodiscard]] sim::Duration queue_wait() const noexcept { return start - submit; }
  [[nodiscard]] sim::Duration run_time() const noexcept { return complete - start; }

  /// Bounded slowdown: max(1, (wait + run) / max(run, bound)). The bound
  /// keeps near-zero-duration jobs from dominating means, and the outer
  /// clamp keeps a short job that never waited at exactly 1 (Feitelson's
  /// convention).
  [[nodiscard]] double bounded_slowdown(
      sim::Duration bound = sim::milliseconds(1)) const noexcept {
    const double run_ns = static_cast<double>(run_time().ns);
    const double denom =
        run_ns > static_cast<double>(bound.ns) ? run_ns : static_cast<double>(bound.ns);
    if (denom <= 0.0) return 1.0;
    const double s = (static_cast<double>(queue_wait().ns) + run_ns) / denom;
    return s > 1.0 ? s : 1.0;
  }
};

}  // namespace pdc::sched
