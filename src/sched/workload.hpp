// pdceval -- seeded open-loop workload generation for the scheduler.
//
// Arrivals are a Poisson process (exponential interarrivals) drawn from a
// named substream of the base seed; template choice and user assignment
// draw from their own named substreams, so enabling or reordering one
// consumer never shifts the draws of another (the same discipline as fault
// injection). A WorkloadSpec plus a seed fully determines the job list.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sched/job.hpp"

namespace pdc::sched {

/// One job shape the generator can emit. `weight` sets the relative draw
/// probability within the mix.
struct JobTemplate {
  std::string name;
  mp::ToolKind tool{mp::ToolKind::P4};
  int ranks{1};
  sim::Duration walltime{};
  std::int64_t priority{0};
  double weight{1.0};
  mp::RankProgram program;
};

struct WorkloadSpec {
  std::uint64_t seed{1};
  double arrival_rate_hz{50.0};  ///< mean job arrivals per simulated second
  int njobs{16};
  int users{4};
  std::vector<JobTemplate> templates;
};

/// Generate `spec.njobs` jobs with ids 0..njobs-1 in arrival order.
/// Non-positive rates collapse every arrival to t=0 (a submission burst).
[[nodiscard]] std::vector<JobSpec> generate_workload(const WorkloadSpec& spec);

}  // namespace pdc::sched
