// pdceval -- deterministic multi-tenant cluster scheduler.
//
// The Scheduler is a hub-domain actor layered on the simulation kernel: job
// arrivals are hub events, placement decisions happen on the (serially
// replayed) hub, and per-rank completion notifications ride
// schedule_hub_inline so scheduler state mutates at the exact position the
// serial loop would -- schedules are bit-identical across PDC_SIM_THREADS.
//
// Placement model: every job gets a *contiguous* slice [base, base+ranks)
// of the cluster's nodes (a mp::NodeRange), so a node hosts at most one job
// at a time and concurrent jobs interact only through the shared fabric --
// link contention emerges from the network models rather than being
// asserted. The planner is FIFO with optional conservative backfill:
// queued jobs are considered in priority order (base + aging), each either
// launches now or (under backfill) books a reservation against the
// commitments of everything ahead of it, so backfilled jobs can never push
// the head job's planned start later. Bases are chosen
// topology-aware: among feasible gaps at the earliest feasible time, the
// planner prefers placements crossing the fewest topology grains (fat-tree
// pod / dragonfly group), then the lowest base.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fault/plan.hpp"
#include "host/platform.hpp"
#include "mp/runtime.hpp"
#include "sched/job.hpp"
#include "sim/simulation.hpp"
#include "sim/task.hpp"

namespace pdc::sched {

/// Aggregate outcome of one scheduled run.
struct ScheduleOutcome {
  std::vector<JobStats> jobs;  ///< submission order
  sim::Duration makespan{};    ///< last completion (origin-relative)
  double utilization{0.0};     ///< node-seconds used / (cluster x makespan)
  double fairness{1.0};        ///< Jain index over per-user mean bounded slowdown
  int completed{0};
  int rejected{0};
  std::uint64_t events{0};
  std::uint64_t messages{0};
  std::uint64_t payload_bytes{0};
  mp::TransportStats transport{};
  fault::InjectionStats injected{};
};

class Scheduler {
 public:
  /// The cluster must outlive the scheduler; its network must already be
  /// in final shape (fault decorators installed) -- job runtimes cache the
  /// wire's reliability at launch.
  Scheduler(sim::Simulation& sim, host::Cluster& cluster, Policy policy);
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Register a job; its arrival is scheduled as a hub event at
  /// `spec.submit`. Call before Simulation::run(), in (submit, id) order so
  /// same-instant arrivals enqueue deterministically.
  void submit(JobSpec spec);

  /// Harvest per-job stats and schedule-level metrics after run(). The
  /// caller layers on driver-level counters (events, injected faults).
  [[nodiscard]] ScheduleOutcome harvest() const;

  /// Queued-or-running job count (diagnostics; conservation checks).
  [[nodiscard]] int unfinished() const noexcept;

 private:
  struct Job {
    JobSpec spec;
    JobStats stats;
    std::unique_ptr<mp::Runtime> runtime;  ///< created at launch
    int remaining{0};                      ///< ranks still running
  };

  /// One occupied-or-reserved span of nodes over a time interval.
  struct Commitment {
    int base{0};
    int count{0};
    sim::TimePoint from{};
    sim::TimePoint until{};
  };

  /// A feasible placement: earliest start plus the chosen base.
  struct Placement {
    sim::TimePoint at{};
    int base{-1};
  };

  void on_arrival(std::size_t index);
  void rank_finished(Job& job);
  void replan();
  void launch(Job& job, int base);
  sim::Task<void> job_rank(Job& job, int rank);

  /// Earliest (time, base) at which `job` fits against `commitments`
  /// (running jobs plus reservations booked so far this replan). `base < 0`
  /// when the job can never fit (callers reject such jobs at submit).
  [[nodiscard]] Placement earliest_fit(const Job& job,
                                       const std::vector<Commitment>& commitments) const;
  /// Best base for `job` over window [at, at+width) against `commitments`,
  /// or -1. Prefers fewest grain crossings, then lowest base.
  [[nodiscard]] int best_base(int ranks, sim::TimePoint at, sim::Duration width,
                              const std::vector<Commitment>& commitments) const;

  [[nodiscard]] std::int64_t effective_priority(const Job& job, sim::TimePoint now) const noexcept;
  [[nodiscard]] sim::Duration reservation_width(const Job& job) const noexcept;
  [[nodiscard]] sim::TimePoint start_time_from(sim::TimePoint now) const noexcept;

  sim::Simulation& sim_;
  host::Cluster& cluster_;
  Policy policy_;
  sim::Duration lookahead_{};  ///< cached: the fabric's cross-rank latency floor
  int grain_{1};               ///< topology alignment grain (pod / group size)
  std::vector<std::unique_ptr<Job>> jobs_;  ///< submission order; stable addresses
  std::vector<Job*> queue_;                 ///< arrived, not yet placed
  std::vector<Job*> running_;               ///< placed, ranks still active
};

/// Driver configuration for run_schedule().
struct ScheduleConfig {
  host::PlatformId platform{host::PlatformId::ClusterFlat};
  int nodes{64};
  Policy policy{};
  fault::FaultPlan faults{};  ///< disabled by default (bit-identical to fault-free)
};

/// Build a cluster, wrap its wire if `config.faults` is armed, shard the
/// event loop when PDC_SIM_THREADS asks for it, run every job to
/// completion and aggregate the outcome. `jobs` need not be sorted.
[[nodiscard]] ScheduleOutcome run_schedule(const ScheduleConfig& config,
                                           std::vector<JobSpec> jobs);

}  // namespace pdc::sched
