#include "sched/workload.hpp"

#include <cmath>
#include <stdexcept>

#include "sim/rng.hpp"

namespace pdc::sched {

std::vector<JobSpec> generate_workload(const WorkloadSpec& spec) {
  if (spec.templates.empty()) {
    throw std::invalid_argument("generate_workload: empty template mix");
  }
  double total_weight = 0.0;
  for (const JobTemplate& t : spec.templates) total_weight += t.weight;
  if (total_weight <= 0.0) {
    throw std::invalid_argument("generate_workload: non-positive total weight");
  }

  sim::Rng arrivals(sim::named_stream(spec.seed, "pdc.sched.arrivals"));
  sim::Rng mix(sim::named_stream(spec.seed, "pdc.sched.mix"));
  sim::Rng assign(sim::named_stream(spec.seed, "pdc.sched.user"));

  std::vector<JobSpec> jobs;
  jobs.reserve(static_cast<std::size_t>(spec.njobs));
  sim::TimePoint t = sim::TimePoint::origin();
  for (int i = 0; i < spec.njobs; ++i) {
    if (spec.arrival_rate_hz > 0.0) {
      // Exponential interarrival; 1 - u keeps the argument strictly
      // positive (next_double() is in [0, 1)).
      const double u = arrivals.next_double();
      t = t + sim::from_seconds(-std::log(1.0 - u) / spec.arrival_rate_hz);
    }
    double pick = mix.next_double() * total_weight;
    std::size_t chosen = 0;
    for (std::size_t k = 0; k < spec.templates.size(); ++k) {
      pick -= spec.templates[k].weight;
      if (pick < 0.0) {
        chosen = k;
        break;
      }
    }
    const JobTemplate& tmpl = spec.templates[chosen];
    const int user =
        spec.users > 0 ? static_cast<int>(assign.uniform(0, static_cast<std::uint64_t>(
                                                                spec.users - 1)))
                       : 0;
    jobs.push_back(JobSpec{.id = i,
                           .user = user,
                           .submit = t,
                           .ranks = tmpl.ranks,
                           .walltime = tmpl.walltime,
                           .priority = tmpl.priority,
                           .tool = tmpl.tool,
                           .program = tmpl.program});
  }
  return jobs;
}

}  // namespace pdc::sched
