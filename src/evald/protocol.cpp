#include "evald/protocol.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "mp/checksum.hpp"

namespace pdc::evald {

namespace {

void put_u32(std::vector<std::byte>& buf, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf.push_back(static_cast<std::byte>(v >> (8 * i)));
}
void put_u64(std::vector<std::byte>& buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf.push_back(static_cast<std::byte>(v >> (8 * i)));
}
void put_bytes(std::vector<std::byte>& buf, std::span<const std::byte> bytes) {
  put_u32(buf, static_cast<std::uint32_t>(bytes.size()));
  buf.insert(buf.end(), bytes.begin(), bytes.end());
}

// Cursor over a received payload; fails sticky on overrun.
struct Cursor {
  std::span<const std::byte> bytes;
  std::size_t pos{0};
  bool fail{false};

  std::uint8_t u8() {
    if (pos >= bytes.size()) {
      fail = true;
      return 0;
    }
    return static_cast<std::uint8_t>(bytes[pos++]);
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(u8()) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(u8()) << (8 * i);
    return v;
  }
  std::span<const std::byte> blob() {
    const std::uint32_t n = u32();
    if (fail || bytes.size() - pos < n) {
      fail = true;
      return {};
    }
    const auto out = bytes.subspan(pos, n);
    pos += n;
    return out;
  }
  [[nodiscard]] bool done() const { return !fail && pos == bytes.size(); }
};

bool write_all(int fd, const std::byte* data, std::size_t len) {
  while (len > 0) {
    // MSG_NOSIGNAL: a vanished peer surfaces as EPIPE, not a process kill.
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Read exactly `len` bytes; 1 = ok, 0 = clean EOF before any byte,
/// -1 = EOF/error mid-read.
int read_all(int fd, std::byte* data, std::size_t len) {
  bool any = false;
  while (len > 0) {
    const ssize_t n = ::recv(fd, data, len, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (n == 0) return any ? -1 : 0;
    any = true;
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return 1;
}

}  // namespace

const char* to_string(FrameStatus s) {
  switch (s) {
    case FrameStatus::Ok: return "ok";
    case FrameStatus::Eof: return "eof";
    case FrameStatus::Truncated: return "truncated frame";
    case FrameStatus::TooLong: return "length prefix too long";
    case FrameStatus::BadCrc: return "crc mismatch";
    case FrameStatus::IoError: return "io error";
  }
  return "?";
}

bool write_frame(int fd, std::span<const std::byte> payload) {
  // Enforce the cap on the writing side too: a frame the reader would
  // reject (or, above 4 GiB, one whose length prefix would silently
  // truncate) must never reach the wire.
  if (payload.size() > kMaxFramePayload) return false;
  std::vector<std::byte> buf;
  buf.reserve(payload.size() + 8);
  put_u32(buf, static_cast<std::uint32_t>(payload.size()));
  buf.insert(buf.end(), payload.begin(), payload.end());
  put_u32(buf, mp::crc32(payload));
  return write_all(fd, buf.data(), buf.size());
}

FrameStatus read_frame(int fd, std::vector<std::byte>& payload) {
  std::byte prefix[4];
  const int head = read_all(fd, prefix, 4);
  if (head == 0) return FrameStatus::Eof;
  if (head < 0) return FrameStatus::Truncated;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<std::uint32_t>(prefix[i]) << (8 * i);
  if (len > kMaxFramePayload) return FrameStatus::TooLong;

  payload.assign(len, std::byte{0});
  if (len > 0 && read_all(fd, payload.data(), len) != 1) return FrameStatus::Truncated;
  std::byte trailer[4];
  if (read_all(fd, trailer, 4) != 1) return FrameStatus::Truncated;
  std::uint32_t crc = 0;
  for (int i = 0; i < 4; ++i) crc |= static_cast<std::uint32_t>(trailer[i]) << (8 * i);
  if (crc != mp::crc32({payload.data(), payload.size()})) return FrameStatus::BadCrc;
  return FrameStatus::Ok;
}

std::vector<std::byte> encode_ping() {
  return {static_cast<std::byte>(MsgType::Ping)};
}
std::vector<std::byte> encode_pong() {
  return {static_cast<std::byte>(MsgType::Pong)};
}

std::vector<std::byte> encode_lookup(const LookupRequest& req) {
  std::vector<std::byte> buf;
  buf.push_back(static_cast<std::byte>(MsgType::Lookup));
  buf.push_back(static_cast<std::byte>(req.warm ? 1 : 0));
  put_u32(buf, static_cast<std::uint32_t>(req.specs.size()));
  for (const eval::CellSpec& spec : req.specs) put_bytes(buf, eval::encode_spec(spec));
  return buf;
}

std::optional<LookupRequest> decode_lookup(std::span<const std::byte> payload) {
  Cursor c{payload};
  if (c.u8() != static_cast<std::uint8_t>(MsgType::Lookup)) return std::nullopt;
  LookupRequest req;
  req.warm = c.u8() != 0;
  const std::uint32_t count = c.u32();
  if (c.fail || count > (1u << 20)) return std::nullopt;
  req.specs.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto blob = c.blob();
    if (c.fail) return std::nullopt;
    auto spec = eval::decode_spec(blob);
    if (!spec) return std::nullopt;
    req.specs.push_back(std::move(*spec));
  }
  if (!c.done()) return std::nullopt;
  return req;
}

std::vector<std::byte> encode_lookup_reply(const LookupReply& reply) {
  std::vector<std::byte> buf;
  buf.push_back(static_cast<std::byte>(MsgType::LookupReply));
  put_u32(buf, static_cast<std::uint32_t>(reply.items.size()));
  for (const LookupReply::Item& item : reply.items) {
    buf.push_back(static_cast<std::byte>(item.origin));
    put_bytes(buf, item.result);
  }
  return buf;
}

std::optional<LookupReply> decode_lookup_reply(std::span<const std::byte> payload) {
  Cursor c{payload};
  if (c.u8() != static_cast<std::uint8_t>(MsgType::LookupReply)) return std::nullopt;
  LookupReply reply;
  const std::uint32_t count = c.u32();
  if (c.fail || count > (1u << 20)) return std::nullopt;
  reply.items.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    LookupReply::Item item;
    const std::uint8_t origin = c.u8();
    if (origin > 2) return std::nullopt;
    item.origin = static_cast<Origin>(origin);
    const auto blob = c.blob();
    if (c.fail) return std::nullopt;
    item.result.assign(blob.begin(), blob.end());
    reply.items.push_back(std::move(item));
  }
  if (!c.done()) return std::nullopt;
  return reply;
}

std::vector<std::byte> encode_stats_request() {
  return {static_cast<std::byte>(MsgType::Stats)};
}

std::vector<std::byte> encode_stats_reply(const DaemonStats& stats) {
  std::vector<std::byte> buf;
  buf.push_back(static_cast<std::byte>(MsgType::StatsReply));
  put_u64(buf, stats.entries);
  put_u64(buf, stats.negative_entries);
  put_u64(buf, stats.hits);
  put_u64(buf, stats.negative_hits);
  put_u64(buf, stats.misses);
  put_u64(buf, stats.inserts);
  put_u64(buf, stats.invalidated);
  put_u64(buf, stats.log_bytes);
  put_u64(buf, stats.recovered);
  put_u64(buf, stats.requests);
  put_u64(buf, stats.cells_served);
  put_u64(buf, stats.cells_computed);
  put_u64(buf, stats.connections);
  put_u64(buf, stats.frame_errors);
  put_u64(buf, stats.model_version);
  return buf;
}

std::optional<DaemonStats> decode_stats_reply(std::span<const std::byte> payload) {
  Cursor c{payload};
  if (c.u8() != static_cast<std::uint8_t>(MsgType::StatsReply)) return std::nullopt;
  DaemonStats s;
  s.entries = c.u64();
  s.negative_entries = c.u64();
  s.hits = c.u64();
  s.negative_hits = c.u64();
  s.misses = c.u64();
  s.inserts = c.u64();
  s.invalidated = c.u64();
  s.log_bytes = c.u64();
  s.recovered = c.u64();
  s.requests = c.u64();
  s.cells_served = c.u64();
  s.cells_computed = c.u64();
  s.connections = c.u64();
  s.frame_errors = c.u64();
  s.model_version = c.u64();
  if (!c.done()) return std::nullopt;
  return s;
}

std::vector<std::byte> encode_invalidate(const InvalidateRequest& req) {
  std::vector<std::byte> buf;
  buf.push_back(static_cast<std::byte>(MsgType::Invalidate));
  buf.push_back(static_cast<std::byte>(req.all ? 1 : 0));
  if (!req.all) put_bytes(buf, eval::encode_spec(req.spec));
  return buf;
}

std::optional<InvalidateRequest> decode_invalidate(std::span<const std::byte> payload) {
  Cursor c{payload};
  if (c.u8() != static_cast<std::uint8_t>(MsgType::Invalidate)) return std::nullopt;
  InvalidateRequest req;
  req.all = c.u8() != 0;
  if (!req.all) {
    const auto blob = c.blob();
    if (c.fail) return std::nullopt;
    auto spec = eval::decode_spec(blob);
    if (!spec) return std::nullopt;
    req.spec = std::move(*spec);
  }
  if (!c.done()) return std::nullopt;
  return req;
}

std::vector<std::byte> encode_invalidate_reply(std::uint64_t removed) {
  std::vector<std::byte> buf;
  buf.push_back(static_cast<std::byte>(MsgType::InvalidateReply));
  put_u64(buf, removed);
  return buf;
}

std::optional<std::uint64_t> decode_invalidate_reply(std::span<const std::byte> payload) {
  Cursor c{payload};
  if (c.u8() != static_cast<std::uint8_t>(MsgType::InvalidateReply)) return std::nullopt;
  const std::uint64_t removed = c.u64();
  if (!c.done()) return std::nullopt;
  return removed;
}

std::vector<std::byte> encode_error(const std::string& text) {
  std::vector<std::byte> buf;
  buf.push_back(static_cast<std::byte>(MsgType::Error));
  put_u32(buf, static_cast<std::uint32_t>(text.size()));
  for (char ch : text) buf.push_back(static_cast<std::byte>(ch));
  return buf;
}

std::optional<std::string> decode_error(std::span<const std::byte> payload) {
  Cursor c{payload};
  if (c.u8() != static_cast<std::uint8_t>(MsgType::Error)) return std::nullopt;
  const auto blob = c.blob();
  if (c.fail || !c.done()) return std::nullopt;
  std::string text(blob.size(), '\0');
  if (!blob.empty()) std::memcpy(text.data(), blob.data(), blob.size());
  return text;
}

std::optional<MsgType> peek_type(std::span<const std::byte> payload) {
  if (payload.empty()) return std::nullopt;
  const auto t = static_cast<std::uint8_t>(payload[0]);
  if (t < 1 || t > 9) return std::nullopt;
  return static_cast<MsgType>(t);
}

}  // namespace pdc::evald
