// pdcevald -- the evaluation-as-a-service daemon.
//
// A long-running server on a Unix-domain socket holding one
// content-addressed Store. Each connection gets its own thread reading
// CRC-framed requests; lookups are served straight from the store (the
// >10^5 lookups/s hot path is hash + probe + byte-compare + reply), and a
// batch's misses are simulated together on the existing eval::WorkerPool
// via eval::parallel_for_index -- a sweep with mixed hit/miss cells only
// simulates the misses, and results merge back in deterministic cell
// order because every reply slot is written at the request's own index.
//
// Framing errors (oversized prefix, truncation, CRC mismatch) close the
// connection cleanly without touching the store or other clients; the
// daemon keeps serving new connections.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "evald/protocol.hpp"
#include "evald/store.hpp"

namespace pdc::evald {

struct ServerConfig {
  std::string socket_path;    ///< Unix-domain socket to bind
  std::string store_path;     ///< persistent store file; empty = in-memory
  std::uint64_t model_version{eval::kModelVersion};
};

class Server {
 public:
  /// Binds and listens immediately; throws std::runtime_error when the
  /// socket or store cannot be set up.
  explicit Server(ServerConfig config);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Start accepting connections (returns immediately).
  void start();

  /// Stop accepting, close every live connection, join all threads.
  /// Idempotent; also run by the destructor.
  void stop();

  [[nodiscard]] const std::string& socket_path() const noexcept {
    return config_.socket_path;
  }
  [[nodiscard]] DaemonStats stats() const;
  [[nodiscard]] Store& store() noexcept { return *store_; }

 private:
  struct Connection {
    int fd{-1};
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void serve(Connection& conn);
  /// Handle one decoded request; false closes the connection.
  [[nodiscard]] bool handle(int fd, const std::vector<std::byte>& payload);
  [[nodiscard]] LookupReply run_lookup(const LookupRequest& request);
  void reap_finished_locked();

  ServerConfig config_;
  std::unique_ptr<Store> store_;
  int listen_fd_{-1};
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  std::mutex conns_mu_;
  std::vector<std::unique_ptr<Connection>> conns_;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> cells_served_{0};
  std::atomic<std::uint64_t> cells_computed_{0};
  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> frame_errors_{0};
};

}  // namespace pdc::evald
