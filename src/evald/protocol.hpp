// pdcevald -- length-prefixed, CRC32-framed socket protocol.
//
// Every message travels as one frame:
//
//   u32 payload_len (LE) | payload bytes | u32 crc32(payload) (LE)
//
// reusing the reliable transport's CRC32 (mp/checksum.hpp) so a flipped
// bit anywhere in the payload is rejected exactly as the simulated NICs
// reject corrupted frames. A reader that sees an oversized length prefix,
// a truncated frame or a CRC mismatch stops trusting the stream and
// closes the connection -- there is no resynchronisation, reconnecting is
// the recovery path (tests pin zero-length payloads, the maximum length
// prefix, truncation and corruption).
//
// Payload layout: u8 message type, then the type's body, encoded with the
// same fixed-width little-endian primitives as the cell codec.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "eval/cell.hpp"

namespace pdc::evald {

/// Frames above this are a protocol violation (a sweep of ~100k specs
/// still fits comfortably); the reader rejects the prefix before
/// allocating, and the writer refuses to send one. This bounds a batch in
/// BOTH directions: the lookup reply carries every result for the batch
/// in one frame, so a batch whose encoded reply would exceed the cap is
/// answered with an Error frame -- split such sweeps into smaller
/// batches (the computed cells are already cached, so a retry is cheap).
inline constexpr std::uint32_t kMaxFramePayload = 32u << 20;

enum class FrameStatus : std::uint8_t {
  Ok = 0,
  Eof,        ///< peer closed cleanly between frames
  Truncated,  ///< stream ended mid-frame
  TooLong,    ///< length prefix above kMaxFramePayload
  BadCrc,     ///< payload bytes do not match the trailer CRC
  IoError,    ///< read/write syscall failure
};
[[nodiscard]] const char* to_string(FrameStatus s);

/// Write one frame to `fd`; false on I/O failure (peer gone) or when the
/// payload exceeds kMaxFramePayload (nothing is sent).
[[nodiscard]] bool write_frame(int fd, std::span<const std::byte> payload);

/// Read one frame from `fd` into `payload` (replaced). Anything but Ok
/// means the stream is unusable and should be closed.
[[nodiscard]] FrameStatus read_frame(int fd, std::vector<std::byte>& payload);

// -- messages ---------------------------------------------------------------

enum class MsgType : std::uint8_t {
  Ping = 1,
  Pong = 2,
  Lookup = 3,        ///< client -> server: batch of cell specs
  LookupReply = 4,   ///< server -> client: per-cell origin + result bytes
  Stats = 5,
  StatsReply = 6,
  Invalidate = 7,    ///< whole store or one spec
  InvalidateReply = 8,
  Error = 9,         ///< server -> client: request-level failure text
};

/// Where a served result came from. Mixed sweeps report per cell, so a
/// client can assert cache behaviour (the CI smoke does).
enum class Origin : std::uint8_t {
  Cache = 0,        ///< positive cache hit
  Computed = 1,     ///< miss -- simulated on the daemon's worker pool
  NegativeCache = 2 ///< memoized failure served without re-simulating
};

struct LookupRequest {
  bool warm{false};  ///< execute misses but reply with origins only
  std::vector<eval::CellSpec> specs;
};

struct LookupReply {
  struct Item {
    Origin origin{Origin::Cache};
    std::vector<std::byte> result;  ///< encoded CellResult; empty when warm
  };
  std::vector<Item> items;  ///< request order
};

/// Daemon-level counters (store stats plus request accounting).
struct DaemonStats {
  std::uint64_t entries{0};
  std::uint64_t negative_entries{0};
  std::uint64_t hits{0};
  std::uint64_t negative_hits{0};
  std::uint64_t misses{0};
  std::uint64_t inserts{0};
  std::uint64_t invalidated{0};
  std::uint64_t log_bytes{0};
  std::uint64_t recovered{0};
  std::uint64_t requests{0};
  std::uint64_t cells_served{0};
  std::uint64_t cells_computed{0};
  std::uint64_t connections{0};
  std::uint64_t frame_errors{0};
  std::uint64_t model_version{0};
};

struct InvalidateRequest {
  bool all{true};
  eval::CellSpec spec{};  ///< when !all
};

// Encoders produce the full payload (type byte + body); decoders expect
// exactly that and return nullopt on any malformed input.
[[nodiscard]] std::vector<std::byte> encode_ping();
[[nodiscard]] std::vector<std::byte> encode_pong();
[[nodiscard]] std::vector<std::byte> encode_lookup(const LookupRequest& req);
[[nodiscard]] std::vector<std::byte> encode_lookup_reply(const LookupReply& reply);
[[nodiscard]] std::vector<std::byte> encode_stats_request();
[[nodiscard]] std::vector<std::byte> encode_stats_reply(const DaemonStats& stats);
[[nodiscard]] std::vector<std::byte> encode_invalidate(const InvalidateRequest& req);
[[nodiscard]] std::vector<std::byte> encode_invalidate_reply(std::uint64_t removed);
[[nodiscard]] std::vector<std::byte> encode_error(const std::string& text);

[[nodiscard]] std::optional<MsgType> peek_type(std::span<const std::byte> payload);
[[nodiscard]] std::optional<LookupRequest> decode_lookup(std::span<const std::byte> payload);
[[nodiscard]] std::optional<LookupReply> decode_lookup_reply(
    std::span<const std::byte> payload);
[[nodiscard]] std::optional<DaemonStats> decode_stats_reply(
    std::span<const std::byte> payload);
[[nodiscard]] std::optional<InvalidateRequest> decode_invalidate(
    std::span<const std::byte> payload);
[[nodiscard]] std::optional<std::uint64_t> decode_invalidate_reply(
    std::span<const std::byte> payload);
[[nodiscard]] std::optional<std::string> decode_error(std::span<const std::byte> payload);

}  // namespace pdc::evald
