#include "evald/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

#include "eval/sweep.hpp"

namespace pdc::evald {

namespace {

int make_listener(const std::string& path) {
  if (path.empty() || path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    throw std::runtime_error("evald::Server: bad socket path: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw std::runtime_error("evald::Server: socket() failed");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());  // a stale socket from a dead daemon
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    ::close(fd);
    throw std::runtime_error("evald::Server: cannot bind " + path);
  }
  return fd;
}

}  // namespace

Server::Server(ServerConfig config) : config_(std::move(config)) {
  store_ = std::make_unique<Store>(config_.store_path, config_.model_version);
  listen_fd_ = make_listener(config_.socket_path);
}

Server::~Server() { stop(); }

void Server::start() {
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::stop() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  // Wake the blocked accept() but leave the fd open (and the member
  // untouched) until the accept thread has joined: closing or overwriting
  // listen_fd_ while accept_loop still reads it is a use-after-close race.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<std::unique_ptr<Connection>> conns;
  {
    const std::scoped_lock lock(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& c : conns) {
    ::shutdown(c->fd, SHUT_RDWR);
    if (c->thread.joinable()) c->thread.join();
    ::close(c->fd);
  }
  ::unlink(config_.socket_path.c_str());
}

void Server::reap_finished_locked() {
  std::erase_if(conns_, [](const std::unique_ptr<Connection>& c) {
    if (!c->done.load(std::memory_order_acquire)) return false;
    if (c->thread.joinable()) c->thread.join();
    ::close(c->fd);
    return true;
  });
}

void Server::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) return;
      if (errno == EINTR) continue;
      return;  // listener gone
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    const std::scoped_lock lock(conns_mu_);
    reap_finished_locked();
    conn->thread = std::thread([this, raw] { serve(*raw); });
    conns_.push_back(std::move(conn));
  }
}

void Server::serve(Connection& conn) {
  std::vector<std::byte> payload;
  for (;;) {
    const FrameStatus status = read_frame(conn.fd, payload);
    if (status != FrameStatus::Ok) {
      // Eof is the clean goodbye; everything else is an untrustworthy
      // stream -- either way the connection closes and the daemon moves
      // on. No reply is attempted on a framing error: the peer's framing
      // state is unknown.
      if (status != FrameStatus::Eof) frame_errors_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    bool keep_going = false;
    try {
      keep_going = handle(conn.fd, payload);
    } catch (const std::exception& e) {
      // Out-of-memory or store I/O trouble: tell this client and drop the
      // connection; the daemon itself keeps serving.
      (void)write_frame(conn.fd, encode_error(e.what()));
    }
    if (!keep_going) break;
  }
  ::shutdown(conn.fd, SHUT_RDWR);
  conn.done.store(true, std::memory_order_release);
}

bool Server::handle(int fd, const std::vector<std::byte>& payload) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  const auto type = peek_type(payload);
  if (!type) {
    frame_errors_.fetch_add(1, std::memory_order_relaxed);
    return write_frame(fd, encode_error("unknown message type")) && false;
  }
  switch (*type) {
    case MsgType::Ping:
      return write_frame(fd, encode_pong());
    case MsgType::Lookup: {
      const auto req = decode_lookup(payload);
      if (!req) return write_frame(fd, encode_error("malformed lookup")) && false;
      const auto reply = encode_lookup_reply(run_lookup(*req));
      if (reply.size() > kMaxFramePayload) {
        // The batch's results are cached now, but the one-frame reply
        // cannot be sent; tell the client to split the batch (a retry in
        // smaller batches is served from cache).
        return write_frame(fd, encode_error("lookup reply exceeds the frame cap; "
                                            "split the batch into smaller lookups"));
      }
      return write_frame(fd, reply);
    }
    case MsgType::Stats:
      return write_frame(fd, encode_stats_reply(stats()));
    case MsgType::Invalidate: {
      const auto req = decode_invalidate(payload);
      if (!req) return write_frame(fd, encode_error("malformed invalidate")) && false;
      std::uint64_t removed = 0;
      if (req->all) {
        removed = store_->invalidate_all();
      } else {
        const auto spec_bytes = eval::encode_spec(req->spec);
        const auto key = eval::cell_key(spec_bytes, config_.model_version);
        removed = store_->invalidate(key, spec_bytes) ? 1 : 0;
      }
      return write_frame(fd, encode_invalidate_reply(removed));
    }
    default:
      // A reply type arriving at the server is a protocol violation.
      frame_errors_.fetch_add(1, std::memory_order_relaxed);
      return write_frame(fd, encode_error("unexpected message type")) && false;
  }
}

LookupReply Server::run_lookup(const LookupRequest& request) {
  const std::size_t n = request.specs.size();
  LookupReply reply;
  reply.items.resize(n);
  cells_served_.fetch_add(n, std::memory_order_relaxed);

  // Hot path first: serve every cached cell straight from the store.
  std::vector<std::vector<std::byte>> spec_bytes(n);
  std::vector<std::uint64_t> keys(n);
  std::vector<std::size_t> misses;
  for (std::size_t i = 0; i < n; ++i) {
    spec_bytes[i] = eval::encode_spec(request.specs[i]);
    keys[i] = eval::cell_key(spec_bytes[i], config_.model_version);
    if (auto cached = store_->lookup(keys[i], spec_bytes[i])) {
      reply.items[i].origin = cached->negative ? Origin::NegativeCache : Origin::Cache;
      if (!request.warm) reply.items[i].result = std::move(cached->result);
    } else {
      misses.push_back(i);
    }
  }

  // Batch the misses onto the worker pool; each result lands at its own
  // request index, so the merged reply is in deterministic cell order no
  // matter how the fleet schedules the simulations.
  if (!misses.empty()) {
    cells_computed_.fetch_add(misses.size(), std::memory_order_relaxed);
    std::vector<std::vector<std::byte>> computed(misses.size());
    // uint8_t, not bool: workers write elements concurrently and
    // vector<bool> packs neighbours into one byte.
    std::vector<std::uint8_t> negative(misses.size(), 0);
    eval::parallel_for_index(misses.size(), 0, [&](std::size_t m) {
      const eval::CellResult result = eval::run_cell(request.specs[misses[m]]);
      computed[m] = eval::encode_result(result);
      negative[m] = result.status == eval::CellStatus::Error;
    });
    for (std::size_t m = 0; m < misses.size(); ++m) {
      const std::size_t i = misses[m];
      store_->insert(keys[i], spec_bytes[i], computed[m], negative[m] != 0);
      reply.items[i].origin = Origin::Computed;
      if (!request.warm) reply.items[i].result = std::move(computed[m]);
    }
  }
  return reply;
}

DaemonStats Server::stats() const {
  const StoreStats s = store_->stats();
  DaemonStats out;
  out.entries = s.entries;
  out.negative_entries = s.negative_entries;
  out.hits = s.hits;
  out.negative_hits = s.negative_hits;
  out.misses = s.misses;
  out.inserts = s.inserts;
  out.invalidated = s.invalidated;
  out.log_bytes = s.log_bytes;
  out.recovered = s.recovered;
  out.requests = requests_.load(std::memory_order_relaxed);
  out.cells_served = cells_served_.load(std::memory_order_relaxed);
  out.cells_computed = cells_computed_.load(std::memory_order_relaxed);
  out.connections = connections_.load(std::memory_order_relaxed);
  out.frame_errors = frame_errors_.load(std::memory_order_relaxed);
  out.model_version = config_.model_version;
  return out;
}

}  // namespace pdc::evald
