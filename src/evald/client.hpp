// pdcevald -- client side of the evaluation service.
//
// One blocking connection to a pdcevald daemon. Lookups take cell specs
// and come back as decoded CellResults tagged with their origin (cache /
// computed / negative cache); sweeps batch any number of specs into one
// frame round-trip, which is what makes >10^5 cached lookups/s reachable
// from a single client. All calls throw evald::ClientError on transport
// or protocol failure.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "evald/protocol.hpp"

namespace pdc::evald {

class ClientError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Client {
 public:
  /// Connect to the daemon at `socket_path`; throws ClientError on
  /// failure.
  explicit Client(const std::string& socket_path);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  struct Outcome {
    eval::CellResult result;
    Origin origin{Origin::Cache};
  };

  /// One cell.
  [[nodiscard]] Outcome lookup(const eval::CellSpec& spec);

  /// A batch; results in request order.
  [[nodiscard]] std::vector<Outcome> sweep(const std::vector<eval::CellSpec>& specs);

  /// Execute-and-cache without shipping result bytes back; returns each
  /// cell's origin.
  [[nodiscard]] std::vector<Origin> warm(const std::vector<eval::CellSpec>& specs);

  [[nodiscard]] DaemonStats stats();

  /// Drop the whole store; returns entries removed.
  std::uint64_t invalidate_all();
  /// Drop one spec; true if it was cached.
  bool invalidate(const eval::CellSpec& spec);

  /// Liveness probe.
  [[nodiscard]] bool ping();

 private:
  [[nodiscard]] std::vector<std::byte> round_trip(const std::vector<std::byte>& payload);

  int fd_{-1};
};

}  // namespace pdc::evald
