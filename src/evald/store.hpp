// pdcevald -- content-addressed memoized cell store.
//
// The hot path of the evaluation service: an open-addressing in-memory
// index (power-of-two capacity, linear probing, 64-bit cell keys) over an
// append-only record log. The log lives in a store file when a path is
// given -- read back via mmap on open, appended to on every insert, each
// record CRC32-framed so a torn tail from a crash is detected and
// truncated away -- or purely in memory when the path is empty.
//
// Content addressing: the index key is eval::cell_key(spec bytes, model
// version) and every entry carries its full canonical spec bytes, so a
// hash collision degrades to a spec byte-compare, never to a wrong
// answer. Negative entries memoize known-failing specs (encoded error
// results), so infeasible cells cost one probe instead of one simulation.
//
// Versioning: the store file header records the model version it was
// written under. Opening a store written under any other version discards
// the contents and starts fresh -- a bumped model can never serve stale
// bytes (tests pin this).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <vector>

namespace pdc::evald {

struct StoreStats {
  std::uint64_t entries{0};           ///< live index entries
  std::uint64_t negative_entries{0};  ///< of which: memoized failures
  std::uint64_t hits{0};
  std::uint64_t negative_hits{0};     ///< hits that were negative entries
  std::uint64_t misses{0};
  std::uint64_t inserts{0};
  std::uint64_t invalidated{0};       ///< entries dropped by invalidation
  std::uint64_t probe_steps{0};       ///< index probes beyond the home slot
  std::uint64_t log_bytes{0};         ///< append-only log size (disk + tail)
  std::uint64_t recovered{0};         ///< entries replayed from disk at open
  std::uint64_t discarded_stale{0};   ///< entries dropped by a version bump
};

/// A served result: the canonical result bytes plus whether the entry was
/// a negative (memoized failure) record.
struct Cached {
  std::vector<std::byte> result;
  bool negative{false};
};

class Store {
 public:
  /// Open (or create) the store at `path`; an empty path keeps the store
  /// purely in memory. Throws std::runtime_error when the file cannot be
  /// opened or created.
  explicit Store(std::string path = {}, std::uint64_t model_version = 0);
  ~Store();
  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;

  /// Look up the entry for (key, spec bytes); nullopt on miss. Thread-safe
  /// against concurrent lookups and inserts.
  [[nodiscard]] std::optional<Cached> lookup(std::uint64_t key,
                                             std::span<const std::byte> spec) const;

  /// Insert a result for (key, spec bytes). Idempotent: if an entry for
  /// the spec already exists (a concurrent request computed it first), the
  /// existing entry wins -- results are deterministic, so the bytes match.
  void insert(std::uint64_t key, std::span<const std::byte> spec,
              std::span<const std::byte> result, bool negative);

  /// Drop one entry; true if it existed. Appends a tombstone record so the
  /// invalidation survives reopen.
  bool invalidate(std::uint64_t key, std::span<const std::byte> spec);

  /// Drop everything (model re-calibration, operator reset). Truncates the
  /// log file to a fresh header. Returns the number of entries dropped.
  std::uint64_t invalidate_all();

  [[nodiscard]] StoreStats stats() const;
  [[nodiscard]] std::size_t entries() const;
  [[nodiscard]] std::uint64_t model_version() const noexcept { return model_version_; }

 private:
  struct Slot {
    std::uint64_t key{0};
    std::uint32_t record{kEmpty};  ///< index into records_
    static constexpr std::uint32_t kEmpty = 0xFFFFFFFFu;
  };
  struct Record {
    std::vector<std::byte> spec;
    std::vector<std::byte> result;
    bool negative{false};
    bool dead{false};
  };

  void load_log_locked();
  void append_record_locked(std::uint8_t kind, std::uint64_t key,
                            std::span<const std::byte> spec,
                            std::span<const std::byte> result);
  void reset_log_locked();
  /// Rebuild the index at `capacity` slots (a power of two), dropping dead
  /// slots; afterwards occupied_ == live_.
  void rehash_index_locked(std::size_t capacity);
  /// Probe for `spec`; returns the slot index holding it, or the first
  /// free slot on its probe path (key absent). Requires capacity > size.
  [[nodiscard]] std::size_t probe_locked(std::uint64_t key,
                                         std::span<const std::byte> spec) const;
  void insert_locked(std::uint64_t key, std::span<const std::byte> spec,
                     std::span<const std::byte> result, bool negative, bool persist);
  bool erase_locked(std::uint64_t key, std::span<const std::byte> spec, bool persist);

  std::string path_;
  std::uint64_t model_version_{0};
  int fd_{-1};

  mutable std::shared_mutex mu_;
  std::vector<Slot> slots_;
  std::vector<Record> records_;
  std::size_t occupied_{0};  ///< slots holding any record, live or dead
  std::size_t live_{0};
  std::size_t negative_{0};
  std::uint64_t log_bytes_{0};

  mutable std::mutex stats_mu_;
  mutable StoreStats stats_;
};

}  // namespace pdc::evald
