#include "evald/store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "mp/checksum.hpp"

namespace pdc::evald {

namespace {

constexpr std::uint32_t kMagic = 0x45434450u;  // "PDCE" little-endian
constexpr std::uint32_t kFormat = 1;
constexpr std::size_t kHeaderBytes = 16;  // magic u32 | format u32 | version u64

constexpr std::uint8_t kRecEntry = 1;
constexpr std::uint8_t kRecNegative = 2;
constexpr std::uint8_t kRecTombstone = 3;

// Record payload header: kind u8 | key u64 | spec_len u32 | result_len u32.
constexpr std::size_t kRecHeader = 1 + 8 + 4 + 4;
constexpr std::uint32_t kMaxRecordPayload = 64u << 20;

void put_u32(std::byte* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::byte>(v >> (8 * i));
}
void put_u64(std::byte* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::byte>(v >> (8 * i));
}
std::uint32_t get_u32(const std::byte* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}
std::uint64_t get_u64(const std::byte* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

bool write_all(int fd, const std::byte* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n <= 0) return false;
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Store::Store(std::string path, std::uint64_t model_version)
    : path_(std::move(path)), model_version_(model_version) {
  slots_.resize(64);
  if (path_.empty()) return;
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) throw std::runtime_error("evald::Store: cannot open " + path_);
  load_log_locked();
}

Store::~Store() {
  if (fd_ >= 0) ::close(fd_);
}

void Store::reset_log_locked() {
  if (fd_ < 0) return;
  if (::ftruncate(fd_, 0) != 0 || ::lseek(fd_, 0, SEEK_SET) != 0) {
    throw std::runtime_error("evald::Store: cannot reset " + path_);
  }
  std::byte header[kHeaderBytes];
  put_u32(header, kMagic);
  put_u32(header + 4, kFormat);
  put_u64(header + 8, model_version_);
  if (!write_all(fd_, header, kHeaderBytes)) {
    throw std::runtime_error("evald::Store: cannot write header to " + path_);
  }
  log_bytes_ = kHeaderBytes;
}

void Store::load_log_locked() {
  struct stat st{};
  if (::fstat(fd_, &st) != 0) throw std::runtime_error("evald::Store: fstat failed");
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size < kHeaderBytes) {
    reset_log_locked();
    return;
  }

  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd_, 0);
  if (map == MAP_FAILED) throw std::runtime_error("evald::Store: mmap failed");
  const auto* base = static_cast<const std::byte*>(map);

  const bool header_ok = get_u32(base) == kMagic && get_u32(base + 4) == kFormat;
  const bool version_ok = header_ok && get_u64(base + 8) == model_version_;

  // Replay every intact record; stop at the first torn or corrupt one (a
  // crashed writer leaves at most a broken tail) and truncate it away.
  std::size_t pos = kHeaderBytes;
  std::size_t valid_end = kHeaderBytes;
  std::uint64_t replayed = 0;
  while (header_ok && pos + 4 <= size) {
    const std::uint32_t payload_len = get_u32(base + pos);
    if (payload_len < kRecHeader || payload_len > kMaxRecordPayload) break;
    if (pos + 4 + payload_len + 4 > size) break;  // torn tail
    const std::byte* payload = base + pos + 4;
    const std::uint32_t stored_crc = get_u32(payload + payload_len);
    if (mp::crc32({payload, payload_len}) != stored_crc) break;

    const std::uint8_t kind = static_cast<std::uint8_t>(payload[0]);
    const std::uint64_t key = get_u64(payload + 1);
    const std::uint32_t spec_len = get_u32(payload + 9);
    const std::uint32_t result_len = get_u32(payload + 13);
    if (kRecHeader + static_cast<std::uint64_t>(spec_len) + result_len != payload_len) break;
    const std::byte* spec = payload + kRecHeader;
    const std::byte* result = spec + spec_len;

    pos += 4 + payload_len + 4;
    valid_end = pos;
    ++replayed;
    if (!version_ok) continue;  // stale store: count and discard below

    if (kind == kRecEntry || kind == kRecNegative) {
      insert_locked(key, {spec, spec_len}, {result, result_len}, kind == kRecNegative,
                    /*persist=*/false);
    } else if (kind == kRecTombstone) {
      erase_locked(key, {spec, spec_len}, /*persist=*/false);
    }
  }
  ::munmap(map, size);

  if (!version_ok || !header_ok) {
    // Different model version (or foreign file): never serve its bytes.
    stats_.discarded_stale += replayed;
    reset_log_locked();
    return;
  }
  stats_.recovered = live_;
  if (valid_end != size) {
    if (::ftruncate(fd_, static_cast<off_t>(valid_end)) != 0) {
      throw std::runtime_error("evald::Store: cannot truncate torn tail of " + path_);
    }
  }
  if (::lseek(fd_, static_cast<off_t>(valid_end), SEEK_SET) < 0) {
    throw std::runtime_error("evald::Store: lseek failed on " + path_);
  }
  log_bytes_ = valid_end;
}

void Store::append_record_locked(std::uint8_t kind, std::uint64_t key,
                                 std::span<const std::byte> spec,
                                 std::span<const std::byte> result) {
  if (fd_ < 0) return;
  const std::uint32_t payload_len =
      static_cast<std::uint32_t>(kRecHeader + spec.size() + result.size());
  std::vector<std::byte> buf(4 + payload_len + 4);
  put_u32(buf.data(), payload_len);
  std::byte* p = buf.data() + 4;
  p[0] = static_cast<std::byte>(kind);
  put_u64(p + 1, key);
  put_u32(p + 9, static_cast<std::uint32_t>(spec.size()));
  put_u32(p + 13, static_cast<std::uint32_t>(result.size()));
  std::memcpy(p + kRecHeader, spec.data(), spec.size());
  if (!result.empty()) std::memcpy(p + kRecHeader + spec.size(), result.data(), result.size());
  put_u32(p + payload_len, mp::crc32({p, payload_len}));
  if (!write_all(fd_, buf.data(), buf.size())) {
    // A partial write (e.g. ENOSPC mid-record) leaves a torn record at the
    // tail; truncate back to the last good boundary so later appends stay
    // replayable instead of landing after the torn record and being
    // silently dropped at the next replay. If even the rollback fails,
    // stop persisting -- in-memory service continues.
    if (::ftruncate(fd_, static_cast<off_t>(log_bytes_)) != 0 ||
        ::lseek(fd_, static_cast<off_t>(log_bytes_), SEEK_SET) < 0) {
      ::close(fd_);
      fd_ = -1;
    }
    throw std::runtime_error("evald::Store: append failed on " + path_);
  }
  log_bytes_ += buf.size();
}

std::size_t Store::probe_locked(std::uint64_t key, std::span<const std::byte> spec) const {
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = static_cast<std::size_t>(key) & mask;
  std::size_t steps = 0;
  for (;;) {
    const Slot& s = slots_[i];
    if (s.record == Slot::kEmpty) break;
    if (s.key == key) {
      const Record& r = records_[s.record];
      if (r.spec.size() == spec.size() &&
          std::memcmp(r.spec.data(), spec.data(), spec.size()) == 0) {
        break;
      }
    }
    i = (i + 1) & mask;
    ++steps;
  }
  if (steps > 0) {
    const std::scoped_lock lock(stats_mu_);
    stats_.probe_steps += steps;
  }
  return i;
}

void Store::rehash_index_locked(std::size_t capacity) {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(capacity, Slot{});
  const std::size_t mask = slots_.size() - 1;
  for (const Slot& s : old) {
    if (s.record == Slot::kEmpty) continue;
    if (records_[s.record].dead) {
      // The dead record loses its last reference here; release its spec
      // bytes too (erase already released the result).
      records_[s.record].spec.clear();
      records_[s.record].spec.shrink_to_fit();
      continue;
    }
    std::size_t i = static_cast<std::size_t>(s.key) & mask;
    while (slots_[i].record != Slot::kEmpty) i = (i + 1) & mask;
    slots_[i] = s;
  }
  occupied_ = live_;
}

std::optional<Cached> Store::lookup(std::uint64_t key, std::span<const std::byte> spec) const {
  {
    const std::shared_lock lock(mu_);
    const std::size_t i = probe_locked(key, spec);
    const Slot& s = slots_[i];
    if (s.record != Slot::kEmpty && !records_[s.record].dead) {
      const Record& r = records_[s.record];
      Cached out{r.result, r.negative};
      const std::scoped_lock stats_lock(stats_mu_);
      ++stats_.hits;
      if (r.negative) ++stats_.negative_hits;
      return out;
    }
  }
  const std::scoped_lock stats_lock(stats_mu_);
  ++stats_.misses;
  return std::nullopt;
}

void Store::insert_locked(std::uint64_t key, std::span<const std::byte> spec,
                          std::span<const std::byte> result, bool negative, bool persist) {
  // The 70% threshold counts occupied slots (live + dead), not just live
  // entries: invalidated entries keep their slots until a rehash, so an
  // invalidate+insert churn could otherwise fill every slot while live_
  // stays low and leave probe_locked spinning on any absent key. When the
  // table is mostly dead, rehash at the same capacity -- that alone
  // reclaims the dead slots.
  if (occupied_ + 1 > slots_.size() * 7 / 10) {
    const bool need_more = live_ + 1 > slots_.size() * 7 / 10;
    rehash_index_locked(need_more ? slots_.size() * 2 : slots_.size());
  }
  const std::size_t i = probe_locked(key, spec);
  Slot& s = slots_[i];
  if (s.record != Slot::kEmpty) {
    Record& r = records_[s.record];
    if (!r.dead) return;  // first writer wins; results are deterministic
    // Revive an invalidated entry in place (keeps the probe chain intact;
    // erase already cleared its negative flag and count).
    r.result.assign(result.begin(), result.end());
    r.negative = negative;
    r.dead = false;
  } else {
    Record r;
    r.spec.assign(spec.begin(), spec.end());
    r.result.assign(result.begin(), result.end());
    r.negative = negative;
    s.key = key;
    s.record = static_cast<std::uint32_t>(records_.size());
    records_.push_back(std::move(r));
    ++occupied_;
  }
  ++live_;
  if (negative) ++negative_;
  if (persist) append_record_locked(negative ? kRecNegative : kRecEntry, key, spec, result);
}

void Store::insert(std::uint64_t key, std::span<const std::byte> spec,
                   std::span<const std::byte> result, bool negative) {
  const std::unique_lock lock(mu_);
  const std::size_t before = live_;
  insert_locked(key, spec, result, negative, /*persist=*/true);
  if (live_ != before) {
    const std::scoped_lock stats_lock(stats_mu_);
    ++stats_.inserts;
  }
}

bool Store::erase_locked(std::uint64_t key, std::span<const std::byte> spec, bool persist) {
  const std::size_t i = probe_locked(key, spec);
  const Slot& s = slots_[i];
  if (s.record == Slot::kEmpty || records_[s.record].dead) return false;
  Record& r = records_[s.record];
  r.dead = true;
  r.result.clear();
  r.result.shrink_to_fit();
  --live_;
  if (r.negative) {
    --negative_;
    r.negative = false;
  }
  if (persist) append_record_locked(kRecTombstone, key, spec, {});
  return true;
}

bool Store::invalidate(std::uint64_t key, std::span<const std::byte> spec) {
  const std::unique_lock lock(mu_);
  const bool erased = erase_locked(key, spec, /*persist=*/true);
  if (erased) {
    const std::scoped_lock stats_lock(stats_mu_);
    ++stats_.invalidated;
  }
  return erased;
}

std::uint64_t Store::invalidate_all() {
  const std::unique_lock lock(mu_);
  const std::uint64_t dropped = live_;
  slots_.assign(64, Slot{});
  records_.clear();
  occupied_ = 0;
  live_ = 0;
  negative_ = 0;
  reset_log_locked();
  const std::scoped_lock stats_lock(stats_mu_);
  stats_.invalidated += dropped;
  return dropped;
}

StoreStats Store::stats() const {
  const std::shared_lock lock(mu_);
  const std::scoped_lock stats_lock(stats_mu_);
  StoreStats out = stats_;
  out.entries = live_;
  out.negative_entries = negative_;
  out.log_bytes = log_bytes_;
  return out;
}

std::size_t Store::entries() const {
  const std::shared_lock lock(mu_);
  return live_;
}

}  // namespace pdc::evald
