#include "evald/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>

namespace pdc::evald {

Client::Client(const std::string& socket_path) {
  if (socket_path.empty() || socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    throw ClientError("evald::Client: bad socket path: " + socket_path);
  }
  fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw ClientError("evald::Client: socket() failed");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw ClientError("evald::Client: cannot connect to " + socket_path);
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

std::vector<std::byte> Client::round_trip(const std::vector<std::byte>& payload) {
  if (!write_frame(fd_, payload)) throw ClientError("evald::Client: send failed");
  std::vector<std::byte> reply;
  const FrameStatus status = read_frame(fd_, reply);
  if (status != FrameStatus::Ok) {
    throw ClientError(std::string("evald::Client: reply: ") + to_string(status));
  }
  if (const auto err = decode_error(reply)) {
    throw ClientError("evald::Client: daemon error: " + *err);
  }
  return reply;
}

Client::Outcome Client::lookup(const eval::CellSpec& spec) {
  auto outcomes = sweep({spec});
  return std::move(outcomes.front());
}

std::vector<Client::Outcome> Client::sweep(const std::vector<eval::CellSpec>& specs) {
  LookupRequest req;
  req.specs = specs;
  const auto reply_payload = round_trip(encode_lookup(req));
  const auto reply = decode_lookup_reply(reply_payload);
  if (!reply || reply->items.size() != specs.size()) {
    throw ClientError("evald::Client: malformed lookup reply");
  }
  std::vector<Outcome> out;
  out.reserve(specs.size());
  for (const LookupReply::Item& item : reply->items) {
    auto result = eval::decode_result(item.result);
    if (!result) throw ClientError("evald::Client: malformed result bytes");
    out.push_back(Outcome{std::move(*result), item.origin});
  }
  return out;
}

std::vector<Origin> Client::warm(const std::vector<eval::CellSpec>& specs) {
  LookupRequest req;
  req.warm = true;
  req.specs = specs;
  const auto reply_payload = round_trip(encode_lookup(req));
  const auto reply = decode_lookup_reply(reply_payload);
  if (!reply || reply->items.size() != specs.size()) {
    throw ClientError("evald::Client: malformed warm reply");
  }
  std::vector<Origin> origins;
  origins.reserve(reply->items.size());
  for (const LookupReply::Item& item : reply->items) origins.push_back(item.origin);
  return origins;
}

DaemonStats Client::stats() {
  const auto reply = decode_stats_reply(round_trip(encode_stats_request()));
  if (!reply) throw ClientError("evald::Client: malformed stats reply");
  return *reply;
}

std::uint64_t Client::invalidate_all() {
  InvalidateRequest req;
  req.all = true;
  const auto reply = decode_invalidate_reply(round_trip(encode_invalidate(req)));
  if (!reply) throw ClientError("evald::Client: malformed invalidate reply");
  return *reply;
}

bool Client::invalidate(const eval::CellSpec& spec) {
  InvalidateRequest req;
  req.all = false;
  req.spec = spec;
  const auto reply = decode_invalidate_reply(round_trip(encode_invalidate(req)));
  if (!reply) throw ClientError("evald::Client: malformed invalidate reply");
  return *reply != 0;
}

bool Client::ping() {
  const auto reply = round_trip(encode_ping());
  return peek_type(reply) == MsgType::Pong;
}

}  // namespace pdc::evald
