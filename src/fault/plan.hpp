// pdceval -- declarative fault plans.
//
// A FaultPlan is pure data: per-link fault rates, optional per-link
// overrides, and timed link-flap windows. Paired with its embedded seed it
// fully determines every fault the decorator will inject, so a run is
// bit-reproducible from (FaultPlan, workload) alone -- the plan is to fault
// injection what a ToolProfile is to tool semantics.
#pragma once

#include <cstdint>
#include <vector>

#include "net/network.hpp"
#include "sim/time.hpp"

namespace pdc::fault {

/// Fault rates for one (directed) link. Rates are per-frame probabilities
/// in [0, 1); jitter adds a uniform extra delay in [0, reorder_jitter] to a
/// `reorder_rate` fraction of frames (enough to overtake later frames on a
/// fast link, which is what "reordering" means to the transport).
struct LinkFaults {
  double drop_rate{0.0};
  double corrupt_rate{0.0};
  double duplicate_rate{0.0};
  double reorder_rate{0.0};
  sim::Duration reorder_jitter{sim::microseconds(0)};

  [[nodiscard]] constexpr bool any() const noexcept {
    return drop_rate > 0.0 || corrupt_rate > 0.0 || duplicate_rate > 0.0 || reorder_rate > 0.0;
  }
};

/// Override the default LinkFaults for one directed link.
struct LinkOverride {
  net::NodeId src{-1};
  net::NodeId dst{-1};
  LinkFaults faults{};
};

/// During [start, end], frames matching (a, b) are dropped outright:
/// a normal node pair matches either direction; `b == -1` takes node `a`
/// off the air entirely; `a == -1 && b == -1` blacks out the whole network.
struct FlapWindow {
  net::NodeId a{-1};
  net::NodeId b{-1};
  sim::TimePoint start{};
  sim::TimePoint end{};

  [[nodiscard]] bool covers(net::NodeId src, net::NodeId dst, sim::TimePoint t) const noexcept {
    if (t < start || t > end) return false;
    if (a < 0 && b < 0) return true;                              // total blackout
    if (b < 0) return src == a || dst == a;                       // node outage
    return (src == a && dst == b) || (src == b && dst == a);      // link (both ways)
  }
};

struct FaultPlan {
  std::uint64_t seed{0xFA17};
  LinkFaults link{};                      ///< default for every link
  std::vector<LinkOverride> overrides;    ///< later entries win
  std::vector<FlapWindow> flaps;

  [[nodiscard]] bool enabled() const noexcept {
    if (link.any() || !flaps.empty()) return true;
    for (const auto& o : overrides) {
      if (o.faults.any()) return true;
    }
    return false;
  }

  [[nodiscard]] const LinkFaults& faults_for(net::NodeId src, net::NodeId dst) const noexcept {
    const LinkFaults* best = &link;
    for (const auto& o : overrides) {
      if (o.src == src && o.dst == dst) best = &o.faults;
    }
    return *best;
  }

  /// Uniform rates on every link -- the common soak-test shape.
  [[nodiscard]] static FaultPlan uniform(double drop, double corrupt = 0.0, double duplicate = 0.0,
                                         double reorder = 0.0,
                                         sim::Duration jitter = sim::microseconds(500),
                                         std::uint64_t seed = 0xFA17) {
    FaultPlan plan;
    plan.seed = seed;
    plan.link = LinkFaults{.drop_rate = drop,
                           .corrupt_rate = corrupt,
                           .duplicate_rate = duplicate,
                           .reorder_rate = reorder,
                           .reorder_jitter = jitter};
    return plan;
  }
};

/// What the decorator actually did, for telemetry and test assertions.
struct InjectionStats {
  std::int64_t frames{0};        ///< frames offered to the faulty wire
  std::int64_t drops{0};         ///< random per-link drops
  std::int64_t flap_drops{0};    ///< drops caused by a flap window
  std::int64_t corruptions{0};
  std::int64_t duplicates{0};
  std::int64_t reorders{0};      ///< frames given extra jitter

  InjectionStats& operator+=(const InjectionStats& o) noexcept {
    frames += o.frames;
    drops += o.drops;
    flap_drops += o.flap_drops;
    corruptions += o.corruptions;
    duplicates += o.duplicates;
    reorders += o.reorders;
    return *this;
  }
};

}  // namespace pdc::fault
