// pdceval -- fault-injection decorator over any net::Network.
//
// Timing questions (transfer/transfer_chunked) delegate unchanged to the
// wrapped network; fate questions (transmit/transmit_chunked) additionally
// roll the plan's per-link dice. All randomness comes from one private Rng
// seeded via sim::named_stream(plan.seed, "pdc.fault.network"), so enabling
// faults never perturbs app-level RNG draws, and the injected fault
// sequence is a pure function of (plan, sequence of transmit calls) --
// which the single-threaded event loop makes deterministic.
#pragma once

#include <memory>
#include <string>

#include "fault/plan.hpp"
#include "net/network.hpp"
#include "sim/rng.hpp"
#include "sim/simulation.hpp"

namespace pdc::fault {

class FaultyNetwork final : public net::Network {
 public:
  /// Throws std::invalid_argument if any rate is outside [0, 1) or a flap
  /// window has end < start.
  FaultyNetwork(sim::Simulation& sim, std::unique_ptr<net::Network> inner, FaultPlan plan);

  sim::TimePoint transfer(net::NodeId src, net::NodeId dst, std::int64_t bytes) override;
  sim::TimePoint transfer_chunked(net::NodeId src, net::NodeId dst, std::int64_t bytes,
                                  const net::ChunkProtocol& protocol) override;
  net::Delivery transmit(net::NodeId src, net::NodeId dst, std::int64_t bytes) override;
  net::Delivery transmit_chunked(net::NodeId src, net::NodeId dst, std::int64_t bytes,
                                 const net::ChunkProtocol& protocol) override;

  [[nodiscard]] bool reliable() const noexcept override { return !plan_.enabled(); }
  /// Faults only delay or destroy frames (reorder jitter and duplicate lag
  /// are non-negative), so the inner network's horizon remains safe.
  [[nodiscard]] sim::Duration lookahead() const noexcept override { return inner_->lookahead(); }
  [[nodiscard]] double line_rate_bps() const noexcept override { return inner_->line_rate_bps(); }
  [[nodiscard]] const std::string& name() const noexcept override { return name_; }
  [[nodiscard]] std::int64_t wire_bytes(std::int64_t bytes) const noexcept override {
    return inner_->wire_bytes(bytes);
  }

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] const InjectionStats& stats() const noexcept { return stats_; }
  [[nodiscard]] net::Network& inner() noexcept { return *inner_; }

 private:
  /// Decide one frame's fate. Always draws the same number of random values
  /// per frame (when the plan is enabled) so fates of later frames do not
  /// depend on which faults earlier frames happened to suffer.
  net::Delivery afflict(net::NodeId src, net::NodeId dst, sim::TimePoint arrival);

  sim::Simulation* sim_;
  std::unique_ptr<net::Network> inner_;
  FaultPlan plan_;
  sim::Rng rng_;
  InjectionStats stats_{};
  std::string name_;
};

}  // namespace pdc::fault
