#include "fault/faulty_network.hpp"

#include <stdexcept>
#include <utility>

namespace pdc::fault {

namespace {

void validate_rates(const LinkFaults& f) {
  const auto ok = [](double r) { return r >= 0.0 && r < 1.0; };
  if (!ok(f.drop_rate) || !ok(f.corrupt_rate) || !ok(f.duplicate_rate) || !ok(f.reorder_rate)) {
    throw std::invalid_argument("fault rates must lie in [0, 1)");
  }
  if (f.reorder_jitter < sim::nanoseconds(0)) {
    throw std::invalid_argument("reorder_jitter must be non-negative");
  }
}

}  // namespace

FaultyNetwork::FaultyNetwork(sim::Simulation& sim, std::unique_ptr<net::Network> inner,
                             FaultPlan plan)
    : sim_(&sim),
      inner_(std::move(inner)),
      plan_(std::move(plan)),
      rng_(sim::named_stream(plan_.seed, "pdc.fault.network")),
      name_("faulty+" + inner_->name()) {
  validate_rates(plan_.link);
  for (const auto& o : plan_.overrides) validate_rates(o.faults);
  for (const auto& w : plan_.flaps) {
    if (w.end < w.start) throw std::invalid_argument("flap window must have start <= end");
  }
}

sim::TimePoint FaultyNetwork::transfer(net::NodeId src, net::NodeId dst, std::int64_t bytes) {
  return inner_->transfer(src, dst, bytes);
}

sim::TimePoint FaultyNetwork::transfer_chunked(net::NodeId src, net::NodeId dst,
                                               std::int64_t bytes,
                                               const net::ChunkProtocol& protocol) {
  return inner_->transfer_chunked(src, dst, bytes, protocol);
}

net::Delivery FaultyNetwork::transmit(net::NodeId src, net::NodeId dst, std::int64_t bytes) {
  return afflict(src, dst, inner_->transfer(src, dst, bytes));
}

net::Delivery FaultyNetwork::transmit_chunked(net::NodeId src, net::NodeId dst,
                                              std::int64_t bytes,
                                              const net::ChunkProtocol& protocol) {
  return afflict(src, dst, inner_->transfer_chunked(src, dst, bytes, protocol));
}

net::Delivery FaultyNetwork::afflict(net::NodeId src, net::NodeId dst, sim::TimePoint arrival) {
  net::Delivery d{.arrival = arrival, .dup_arrival = {}};
  if (!plan_.enabled()) return d;  // no draws: attaching a dead plan is a no-op

  ++stats_.frames;
  const LinkFaults& f = plan_.faults_for(src, dst);

  // Fixed draw schedule -- five values per frame regardless of outcome --
  // so the random stream position depends only on the frame count.
  const double u_drop = rng_.next_double();
  const double u_corrupt = rng_.next_double();
  const double u_dup = rng_.next_double();
  const double u_reorder = rng_.next_double();
  const double u_jitter = rng_.next_double();

  const sim::TimePoint depart = sim_->now();
  for (const auto& w : plan_.flaps) {
    if (w.covers(src, dst, depart)) {
      ++stats_.flap_drops;
      d.dropped = true;
      return d;
    }
  }

  if (u_drop < f.drop_rate) {
    ++stats_.drops;
    d.dropped = true;
    return d;
  }
  if (u_corrupt < f.corrupt_rate) {
    ++stats_.corruptions;
    d.corrupted = true;
  }
  if (u_reorder < f.reorder_rate && f.reorder_jitter > sim::nanoseconds(0)) {
    ++stats_.reorders;
    const auto span = static_cast<double>(f.reorder_jitter.ns);
    d.arrival = d.arrival + sim::nanoseconds(static_cast<std::int64_t>(u_jitter * span));
  }
  if (u_dup < f.duplicate_rate) {
    ++stats_.duplicates;
    d.duplicated = true;
    // The stale copy trails the (possibly jittered) original by one jitter
    // span, or 1 ms on plans without jitter configured.
    const sim::Duration lag =
        f.reorder_jitter > sim::nanoseconds(0) ? f.reorder_jitter : sim::milliseconds(1);
    d.dup_arrival = d.arrival + lag;
  }
  return d;
}

}  // namespace pdc::fault
