// pdceval -- host-node parallel JPEG compression (paper Section 3.3, app 1).
//
// Rank 0 (the host) slices the image into 8-row-aligned strips, ships each
// worker its strip (distribution phase), compresses its own strip, then
// collects the workers' symbol streams in rank order (collection phase).
// Heavy communication at both ends, none in the middle -- exactly the
// paper's three-phase structure.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/jpeg/codec.hpp"
#include "mp/communicator.hpp"
#include "sim/task.hpp"

namespace pdc::apps::jpeg {

/// Run the parallel compression on this rank. On rank 0, `*out` receives
/// the complete symbol stream (identical to serial compress()); other ranks
/// leave it untouched. `img` need only be populated on rank 0.
sim::Task<void> compress_distributed(mp::Communicator& comm, const Image& img, int quality,
                                     std::vector<std::int16_t>* out);

}  // namespace pdc::apps::jpeg
