#include "apps/jpeg/parallel.hpp"

#include <utility>

#include "mp/pack.hpp"

namespace pdc::apps::jpeg {

namespace {

constexpr int kTagSlice = 101;
constexpr int kTagStream = 102;

struct Strip {
  int row_begin;
  int row_end;
};

/// 8-row-aligned strip assignment; the first strip may be slightly larger
/// (the paper: "one portion can be slightly larger than the rest").
Strip strip_for(int rank, int procs, int height) {
  const int strips = height / kBlock;
  const int begin = static_cast<int>(static_cast<std::int64_t>(strips) * rank / procs);
  const int end = static_cast<int>(static_cast<std::int64_t>(strips) * (rank + 1) / procs);
  return {begin * kBlock, end * kBlock};
}

}  // namespace

sim::Task<void> compress_distributed(mp::Communicator& comm, const Image& img, int quality,
                                     std::vector<std::int16_t>* out) {
  const int procs = comm.size();
  const int rank = comm.rank();

  if (rank == 0) {
    // Distribution phase: ship each worker its pixel strip.
    for (int r = 1; r < procs; ++r) {
      const Strip s = strip_for(r, procs, img.height);
      mp::Packer pk;
      pk.reserve(3 * sizeof(std::int32_t) + sizeof(std::uint64_t) +
                 static_cast<std::size_t>(s.row_end - s.row_begin) *
                     static_cast<std::size_t>(img.width));
      pk.put<std::int32_t>(img.width);
      pk.put<std::int32_t>(s.row_end - s.row_begin);
      pk.put<std::int32_t>(quality);
      pk.put_span<std::uint8_t>(std::span<const std::uint8_t>(
          img.pixels.data() + static_cast<std::size_t>(s.row_begin) *
                                  static_cast<std::size_t>(img.width),
          static_cast<std::size_t>(s.row_end - s.row_begin) *
              static_cast<std::size_t>(img.width)));
      co_await comm.send(r, kTagSlice, pk.finish());
    }
    // Compute phase: the host compresses its own strip too.
    const Strip mine = strip_for(0, procs, img.height);
    co_await comm.compute_flops(blocks_in(img.width, mine.row_end - mine.row_begin) *
                                kFlopsPerBlock);
    std::vector<std::int16_t> stream = compress_rows(img, mine.row_begin, mine.row_end, quality);
    // Collection phase: keep the worker payloads and splice their symbol
    // streams in rank order straight from the borrowed spans.
    std::vector<mp::Payload> parts(static_cast<std::size_t>(procs));
    for (int r = 1; r < procs; ++r) {
      mp::Message m = co_await comm.recv(mp::kAnySource, kTagStream);
      parts[static_cast<std::size_t>(m.src)] = std::move(m.data);
    }
    if (out != nullptr) {
      out->clear();
      out->insert(out->end(), stream.begin(), stream.end());
      for (int r = 1; r < procs; ++r) {
        mp::PayloadReader u(parts[static_cast<std::size_t>(r)]);
        const auto s = u.get_span<std::int16_t>();
        out->insert(out->end(), s.begin(), s.end());
      }
    }
    co_return;
  }

  // Worker: receive strip, compress, return the symbol stream.
  mp::Message m = co_await comm.recv(0, kTagSlice);
  mp::PayloadReader u(m.data);
  const auto width = u.get<std::int32_t>();
  const auto rows = u.get<std::int32_t>();
  const auto q = u.get<std::int32_t>();
  Image slice{width, rows, u.get_vector<std::uint8_t>()};  // Image owns its pixels
  co_await comm.compute_flops(blocks_in(width, rows) * kFlopsPerBlock);
  std::vector<std::int16_t> stream = compress(slice, q);
  mp::Packer reply;
  reply.reserve(sizeof(std::uint64_t) + stream.size() * sizeof(std::int16_t));
  reply.put_span<std::int16_t>(std::span<const std::int16_t>(stream));
  co_await comm.send(0, kTagStream, reply.finish());
}

}  // namespace pdc::apps::jpeg
