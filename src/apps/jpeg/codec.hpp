// pdceval -- JPEG-style image compression (SU PDABS, paper Section 3.3.1).
//
// A real DCT-based codec: 8x8 forward DCT, standard luminance quantisation,
// zigzag scan, zero run-length encoding. Grayscale, no Huffman stage (the
// RLE symbol stream is the "compressed" artefact) -- enough to exercise the
// same data movement and per-block computation structure as the paper's
// JPEG simulation, and fully invertible up to quantisation error so tests
// can check PSNR and distributed-vs-serial bit-exactness.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace pdc::apps::jpeg {

inline constexpr int kBlock = 8;

struct Image {
  int width{0};
  int height{0};
  std::vector<std::uint8_t> pixels;  // row-major, width*height

  [[nodiscard]] std::uint8_t at(int x, int y) const {
    return pixels[static_cast<std::size_t>(y) * static_cast<std::size_t>(width) +
                  static_cast<std::size_t>(x)];
  }
};

/// Deterministic synthetic photo-like test image (smooth gradients +
/// texture + edges), seeded.
[[nodiscard]] Image make_test_image(int width, int height, std::uint64_t seed);

/// Forward 8x8 DCT-II of a (level-shifted) block; naive O(n^4), as 1995
/// reference code was.
void forward_dct(const double in[kBlock][kBlock], double out[kBlock][kBlock]);
void inverse_dct(const double in[kBlock][kBlock], double out[kBlock][kBlock]);

/// Standard JPEG luminance quantisation table scaled by quality (1..100).
[[nodiscard]] std::array<int, kBlock * kBlock> quant_table(int quality);

/// Compress a whole image (dimensions must be multiples of 8).
[[nodiscard]] std::vector<std::int16_t> compress(const Image& img, int quality);

/// Compress only rows [row_begin, row_end) -- the unit of parallel work.
[[nodiscard]] std::vector<std::int16_t> compress_rows(const Image& img, int row_begin,
                                                      int row_end, int quality);

/// Decompress a symbol stream produced by compress() back to an image.
[[nodiscard]] Image decompress(std::span<const std::int16_t> stream, int width, int height,
                               int quality);

/// Peak signal-to-noise ratio between two equal-sized images (dB).
[[nodiscard]] double psnr(const Image& a, const Image& b);

/// Modelled computational cost of one 8x8 block (DCT + quantisation +
/// entropy coding in unoptimised 1995 C), in flops. Calibrated so a serial
/// 512x512 compression takes ~4.2 s on the paper's 150 MHz Alpha.
inline constexpr double kFlopsPerBlock = 41000.0;

[[nodiscard]] inline double blocks_in(int width, int height) {
  return (static_cast<double>(width) / kBlock) * (static_cast<double>(height) / kBlock);
}

}  // namespace pdc::apps::jpeg
