#include "apps/jpeg/codec.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "kernels/dct.hpp"
#include "kernels/hostwork.hpp"
#include "sim/rng.hpp"

namespace pdc::apps::jpeg {

namespace {

// Standard JPEG Annex K luminance quantisation table.
constexpr int kBaseQuant[kBlock * kBlock] = {
    16, 11, 10, 16, 24,  40,  51,  61,   //
    12, 12, 14, 19, 26,  58,  60,  55,   //
    14, 13, 16, 24, 40,  57,  69,  56,   //
    14, 17, 22, 29, 51,  87,  80,  62,   //
    18, 22, 37, 56, 68,  109, 103, 77,   //
    24, 35, 55, 64, 81,  104, 113, 92,   //
    49, 64, 78, 87, 103, 121, 120, 101,  //
    72, 92, 95, 98, 112, 100, 103, 99};

// Zigzag scan order for an 8x8 block.
constexpr int kZigzag[kBlock * kBlock] = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,   //
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,  //
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,  //
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};

constexpr std::int16_t kEndOfBlock = std::int16_t{-32768};

}  // namespace

Image make_test_image(int width, int height, std::uint64_t seed) {
  if (width <= 0 || height <= 0) throw std::invalid_argument("make_test_image: bad size");
  Image img{width, height, std::vector<std::uint8_t>(
                               static_cast<std::size_t>(width) * static_cast<std::size_t>(height))};
  sim::Rng rng(seed);
  // Smooth background + low-frequency blobs + a few hard edges + noise:
  // compresses like a photograph rather than like random bytes.
  const double cx = width * 0.4, cy = height * 0.6;
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      double v = 96.0 + 48.0 * std::sin(x * 0.021) * std::cos(y * 0.017);
      const double d = std::hypot(x - cx, y - cy);
      v += 64.0 * std::exp(-d * d / (0.02 * width * width));
      if ((x / 32 + y / 32) % 7 == 0) v += 40.0;  // blocky structure
      v += (rng.next_double() - 0.5) * 12.0;      // sensor noise
      img.pixels[static_cast<std::size_t>(y) * static_cast<std::size_t>(width) +
                 static_cast<std::size_t>(x)] =
          static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0));
    }
  }
  return img;
}

void forward_dct(const double in[kBlock][kBlock], double out[kBlock][kBlock]) {
  kernels::forward_dct(in, out);
}

void inverse_dct(const double in[kBlock][kBlock], double out[kBlock][kBlock]) {
  kernels::inverse_dct(in, out);
}

std::array<int, kBlock * kBlock> quant_table(int quality) {
  quality = std::clamp(quality, 1, 100);
  const int scale = quality < 50 ? 5000 / quality : 200 - 2 * quality;
  std::array<int, kBlock * kBlock> q{};
  for (int i = 0; i < kBlock * kBlock; ++i) {
    q[static_cast<std::size_t>(i)] = std::clamp((kBaseQuant[i] * scale + 50) / 100, 1, 255);
  }
  return q;
}

namespace {

/// Reusable per-strip scratch: the block pipeline (level-shift -> DCT ->
/// zigzag/quantise/RLE) runs every block through these two stack arrays and
/// the quantiser divisors precomputed once per strip. The divisor is the
/// same int-table entry converted to double once instead of per
/// coefficient -- bit-identical division, fewer int->fp conversions.
struct BlockScratch {
  double block[kBlock][kBlock];
  double coeffs[kBlock][kBlock];
  double quant[kBlock * kBlock];

  explicit BlockScratch(int quality) {
    const auto q = quant_table(quality);
    for (int i = 0; i < kBlock * kBlock; ++i) {
      quant[i] = static_cast<double>(q[static_cast<std::size_t>(i)]);
    }
  }
};

void encode_block(const Image& img, int bx, int by, BlockScratch& s,
                  std::vector<std::int16_t>& out) {
  for (int x = 0; x < kBlock; ++x) {
    for (int y = 0; y < kBlock; ++y) {
      s.block[x][y] = static_cast<double>(img.at(bx + y, by + x)) - 128.0;
    }
  }
  forward_dct(s.block, s.coeffs);
  // Zigzag + quantise + RLE: (zero-run, value) pairs, EOB sentinel.
  std::int16_t run = 0;
  for (int i = 0; i < kBlock * kBlock; ++i) {
    const int idx = kZigzag[i];
    const double c = s.coeffs[idx / kBlock][idx % kBlock];
    const auto quantised = static_cast<std::int16_t>(std::lround(c / s.quant[idx]));
    if (quantised == 0) {
      ++run;
      continue;
    }
    out.push_back(run);
    out.push_back(quantised);
    run = 0;
  }
  out.push_back(kEndOfBlock);
}

}  // namespace

std::vector<std::int16_t> compress_rows(const Image& img, int row_begin, int row_end,
                                        int quality) {
  if (img.width % kBlock != 0 || img.height % kBlock != 0) {
    throw std::invalid_argument("compress: image dimensions must be multiples of 8");
  }
  if (row_begin % kBlock != 0 || row_end % kBlock != 0 || row_begin < 0 ||
      row_end > img.height || row_begin > row_end) {
    throw std::invalid_argument("compress_rows: row range must align to 8-row strips");
  }
  kernels::ScopedHostWork probe;
  BlockScratch scratch(quality);
  std::vector<std::int16_t> out;
  out.reserve(static_cast<std::size_t>((row_end - row_begin)) *
              static_cast<std::size_t>(img.width) / 8);
  for (int by = row_begin; by < row_end; by += kBlock) {
    for (int bx = 0; bx < img.width; bx += kBlock) {
      encode_block(img, bx, by, scratch, out);
    }
  }
  return out;
}

std::vector<std::int16_t> compress(const Image& img, int quality) {
  return compress_rows(img, 0, img.height, quality);
}

Image decompress(std::span<const std::int16_t> stream, int width, int height, int quality) {
  if (width % kBlock != 0 || height % kBlock != 0) {
    throw std::invalid_argument("decompress: bad dimensions");
  }
  kernels::ScopedHostWork probe;
  BlockScratch scratch(quality);
  Image img{width, height,
            std::vector<std::uint8_t>(static_cast<std::size_t>(width) *
                                      static_cast<std::size_t>(height))};
  std::size_t pos = 0;
  for (int by = 0; by < height; by += kBlock) {
    for (int bx = 0; bx < width; bx += kBlock) {
      for (auto& row : scratch.coeffs) {
        for (double& c : row) c = 0.0;
      }
      int i = 0;
      while (true) {
        if (pos >= stream.size()) throw std::invalid_argument("decompress: truncated stream");
        const std::int16_t sym = stream[pos++];
        if (sym == kEndOfBlock) break;
        if (pos >= stream.size()) throw std::invalid_argument("decompress: truncated pair");
        i += sym;  // zero run
        if (i >= kBlock * kBlock) throw std::invalid_argument("decompress: run overflow");
        const int idx = kZigzag[i];
        scratch.coeffs[idx / kBlock][idx % kBlock] =
            static_cast<double>(stream[pos++]) * scratch.quant[idx];
        ++i;
      }
      inverse_dct(scratch.coeffs, scratch.block);
      for (int x = 0; x < kBlock; ++x) {
        for (int y = 0; y < kBlock; ++y) {
          img.pixels[static_cast<std::size_t>(by + x) * static_cast<std::size_t>(width) +
                     static_cast<std::size_t>(bx + y)] =
              static_cast<std::uint8_t>(std::clamp(scratch.block[x][y] + 128.0, 0.0, 255.0));
        }
      }
    }
  }
  if (pos != stream.size()) throw std::invalid_argument("decompress: trailing data");
  return img;
}

double psnr(const Image& a, const Image& b) {
  if (a.width != b.width || a.height != b.height) {
    throw std::invalid_argument("psnr: size mismatch");
  }
  double mse = 0.0;
  for (std::size_t i = 0; i < a.pixels.size(); ++i) {
    const double d = static_cast<double>(a.pixels[i]) - static_cast<double>(b.pixels[i]);
    mse += d * d;
  }
  mse /= static_cast<double>(a.pixels.size());
  if (mse == 0.0) return 99.0;
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

}  // namespace pdc::apps::jpeg
