#include "apps/mc/montecarlo.hpp"

#include <vector>

#include "kernels/mc.hpp"
#include "mp/pack.hpp"
#include "sim/rng.hpp"

namespace pdc::apps::mc {

namespace {

constexpr int kTagPartial = 301;  // + round
constexpr int kTagFinal = 351;    // + round (disjoint from kTagPartial range)

/// The batch evaluated by (rank, round): deterministic, disjoint streams.
double batch_sum(std::uint64_t seed, int rank, int round, std::int64_t count) {
  sim::Rng rng(seed ^ (static_cast<std::uint64_t>(rank) << 32) ^
               static_cast<std::uint64_t>(round) * 0x9E3779B97F4A7C15ULL);
  return kernels::inv_quad_sum(rng, count);
}

}  // namespace

sim::Task<void> integrate_distributed(mp::Communicator& comm, std::int64_t total_samples,
                                      int rounds, std::uint64_t seed, Result* out) {
  const int procs = comm.size();
  const int rank = comm.rank();
  const std::int64_t per_rank = total_samples / procs;
  const std::int64_t per_round = per_rank / rounds;

  double running = 0.0;
  for (int round = 0; round < rounds; ++round) {
    co_await comm.compute_flops(static_cast<double>(per_round) * kFlopsPerSample);
    const double partial = batch_sum(seed, rank, round, per_round);

    if (comm.has_global_sum()) {
      std::vector<double> v(1, partial);
      co_await comm.global_sum(v);
      running += v[0];
    } else {
      // PVM path (no global operation): collect at the master, then
      // multicast the round's total back so every rank holds the same
      // running estimate the other tools' global sum provides.
      double round_total = partial;
      if (rank == 0) {
        for (int r = 1; r < procs; ++r) {
          mp::Message m = co_await comm.recv(mp::kAnySource, kTagPartial + round);
          round_total += mp::payload_span<double>(*m.data)[0];
        }
      } else {
        const std::vector<double> v(1, partial);
        co_await comm.send(0, kTagPartial + round, mp::pack_vector(v));
      }
      mp::Payload total;
      if (rank == 0) {
        const std::vector<double> v(1, round_total);
        total = mp::pack_vector(v);
      }
      co_await comm.broadcast(0, total, kTagFinal + round);
      running += mp::payload_span<double>(*total)[0];
    }
  }

  if (out != nullptr) {
    out->estimate = running / static_cast<double>(per_round * rounds * procs);
    out->samples = per_round * rounds * procs;
  }
}

Result integrate_serial(std::int64_t total_samples, int rounds, int procs,
                        std::uint64_t seed) {
  const std::int64_t per_rank = total_samples / procs;
  const std::int64_t per_round = per_rank / rounds;
  double sum = 0.0;
  for (int rank = 0; rank < procs; ++rank) {
    for (int round = 0; round < rounds; ++round) {
      sum += batch_sum(seed, rank, round, per_round);
    }
  }
  const std::int64_t n = per_round * rounds * procs;
  return Result{sum / static_cast<double>(n), n};
}

}  // namespace pdc::apps::mc
