// pdceval -- Monte Carlo integration (SU PDABS, paper Section 3.3, app 3).
//
// Estimates pi = integral of 4/(1+x^2) over [0,1] by uniform sampling.
// Compute-intensive, short messages: each of `rounds` phases evaluates a
// batch of samples, then the partial sums are combined -- via the tool's
// global summation (p4_global_op / excombine) or, for PVM (which has none),
// a manual collect-at-master. This is precisely the app the paper uses to
// expose latency and collective-primitive quality.
#pragma once

#include <cstdint>

#include "mp/communicator.hpp"
#include "sim/task.hpp"

namespace pdc::apps::mc {

/// Integrand cost model: RNG + divide + function evaluation in 1995 libm.
inline constexpr double kFlopsPerSample = 45.0;

struct Result {
  double estimate{0.0};       ///< available on every rank after completion
  std::int64_t samples{0};    ///< total samples across ranks
};

/// Distributed integration: `total_samples` split evenly across ranks and
/// `rounds` phases. Deterministic per (seed, rank, round).
sim::Task<void> integrate_distributed(mp::Communicator& comm, std::int64_t total_samples,
                                      int rounds, std::uint64_t seed, Result* out);

/// Serial reference with identical sampling (for verification).
[[nodiscard]] Result integrate_serial(std::int64_t total_samples, int rounds, int procs,
                                      std::uint64_t seed);

}  // namespace pdc::apps::mc
