// pdceval -- LU decomposition (SU PDABS Table 2, numerical class #2).
//
// Right-looking LU without pivoting on a row-cyclic distribution: at step
// k the owner of row k broadcasts it, and every rank eliminates its own
// rows below k. Inputs are made diagonally dominant so no pivoting is
// needed (standard for 1995 teaching codes; documented limitation).
// Elimination order per row matches the serial code exactly, so the
// distributed factors are bit-identical to the serial ones.
#pragma once

#include <cstdint>

#include "apps/linalg/matmul.hpp"
#include "mp/communicator.hpp"
#include "sim/task.hpp"

namespace pdc::apps::linalg {

/// Diagonally dominant deterministic test matrix.
[[nodiscard]] Mat make_dd_matrix(int n, std::uint64_t seed);

/// Serial in-place LU (L below the unit diagonal, U on/above it).
[[nodiscard]] Mat lu_serial(Mat a);

/// Reconstruct L*U from a packed factorisation (test helper).
[[nodiscard]] Mat lu_reconstruct(const Mat& lu);

/// Distributed LU of `a` (populated on rank 0; scattered row-cyclically).
/// Rank 0's `*lu_out` receives the gathered packed factors.
sim::Task<void> lu_distributed(mp::Communicator& comm, const Mat& a, Mat* lu_out);

}  // namespace pdc::apps::linalg
