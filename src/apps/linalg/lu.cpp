#include "apps/linalg/lu.hpp"

#include <cmath>
#include <stdexcept>

#include "kernels/linalg.hpp"
#include "mp/pack.hpp"
#include "sim/rng.hpp"

namespace pdc::apps::linalg {

namespace {
constexpr int kTagScatter = 511;
constexpr int kTagPivotRow = 1024;  // + step (disjoint from gather range)
constexpr int kTagGather = 8192;    // + row index
}  // namespace

Mat make_dd_matrix(int n, std::uint64_t seed) {
  Mat m = make_test_matrix(n, seed);
  for (int i = 0; i < n; ++i) m.at(i, i) += static_cast<double>(n);  // dominance
  return m;
}

Mat lu_serial(Mat a) {
  const int n = a.n;
  for (int k = 0; k < n; ++k) {
    const double pivot = a.at(k, k);
    if (pivot == 0.0) throw std::domain_error("lu_serial: zero pivot");
    for (int i = k + 1; i < n; ++i) {
      const double f = a.at(i, k) / pivot;
      a.at(i, k) = f;
      kernels::rank1_sub(&a.at(i, 0), &a.at(k, 0), f, k + 1, n);
    }
  }
  return a;
}

Mat lu_reconstruct(const Mat& lu) {
  const int n = lu.n;
  Mat out{n, std::vector<double>(lu.a.size(), 0.0)};
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      double sum = 0.0;
      const int kmax = std::min(i, j);
      for (int k = 0; k <= kmax; ++k) {
        const double l = (k == i) ? 1.0 : lu.at(i, k);
        sum += l * lu.at(k, j);
      }
      out.at(i, j) = sum;
    }
  }
  return out;
}

sim::Task<void> lu_distributed(mp::Communicator& comm, const Mat& a, Mat* lu_out) {
  const int procs = comm.size();
  const int rank = comm.rank();

  // Scatter rows cyclically: row i lives on rank i % procs.
  mp::Bytes header;
  if (rank == 0) {
    mp::Packer pk;
    pk.put<std::int32_t>(a.n);
    header = *pk.finish();
  }
  co_await comm.broadcast(0, header, kTagScatter);
  const int n = mp::Unpacker(header).get<std::int32_t>();

  const int my_rows = n / procs + (rank < n % procs ? 1 : 0);
  std::vector<std::vector<double>> rows(static_cast<std::size_t>(my_rows));
  if (rank == 0) {
    for (int i = 0; i < n; ++i) {
      std::span<const double> row(a.a.data() + static_cast<std::size_t>(i) *
                                                   static_cast<std::size_t>(n),
                                  static_cast<std::size_t>(n));
      if (i % procs == 0) {
        rows[static_cast<std::size_t>(i / procs)].assign(row.begin(), row.end());
      } else {
        co_await comm.send(i % procs, kTagScatter, mp::pack_vector(row));
      }
    }
  } else {
    for (int r = 0; r < my_rows; ++r) {
      mp::Message m = co_await comm.recv(0, kTagScatter);
      rows[static_cast<std::size_t>(r)] = mp::unpack_vector<double>(*m.data);
    }
  }

  // Factorise: owner broadcasts row k; everyone updates their rows > k.
  for (int k = 0; k < n; ++k) {
    const int owner = k % procs;
    mp::Bytes pivot_bytes;
    if (rank == owner) {
      pivot_bytes = *mp::pack_vector(
          std::span<const double>(rows[static_cast<std::size_t>(k / procs)]));
    }
    co_await comm.broadcast(owner, pivot_bytes, kTagPivotRow + k);
    const auto pivot_row = mp::unpack_vector<double>(pivot_bytes);
    const double pivot = pivot_row[static_cast<std::size_t>(k)];
    if (pivot == 0.0) throw std::domain_error("lu_distributed: zero pivot");

    // My rows strictly below k: global index i = rank + r*procs.
    double updated = 0;
    for (int r = 0; r < my_rows; ++r) {
      const int i = rank + r * procs;
      if (i <= k) continue;
      auto& row = rows[static_cast<std::size_t>(r)];
      const double f = row[static_cast<std::size_t>(k)] / pivot;
      row[static_cast<std::size_t>(k)] = f;
      kernels::rank1_sub(row.data(), pivot_row.data(), f, k + 1, n);
      ++updated;
    }
    co_await comm.compute_flops(updated * 2.0 * (n - k));
  }

  // Gather the packed factors on rank 0.
  if (rank == 0) {
    if (lu_out != nullptr) {
      lu_out->n = n;
      lu_out->a.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0.0);
      for (int r = 0; r < my_rows; ++r) {
        const int i = r * procs;
        std::copy(rows[static_cast<std::size_t>(r)].begin(),
                  rows[static_cast<std::size_t>(r)].end(),
                  lu_out->a.begin() + static_cast<std::ptrdiff_t>(i) * n);
      }
      for (int i = 0; i < n; ++i) {
        if (i % procs == 0) continue;
        mp::Message m = co_await comm.recv(i % procs, kTagGather + i);
        const auto row = mp::unpack_vector<double>(*m.data);
        std::copy(row.begin(), row.end(), lu_out->a.begin() + static_cast<std::ptrdiff_t>(i) * n);
      }
    } else {
      for (int i = 0; i < n; ++i) {
        if (i % procs != 0) (void)co_await comm.recv(i % procs, kTagGather + i);
      }
    }
  } else {
    for (int r = 0; r < my_rows; ++r) {
      const int i = rank + r * procs;
      co_await comm.send(0, kTagGather + i,
                         mp::pack_vector(std::span<const double>(rows[static_cast<std::size_t>(r)])));
    }
  }
}

}  // namespace pdc::apps::linalg
