#include "apps/linalg/matmul.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "kernels/linalg.hpp"
#include "mp/pack.hpp"
#include "sim/rng.hpp"

namespace pdc::apps::linalg {

namespace {
constexpr int kTagRows = 501;
constexpr int kTagB = 502;
constexpr int kTagResult = 503;
}  // namespace

Mat make_test_matrix(int n, std::uint64_t seed) {
  if (n <= 0) throw std::invalid_argument("make_test_matrix: bad size");
  Mat m{n, std::vector<double>(static_cast<std::size_t>(n) * static_cast<std::size_t>(n))};
  sim::Rng rng(seed);
  for (auto& x : m.a) x = rng.next_double() * 2.0 - 1.0;
  return m;
}

Mat multiply_serial(const Mat& a, const Mat& b) {
  if (a.n != b.n) throw std::invalid_argument("multiply_serial: size mismatch");
  const int n = a.n;
  Mat c{n, std::vector<double>(a.a.size())};
  kernels::matmul_rows(a.a.data(), n, b.a.data(), n, c.a.data());
  return c;
}

double max_abs_diff(const Mat& a, const Mat& b) {
  if (a.n != b.n) throw std::invalid_argument("max_abs_diff: size mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < a.a.size(); ++i) {
    worst = std::max(worst, std::abs(a.a[i] - b.a[i]));
  }
  return worst;
}

sim::Task<void> multiply_distributed(mp::Communicator& comm, const Mat& a, const Mat& b,
                                     Mat* c_out) {
  const int procs = comm.size();
  const int rank = comm.rank();
  // The matrix order is agreed via the broadcast of B (workers do not see
  // `a`/`b` directly -- data genuinely moves through the tool).
  mp::Bytes b_bytes;
  int n = 0;
  if (rank == 0) {
    n = a.n;
    if (a.n != b.n) throw std::invalid_argument("multiply_distributed: size mismatch");
    if (n % procs != 0) {
      throw std::invalid_argument("multiply_distributed: procs must divide n");
    }
    mp::Packer pk;
    pk.put<std::int32_t>(n);
    pk.put_span<double>(std::span<const double>(b.a));
    b_bytes = *pk.finish();
  }
  co_await comm.broadcast(0, b_bytes, kTagB);
  mp::Unpacker ub(b_bytes);
  n = ub.get<std::int32_t>();
  Mat local_b{n, ub.get_vector<double>()};
  const int rows = n / procs;

  // Scatter row blocks of A.
  std::vector<double> my_rows;
  if (rank == 0) {
    my_rows.assign(a.a.begin(), a.a.begin() + static_cast<std::ptrdiff_t>(rows) * n);
    for (int r = 1; r < procs; ++r) {
      co_await comm.send(
          r, kTagRows,
          mp::pack_vector(std::span<const double>(
              a.a.data() + static_cast<std::size_t>(r) * static_cast<std::size_t>(rows) *
                               static_cast<std::size_t>(n),
              static_cast<std::size_t>(rows) * static_cast<std::size_t>(n))));
    }
  } else {
    mp::Message m = co_await comm.recv(0, kTagRows);
    my_rows = mp::unpack_vector<double>(*m.data);
  }

  // Local block product (real arithmetic, billed).
  co_await comm.compute_flops(2.0 * rows * static_cast<double>(n) * n);
  std::vector<double> my_c(static_cast<std::size_t>(rows) * static_cast<std::size_t>(n));
  kernels::matmul_rows(my_rows.data(), rows, local_b.a.data(), n, my_c.data());

  // Gather C at rank 0.
  if (rank == 0) {
    if (c_out != nullptr) {
      c_out->n = n;
      c_out->a.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0.0);
      std::copy(my_c.begin(), my_c.end(), c_out->a.begin());
      for (int r = 1; r < procs; ++r) {
        mp::Message m = co_await comm.recv(mp::kAnySource, kTagResult);
        const auto part = mp::unpack_vector<double>(*m.data);
        std::copy(part.begin(), part.end(),
                  c_out->a.begin() + static_cast<std::ptrdiff_t>(m.src) * rows * n);
      }
    } else {
      for (int r = 1; r < procs; ++r) (void)co_await comm.recv(mp::kAnySource, kTagResult);
    }
  } else {
    co_await comm.send(0, kTagResult, mp::pack_vector(my_c));
  }
}

}  // namespace pdc::apps::linalg
