// pdceval -- dense matrix multiplication (SU PDABS Table 2, numerical
// class #4).
//
// C = A x B with A row-partitioned across ranks and B broadcast -- the
// standard 1995 host-node formulation. Real arithmetic; billed at 2*n^3/P
// flops per rank.
#pragma once

#include <cstdint>
#include <vector>

#include "mp/communicator.hpp"
#include "sim/task.hpp"

namespace pdc::apps::linalg {

/// Row-major square matrix.
struct Mat {
  int n{0};
  std::vector<double> a;

  [[nodiscard]] double& at(int r, int c) {
    return a[static_cast<std::size_t>(r) * static_cast<std::size_t>(n) +
             static_cast<std::size_t>(c)];
  }
  [[nodiscard]] double at(int r, int c) const {
    return a[static_cast<std::size_t>(r) * static_cast<std::size_t>(n) +
             static_cast<std::size_t>(c)];
  }
};

[[nodiscard]] Mat make_test_matrix(int n, std::uint64_t seed);

[[nodiscard]] Mat multiply_serial(const Mat& a, const Mat& b);

/// Max |a-b| over all entries.
[[nodiscard]] double max_abs_diff(const Mat& a, const Mat& b);

/// Distributed C = A x B. `a` and `b` need only be populated on rank 0;
/// rank 0's `*c_out` receives the gathered product. `n` must be divisible
/// by size().
sim::Task<void> multiply_distributed(mp::Communicator& comm, const Mat& a, const Mat& b,
                                     Mat* c_out);

}  // namespace pdc::apps::linalg
