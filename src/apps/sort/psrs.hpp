// pdceval -- Parallel Sorting by Regular Sampling (SU PDABS, paper Section
// 3.3, app 4).
//
// The classic PSRS phases: local sort, regular sampling, pivot selection at
// the master, pivot broadcast, all-to-all partition exchange, local k-way
// merge. "Computation and communication requirements are data dependent"
// (paper) -- partition sizes vary with the data, and the exchange is the
// all-to-all pattern where PVM's asynchronous buffered sends shine.
#pragma once

#include <cstdint>
#include <vector>

#include "mp/communicator.hpp"
#include "sim/task.hpp"

namespace pdc::apps::sort {

/// Modelled cost: comparisons-and-moves per element per log2 level, in
/// integer ops (branchy 1995 quicksort/mergesort, cold caches).
inline constexpr double kOpsPerCompare = 4.0;

/// Deterministic input block for (seed, rank): `count` int32 keys.
[[nodiscard]] std::vector<std::int32_t> make_input(std::uint64_t seed, int rank,
                                                   std::int64_t count);

/// Run PSRS over `total_keys` split evenly across ranks. With `gather`
/// true, rank 0's `*out` receives the fully sorted sequence, identical to
/// sorting the concatenated inputs serially; production runs leave the
/// sorted partitions distributed (`gather` false), as the paper's code did.
sim::Task<void> psrs_distributed(mp::Communicator& comm, std::int64_t total_keys,
                                 std::uint64_t seed, std::vector<std::int32_t>* out,
                                 bool gather = true);

/// Serial reference: sort of the concatenated per-rank inputs.
[[nodiscard]] std::vector<std::int32_t> sort_serial(std::int64_t total_keys, int procs,
                                                    std::uint64_t seed);

}  // namespace pdc::apps::sort
