#include "apps/sort/psrs.hpp"

#include <algorithm>
#include <cmath>

#include "kernels/sort.hpp"
#include "mp/pack.hpp"
#include "sim/rng.hpp"

namespace pdc::apps::sort {

namespace {

constexpr int kTagSamples = 401;
constexpr int kTagPivots = 402;
constexpr int kTagPartition = 403;
constexpr int kTagGather = 404;

[[nodiscard]] double nlogn(double n) { return n > 1 ? n * std::log2(n) : 0.0; }

}  // namespace

std::vector<std::int32_t> make_input(std::uint64_t seed, int rank, std::int64_t count) {
  sim::Rng rng(seed ^ (static_cast<std::uint64_t>(rank) * 0xA24BAED4963EE407ULL));
  std::vector<std::int32_t> keys(static_cast<std::size_t>(count));
  for (auto& k : keys) k = rng.uniform_i32(-1'000'000'000, 1'000'000'000);
  return keys;
}

sim::Task<void> psrs_distributed(mp::Communicator& comm, std::int64_t total_keys,
                                 std::uint64_t seed, std::vector<std::int32_t>* out,
                                 bool gather) {
  const int procs = comm.size();
  const int rank = comm.rank();
  const std::int64_t local_n = total_keys / procs;
  // Symmetric all-to-all ahead: bypass the pvmd daemons, as real PVM PSRS
  // codes did (no-op for p4/Express).
  comm.set_route_direct(true);

  // Phase 1: local sort (real sort; billed as branchy 1995 code).
  std::vector<std::int32_t> local = make_input(seed, rank, local_n);
  co_await comm.compute_intops(nlogn(static_cast<double>(local_n)) * kOpsPerCompare);
  kernels::sort_i32(local);

  if (procs == 1) {
    if (out != nullptr) *out = std::move(local);
    co_return;
  }

  // Phase 2: regular sampling -- p samples at stride n/p.
  std::vector<std::int32_t> samples(static_cast<std::size_t>(procs));
  for (int i = 0; i < procs; ++i) {
    samples[static_cast<std::size_t>(i)] =
        local[static_cast<std::size_t>(i * local_n / procs)];
  }

  // Phase 3: master gathers p^2 samples, sorts them, picks p-1 pivots.
  std::vector<std::int32_t> pivots;
  if (rank == 0) {
    std::vector<std::int32_t> all = samples;
    for (int r = 1; r < procs; ++r) {
      mp::Message m = co_await comm.recv(mp::kAnySource, kTagSamples);
      const auto s = mp::payload_span<std::int32_t>(*m.data);
      all.insert(all.end(), s.begin(), s.end());
    }
    co_await comm.compute_intops(nlogn(static_cast<double>(all.size())) * kOpsPerCompare);
    kernels::sort_i32(all);
    for (int i = 1; i < procs; ++i) {
      pivots.push_back(all[static_cast<std::size_t>(i * procs + procs / 2 - 1)]);
    }
  } else {
    co_await comm.send(0, kTagSamples, mp::pack_vector(samples));
  }

  // Phase 4: pivot broadcast -- every rank borrows the same shared payload.
  mp::Payload pivot_pay;
  if (rank == 0) pivot_pay = mp::pack_vector(pivots);
  co_await comm.broadcast(0, pivot_pay, kTagPivots);
  if (rank != 0) {
    const auto s = mp::payload_span<std::int32_t>(*pivot_pay);
    pivots.assign(s.begin(), s.end());
  }

  // Phase 5: partition by pivots and exchange (all-to-all). `local` is
  // sorted, so the partitions are contiguous slices: find the p-1 boundary
  // indices and send spans straight out of `local` -- no per-destination
  // vector materialisation.
  std::vector<std::size_t> bounds(static_cast<std::size_t>(procs) + 1);
  bounds[0] = 0;
  for (int i = 0; i < procs - 1; ++i) {
    const auto next = std::upper_bound(local.begin(), local.end(),
                                       pivots[static_cast<std::size_t>(i)]);
    bounds[static_cast<std::size_t>(i) + 1] =
        static_cast<std::size_t>(next - local.begin());
  }
  bounds[static_cast<std::size_t>(procs)] = local.size();
  const auto part_of = [&](int p) {
    return std::span<const std::int32_t>(local)
        .subspan(bounds[static_cast<std::size_t>(p)],
                 bounds[static_cast<std::size_t>(p) + 1] - bounds[static_cast<std::size_t>(p)]);
  };
  co_await comm.compute_intops(static_cast<double>(local_n) * 2.0);  // partition scan
  for (int dst = 0; dst < procs; ++dst) {
    if (dst == rank) continue;
    co_await comm.send(dst, kTagPartition, mp::pack_vector(part_of(dst)));
  }

  // Phase 6: receive my partitions and k-way merge (real merges, billed).
  // Ping-pong between two buffers sized once up front instead of
  // allocating a fresh vector per merge round.
  const auto own = part_of(rank);
  std::vector<std::int32_t> merged(own.begin(), own.end());
  std::vector<std::int32_t> spare;
  const auto headroom = static_cast<std::size_t>(2 * local_n);
  merged.reserve(headroom);
  spare.reserve(headroom);
  for (int i = 1; i < procs; ++i) {
    mp::Message m = co_await comm.recv(mp::kAnySource, kTagPartition);
    const auto piece = mp::payload_span<std::int32_t>(*m.data);  // merge in place from the wire
    spare.resize(merged.size() + piece.size());
    std::merge(merged.begin(), merged.end(), piece.begin(), piece.end(), spare.begin());
    std::swap(merged, spare);
    co_await comm.compute_intops(static_cast<double>(merged.size()) * kOpsPerCompare);
  }

  // Gather the ordered partitions at rank 0 (partition i <= partition i+1).
  if (!gather) co_return;
  if (rank == 0) {
    // Hold the received payloads and splice spans in rank order -- no
    // per-piece vector materialisation.
    std::vector<mp::Payload> pieces(static_cast<std::size_t>(procs));
    for (int r = 1; r < procs; ++r) {
      mp::Message m = co_await comm.recv(mp::kAnySource, kTagGather);
      pieces[static_cast<std::size_t>(m.src)] = std::move(m.data);
    }
    if (out != nullptr) {
      out->clear();
      out->reserve(static_cast<std::size_t>(total_keys));
      out->insert(out->end(), merged.begin(), merged.end());
      for (int r = 1; r < procs; ++r) {
        const auto s = mp::payload_span<std::int32_t>(*pieces[static_cast<std::size_t>(r)]);
        out->insert(out->end(), s.begin(), s.end());
      }
    }
  } else {
    co_await comm.send(0, kTagGather, mp::pack_vector(merged));
  }
}

std::vector<std::int32_t> sort_serial(std::int64_t total_keys, int procs, std::uint64_t seed) {
  std::vector<std::int32_t> all;
  all.reserve(static_cast<std::size_t>(total_keys));
  const std::int64_t local_n = total_keys / procs;
  for (int r = 0; r < procs; ++r) {
    const auto part = make_input(seed, r, local_n);
    all.insert(all.end(), part.begin(), part.end());
  }
  kernels::sort_i32(all);
  return all;
}

}  // namespace pdc::apps::sort
