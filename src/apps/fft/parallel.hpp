// pdceval -- SPMD distributed 2D FFT.
#pragma once

#include "apps/fft/fft.hpp"
#include "mp/communicator.hpp"
#include "sim/task.hpp"

namespace pdc::apps::fft {

/// Distributed 2D FFT of the deterministic test signal `make_test_signal(n,
/// seed)`: each rank owns n/size() contiguous rows (size() must divide n),
/// performs row FFTs, all-to-all transpose, row FFTs, transpose back.
/// With `gather` true, rank 0's `*result` receives the full transformed
/// matrix, equal to fft2d_serial() of the same signal; production runs (and
/// the paper's) leave the result distributed (`gather` false).
sim::Task<void> fft2d_distributed(mp::Communicator& comm, int n, std::uint64_t seed,
                                  Matrix* result, bool gather = true);

}  // namespace pdc::apps::fft
