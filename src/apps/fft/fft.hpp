// pdceval -- 2D Fast Fourier Transform (SU PDABS, paper Section 3.3, app 2).
//
// Real radix-2 Cooley-Tukey over std::complex<double>; the 2D transform is
// row FFTs, transpose, row FFTs (= column FFTs), transpose back. The
// parallel version distributes row blocks and performs the transposes as
// all-to-all block exchanges -- "a distributed 2D-FFT involves transfer of
// large amounts of data between processors" (paper).
#pragma once

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

namespace pdc::apps::fft {

using Complex = std::complex<double>;

/// In-place radix-2 FFT; size must be a power of two.
void fft1d(std::span<Complex> data, bool inverse = false);

/// Row-major N x N matrix helpers.
struct Matrix {
  int n{0};
  std::vector<Complex> data;

  [[nodiscard]] Complex& at(int row, int col) {
    return data[static_cast<std::size_t>(row) * static_cast<std::size_t>(n) +
                static_cast<std::size_t>(col)];
  }
  [[nodiscard]] const Complex& at(int row, int col) const {
    return data[static_cast<std::size_t>(row) * static_cast<std::size_t>(n) +
                static_cast<std::size_t>(col)];
  }
};

/// Deterministic test signal ("a screen of video data", seeded).
[[nodiscard]] Matrix make_test_signal(int n, std::uint64_t seed);

/// Serial reference 2D FFT.
[[nodiscard]] Matrix fft2d_serial(Matrix m, bool inverse = false);

/// Modelled flop cost of one length-n FFT: 5 n log2 n, doubled for the
/// array-index and twiddle bookkeeping of unoptimised 1995 C.
[[nodiscard]] double fft_flops(int n);

/// Largest L2 distance between two matrices (test helper).
[[nodiscard]] double max_abs_diff(const Matrix& a, const Matrix& b);

}  // namespace pdc::apps::fft
