#include "apps/fft/fft.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "kernels/fft.hpp"
#include "sim/rng.hpp"

namespace pdc::apps::fft {

void fft1d(std::span<Complex> data, bool inverse) {
  kernels::fft1d(data, inverse);
}

Matrix make_test_signal(int n, std::uint64_t seed) {
  if (n <= 0 || (n & (n - 1)) != 0) {
    throw std::invalid_argument("make_test_signal: n must be a power of two");
  }
  Matrix m{n, std::vector<Complex>(static_cast<std::size_t>(n) * static_cast<std::size_t>(n))};
  sim::Rng rng(seed);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      // A few coherent tones plus noise: realistic video-ish spectrum.
      const double v = std::sin(0.2 * r) + 0.5 * std::cos(0.31 * c) +
                       0.25 * std::sin(0.07 * (r + 2 * c)) +
                       0.1 * (rng.next_double() - 0.5);
      m.at(r, c) = Complex(v, 0.0);
    }
  }
  return m;
}

Matrix fft2d_serial(Matrix m, bool inverse) {
  const int n = m.n;
  // Rows.
  for (int r = 0; r < n; ++r) {
    fft1d(std::span<Complex>(m.data.data() + static_cast<std::size_t>(r) *
                                                 static_cast<std::size_t>(n),
                             static_cast<std::size_t>(n)),
          inverse);
  }
  // Columns, via transpose / rows / transpose.
  Matrix t{n, std::vector<Complex>(m.data.size())};
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) t.at(c, r) = m.at(r, c);
  }
  for (int r = 0; r < n; ++r) {
    fft1d(std::span<Complex>(t.data.data() + static_cast<std::size_t>(r) *
                                                 static_cast<std::size_t>(n),
                             static_cast<std::size_t>(n)),
          inverse);
  }
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) m.at(c, r) = t.at(r, c);
  }
  return m;
}

double fft_flops(int n) {
  return 2.0 * 5.0 * static_cast<double>(n) * std::log2(static_cast<double>(n));
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  if (a.n != b.n) throw std::invalid_argument("max_abs_diff: size mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < a.data.size(); ++i) {
    worst = std::max(worst, std::abs(a.data[i] - b.data[i]));
  }
  return worst;
}

}  // namespace pdc::apps::fft
