#include "apps/fft/parallel.hpp"

#include <stdexcept>

#include "mp/pack.hpp"

namespace pdc::apps::fft {

namespace {

constexpr int kTagTranspose1 = 201;
constexpr int kTagTranspose2 = 202;
constexpr int kTagGather = 203;

/// Local slab: `rows` contiguous rows of the global matrix.
struct Slab {
  int n;
  int rows;
  std::vector<Complex> data;

  [[nodiscard]] Complex& at(int r, int c) {
    return data[static_cast<std::size_t>(r) * static_cast<std::size_t>(n) +
                static_cast<std::size_t>(c)];
  }
};

/// All-to-all block transpose: after this, my slab holds (transposed)
/// columns [rank*rows, (rank+1)*rows) of the pre-transpose matrix.
sim::Task<void> transpose(mp::Communicator& comm, Slab& slab, int tag) {
  const int procs = comm.size();
  const int rank = comm.rank();
  const int rows = slab.rows;

  // Pack the block destined for each peer: my rows x their columns,
  // stored transposed so the receiver can splice rows directly.
  std::vector<mp::Payload> blocks(static_cast<std::size_t>(procs));
  for (int dst = 0; dst < procs; ++dst) {
    std::vector<Complex> block(static_cast<std::size_t>(rows) *
                               static_cast<std::size_t>(rows));
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < rows; ++c) {
        // transposed: block[(c, r)] = slab[(r, dst*rows + c)]
        block[static_cast<std::size_t>(c) * static_cast<std::size_t>(rows) +
              static_cast<std::size_t>(r)] = slab.at(r, dst * rows + c);
      }
    }
    blocks[static_cast<std::size_t>(dst)] = mp::pack_vector(block);
  }
  co_await comm.compute_copy(static_cast<std::int64_t>(slab.data.size() * sizeof(Complex)));

  // Exchange: keep my own diagonal block, send the rest.
  for (int dst = 0; dst < procs; ++dst) {
    if (dst == rank) continue;
    co_await comm.send(dst, tag, blocks[static_cast<std::size_t>(dst)]);
  }
  // Splice blocks straight out of the immutable payloads (the Message /
  // local Payload keeps the bytes alive while we read).
  auto splice = [&slab, rows](int src, std::span<const Complex> block) {
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < rows; ++c) {
        slab.at(r, src * rows + c) =
            block[static_cast<std::size_t>(r) * static_cast<std::size_t>(rows) +
                  static_cast<std::size_t>(c)];
      }
    }
  };
  splice(rank, mp::payload_span<Complex>(*blocks[static_cast<std::size_t>(rank)]));
  for (int i = 1; i < procs; ++i) {
    mp::Message m = co_await comm.recv(mp::kAnySource, tag);
    splice(m.src, mp::payload_span<Complex>(*m.data));
  }
}

}  // namespace

sim::Task<void> fft2d_distributed(mp::Communicator& comm, int n, std::uint64_t seed,
                                  Matrix* result, bool gather) {
  const int procs = comm.size();
  const int rank = comm.rank();
  if (n % procs != 0) throw std::invalid_argument("fft2d_distributed: procs must divide n");
  const int rows = n / procs;

  // Each rank generates its own rows of the (deterministic) input.
  const Matrix full = make_test_signal(n, seed);
  Slab slab{n, rows, {}};
  slab.data.assign(full.data.begin() + static_cast<std::ptrdiff_t>(rank) * rows * n,
                   full.data.begin() + static_cast<std::ptrdiff_t>(rank + 1) * rows * n);

  auto fft_local_rows = [&]() -> sim::Task<void> {
    co_await comm.compute_flops(static_cast<double>(slab.rows) * fft_flops(n));
    for (int r = 0; r < slab.rows; ++r) {
      fft1d(std::span<Complex>(slab.data.data() + static_cast<std::size_t>(r) *
                                                      static_cast<std::size_t>(n),
                               static_cast<std::size_t>(n)));
    }
  };

  co_await fft_local_rows();                       // row FFTs
  co_await transpose(comm, slab, kTagTranspose1);  // columns become rows
  co_await fft_local_rows();                       // column FFTs
  co_await transpose(comm, slab, kTagTranspose2);  // restore natural layout

  // Gather to rank 0 for verification/output.
  if (!gather) co_return;
  if (rank == 0) {
    if (result != nullptr) {
      result->n = n;
      result->data.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                          Complex{});
      std::copy(slab.data.begin(), slab.data.end(), result->data.begin());
      for (int r = 1; r < procs; ++r) {
        mp::Message m = co_await comm.recv(mp::kAnySource, kTagGather);
        const auto part = mp::payload_span<Complex>(*m.data);
        std::copy(part.begin(), part.end(),
                  result->data.begin() + static_cast<std::ptrdiff_t>(m.src) * rows * n);
      }
    } else {
      for (int r = 1; r < procs; ++r) (void)co_await comm.recv(mp::kAnySource, kTagGather);
    }
  } else {
    co_await comm.send(0, kTagGather, mp::pack_vector(slab.data));
  }
}

}  // namespace pdc::apps::fft
