// pdceval -- a simulated host.
//
// A node couples a CPU model with a protocol-stack resource: every byte
// entering or leaving the host passes through the kernel networking code,
// which is serial per host (one CPU in every platform the paper uses). The
// stack resource is what makes e.g. an 8-way JPEG collect phase queue up at
// the master even on a crossbar network.
#pragma once

#include <cstdint>
#include <string>

#include "host/cpu_model.hpp"
#include "net/network.hpp"
#include "sim/resource.hpp"
#include "sim/simulation.hpp"

namespace pdc::host {

class Node {
 public:
  Node(sim::Simulation& sim, net::NodeId id, CpuModel cpu)
      : id_(id),
        cpu_(std::move(cpu)),
        stack_(sim, cpu_.name + "#" + std::to_string(id) + ".stack") {}

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] net::NodeId id() const noexcept { return id_; }
  [[nodiscard]] const CpuModel& cpu() const noexcept { return cpu_; }
  [[nodiscard]] sim::SerialResource& stack() noexcept { return stack_; }
  [[nodiscard]] const sim::SerialResource& stack() const noexcept { return stack_; }

  /// Kernel cost to push `bytes` through the stack once (crossing + copy).
  [[nodiscard]] sim::Duration stack_service(std::int64_t bytes) const {
    return cpu_.os_crossing + cpu_.copy(bytes);
  }

 private:
  net::NodeId id_;
  CpuModel cpu_;
  sim::SerialResource stack_;
};

}  // namespace pdc::host
