// pdceval -- first-order CPU/host cost model.
//
// Each 1995 platform is characterised by a clock rate, a floating-point
// rate, a memory-copy rate and fixed OS crossing costs. Application compute
// phases bill flops; protocol stacks and tool buffer layers bill copies and
// crossings. Values are calibrated against the paper's Table 3 (see
// EXPERIMENTS.md) and era-typical LINPACK/lmbench numbers.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace pdc::host {

struct CpuModel {
  std::string name;
  double clock_mhz{0};
  double mflops{0};        ///< sustained double-precision Mflop/s
  double copy_mb_s{0};     ///< memcpy bandwidth, MB/s
  sim::Duration os_crossing{};  ///< one syscall + context switch (send or recv)

  /// Time to execute `flops` floating-point operations.
  [[nodiscard]] sim::Duration compute(double flops) const {
    return sim::from_seconds(flops / (mflops * 1e6));
  }

  /// Time to copy `bytes` through memory once.
  [[nodiscard]] sim::Duration copy(std::int64_t bytes) const {
    return sim::from_seconds(static_cast<double>(bytes) / (copy_mb_s * 1e6));
  }

  /// Time for `n` integer/compare-bound operations (sorting, RLE, ...).
  /// Modelled at 1 op per 2 clock cycles, era-typical for RISC integer code.
  [[nodiscard]] sim::Duration int_ops(double ops) const {
    return sim::from_seconds(ops * 2.0 / (clock_mhz * 1e6));
  }
};

}  // namespace pdc::host
