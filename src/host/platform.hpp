// pdceval -- catalogue of the paper's experimental platforms (Section 3.1).
//
// Each PlatformId bundles a CPU model and a network model calibrated to the
// paper's environment at NPAC:
//   SunEthernet -- SPARCstation ELC (33 MHz) on shared 10 Mb/s Ethernet
//   SunAtmLan   -- SPARCstation IPX (40 MHz) on 140 Mb/s ATM (FORE, TAXI)
//   SunAtmWan   -- SPARCstation IPX on NYNET OC-3 ATM WAN (Syracuse-Rome)
//   AlphaFddi   -- DEC Alpha (150 MHz) on switched 100 Mb/s FDDI
//   Sp1Switch   -- IBM SP-1 RS/6000-370 (62.5 MHz) on the Allnode crossbar
//   Sp1Ethernet -- IBM SP-1 nodes on the dedicated Ethernet
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "host/cpu_model.hpp"
#include "host/node.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"

namespace pdc::host {

enum class PlatformId {
  SunEthernet,
  SunAtmLan,
  SunAtmWan,
  AlphaFddi,
  Sp1Switch,
  Sp1Ethernet,
  // Scale-study platforms (ROADMAP item 1): a modern commodity node on
  // three fabric families, sized for up to 4096 ranks. These extend the
  // catalogue without touching the paper's six -- all_platforms() still
  // returns exactly the 1995 field; scale_platforms() returns these.
  ClusterFlat,       ///< single flat 100G crossbar (idealised baseline)
  ClusterFatTree,    ///< 3-level fat-tree, 2:1 oversubscribed uplinks
  ClusterDragonfly,  ///< 64-host groups, per-pair 50G global links
};

[[nodiscard]] const char* to_string(PlatformId id);

struct PlatformSpec {
  PlatformId id;
  std::string name;
  std::int32_t max_nodes;
  CpuModel cpu;
};

[[nodiscard]] const PlatformSpec& platform_spec(PlatformId id);

/// All platforms, in the paper's order.
[[nodiscard]] const std::vector<PlatformId>& all_platforms();

/// The scale-study platforms (flat / fat-tree / dragonfly at up to 4096
/// ranks), kept out of all_platforms() so the paper's tables stay pinned.
[[nodiscard]] const std::vector<PlatformId>& scale_platforms();

/// A cluster: N identical nodes plus the platform's network, living on one
/// simulation. This is the substrate every tool runtime is built on.
class Cluster {
 public:
  Cluster(sim::Simulation& sim, PlatformId platform, std::int32_t nodes);

  [[nodiscard]] sim::Simulation& simulation() noexcept { return sim_; }
  [[nodiscard]] PlatformId platform() const noexcept { return platform_; }
  [[nodiscard]] const PlatformSpec& spec() const { return platform_spec(platform_); }
  [[nodiscard]] std::int32_t size() const noexcept {
    return static_cast<std::int32_t>(nodes_.size());
  }
  /// The node, created on first touch (a 4096-node cluster running a
  /// 2-rank cell materialises 2 Node objects and their stack resources).
  [[nodiscard]] Node& node(net::NodeId i) {
    auto& slot = nodes_.at(static_cast<std::size_t>(i));
    if (!slot) slot = std::make_unique<Node>(sim_, i, spec().cpu);
    return *slot;
  }
  /// Nodes actually created (O(active) state pins in tests).
  [[nodiscard]] std::size_t active_nodes() const noexcept {
    std::size_t n = 0;
    for (const auto& p : nodes_) n += p != nullptr;
    return n;
  }
  [[nodiscard]] net::Network& network() noexcept { return *network_; }

  /// Detach the platform network so a caller can wrap it in a decorator
  /// (e.g. fault::FaultyNetwork) and hand it back via install_network().
  /// The cluster must not be used for traffic while detached, and any
  /// Runtime must be built *after* the swap (it caches reliability).
  [[nodiscard]] std::unique_ptr<net::Network> take_network() noexcept {
    return std::move(network_);
  }
  void install_network(std::unique_ptr<net::Network> network) noexcept {
    network_ = std::move(network);
  }

 private:
  sim::Simulation& sim_;
  PlatformId platform_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unique_ptr<net::Network> network_;
};

}  // namespace pdc::host
