#include "host/platform.hpp"

#include <array>
#include <stdexcept>

#include "net/dragonfly.hpp"
#include "net/fat_tree.hpp"
#include "net/shared_bus.hpp"
#include "net/switched.hpp"

namespace pdc::host {

namespace {

// CPU calibration. `copy_mb_s` is the *network-path* copy rate (copy +
// checksum), which is what TCP-era stacks actually achieved -- well below
// raw memcpy. Sources: paper Table 3 fits (see EXPERIMENTS.md) and
// era-typical lmbench/LINPACK figures.
CpuModel sun_elc() {
  return {.name = "SPARCstation-ELC",
          .clock_mhz = 33,
          .mflops = 5.5,
          .copy_mb_s = 8.0,
          .os_crossing = sim::microseconds(250)};
}
CpuModel sun_ipx() {
  return {.name = "SPARCstation-IPX",
          .clock_mhz = 40,
          .mflops = 7.0,
          .copy_mb_s = 16.0,
          .os_crossing = sim::microseconds(200)};
}
CpuModel alpha_axp() {
  return {.name = "DEC-Alpha-AXP",
          .clock_mhz = 150,
          .mflops = 40.0,
          .copy_mb_s = 45.0,
          .os_crossing = sim::microseconds(60)};
}
CpuModel rs6000_370() {
  return {.name = "RS6000-370",
          .clock_mhz = 62.5,
          .mflops = 22.0,
          .copy_mb_s = 30.0,
          .os_crossing = sim::microseconds(120)};
}

// The scale-study node: a contemporary commodity server. `copy_mb_s` is
// again the network-path copy rate (copy + checksum), far below streaming
// memcpy, matching kernel-bypass-free stacks.
CpuModel cluster_node() {
  return {.name = "Xeon-2.4GHz",
          .clock_mhz = 2400,
          .mflops = 20000.0,
          .copy_mb_s = 6000.0,
          .os_crossing = sim::microseconds(2)};
}

constexpr std::int32_t kScaleMaxNodes = 4096;

const std::array<PlatformSpec, 9> kSpecs = {{
    {PlatformId::SunEthernet, "SUN/Ethernet", 8, sun_elc()},
    {PlatformId::SunAtmLan, "SUN/ATM-LAN", 4, sun_ipx()},
    {PlatformId::SunAtmWan, "SUN/ATM-WAN(NYNET)", 4, sun_ipx()},
    {PlatformId::AlphaFddi, "ALPHA/FDDI", 8, alpha_axp()},
    {PlatformId::Sp1Switch, "IBM-SP1(Switch)", 16, rs6000_370()},
    {PlatformId::Sp1Ethernet, "IBM-SP1(Ethernet)", 16, rs6000_370()},
    {PlatformId::ClusterFlat, "CLUSTER/Flat", kScaleMaxNodes, cluster_node()},
    {PlatformId::ClusterFatTree, "CLUSTER/FatTree", kScaleMaxNodes, cluster_node()},
    {PlatformId::ClusterDragonfly, "CLUSTER/Dragonfly", kScaleMaxNodes, cluster_node()},
}};

std::unique_ptr<net::Network> make_network(sim::Simulation& sim, PlatformId id,
                                           std::int32_t nodes) {
  switch (id) {
    case PlatformId::SunEthernet: {
      net::SharedBusParams p;  // defaults model 10 Mb/s Ethernet
      return std::make_unique<net::SharedBusNetwork>(sim, "ethernet", p);
    }
    case PlatformId::Sp1Ethernet: {
      net::SharedBusParams p;
      p.per_frame_gap = sim::microseconds(60);  // dedicated segment, better drivers
      return std::make_unique<net::SharedBusNetwork>(sim, "sp1-ethernet", p);
    }
    case PlatformId::SunAtmLan: {
      net::SwitchedParams p;
      p.line_rate_bps = 140e6;  // TAXI interface
      p.switch_latency = sim::microseconds(20);
      p.propagation = sim::microseconds(5);
      p.access_overhead = sim::microseconds(120);
      p.cell_payload = 48;
      p.cell_total = 53;
      return std::make_unique<net::SwitchedNetwork>(sim, "atm-lan", nodes, p);
    }
    case PlatformId::SunAtmWan: {
      net::SwitchedParams p;
      p.line_rate_bps = 140e6;
      p.switch_latency = sim::microseconds(20);
      p.propagation = sim::microseconds(320);  // Syracuse <-> Rome NY
      p.access_overhead = sim::microseconds(120);
      p.cell_payload = 48;
      p.cell_total = 53;
      p.trunk_split = nodes / 2 > 0 ? nodes / 2 : 1;  // half the SUNs at each site
      p.trunk_rate_bps = 90e6;  // OC-3 uplink, effective after SONET/cell tax + sharing
      return std::make_unique<net::SwitchedNetwork>(sim, "nynet", nodes, p);
    }
    case PlatformId::AlphaFddi: {
      net::SwitchedParams p;
      p.line_rate_bps = 100e6;
      p.switch_latency = sim::microseconds(15);
      p.propagation = sim::microseconds(5);
      p.access_overhead = sim::microseconds(80);  // token + driver
      p.frame_payload = 4352;                     // FDDI MTU
      p.frame_overhead_bytes = 28;
      return std::make_unique<net::SwitchedNetwork>(sim, "fddi", nodes, p);
    }
    case PlatformId::Sp1Switch: {
      net::SwitchedParams p;
      p.line_rate_bps = 256e6;  // Allnode crossbar, ~32 MB/s per link
      p.switch_latency = sim::microseconds(2);
      p.propagation = sim::microseconds(1);
      p.access_overhead = sim::microseconds(60);
      p.frame_payload = 8192;
      p.frame_overhead_bytes = 16;
      return std::make_unique<net::SwitchedNetwork>(sim, "allnode", nodes, p);
    }
    case PlatformId::ClusterFlat: {
      // Idealised flat crossbar at modern rates: the baseline the
      // hierarchical fabrics are compared against (no shared uplinks, so
      // only endpoint ports ever contend).
      net::SwitchedParams p;
      p.line_rate_bps = 100e9;
      p.switch_latency = sim::microseconds(1);
      p.propagation = sim::microseconds(1);
      p.access_overhead = sim::microseconds(2);
      p.frame_payload = 4096;
      p.frame_overhead_bytes = 48;
      return std::make_unique<net::SwitchedNetwork>(sim, "flat", nodes, p);
    }
    case PlatformId::ClusterFatTree: {
      // Defaults: arity 16, 3 levels (capacity 4096), 8 uplink planes at
      // line rate -> 2:1 oversubscription per tier.
      net::FatTreeParams p;
      return std::make_unique<net::FatTreeNetwork>(sim, "fattree", nodes, p);
    }
    case PlatformId::ClusterDragonfly: {
      // Defaults: 64-host groups, 2 global cables per ordered group pair
      // at half line rate.
      net::DragonflyParams p;
      return std::make_unique<net::DragonflyNetwork>(sim, "dragonfly", nodes, p);
    }
  }
  throw std::logic_error("make_network: unknown platform");
}

}  // namespace

const char* to_string(PlatformId id) { return platform_spec(id).name.c_str(); }

const PlatformSpec& platform_spec(PlatformId id) {
  for (const auto& s : kSpecs) {
    if (s.id == id) return s;
  }
  throw std::logic_error("platform_spec: unknown platform");
}

const std::vector<PlatformId>& all_platforms() {
  static const std::vector<PlatformId> kAll = {
      PlatformId::SunEthernet, PlatformId::SunAtmLan, PlatformId::SunAtmWan,
      PlatformId::AlphaFddi,   PlatformId::Sp1Switch, PlatformId::Sp1Ethernet,
  };
  return kAll;
}

const std::vector<PlatformId>& scale_platforms() {
  static const std::vector<PlatformId> kScale = {
      PlatformId::ClusterFlat,
      PlatformId::ClusterFatTree,
      PlatformId::ClusterDragonfly,
  };
  return kScale;
}

Cluster::Cluster(sim::Simulation& sim, PlatformId platform, std::int32_t nodes)
    : sim_(sim), platform_(platform) {
  const auto& spec = platform_spec(platform);
  if (nodes <= 0) throw std::invalid_argument("Cluster: need at least one node");
  if (nodes > spec.max_nodes) {
    throw std::invalid_argument("Cluster: platform " + spec.name + " has at most " +
                                std::to_string(spec.max_nodes) + " nodes");
  }
  // Node objects (and their stack resources) are created on first touch by
  // node(); construction just sizes the slot table so large-P clusters stay
  // O(active ranks) in memory.
  nodes_.resize(static_cast<std::size_t>(nodes));
  network_ = make_network(sim, platform, nodes);
}

}  // namespace pdc::host
