// pdceval -- discrete-event simulation kernel.
//
// Single-threaded, deterministic. Processes are `Task<void>` coroutines
// spawned on the simulation; they suspend on awaitables (delays, mailboxes,
// locks) and are resumed by the event loop in strict (time, FIFO) order.
#pragma once

#include <coroutine>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace pdc::sim {

/// Thrown when Simulation::run exceeds its event budget -- almost always a
/// runaway process (e.g. a livelocked protocol loop).
class EventBudgetExceeded : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown at the end of run() if any spawned process is still suspended and
/// no event can ever wake it (deadlock).
class DeadlockDetected : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  [[nodiscard]] TimePoint now() const noexcept { return now_; }
  [[nodiscard]] std::uint64_t events_processed() const noexcept { return events_processed_; }

  /// Schedule an arbitrary event at absolute time `at` (>= now()). Events
  /// at exactly now() take the queue's FIFO fast lane (no heap sift).
  void schedule_at(TimePoint at, Event event) {
    if (at < now_) throw std::invalid_argument("Simulation::schedule_at: time in the past");
    if (at == now_) {
      queue_.push_now(at, std::move(event));
    } else {
      queue_.push(at, std::move(event));
    }
  }
  /// Schedule an event `after` from now.
  void schedule_in(Duration after, Event event) { schedule_at(now_ + after, std::move(event)); }
  /// Schedule a coroutine resume (the kernel's non-allocating fast path).
  void schedule_resume(TimePoint at, std::coroutine_handle<> h) {
    schedule_at(at, Event{h});
  }

  /// Launch a root process. It starts at the current simulated time (the
  /// start is itself an event, preserving FIFO order among spawns).
  void spawn(Task<> process, std::string name = {});

  /// Run until the event queue drains (or `until`, whichever first).
  /// Returns the final simulated time. Rethrows the first exception raised
  /// by any root process. Throws DeadlockDetected if the queue drained but
  /// some root process never finished.
  TimePoint run(TimePoint until = {std::numeric_limits<std::int64_t>::max()});

  /// Awaitable: suspend the calling process for `d` (>= 0) simulated time.
  [[nodiscard]] auto delay(Duration d) {
    struct Awaiter {
      Simulation& sim;
      Duration d;
      [[nodiscard]] bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) const {
        sim.schedule_resume(sim.now() + d, h);
      }
      void await_resume() const noexcept {}
    };
    if (d < Duration::zero()) throw std::invalid_argument("Simulation::delay: negative duration");
    return Awaiter{*this, d};
  }

  /// Awaitable: suspend until absolute time `at` (clamped to now()).
  [[nodiscard]] auto delay_until(TimePoint at) {
    return delay(at > now_ ? at - now_ : Duration::zero());
  }

  /// Maximum number of events run() may process before aborting.
  void set_event_budget(std::uint64_t budget) noexcept { event_budget_ = budget; }

  /// Event-queue instrumentation (fast-lane vs heap push mix).
  [[nodiscard]] const EventQueue::Stats& queue_stats() const noexcept { return queue_.stats(); }

 private:
  struct RootProcess {
    Task<> task;
    std::string name;
  };

  TimePoint now_{TimePoint::origin()};
  EventQueue queue_;
  std::vector<std::unique_ptr<RootProcess>> roots_;
  std::uint64_t events_processed_{0};
  std::uint64_t event_budget_{500'000'000};
};

}  // namespace pdc::sim
