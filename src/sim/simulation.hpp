// pdceval -- discrete-event simulation kernel.
//
// Deterministic. Processes are `Task<void>` coroutines spawned on the
// simulation; they suspend on awaitables (delays, mailboxes, locks) and are
// resumed by the event loop in strict (time, FIFO) order.
//
// Two execution engines share that contract:
//
//  * The serial loop (default): one queue, one thread -- exactly the
//    original kernel, untouched on the hot path.
//  * The sharded loop (`configure_shards`): ranks are partitioned into
//    per-thread shards, each with its own EventQueue, advanced window by
//    window under conservative lookahead (Chandy--Misra--Bryant style: the
//    network's minimum cross-rank latency bounds how far any shard may run
//    ahead without waiting). Cross-shard influence flows only through "hub"
//    events (network/transport state), which a single-threaded barrier
//    merge replays in exact global (time, push-seq) order while assigning
//    every push the sequence number the serial loop would have used -- so
//    results, stats and event counts are bit-identical to the serial loop.
#pragma once

#include <coroutine>
#include <cstdint>
#include <exception>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace pdc::sim {

class Simulation;

namespace detail {

/// Which execution domain the calling thread is currently driving. Shard
/// worker threads (phase A) and the merge thread (hub replay) set this so
/// `Simulation::now()` / `schedule_at` route against the right clock and
/// queue; serial simulations never touch it.
struct ExecContext {
  static constexpr int kHub = -1;

  Simulation* sim{nullptr};
  int shard{0};   // >= 0: shard index; kHub: the barrier-merge/hub thread
  TimePoint now{};
};

[[nodiscard]] inline ExecContext& exec_ctx() noexcept {
  thread_local ExecContext ctx;
  return ctx;
}

}  // namespace detail

/// Thrown when Simulation::run exceeds its event budget -- almost always a
/// runaway process (e.g. a livelocked protocol loop).
class EventBudgetExceeded : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown at the end of run() if any spawned process is still suspended and
/// no event can ever wake it (deadlock).
class DeadlockDetected : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;
  ~Simulation();

  [[nodiscard]] TimePoint now() const noexcept {
    const detail::ExecContext& c = detail::exec_ctx();
    return c.sim == this ? c.now : now_;
  }
  [[nodiscard]] std::uint64_t events_processed() const noexcept { return events_processed_; }

  /// Schedule an arbitrary event at absolute time `at` (>= now()). Events
  /// at exactly now() take the queue's FIFO fast lane (no heap sift). In a
  /// sharded run the event lands on the scheduling thread's own shard (or
  /// the hub, when called from hub/setup context).
  void schedule_at(TimePoint at, Event event) {
    const detail::ExecContext& c = detail::exec_ctx();
    if (c.sim != this && shards_.empty()) [[likely]] {
      if (at < now_) throw std::invalid_argument("Simulation::schedule_at: time in the past");
      if (at == now_) {
        queue_.push_now(at, std::move(event));
      } else {
        queue_.push(at, std::move(event));
      }
      return;
    }
    schedule_routed(at, std::move(event));
  }
  /// Schedule an event `after` from now.
  void schedule_in(Duration after, Event event) { schedule_at(now() + after, std::move(event)); }
  /// Schedule a coroutine resume (the kernel's non-allocating fast path).
  void schedule_resume(TimePoint at, std::coroutine_handle<> h) {
    schedule_at(at, Event{h});
  }

  /// Launch a root process. It starts at the current simulated time (the
  /// start is itself an event, preserving FIFO order among spawns). In a
  /// sharded simulation a plain spawn runs on the hub (serially, at the
  /// barrier); rank programs should use spawn_on.
  void spawn(Task<> process, std::string name = {});

  /// Launch a root process pinned to `rank`'s shard (== spawn() when the
  /// simulation is not sharded). Spawn order fixes the global FIFO order
  /// among same-time starts, exactly as in the serial loop.
  void spawn_on(int rank, Task<> process, std::string name = {});

  /// Launch a root process pinned to `rank`'s shard that starts at absolute
  /// time `at` (>= now()). Unlike spawn_on this is safe mid-run from hub
  /// context (the scheduler's domain): the start event rides the ordinary
  /// hub->shard hand-off, so in a sharded run `at` must lie beyond the open
  /// lookahead window, exactly like schedule_on_rank. Serial runs accept
  /// any `at` >= now().
  void spawn_on_at(int rank, TimePoint at, Task<> process, std::string name = {});

  // ---- Sharded execution (conservative-lookahead parallel loop) ----

  /// Partition `nranks` ranks into `shards` contiguous shards and run the
  /// parallel window/merge engine with the given lookahead (the network's
  /// minimum cross-rank latency; every cross-shard effect scheduled at time
  /// t lands no earlier than t + lookahead). Must be called before any
  /// spawn/schedule. Clamped to [1, nranks]; a result of 1 shard -- or a
  /// non-positive lookahead -- leaves the simulation in serial mode.
  void configure_shards(int shards, int nranks, Duration lookahead);
  [[nodiscard]] int shard_count() const noexcept {
    return shards_.empty() ? 1 : static_cast<int>(shards_.size());
  }
  [[nodiscard]] int shard_of(int rank) const noexcept {
    // Contiguous blocks: rank r -> floor(r * S / nranks).
    return static_cast<int>((static_cast<std::int64_t>(rank) *
                             static_cast<std::int64_t>(shards_.size())) /
                            nranks_);
  }

  /// Schedule an event on the hub: the serially-replayed domain that owns
  /// all cross-rank state (network resources, transport flights, fault
  /// RNG). In serial mode this is exactly schedule_at.
  void schedule_hub(TimePoint at, Event ev);

  /// Run `ev` on the hub at the *current* event's position in the global
  /// order -- the sharded equivalent of calling it inline (serial mode does
  /// exactly that). Must be the last thing the calling event schedules:
  /// pushes made by `ev` take their sequence numbers after every push the
  /// calling event already made.
  void schedule_hub_inline(Event ev);

  /// Schedule an event on `rank`'s shard. From the hub this is the
  /// cross-shard hand-off and `at` must lie beyond the current lookahead
  /// window (guaranteed when `at` came out of a network transfer); from a
  /// shard context the target must be the caller's own shard.
  void schedule_on_rank(int rank, TimePoint at, Event ev);

  /// Run until the event queue drains (or `until`, whichever first).
  /// Returns the final simulated time. Rethrows the first exception raised
  /// by any root process. Throws DeadlockDetected if the queue drained but
  /// some root process never finished.
  TimePoint run(TimePoint until = {std::numeric_limits<std::int64_t>::max()});

  /// Awaitable: suspend the calling process for `d` (>= 0) simulated time.
  [[nodiscard]] auto delay(Duration d) {
    struct Awaiter {
      Simulation& sim;
      Duration d;
      [[nodiscard]] bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) const {
        sim.schedule_resume(sim.now() + d, h);
      }
      void await_resume() const noexcept {}
    };
    if (d < Duration::zero()) throw std::invalid_argument("Simulation::delay: negative duration");
    return Awaiter{*this, d};
  }

  /// Awaitable: suspend until absolute time `at` (clamped to now()).
  [[nodiscard]] auto delay_until(TimePoint at) {
    const TimePoint n = now();
    return delay(at > n ? at - n : Duration::zero());
  }

  /// Maximum number of events run() may process before aborting.
  void set_event_budget(std::uint64_t budget) noexcept { event_budget_ = budget; }

  /// Event-queue instrumentation (fast-lane vs heap push mix). Serial
  /// queue's stats; sharded runs split pushes across per-shard queues whose
  /// lane mix legitimately differs from the serial queue's (the event
  /// *order* is identical, the lane a push lands in is not comparable).
  [[nodiscard]] const EventQueue::Stats& queue_stats() const noexcept { return queue_.stats(); }

 private:
  struct RootProcess {
    Task<> task;
    std::string name;
  };

  static constexpr std::uint32_t kNoParent = 0xFFFFFFFFu;

  enum class PushKind : std::uint8_t { kLocalFuture, kHub, kHubInline };

  /// A push recorded during phase A whose insertion is deferred to the
  /// barrier merge (everything except window-local queue pushes).
  struct StagedPush {
    TimePoint at{};
    std::uint32_t push_idx{0};  // position among the parent's pushes (not kHubInline)
    PushKind kind{PushKind::kLocalFuture};
    Event ev;
  };

  /// (parent log entry, push index) of a window-local queue push; indexed
  /// by (provisional seq - watermark).
  struct Birth {
    std::uint32_t parent{0};
    std::uint32_t push_idx{0};
  };

  /// One event executed during phase A, in shard execution order (== the
  /// serial order restricted to this shard). `seq` is the real global
  /// sequence for window roots; for in-window children it is resolved at
  /// the merge from the parent's push_seq_base.
  struct LogEntry {
    TimePoint at{};
    std::uint64_t seq{0};
    std::uint64_t push_seq_base{0};  // assigned when the merge consumes this entry
    std::uint32_t parent{kNoParent};
    std::uint32_t push_idx{0};
    std::uint32_t first_staged{0};
    std::uint32_t n_staged{0};
    std::uint32_t n_pushes{0};
    std::exception_ptr error;
  };

  struct Shard {
    EventQueue queue;
    std::vector<LogEntry> log;
    std::vector<StagedPush> staged;
    std::vector<Birth> births;
    std::uint32_t cur_pushes{0};
    std::size_t cursor{0};
    std::exception_ptr infra_error;  // non-event failure in the worker loop
  };

  /// One pending hub event, keyed (at, seq) -- its position in the global
  /// serial order.
  struct HubEvent {
    TimePoint at{};
    std::uint64_t seq{0};
    Event ev;
  };

  void schedule_routed(TimePoint at, Event ev);
  TimePoint run_serial(TimePoint until);
  TimePoint run_sharded(TimePoint until);
  void exec_window_shard(int s, TimePoint bound, std::uint64_t watermark, std::uint64_t cap);
  void merge_window(TimePoint bound);
  void hub_push(HubEvent he);
  HubEvent hub_pop();
  void finish_run_checks();

  TimePoint now_{TimePoint::origin()};
  EventQueue queue_;
  std::vector<std::unique_ptr<RootProcess>> roots_;
  std::uint64_t events_processed_{0};
  std::uint64_t event_budget_{500'000'000};

  // Sharded-mode state (empty shards_ == serial mode).
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<HubEvent> hub_;  // binary min-heap on (at, seq, sub)
  Duration lookahead_{};
  int nranks_{0};
  std::uint64_t global_seq_{0};   // the serial loop's push counter, replayed
  TimePoint window_bound_{};      // inclusive execution bound of the open window
};

}  // namespace pdc::sim
