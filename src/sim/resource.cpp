#include "sim/resource.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "sim/simulation.hpp"
#include "sim/task.hpp"

namespace pdc::sim {

SerialResource::SerialResource(Simulation& sim, std::string name)
    : sim_(sim), name_(std::move(name)) {}

TimePoint SerialResource::reserve(Duration service) {
  return reserve_from(sim_.now(), service);
}

TimePoint SerialResource::reserve_from(TimePoint earliest, Duration service) {
  if (service < Duration::zero()) {
    throw std::invalid_argument("SerialResource::reserve: negative service time");
  }
  const TimePoint start = std::max({busy_until_, earliest, sim_.now()});
  busy_until_ = start + service;
  busy_accum_ += service;
  ++requests_;
  return busy_until_;
}

TimePoint SerialResource::reserve_pipelined(Duration service, Duration latency) {
  if (latency > service) latency = service;
  const TimePoint start = std::max(busy_until_, sim_.now());
  reserve_from(start, service);
  return start + latency;
}

void SerialResource::reset() {
  busy_until_ = sim_.now();
}

void FifoLock::release() {
  if (!locked_) throw std::logic_error("FifoLock::release: not locked");
  if (waiters_.empty()) {
    locked_ = false;
    return;
  }
  // Hand the lock directly to the next waiter; resume it via the scheduler
  // so release() never runs user code inline.
  auto next = waiters_.front();
  waiters_.pop_front();
  sim_.schedule_resume(sim_.now(), next);
}

Task<ScopedLock> ScopedLock::take(FifoLock& lock) {
  co_await lock.acquire();
  co_return ScopedLock{lock};
}

}  // namespace pdc::sim
