#include "sim/frame_pool.hpp"

#include <bit>
#include <new>

namespace pdc::sim {

FramePool& FramePool::local() {
  thread_local FramePool pool;
  return pool;
}

FramePool::~FramePool() { trim(); }

std::size_t FramePool::class_index(std::size_t n) noexcept {
  if (n <= (std::size_t{1} << kMinClassLog2)) return 0;
  return static_cast<std::size_t>(std::bit_width(n - 1)) - kMinClassLog2;
}

void* FramePool::allocate(std::size_t n) {
  const std::size_t ci = class_index(n);
  if (ci >= kNumClasses) {
    ++stats_.misses;
    return ::operator new(n);
  }
  if (enabled_) {
    if (FreeNode* node = free_[ci]; node != nullptr) {
      free_[ci] = node->next;
      --count_[ci];
      ++stats_.hits;
      stats_.bytes_recycled += class_size(ci);
      return node;
    }
  }
  ++stats_.misses;
  return ::operator new(class_size(ci));
}

void FramePool::deallocate(void* p, std::size_t n) noexcept {
  if (p == nullptr) return;
  const std::size_t ci = class_index(n);
  if (!enabled_ || ci >= kNumClasses || count_[ci] >= kMaxPerClass) {
    ++stats_.discards;
    ::operator delete(p);
    return;
  }
  auto* node = static_cast<FreeNode*>(p);
  node->next = free_[ci];
  free_[ci] = node;
  ++count_[ci];
  ++stats_.releases;
}

void FramePool::trim() noexcept {
  for (std::size_t ci = 0; ci < kNumClasses; ++ci) {
    FreeNode* node = free_[ci];
    while (node != nullptr) {
      FreeNode* next = node->next;
      ::operator delete(node);
      node = next;
    }
    free_[ci] = nullptr;
    count_[ci] = 0;
  }
}

std::size_t FramePool::cached_blocks() const noexcept {
  std::size_t total = 0;
  for (std::size_t ci = 0; ci < kNumClasses; ++ci) total += count_[ci];
  return total;
}

}  // namespace pdc::sim
