// pdceval -- one-shot cancellable timer on the event queue.
//
// `arm(at, fn)` schedules `fn` for `at`; `cancel()` (or a later re-arm)
// makes the pending callback a no-op. The queued event itself is not
// removed -- the three-lane queue has no random-access erase -- so a
// cancelled timer still pops (and therefore holds the simulated clock open)
// at its original deadline. Users that care about makespan, like the
// reliable transport's retransmission timers, should arm a timer only when
// it is expected to fire; cancel() exists for the "overtaken by a late
// acknowledgement" corner, not as the normal completion path.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>

#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace pdc::sim {

class Timer {
 public:
  explicit Timer(Simulation& sim) : sim_(&sim), state_(std::make_shared<State>()) {}

  /// Schedule `fn` at absolute time `at` (>= now). Re-arming cancels any
  /// previously armed callback.
  template <typename F>
  void arm(TimePoint at, F fn) {
    ++state_->generation;
    state_->armed = true;
    sim_->schedule_at(at, [s = state_, want = state_->generation, fn = std::move(fn)]() mutable {
      if (s->generation != want || !s->armed) return;  // cancelled or superseded
      s->armed = false;
      fn();
    });
  }

  /// Prevent a pending callback from running (the queued no-op still pops
  /// at its deadline; see the header comment).
  void cancel() noexcept {
    ++state_->generation;
    state_->armed = false;
  }

  [[nodiscard]] bool armed() const noexcept { return state_->armed; }

 private:
  struct State {
    std::uint64_t generation{0};
    bool armed{false};
  };

  Simulation* sim_;
  std::shared_ptr<State> state_;  // outlives the Timer for in-flight events
};

}  // namespace pdc::sim
