#include "sim/simulation.hpp"

#include <utility>

#include "trace/probe.hpp"

namespace pdc::sim {

void Simulation::spawn(Task<> process, std::string name) {
  auto root = std::make_unique<RootProcess>(RootProcess{std::move(process), std::move(name)});
  auto handle = root->task.handle();
  roots_.push_back(std::move(root));
  queue_.push_now(now_, Event{handle});
}

TimePoint Simulation::run(TimePoint until) {
  TimePoint at{};
  Event event;
  while (queue_.pop_next(until, at, event)) {
    if (events_processed_ >= event_budget_) {
      // Un-popping would reorder; the budget overrun is fatal anyway.
      throw EventBudgetExceeded("simulation exceeded event budget of " +
                                std::to_string(event_budget_) + " events");
    }
    now_ = at;
    ++events_processed_;
    PDC_TRACE_BLOCK {
      trace::emit({.t_ns = at.ns,
                   .aux0 = static_cast<std::int64_t>(events_processed_),
                   .aux1 = static_cast<std::int64_t>(queue_.size()),
                   .kind = trace::Kind::EventDispatch});
    }
    event();
  }
  // Surface process failures and deadlocks only once the queue has fully
  // drained -- a run() bounded by `until` may legitimately leave processes
  // suspended mid-protocol.
  if (queue_.empty()) {
    for (const auto& root : roots_) root->task.rethrow_if_failed();
    for (const auto& root : roots_) {
      if (!root->task.done()) {
        throw DeadlockDetected("process '" + (root->name.empty() ? "<anonymous>" : root->name) +
                               "' is blocked with no pending events (deadlock)");
      }
    }
  }
  return now_;
}

}  // namespace pdc::sim
