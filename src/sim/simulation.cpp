#include "sim/simulation.hpp"

#include <utility>

namespace pdc::sim {

void Simulation::schedule_at(TimePoint at, EventQueue::Action action) {
  if (at < now_) throw std::invalid_argument("Simulation::schedule_at: time in the past");
  queue_.push(at, std::move(action));
}

void Simulation::schedule_in(Duration after, EventQueue::Action action) {
  schedule_at(now_ + after, std::move(action));
}

void Simulation::schedule_resume(TimePoint at, std::coroutine_handle<> h) {
  schedule_at(at, [h] { h.resume(); });
}

void Simulation::spawn(Task<> process, std::string name) {
  auto root = std::make_unique<RootProcess>(RootProcess{std::move(process), std::move(name)});
  auto handle = root->task.handle();
  roots_.push_back(std::move(root));
  queue_.push(now_, [handle] { handle.resume(); });
}

TimePoint Simulation::run(TimePoint until) {
  while (!queue_.empty() && queue_.next_time() <= until) {
    if (events_processed_ >= event_budget_) {
      throw EventBudgetExceeded("simulation exceeded event budget of " +
                                std::to_string(event_budget_) + " events");
    }
    now_ = queue_.next_time();
    auto action = queue_.pop();
    ++events_processed_;
    action();
  }
  // Surface process failures and deadlocks only once the queue has fully
  // drained -- a run() bounded by `until` may legitimately leave processes
  // suspended mid-protocol.
  if (queue_.empty()) {
    for (const auto& root : roots_) root->task.rethrow_if_failed();
    for (const auto& root : roots_) {
      if (!root->task.done()) {
        throw DeadlockDetected("process '" + (root->name.empty() ? "<anonymous>" : root->name) +
                               "' is blocked with no pending events (deadlock)");
      }
    }
  }
  return now_;
}

}  // namespace pdc::sim
