#include "sim/simulation.hpp"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "trace/probe.hpp"

namespace pdc::sim {

namespace {

/// Min-heap "goes later" comparator over (at, seq) for std::push_heap /
/// std::pop_heap (which build a max-heap w.r.t. the comparator).
template <typename H>
[[nodiscard]] bool hub_later(const H& a, const H& b) noexcept {
  return a.at != b.at ? a.at > b.at : a.seq > b.seq;
}

/// Shared state of the per-window fork/join barrier. The mutex carries all
/// happens-before edges: window parameters and shard queues written by the
/// main thread are published by the gen bump; shard logs written by workers
/// are published by the remaining-counter decrement.
struct TeamSync {
  std::mutex mu;
  std::condition_variable cv_start;
  std::condition_variable cv_done;
  std::uint64_t gen{0};
  int remaining{0};
  bool stop{false};
  TimePoint bound{};
  std::uint64_t watermark{0};
  std::uint64_t cap{0};
};

}  // namespace

Simulation::~Simulation() = default;

void Simulation::spawn(Task<> process, std::string name) {
  const detail::ExecContext& c = detail::exec_ctx();
  if (c.sim == this && c.shard != detail::ExecContext::kHub) {
    throw std::logic_error("Simulation::spawn: cannot spawn from a shard context");
  }
  auto root = std::make_unique<RootProcess>(RootProcess{std::move(process), std::move(name)});
  auto handle = root->task.handle();
  roots_.push_back(std::move(root));
  if (shards_.empty()) {
    queue_.push_now(now_, Event{handle});
  } else {
    hub_push(HubEvent{now(), global_seq_++, Event{handle}});
  }
}

void Simulation::spawn_on(int rank, Task<> process, std::string name) {
  if (shards_.empty()) {
    spawn(std::move(process), std::move(name));
    return;
  }
  auto root = std::make_unique<RootProcess>(RootProcess{std::move(process), std::move(name)});
  auto handle = root->task.handle();
  roots_.push_back(std::move(root));
  shards_[shard_of(rank)]->queue.push_seq(now_, global_seq_++, Event{handle});
}

void Simulation::spawn_on_at(int rank, TimePoint at, Task<> process, std::string name) {
  auto root = std::make_unique<RootProcess>(RootProcess{std::move(process), std::move(name)});
  auto handle = root->task.handle();
  // roots_ is only touched from serial context, setup code, or the
  // single-threaded hub merge -- never from a phase-A shard worker (and
  // schedule_on_rank rejects shard-context cross-shard pushes anyway).
  roots_.push_back(std::move(root));
  schedule_on_rank(rank, at, Event{handle});
}

void Simulation::configure_shards(int shards, int nranks, Duration lookahead) {
  if (!shards_.empty()) {
    throw std::logic_error("Simulation::configure_shards: already configured");
  }
  if (events_processed_ != 0 || !roots_.empty() || !queue_.empty()) {
    throw std::logic_error("Simulation::configure_shards: simulation already in use");
  }
  const int s = std::min(shards, nranks);
  if (s <= 1 || lookahead <= Duration::zero()) return;  // stay serial
  lookahead_ = lookahead;
  nranks_ = nranks;
  shards_.reserve(static_cast<std::size_t>(s));
  for (int i = 0; i < s; ++i) shards_.push_back(std::make_unique<Shard>());
}

void Simulation::schedule_routed(TimePoint at, Event ev) {
  detail::ExecContext& c = detail::exec_ctx();
  if (c.sim != this) {
    // Sharded simulation, scheduling from outside run() (setup code): the
    // hub replays these in push order, like the serial queue would.
    if (at < now_) throw std::invalid_argument("Simulation::schedule_at: time in the past");
    hub_push(HubEvent{at, global_seq_++, std::move(ev)});
    return;
  }
  if (at < c.now) throw std::invalid_argument("Simulation::schedule_at: time in the past");
  if (c.shard == detail::ExecContext::kHub) {
    hub_push(HubEvent{at, global_seq_++, std::move(ev)});
    return;
  }
  Shard& sh = *shards_[static_cast<std::size_t>(c.shard)];
  if (at <= window_bound_) {
    // In-window push: executes this window. The queue hands out provisional
    // seqs in lockstep with the births index (watermark + births.size()),
    // so a pop with seq >= watermark maps straight back to its birth.
    sh.births.push_back(
        Birth{static_cast<std::uint32_t>(sh.log.size() - 1), sh.cur_pushes++});
    if (at == c.now) {
      sh.queue.push_now(at, std::move(ev));
    } else {
      sh.queue.push(at, std::move(ev));
    }
  } else {
    // Beyond the window: the merge inserts it with its real global seq.
    sh.staged.push_back(StagedPush{at, sh.cur_pushes++, PushKind::kLocalFuture, std::move(ev)});
  }
}

void Simulation::schedule_hub(TimePoint at, Event ev) {
  if (shards_.empty()) {
    schedule_at(at, std::move(ev));
    return;
  }
  detail::ExecContext& c = detail::exec_ctx();
  if (c.sim == this && c.shard != detail::ExecContext::kHub) {
    Shard& sh = *shards_[static_cast<std::size_t>(c.shard)];
    sh.staged.push_back(StagedPush{at, sh.cur_pushes++, PushKind::kHub, std::move(ev)});
    return;
  }
  if (at < now()) throw std::invalid_argument("Simulation::schedule_at: time in the past");
  hub_push(HubEvent{at, global_seq_++, std::move(ev)});
}

void Simulation::schedule_hub_inline(Event ev) {
  detail::ExecContext& c = detail::exec_ctx();
  if (shards_.empty() || c.sim != this || c.shard == detail::ExecContext::kHub) {
    ev();  // serial semantics: runs in place inside the calling event
    return;
  }
  Shard& sh = *shards_[static_cast<std::size_t>(c.shard)];
  // Deliberately does NOT consume a push slot (cur_pushes untouched): the
  // merge runs the closure right after finalizing the calling event's own
  // pushes, so pushes made inside it continue the global counter exactly
  // where the serial loop's inline call would.
  sh.staged.push_back(StagedPush{c.now, 0, PushKind::kHubInline, std::move(ev)});
}

void Simulation::schedule_on_rank(int rank, TimePoint at, Event ev) {
  if (shards_.empty()) {
    schedule_at(at, std::move(ev));
    return;
  }
  detail::ExecContext& c = detail::exec_ctx();
  const int target = shard_of(rank);
  if (c.sim == this && c.shard != detail::ExecContext::kHub) {
    if (target != c.shard) {
      throw std::logic_error("Simulation::schedule_on_rank: cross-shard push from a shard context");
    }
    schedule_routed(at, std::move(ev));
    return;
  }
  if (c.sim == this && at <= window_bound_) {
    // A hub->shard hand-off inside the closed window would have to rewind a
    // shard that already ran past it; the lookahead contract (arrival >=
    // send time + lookahead > window bound) makes this unreachable.
    throw std::logic_error("Simulation::schedule_on_rank: hand-off inside the closed window");
  }
  shards_[static_cast<std::size_t>(target)]->queue.push_seq(at, global_seq_++, std::move(ev));
}

void Simulation::hub_push(HubEvent he) {
  hub_.push_back(std::move(he));
  std::push_heap(hub_.begin(), hub_.end(), hub_later<HubEvent>);
}

Simulation::HubEvent Simulation::hub_pop() {
  std::pop_heap(hub_.begin(), hub_.end(), hub_later<HubEvent>);
  HubEvent he = std::move(hub_.back());
  hub_.pop_back();
  return he;
}

TimePoint Simulation::run(TimePoint until) {
  return shards_.empty() ? run_serial(until) : run_sharded(until);
}

TimePoint Simulation::run_serial(TimePoint until) {
  TimePoint at{};
  Event event;
  while (queue_.pop_next(until, at, event)) {
    if (events_processed_ >= event_budget_) {
      // Un-popping would reorder; the budget overrun is fatal anyway.
      throw EventBudgetExceeded("simulation exceeded event budget of " +
                                std::to_string(event_budget_) + " events");
    }
    now_ = at;
    ++events_processed_;
    PDC_TRACE_BLOCK {
      trace::emit({.t_ns = at.ns,
                   .aux0 = static_cast<std::int64_t>(events_processed_),
                   .aux1 = static_cast<std::int64_t>(queue_.size()),
                   .kind = trace::Kind::EventDispatch});
    }
    event();
  }
  // Surface process failures and deadlocks only once the queue has fully
  // drained -- a run() bounded by `until` may legitimately leave processes
  // suspended mid-protocol.
  if (queue_.empty()) finish_run_checks();
  return now_;
}

TimePoint Simulation::run_sharded(TimePoint until) {
  const int S = static_cast<int>(shards_.size());
  TeamSync sync;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(S - 1));
  struct Joiner {
    TeamSync& ts;
    std::vector<std::thread>& ws;
    ~Joiner() {
      {
        std::lock_guard<std::mutex> lk(ts.mu);
        ts.stop = true;
      }
      ts.cv_start.notify_all();
      for (auto& w : ws) {
        if (w.joinable()) w.join();
      }
    }
  } joiner{sync, workers};
  for (int s = 1; s < S; ++s) {
    workers.emplace_back([this, &sync, s] {
      std::uint64_t seen = 0;
      for (;;) {
        TimePoint bound{};
        std::uint64_t wm = 0;
        std::uint64_t cap = 0;
        {
          std::unique_lock<std::mutex> lk(sync.mu);
          sync.cv_start.wait(lk, [&] { return sync.stop || sync.gen != seen; });
          if (sync.stop) return;
          seen = sync.gen;
          bound = sync.bound;
          wm = sync.watermark;
          cap = sync.cap;
        }
        exec_window_shard(s, bound, wm, cap);
        {
          std::lock_guard<std::mutex> lk(sync.mu);
          if (--sync.remaining == 0) sync.cv_done.notify_one();
        }
      }
    });
  }

  for (;;) {
    // T = earliest pending key anywhere; the window jumps straight to the
    // next event cluster instead of marching in fixed lookahead steps.
    bool any = false;
    TimePoint t{};
    for (const auto& shp : shards_) {
      if (shp->queue.empty()) continue;
      const TimePoint nt = shp->queue.next_time();
      if (!any || nt < t) {
        t = nt;
        any = true;
      }
    }
    if (!hub_.empty() && (!any || hub_.front().at < t)) {
      t = hub_.front().at;
      any = true;
    }
    if (!any) {
      finish_run_checks();
      return now_;
    }
    if (t > until) return now_;
    if (events_processed_ >= event_budget_) {
      // The serial loop would pop this pending event and trip the budget.
      throw EventBudgetExceeded("simulation exceeded event budget of " +
                                std::to_string(event_budget_) + " events");
    }
    // Inclusive window [t, t + lookahead): every event in it is causally
    // independent across shards (any cross-shard effect of an event at
    // time >= t lands at >= t + lookahead). Saturate, clamp to `until`.
    TimePoint bound{t.ns + std::min(lookahead_.ns - 1,
                                    std::numeric_limits<std::int64_t>::max() - t.ns)};
    bound = std::min(bound, until);
    window_bound_ = bound;
    const std::uint64_t watermark = global_seq_;
    const std::uint64_t cap = event_budget_ - events_processed_;

    // Phase A: all shards execute their slice of the window in parallel.
    {
      std::lock_guard<std::mutex> lk(sync.mu);
      sync.bound = bound;
      sync.watermark = watermark;
      sync.cap = cap;
      sync.remaining = S - 1;
      ++sync.gen;
    }
    sync.cv_start.notify_all();
    exec_window_shard(0, bound, watermark, cap);
    {
      std::unique_lock<std::mutex> lk(sync.mu);
      sync.cv_done.wait(lk, [&] { return sync.remaining == 0; });
    }
    for (const auto& shp : shards_) {
      if (shp->infra_error) std::rethrow_exception(shp->infra_error);
    }

    // Barrier merge: replay the window in exact global (time, seq) order.
    merge_window(bound);
  }
}

void Simulation::exec_window_shard(int s, TimePoint bound, std::uint64_t watermark,
                                   std::uint64_t cap) {
  Shard& sh = *shards_[static_cast<std::size_t>(s)];
  sh.log.clear();
  sh.staged.clear();
  sh.births.clear();
  sh.cursor = 0;
  sh.cur_pushes = 0;
  detail::ExecContext& c = detail::exec_ctx();
  c.sim = this;
  c.shard = s;
  try {
    // Provisional in-window seqs start at the global watermark: >= every
    // seq already in this queue, and resolved to real seqs at the merge.
    sh.queue.set_next_seq(watermark);
    TimePoint at{};
    std::uint64_t seq = 0;
    Event ev;
    std::uint64_t executed = 0;
    while (executed < cap && sh.queue.pop_next(bound, at, seq, ev)) {
      ++executed;
      c.now = at;
      LogEntry le;
      le.at = at;
      le.seq = seq;
      if (seq >= watermark) {
        const Birth& b = sh.births[static_cast<std::size_t>(seq - watermark)];
        le.parent = b.parent;
        le.push_idx = b.push_idx;
      }
      le.first_staged = static_cast<std::uint32_t>(sh.staged.size());
      sh.log.push_back(std::move(le));
      LogEntry& cur = sh.log.back();  // stable: ev() never touches the log
      sh.cur_pushes = 0;
      try {
        ev();
      } catch (...) {
        cur.error = std::current_exception();
      }
      cur.n_pushes = sh.cur_pushes;
      cur.n_staged = static_cast<std::uint32_t>(sh.staged.size()) - cur.first_staged;
      // Stop at the failure; the merge rethrows it at its serial position.
      if (cur.error) break;
    }
  } catch (...) {
    sh.infra_error = std::current_exception();
  }
  c.sim = nullptr;
}

void Simulation::merge_window(TimePoint bound) {
  detail::ExecContext& c = detail::exec_ctx();
  c.sim = this;
  c.shard = detail::ExecContext::kHub;
  struct CtxGuard {
    detail::ExecContext& ctx;
    ~CtxGuard() { ctx.sim = nullptr; }
  } guard{c};

  const int S = static_cast<int>(shards_.size());
  for (;;) {
    // Pick the (time, seq)-minimal unconsumed event across all shard logs
    // and the hub heap. S is small (<= threads); a linear scan beats a
    // priority queue here.
    int best = -1;  // shard index, or S for the hub
    TimePoint bat{};
    std::uint64_t bseq = 0;
    for (int s = 0; s < S; ++s) {
      Shard& sh = *shards_[static_cast<std::size_t>(s)];
      if (sh.cursor >= sh.log.size()) continue;
      LogEntry& e = sh.log[sh.cursor];
      if (e.parent != kNoParent) {
        // Resolve an in-window child's real seq from its (already consumed)
        // parent's push block; resolve once.
        e.seq = sh.log[e.parent].push_seq_base + e.push_idx;
        e.parent = kNoParent;
      }
      if (best < 0 || e.at < bat || (e.at == bat && e.seq < bseq)) {
        best = s;
        bat = e.at;
        bseq = e.seq;
      }
    }
    if (!hub_.empty() && hub_.front().at <= bound) {
      const HubEvent& h = hub_.front();
      if (best < 0 || h.at < bat || (h.at == bat && h.seq < bseq)) {
        best = S;
        bat = h.at;
        bseq = h.seq;
      }
    }
    if (best < 0) break;

    if (events_processed_ >= event_budget_) {
      throw EventBudgetExceeded("simulation exceeded event budget of " +
                                std::to_string(event_budget_) + " events");
    }
    now_ = bat;
    c.now = bat;
    ++events_processed_;

    if (best == S) {
      // Hub events run live, single-threaded, in serial order; exceptions
      // (e.g. TransportFailure) propagate exactly as the serial loop's.
      HubEvent he = hub_pop();
      he.ev();
      continue;
    }

    Shard& sh = *shards_[static_cast<std::size_t>(best)];
    LogEntry& e = sh.log[sh.cursor++];
    if (e.error) std::rethrow_exception(e.error);
    // Assign this event's pushes the seq block the serial loop would have:
    // consumption order == serial order, so the counter replays exactly.
    e.push_seq_base = global_seq_;
    global_seq_ += e.n_pushes;
    for (std::uint32_t i = 0; i < e.n_staged; ++i) {
      StagedPush& p = sh.staged[e.first_staged + i];
      switch (p.kind) {
        case PushKind::kLocalFuture:
          sh.queue.push_seq(p.at, e.push_seq_base + p.push_idx, std::move(p.ev));
          break;
        case PushKind::kHub:
          hub_push(HubEvent{p.at, e.push_seq_base + p.push_idx, std::move(p.ev)});
          break;
        case PushKind::kHubInline:
          // Runs here, inside the parent's turn (the serial loop called it
          // inline); its pushes route through the hub context and continue
          // global_seq_ right after the parent's own block.
          p.ev();
          break;
      }
    }
  }
}

void Simulation::finish_run_checks() {
  for (const auto& root : roots_) root->task.rethrow_if_failed();
  for (const auto& root : roots_) {
    if (!root->task.done()) {
      throw DeadlockDetected("process '" + (root->name.empty() ? "<anonymous>" : root->name) +
                             "' is blocked with no pending events (deadlock)");
    }
  }
}

}  // namespace pdc::sim
