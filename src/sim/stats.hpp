// pdceval -- running statistics (Welford) used by the evaluation harness.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace pdc::sim {

/// Single-pass mean/variance/min/max accumulator.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept {
    return n_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double max() const noexcept {
    return n_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

  void reset() noexcept { *this = RunningStats{}; }

 private:
  std::uint64_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double sum_{0.0};
  double min_{std::numeric_limits<double>::infinity()};
  double max_{-std::numeric_limits<double>::infinity()};
};

}  // namespace pdc::sim
