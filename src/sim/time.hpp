// pdceval -- simulated time.
//
// All simulation timing uses integer nanoseconds wrapped in strong types so
// that durations and absolute points cannot be mixed accidentally and so
// that every run is bit-for-bit deterministic (no floating-point clock
// drift). Helpers convert to/from double seconds only at the reporting
// boundary.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>

namespace pdc::sim {

/// A span of simulated time, in integer nanoseconds.
struct Duration {
  std::int64_t ns{0};

  [[nodiscard]] static constexpr Duration zero() noexcept { return {0}; }
  [[nodiscard]] static constexpr Duration max() noexcept {
    return {std::numeric_limits<std::int64_t>::max()};
  }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration& operator+=(Duration d) noexcept {
    ns += d.ns;
    return *this;
  }
  constexpr Duration& operator-=(Duration d) noexcept {
    ns -= d.ns;
    return *this;
  }

  /// Lossy conversion for reporting.
  [[nodiscard]] constexpr double seconds() const noexcept { return static_cast<double>(ns) * 1e-9; }
  [[nodiscard]] constexpr double millis() const noexcept { return static_cast<double>(ns) * 1e-6; }
  [[nodiscard]] constexpr double micros() const noexcept { return static_cast<double>(ns) * 1e-3; }
};

[[nodiscard]] constexpr Duration operator+(Duration a, Duration b) noexcept { return {a.ns + b.ns}; }
[[nodiscard]] constexpr Duration operator-(Duration a, Duration b) noexcept { return {a.ns - b.ns}; }
[[nodiscard]] constexpr Duration operator*(Duration a, std::int64_t k) noexcept { return {a.ns * k}; }
[[nodiscard]] constexpr Duration operator*(std::int64_t k, Duration a) noexcept { return {a.ns * k}; }
[[nodiscard]] constexpr Duration operator/(Duration a, std::int64_t k) noexcept { return {a.ns / k}; }

/// An absolute point on the simulated clock (nanoseconds since t=0).
struct TimePoint {
  std::int64_t ns{0};

  [[nodiscard]] static constexpr TimePoint origin() noexcept { return {0}; }

  constexpr auto operator<=>(const TimePoint&) const = default;

  [[nodiscard]] constexpr double seconds() const noexcept { return static_cast<double>(ns) * 1e-9; }
  [[nodiscard]] constexpr double millis() const noexcept { return static_cast<double>(ns) * 1e-6; }
};

[[nodiscard]] constexpr TimePoint operator+(TimePoint t, Duration d) noexcept { return {t.ns + d.ns}; }
[[nodiscard]] constexpr TimePoint operator+(Duration d, TimePoint t) noexcept { return {t.ns + d.ns}; }
[[nodiscard]] constexpr TimePoint operator-(TimePoint t, Duration d) noexcept { return {t.ns - d.ns}; }
[[nodiscard]] constexpr Duration operator-(TimePoint a, TimePoint b) noexcept { return {a.ns - b.ns}; }

// Construction helpers. `seconds_d`/`from_seconds` round to the nearest
// nanosecond; sub-nanosecond precision is below the model's fidelity.
[[nodiscard]] constexpr Duration nanoseconds(std::int64_t v) noexcept { return {v}; }
[[nodiscard]] constexpr Duration microseconds(std::int64_t v) noexcept { return {v * 1000}; }
[[nodiscard]] constexpr Duration milliseconds(std::int64_t v) noexcept { return {v * 1'000'000}; }
[[nodiscard]] constexpr Duration seconds(std::int64_t v) noexcept { return {v * 1'000'000'000}; }

[[nodiscard]] constexpr Duration from_seconds(double s) noexcept {
  return {static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5))};
}

}  // namespace pdc::sim
