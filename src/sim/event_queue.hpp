// pdceval -- time-ordered event queue.
//
// Three internal lanes, all ordered globally by (time, sequence) so that
// same-time events fire in push order -- deterministic across runs and
// platforms -- no matter which lane an event lands in:
//
//   1. A FIFO *fast lane* for events pushed at the queue's current minimum
//      time (the `Mailbox::push` -> `schedule_resume(now)` pattern): O(1)
//      push and pop, no heap sift.
//   2. A *sorted run* for pushes whose time is >= the last sorted-run push
//      (monotone completion-time chains from SerialResource and delays --
//      the dominant scheduling pattern): O(1) append and pop-front.
//   3. A 4-ary implicit min-heap for genuinely out-of-order pushes.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/event.hpp"
#include "sim/time.hpp"

namespace pdc::sim {

class EventQueue {
 public:
  using Action = Event;  // historical alias; Event accepts any callable

  /// Enqueue `ev` to fire at absolute time `at`.
  void push(TimePoint at, Event ev) {
    if (run_empty() || at >= run_.back().at) {
      // Monotone append: the sorted run stays ordered by (at, seq) because
      // seq grows with every push.
      if (run_empty() && !run_.empty()) {
        run_.clear();
        run_head_ = 0;
      }
      ++stats_.run_pushes;
      run_.push_back(Entry{at, next_seq_++, std::move(ev)});
      return;
    }
    push_out_of_order(at, next_seq_++, std::move(ev));
  }

  /// Enqueue `ev` with an externally assigned sequence number. The sharded
  /// event loop owns one global (serial-equivalent) push counter and feeds
  /// each per-shard queue seqs in increasing order, so `seq` is always >=
  /// every seq already in this queue -- the same monotonicity `push` gets
  /// from `next_seq_++` -- and ordinary pushes afterwards continue above it.
  void push_seq(TimePoint at, std::uint64_t seq, Event ev) {
    next_seq_ = std::max(next_seq_, seq + 1);
    if (run_empty() || at >= run_.back().at) {
      if (run_empty() && !run_.empty()) {
        run_.clear();
        run_head_ = 0;
      }
      ++stats_.run_pushes;
      run_.push_back(Entry{at, seq, std::move(ev)});
      return;
    }
    push_out_of_order(at, seq, std::move(ev));
  }

  /// Raise the internal sequence counter to at least `floor` (the sharded
  /// loop's per-window watermark: in-window pushes then take provisional
  /// seqs `floor`, `floor+1`, ... in push order). Never lowers the counter.
  void set_next_seq(std::uint64_t floor) noexcept {
    next_seq_ = std::max(next_seq_, floor);
  }
  [[nodiscard]] std::uint64_t next_seq() const noexcept { return next_seq_; }

  /// Enqueue `ev` at `at` where `at` is the caller's current time (i.e. no
  /// pending event fires earlier). Joins the FIFO fast lane when possible;
  /// falls back to the general push otherwise, so it is always safe.
  void push_now(TimePoint at, Event ev) {
    if (lane_empty()) {
      // Reuse the drained buffer instead of shifting elements.
      lane_.clear();
      lane_head_ = 0;
      lane_time_ = at;
    } else if (at != lane_time_) {
      push(at, std::move(ev));
      return;
    }
    ++stats_.lane_pushes;
    lane_.push_back(LaneEntry{next_seq_++, std::move(ev)});
  }

  [[nodiscard]] bool empty() const noexcept {
    return heap_.empty() && lane_empty() && run_empty();
  }
  [[nodiscard]] std::size_t size() const noexcept {
    return heap_.size() + (lane_.size() - lane_head_) + (run_.size() - run_head_);
  }

  /// Time of the earliest pending event. Precondition: !empty().
  [[nodiscard]] TimePoint next_time() const noexcept;

  /// Remove and return the earliest pending event (FIFO among equal times).
  /// Precondition: !empty().
  [[nodiscard]] Event pop();

  /// Fused empty/next_time/pop for the scheduler's hot loop: if the minimal
  /// pending event fires at or before `until`, move it into `out`, set `at`
  /// and return true; otherwise leave the queue untouched and return false.
  [[nodiscard]] bool pop_next(TimePoint until, TimePoint& at, Event& out) {
    std::uint64_t seq;
    return pop_next(until, at, seq, out);
  }

  /// As above, additionally reporting the popped event's sequence number
  /// (the sharded loop uses it to tie window-local events back to the push
  /// that created them).
  [[nodiscard]] bool pop_next(TimePoint until, TimePoint& at, std::uint64_t& seq, Event& out) {
    // 0 = lane, 1 = run, 2 = heap (same selection as pop(), one scan).
    int src = -1;
    TimePoint best{};
    std::uint64_t best_seq = 0;
    if (!lane_empty()) {
      src = 0;
      best = lane_time_;
      best_seq = lane_[lane_head_].seq;
    }
    if (!run_empty()) {
      const Entry& r = run_[run_head_];
      if (src < 0 || before(r.at, r.seq, best, best_seq)) {
        src = 1;
        best = r.at;
        best_seq = r.seq;
      }
    }
    if (!heap_.empty()) {
      const Entry& h = heap_.front();
      if (src < 0 || before(h.at, h.seq, best, best_seq)) {
        src = 2;
        best = h.at;
        best_seq = h.seq;
      }
    }
    if (src < 0 || best > until) return false;
    at = best;
    seq = best_seq;
    if (src == 0) [[likely]] {
      out = std::move(lane_[lane_head_++].ev);
      if (lane_head_ >= kCompactMin && lane_head_ * 2 >= lane_.size()) compact_lane();
    } else if (src == 1) {
      out = std::move(run_[run_head_++].ev);
      if (run_head_ >= kCompactMin && run_head_ * 2 >= run_.size()) compact_run();
    } else {
      out = pop_heap_top();
    }
    return true;
  }

  /// Drop all pending events and reset the sequence counter, so a cleared
  /// queue reproduces the same (time, seq) ordering as a fresh one.
  void clear();

  struct Stats {
    std::uint64_t lane_pushes{0};  ///< O(1) same-time fast-lane pushes
    std::uint64_t run_pushes{0};   ///< O(1) sorted-run appends
    std::uint64_t heap_pushes{0};  ///< pushes that paid a heap sift
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  static constexpr std::size_t kArity = 4;
  // Drained-prefix compaction threshold for the lane/run vectors.
  static constexpr std::size_t kCompactMin = 1024;

  struct Entry {
    TimePoint at;
    std::uint64_t seq;
    Event ev;
  };
  struct LaneEntry {
    std::uint64_t seq;
    Event ev;
  };

  [[nodiscard]] static bool before(TimePoint at_a, std::uint64_t seq_a, TimePoint at_b,
                                   std::uint64_t seq_b) noexcept {
    return at_a != at_b ? at_a < at_b : seq_a < seq_b;
  }
  [[nodiscard]] bool lane_empty() const noexcept { return lane_head_ == lane_.size(); }
  [[nodiscard]] bool run_empty() const noexcept { return run_head_ == run_.size(); }

  void push_out_of_order(TimePoint at, std::uint64_t seq, Event ev);
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  [[nodiscard]] Event pop_heap_top();
  [[nodiscard]] Event pop_run_front();
  void compact_lane();
  void compact_run();

  std::vector<Entry> heap_;      // 4-ary min-heap on (at, seq)
  std::vector<Entry> run_;       // sorted by (at, seq); consumed from run_head_
  std::vector<LaneEntry> lane_;  // FIFO of events at lane_time_
  std::size_t run_head_{0};
  std::size_t lane_head_{0};
  TimePoint lane_time_{};
  std::uint64_t next_seq_{0};
  Stats stats_{};
};

}  // namespace pdc::sim
