// pdceval -- time-ordered event queue.
//
// A binary heap of (time, sequence, action). The monotonically increasing
// sequence number makes ordering of same-time events FIFO and therefore
// deterministic across runs and platforms.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace pdc::sim {

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Enqueue `action` to fire at absolute time `at`.
  void push(TimePoint at, Action action);

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// Time of the earliest pending event. Precondition: !empty().
  [[nodiscard]] TimePoint next_time() const { return heap_.top().at; }

  /// Remove and return the earliest pending event's action.
  /// Precondition: !empty().
  [[nodiscard]] Action pop();

  void clear();

 private:
  struct Entry {
    TimePoint at;
    std::uint64_t seq;
    // `mutable` so the action can be moved out of the const top() reference
    // when popping; the heap ordering never depends on it.
    mutable Action action;

    [[nodiscard]] bool operator>(const Entry& o) const noexcept {
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::uint64_t next_seq_{0};
};

}  // namespace pdc::sim
