// pdceval -- non-allocating scheduled event.
//
// The kernel's hot path is dominated by coroutine resumes (every
// `schedule_resume`, mailbox wake-up and delay is one), so `Event` stores a
// bare `std::coroutine_handle` for that case and dispatches it with a direct
// `resume()` -- no type erasure, no indirection, no allocation. Arbitrary
// callables are carried in a small inline buffer (relocated by memcpy when
// trivially copyable); only callables larger than the buffer spill to one
// block from the thread-local FramePool freelist (malloc-free once warm).
#pragma once

#include <coroutine>
#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "sim/frame_pool.hpp"

namespace pdc::sim {

class Event {
 public:
  /// Inline capture budget. Sized to hold the runtime's per-message
  /// delivery closures (a pointer, a rank and a Message) without spilling.
  static constexpr std::size_t kInlineBytes = 40;

  Event() noexcept : handle_(nullptr) {}

  /// Fast path: a coroutine resume.
  Event(std::coroutine_handle<> h) noexcept : handle_(h) {}

  /// Any other callable. Small trivially-copyable callables are stored
  /// inline and relocated with memcpy during heap sifts; small non-trivial
  /// ones are stored inline with a per-type relocate/destroy; larger ones
  /// take one heap allocation.
  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, Event> &&
             !std::is_convertible_v<F, std::coroutine_handle<>> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  Event(F&& f) {
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_trivially_copyable_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &kTrivialOps<Fn>;
    } else if constexpr (sizeof(Fn) <= kInlineBytes &&
                         alignof(Fn) <= alignof(std::max_align_t) &&
                         std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      void* mem = FramePool::local().allocate(sizeof(Fn));
      Fn* fn;
      try {
        fn = ::new (mem) Fn(std::forward<F>(f));
      } catch (...) {
        FramePool::local().deallocate(mem, sizeof(Fn));
        throw;
      }
      ::new (static_cast<void*>(storage_)) Fn*(fn);
      ops_ = &kHeapOps<Fn>;
    }
  }

  Event(Event&& o) noexcept { steal(o); }
  Event& operator=(Event&& o) noexcept {
    if (this != &o) {
      reset();
      steal(o);
    }
    return *this;
  }
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;
  ~Event() { reset(); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr || handle_ != nullptr;
  }

  /// Fire the event. A coroutine event resumes directly; a callable event
  /// dispatches through one function pointer.
  void operator()() {
    if (ops_ == nullptr) {
      handle_.resume();
    } else {
      ops_->invoke(storage_);
    }
  }

  /// True when this event is a bare coroutine resume (the fast kind).
  [[nodiscard]] bool is_resume() const noexcept { return ops_ == nullptr && handle_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Move-construct `dst` from `src` and destroy `src`. nullptr means the
    // payload is trivially relocatable: memcpy and forget the source.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;  // nullptr: trivially destructible
  };

  template <typename Fn>
  static constexpr Ops kTrivialOps{
      [](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); },
      nullptr,
      nullptr,
  };

  template <typename Fn>
  static constexpr Ops kInlineOps{
      [](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); },
      [](void* dst, void* src) noexcept {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* s) noexcept { std::launder(reinterpret_cast<Fn*>(s))->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops kHeapOps{
      [](void* s) { (**std::launder(reinterpret_cast<Fn**>(s)))(); },
      nullptr,  // the stored pointer relocates by memcpy
      [](void* s) noexcept {
        Fn* fn = *std::launder(reinterpret_cast<Fn**>(s));
        fn->~Fn();
        FramePool::local().deallocate(fn, sizeof(Fn));
      },
  };

  void steal(Event& o) noexcept {
    ops_ = o.ops_;
    if (ops_ == nullptr) {
      handle_ = o.handle_;
      o.handle_ = nullptr;
    } else {
      if (ops_->relocate != nullptr) {
        ops_->relocate(storage_, o.storage_);
      } else {
        std::memcpy(storage_, o.storage_, kInlineBytes);
      }
      o.ops_ = nullptr;
      o.handle_ = nullptr;
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr && ops_->destroy != nullptr) ops_->destroy(storage_);
    ops_ = nullptr;
    handle_ = nullptr;
  }

  union {
    std::coroutine_handle<> handle_;
    alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  };
  const Ops* ops_{nullptr};  // nullptr: coroutine resume (or empty)
};

}  // namespace pdc::sim
