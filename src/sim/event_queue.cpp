#include "sim/event_queue.hpp"

#include <algorithm>
#include <utility>

namespace pdc::sim {

void EventQueue::push_out_of_order(TimePoint at, std::uint64_t seq, Event ev) {
  ++stats_.heap_pushes;
  heap_.push_back(Entry{at, seq, std::move(ev)});
  sift_up(heap_.size() - 1);
}

TimePoint EventQueue::next_time() const noexcept {
  // Start from whichever O(1) lane has something, then let the others beat it.
  TimePoint best{};
  std::uint64_t best_seq = 0;
  bool any = false;
  if (!lane_empty()) {
    best = lane_time_;
    best_seq = lane_[lane_head_].seq;
    any = true;
  }
  if (!run_empty()) {
    const Entry& r = run_[run_head_];
    if (!any || before(r.at, r.seq, best, best_seq)) {
      best = r.at;
      best_seq = r.seq;
      any = true;
    }
  }
  if (!heap_.empty()) {
    const Entry& h = heap_.front();
    if (!any || before(h.at, h.seq, best, best_seq)) best = h.at;
  }
  return best;
}

Event EventQueue::pop() {
  // Identify the (time, seq)-minimal front among the three lanes.
  int src = -1;  // 0 = lane, 1 = run, 2 = heap
  TimePoint best{};
  std::uint64_t best_seq = 0;
  if (!lane_empty()) {
    src = 0;
    best = lane_time_;
    best_seq = lane_[lane_head_].seq;
  }
  if (!run_empty()) {
    const Entry& r = run_[run_head_];
    if (src < 0 || before(r.at, r.seq, best, best_seq)) {
      src = 1;
      best = r.at;
      best_seq = r.seq;
    }
  }
  if (!heap_.empty()) {
    const Entry& h = heap_.front();
    if (src < 0 || before(h.at, h.seq, best, best_seq)) src = 2;
  }
  if (src == 0) {
    Event ev = std::move(lane_[lane_head_++].ev);
    if (lane_head_ >= kCompactMin && lane_head_ * 2 >= lane_.size()) compact_lane();
    return ev;
  }
  if (src == 1) return pop_run_front();
  return pop_heap_top();
}

void EventQueue::compact_lane() {
  lane_.erase(lane_.begin(), lane_.begin() + static_cast<std::ptrdiff_t>(lane_head_));
  lane_head_ = 0;
}

void EventQueue::compact_run() {
  run_.erase(run_.begin(), run_.begin() + static_cast<std::ptrdiff_t>(run_head_));
  run_head_ = 0;
}

Event EventQueue::pop_run_front() {
  Event ev = std::move(run_[run_head_++].ev);
  if (run_head_ >= kCompactMin && run_head_ * 2 >= run_.size()) compact_run();
  return ev;
}

Event EventQueue::pop_heap_top() {
  Event ev = std::move(heap_.front().ev);
  if (heap_.size() > 1) {
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    sift_down(0);
  } else {
    heap_.pop_back();
  }
  return ev;
}

void EventQueue::sift_up(std::size_t i) {
  if (i == 0) return;
  Entry e = std::move(heap_[i]);
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!before(e.at, e.seq, heap_[parent].at, heap_[parent].seq)) break;
    heap_[i] = std::move(heap_[parent]);
    i = parent;
  }
  heap_[i] = std::move(e);
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  Entry e = std::move(heap_[i]);
  for (;;) {
    const std::size_t first = i * kArity + 1;
    if (first >= n) break;
    const std::size_t last = std::min(first + kArity, n);
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (before(heap_[c].at, heap_[c].seq, heap_[best].at, heap_[best].seq)) best = c;
    }
    if (!before(heap_[best].at, heap_[best].seq, e.at, e.seq)) break;
    heap_[i] = std::move(heap_[best]);
    i = best;
  }
  heap_[i] = std::move(e);
}

void EventQueue::clear() {
  heap_.clear();
  run_.clear();
  lane_.clear();
  run_head_ = 0;
  lane_head_ = 0;
  next_seq_ = 0;
  stats_ = {};
}

}  // namespace pdc::sim
