#include "sim/event_queue.hpp"

#include <utility>

namespace pdc::sim {

void EventQueue::push(TimePoint at, Action action) {
  heap_.push(Entry{at, next_seq_++, std::move(action)});
}

EventQueue::Action EventQueue::pop() {
  Action a = std::move(heap_.top().action);
  heap_.pop();
  return a;
}

void EventQueue::clear() {
  heap_ = {};
  next_seq_ = 0;
}

}  // namespace pdc::sim
