// pdceval -- pool-backed move-only callable.
//
// `std::function` heap-allocates whenever a capture outgrows its small
// buffer (16 bytes in libstdc++), and the runtime's delivery continuations
// always do: they carry a Message, a rank and a handful of cost parameters.
// `PooledFunction` erases the callable behind one block from the thread-local
// `FramePool` freelist instead, so constructing and destroying a delivery
// continuation touches malloc only on the pool's first pass. Moves steal the
// pointer (noexcept, no allocation), which also lets an `Event` keep a
// lambda that owns one in its inline buffer.
#pragma once

#include <cstddef>
#include <type_traits>
#include <utility>

#include "sim/frame_pool.hpp"

namespace pdc::sim {

template <typename Signature>
class PooledFunction;

template <typename R, typename... Args>
class PooledFunction<R(Args...)> {
 public:
  PooledFunction() noexcept = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, PooledFunction> &&
             std::is_invocable_r_v<R, std::remove_cvref_t<F>&, Args...>)
  PooledFunction(F&& f) {
    using Fn = std::remove_cvref_t<F>;
    void* mem = FramePool::local().allocate(sizeof(Fn));
    try {
      obj_ = ::new (mem) Fn(std::forward<F>(f));
    } catch (...) {
      FramePool::local().deallocate(mem, sizeof(Fn));
      throw;
    }
    invoke_ = [](void* obj, Args... args) -> R {
      return (*static_cast<Fn*>(obj))(std::forward<Args>(args)...);
    };
    destroy_ = [](void* obj) noexcept {
      static_cast<Fn*>(obj)->~Fn();
      FramePool::local().deallocate(obj, sizeof(Fn));
    };
  }

  PooledFunction(PooledFunction&& o) noexcept
      : obj_(std::exchange(o.obj_, nullptr)),
        invoke_(std::exchange(o.invoke_, nullptr)),
        destroy_(std::exchange(o.destroy_, nullptr)) {}
  PooledFunction& operator=(PooledFunction&& o) noexcept {
    if (this != &o) {
      reset();
      obj_ = std::exchange(o.obj_, nullptr);
      invoke_ = std::exchange(o.invoke_, nullptr);
      destroy_ = std::exchange(o.destroy_, nullptr);
    }
    return *this;
  }
  PooledFunction(const PooledFunction&) = delete;
  PooledFunction& operator=(const PooledFunction&) = delete;
  ~PooledFunction() { reset(); }

  [[nodiscard]] explicit operator bool() const noexcept { return obj_ != nullptr; }

  R operator()(Args... args) const { return invoke_(obj_, std::forward<Args>(args)...); }

 private:
  void reset() noexcept {
    if (obj_ != nullptr) destroy_(obj_);
    obj_ = nullptr;
    invoke_ = nullptr;
    destroy_ = nullptr;
  }

  void* obj_{nullptr};
  R (*invoke_)(void*, Args...){nullptr};
  void (*destroy_)(void*) noexcept {nullptr};
};

}  // namespace pdc::sim
