// pdceval -- coroutine task type for simulation processes.
//
// `Task<T>` is a lazy coroutine: creating it does not run any code; it runs
// when first resumed (by `co_await`ing it from another coroutine, or by the
// scheduler for a spawned root process). On completion it symmetrically
// transfers control back to its awaiter. Exceptions propagate to the awaiter
// through `co_await`; for root processes the `Simulation` collects them.
#pragma once

#include <coroutine>
#include <cstddef>
#include <exception>
#include <optional>
#include <utility>

#include "sim/frame_pool.hpp"

namespace pdc::sim {

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation;  // resumed when this task finishes
  std::exception_ptr exception;

  // Coroutine frames are the hottest allocation in a run (one per awaited
  // call); recycle them through the thread-local freelist instead of the
  // global heap.
  static void* operator new(std::size_t n) { return FramePool::local().allocate(n); }
  static void operator delete(void* p, std::size_t n) noexcept {
    FramePool::local().deallocate(p, n);
  }

  struct FinalAwaiter {
    [[nodiscard]] bool await_ready() const noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) noexcept {
      auto& cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  [[nodiscard]] std::suspend_always initial_suspend() const noexcept { return {}; }
  [[nodiscard]] FinalAwaiter final_suspend() const noexcept { return {}; }
  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

}  // namespace detail

/// Lazy coroutine task. Move-only; owns the coroutine frame.
template <typename T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;

    Task get_return_object() noexcept {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    template <typename U>
    void return_value(U&& v) {
      value.emplace(std::forward<U>(v));
    }
  };

  Task() noexcept = default;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const noexcept { return static_cast<bool>(handle_); }
  [[nodiscard]] bool done() const noexcept { return handle_ && handle_.done(); }
  [[nodiscard]] std::coroutine_handle<promise_type> handle() const noexcept { return handle_; }

  /// Awaiting a task starts it and suspends the awaiter until it completes.
  auto operator co_await() const& noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      [[nodiscard]] bool await_ready() const noexcept { return !h || h.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
        h.promise().continuation = cont;
        return h;
      }
      T await_resume() {
        if (h.promise().exception) std::rethrow_exception(h.promise().exception);
        return std::move(*h.promise().value);
      }
    };
    return Awaiter{handle_};
  }

  /// Rethrows the task's exception, if it finished with one.
  void rethrow_if_failed() const {
    if (handle_ && handle_.promise().exception) std::rethrow_exception(handle_.promise().exception);
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) noexcept : handle_(h) {}

  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

template <>
struct Task<void>::promise_type : detail::PromiseBase {
  Task get_return_object() noexcept {
    return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
  }
  void return_void() const noexcept {}
};

template <>
inline auto Task<void>::operator co_await() const& noexcept {
  struct Awaiter {
    std::coroutine_handle<promise_type> h;
    [[nodiscard]] bool await_ready() const noexcept { return !h || h.done(); }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
      h.promise().continuation = cont;
      return h;
    }
    void await_resume() {
      if (h.promise().exception) std::rethrow_exception(h.promise().exception);
    }
  };
  return Awaiter{handle_};
}

}  // namespace pdc::sim
