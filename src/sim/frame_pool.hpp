// pdceval -- thread-local freelist for coroutine frames.
//
// Every `co_await comm.send(...)` style call creates a short-lived coroutine
// whose frame the compiler allocates with the promise's `operator new`. In a
// tool-evaluation run those frames dominate the allocation profile (a single
// 16-node global sum spins up several hundred of them), and they recur in a
// small set of sizes -- one per coroutine function. Recycling them through a
// size-class freelist removes the malloc/free pair from the steady state the
// same way `mp::BufferPool` does for payload bytes.
//
// The pool is thread-local so the parallel sweep runner needs no locking;
// frames never migrate threads (a simulation runs start-to-finish on one
// worker). Blocks above the largest class fall through to the global heap.
#pragma once

#include <cstddef>
#include <cstdint>

namespace pdc::sim {

class FramePool {
 public:
  struct Stats {
    std::uint64_t hits{0};        ///< allocations served from the freelist
    std::uint64_t misses{0};      ///< allocations that hit the heap
    std::uint64_t releases{0};    ///< frames returned to the freelist
    std::uint64_t discards{0};    ///< frames freed because a class was full
    std::uint64_t bytes_recycled{0};  ///< bytes served without touching malloc

    [[nodiscard]] double hit_rate() const noexcept {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
    }
  };

  /// The calling thread's pool (constructed on first use).
  static FramePool& local();

  /// Allocate a block of at least `n` bytes (rounded up to its size class).
  [[nodiscard]] void* allocate(std::size_t n);
  /// Return a block previously obtained from `allocate` with the same `n`.
  void deallocate(void* p, std::size_t n) noexcept;

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = Stats{}; }

  /// Free every cached block back to the heap.
  void trim() noexcept;
  [[nodiscard]] std::size_t cached_blocks() const noexcept;

  /// Ablation switch (benches): disabled, every allocation goes straight to
  /// the heap. Blocks stay class-sized either way, so blocks allocated in
  /// one state may safely be freed in the other.
  void set_enabled(bool on) noexcept {
    enabled_ = on;
    if (!on) trim();
  }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  FramePool(const FramePool&) = delete;
  FramePool& operator=(const FramePool&) = delete;

 private:
  FramePool() = default;
  ~FramePool();

  // Power-of-two classes from 64 B to 16 KiB; coroutine frames in this
  // codebase measure well inside that range.
  static constexpr std::size_t kMinClassLog2 = 6;
  static constexpr std::size_t kMaxClassLog2 = 14;
  static constexpr std::size_t kNumClasses = kMaxClassLog2 - kMinClassLog2 + 1;
  static constexpr std::size_t kMaxPerClass = 128;

  struct FreeNode {
    FreeNode* next;
  };

  [[nodiscard]] static std::size_t class_index(std::size_t n) noexcept;
  [[nodiscard]] static std::size_t class_size(std::size_t ci) noexcept {
    return std::size_t{1} << (ci + kMinClassLog2);
  }

  FreeNode* free_[kNumClasses]{};
  std::size_t count_[kNumClasses]{};
  Stats stats_{};
  bool enabled_{true};
};

}  // namespace pdc::sim
