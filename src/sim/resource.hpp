// pdceval -- contention primitives.
//
// `SerialResource` models a device that serves requests one at a time in
// arrival order (a shared Ethernet segment, a single-threaded PVM daemon, a
// host NIC/protocol stack). It uses busy-until semantics: a request arriving
// at `now` with service time `s` completes at max(busy_until, now) + s.
// Because the event loop delivers requests in chronological order, this is
// an exact FIFO M/G/1-style queue without simulating the queue explicitly.
//
// `FifoLock` is a coroutine mutex for critical sections that span awaits.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <string>

#include "sim/task.hpp"
#include "sim/time.hpp"

namespace pdc::sim {

class Simulation;

class SerialResource {
 public:
  SerialResource(Simulation& sim, std::string name);

  /// Reserve `service` time on the resource; returns the completion time.
  /// The caller is responsible for `co_await sim.delay_until(t)` if it needs
  /// to block until completion (senders often fire-and-forget instead).
  TimePoint reserve(Duration service);

  /// Reserve with an earliest start in the near future (e.g. a cut-through
  /// receive port whose bytes start arriving one switch latency from now).
  /// Requests are still served in call order, which is FIFO-per-arrival for
  /// all uses in this codebase.
  TimePoint reserve_from(TimePoint earliest, Duration service);

  /// Reserve `service` of busy time but report the pipeline latency point
  /// `start + latency` (latency <= service): downstream stages may consume
  /// the stream before this stage finishes producing it (a store-and-
  /// forward daemon whose per-fragment output overlaps the wire).
  TimePoint reserve_pipelined(Duration service, Duration latency);

  /// Total busy time accumulated (for utilisation reporting).
  [[nodiscard]] Duration busy_time() const noexcept { return busy_accum_; }
  [[nodiscard]] TimePoint busy_until() const noexcept { return busy_until_; }
  [[nodiscard]] std::uint64_t requests() const noexcept { return requests_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Forget queued work (used by failure-injection tests).
  void reset();

 private:
  Simulation& sim_;
  std::string name_;
  TimePoint busy_until_{TimePoint::origin()};
  Duration busy_accum_{Duration::zero()};
  std::uint64_t requests_{0};
};

/// FIFO coroutine mutex. `co_await lock.acquire()` suspends until the lock
/// is free; `release()` wakes the next waiter (scheduled, not inline).
class FifoLock {
 public:
  explicit FifoLock(Simulation& sim) : sim_(sim) {}

  [[nodiscard]] bool locked() const noexcept { return locked_; }
  [[nodiscard]] std::size_t waiters() const noexcept { return waiters_.size(); }

  [[nodiscard]] auto acquire() {
    struct Awaiter {
      FifoLock& lock;
      [[nodiscard]] bool await_ready() const noexcept {
        if (!lock.locked_) {
          lock.locked_ = true;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) { lock.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  void release();

 private:
  Simulation& sim_;
  bool locked_{false};
  std::deque<std::coroutine_handle<>> waiters_;
};

/// RAII guard for FifoLock; use as: `auto g = co_await ScopedLock::take(lock);`
class ScopedLock {
 public:
  static Task<ScopedLock> take(FifoLock& lock);

  ScopedLock(ScopedLock&& o) noexcept : lock_(o.lock_) { o.lock_ = nullptr; }
  ScopedLock& operator=(ScopedLock&&) = delete;
  ScopedLock(const ScopedLock&) = delete;
  ScopedLock& operator=(const ScopedLock&) = delete;
  ~ScopedLock() {
    if (lock_ != nullptr) lock_->release();
  }

 private:
  explicit ScopedLock(FifoLock& lock) : lock_(&lock) {}
  FifoLock* lock_;
};

}  // namespace pdc::sim
