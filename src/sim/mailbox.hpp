// pdceval -- typed mailbox with predicate matching.
//
// The core blocking primitive for message passing: a process awaits
// `recv(matcher)` and is resumed when a matching item is pushed. Unmatched
// items queue in arrival order; waiters are served in arrival order. This
// mirrors tag/source matching in real message-passing systems (p4 type
// matching, PVM tag matching, Express types).
#pragma once

#include <coroutine>
#include <cstddef>
#include <cstring>
#include <deque>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/simulation.hpp"

namespace pdc::sim {

/// Non-allocating match predicate: a function pointer plus a small inline
/// context, copied by value. Constructible from any trivially-copyable
/// callable of at most kCtxBytes (a captureless lambda, a `[src, tag]`
/// capture, or a named POD like `mp::TagSourceMatch`). Replaces
/// `std::function<bool(const T&)>`, which heap-allocated per recv.
template <typename T>
class MatchPred {
 public:
  static constexpr std::size_t kCtxBytes = 16;

  MatchPred() noexcept = default;
  MatchPred(std::nullptr_t) noexcept {}  // match-any, like an empty std::function

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, MatchPred> &&
             std::is_invocable_r_v<bool, const std::remove_cvref_t<F>&, const T&>)
  MatchPred(F&& f) {
    using Fn = std::remove_cvref_t<F>;
    static_assert(sizeof(Fn) <= kCtxBytes && std::is_trivially_copyable_v<Fn>,
                  "matcher must be trivially copyable and at most kCtxBytes; "
                  "wrap bigger state in a named predicate struct");
    std::memcpy(ctx_, &f, sizeof(Fn));
    fn_ = [](const void* ctx, const T& v) {
      Fn fn;
      std::memcpy(&fn, ctx, sizeof(Fn));
      return static_cast<bool>(fn(v));
    };
  }

  /// An empty predicate matches everything.
  [[nodiscard]] bool operator()(const T& v) const { return fn_ == nullptr || fn_(ctx_, v); }
  [[nodiscard]] explicit operator bool() const noexcept { return fn_ != nullptr; }

 private:
  using Fn = bool (*)(const void*, const T&);
  Fn fn_{nullptr};
  alignas(alignof(std::max_align_t)) unsigned char ctx_[kCtxBytes]{};
};

template <typename T>
class Mailbox {
 public:
  using Matcher = MatchPred<T>;

  explicit Mailbox(Simulation& sim) : sim_(sim) {}
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Deliver an item. If a waiter's matcher accepts it, that waiter is
  /// resumed (via the scheduler) with the item; otherwise the item queues.
  void push(T item) {
    for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
      if (it->matcher(item)) {
        std::optional<T>* slot = it->slot;
        const std::coroutine_handle<> handle = it->handle;
        waiters_.erase(it);
        slot->emplace(std::move(item));
        sim_.schedule_resume(sim_.now(), handle);
        return;
      }
    }
    queue_.push_back(std::move(item));
  }

  /// Awaitable receive. With no matcher, receives the oldest item.
  [[nodiscard]] auto recv(Matcher matcher = {}) {
    struct Awaiter {
      Mailbox& box;
      Matcher matcher;
      std::optional<T> slot;

      [[nodiscard]] bool await_ready() {
        auto found = box.take_matching(matcher);
        if (found) {
          slot = std::move(found);
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        box.waiters_.push_back(Waiter{matcher, &slot, h});
      }
      T await_resume() { return std::move(*slot); }
    };
    return Awaiter{*this, matcher, std::nullopt};
  }

  /// Non-blocking probe: does a matching item sit in the queue?
  [[nodiscard]] bool poll(const Matcher& matcher = {}) const {
    if (!matcher) return !queue_.empty();
    for (const auto& item : queue_) {
      if (matcher(item)) return true;
    }
    return false;
  }

  /// Non-blocking receive.
  [[nodiscard]] std::optional<T> try_recv(const Matcher& matcher = {}) {
    return take_matching(matcher);
  }

  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }
  [[nodiscard]] std::size_t waiting() const noexcept { return waiters_.size(); }

 private:
  struct Waiter {
    Matcher matcher;
    std::optional<T>* slot;
    std::coroutine_handle<> handle;
  };

  std::optional<T> take_matching(const Matcher& matcher) {
    if (queue_.empty()) return std::nullopt;
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (matcher(*it)) {
        std::optional<T> out(std::move(*it));
        queue_.erase(it);
        return out;
      }
    }
    return std::nullopt;
  }

  Simulation& sim_;
  std::deque<T> queue_;
  std::vector<Waiter> waiters_;  // short; vector iteration beats deque here
};

}  // namespace pdc::sim
