// pdceval -- typed mailbox with predicate matching.
//
// The core blocking primitive for message passing: a process awaits
// `recv(matcher)` and is resumed when a matching item is pushed. Unmatched
// items queue in arrival order; waiters are served in arrival order. This
// mirrors tag/source matching in real message-passing systems (p4 type
// matching, PVM tag matching, Express types).
//
// Under many-to-one traffic at large P the unmatched queue can hold O(P)
// items, and a naive linear scan per recv makes matching O(P^2). A mailbox
// constructed with a bucket-key extractor keeps a per-key index over the
// queue (for messages: the source rank); matchers that declare a bucket
// hint (`bucket_key()`, see MatchPred) then scan only their own bucket.
// Arrival order is preserved exactly -- the bucket index stores queue
// sequence numbers, and the oldest matching item wins in both paths -- so
// bucketed and unbucketed matching produce identical results, bucketing
// only changes how many items a scan has to look at.
#pragma once

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <limits>
#include <optional>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/simulation.hpp"

namespace pdc::sim {

/// Bucket hint meaning "no bucket": the matcher may accept items from any
/// bucket, so matching must scan the whole queue.
inline constexpr int kAnyBucket = std::numeric_limits<int>::min();

/// Matching telemetry for one mailbox (or summed over a runtime's
/// mailboxes). `items_scanned / matches` is the cost of a match: ~1 when
/// bucketed lookups hit, O(queue depth) when linear scans dominate.
struct MailboxStats {
  std::uint64_t pushes{0};         ///< items delivered into the mailbox
  std::uint64_t matches{0};        ///< items taken out of the unmatched queue
  std::uint64_t items_scanned{0};  ///< queue entries examined across those takes
  std::uint64_t max_depth{0};      ///< peak unmatched-queue depth
  std::uint64_t compactions{0};    ///< tombstone-compaction passes over the queue

  /// Sums the counters; peak depth merges as a max (it is a high-water
  /// mark, not a flow). Both operations are order-independent, so summed
  /// stats are identical for any sweep thread count.
  MailboxStats& operator+=(const MailboxStats& o) noexcept {
    pushes += o.pushes;
    matches += o.matches;
    items_scanned += o.items_scanned;
    max_depth = max_depth > o.max_depth ? max_depth : o.max_depth;
    compactions += o.compactions;
    return *this;
  }
  friend bool operator==(const MailboxStats&, const MailboxStats&) = default;
};

/// Non-allocating match predicate: a function pointer plus a small inline
/// context, copied by value. Constructible from any trivially-copyable
/// callable of at most kCtxBytes (a captureless lambda, a `[src, tag]`
/// capture, or a named POD like `mp::TagSourceMatch`). Replaces
/// `std::function<bool(const T&)>`, which heap-allocated per recv.
///
/// A callable exposing `int bucket_key() const` additionally carries a
/// bucket hint: the value every item it can match would map to under the
/// owning mailbox's bucket-key extractor (or kAnyBucket to opt out).
template <typename T>
class MatchPred {
 public:
  static constexpr std::size_t kCtxBytes = 16;

  MatchPred() noexcept = default;
  MatchPred(std::nullptr_t) noexcept {}  // match-any, like an empty std::function

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, MatchPred> &&
             std::is_invocable_r_v<bool, const std::remove_cvref_t<F>&, const T&>)
  MatchPred(F&& f) {
    using Fn = std::remove_cvref_t<F>;
    static_assert(sizeof(Fn) <= kCtxBytes && std::is_trivially_copyable_v<Fn>,
                  "matcher must be trivially copyable and at most kCtxBytes; "
                  "wrap bigger state in a named predicate struct");
    std::memcpy(ctx_, &f, sizeof(Fn));
    fn_ = [](const void* ctx, const T& v) {
      Fn fn;
      std::memcpy(&fn, ctx, sizeof(Fn));
      return static_cast<bool>(fn(v));
    };
    if constexpr (requires(const Fn& fr) {
                    { fr.bucket_key() } -> std::convertible_to<int>;
                  }) {
      bucket_ = f.bucket_key();
    }
  }

  /// An empty predicate matches everything.
  [[nodiscard]] bool operator()(const T& v) const { return fn_ == nullptr || fn_(ctx_, v); }
  [[nodiscard]] explicit operator bool() const noexcept { return fn_ != nullptr; }
  [[nodiscard]] int bucket() const noexcept { return bucket_; }

 private:
  using Fn = bool (*)(const void*, const T&);
  Fn fn_{nullptr};
  int bucket_{kAnyBucket};
  alignas(alignof(std::max_align_t)) unsigned char ctx_[kCtxBytes]{};
};

template <typename T>
class Mailbox {
 public:
  using Matcher = MatchPred<T>;
  /// Maps a queued item to its bucket (for messages: the source rank).
  using BucketKeyFn = int (*)(const T&);

  explicit Mailbox(Simulation& sim, BucketKeyFn bucket_key = nullptr)
      : sim_(sim), bucket_key_(bucket_key) {}
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Deliver an item. If a waiter's matcher accepts it, that waiter is
  /// resumed (via the scheduler) with the item; otherwise the item queues.
  void push(T item) {
    ++stats_.pushes;
    for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
      if (it->matcher(item)) {
        std::optional<T>* slot = it->slot;
        const std::coroutine_handle<> handle = it->handle;
        waiters_.erase(it);
        slot->emplace(std::move(item));
        sim_.schedule_resume(sim_.now(), handle);
        return;
      }
    }
    const std::uint64_t seq = next_seq_++;
    if (bucket_key_) buckets_[bucket_key_(item)].push_back(seq);
    entries_.push_back(Entry{std::move(item), true});
    ++live_;
    if (live_ > stats_.max_depth) stats_.max_depth = live_;
    // Tombstones between a stuck front entry and the tail are only swept by
    // this compaction (reclaim_front stops at the first live entry), so a
    // long-lived unmatched message must not pin a run's worth of dead
    // entries. Compacting here -- never inside take_matching, which may be
    // mid-iteration over a bucket deque -- keeps iterators out of harm's
    // way. Amortised O(1): a pass costs O(size) and only runs once the
    // queue has doubled its dead weight.
    if (entries_.size() >= kCompactMin && live_ * 2 <= entries_.size()) compact();
  }

  /// Awaitable receive. With no matcher, receives the oldest item.
  [[nodiscard]] auto recv(Matcher matcher = {}) {
    struct Awaiter {
      Mailbox& box;
      Matcher matcher;
      std::optional<T> slot;

      [[nodiscard]] bool await_ready() {
        auto found = box.take_matching(matcher);
        if (found) {
          slot = std::move(found);
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        box.waiters_.push_back(Waiter{matcher, &slot, h});
      }
      T await_resume() { return std::move(*slot); }
    };
    return Awaiter{*this, matcher, std::nullopt};
  }

  /// Non-blocking probe: does a matching item sit in the queue?
  [[nodiscard]] bool poll(const Matcher& matcher = {}) const {
    if (live_ == 0) return false;
    if (!matcher) return true;
    if (bucket_key_ && matcher.bucket() != kAnyBucket) {
      const auto it = buckets_.find(matcher.bucket());
      if (it == buckets_.end()) return false;
      for (const std::uint64_t seq : it->second) {
        const Entry* e = entry_for(seq);
        if (e != nullptr && e->alive && matcher(e->item)) return true;
      }
      return false;
    }
    for (const auto& e : entries_) {
      if (e.alive && matcher(e.item)) return true;
    }
    return false;
  }

  /// Non-blocking receive.
  [[nodiscard]] std::optional<T> try_recv(const Matcher& matcher = {}) {
    return take_matching(matcher);
  }

  [[nodiscard]] std::size_t pending() const noexcept { return live_; }
  [[nodiscard]] std::size_t waiting() const noexcept { return waiters_.size(); }
  /// Physical queue depth: live entries plus not-yet-compacted tombstones.
  /// The gap to pending() is the dead weight compaction exists to bound.
  [[nodiscard]] std::size_t buffered() const noexcept { return entries_.size(); }
  [[nodiscard]] const MailboxStats& stats() const noexcept { return stats_; }

 private:
  /// A queued item plus its tombstone flag. Taken items are marked dead in
  /// place (so bucket indices stay valid) and reclaimed when they reach the
  /// deque front; `front_seq_ + entries_.size() == next_seq_` always holds,
  /// making seq -> index a subtraction.
  struct Entry {
    T item;
    bool alive;
  };

  struct Waiter {
    Matcher matcher;
    std::optional<T>* slot;
    std::coroutine_handle<> handle;
  };

  [[nodiscard]] const Entry* entry_for(std::uint64_t seq) const noexcept {
    if (seq < front_seq_) return nullptr;  // already reclaimed
    return &entries_[static_cast<std::size_t>(seq - front_seq_)];
  }

  void reclaim_front() {
    while (!entries_.empty() && !entries_.front().alive) {
      entries_.pop_front();
      ++front_seq_;
    }
  }

  /// Below this depth a full rebuild costs more than the tombstones it
  /// frees; small queues just ride on reclaim_front().
  static constexpr std::size_t kCompactMin = 64;

  /// Rebuild the queue with only live entries, renumbering them from
  /// next_seq_ upward in arrival order. Bucket deques are rebuilt to the new
  /// seqs, so every stale index disappears in the same pass. Renumbering
  /// keeps the `front_seq_ + entries_.size() == next_seq_` subtraction
  /// invariant without per-entry seq storage; relative arrival order (all
  /// matching tie-breaks) is untouched.
  void compact() {
    std::deque<Entry> alive;
    for (auto& e : entries_) {
      if (e.alive) alive.push_back(std::move(e));
    }
    entries_ = std::move(alive);
    buckets_.clear();
    front_seq_ = next_seq_;
    for (const auto& e : entries_) {
      if (bucket_key_) buckets_[bucket_key_(e.item)].push_back(next_seq_);
      ++next_seq_;
    }
    ++stats_.compactions;
  }

  std::optional<T> take(Entry& e) {
    std::optional<T> out(std::move(e.item));
    e.alive = false;
    --live_;
    ++stats_.matches;
    reclaim_front();
    return out;
  }

  std::optional<T> take_matching(const Matcher& matcher) {
    if (live_ == 0) {
      // Everything queued was taken; drop any stale bucket entries so an
      // idle mailbox holds no per-peer state.
      if (!buckets_.empty()) buckets_.clear();
      return std::nullopt;
    }
    if (bucket_key_ && matcher.bucket() != kAnyBucket) {
      const auto bit = buckets_.find(matcher.bucket());
      if (bit == buckets_.end()) return std::nullopt;
      auto& bq = bit->second;
      for (std::size_t i = 0; i < bq.size();) {
        const Entry* e = entry_for(bq[i]);
        if (e == nullptr || !e->alive) {
          // Stale: taken via an any-bucket scan or reclaimed; drop lazily.
          bq.erase(bq.begin() + static_cast<std::ptrdiff_t>(i));
          continue;
        }
        ++stats_.items_scanned;
        if (matcher(e->item)) {
          auto out = take(entries_[static_cast<std::size_t>(bq[i] - front_seq_)]);
          bq.erase(bq.begin() + static_cast<std::ptrdiff_t>(i));
          if (bq.empty()) buckets_.erase(bit);
          return out;
        }
        ++i;
      }
      return std::nullopt;
    }
    for (auto& e : entries_) {
      if (!e.alive) continue;
      ++stats_.items_scanned;
      if (matcher(e.item)) return take(e);
      // The matching bucket (if any) keeps a stale seq; the next bucketed
      // scan of that bucket drops it.
    }
    return std::nullopt;
  }

  Simulation& sim_;
  BucketKeyFn bucket_key_{nullptr};
  std::deque<Entry> entries_;
  std::uint64_t front_seq_{0};  ///< seq of entries_.front()
  std::uint64_t next_seq_{0};
  std::size_t live_{0};
  std::unordered_map<int, std::deque<std::uint64_t>> buckets_;
  std::vector<Waiter> waiters_;  // short; vector iteration beats deque here
  MailboxStats stats_;
};

}  // namespace pdc::sim
