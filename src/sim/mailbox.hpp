// pdceval -- typed mailbox with predicate matching.
//
// The core blocking primitive for message passing: a process awaits
// `recv(matcher)` and is resumed when a matching item is pushed. Unmatched
// items queue in arrival order; waiters are served in arrival order. This
// mirrors tag/source matching in real message-passing systems (p4 type
// matching, PVM tag matching, Express types).
#pragma once

#include <coroutine>
#include <deque>
#include <functional>
#include <optional>
#include <utility>

#include "sim/simulation.hpp"

namespace pdc::sim {

template <typename T>
class Mailbox {
 public:
  using Matcher = std::function<bool(const T&)>;

  explicit Mailbox(Simulation& sim) : sim_(sim) {}
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Deliver an item. If a waiter's matcher accepts it, that waiter is
  /// resumed (via the scheduler) with the item; otherwise the item queues.
  void push(T item) {
    for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
      if (!it->matcher || it->matcher(item)) {
        Waiter w = std::move(*it);
        waiters_.erase(it);
        w.slot->emplace(std::move(item));
        sim_.schedule_resume(sim_.now(), w.handle);
        return;
      }
    }
    queue_.push_back(std::move(item));
  }

  /// Awaitable receive. With no matcher, receives the oldest item.
  [[nodiscard]] auto recv(Matcher matcher = nullptr) {
    struct Awaiter {
      Mailbox& box;
      Matcher matcher;
      std::optional<T> slot;

      [[nodiscard]] bool await_ready() {
        auto found = box.take_matching(matcher);
        if (found) {
          slot = std::move(found);
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        box.waiters_.push_back(Waiter{std::move(matcher), &slot, h});
      }
      T await_resume() { return std::move(*slot); }
    };
    return Awaiter{*this, std::move(matcher), std::nullopt};
  }

  /// Non-blocking probe: does a matching item sit in the queue?
  [[nodiscard]] bool poll(const Matcher& matcher = nullptr) const {
    if (!matcher) return !queue_.empty();
    for (const auto& item : queue_) {
      if (matcher(item)) return true;
    }
    return false;
  }

  /// Non-blocking receive.
  [[nodiscard]] std::optional<T> try_recv(const Matcher& matcher = nullptr) {
    return take_matching(matcher);
  }

  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }
  [[nodiscard]] std::size_t waiting() const noexcept { return waiters_.size(); }

 private:
  struct Waiter {
    Matcher matcher;
    std::optional<T>* slot;
    std::coroutine_handle<> handle;
  };

  std::optional<T> take_matching(const Matcher& matcher) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (!matcher || matcher(*it)) {
        std::optional<T> out(std::move(*it));
        queue_.erase(it);
        return out;
      }
    }
    return std::nullopt;
  }

  Simulation& sim_;
  std::deque<T> queue_;
  std::deque<Waiter> waiters_;
};

}  // namespace pdc::sim
