// pdceval -- deterministic random number generation (SplitMix64 core).
//
// Self-contained so results are identical across standard libraries
// (std::mt19937 distributions are not portable across implementations).
#pragma once

#include <cstdint>
#include <string_view>

namespace pdc::sim {

/// SplitMix64: tiny, fast, passes BigCrush when used as a stream. Good
/// enough for workload generation and Monte Carlo demos; NOT for crypto.
class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next_u64() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [lo, hi] (inclusive). Precondition: lo <= hi.
  constexpr std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) noexcept {
    // Lemire-style rejection-free bound is overkill here; modulo bias is
    // negligible for the ranges used (<< 2^64).
    return lo + next_u64() % (hi - lo + 1);
  }

  constexpr std::int32_t uniform_i32(std::int32_t lo, std::int32_t hi) noexcept {
    return static_cast<std::int32_t>(static_cast<std::int64_t>(lo) +
                                     static_cast<std::int64_t>(next_u64() % static_cast<std::uint64_t>(
                                                                   static_cast<std::int64_t>(hi) - lo + 1)));
  }

  /// Derive an independent stream (for per-process RNGs).
  [[nodiscard]] constexpr Rng split() noexcept { return Rng(next_u64() ^ 0xD1B54A32D192ED03ULL); }

 private:
  std::uint64_t state_;
};

/// Seed of an independent *named* stream derived from a base seed.
///
/// Every RNG consumer (fault injection, workload generation, app sampling)
/// must draw from its own named stream rather than sharing one `Rng`:
/// shared streams couple consumers, so attaching a new one (e.g. enabling a
/// fault plan) would shift every later draw of the others and silently
/// change app-level results. The label's FNV-1a hash is mixed with the base
/// seed through two SplitMix steps, so streams for distinct labels are
/// decorrelated even for adjacent seeds.
[[nodiscard]] constexpr std::uint64_t named_stream(std::uint64_t seed,
                                                  std::string_view label) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a 64-bit offset basis
  for (const char c : label) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x00000100000001B3ULL;
  }
  Rng mix(seed ^ h);
  (void)mix.next_u64();
  return mix.next_u64();
}

}  // namespace pdc::sim
