#include "model/skeleton.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace pdc::model {

struct Skeleton::Node {
  enum class Kind {
    Primitive, Constant, Serial, Pipeline, MapReduce, TaskPool, Overlap, Args, Scale
  };
  Kind kind{Kind::Constant};
  std::string name;
  FittedModel model{};
  double value{0.0};  // Constant: ms; Scale: factor
  std::vector<Skeleton> children;
  int items{0};    // Pipeline items / MapReduce tasks
  int workers{0};  // MapReduce / TaskPool workers
  std::optional<double> n_override;
  std::optional<double> p_override;
};

Skeleton Skeleton::primitive(std::string name, FittedModel m) {
  Node n;
  n.kind = Node::Kind::Primitive;
  n.name = std::move(name);
  n.model = m;
  return Skeleton(std::make_shared<const Node>(std::move(n)));
}

Skeleton Skeleton::constant(std::string name, double ms) {
  if (!(ms >= 0.0)) throw std::invalid_argument("Skeleton::constant: negative cost");
  Node n;
  n.kind = Node::Kind::Constant;
  n.name = std::move(name);
  n.value = ms;
  return Skeleton(std::make_shared<const Node>(std::move(n)));
}

Skeleton Skeleton::serial(std::vector<Skeleton> parts) {
  if (parts.empty()) throw std::invalid_argument("Skeleton::serial: no parts");
  Node n;
  n.kind = Node::Kind::Serial;
  n.children = std::move(parts);
  return Skeleton(std::make_shared<const Node>(std::move(n)));
}

Skeleton Skeleton::pipeline(std::vector<Skeleton> stages, int items) {
  if (stages.empty()) throw std::invalid_argument("Skeleton::pipeline: no stages");
  if (items < 1) throw std::invalid_argument("Skeleton::pipeline: items < 1");
  Node n;
  n.kind = Node::Kind::Pipeline;
  n.children = std::move(stages);
  n.items = items;
  return Skeleton(std::make_shared<const Node>(std::move(n)));
}

Skeleton Skeleton::map_reduce(Skeleton task, int tasks, int workers, Skeleton reduce) {
  if (tasks < 1) throw std::invalid_argument("Skeleton::map_reduce: tasks < 1");
  if (workers < 1) throw std::invalid_argument("Skeleton::map_reduce: workers < 1");
  Node n;
  n.kind = Node::Kind::MapReduce;
  n.children.push_back(std::move(task));
  n.children.push_back(std::move(reduce));
  n.items = tasks;
  n.workers = workers;
  return Skeleton(std::make_shared<const Node>(std::move(n)));
}

Skeleton Skeleton::task_pool(std::vector<Skeleton> tasks, int workers, Skeleton head) {
  if (tasks.empty()) throw std::invalid_argument("Skeleton::task_pool: no tasks");
  if (workers < 1) throw std::invalid_argument("Skeleton::task_pool: workers < 1");
  Node n;
  n.kind = Node::Kind::TaskPool;
  n.children = std::move(tasks);
  n.children.push_back(std::move(head));  // head stored last
  n.workers = workers;
  return Skeleton(std::make_shared<const Node>(std::move(n)));
}

Skeleton Skeleton::overlap(std::vector<Skeleton> parts) {
  if (parts.empty()) throw std::invalid_argument("Skeleton::overlap: no parts");
  Node n;
  n.kind = Node::Kind::Overlap;
  n.children = std::move(parts);
  return Skeleton(std::make_shared<const Node>(std::move(n)));
}

Skeleton Skeleton::with_args(std::optional<double> n, std::optional<double> p) const {
  Node node;
  node.kind = Node::Kind::Args;
  node.children.push_back(*this);
  node.n_override = n;
  node.p_override = p;
  return Skeleton(std::make_shared<const Node>(std::move(node)));
}

Skeleton Skeleton::scaled(double factor) const {
  if (!(factor >= 0.0)) throw std::invalid_argument("Skeleton::scaled: negative factor");
  Node node;
  node.kind = Node::Kind::Scale;
  node.children.push_back(*this);
  node.value = factor;
  return Skeleton(std::make_shared<const Node>(std::move(node)));
}

double Skeleton::cost_ms(double n, double p) const {
  const Node& nd = *node_;
  switch (nd.kind) {
    case Node::Kind::Primitive: return nd.model.predict_ms(n, p);
    case Node::Kind::Constant: return nd.value;
    case Node::Kind::Serial: {
      double sum = 0.0;
      for (const Skeleton& c : nd.children) sum += c.cost_ms(n, p);
      return sum;
    }
    case Node::Kind::Pipeline: {
      // Fill the pipe once, then the slowest stage gates every further
      // item: sum(s_i) + (M-1) * max(s_i).
      double sum = 0.0, slowest = 0.0;
      for (const Skeleton& c : nd.children) {
        const double s = c.cost_ms(n, p);
        sum += s;
        slowest = std::max(slowest, s);
      }
      return sum + static_cast<double>(nd.items - 1) * slowest;
    }
    case Node::Kind::MapReduce: {
      const double task = nd.children[0].cost_ms(n, p);
      const double reduce = nd.children[1].cost_ms(n, p);
      const double waves =
          std::ceil(static_cast<double>(nd.items) / static_cast<double>(nd.workers));
      return waves * task + reduce;
    }
    case Node::Kind::TaskPool: {
      // Greedy list scheduling: each task (in list order) starts on the
      // earliest-available worker; the makespan is the critical path over
      // the workers. The pool head serialises one `head` per task
      // (dispatch + collect), flooring the makespan.
      const std::size_t ntasks = nd.children.size() - 1;
      const double head = nd.children.back().cost_ms(n, p);
      std::vector<double> free_at(static_cast<std::size_t>(nd.workers), 0.0);
      double makespan = 0.0;
      for (std::size_t i = 0; i < ntasks; ++i) {
        auto slot = std::min_element(free_at.begin(), free_at.end());
        *slot += nd.children[i].cost_ms(n, p);
        makespan = std::max(makespan, *slot);
      }
      return std::max(makespan, static_cast<double>(ntasks) * head);
    }
    case Node::Kind::Overlap: {
      double slowest = 0.0;
      for (const Skeleton& c : nd.children) slowest = std::max(slowest, c.cost_ms(n, p));
      return slowest;
    }
    case Node::Kind::Args:
      return nd.children[0].cost_ms(nd.n_override.value_or(n), nd.p_override.value_or(p));
    case Node::Kind::Scale: return nd.value * nd.children[0].cost_ms(n, p);
  }
  return 0.0;
}

std::string Skeleton::describe() const {
  const Node& nd = *node_;
  auto join = [](const std::vector<Skeleton>& cs, std::size_t count) {
    std::string s;
    for (std::size_t i = 0; i < count; ++i) {
      s += ' ';
      s += cs[i].describe();
    }
    return s;
  };
  char buf[64];
  switch (nd.kind) {
    case Node::Kind::Primitive: return nd.name;
    case Node::Kind::Constant:
      std::snprintf(buf, sizeof buf, "(const %s %.3g)", nd.name.c_str(), nd.value);
      return buf;
    case Node::Kind::Serial:
      return "(serial" + join(nd.children, nd.children.size()) + ")";
    case Node::Kind::Pipeline:
      std::snprintf(buf, sizeof buf, "(pipeline x%d", nd.items);
      return buf + join(nd.children, nd.children.size()) + ")";
    case Node::Kind::MapReduce:
      std::snprintf(buf, sizeof buf, "(map-reduce %dx%d ", nd.items, nd.workers);
      return buf + nd.children[0].describe() + " " + nd.children[1].describe() + ")";
    case Node::Kind::TaskPool:
      std::snprintf(buf, sizeof buf, "(task-pool w%d head=", nd.workers);
      return buf + nd.children.back().describe() +
             join(nd.children, nd.children.size() - 1) + ")";
    case Node::Kind::Overlap:
      return "(overlap" + join(nd.children, nd.children.size()) + ")";
    case Node::Kind::Args: {
      std::string s = "(at";
      if (nd.n_override) {
        std::snprintf(buf, sizeof buf, " n=%g", *nd.n_override);
        s += buf;
      }
      if (nd.p_override) {
        std::snprintf(buf, sizeof buf, " p=%g", *nd.p_override);
        s += buf;
      }
      return s + " " + nd.children[0].describe() + ")";
    }
    case Node::Kind::Scale:
      std::snprintf(buf, sizeof buf, "(scale %.3g ", nd.value);
      return buf + nd.children[0].describe() + ")";
  }
  return "?";
}

}  // namespace pdc::model
