// pdcmodel -- nestable parallel-pattern skeletons whose cost composes
// analytically from fitted primitive models (DESIGN section 5 item 16).
//
// A Skeleton is a cost-model tree. Leaves are fitted primitive models (or
// constants); interior nodes are the classic algorithmic skeletons and
// combine their children's costs with closed-form algebra:
//
//   serial(parts)                  sum of part costs
//   pipeline(stages, M items)      fill + steady drain:
//                                  sum(stage) + (M-1) * max(stage)
//   map_reduce(task, M, W, reduce) list-scheduled map then reduce:
//                                  ceil(M/W) * task + reduce
//   task_pool(tasks, W, head)      greedy earliest-available-worker
//                                  assignment in list order (the critical
//                                  path over W workers), floored by the
//                                  pool head serialising `head` per task:
//                                  max(list makespan, |tasks| * head)
//   overlap(parts)                 parts proceed concurrently on one rank
//                                  (communication hidden behind compute
//                                  when the tool sends in background):
//                                  max of part costs
//
// Every node evaluates at the (n, p) the caller passes to cost_ms;
// `with_args` pins a subtree to fixed arguments (a pipeline hop is a
// 2-rank primitive no matter how many ranks the whole pattern spans) and
// `scaled` multiplies a subtree's cost (one-way hop = round-trip / 2).
// Skeletons nest freely: a pipeline stage can be a task pool whose tasks
// are map-reduces. Evaluation is a pure fold over the tree -- same
// determinism argument as the fitter.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "model/model.hpp"

namespace pdc::model {

class Skeleton {
 public:
  /// Leaf: a fitted primitive model evaluated at the incoming (n, p).
  [[nodiscard]] static Skeleton primitive(std::string name, FittedModel m);

  /// Leaf: a fixed cost in milliseconds (calibrated constants, stubs).
  [[nodiscard]] static Skeleton constant(std::string name, double ms);

  /// Plain sequence: parts run one after another.
  [[nodiscard]] static Skeleton serial(std::vector<Skeleton> parts);

  /// `items` work items flow through `stages` concurrent stages.
  [[nodiscard]] static Skeleton pipeline(std::vector<Skeleton> stages, int items);

  /// `tasks` copies of `task` over `workers` workers, then `reduce` once.
  [[nodiscard]] static Skeleton map_reduce(Skeleton task, int tasks, int workers,
                                           Skeleton reduce);

  /// Heterogeneous task list over `workers` workers with a serialising
  /// pool head paying `head` per task (dispatch + collect).
  [[nodiscard]] static Skeleton task_pool(std::vector<Skeleton> tasks, int workers,
                                          Skeleton head);

  /// Parts that proceed concurrently on the same rank (e.g. a background
  /// send overlapping the next item's compute): cost = max of part costs.
  [[nodiscard]] static Skeleton overlap(std::vector<Skeleton> parts);

  /// Evaluate this subtree at fixed arguments instead of the incoming
  /// ones (either may be left unset to inherit).
  [[nodiscard]] Skeleton with_args(std::optional<double> n,
                                   std::optional<double> p) const;

  /// Multiply this subtree's cost by `factor`.
  [[nodiscard]] Skeleton scaled(double factor) const;

  /// Composed end-to-end cost at problem size `n` on `p` processes.
  [[nodiscard]] double cost_ms(double n, double p) const;

  /// S-expression form, e.g. "(pipeline x16 (scale 0.5 hop) ...)".
  [[nodiscard]] std::string describe() const;

 private:
  struct Node;
  explicit Skeleton(std::shared_ptr<const Node> node) : node_(std::move(node)) {}
  std::shared_ptr<const Node> node_;
};

}  // namespace pdc::model
