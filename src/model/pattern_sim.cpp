#include "model/pattern_sim.hpp"

#include <stdexcept>
#include <vector>

#include "mp/api.hpp"
#include "mp/profile.hpp"

namespace pdc::model {

namespace {

constexpr int kTag = 1200;
constexpr int kStopTag = 1199;

[[nodiscard]] mp::Bytes filled(std::int64_t bytes) {
  return mp::Bytes(static_cast<std::size_t>(bytes), std::byte{0x3C});
}

}  // namespace

double pipeline_sim_ms(host::PlatformId platform, mp::ToolKind tool, int procs,
                       std::int64_t bytes, int items, double flops) {
  if (procs < 2) throw std::invalid_argument("pipeline_sim_ms: procs < 2");
  if (items < 1) throw std::invalid_argument("pipeline_sim_ms: items < 1");
  auto program = [bytes, items, procs, flops](mp::Communicator& c) -> sim::Task<void> {
    const int rank = c.rank();
    for (int k = 0; k < items; ++k) {
      if (rank == 0) {
        co_await c.send(1, kTag + k, mp::make_payload(filled(bytes)));
      } else {
        mp::Message m = co_await c.recv(rank - 1, kTag + k);
        if (flops > 0.0) co_await c.compute_flops(flops);
        if (rank + 1 < procs) co_await c.send(rank + 1, kTag + k, m.data);
      }
    }
  };
  return mp::run_spmd(platform, procs, tool, program).elapsed.millis();
}

std::optional<double> mapreduce_sim_ms(host::PlatformId platform, mp::ToolKind tool,
                                       int procs, std::int64_t bytes, int tasks,
                                       std::int64_t ints, double flops) {
  if (procs < 2) throw std::invalid_argument("mapreduce_sim_ms: procs < 2");
  if (tasks < 1) throw std::invalid_argument("mapreduce_sim_ms: tasks < 1");
  if (mp::tool_profile(tool, platform).reduce_algo ==
      mp::ToolProfile::ReduceAlgo::Unsupported) {
    return std::nullopt;  // PVM: no global operation, same hole as global_sum_ms
  }
  // Every rank owns ceil(tasks/procs) map tasks; a map task is one
  // neighbour shift of the broadcast payload (all ranks shift
  // concurrently, so a wave costs one shift, and the waves serialise).
  const int waves = (tasks + procs - 1) / procs;
  auto program = [bytes, waves, procs, ints, flops](mp::Communicator& c) -> sim::Task<void> {
    mp::Bytes data;
    if (c.rank() == 0) data = filled(bytes);
    co_await c.broadcast(0, data, kTag);
    const int next = (c.rank() + 1) % procs;
    const int prev = (c.rank() + procs - 1) % procs;
    for (int w = 0; w < waves; ++w) {
      co_await c.send(next, kTag + 1 + w, mp::make_payload(mp::Bytes(data)));
      (void)co_await c.recv(prev, kTag + 1 + w);
      if (flops > 0.0) co_await c.compute_flops(flops);
    }
    std::vector<std::int32_t> v(static_cast<std::size_t>(ints), c.rank() + 1);
    co_await c.global_sum(v);
  };
  return mp::run_spmd(platform, procs, tool, program).elapsed.millis();
}

double taskpool_sim_ms(host::PlatformId platform, mp::ToolKind tool, int procs,
                       std::int64_t bytes, int tasks, double flops) {
  if (procs < 2) throw std::invalid_argument("taskpool_sim_ms: procs < 2");
  if (tasks < 1) throw std::invalid_argument("taskpool_sim_ms: tasks < 1");
  const int workers = procs - 1;
  auto program = [bytes, tasks, workers, flops](mp::Communicator& c) -> sim::Task<void> {
    if (c.rank() == 0) {
      // Pool head: one task per worker up front, then demand-driven --
      // the next task goes to whichever worker's echo arrives first.
      int sent = 0, done = 0;
      for (int w = 1; w <= workers && sent < tasks; ++w, ++sent) {
        co_await c.send(w, kTag, mp::make_payload(filled(bytes)));
      }
      while (done < tasks) {
        mp::Message reply = co_await c.recv(mp::kAnySource, kTag);
        ++done;
        if (sent < tasks) {
          co_await c.send(reply.src, kTag, mp::make_payload(filled(bytes)));
          ++sent;
        }
      }
      for (int w = 1; w <= workers; ++w) {
        co_await c.send(w, kStopTag, mp::make_payload(mp::Bytes{}));
      }
    } else {
      while (true) {
        mp::Message task = co_await c.recv(0, mp::kAnyTag);
        if (task.tag == kStopTag) break;
        if (flops > 0.0) co_await c.compute_flops(flops);
        co_await c.send(0, kTag, task.data);  // echo the payload back
      }
    }
  };
  return mp::run_spmd(platform, procs, tool, program).elapsed.millis();
}

}  // namespace pdc::model
