#include "model/crossval.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "eval/criteria.hpp"
#include "model/pattern_sim.hpp"
#include "mp/profile.hpp"

namespace pdc::model {

namespace {

[[nodiscard]] eval::TplCell make_cell(mp::ToolKind tool, host::PlatformId platform,
                                      eval::Primitive primitive, std::int64_t size,
                                      int procs) {
  eval::TplCell c;
  c.primitive = primitive;
  c.platform = platform;
  c.tool = tool;
  c.procs = procs;
  if (primitive == eval::Primitive::GlobalSum) {
    c.bytes = 0;
    c.global_sum_ints = size;
  } else {
    c.bytes = size;
  }
  return c;
}

[[nodiscard]] std::string cell_label(mp::ToolKind tool, host::PlatformId platform,
                                     const char* what) {
  return std::string(mp::to_string(tool)) + "/" + host::to_string(platform) + "/" + what;
}

/// Median of |errors| with a deterministic definition: sort, take the
/// middle element (odd count) or the mean of the two middles.
[[nodiscard]] double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t mid = v.size() / 2;
  return v.size() % 2 == 1 ? v[mid] : 0.5 * (v[mid - 1] + v[mid]);
}

void finalize(CellReport& r) {
  std::vector<double> all, extra;
  for (const PointReport& p : r.points) {
    all.push_back(p.rel_err);
    if (p.extrapolated) extra.push_back(p.rel_err);
    r.max_rel_err = std::max(r.max_rel_err, p.rel_err);
  }
  r.median_rel_err = median(std::move(all));
  r.median_extrapolated_err = median(std::move(extra));
}

[[nodiscard]] std::vector<double> measure_or_throw(const MeasureTpl& measure,
                                                   const std::vector<eval::TplCell>& cells,
                                                   const std::string& label) {
  const auto raw = measure(cells);
  if (raw.size() != cells.size()) {
    throw std::runtime_error("cross-validate " + label + ": measurement batch size mismatch");
  }
  std::vector<double> out;
  out.reserve(raw.size());
  for (const auto& v : raw) {
    if (!v) {
      throw std::runtime_error("cross-validate " + label +
                               ": primitive unsupported for this tool");
    }
    out.push_back(*v);
  }
  return out;
}

/// Fit one primitive from a training grid through `measure`.
[[nodiscard]] FittedModel fit_primitive(mp::ToolKind tool, host::PlatformId platform,
                                        eval::Primitive primitive, const TrainGrid& train,
                                        const MeasureTpl& measure,
                                        const std::string& label) {
  std::vector<eval::TplCell> cells;
  std::vector<Observation> obs;
  const std::vector<int> procs_axis =
      primitive == eval::Primitive::SendRecv ? std::vector<int>{2} : train.procs;
  for (std::int64_t size : train.sizes) {
    for (int p : procs_axis) {
      cells.push_back(make_cell(tool, platform, primitive, size, p));
      obs.push_back({static_cast<double>(size), static_cast<double>(p), 0.0});
    }
  }
  const auto times = measure_or_throw(measure, cells, label);
  for (std::size_t i = 0; i < obs.size(); ++i) obs[i].t_ms = times[i];
  return fit_model(obs);
}

[[nodiscard]] double rel_err(double predicted, double measured) {
  return measured > 0.0 ? std::abs(predicted - measured) / measured : 0.0;
}

}  // namespace

MeasureTpl direct_measure(unsigned threads) {
  return [threads](const std::vector<eval::TplCell>& cells) {
    return eval::sweep_tpl_ms(cells, threads);
  };
}

CellReport cross_validate_primitive(mp::ToolKind tool, host::PlatformId platform,
                                    eval::Primitive primitive, const TrainGrid& train,
                                    std::span<const HoldoutPoint> holdout,
                                    const MeasureTpl& measure) {
  CellReport r;
  r.label = cell_label(tool, platform, eval::to_string(primitive));
  r.model = fit_primitive(tool, platform, primitive, train, measure, r.label);

  std::int64_t max_size = 0;
  int max_procs = 0;
  for (std::int64_t s : train.sizes) max_size = std::max(max_size, s);
  for (int p : train.procs) max_procs = std::max(max_procs, p);

  std::vector<eval::TplCell> cells;
  cells.reserve(holdout.size());
  for (const HoldoutPoint& h : holdout) {
    cells.push_back(make_cell(tool, platform, primitive, h.size, h.procs));
  }
  const auto times = measure_or_throw(measure, cells, r.label);
  for (std::size_t i = 0; i < holdout.size(); ++i) {
    PointReport p;
    p.n = static_cast<double>(holdout[i].size);
    p.p = static_cast<double>(holdout[i].procs);
    p.measured_ms = times[i];
    p.predicted_ms = r.model.predict_ms(p.n, p.p);
    p.rel_err = rel_err(p.predicted_ms, p.measured_ms);
    p.extrapolated = holdout[i].size > max_size ||
                     (primitive != eval::Primitive::SendRecv && holdout[i].procs > max_procs);
    r.points.push_back(p);
  }
  finalize(r);
  return r;
}

const char* to_string(PatternKind k) {
  switch (k) {
    case PatternKind::Pipeline: return "pipeline";
    case PatternKind::MapReduce: return "mapreduce";
    case PatternKind::TaskPool: return "taskpool";
  }
  return "?";
}

Skeleton pattern_skeleton(PatternKind kind, const PatternLeaves& leaves,
                          std::int64_t bytes, int procs, int tasks, std::int64_t ints,
                          double work_ms, bool overlap_comm) {
  const double n = static_cast<double>(bytes);
  const Skeleton work = Skeleton::constant("work", work_ms);
  switch (kind) {
    case PatternKind::Pipeline: {
      // procs chained ranks = procs-1 store-and-forward stages; each stage
      // is one one-way message (half the fitted 2-rank round trip)
      // followed by the receiving rank's per-item compute. Tools that send
      // in the background hide the hop behind the compute instead of
      // paying both in sequence.
      const Skeleton hop =
          Skeleton::primitive("pingpong", leaves.sendrecv).with_args(n, 2.0).scaled(0.5);
      const Skeleton stage = overlap_comm ? Skeleton::overlap({hop, work})
                                          : Skeleton::serial({hop, work});
      std::vector<Skeleton> stages(static_cast<std::size_t>(procs - 1), stage);
      return Skeleton::pipeline(std::move(stages), tasks);
    }
    case PatternKind::MapReduce: {
      // Broadcast seeds the data; the map phase is `tasks` concurrent
      // shift-and-compute tasks over `procs` workers (one shift = a
      // quarter of the fitted 4-round ring time); the reduce is a global
      // sum.
      const Skeleton seed =
          Skeleton::primitive("broadcast", leaves.broadcast)
              .with_args(n, static_cast<double>(procs));
      const Skeleton shift = Skeleton::primitive("ring", leaves.ring)
                                 .with_args(n, static_cast<double>(procs))
                                 .scaled(0.25);
      const Skeleton reduce =
          Skeleton::primitive("globalsum", leaves.globalsum)
              .with_args(static_cast<double>(ints), static_cast<double>(procs));
      return Skeleton::serial(
          {seed, Skeleton::map_reduce(Skeleton::serial({shift, work}), tasks, procs,
                                      reduce)});
    }
    case PatternKind::TaskPool: {
      // Every task is one n-byte round trip around the worker's compute;
      // the pool head pays its host half of that round trip per task
      // (dispatch + collect).
      const Skeleton rtt =
          Skeleton::primitive("pingpong", leaves.sendrecv).with_args(n, 2.0);
      std::vector<Skeleton> pool(static_cast<std::size_t>(tasks),
                                 Skeleton::serial({rtt, work}));
      return Skeleton::task_pool(std::move(pool), procs - 1, rtt.scaled(0.5));
    }
  }
  throw std::logic_error("pattern_skeleton: unknown kind");
}

CellReport cross_validate_pattern(mp::ToolKind tool, host::PlatformId platform,
                                  const PatternConfig& config, const MeasureTpl& measure) {
  CellReport r;
  r.label = cell_label(tool, platform, to_string(config.kind));

  PatternLeaves leaves;
  TrainGrid ints_train = config.train;
  switch (config.kind) {
    case PatternKind::Pipeline:
    case PatternKind::TaskPool:
      leaves.sendrecv = fit_primitive(tool, platform, eval::Primitive::SendRecv,
                                      config.train, measure, r.label);
      r.model = leaves.sendrecv;
      break;
    case PatternKind::MapReduce:
      leaves.broadcast = fit_primitive(tool, platform, eval::Primitive::Broadcast,
                                       config.train, measure, r.label);
      leaves.ring = fit_primitive(tool, platform, eval::Primitive::Ring, config.train,
                                  measure, r.label);
      leaves.globalsum = fit_primitive(tool, platform, eval::Primitive::GlobalSum,
                                       ints_train, measure, r.label);
      r.model = leaves.broadcast;
      break;
  }

  // The per-item compute constant: the exact duration compute_flops bills.
  const double work_ms =
      host::platform_spec(platform).cpu.compute(config.flops).millis();

  const bool overlap_comm = mp::tool_profile(tool, platform).send_in_background;

  for (int procs : config.procs) {
    const Skeleton skel = pattern_skeleton(config.kind, leaves, config.bytes, procs,
                                           config.tasks, config.ints, work_ms,
                                           overlap_comm);
    if (r.skeleton.empty()) r.skeleton = skel.describe();
    double measured = 0.0;
    switch (config.kind) {
      case PatternKind::Pipeline:
        measured = pipeline_sim_ms(platform, tool, procs, config.bytes, config.tasks,
                                   config.flops);
        break;
      case PatternKind::MapReduce: {
        const auto m = mapreduce_sim_ms(platform, tool, procs, config.bytes,
                                        config.tasks, config.ints, config.flops);
        if (!m) {
          throw std::runtime_error("cross-validate " + r.label +
                                   ": map-reduce needs a global operation");
        }
        measured = *m;
        break;
      }
      case PatternKind::TaskPool:
        measured = taskpool_sim_ms(platform, tool, procs, config.bytes, config.tasks,
                                   config.flops);
        break;
    }
    PointReport p;
    p.n = static_cast<double>(config.bytes);
    p.p = static_cast<double>(procs);
    p.measured_ms = measured;
    p.predicted_ms = skel.cost_ms(static_cast<double>(config.bytes),
                                  static_cast<double>(procs));
    p.rel_err = rel_err(p.predicted_ms, p.measured_ms);
    int max_train_procs = 0;
    for (int tp : config.train.procs) max_train_procs = std::max(max_train_procs, tp);
    p.extrapolated = procs > max_train_procs;
    r.points.push_back(p);
  }
  finalize(r);
  return r;
}

namespace {

[[nodiscard]] bool is_pattern(const CellReport& r) { return !r.skeleton.empty(); }

}  // namespace

double SuiteReport::worst_primitive_median() const {
  double worst = 0.0;
  for (const CellReport& r : cells) {
    if (!is_pattern(r)) worst = std::max(worst, r.median_rel_err);
  }
  return worst;
}

double SuiteReport::worst_pattern_median() const {
  double worst = 0.0;
  for (const CellReport& r : cells) {
    if (is_pattern(r)) worst = std::max(worst, r.median_rel_err);
  }
  return worst;
}

SuiteReport run_default_suite(const MeasureTpl& measure) {
  using eval::Primitive;
  using host::PlatformId;
  using mp::ToolKind;

  SuiteReport suite;
  const ToolKind tools[] = {ToolKind::P4, ToolKind::Pvm, ToolKind::Express};
  const PlatformId paper[] = {PlatformId::SunEthernet, PlatformId::AlphaFddi};
  const PlatformId fabrics[] = {PlatformId::ClusterFlat, PlatformId::ClusterFatTree,
                                PlatformId::ClusterDragonfly};

  // -- ping-pong: size axis only (2-rank primitive); hold out sizes inside
  //    and beyond the training range.
  const TrainGrid pingpong_train{{256, 512, 1024, 2048, 4096, 8192, 16384}, {2}};
  const std::vector<HoldoutPoint> pingpong_holdout = {
      {768, 2}, {3072, 2}, {6144, 2}, {12288, 2}, {32768, 2}, {65536, 2}};

  // -- broadcast / global sum: train a (size x procs) grid, hold out
  //    interpolated procs everywhere and extrapolated procs on fabrics.
  //    One non-power-of-two P in training separates the staircase
  //    ceil(log2 P) of hypercube collectives from a smooth log2 P -- on a
  //    powers-of-two grid the two columns are identical.
  const TrainGrid collective_paper{{1024, 2048, 4096, 8192, 16384}, {2, 3, 4, 8}};
  const std::vector<HoldoutPoint> collective_paper_holdout = {
      {1536, 3}, {6144, 6}, {12288, 8}, {32768, 4}};
  const TrainGrid collective_fabric{{1024, 2048, 4096, 8192, 16384}, {2, 3, 4, 8, 16}};
  const std::vector<HoldoutPoint> collective_fabric_holdout = {
      {1536, 6}, {6144, 12}, {12288, 24}, {12288, 32}, {32768, 32}};

  for (ToolKind tool : tools) {
    for (PlatformId platform : paper) {
      suite.cells.push_back(cross_validate_primitive(
          tool, platform, Primitive::SendRecv, pingpong_train, pingpong_holdout, measure));
      suite.cells.push_back(cross_validate_primitive(tool, platform, Primitive::Broadcast,
                                                     collective_paper,
                                                     collective_paper_holdout, measure));
      if (tool != ToolKind::Pvm) {
        suite.cells.push_back(cross_validate_primitive(tool, platform,
                                                       Primitive::GlobalSum,
                                                       collective_paper,
                                                       collective_paper_holdout, measure));
      }
    }
    for (PlatformId platform : fabrics) {
      suite.cells.push_back(cross_validate_primitive(
          tool, platform, Primitive::SendRecv, pingpong_train, pingpong_holdout, measure));
      suite.cells.push_back(cross_validate_primitive(tool, platform, Primitive::Broadcast,
                                                     collective_fabric,
                                                     collective_fabric_holdout, measure));
      if (tool != ToolKind::Pvm) {
        suite.cells.push_back(cross_validate_primitive(tool, platform,
                                                       Primitive::GlobalSum,
                                                       collective_fabric,
                                                       collective_fabric_holdout, measure));
      }
    }
  }

  // -- composed patterns on the switched platforms (the composition
  //    algebra assumes per-link resources; the shared-Ethernet bus wants a
  //    contention-aware algebra -- see DESIGN 5.16).
  const PlatformId switched[] = {PlatformId::AlphaFddi, PlatformId::ClusterFlat,
                                 PlatformId::ClusterFatTree, PlatformId::ClusterDragonfly};
  for (ToolKind tool : {ToolKind::P4, ToolKind::Express}) {
    for (PlatformId platform : switched) {
      // Per-item compute sized to ~3x the platform's 4 KB one-way hop so
      // the patterns are compute-plus-communication, not pure forwarding.
      const double flops = platform == PlatformId::AlphaFddi ? 1.2e5 : 1.0e6;

      PatternConfig pipeline;
      pipeline.kind = PatternKind::Pipeline;
      pipeline.bytes = 4096;
      pipeline.procs = {4, 8};
      pipeline.tasks = 16;
      pipeline.flops = flops;
      pipeline.train = pingpong_train;
      suite.cells.push_back(cross_validate_pattern(tool, platform, pipeline, measure));

      PatternConfig mapreduce;
      mapreduce.kind = PatternKind::MapReduce;
      mapreduce.bytes = 8192;
      mapreduce.ints = 2048;
      mapreduce.procs = {4, 8};
      mapreduce.tasks = 32;
      mapreduce.flops = flops;
      mapreduce.train = platform == PlatformId::AlphaFddi ? collective_paper
                                                          : collective_fabric;
      suite.cells.push_back(cross_validate_pattern(tool, platform, mapreduce, measure));

      PatternConfig taskpool;
      taskpool.kind = PatternKind::TaskPool;
      taskpool.bytes = 4096;
      taskpool.procs = {3, 5};
      taskpool.tasks = 24;
      taskpool.flops = flops;
      taskpool.train = pingpong_train;
      suite.cells.push_back(cross_validate_pattern(tool, platform, taskpool, measure));
    }
  }
  return suite;
}

namespace {

void append_point_json(std::string& out, const PointReport& p) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"n\":%.17g,\"p\":%.17g,\"measured_ms\":%.17g,\"predicted_ms\":%.17g,"
                "\"rel_err\":%.17g,\"extrapolated\":%s}",
                p.n, p.p, p.measured_ms, p.predicted_ms, p.rel_err,
                p.extrapolated ? "true" : "false");
  out += buf;
}

}  // namespace

std::string to_json(const CellReport& r) {
  std::string out = "{\"label\":\"" + r.label + "\",";
  if (r.skeleton.empty()) {
    out += "\"model\":" + to_json(r.model) + ",";
  } else {
    out += "\"skeleton\":\"" + r.skeleton + "\",\"leaf_model\":" + to_json(r.model) + ",";
  }
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "\"median_rel_err\":%.17g,\"max_rel_err\":%.17g,"
                "\"median_extrapolated_err\":%.17g,\"points\":[",
                r.median_rel_err, r.max_rel_err, r.median_extrapolated_err);
  out += buf;
  for (std::size_t i = 0; i < r.points.size(); ++i) {
    if (i > 0) out += ',';
    append_point_json(out, r.points[i]);
  }
  out += "]}";
  return out;
}

std::string to_json(const SuiteReport& r) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "{\"worst_primitive_median\":%.17g,\"worst_pattern_median\":%.17g,"
                "\"cells\":[",
                r.worst_primitive_median(), r.worst_pattern_median());
  std::string out = buf;
  for (std::size_t i = 0; i < r.cells.size(); ++i) {
    if (i > 0) out += ',';
    out += to_json(r.cells[i]);
  }
  out += "]}";
  return out;
}

}  // namespace pdc::model
