// pdcmodel -- the cross-validation harness: fit on a training grid,
// predict held-out (N, P) points -- including P beyond the training range
// -- run the real simulation at those points, and report relative-error
// bands (ROADMAP item 3 acceptance gate; tables in EXPERIMENTS.md).
//
// Measurements flow through a MeasureTpl function so training data can
// come straight from eval::sweep (direct_measure) or from a pdcevald
// daemon's memoized store (wrap evald::Client::sweep -- pdcmodel
// --server does exactly that). Both sources are bit-identical by the
// store's cached==fresh guarantee, so the fitted models are too.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "eval/sweep.hpp"
#include "model/model.hpp"
#include "model/skeleton.hpp"

namespace pdc::model {

/// Where measurements come from: takes a batch of TPL cells, returns
/// simulated ms per cell in order (nullopt = tool lacks the primitive).
using MeasureTpl =
    std::function<std::vector<std::optional<double>>(const std::vector<eval::TplCell>&)>;

/// Measure via eval::sweep_tpl_ms with `threads` workers (0 = resolve
/// from PDC_SWEEP_THREADS as usual).
[[nodiscard]] MeasureTpl direct_measure(unsigned threads = 0);

/// Cartesian training grid. `sizes` is bytes for SendRecv / Broadcast /
/// Ring and int32 elements for GlobalSum; SendRecv ignores `procs` (it is
/// a 2-rank primitive).
struct TrainGrid {
  std::vector<std::int64_t> sizes;
  std::vector<int> procs{2};
};

struct HoldoutPoint {
  std::int64_t size{0};
  int procs{2};
};

struct PointReport {
  double n{0.0};
  double p{0.0};
  double measured_ms{0.0};
  double predicted_ms{0.0};
  double rel_err{0.0};        ///< |pred - measured| / measured
  bool extrapolated{false};   ///< beyond the training range on N or P
};

struct CellReport {
  std::string label;                 ///< "p4/fattree/broadcast" or ".../pipeline"
  FittedModel model{};               ///< the fitted primitive (primitive cells)
  std::string skeleton;              ///< Skeleton::describe() (pattern cells)
  std::vector<PointReport> points;
  double median_rel_err{0.0};
  double max_rel_err{0.0};
  double median_extrapolated_err{0.0};  ///< over extrapolated points only (0 if none)
};

/// Fit `primitive` for (tool, platform) on `train`, then predict and
/// simulate every holdout point. Throws std::runtime_error when the tool
/// lacks the primitive or a measurement fails.
[[nodiscard]] CellReport cross_validate_primitive(mp::ToolKind tool,
                                                  host::PlatformId platform,
                                                  eval::Primitive primitive,
                                                  const TrainGrid& train,
                                                  std::span<const HoldoutPoint> holdout,
                                                  const MeasureTpl& measure);

enum class PatternKind { Pipeline, MapReduce, TaskPool };

[[nodiscard]] const char* to_string(PatternKind k);

/// One composed-pattern validation: fit the pattern's primitive leaves on
/// `train`, compose the skeleton, then simulate the real pattern at every
/// process count in `procs`.
struct PatternConfig {
  PatternKind kind{PatternKind::Pipeline};
  std::int64_t bytes{4096};
  std::vector<int> procs{4};
  int tasks{16};              ///< pipeline items / map tasks / pool tasks
  std::int64_t ints{1024};    ///< map-reduce reduction vector length
  double flops{0.0};          ///< per-item application compute (known, not fitted)
  TrainGrid train;            ///< grid for the underlying primitives
};

[[nodiscard]] CellReport cross_validate_pattern(mp::ToolKind tool,
                                                host::PlatformId platform,
                                                const PatternConfig& config,
                                                const MeasureTpl& measure);

/// Build the composed skeleton for `kind` from already-fitted leaves (the
/// composition algebra itself, exposed for tests and pdcmodel --compose).
/// `sendrecv`/`broadcast`/`ring`/`globalsum` are the fitted primitive
/// models the pattern draws on; patterns that do not use a leaf ignore it.
struct PatternLeaves {
  FittedModel sendrecv{};
  FittedModel broadcast{};
  FittedModel ring{};
  FittedModel globalsum{};
};
/// `work_ms` is the known per-item compute cost, composed in as a constant
/// node (callers derive it from platform_spec(p).cpu.compute(flops) -- the
/// identical quantity the reference simulations bill per item).
/// `overlap_comm` marks tools whose sends proceed in the background
/// (tool_profile(...).send_in_background): a pipeline stage then hides the
/// hop behind the item's compute (overlap = max) instead of paying both.
[[nodiscard]] Skeleton pattern_skeleton(PatternKind kind, const PatternLeaves& leaves,
                                        std::int64_t bytes, int procs, int tasks,
                                        std::int64_t ints, double work_ms,
                                        bool overlap_comm = false);

/// The canonical suite behind EXPERIMENTS.md, README's error table and the
/// CI model-smoke gate: core primitives (ping-pong, broadcast, global sum)
/// per tool on the paper's Ethernet + FDDI and the three scale fabrics --
/// with held-out P beyond the training range on every fabric -- plus the
/// three composed patterns on the switched platforms.
struct SuiteReport {
  std::vector<CellReport> cells;
  [[nodiscard]] double worst_primitive_median() const;
  [[nodiscard]] double worst_pattern_median() const;
};

[[nodiscard]] SuiteReport run_default_suite(const MeasureTpl& measure);

[[nodiscard]] std::string to_json(const CellReport& r);
[[nodiscard]] std::string to_json(const SuiteReport& r);

}  // namespace pdc::model
