#include "model/model.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace pdc::model {

namespace {

constexpr double kTinyPred = 1e-12;  // floor under log() arguments

/// log2 with the argument clamped to >= 2: a 0- or 1-sized problem must
/// contribute a finite, non-negative factor, not -inf or a term-killing 0.
[[nodiscard]] double log2_clamped(double x) { return std::log2(std::max(x, 2.0)); }

}  // namespace

const char* to_string(ProcTerm f) {
  switch (f) {
    case ProcTerm::One: return "1";
    case ProcTerm::P: return "P";
    case ProcTerm::PMinus1: return "(P-1)";
    case ProcTerm::LogP: return "log2(P)";
    case ProcTerm::CeilLogP: return "ceil(log2(P))";
    case ProcTerm::PLogP: return "P*log2(P)";
    case ProcTerm::SqrtP: return "sqrt(P)";
  }
  return "?";
}

double proc_term_value(ProcTerm f, double p) {
  const double pc = std::max(p, 1.0);
  switch (f) {
    case ProcTerm::One: return 1.0;
    case ProcTerm::P: return pc;
    case ProcTerm::PMinus1: return std::max(pc - 1.0, 1.0);
    case ProcTerm::LogP: return log2_clamped(pc);
    case ProcTerm::CeilLogP: return std::ceil(log2_clamped(pc));
    case ProcTerm::PLogP: return pc * log2_clamped(pc);
    case ProcTerm::SqrtP: return std::sqrt(pc);
  }
  return 1.0;
}

double Hypothesis::size_basis(double n) const {
  const double nc = std::max(n, 1.0);
  double v = 1.0;
  if (n_exp != 0.0) v *= std::pow(nc, n_exp);
  if (log_exp != 0) v *= std::pow(log2_clamped(nc), static_cast<double>(log_exp));
  return v;
}

double Hypothesis::basis(double n, double p) const {
  return size_basis(n) * proc_term_value(proc, p);
}

std::string Hypothesis::size_to_string() const {
  std::string s;
  auto append = [&s](const std::string& part) {
    if (!s.empty()) s += " * ";
    s += part;
  };
  if (n_exp != 0.0) {
    char buf[32];
    if (n_exp == 1.0) std::snprintf(buf, sizeof buf, "N");
    else std::snprintf(buf, sizeof buf, "N^%g", n_exp);
    append(buf);
  }
  if (log_exp == 1) append("log2(N)");
  else if (log_exp > 1) append("log2(N)^" + std::to_string(log_exp));
  return s.empty() ? "1" : s;
}

std::string Hypothesis::to_string() const {
  std::string s = size_to_string();
  if (s == "1") s.clear();
  if (proc != ProcTerm::One) {
    if (!s.empty()) s += " * ";
    s += model::to_string(proc);
  }
  return s.empty() ? "1" : s;
}

const std::vector<Hypothesis>& hypothesis_lattice() {
  static const std::vector<Hypothesis> kLattice = [] {
    std::vector<Hypothesis> l;
    // Constant-first so the tie-break prefers the simplest shape, then
    // proc-term-major: within one f(P) the size terms grow monotonically.
    const ProcTerm procs[] = {ProcTerm::One, ProcTerm::LogP,    ProcTerm::CeilLogP,
                              ProcTerm::SqrtP, ProcTerm::PMinus1, ProcTerm::P,
                              ProcTerm::PLogP};
    const double n_exps[] = {0.0, 0.5, 1.0, 1.5, 2.0};
    const int log_exps[] = {0, 1, 2};
    for (ProcTerm f : procs) {
      for (double a : n_exps) {
        for (int b : log_exps) l.push_back({a, b, f});
      }
    }
    return l;
  }();
  return kLattice;
}

double FittedModel::predict_ms(double n, double p) const {
  return c0 + c1 * proc_term_value(term.proc, p) + c2 * term.basis(n, p);
}

std::string FittedModel::to_string() const {
  char buf[224];
  if (c1 != 0.0) {
    std::snprintf(buf, sizeof buf,
                  "t(N,P) = %.6e + (%.6e + %.6e * %s) * %s  [mslr %.3e, %zu pts]", c0,
                  c1, c2, term.size_to_string().c_str(),
                  model::to_string(term.proc), score, points);
  } else {
    std::snprintf(buf, sizeof buf, "t(N,P) = %.6e + %.6e * %s  [mslr %.3e, %zu pts]",
                  c0, c2, term.to_string().c_str(), score, points);
  }
  return buf;
}

namespace {

/// Sum of squared log residuals of t ~ c0 + c1*f + c2*g over the fit set,
/// in fixed observation order.
[[nodiscard]] double log_cost(std::span<const Observation> obs,
                              std::span<const double> f, std::span<const double> g,
                              double c0, double c1, double c2) {
  double cost = 0.0;
  for (std::size_t i = 0; i < obs.size(); ++i) {
    const double pred = std::max(c0 + c1 * f[i] + c2 * g[i], kTinyPred);
    const double r = std::log(pred) - std::log(obs[i].t_ms);
    cost += r * r;
  }
  return cost;
}

struct Candidate {
  double c0{0.0};
  double c1{0.0};
  double c2{0.0};
  double cost{std::numeric_limits<double>::infinity()};
};

[[nodiscard]] long double det3(const long double a[3][3]) {
  return a[0][0] * (a[1][1] * a[2][2] - a[1][2] * a[2][1]) -
         a[0][1] * (a[1][0] * a[2][2] - a[1][2] * a[2][0]) +
         a[0][2] * (a[1][0] * a[2][1] - a[1][1] * a[2][0]);
}

/// Solve the k x k (k in {2, 3}) symmetric positive-semidefinite system
/// A x = b by Cramer's rule in long double. The normal matrices here are
/// Gram matrices, so by Hadamard's inequality det(A) <= prod(diag); a
/// determinant below 1e-12 of that product means two columns are (near)
/// collinear -- e.g. f(P) against the all-ones column on a single-P grid
/// -- and the caller must drop a column rather than amplify noise.
[[nodiscard]] bool solve_spd(const long double A[3][3], const long double b[3], int k,
                             double out[3]) {
  long double diag = 1.0L;
  for (int i = 0; i < k; ++i) diag *= A[i][i];
  long double det;
  if (k == 3) {
    det = det3(A);
  } else {
    det = A[0][0] * A[1][1] - A[0][1] * A[1][0];
  }
  if (!(fabsl(det) > 1e-12L * fabsl(diag))) return false;
  if (k == 3) {
    for (int j = 0; j < 3; ++j) {
      long double Aj[3][3];
      for (int r = 0; r < 3; ++r) {
        for (int c = 0; c < 3; ++c) Aj[r][c] = (c == j) ? b[r] : A[r][c];
      }
      out[j] = static_cast<double>(det3(Aj) / det);
    }
  } else {
    out[0] = static_cast<double>((A[1][1] * b[0] - A[0][1] * b[1]) / det);
    out[1] = static_cast<double>((A[0][0] * b[1] - A[1][0] * b[0]) / det);
    out[2] = 0.0;
  }
  return true;
}

/// Closed-form ordinary least squares of t ~ c0 + c1*f + c2*g (normal
/// equations, long-double accumulators, fixed order). Deterministic
/// fallback chain on singular systems: drop the per-operation column
/// (c1 = 0), then fall back to the constant model (all g equal too).
[[nodiscard]] Candidate linear_seed(std::span<const Observation> obs,
                                    std::span<const double> f,
                                    std::span<const double> g, bool use_f) {
  long double sf = 0.0L, sg = 0.0L, sff = 0.0L, sfg = 0.0L, sgg = 0.0L;
  long double st = 0.0L, sft = 0.0L, sgt = 0.0L;
  const long double n = static_cast<long double>(obs.size());
  for (std::size_t i = 0; i < obs.size(); ++i) {
    const long double fi = f[i];
    const long double gi = g[i];
    const long double ti = obs[i].t_ms;
    sf += fi;
    sff += fi * fi;
    sfg += fi * gi;
    sg += gi;
    sgg += gi * gi;
    st += ti;
    sft += fi * ti;
    sgt += gi * ti;
  }
  Candidate c;
  double x[3];
  bool solved = false;
  if (use_f) {
    const long double A[3][3] = {{n, sf, sg}, {sf, sff, sfg}, {sg, sfg, sgg}};
    const long double b[3] = {st, sft, sgt};
    if (solve_spd(A, b, 3, x)) {
      c.c0 = x[0];
      c.c1 = x[1];
      c.c2 = x[2];
      solved = true;
    }
  }
  if (!solved) {
    const long double A[3][3] = {{n, sg, 0.0L}, {sg, sgg, 0.0L}, {}};
    const long double b[3] = {st, sgt, 0.0L};
    if (solve_spd(A, b, 2, x)) {
      c.c0 = x[0];
      c.c2 = x[1];
      solved = true;
    }
  }
  if (!solved) c.c0 = static_cast<double>(st / n);
  // Project into the feasible orthant: simulated times are sums of
  // non-negative cost terms, so negative coefficients are always a
  // modelling artefact (and would let predictions go negative).
  c.c0 = std::max(c.c0, 0.0);
  c.c1 = std::max(c.c1, 0.0);
  c.c2 = std::max(c.c2, 0.0);
  return c;
}

/// Damped Gauss-Newton on the log residuals: linearise
/// r_i = log(c0 + c1 f_i + c2 g_i) - log t_i, solve the normal equations
/// for the step (3x3 when the per-operation column is active, 2x2
/// otherwise), halve the step until the cost decreases (at most 8
/// halvings), project to the non-negative orthant. Fixed iteration and
/// halving counts keep the refinement deterministic.
void refine(std::span<const Observation> obs, std::span<const double> f,
            std::span<const double> g, bool use_f, int iters, Candidate& c) {
  c.cost = log_cost(obs, f, g, c.c0, c.c1, c.c2);
  const int k = use_f ? 3 : 2;
  for (int it = 0; it < iters; ++it) {
    long double A[3][3] = {};
    long double b[3] = {};
    for (std::size_t i = 0; i < obs.size(); ++i) {
      const double pred = std::max(c.c0 + c.c1 * f[i] + c.c2 * g[i], kTinyPred);
      const double r = std::log(pred) - std::log(obs[i].t_ms);
      double j[3];
      j[0] = 1.0 / pred;
      if (use_f) {
        j[1] = f[i] / pred;
        j[2] = g[i] / pred;
      } else {
        j[1] = g[i] / pred;
        j[2] = 0.0;
      }
      for (int a = 0; a < k; ++a) {
        for (int q = a; q < k; ++q) A[a][q] += static_cast<long double>(j[a]) * j[q];
        b[a] += static_cast<long double>(j[a]) * r;
      }
    }
    for (int a = 0; a < k; ++a) {
      for (int q = 0; q < a; ++q) A[a][q] = A[q][a];
    }
    double d[3];
    if (!solve_spd(A, b, k, d)) break;
    const double d0 = d[0];
    const double d1 = use_f ? d[1] : 0.0;
    const double d2 = use_f ? d[2] : d[1];
    bool improved = false;
    double step = 1.0;
    for (int half = 0; half < 8; ++half, step *= 0.5) {
      const double n0 = std::max(c.c0 - step * d0, 0.0);
      const double n1 = std::max(c.c1 - step * d1, 0.0);
      const double n2 = std::max(c.c2 - step * d2, 0.0);
      const double nc = log_cost(obs, f, g, n0, n1, n2);
      if (nc < c.cost) {
        c.c0 = n0;
        c.c1 = n1;
        c.c2 = n2;
        c.cost = nc;
        improved = true;
        break;
      }
    }
    if (!improved) break;
  }
}

}  // namespace

FittedModel fit_model(std::span<const Observation> obs, const FitOptions& opts) {
  if (obs.empty()) throw std::invalid_argument("fit_model: no observations");
  for (const Observation& o : obs) {
    if (!(o.t_ms > 0.0)) {
      throw std::invalid_argument("fit_model: non-positive observation time");
    }
  }

  const auto& lattice = hypothesis_lattice();
  FittedModel best;
  best.score = std::numeric_limits<double>::infinity();
  std::vector<double> f(obs.size());
  std::vector<double> g(obs.size());
  for (std::size_t h = 0; h < lattice.size(); ++h) {
    const Hypothesis& hyp = lattice[h];
    const bool use_f = hyp.has_op_term();
    for (std::size_t i = 0; i < obs.size(); ++i) {
      f[i] = proc_term_value(hyp.proc, obs[i].p);
      g[i] = hyp.basis(obs[i].n, obs[i].p);
    }
    Candidate c = linear_seed(obs, f, g, use_f);
    refine(obs, f, g, use_f, opts.refine_iters, c);
    if (c.c1 == 0.0 && c.c2 == 0.0 && !(hyp == lattice.front())) {
      continue;  // degenerated to a constant; the constant hypothesis owns that shape
    }
    const double mean_cost = c.cost / static_cast<double>(obs.size());
    if (mean_cost < best.score) {  // strict: ties keep the earlier lattice entry
      best.c0 = c.c0;
      best.c1 = c.c1;
      best.c2 = c.c2;
      best.term = hyp;
      best.score = mean_cost;
    }
  }
  best.points = obs.size();
  return best;
}

std::string to_json(const FittedModel& m) {
  char buf[320];
  std::snprintf(buf, sizeof buf,
                "{\"c0\":%.17g,\"c1\":%.17g,\"c2\":%.17g,\"n_exp\":%g,\"log_exp\":%d,"
                "\"proc_term\":\"%s\",\"term\":\"%s\",\"mslr\":%.17g,\"points\":%zu}",
                m.c0, m.c1, m.c2, m.term.n_exp, m.term.log_exp, to_string(m.term.proc),
                m.term.to_string().c_str(), m.score, m.points);
  return buf;
}

}  // namespace pdc::model
