// pdcmodel -- reference simulations of the composed parallel patterns.
//
// The cross-validation harness holds the skeleton algebra accountable by
// running the *real* simulator on programs with the same structure the
// skeletons claim to model, and comparing end-to-end times. These are the
// three canonical composed workloads:
//
//   pipeline:   `procs` ranks in a chain; `items` messages of `bytes`
//               flow rank 0 -> 1 -> ... -> procs-1, each receiving rank
//               computing `flops` on every item before forwarding.
//   map-reduce: root broadcasts `bytes`, then every rank performs its
//               share of `tasks` neighbour-shift map tasks (`bytes` +
//               `flops` each), then a global sum of `ints` int32s.
//   task-pool:  rank 0 is the pool head farming `tasks` tasks of `bytes`
//               on demand to `procs - 1` workers (initial one per worker,
//               then next task to whichever worker replies); a worker
//               computes `flops` and echoes the payload.
//
// `flops` is the per-item application work -- the reason these patterns
// exist. It is a *known* workload parameter, so the skeleton models it as
// a constant node (platform_spec(p).cpu.compute(flops)), the exact
// quantity Communicator::compute_flops bills; the cross-validation error
// therefore measures the fitted communication leaves and the composition
// algebra, not the compute term.
//
// Each returns simulated milliseconds from the same run_spmd driver the
// TPL primitives use, so results inherit every determinism guarantee
// (bit-identical across PDC_SIM_THREADS / PDC_SWEEP_THREADS).
#pragma once

#include <cstdint>
#include <optional>

#include "host/platform.hpp"
#include "mp/tool.hpp"

namespace pdc::model {

[[nodiscard]] double pipeline_sim_ms(host::PlatformId platform, mp::ToolKind tool,
                                     int procs, std::int64_t bytes, int items,
                                     double flops = 0.0);

/// nullopt when the tool lacks a global operation (PVM).
[[nodiscard]] std::optional<double> mapreduce_sim_ms(host::PlatformId platform,
                                                     mp::ToolKind tool, int procs,
                                                     std::int64_t bytes, int tasks,
                                                     std::int64_t ints, double flops = 0.0);

[[nodiscard]] double taskpool_sim_ms(host::PlatformId platform, mp::ToolKind tool,
                                     int procs, std::int64_t bytes, int tasks,
                                     double flops = 0.0);

}  // namespace pdc::model
