// pdcmodel -- Extra-P-style analytic performance models fitted from sweep
// measurements (ROADMAP item 3, DESIGN section 5 item 16).
//
// A fitted model has the collective normal form the Extra-P family of
// tools converges on for message-passing codes -- a per-operation and a
// per-size cost, both scaled by the algorithm's step count:
//
//     t(N, P) = c0 + (c1 + c2 * N^a * log2(N)^b) * f(P)
//
// with (a, b, f) drawn from a small hypothesis lattice (a in {0, 1/2, 1,
// 3/2, 2}, b in {0, 1, 2}, f in {1, P, log2 P, P*log2 P, sqrt P}) and
// (c0, c1, c2) fitted per hypothesis by deterministic least squares on
// log-transformed residuals. c1 is active only when the hypothesis has
// both a processor factor and a size factor -- otherwise its column is
// collinear with c0 or with c2's (the classic alpha-beta form needs all
// three shapes to be distinguishable). Everything here is a pure function of the
// observation list: fixed-order accumulation, fixed iteration counts, no
// randomness, no wall clock -- so a fit is bit-identical across runs,
// machines with the same FP semantics, and any PDC_SWEEP_THREADS setting
// used to *produce* the observations (the sweep layer already guarantees
// the observations themselves are bit-identical).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace pdc::model {

/// The processor-dependence factor f(P) of a hypothesis. CeilLogP is the
/// staircase ceil(log2 P) -- the exact step count of hypercube-style
/// collectives, which a smooth log2 P cannot track at non-power-of-two P.
/// PMinus1 is the fan-out count of linear (daemon-relayed) collectives;
/// plain P cannot express it because the non-negativity projection forbids
/// the negative intercept P - 1 would otherwise demand.
enum class ProcTerm : std::uint8_t { One = 0, P, PMinus1, LogP, CeilLogP, PLogP, SqrtP };

[[nodiscard]] const char* to_string(ProcTerm f);

/// f(P) with P clamped to >= 1; LogP uses log2(max(P, 2)) so a 1-rank
/// evaluation never zeroes the term.
[[nodiscard]] double proc_term_value(ProcTerm f, double p);

/// One lattice point: the shape of the non-constant term.
struct Hypothesis {
  double n_exp{0.0};              ///< a: exponent on N
  int log_exp{0};                 ///< b: exponent on log2(N)
  ProcTerm proc{ProcTerm::One};   ///< f(P)

  /// N^a * log2(N)^b * f(P), with N clamped to >= 1 for the power and
  /// >= 2 inside the log (a 0-byte cell must not produce -inf).
  [[nodiscard]] double basis(double n, double p) const;

  /// The size factor alone: N^a * log2(N)^b (same clamping).
  [[nodiscard]] double size_basis(double n) const;

  /// true when the per-operation coefficient c1 has its own column: the
  /// hypothesis carries a processor factor AND a non-trivial size factor.
  [[nodiscard]] bool has_op_term() const {
    return proc != ProcTerm::One && (n_exp != 0.0 || log_exp != 0);
  }

  /// Human form, e.g. "N^1.5 * log2(N) * P*log2(P)"; "1" for the
  /// all-constant shape.
  [[nodiscard]] std::string to_string() const;

  /// The size factor as text, e.g. "N^1.5 * log2(N)"; "1" when trivial.
  [[nodiscard]] std::string size_to_string() const;

  friend bool operator==(const Hypothesis& a, const Hypothesis& b) {
    return a.n_exp == b.n_exp && a.log_exp == b.log_exp && a.proc == b.proc;
  }
};

/// The full lattice in its canonical order (the fit's tie-break order):
/// proc-term-major, then n_exp, then log_exp, with the all-constant
/// hypothesis first. 105 entries.
[[nodiscard]] const std::vector<Hypothesis>& hypothesis_lattice();

/// One measurement: simulated time `t_ms` of a primitive at problem size
/// `n` (bytes or vector elements -- the caller picks one axis and sticks
/// to it) on `p` processes.
struct Observation {
  double n{0.0};
  double p{2.0};
  double t_ms{0.0};
};

/// A fitted model: the selected hypothesis plus its coefficients.
struct FittedModel {
  double c0{0.0};
  double c1{0.0};           ///< per-operation cost on f(P); 0 unless has_op_term()
  double c2{0.0};           ///< per-size cost on size_basis(N) * f(P)
  Hypothesis term{};
  double score{0.0};        ///< mean squared log residual on the fit set
  std::size_t points{0};    ///< observations fitted

  /// c0 + c1 * f(p) + c2 * basis(n, p).
  [[nodiscard]] double predict_ms(double n, double p) const;

  /// "t(N,P) = 1.23e-01 + 4.56e-06 * N * log2(P)  [mslr 2.1e-05, 28 pts]"
  [[nodiscard]] std::string to_string() const;
};

struct FitOptions {
  int refine_iters{24};  ///< Gauss-Newton refinement steps per hypothesis
};

/// Fit the best lattice model to `obs` by iterative refinement:
/// per hypothesis, seed the coefficients with the closed-form linear
/// least-squares solution (3x3 normal equations when the per-operation
/// column is active, 2x2 otherwise, with a deterministic fallback chain on
/// singular systems), then run `refine_iters` damped Gauss-Newton steps
/// minimising the sum of squared log residuals
/// sum_i (log pred_i - log t_i)^2 with all coefficients projected to
/// >= 0; select the hypothesis with the smallest mean squared log
/// residual, ties broken by lattice order. Throws std::invalid_argument
/// on an empty observation set or non-positive times (simulated durations
/// are always > 0).
[[nodiscard]] FittedModel fit_model(std::span<const Observation> obs,
                                    const FitOptions& opts = {});

/// Compact JSON form of a fitted model (an object; see DESIGN 5.16).
[[nodiscard]] std::string to_json(const FittedModel& m);

}  // namespace pdc::model
