// pdceval -- traced re-runs of individual sweep cells.
//
// Any (tool, platform, primitive/app, size, procs) cell of the evaluation
// grid can be re-run with a trace capture installed: the cell executes
// exactly as in the sweep (same Simulation, same seed, same fault plan) and
// the returned record stream describes it event-by-event. With tracing
// compiled out (PDC_TRACE=OFF, the default) these entry points still run
// the cell and return the same timing -- the record vector is just empty
// and `enabled` is false, so callers (the pdctrace CLI, tests) degrade
// gracefully rather than fork their logic on the build flavour.
#pragma once

#include <optional>
#include <vector>

#include "eval/sweep.hpp"
#include "trace/record.hpp"
#include "trace/sink.hpp"

namespace pdc::eval {

/// Capture options for a traced cell run.
struct TraceCapture {
  std::size_t capacity{trace::Sink::kDefaultCapacity};  ///< ring slots (pow2-rounded)
  std::uint32_t mask{trace::kDefaultMask};              ///< category filter
};

/// True when the build carries the probes (PDC_TRACE=ON).
[[nodiscard]] constexpr bool trace_compiled_in() noexcept {
#ifdef PDC_TRACE_ENABLED
  return true;
#else
  return false;
#endif
}

struct TracedTplCell {
  std::optional<double> ms;            ///< same value tpl_cell_ms returns
  std::vector<trace::Record> records;  ///< empty when probes are compiled out
  trace::SinkStats stats;
};

struct TracedAppCell {
  double seconds{0.0};                 ///< same value app_cell_s returns
  std::vector<trace::Record> records;
  trace::SinkStats stats;
};

/// Run one TPL cell with a capture installed on this thread.
[[nodiscard]] TracedTplCell tpl_cell_traced(const TplCell& cell,
                                            const TraceCapture& opt = {});

/// Run one APL cell with a capture installed on this thread.
[[nodiscard]] TracedAppCell app_cell_traced(const AppCell& cell,
                                            const AplConfig& cfg = {},
                                            const TraceCapture& opt = {});

}  // namespace pdc::eval
