#include "eval/apl.hpp"

#include <map>
#include <mutex>
#include <stdexcept>

#include "apps/fft/parallel.hpp"
#include "apps/jpeg/parallel.hpp"
#include "apps/mc/montecarlo.hpp"
#include "apps/sort/psrs.hpp"
#include "mp/api.hpp"

namespace pdc::eval {

const char* to_string(AppKind app) {
  switch (app) {
    case AppKind::Jpeg:
      return "JPEG";
    case AppKind::Fft2d:
      return "2D-FFT";
    case AppKind::MonteCarlo:
      return "MonteCarlo";
    case AppKind::Psrs:
      return "Sorting";
  }
  return "?";
}

const std::vector<AppKind>& all_apps() {
  static const std::vector<AppKind> kAll = {AppKind::Fft2d, AppKind::Jpeg,
                                            AppKind::MonteCarlo, AppKind::Psrs};
  return kAll;
}

namespace {

/// The JPEG input is deterministic and reused across every run; building it
/// per run would only add host wall time, not change simulated results.
/// The map mutex is held only long enough to find/insert the slot (node
/// references stay valid across later insertions); the image itself is
/// built under a per-key once_flag, so parallel sweep cells first-touching
/// *different* sizes construct concurrently instead of serialising on one
/// lock.
const apps::jpeg::Image& cached_image(int size, std::uint64_t seed) {
  struct Slot {
    std::once_flag once;
    apps::jpeg::Image image;
  };
  static std::mutex mu;
  static std::map<std::pair<int, std::uint64_t>, Slot> cache;
  Slot* slot;
  {
    const std::scoped_lock lock(mu);
    slot = &cache[{size, seed}];
  }
  std::call_once(slot->once,
                 [&] { slot->image = apps::jpeg::make_test_image(size, size, seed); });
  return slot->image;
}

}  // namespace

double app_time_s(host::PlatformId platform, mp::ToolKind tool, AppKind app, int procs,
                  const AplConfig& cfg, const fault::FaultPlan& faults) {
  mp::RankProgram program;
  switch (app) {
    case AppKind::Jpeg: {
      const auto& img = cached_image(cfg.image_size, cfg.seed);
      program = [&img, &cfg](mp::Communicator& c) -> sim::Task<void> {
        co_await apps::jpeg::compress_distributed(c, img, cfg.jpeg_quality, nullptr);
      };
      break;
    }
    case AppKind::Fft2d:
      program = [&cfg](mp::Communicator& c) -> sim::Task<void> {
        co_await apps::fft::fft2d_distributed(c, cfg.fft_n, cfg.seed, nullptr,
                                              /*gather=*/false);
      };
      break;
    case AppKind::MonteCarlo:
      program = [&cfg](mp::Communicator& c) -> sim::Task<void> {
        co_await apps::mc::integrate_distributed(c, cfg.mc_samples, cfg.mc_rounds, cfg.seed,
                                                 nullptr);
      };
      break;
    case AppKind::Psrs:
      program = [&cfg](mp::Communicator& c) -> sim::Task<void> {
        co_await apps::sort::psrs_distributed(c, cfg.sort_keys, cfg.seed, nullptr,
                                              /*gather=*/false);
      };
      break;
  }
  if (faults.enabled()) {
    return mp::run_spmd_faulty(platform, procs, tool, faults, program).elapsed.seconds();
  }
  return mp::run_spmd(platform, procs, tool, program).elapsed.seconds();
}

}  // namespace pdc::eval
