#include "eval/sched_cell.hpp"

#include <vector>

#include "eval/sweep.hpp"
#include "mp/api.hpp"
#include "mp/communicator.hpp"
#include "mp/message.hpp"

namespace pdc::eval {

namespace {

constexpr int kTag = 64;

[[nodiscard]] mp::Bytes filled(std::int64_t bytes) {
  return mp::Bytes(static_cast<std::size_t>(bytes), std::byte{0x5A});
}

/// Ring exchange: every rank passes `bytes` around the ring `rounds` times.
[[nodiscard]] mp::RankProgram ring_program(int rounds, std::int64_t bytes) {
  return [rounds, bytes](mp::Communicator& c) -> sim::Task<void> {
    const int next = (c.rank() + 1) % c.size();
    const int prev = (c.rank() + c.size() - 1) % c.size();
    for (int r = 0; r < rounds; ++r) {
      co_await c.send(next, kTag + r, mp::make_payload(filled(bytes)));
      (void)co_await c.recv(prev, kTag + r);
    }
  };
}

/// Repeated broadcast from rank 0 (host-node traffic shape).
[[nodiscard]] mp::RankProgram broadcast_program(int rounds, std::int64_t bytes) {
  return [rounds, bytes](mp::Communicator& c) -> sim::Task<void> {
    for (int r = 0; r < rounds; ++r) {
      mp::Bytes data;
      if (c.rank() == 0) data = filled(bytes);
      co_await c.broadcast(0, data, kTag + r);
    }
  };
}

/// Global sum over an int vector (excluded for PVM by the mix builder).
[[nodiscard]] mp::RankProgram global_sum_program(std::int64_t ints) {
  return [ints](mp::Communicator& c) -> sim::Task<void> {
    std::vector<std::int32_t> v(static_cast<std::size_t>(ints), c.rank() + 1);
    co_await c.global_sum(v);
  };
}

}  // namespace

std::vector<sched::JobTemplate> default_job_mix() {
  std::vector<sched::JobTemplate> mix;
  mix.push_back({.name = "ring16.p4",
                 .tool = mp::ToolKind::P4,
                 .ranks = 16,
                 .walltime = sim::milliseconds(20),
                 .weight = 2.0,
                 .program = ring_program(4, 16 * 1024)});
  mix.push_back({.name = "ring8.express",
                 .tool = mp::ToolKind::Express,
                 .ranks = 8,
                 .walltime = sim::milliseconds(10),
                 .weight = 2.0,
                 .program = ring_program(4, 8 * 1024)});
  mix.push_back({.name = "bcast8.pvm",
                 .tool = mp::ToolKind::Pvm,
                 .ranks = 8,
                 .walltime = sim::milliseconds(20),
                 .weight = 2.0,
                 .program = broadcast_program(2, 32 * 1024)});
  mix.push_back({.name = "bcast4.p4",
                 .tool = mp::ToolKind::P4,
                 .ranks = 4,
                 .walltime = sim::milliseconds(5),
                 .weight = 1.0,
                 .program = broadcast_program(4, 16 * 1024)});
  mix.push_back({.name = "gsum8.express",
                 .tool = mp::ToolKind::Express,
                 .ranks = 8,
                 .walltime = sim::milliseconds(5),
                 .weight = 1.0,
                 .program = global_sum_program(4096)});
  mix.push_back({.name = "ring4.pvm",
                 .tool = mp::ToolKind::Pvm,
                 .ranks = 4,
                 .walltime = sim::milliseconds(10),
                 .weight = 1.0,
                 .program = ring_program(2, 4 * 1024)});
  return mix;
}

SchedCellOutcome run_sched_cell(const SchedCell& cell) {
  sched::WorkloadSpec workload{.seed = cell.seed,
                               .arrival_rate_hz = cell.arrival_rate_hz,
                               .njobs = cell.njobs,
                               .users = cell.users,
                               .templates = default_job_mix()};

  SchedCellOutcome out;
  out.schedule = sched::run_schedule(
      sched::ScheduleConfig{.platform = cell.platform,
                            .nodes = cell.nodes,
                            .policy = cell.policy,
                            .faults = cell.faults},
      sched::generate_workload(workload));

  const double makespan_ms = out.schedule.makespan.millis();
  for (const mp::ToolKind tool : mp::all_tools()) {
    ToolGoodput g{.tool = tool};
    double wait_ms = 0.0, slowdown = 0.0;
    for (const sched::JobStats& j : out.schedule.jobs) {
      if (j.tool != tool || j.state != sched::JobState::Completed) continue;
      ++g.completed;
      wait_ms += j.queue_wait().millis();
      slowdown += j.bounded_slowdown();
      g.node_millis += static_cast<double>(j.ranks) * j.run_time().millis();
    }
    if (g.completed == 0) continue;
    g.mean_wait_ms = wait_ms / g.completed;
    g.mean_slowdown = slowdown / g.completed;
    if (makespan_ms > 0.0) g.goodput = g.node_millis / makespan_ms;
    out.per_tool.push_back(g);
  }
  return out;
}

std::vector<SchedCellOutcome> sweep_sched(const std::vector<SchedCell>& cells,
                                          unsigned threads) {
  std::vector<SchedCellOutcome> out(cells.size());
  parallel_for_index(cells.size(), threads,
                     [&](std::size_t i) { out[i] = run_sched_cell(cells[i]); });
  return out;
}

}  // namespace pdc::eval
