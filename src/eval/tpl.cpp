#include "eval/tpl.hpp"

#include <numeric>

#include "mp/api.hpp"
#include "mp/pack.hpp"

namespace pdc::eval {

namespace {

constexpr int kTag = 42;

[[nodiscard]] mp::Bytes filled(std::int64_t bytes) {
  return mp::Bytes(static_cast<std::size_t>(bytes), std::byte{0x5A});
}

/// Dispatch on the fault plan: disabled plans take the plain path so their
/// timings stay bit-identical to the pre-fault API.
[[nodiscard]] mp::RunOutcome run(host::PlatformId platform, int procs, mp::ToolKind tool,
                                 const fault::FaultPlan& faults,
                                 const mp::RankProgram& program) {
  if (faults.enabled()) return mp::run_spmd_faulty(platform, procs, tool, faults, program);
  return mp::run_spmd(platform, procs, tool, program);
}

}  // namespace

double sendrecv_ms(host::PlatformId platform, mp::ToolKind tool, std::int64_t bytes,
                   const fault::FaultPlan& faults) {
  auto program = [bytes](mp::Communicator& c) -> sim::Task<void> {
    if (c.rank() == 0) {
      co_await c.send(1, kTag, mp::make_payload(filled(bytes)));
      (void)co_await c.recv(1, kTag + 1);
    } else {
      mp::Message m = co_await c.recv(0, kTag);
      co_await c.send(0, kTag + 1, m.data);
    }
  };
  return run(platform, 2, tool, faults, program).elapsed.millis();
}

double broadcast_ms(host::PlatformId platform, mp::ToolKind tool, int procs,
                    std::int64_t bytes, const fault::FaultPlan& faults) {
  auto program = [bytes](mp::Communicator& c) -> sim::Task<void> {
    mp::Bytes data;
    if (c.rank() == 0) data = filled(bytes);
    co_await c.broadcast(0, data, kTag);
  };
  return run(platform, procs, tool, faults, program).elapsed.millis();
}

double ring_ms(host::PlatformId platform, mp::ToolKind tool, int procs, std::int64_t bytes,
               int rounds, const fault::FaultPlan& faults) {
  auto program = [bytes, procs, rounds](mp::Communicator& c) -> sim::Task<void> {
    const int next = (c.rank() + 1) % procs;
    const int prev = (c.rank() + procs - 1) % procs;
    for (int r = 0; r < rounds; ++r) {
      co_await c.send(next, kTag + r, mp::make_payload(filled(bytes)));
      (void)co_await c.recv(prev, kTag + r);
    }
  };
  return run(platform, procs, tool, faults, program).elapsed.millis();
}

std::optional<double> global_sum_ms(host::PlatformId platform, mp::ToolKind tool, int procs,
                                    std::int64_t n_integers, const fault::FaultPlan& faults) {
  if (mp::tool_profile(tool, platform).reduce_algo ==
      mp::ToolProfile::ReduceAlgo::Unsupported) {
    return std::nullopt;  // PVM: no global operation (paper Section 3.2.4)
  }
  auto program = [n_integers](mp::Communicator& c) -> sim::Task<void> {
    std::vector<std::int32_t> v(static_cast<std::size_t>(n_integers), c.rank() + 1);
    co_await c.global_sum(v);
  };
  return run(platform, procs, tool, faults, program).elapsed.millis();
}

double barrier_ms(host::PlatformId platform, mp::ToolKind tool, int procs, int reps,
                  const fault::FaultPlan& faults) {
  auto program = [reps](mp::Communicator& c) -> sim::Task<void> {
    for (int i = 0; i < reps; ++i) co_await c.barrier();
  };
  return run(platform, procs, tool, faults, program).elapsed.millis() / reps;
}

const std::vector<std::int64_t>& paper_message_sizes() {
  static const std::vector<std::int64_t> kSizes = {0,    1024,  2048,  4096,
                                                   8192, 16384, 32768, 65536};
  return kSizes;
}

}  // namespace pdc::eval
