#include "eval/trace_cell.hpp"

namespace pdc::eval {

// With the probes compiled out no record can ever arrive, so the capture
// skips the ring allocation entirely (the default capacity is a multi-MB
// buffer) and just runs the cell -- same timing, empty stream.

TracedTplCell tpl_cell_traced(const TplCell& cell, const TraceCapture& opt) {
  TracedTplCell out;
  if constexpr (!trace_compiled_in()) {
    out.ms = tpl_cell_ms(cell);
    return out;
  }
  trace::Sink sink(opt.capacity, opt.mask);
  {
    const trace::ScopedCapture capture(sink);
    out.ms = tpl_cell_ms(cell);
  }
  out.records = sink.snapshot();
  out.stats = sink.stats();
  return out;
}

TracedAppCell app_cell_traced(const AppCell& cell, const AplConfig& cfg,
                              const TraceCapture& opt) {
  TracedAppCell out;
  if constexpr (!trace_compiled_in()) {
    out.seconds = app_cell_s(cell, cfg);
    return out;
  }
  trace::Sink sink(opt.capacity, opt.mask);
  {
    const trace::ScopedCapture capture(sink);
    out.seconds = app_cell_s(cell, cfg);
  }
  out.records = sink.snapshot();
  out.stats = sink.stats();
  return out;
}

}  // namespace pdc::eval
