// pdceval -- the paper's primary contribution: the multi-level evaluation
// methodology (Section 2).
//
// Tools are evaluated at three levels -- TPL (primitive performance), APL
// (application performance) and ADL (usability) -- each producing a
// normalised score in [0, 1] (1.0 = best tool on this platform). User-
// supplied weight factors combine the levels into an overall, audience-
// tailored score: "a user would give the response time as the most
// important metric ... a system manager might consider utilization" --
// hence weights, not a fixed formula.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "eval/apl.hpp"
#include "eval/criteria.hpp"
#include "eval/tpl.hpp"
#include "host/platform.hpp"
#include "mp/tool.hpp"

namespace pdc::eval {

/// Relative importance of the three evaluation levels.
struct LevelWeights {
  double tpl{1.0};
  double apl{1.0};
  double adl{1.0};
};

struct ToolEvaluation {
  mp::ToolKind tool;
  double tpl_score;  ///< normalised primitive performance, [0,1]
  double apl_score;  ///< normalised application performance, [0,1]
  double adl_score;  ///< weighted usability, [0,1]
  double overall;    ///< weight-combined score, [0,1]
};

/// Options for one evaluation run.
struct EvaluationConfig {
  host::PlatformId platform{host::PlatformId::SunEthernet};
  int procs{4};                         ///< process count for TPL collectives & APL
  std::int64_t tpl_bytes{16384};        ///< representative TPL message size
  std::int64_t global_sum_ints{40000};  ///< vector length for the global-sum probe
  LevelWeights level_weights{};
  AdlWeights adl_weights{AdlWeights::uniform()};
  AplConfig apl{};
};

/// Evaluate all three tools on one platform; returned vector is sorted by
/// descending overall score (the recommendation order).
[[nodiscard]] std::vector<ToolEvaluation> evaluate_tools(const EvaluationConfig& cfg);

/// TPL-only normalised score of one tool (geometric mean of best/actual
/// across the four primitives; a missing primitive -- PVM's global sum --
/// scores 0 for that primitive, as the paper's "Not Available").
[[nodiscard]] double tpl_score(host::PlatformId platform, mp::ToolKind tool, int procs,
                               std::int64_t bytes, std::int64_t global_sum_ints);

/// APL-only normalised score (mean of best/actual over the four apps).
[[nodiscard]] double apl_score(host::PlatformId platform, mp::ToolKind tool, int procs,
                               const AplConfig& cfg);

/// Tools ordered fastest-first on `primitive` (paper Table 4 rows). PVM is
/// omitted from GlobalSum.
[[nodiscard]] std::vector<mp::ToolKind> rank_by_primitive(host::PlatformId platform,
                                                          Primitive primitive, int procs,
                                                          std::int64_t bytes);

}  // namespace pdc::eval
