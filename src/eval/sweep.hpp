// pdceval -- parallel experiment sweep runner.
//
// Whole-table regeneration (Table 3, Figures 2-8, the methodology ranking)
// is hundreds of *independent, deterministic* simulations: each cell builds
// its own Simulation/Cluster/Runtime and reports simulated time. The sweep
// runner fans those cells across hardware threads with deterministic result
// ordering -- results are written into a pre-sized vector at the cell's own
// index, so the output is element-for-element identical to a serial loop
// regardless of thread count or scheduling.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "eval/apl.hpp"
#include "eval/criteria.hpp"
#include "eval/tpl.hpp"
#include "fault/plan.hpp"
#include "host/platform.hpp"
#include "mp/runtime.hpp"
#include "mp/tool.hpp"

namespace pdc::eval {

/// Worker threads a sweep will use: `requested` if > 0, else the
/// PDC_SWEEP_THREADS environment variable if set, else
/// std::thread::hardware_concurrency() (min 1) divided by the intra-run
/// event-loop thread count (mp::sim_threads() / PDC_SIM_THREADS), so the
/// two axes of parallelism -- many cells at once vs. many threads per cell
/// -- share the machine instead of multiplying. Explicit settings on either
/// axis are honoured as given.
[[nodiscard]] unsigned sweep_threads(unsigned requested = 0);

/// Run `body(i)` for every i in [0, n) across `threads` workers (see
/// sweep_threads). Cells are claimed from a shared atomic counter; any
/// exception is captured and the one thrown by the lowest cell index is
/// rethrown after all workers drain, keeping failure behaviour
/// deterministic too.
///
/// Workers come from a process-wide persistent pool: threads are spawned
/// the first time a sweep needs them and reused for every later sweep, so
/// steady-state sweeps (bench loops, repeated table regenerations) pay no
/// thread spawn/join cost. Nested or concurrent calls run their cells
/// inline on the calling thread -- same results, no deadlock.
///
/// Payload allocation telemetry: each worker recycles payload buffers
/// through its own thread-local mp::BufferPool (no buffer is ever shared
/// across threads), and on drain its pool-stats delta is folded into a
/// fleet-wide aggregate readable via last_sweep_pool_stats(). Host-work
/// telemetry (wall split between app kernels and sim overhead, arena
/// activity) is aggregated the same way into last_sweep_host_stats().
void parallel_for_index(std::size_t n, unsigned threads,
                        const std::function<void(std::size_t)>& body);

/// Aggregated mp::BufferPool activity across every worker of the most
/// recent parallel_for_index / sweep_* call *submitted from the calling
/// thread*. Each sweep owns its own collector and publishes its totals to
/// the submitter's thread-local snapshot when it drains, so concurrent
/// sweeps from different threads (the evaluation daemon serving several
/// clients) each read exactly their own numbers -- the accessors below all
/// share this per-request scoping. Hit rate here is the fleet-wide payload
/// recycling rate the benches report.
struct SweepPoolStats {
  std::uint64_t hits{0};
  std::uint64_t misses{0};
  std::uint64_t releases{0};
  std::uint64_t discards{0};
  std::uint64_t bytes_recycled{0};

  [[nodiscard]] double hit_rate() const noexcept {
    const auto total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
  }
};
[[nodiscard]] SweepPoolStats last_sweep_pool_stats();

/// Aggregated fault-injection + reliable-transport activity across every
/// worker of the most recent parallel_for_index / sweep_* call submitted
/// from the calling thread. All zero for a sweep of fault-free cells. The
/// totals are order-independent sums, so they are identical for any thread
/// count -- the determinism test pins that.
struct SweepFaultStats {
  mp::TransportStats transport{};
  fault::InjectionStats injected{};
};
[[nodiscard]] SweepFaultStats last_sweep_fault_stats();

/// Aggregated mailbox matching telemetry across every worker of the most
/// recent parallel_for_index / sweep_* call submitted from the calling
/// thread. `items_scanned / matches` near 1 is the O(active) matching
/// signal; `peak_depth_sum` adds up each cell's peak unmatched-queue depth
/// (a sum, not a max, so totals stay order- and thread-count-independent).
struct SweepMailboxStats {
  std::uint64_t pushes{0};
  std::uint64_t matches{0};
  std::uint64_t items_scanned{0};
  std::uint64_t peak_depth_sum{0};

  [[nodiscard]] double scans_per_match() const noexcept {
    return matches > 0 ? static_cast<double>(items_scanned) / static_cast<double>(matches)
                       : 0.0;
  }
};
[[nodiscard]] SweepMailboxStats last_sweep_mailbox_stats();

/// Host-work telemetry for the most recent parallel_for_index / sweep_*
/// call submitted from the calling thread: where the *host's* wall-clock
/// went, split into real application
/// compute (the kernels layer's ScopedHostWork probes: DCT, FFT, sort,
/// MC batches) versus everything else (simulation bookkeeping, scheduling,
/// packing). Per-cell wall times are measured on the worker that ran the
/// cell and summed, so `wall_ns` is total cell-seconds, not elapsed time.
/// Arena counters come from the kernels' scratch arenas: `arena_grows`
/// staying flat across sweeps is the "no steady-state allocation" signal.
struct SweepHostStats {
  std::uint64_t cells{0};         ///< cells executed
  std::uint64_t wall_ns{0};       ///< summed per-cell wall time
  std::uint64_t app_ns{0};        ///< of which: inside app compute kernels
  std::uint64_t kernel_calls{0};  ///< ScopedHostWork probe activations
  std::uint64_t arena_takes{0};   ///< kernel scratch allocations served
  std::uint64_t arena_grows{0};   ///< arena block reservations (cold only)
  std::uint64_t arena_bytes{0};   ///< bytes newly reserved by those grows

  /// Wall time outside app kernels: the simulator's own overhead.
  [[nodiscard]] std::uint64_t sim_ns() const noexcept {
    return wall_ns > app_ns ? wall_ns - app_ns : 0;
  }
  /// Fraction of host wall spent in real app compute (0 when idle).
  [[nodiscard]] double app_share() const noexcept {
    return wall_ns > 0 ? static_cast<double>(app_ns) / static_cast<double>(wall_ns) : 0.0;
  }
};
[[nodiscard]] SweepHostStats last_sweep_host_stats();

/// Map i -> fn(i) over [0, n), results in index order.
template <typename R, typename Fn>
[[nodiscard]] std::vector<R> parallel_map(std::size_t n, Fn&& fn, unsigned threads = 0) {
  std::vector<R> out(n);
  parallel_for_index(n, threads, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

/// One TPL grid cell: a primitive measured on (platform, tool, msg_size,
/// procs). `global_sum_ints` is the vector length for GlobalSum cells;
/// `faults` (default: disabled, bit-identical to fault-free) adds the
/// robustness axis.
struct TplCell {
  Primitive primitive{Primitive::SendRecv};
  host::PlatformId platform{host::PlatformId::SunEthernet};
  mp::ToolKind tool{mp::ToolKind::P4};
  std::int64_t bytes{0};
  int procs{2};
  std::int64_t global_sum_ints{0};
  fault::FaultPlan faults{};
};

/// Measure one cell serially (simulated milliseconds); nullopt when the
/// tool lacks the primitive (PVM's global sum).
[[nodiscard]] std::optional<double> tpl_cell_ms(const TplCell& cell);

/// Measure a whole grid, fanned across threads, results in cell order.
[[nodiscard]] std::vector<std::optional<double>> sweep_tpl_ms(
    const std::vector<TplCell>& cells, unsigned threads = 0);

/// One APL grid cell: an application on (platform, tool, procs), optionally
/// under a fault plan.
struct AppCell {
  host::PlatformId platform{host::PlatformId::AlphaFddi};
  mp::ToolKind tool{mp::ToolKind::P4};
  AppKind app{AppKind::Jpeg};
  int procs{1};
  fault::FaultPlan faults{};
};

/// Measure one cell serially (simulated seconds).
[[nodiscard]] double app_cell_s(const AppCell& cell, const AplConfig& cfg = {});

/// Measure a whole application grid, fanned across threads, in cell order.
[[nodiscard]] std::vector<double> sweep_app_s(const std::vector<AppCell>& cells,
                                              const AplConfig& cfg = {},
                                              unsigned threads = 0);

}  // namespace pdc::eval
