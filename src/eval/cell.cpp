#include "eval/cell.hpp"

#include <bit>
#include <cstring>
#include <exception>
#include <limits>

namespace pdc::eval {

namespace {

// Fixed-width little-endian writer. Doubles travel as their IEEE-754 bit
// pattern, so encode(decode(x)) is the identity even for NaNs and the
// byte string is host-independent.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    for (char c : s) buf_.push_back(static_cast<std::byte>(c));
  }

  [[nodiscard]] std::vector<std::byte> take() { return std::move(buf_); }

 private:
  std::vector<std::byte> buf_;
};

// Matching reader: any overrun sets `fail` and pins reads to zero, so
// callers can decode a whole struct and check once at the end.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint8_t u8() {
    if (pos_ >= bytes_.size()) {
      fail_ = true;
      return 0;
    }
    return static_cast<std::uint8_t>(bytes_[pos_++]);
  }
  [[nodiscard]] std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(u8()) << (8 * i);
    return v;
  }
  [[nodiscard]] std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(u8()) << (8 * i);
    return v;
  }
  [[nodiscard]] std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }
  [[nodiscard]] std::string str() {
    const std::uint32_t n = u32();
    if (bytes_.size() - pos_ < n) {
      fail_ = true;
      return {};
    }
    std::string s(n, '\0');
    if (n > 0) std::memcpy(s.data(), bytes_.data() + pos_, n);
    pos_ += n;
    return s;
  }

  [[nodiscard]] bool failed() const noexcept { return fail_; }
  [[nodiscard]] bool exhausted() const noexcept { return pos_ == bytes_.size(); }

 private:
  std::span<const std::byte> bytes_;
  std::size_t pos_{0};
  bool fail_{false};
};

// -- field-group codecs -----------------------------------------------------

void put_link_faults(ByteWriter& w, const fault::LinkFaults& f) {
  w.f64(f.drop_rate);
  w.f64(f.corrupt_rate);
  w.f64(f.duplicate_rate);
  w.f64(f.reorder_rate);
  w.i64(f.reorder_jitter.ns);
}

fault::LinkFaults get_link_faults(ByteReader& r) {
  fault::LinkFaults f;
  f.drop_rate = r.f64();
  f.corrupt_rate = r.f64();
  f.duplicate_rate = r.f64();
  f.reorder_rate = r.f64();
  f.reorder_jitter = sim::Duration{r.i64()};
  return f;
}

void put_fault_plan(ByteWriter& w, const fault::FaultPlan& p) {
  w.u64(p.seed);
  put_link_faults(w, p.link);
  w.u32(static_cast<std::uint32_t>(p.overrides.size()));
  for (const auto& o : p.overrides) {
    w.i32(o.src);
    w.i32(o.dst);
    put_link_faults(w, o.faults);
  }
  w.u32(static_cast<std::uint32_t>(p.flaps.size()));
  for (const auto& fl : p.flaps) {
    w.i32(fl.a);
    w.i32(fl.b);
    w.i64(fl.start.ns);
    w.i64(fl.end.ns);
  }
}

fault::FaultPlan get_fault_plan(ByteReader& r, bool& ok) {
  fault::FaultPlan p;
  p.seed = r.u64();
  p.link = get_link_faults(r);
  const std::uint32_t n_over = r.u32();
  if (n_over > (1u << 20)) {
    ok = false;
    return p;
  }
  p.overrides.reserve(n_over);
  for (std::uint32_t i = 0; i < n_over && !r.failed(); ++i) {
    fault::LinkOverride o;
    o.src = r.i32();
    o.dst = r.i32();
    o.faults = get_link_faults(r);
    p.overrides.push_back(o);
  }
  const std::uint32_t n_flap = r.u32();
  if (n_flap > (1u << 20)) {
    ok = false;
    return p;
  }
  p.flaps.reserve(n_flap);
  for (std::uint32_t i = 0; i < n_flap && !r.failed(); ++i) {
    fault::FlapWindow f;
    f.a = r.i32();
    f.b = r.i32();
    f.start = sim::TimePoint{r.i64()};
    f.end = sim::TimePoint{r.i64()};
    p.flaps.push_back(f);
  }
  return p;
}

constexpr std::uint8_t kMaxPlatform = static_cast<std::uint8_t>(host::PlatformId::ClusterDragonfly);
constexpr std::uint8_t kMaxTool = static_cast<std::uint8_t>(mp::ToolKind::Express);
constexpr std::uint8_t kMaxPrimitive = static_cast<std::uint8_t>(Primitive::GlobalSum);
constexpr std::uint8_t kMaxApp = static_cast<std::uint8_t>(AppKind::Psrs);

void put_transport(ByteWriter& w, const mp::TransportStats& t) {
  w.i64(t.retransmits);
  w.i64(t.drops_seen);
  w.i64(t.corrupt_rejected);
  w.i64(t.dup_discarded);
}

mp::TransportStats get_transport(ByteReader& r) {
  mp::TransportStats t;
  t.retransmits = r.i64();
  t.drops_seen = r.i64();
  t.corrupt_rejected = r.i64();
  t.dup_discarded = r.i64();
  return t;
}

}  // namespace

const char* to_string(CellType t) {
  switch (t) {
    case CellType::Tpl: return "tpl";
    case CellType::App: return "app";
    case CellType::Sched: return "sched";
  }
  return "?";
}

std::vector<std::byte> encode_spec(const CellSpec& spec) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(spec.type));
  switch (spec.type) {
    case CellType::Tpl:
      w.u8(static_cast<std::uint8_t>(spec.tpl.primitive));
      w.u8(static_cast<std::uint8_t>(spec.tpl.platform));
      w.u8(static_cast<std::uint8_t>(spec.tpl.tool));
      w.i64(spec.tpl.bytes);
      w.i32(spec.tpl.procs);
      w.i64(spec.tpl.global_sum_ints);
      put_fault_plan(w, spec.tpl.faults);
      break;
    case CellType::App:
      w.u8(static_cast<std::uint8_t>(spec.app.platform));
      w.u8(static_cast<std::uint8_t>(spec.app.tool));
      w.u8(static_cast<std::uint8_t>(spec.app.app));
      w.i32(spec.app.procs);
      put_fault_plan(w, spec.app.faults);
      w.i32(spec.apl.image_size);
      w.i32(spec.apl.jpeg_quality);
      w.i32(spec.apl.fft_n);
      w.i64(spec.apl.mc_samples);
      w.i32(spec.apl.mc_rounds);
      w.i64(spec.apl.sort_keys);
      w.u64(spec.apl.seed);
      break;
    case CellType::Sched:
      w.u8(static_cast<std::uint8_t>(spec.sched.platform));
      w.i32(spec.sched.nodes);
      w.f64(spec.sched.arrival_rate_hz);
      w.i32(spec.sched.njobs);
      w.i32(spec.sched.users);
      w.u64(spec.sched.seed);
      w.u8(spec.sched.policy.backfill ? 1 : 0);
      w.i64(spec.sched.policy.aging_per_sec);
      w.i64(spec.sched.policy.launch_overhead.ns);
      put_fault_plan(w, spec.sched.faults);
      break;
  }
  return w.take();
}

std::optional<CellSpec> decode_spec(std::span<const std::byte> bytes) {
  ByteReader r(bytes);
  CellSpec s;
  const std::uint8_t type = r.u8();
  if (type < 1 || type > 3) return std::nullopt;
  s.type = static_cast<CellType>(type);
  bool ok = true;
  switch (s.type) {
    case CellType::Tpl: {
      const std::uint8_t prim = r.u8(), plat = r.u8(), tool = r.u8();
      if (prim > kMaxPrimitive || plat > kMaxPlatform || tool > kMaxTool) return std::nullopt;
      s.tpl.primitive = static_cast<Primitive>(prim);
      s.tpl.platform = static_cast<host::PlatformId>(plat);
      s.tpl.tool = static_cast<mp::ToolKind>(tool);
      s.tpl.bytes = r.i64();
      s.tpl.procs = r.i32();
      s.tpl.global_sum_ints = r.i64();
      s.tpl.faults = get_fault_plan(r, ok);
      break;
    }
    case CellType::App: {
      const std::uint8_t plat = r.u8(), tool = r.u8(), app = r.u8();
      if (plat > kMaxPlatform || tool > kMaxTool || app > kMaxApp) return std::nullopt;
      s.app.platform = static_cast<host::PlatformId>(plat);
      s.app.tool = static_cast<mp::ToolKind>(tool);
      s.app.app = static_cast<AppKind>(app);
      s.app.procs = r.i32();
      s.app.faults = get_fault_plan(r, ok);
      s.apl.image_size = r.i32();
      s.apl.jpeg_quality = r.i32();
      s.apl.fft_n = r.i32();
      s.apl.mc_samples = r.i64();
      s.apl.mc_rounds = r.i32();
      s.apl.sort_keys = r.i64();
      s.apl.seed = r.u64();
      break;
    }
    case CellType::Sched: {
      const std::uint8_t plat = r.u8();
      if (plat > kMaxPlatform) return std::nullopt;
      s.sched.platform = static_cast<host::PlatformId>(plat);
      s.sched.nodes = r.i32();
      s.sched.arrival_rate_hz = r.f64();
      s.sched.njobs = r.i32();
      s.sched.users = r.i32();
      s.sched.seed = r.u64();
      s.sched.policy.backfill = r.u8() != 0;
      s.sched.policy.aging_per_sec = r.i64();
      s.sched.policy.launch_overhead = sim::Duration{r.i64()};
      s.sched.faults = get_fault_plan(r, ok);
      break;
    }
  }
  if (!ok || r.failed() || !r.exhausted()) return std::nullopt;
  return s;
}

std::vector<std::byte> encode_result(const CellResult& result) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(result.type));
  w.u8(static_cast<std::uint8_t>(result.status));
  w.str(result.error);
  switch (result.type) {
    case CellType::Tpl:
      w.f64(result.tpl_ms);
      break;
    case CellType::App:
      w.f64(result.app_s);
      break;
    case CellType::Sched: {
      const sched::ScheduleOutcome& s = result.sched.schedule;
      w.u32(static_cast<std::uint32_t>(s.jobs.size()));
      for (const sched::JobStats& j : s.jobs) {
        w.i32(j.id);
        w.i32(j.user);
        w.i32(j.ranks);
        w.i32(j.base_node);
        w.u8(static_cast<std::uint8_t>(j.tool));
        w.u8(static_cast<std::uint8_t>(j.state));
        w.i64(j.submit.ns);
        w.i64(j.start.ns);
        w.i64(j.complete.ns);
        put_transport(w, j.transport);
      }
      w.i64(s.makespan.ns);
      w.f64(s.utilization);
      w.f64(s.fairness);
      w.i32(s.completed);
      w.i32(s.rejected);
      w.u64(s.events);
      w.u64(s.messages);
      w.u64(s.payload_bytes);
      put_transport(w, s.transport);
      w.i64(s.injected.frames);
      w.i64(s.injected.drops);
      w.i64(s.injected.flap_drops);
      w.i64(s.injected.corruptions);
      w.i64(s.injected.duplicates);
      w.i64(s.injected.reorders);
      w.u32(static_cast<std::uint32_t>(result.sched.per_tool.size()));
      for (const ToolGoodput& g : result.sched.per_tool) {
        w.u8(static_cast<std::uint8_t>(g.tool));
        w.i32(g.completed);
        w.f64(g.mean_wait_ms);
        w.f64(g.mean_slowdown);
        w.f64(g.node_millis);
        w.f64(g.goodput);
      }
      break;
    }
  }
  return w.take();
}

std::optional<CellResult> decode_result(std::span<const std::byte> bytes) {
  ByteReader r(bytes);
  CellResult res;
  const std::uint8_t type = r.u8();
  const std::uint8_t status = r.u8();
  if (type < 1 || type > 3 || status > 2) return std::nullopt;
  res.type = static_cast<CellType>(type);
  res.status = static_cast<CellStatus>(status);
  res.error = r.str();
  switch (res.type) {
    case CellType::Tpl:
      res.tpl_ms = r.f64();
      break;
    case CellType::App:
      res.app_s = r.f64();
      break;
    case CellType::Sched: {
      sched::ScheduleOutcome& s = res.sched.schedule;
      const std::uint32_t njobs = r.u32();
      if (njobs > (1u << 24)) return std::nullopt;
      s.jobs.reserve(njobs);
      for (std::uint32_t i = 0; i < njobs && !r.failed(); ++i) {
        sched::JobStats j;
        j.id = r.i32();
        j.user = r.i32();
        j.ranks = r.i32();
        j.base_node = r.i32();
        const std::uint8_t tool = r.u8(), state = r.u8();
        if (tool > kMaxTool || state > 3) return std::nullopt;
        j.tool = static_cast<mp::ToolKind>(tool);
        j.state = static_cast<sched::JobState>(state);
        j.submit = sim::TimePoint{r.i64()};
        j.start = sim::TimePoint{r.i64()};
        j.complete = sim::TimePoint{r.i64()};
        j.transport = get_transport(r);
        s.jobs.push_back(j);
      }
      s.makespan = sim::Duration{r.i64()};
      s.utilization = r.f64();
      s.fairness = r.f64();
      s.completed = r.i32();
      s.rejected = r.i32();
      s.events = r.u64();
      s.messages = r.u64();
      s.payload_bytes = r.u64();
      s.transport = get_transport(r);
      s.injected.frames = r.i64();
      s.injected.drops = r.i64();
      s.injected.flap_drops = r.i64();
      s.injected.corruptions = r.i64();
      s.injected.duplicates = r.i64();
      s.injected.reorders = r.i64();
      const std::uint32_t ntools = r.u32();
      if (ntools > 16) return std::nullopt;
      res.sched.per_tool.reserve(ntools);
      for (std::uint32_t i = 0; i < ntools && !r.failed(); ++i) {
        ToolGoodput g;
        const std::uint8_t tool = r.u8();
        if (tool > kMaxTool) return std::nullopt;
        g.tool = static_cast<mp::ToolKind>(tool);
        g.completed = r.i32();
        g.mean_wait_ms = r.f64();
        g.mean_slowdown = r.f64();
        g.node_millis = r.f64();
        g.goodput = r.f64();
        res.sched.per_tool.push_back(g);
      }
      break;
    }
  }
  if (r.failed() || !r.exhausted()) return std::nullopt;
  return res;
}

bool CellResult::encode_equal(const CellResult& a, const CellResult& b) {
  return encode_result(a) == encode_result(b);
}

std::uint64_t cell_key(std::span<const std::byte> spec_bytes, std::uint64_t model_version) {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  const auto mix = [&h](std::uint8_t byte) {
    h ^= byte;
    h *= 0x100000001b3ull;  // FNV prime
  };
  for (int i = 0; i < 8; ++i) mix(static_cast<std::uint8_t>(model_version >> (8 * i)));
  for (const std::byte b : spec_bytes) mix(static_cast<std::uint8_t>(b));
  return h;
}

CellResult run_cell(const CellSpec& spec) {
  CellResult res;
  res.type = spec.type;
  try {
    switch (spec.type) {
      case CellType::Tpl: {
        const std::optional<double> ms = tpl_cell_ms(spec.tpl);
        if (ms) {
          res.tpl_ms = *ms;
        } else {
          res.status = CellStatus::Unsupported;
        }
        break;
      }
      case CellType::App:
        res.app_s = app_cell_s(spec.app, spec.apl);
        break;
      case CellType::Sched:
        res.sched = run_sched_cell(spec.sched);
        break;
    }
  } catch (const std::exception& e) {
    res = CellResult{};
    res.type = spec.type;
    res.status = CellStatus::Error;
    res.error = e.what();
  }
  return res;
}

std::vector<CellSpec> table3_grid() {
  std::vector<CellSpec> grid;
  for (const host::PlatformId platform : host::all_platforms()) {
    for (const mp::ToolKind tool : mp::all_tools()) {
      for (const std::int64_t bytes : paper_message_sizes()) {
        TplCell cell;
        cell.primitive = Primitive::SendRecv;
        cell.platform = platform;
        cell.tool = tool;
        cell.bytes = bytes;
        cell.procs = 2;
        grid.push_back(CellSpec::of(cell));
      }
    }
  }
  return grid;
}

}  // namespace pdc::eval
