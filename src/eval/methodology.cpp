#include "eval/methodology.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "eval/sweep.hpp"

namespace pdc::eval {

namespace {

[[nodiscard]] std::optional<double> primitive_time_ms(host::PlatformId platform,
                                                      mp::ToolKind tool, Primitive primitive,
                                                      int procs, std::int64_t bytes,
                                                      std::int64_t global_sum_ints) {
  switch (primitive) {
    case Primitive::SendRecv:
      return sendrecv_ms(platform, tool, bytes);
    case Primitive::Broadcast:
      return broadcast_ms(platform, tool, procs, bytes);
    case Primitive::Ring:
      return ring_ms(platform, tool, procs, bytes);
    case Primitive::GlobalSum:
      return global_sum_ms(platform, tool, procs, global_sum_ints);
  }
  throw std::logic_error("primitive_time_ms: unknown primitive");
}

}  // namespace

double tpl_score(host::PlatformId platform, mp::ToolKind tool, int procs, std::int64_t bytes,
                 std::int64_t global_sum_ints) {
  double log_sum = 0.0;
  int counted = 0;
  for (Primitive prim : all_primitives()) {
    // Best time across tools for normalisation.
    double best = 0.0;
    bool any = false;
    for (mp::ToolKind t : mp::all_tools()) {
      const auto ms = primitive_time_ms(platform, t, prim, procs, bytes, global_sum_ints);
      if (ms && (!any || *ms < best)) {
        best = *ms;
        any = true;
      }
    }
    const auto mine = primitive_time_ms(platform, tool, prim, procs, bytes, global_sum_ints);
    if (!mine) return 0.0;  // a missing primitive disqualifies a perfect TPL score
    log_sum += std::log(best / *mine);
    ++counted;
  }
  return std::exp(log_sum / counted);
}

double apl_score(host::PlatformId platform, mp::ToolKind tool, int procs,
                 const AplConfig& cfg) {
  double sum = 0.0;
  int counted = 0;
  for (AppKind app : all_apps()) {
    double best = 0.0;
    bool any = false;
    for (mp::ToolKind t : mp::all_tools()) {
      const double s = app_time_s(platform, t, app, procs, cfg);
      if (!any || s < best) {
        best = s;
        any = true;
      }
    }
    sum += best / app_time_s(platform, tool, app, procs, cfg);
    ++counted;
  }
  return sum / counted;
}

std::vector<ToolEvaluation> evaluate_tools(const EvaluationConfig& cfg) {
  const auto& w = cfg.level_weights;
  if (w.tpl < 0 || w.apl < 0 || w.adl < 0) {
    throw std::invalid_argument("evaluate_tools: negative level weight");
  }
  const double wsum = w.tpl + w.apl + w.adl;
  if (wsum <= 0) throw std::invalid_argument("evaluate_tools: all level weights zero");

  // Each tool's evaluation is an independent batch of simulations; fan the
  // tools across the sweep pool. Results land at the tool's own index, so
  // the ranking is identical to the serial loop this replaced.
  const auto& tools = mp::all_tools();
  std::vector<ToolEvaluation> out = parallel_map<ToolEvaluation>(
      tools.size(), [&](std::size_t i) {
        const mp::ToolKind tool = tools[i];
        ToolEvaluation e{};
        e.tool = tool;
        e.tpl_score =
            tpl_score(cfg.platform, tool, cfg.procs, cfg.tpl_bytes, cfg.global_sum_ints);
        e.apl_score = apl_score(cfg.platform, tool, cfg.procs, cfg.apl);
        e.adl_score = adl_score(tool, cfg.adl_weights);
        e.overall = (w.tpl * e.tpl_score + w.apl * e.apl_score + w.adl * e.adl_score) / wsum;
        return e;
      });
  std::sort(out.begin(), out.end(),
            [](const ToolEvaluation& a, const ToolEvaluation& b) { return a.overall > b.overall; });
  return out;
}

std::vector<mp::ToolKind> rank_by_primitive(host::PlatformId platform, Primitive primitive,
                                            int procs, std::int64_t bytes) {
  std::vector<std::pair<double, mp::ToolKind>> timed;
  for (mp::ToolKind t : mp::all_tools()) {
    const auto ms = primitive_time_ms(platform, t, primitive, procs, bytes,
                                      /*global_sum_ints=*/bytes / 4);
    if (ms) timed.emplace_back(*ms, t);
  }
  std::sort(timed.begin(), timed.end());
  std::vector<mp::ToolKind> out;
  out.reserve(timed.size());
  for (const auto& [ms, t] : timed) out.push_back(t);
  return out;
}

}  // namespace pdc::eval
