// pdceval -- Application Development Level (ADL) usability criteria (paper
// Sections 2.3 and 3.3.1).
//
// The paper characterises each tool against nine development-interface
// criteria with a three-point scale: WS (well supported), PS (partially
// supported), NS (not supported). The ratings below are the paper's own
// published assessment; the methodology layer turns them into weighted
// scores.
#pragma once

#include <string>
#include <vector>

#include "mp/tool.hpp"

namespace pdc::eval {

enum class Criterion {
  ProgrammingModels,   ///< host-node / SPMD (Cubix) models supported
  LanguageInterface,   ///< C and FORTRAN bindings
  EaseOfProgramming,   ///< learning curve, re-engineering effort
  DebuggingSupport,    ///< tracing, breakpoints, data inspection
  Customization,       ///< macros, reconfiguration, I/O formats
  ErrorHandling,       ///< graceful exits, useful messages
  RunTimeInterface,    ///< parallel I/O, redistribution, load balancing
  Integration,         ///< interfacing with visualisation/profiling etc.
  Portability,         ///< architecture-independent interface
};

enum class Support {
  NotSupported,        ///< NS
  PartiallySupported,  ///< PS
  WellSupported,       ///< WS
};

[[nodiscard]] const char* to_string(Criterion c);
[[nodiscard]] const char* to_string(Support s);  // "WS" / "PS" / "NS"

[[nodiscard]] const std::vector<Criterion>& all_criteria();

/// The paper's Section 3.3.1 assessment of `tool` against `criterion`.
[[nodiscard]] Support adl_rating(mp::ToolKind tool, Criterion criterion);

/// Numeric value of a rating: WS=1.0, PS=0.5, NS=0.0.
[[nodiscard]] double support_score(Support s);

/// One user-tunable weight per criterion (the paper: "by using weight
/// factors, an overall tool evaluation can be tailored").
struct AdlWeights {
  std::vector<std::pair<Criterion, double>> weights;

  /// Uniform weights over all nine criteria.
  [[nodiscard]] static AdlWeights uniform();
  [[nodiscard]] double weight_of(Criterion c) const;
};

/// Weighted ADL score of a tool in [0, 1].
[[nodiscard]] double adl_score(mp::ToolKind tool, const AdlWeights& weights);

// -- Table 1: the paper's mapping from TPL primitives to native calls -------

enum class Primitive { SendRecv, Broadcast, Ring, GlobalSum };

[[nodiscard]] const char* to_string(Primitive p);
[[nodiscard]] const std::vector<Primitive>& all_primitives();

/// Native spelling of `primitive` in `tool` (paper Table 1), e.g.
/// ("exsend/exreceive", "p4_send/p4_recv", "Not Available").
[[nodiscard]] std::string native_call(mp::ToolKind tool, Primitive primitive);

}  // namespace pdc::eval
