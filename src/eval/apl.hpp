// pdceval -- Application Performance Level (APL) benchmarks (paper Section
// 2.2 / 3.3): execution time of the four SU PDABS applications on a chosen
// platform/tool/processor-count, in simulated seconds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/plan.hpp"
#include "host/platform.hpp"
#include "mp/tool.hpp"

namespace pdc::eval {

enum class AppKind { Jpeg, Fft2d, MonteCarlo, Psrs };

[[nodiscard]] const char* to_string(AppKind app);
[[nodiscard]] const std::vector<AppKind>& all_apps();

/// Workload sizes; defaults reproduce the paper's figures (see DESIGN.md).
struct AplConfig {
  int image_size{512};                  ///< JPEG: 512x512 grayscale
  int jpeg_quality{50};
  int fft_n{64};                        ///< 2D-FFT: 64x64 complex
  std::int64_t mc_samples{1'500'000};   ///< Monte Carlo samples
  int mc_rounds{16};
  std::int64_t sort_keys{500'000};      ///< PSRS keys
  std::uint64_t seed{20260706};
};

/// Simulated execution time (seconds) of `app` with `procs` processes.
/// An armed `faults` plan runs the app over a FaultyNetwork with the
/// reliable transport engaged; the default (disabled) plan reproduces the
/// fault-free timing bit-for-bit.
[[nodiscard]] double app_time_s(host::PlatformId platform, mp::ToolKind tool, AppKind app,
                                int procs, const AplConfig& cfg = {},
                                const fault::FaultPlan& faults = {});

}  // namespace pdc::eval
