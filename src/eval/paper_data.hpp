// pdceval -- the paper's published measurements, embedded for side-by-side
// reporting (EXPERIMENTS.md) and shape validation in tests.
//
// Source: Hariri et al., "Software Tool Evaluation Methodology", Table 3
// (snd/recv round-trip times in milliseconds on SUN SPARCstations).
#pragma once

#include <cstdint>
#include <optional>

#include "host/platform.hpp"
#include "mp/tool.hpp"

namespace pdc::eval::paper {

struct Table3Row {
  std::int64_t bytes;
  double pvm_eth, pvm_atm_lan, pvm_atm_wan;
  double p4_eth, p4_atm_lan, p4_atm_wan;
  double express_eth, express_atm_lan;  // no Express ATM-WAN column in the paper
};

inline constexpr Table3Row kTable3[] = {
    {0, 9.655, 7.991, 7.764, 3.199, 2.966, 3.636, 4.807, 4.152},
    {1024, 11.693, 8.678, 8.878, 3.599, 3.393, 4.168, 10.375, 7.240},
    {2048, 14.306, 9.896, 10.105, 4.399, 3.748, 4.822, 18.362, 11.061},
    {4096, 25.537, 13.673, 14.665, 9.332, 4.404, 5.069, 32.669, 16.990},
    {8192, 44.392, 18.574, 19.526, 24.165, 6.482, 7.459, 59.166, 27.047},
    {16384, 61.096, 27.365, 28.679, 44.164, 11.191, 13.573, 111.411, 46.003},
    {32768, 109.844, 48.028, 53.320, 98.996, 19.104, 22.254, 189.760, 82.566},
    {65536, 189.120, 88.176, 91.353, 173.158, 35.899, 41.725, 311.700, 153.970},
};

/// Paper value for (tool, platform, size); nullopt where the paper has no
/// measurement (Express on ATM WAN, any tool elsewhere than Table 3's
/// platforms).
[[nodiscard]] inline std::optional<double> table3_ms(mp::ToolKind tool,
                                                     host::PlatformId platform,
                                                     std::int64_t bytes) {
  for (const auto& row : kTable3) {
    if (row.bytes != bytes) continue;
    switch (platform) {
      case host::PlatformId::SunEthernet:
        switch (tool) {
          case mp::ToolKind::Pvm:
            return row.pvm_eth;
          case mp::ToolKind::P4:
            return row.p4_eth;
          case mp::ToolKind::Express:
            return row.express_eth;
        }
        break;
      case host::PlatformId::SunAtmLan:
        switch (tool) {
          case mp::ToolKind::Pvm:
            return row.pvm_atm_lan;
          case mp::ToolKind::P4:
            return row.p4_atm_lan;
          case mp::ToolKind::Express:
            return row.express_atm_lan;
        }
        break;
      case host::PlatformId::SunAtmWan:
        switch (tool) {
          case mp::ToolKind::Pvm:
            return row.pvm_atm_wan;
          case mp::ToolKind::P4:
            return row.p4_atm_wan;
          case mp::ToolKind::Express:
            return std::nullopt;
        }
        break;
      default:
        return std::nullopt;
    }
  }
  return std::nullopt;
}

}  // namespace pdc::eval::paper
