#include "eval/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "kernels/arena.hpp"
#include "kernels/hostwork.hpp"
#include "mp/api.hpp"
#include "mp/buffer_pool.hpp"

namespace pdc::eval {

namespace {

// Per-sweep telemetry collector. Each parallel_for_index call owns one,
// workers fold their thread-local deltas into it under its mutex (once per
// worker per sweep, so contention is irrelevant), and the submitter
// publishes the totals into its *own* thread-local snapshot when the sweep
// drains. The accessors below read that snapshot, so concurrent sweeps
// submitted from different threads (the evaluation daemon batching misses
// for several clients at once) each see exactly their own sweep's numbers
// -- the seed implementation kept one global aggregate, which raced.
// All folded fields are order-independent sums, hence thread-count-
// independent.
struct SweepTelemetry {
  std::mutex mu;
  SweepPoolStats pool;
  SweepFaultStats fault;
  SweepMailboxStats mailbox;
  SweepHostStats host;
};

// The most recent sweep's totals, per submitting thread. A nested sweep
// (an app cell that itself sweeps, run inline on a worker) publishes on
// the worker's thread, never the submitter's, so it cannot clobber the
// owning sweep's snapshot.
struct TelemetrySnapshot {
  SweepPoolStats pool;
  SweepFaultStats fault;
  SweepMailboxStats mailbox;
  SweepHostStats host;
};
thread_local TelemetrySnapshot t_last_sweep;

// One sweep owns the worker pool at a time; nested/concurrent callers fall
// back to inline serial execution (see parallel_for_index).
std::mutex g_sweep_mu;

void fold_mailbox_delta(SweepTelemetry& col, const mp::MailboxTelemetry& before) {
  const auto& now = mp::mailbox_accumulator();
  const std::scoped_lock lock(col.mu);
  col.mailbox.pushes += now.pushes - before.pushes;
  col.mailbox.matches += now.matches - before.matches;
  col.mailbox.items_scanned += now.items_scanned - before.items_scanned;
  col.mailbox.peak_depth_sum += now.peak_depth_sum - before.peak_depth_sum;
}

void fold_pool_delta(SweepTelemetry& col, const mp::BufferPool::Stats& before,
                     const mp::FaultTelemetry& fault_before) {
  const auto& now = mp::BufferPool::local().stats();

  mp::FaultTelemetry delta = mp::transport_accumulator();
  delta.transport.retransmits -= fault_before.transport.retransmits;
  delta.transport.drops_seen -= fault_before.transport.drops_seen;
  delta.transport.corrupt_rejected -= fault_before.transport.corrupt_rejected;
  delta.transport.dup_discarded -= fault_before.transport.dup_discarded;
  delta.injected.frames -= fault_before.injected.frames;
  delta.injected.drops -= fault_before.injected.drops;
  delta.injected.flap_drops -= fault_before.injected.flap_drops;
  delta.injected.corruptions -= fault_before.injected.corruptions;
  delta.injected.duplicates -= fault_before.injected.duplicates;
  delta.injected.reorders -= fault_before.injected.reorders;

  const std::scoped_lock lock(col.mu);
  col.pool.hits += now.hits - before.hits;
  col.pool.misses += now.misses - before.misses;
  col.pool.releases += now.releases - before.releases;
  col.pool.discards += now.discards - before.discards;
  col.pool.bytes_recycled += now.bytes_recycled - before.bytes_recycled;
  col.fault.transport += delta.transport;
  col.fault.injected += delta.injected;
}

/// Persistent sweep worker pool. The seed implementation spawned and
/// joined std::threads on every parallel_for_index call; on sweeps of
/// cheap cells (Table 3 regeneration: hundreds of ~100us simulations) the
/// spawn/join dominated the sweep itself. The pool spawns each helper
/// thread once, parks it on a condition variable, and hands every
/// subsequent sweep to the already-running threads via a generation
/// counter. Results are unchanged: workers still claim cells from the
/// caller's atomic counter, so scheduling stays dynamic and the output
/// vector is written at fixed indices.
class WorkerPool {
 public:
  static WorkerPool& instance() {
    static WorkerPool pool;
    return pool;
  }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Run `work` on `helpers` pool threads while the caller runs it too;
  /// returns once every participant has finished. `work` must be callable
  /// concurrently and must not itself call run_on (parallel_for_index
  /// guarantees this via g_sweep_mu).
  void run_on(unsigned helpers, const std::function<void()>& work) {
    ensure_threads(helpers);
    {
      const std::scoped_lock lk(mu_);
      work_ = &work;
      want_ = helpers;
      claimed_ = 0;
      running_ = 0;
      ++generation_;
    }
    cv_.notify_all();
    work();  // the calling thread participates
    std::unique_lock lk(mu_);
    // The caller's claim loop only exits once every cell index was handed
    // out, so helpers that have not claimed a slot yet have nothing left to
    // do: clamp the job and wait only for helpers actually inside work().
    // On a loaded machine this lets the submitter finish without paying a
    // context switch per parked helper.
    want_ = claimed_;
    done_cv_.wait(lk, [&] { return running_ == 0; });
    work_ = nullptr;
  }

 private:
  WorkerPool() = default;

  ~WorkerPool() {
    {
      const std::scoped_lock lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  void ensure_threads(unsigned helpers) {
    const std::scoped_lock lk(mu_);
    while (threads_.size() < helpers) {
      threads_.emplace_back([this] { worker_main(); });
    }
  }

  void worker_main() {
    std::uint64_t seen = 0;
    std::unique_lock lk(mu_);
    for (;;) {
      cv_.wait(lk, [&] { return stop_ || (generation_ != seen && claimed_ < want_); });
      if (stop_) return;
      seen = generation_;
      ++claimed_;
      ++running_;
      const auto* work = work_;
      lk.unlock();
      (*work)();
      lk.lock();
      --running_;
      if (running_ == 0) done_cv_.notify_all();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;       ///< wakes parked workers for a new job
  std::condition_variable done_cv_;  ///< wakes the submitter when drained
  std::vector<std::thread> threads_;
  const std::function<void()>* work_{nullptr};
  unsigned want_{0};          ///< helper slots for the current generation
  unsigned claimed_{0};       ///< helpers that took a slot
  unsigned running_{0};       ///< helpers still inside work()
  std::uint64_t generation_{0};
  bool stop_{false};
};

}  // namespace

SweepPoolStats last_sweep_pool_stats() { return t_last_sweep.pool; }

SweepFaultStats last_sweep_fault_stats() { return t_last_sweep.fault; }

SweepMailboxStats last_sweep_mailbox_stats() { return t_last_sweep.mailbox; }

SweepHostStats last_sweep_host_stats() { return t_last_sweep.host; }

unsigned sweep_threads(unsigned requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("PDC_SWEEP_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  unsigned fleet = hw > 0 ? hw : 1;
  // Intra-run sharding (PDC_SIM_THREADS / mp::set_sim_threads) multiplies
  // every cell's thread footprint, so the default fleet width cedes cores
  // to it: fleet x intra stays <= hardware. An explicit `requested` or
  // PDC_SWEEP_THREADS wins unconditionally -- the caller is asserting the
  // product is what they want (e.g. few huge cells, oversubscribe fleet=1).
  const int intra = mp::sim_threads();
  if (intra > 1) fleet = std::max(1u, fleet / static_cast<unsigned>(intra));
  return fleet;
}

void parallel_for_index(std::size_t n, unsigned threads,
                        const std::function<void(std::size_t)>& body) {
  if (n == 0) return;

  // One sweep drives the worker pool at a time. A nested call (an app cell
  // that itself sweeps) or a concurrent call from another thread runs its
  // cells serially on the calling thread: results are identical to the
  // fanned-out run and the pool never deadlocks. Telemetry is collected
  // either way -- every call owns its own collector and publishes to its
  // own thread's snapshot, so concurrent sweeps never see each other's
  // numbers. (A nested sweep's activity is also visible in the enclosing
  // sweep's totals: the outer worker's before/after delta brackets it.)
  std::unique_lock<std::mutex> owner(g_sweep_mu, std::try_to_lock);

  SweepTelemetry col;
  const std::size_t workers =
      owner.owns_lock()
          ? std::min<std::size_t>(n, static_cast<std::size_t>(sweep_threads(threads)))
          : 1;

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::vector<std::exception_ptr> errors(n);
  const std::function<void()> worker = [&]() noexcept {
    const auto pool_before = mp::BufferPool::local().stats();
    const auto fault_before = mp::transport_accumulator();
    const auto mailbox_before = mp::mailbox_accumulator();
    const auto work_before = kernels::host_work();
    const auto arena_before = kernels::Arena::local().stats();
    std::uint64_t cells = 0;
    std::uint64_t wall_ns = 0;
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      const auto t0 = std::chrono::steady_clock::now();
      try {
        body(i);
      } catch (...) {
        errors[i] = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
      wall_ns += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
      ++cells;
    }
    fold_pool_delta(col, pool_before, fault_before);
    fold_mailbox_delta(col, mailbox_before);
    const auto work_now = kernels::host_work();
    const auto arena_now = kernels::Arena::local().stats();
    const std::scoped_lock lock(col.mu);
    col.host.cells += cells;
    col.host.wall_ns += wall_ns;
    col.host.app_ns += work_now.app_ns - work_before.app_ns;
    col.host.kernel_calls += work_now.calls - work_before.calls;
    col.host.arena_takes += arena_now.takes - arena_before.takes;
    col.host.arena_grows += arena_now.grows - arena_before.grows;
    col.host.arena_bytes += arena_now.bytes_reserved - arena_before.bytes_reserved;
  };

  if (workers <= 1) {
    worker();
  } else {
    WorkerPool::instance().run_on(static_cast<unsigned>(workers - 1), worker);
  }

  // Publish this sweep's totals on the submitting thread. run_on's drain
  // barrier (and the serial path trivially) gives the happens-before edge
  // from every worker's fold to this read.
  t_last_sweep = {col.pool, col.fault, col.mailbox, col.host};

  if (failed.load(std::memory_order_relaxed)) {
    for (auto& e : errors) {
      if (e) std::rethrow_exception(e);  // lowest failing index: deterministic
    }
  }
}

std::optional<double> tpl_cell_ms(const TplCell& cell) {
  switch (cell.primitive) {
    case Primitive::SendRecv:
      return sendrecv_ms(cell.platform, cell.tool, cell.bytes, cell.faults);
    case Primitive::Broadcast:
      return broadcast_ms(cell.platform, cell.tool, cell.procs, cell.bytes, cell.faults);
    case Primitive::Ring:
      return ring_ms(cell.platform, cell.tool, cell.procs, cell.bytes, /*rounds=*/4,
                     cell.faults);
    case Primitive::GlobalSum:
      return global_sum_ms(cell.platform, cell.tool, cell.procs, cell.global_sum_ints,
                           cell.faults);
  }
  throw std::logic_error("tpl_cell_ms: unknown primitive");
}

std::vector<std::optional<double>> sweep_tpl_ms(const std::vector<TplCell>& cells,
                                                unsigned threads) {
  return parallel_map<std::optional<double>>(
      cells.size(), [&](std::size_t i) { return tpl_cell_ms(cells[i]); }, threads);
}

double app_cell_s(const AppCell& cell, const AplConfig& cfg) {
  return app_time_s(cell.platform, cell.tool, cell.app, cell.procs, cfg, cell.faults);
}

std::vector<double> sweep_app_s(const std::vector<AppCell>& cells, const AplConfig& cfg,
                                unsigned threads) {
  return parallel_map<double>(
      cells.size(), [&](std::size_t i) { return app_cell_s(cells[i], cfg); }, threads);
}

}  // namespace pdc::eval
