#include "eval/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <stdexcept>
#include <thread>

#include <mutex>

#include "mp/api.hpp"
#include "mp/buffer_pool.hpp"

namespace pdc::eval {

namespace {

// Fleet-wide payload-pool telemetry for the most recent sweep. Workers fold
// their thread-local mp::BufferPool deltas in as they drain.
std::atomic<std::uint64_t> g_pool_hits{0};
std::atomic<std::uint64_t> g_pool_misses{0};
std::atomic<std::uint64_t> g_pool_releases{0};
std::atomic<std::uint64_t> g_pool_discards{0};
std::atomic<std::uint64_t> g_pool_bytes{0};

// Fleet-wide fault telemetry, same lifecycle. Folded under a mutex (once
// per worker per sweep, so contention is irrelevant); sums are
// order-independent, hence thread-count-independent.
std::mutex g_fault_mu;
SweepFaultStats g_fault_stats;

void reset_pool_aggregate() {
  g_pool_hits = 0;
  g_pool_misses = 0;
  g_pool_releases = 0;
  g_pool_discards = 0;
  g_pool_bytes = 0;
  const std::scoped_lock lock(g_fault_mu);
  g_fault_stats = {};
}

void fold_pool_delta(const mp::BufferPool::Stats& before,
                     const mp::FaultTelemetry& fault_before) {
  const auto& now = mp::BufferPool::local().stats();
  g_pool_hits.fetch_add(now.hits - before.hits, std::memory_order_relaxed);
  g_pool_misses.fetch_add(now.misses - before.misses, std::memory_order_relaxed);
  g_pool_releases.fetch_add(now.releases - before.releases, std::memory_order_relaxed);
  g_pool_discards.fetch_add(now.discards - before.discards, std::memory_order_relaxed);
  g_pool_bytes.fetch_add(now.bytes_recycled - before.bytes_recycled,
                         std::memory_order_relaxed);

  mp::FaultTelemetry delta = mp::transport_accumulator();
  delta.transport.retransmits -= fault_before.transport.retransmits;
  delta.transport.drops_seen -= fault_before.transport.drops_seen;
  delta.transport.corrupt_rejected -= fault_before.transport.corrupt_rejected;
  delta.transport.dup_discarded -= fault_before.transport.dup_discarded;
  delta.injected.frames -= fault_before.injected.frames;
  delta.injected.drops -= fault_before.injected.drops;
  delta.injected.flap_drops -= fault_before.injected.flap_drops;
  delta.injected.corruptions -= fault_before.injected.corruptions;
  delta.injected.duplicates -= fault_before.injected.duplicates;
  delta.injected.reorders -= fault_before.injected.reorders;
  const std::scoped_lock lock(g_fault_mu);
  g_fault_stats.transport += delta.transport;
  g_fault_stats.injected += delta.injected;
}

}  // namespace

SweepPoolStats last_sweep_pool_stats() {
  return {g_pool_hits.load(), g_pool_misses.load(), g_pool_releases.load(),
          g_pool_discards.load(), g_pool_bytes.load()};
}

SweepFaultStats last_sweep_fault_stats() {
  const std::scoped_lock lock(g_fault_mu);
  return g_fault_stats;
}

unsigned sweep_threads(unsigned requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("PDC_SWEEP_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void parallel_for_index(std::size_t n, unsigned threads,
                        const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  reset_pool_aggregate();
  const std::size_t workers =
      std::min<std::size_t>(n, static_cast<std::size_t>(sweep_threads(threads)));
  if (workers <= 1) {
    const auto pool_before = mp::BufferPool::local().stats();
    const auto fault_before = mp::transport_accumulator();
    for (std::size_t i = 0; i < n; ++i) body(i);
    fold_pool_delta(pool_before, fault_before);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::vector<std::exception_ptr> errors(n);
  auto worker = [&]() noexcept {
    const auto pool_before = mp::BufferPool::local().stats();
    const auto fault_before = mp::transport_accumulator();
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      try {
        body(i);
      } catch (...) {
        errors[i] = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
    fold_pool_delta(pool_before, fault_before);
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t t = 1; t < workers; ++t) pool.emplace_back(worker);
  worker();  // the calling thread works too
  for (auto& t : pool) t.join();

  if (failed.load(std::memory_order_relaxed)) {
    for (auto& e : errors) {
      if (e) std::rethrow_exception(e);  // lowest failing index: deterministic
    }
  }
}

std::optional<double> tpl_cell_ms(const TplCell& cell) {
  switch (cell.primitive) {
    case Primitive::SendRecv:
      return sendrecv_ms(cell.platform, cell.tool, cell.bytes, cell.faults);
    case Primitive::Broadcast:
      return broadcast_ms(cell.platform, cell.tool, cell.procs, cell.bytes, cell.faults);
    case Primitive::Ring:
      return ring_ms(cell.platform, cell.tool, cell.procs, cell.bytes, /*rounds=*/4,
                     cell.faults);
    case Primitive::GlobalSum:
      return global_sum_ms(cell.platform, cell.tool, cell.procs, cell.global_sum_ints,
                           cell.faults);
  }
  throw std::logic_error("tpl_cell_ms: unknown primitive");
}

std::vector<std::optional<double>> sweep_tpl_ms(const std::vector<TplCell>& cells,
                                                unsigned threads) {
  return parallel_map<std::optional<double>>(
      cells.size(), [&](std::size_t i) { return tpl_cell_ms(cells[i]); }, threads);
}

double app_cell_s(const AppCell& cell, const AplConfig& cfg) {
  return app_time_s(cell.platform, cell.tool, cell.app, cell.procs, cfg, cell.faults);
}

std::vector<double> sweep_app_s(const std::vector<AppCell>& cells, const AplConfig& cfg,
                                unsigned threads) {
  return parallel_map<double>(
      cells.size(), [&](std::size_t i) { return app_cell_s(cells[i], cfg); }, threads);
}

}  // namespace pdc::eval
