#include "eval/criteria.hpp"

#include <stdexcept>

namespace pdc::eval {

const char* to_string(Criterion c) {
  switch (c) {
    case Criterion::ProgrammingModels:
      return "Programming Models Supported";
    case Criterion::LanguageInterface:
      return "Language Interface";
    case Criterion::EaseOfProgramming:
      return "Ease of Programming";
    case Criterion::DebuggingSupport:
      return "Debugging Support";
    case Criterion::Customization:
      return "Customization";
    case Criterion::ErrorHandling:
      return "Error Handling";
    case Criterion::RunTimeInterface:
      return "Run-Time Interface";
    case Criterion::Integration:
      return "Integration with other Software";
    case Criterion::Portability:
      return "Portability";
  }
  return "?";
}

const char* to_string(Support s) {
  switch (s) {
    case Support::NotSupported:
      return "NS";
    case Support::PartiallySupported:
      return "PS";
    case Support::WellSupported:
      return "WS";
  }
  return "?";
}

const std::vector<Criterion>& all_criteria() {
  static const std::vector<Criterion> kAll = {
      Criterion::ProgrammingModels, Criterion::LanguageInterface,
      Criterion::EaseOfProgramming, Criterion::DebuggingSupport,
      Criterion::Customization,     Criterion::ErrorHandling,
      Criterion::RunTimeInterface,  Criterion::Integration,
      Criterion::Portability,
  };
  return kAll;
}

Support adl_rating(mp::ToolKind tool, Criterion criterion) {
  using S = Support;
  using T = mp::ToolKind;
  // Paper Section 3.3.1, verbatim.
  switch (criterion) {
    case Criterion::ProgrammingModels:
    case Criterion::LanguageInterface:
    case Criterion::Portability:
      return S::WellSupported;  // WS for all three tools
    case Criterion::EaseOfProgramming:
      return tool == T::Pvm ? S::WellSupported : S::PartiallySupported;
    case Criterion::DebuggingSupport:
      return tool == T::Express ? S::WellSupported : S::PartiallySupported;
    case Criterion::Customization:
      return tool == T::Pvm ? S::NotSupported : S::PartiallySupported;
    case Criterion::ErrorHandling:
      return S::PartiallySupported;  // "none has a mature error handling feature"
    case Criterion::RunTimeInterface:
      return tool == T::P4 ? S::PartiallySupported : S::WellSupported;
    case Criterion::Integration:
      switch (tool) {
        case T::P4:
          return S::PartiallySupported;
        case T::Pvm:
          return S::WellSupported;
        case T::Express:
          return S::NotSupported;
      }
      break;
  }
  throw std::logic_error("adl_rating: unknown criterion/tool");
}

double support_score(Support s) {
  switch (s) {
    case Support::NotSupported:
      return 0.0;
    case Support::PartiallySupported:
      return 0.5;
    case Support::WellSupported:
      return 1.0;
  }
  return 0.0;
}

AdlWeights AdlWeights::uniform() {
  AdlWeights w;
  for (Criterion c : all_criteria()) w.weights.emplace_back(c, 1.0);
  return w;
}

double AdlWeights::weight_of(Criterion c) const {
  for (const auto& [crit, weight] : weights) {
    if (crit == c) return weight;
  }
  return 0.0;
}

double adl_score(mp::ToolKind tool, const AdlWeights& weights) {
  double total = 0.0;
  double wsum = 0.0;
  for (const auto& [criterion, weight] : weights.weights) {
    if (weight < 0) throw std::invalid_argument("adl_score: negative weight");
    total += weight * support_score(adl_rating(tool, criterion));
    wsum += weight;
  }
  return wsum > 0 ? total / wsum : 0.0;
}

const char* to_string(Primitive p) {
  switch (p) {
    case Primitive::SendRecv:
      return "Send/Receive";
    case Primitive::Broadcast:
      return "Broadcast/Multicast";
    case Primitive::Ring:
      return "Ring";
    case Primitive::GlobalSum:
      return "Global Sum";
  }
  return "?";
}

const std::vector<Primitive>& all_primitives() {
  static const std::vector<Primitive> kAll = {Primitive::SendRecv, Primitive::Broadcast,
                                              Primitive::Ring, Primitive::GlobalSum};
  return kAll;
}

std::string native_call(mp::ToolKind tool, Primitive primitive) {
  using T = mp::ToolKind;
  switch (primitive) {
    case Primitive::SendRecv:
    case Primitive::Ring:  // "implemented using snd/recv in all three tools"
      switch (tool) {
        case T::Express:
          return "exsend/exreceive";
        case T::P4:
          return "p4_send/p4_recv";
        case T::Pvm:
          return "pvm_send/pvm_recv";
      }
      break;
    case Primitive::Broadcast:
      switch (tool) {
        case T::Express:
          return "exbroadcast";
        case T::P4:
          return "p4_broadcast";
        case T::Pvm:
          return "pvm_mcast";
      }
      break;
    case Primitive::GlobalSum:
      switch (tool) {
        case T::Express:
          return "excombine";
        case T::P4:
          return "p4_global_op";
        case T::Pvm:
          return "Not Available";
      }
      break;
  }
  throw std::logic_error("native_call: unknown tool/primitive");
}

}  // namespace pdc::eval
