// pdceval -- first-class evaluation-cell schema with canonical binary
// serialization.
//
// Every result this repo produces comes from a *cell*: one deterministic
// simulation fully described by pure data -- (tool, platform,
// primitive/app, sizes, procs, fault plan, seed). PRs 1-8 pinned
// bit-identical replay for every cell at any thread count, which makes a
// cell's result a pure function of its spec: the perfect memoization key.
// This header gives cells one shared shape (`CellSpec` wraps the existing
// TplCell / AppCell / SchedCell grids) plus a canonical little-endian byte
// encoding, so the evaluation service (src/evald) can content-address
// results by hashing the encoded spec together with a model-version
// constant.
//
// Canonical means: two specs encode to the same bytes iff they describe
// the same cell, the encoding is identical across platforms (fixed-width
// little-endian integers, IEEE-754 doubles via bit_cast), and decoding is
// the exact inverse. Results (`CellResult`) get the same treatment so the
// store's byte-compare IS the bit-identical-result guarantee.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "eval/apl.hpp"
#include "eval/sched_cell.hpp"
#include "eval/sweep.hpp"

namespace pdc::eval {

/// Version of the *semantics* behind cell results: the simulator kernel,
/// message-passing cost models, network models, kernels layer and
/// scheduler. Bump whenever a change makes any cell produce different
/// bytes -- the evaluation store hashes this constant into every content
/// address and discards a persisted store written under a different
/// version, so a stale cache can never serve old bytes. History: 9 == the
/// PR-9 tree (first versioned release of the schema).
inline constexpr std::uint64_t kModelVersion = 9;

enum class CellType : std::uint8_t { Tpl = 1, App = 2, Sched = 3 };

[[nodiscard]] const char* to_string(CellType t);

/// One evaluation cell of any kind. A tagged wrapper (not a variant) so
/// the three grids keep their existing types and call sites; only the
/// branch named by `type` is meaningful.
struct CellSpec {
  CellType type{CellType::Tpl};
  TplCell tpl{};
  AppCell app{};
  AplConfig apl{};  ///< app-cell workload sizes (part of the key)
  SchedCell sched{};

  [[nodiscard]] static CellSpec of(const TplCell& c) {
    CellSpec s;
    s.type = CellType::Tpl;
    s.tpl = c;
    return s;
  }
  [[nodiscard]] static CellSpec of(const AppCell& c, const AplConfig& cfg = {}) {
    CellSpec s;
    s.type = CellType::App;
    s.app = c;
    s.apl = cfg;
    return s;
  }
  [[nodiscard]] static CellSpec of(const SchedCell& c) {
    CellSpec s;
    s.type = CellType::Sched;
    s.sched = c;
    return s;
  }
};

/// Outcome of running one cell. `status` distinguishes a value, a
/// tool-unsupported hole (PVM's global sum: a real answer, not a failure)
/// and an execution error (infeasible spec); errors are cached too --
/// negative caching -- so known-failing specs never re-simulate.
enum class CellStatus : std::uint8_t { Ok = 0, Unsupported = 1, Error = 2 };

struct CellResult {
  CellType type{CellType::Tpl};
  CellStatus status{CellStatus::Ok};
  std::string error;        ///< what() of the failure (Status::Error only)
  double tpl_ms{0.0};       ///< Tpl cells, Status::Ok
  double app_s{0.0};        ///< App cells, Status::Ok
  SchedCellOutcome sched{};  ///< Sched cells, Status::Ok

  friend bool operator==(const CellResult& a, const CellResult& b) {
    return encode_equal(a, b);
  }

 private:
  static bool encode_equal(const CellResult& a, const CellResult& b);
};

// -- canonical byte codec ---------------------------------------------------

/// Encode `spec` to its canonical byte string.
[[nodiscard]] std::vector<std::byte> encode_spec(const CellSpec& spec);

/// Inverse of encode_spec; nullopt on malformed/truncated/trailing bytes.
[[nodiscard]] std::optional<CellSpec> decode_spec(std::span<const std::byte> bytes);

/// Encode `result` to its canonical byte string. Two results are
/// bit-identical iff their encodings are byte-equal.
[[nodiscard]] std::vector<std::byte> encode_result(const CellResult& result);

/// Inverse of encode_result; nullopt on malformed input.
[[nodiscard]] std::optional<CellResult> decode_result(std::span<const std::byte> bytes);

/// Content address of an encoded spec under `model_version`: 64-bit
/// FNV-1a over the version's little-endian bytes followed by the spec
/// bytes. Collisions are resolved by the store's spec byte-compare; the
/// version in the hash makes every address change on a model bump.
[[nodiscard]] std::uint64_t cell_key(std::span<const std::byte> spec_bytes,
                                     std::uint64_t model_version = kModelVersion);

// -- execution --------------------------------------------------------------

/// Run one cell of any kind. Never throws: an infeasible spec (more procs
/// than the platform has nodes, bad sizes) comes back as Status::Error
/// with the exception text, which the store caches negatively.
[[nodiscard]] CellResult run_cell(const CellSpec& spec);

/// The paper's Table 3 send/receive grid as cell specs: every tool x
/// platform x paper message size. The canonical warm-up sweep for the
/// evaluation service (pdceval --warm table3).
[[nodiscard]] std::vector<CellSpec> table3_grid();

}  // namespace pdc::eval
