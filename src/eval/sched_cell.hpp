// pdceval -- scheduled-contention evaluation cells.
//
// Where a TplCell measures one primitive on an idle machine, a SchedCell
// measures the *tools under multi-tenant load*: a seeded Poisson stream of
// jobs (each a TPL-style program under one of the three tools) contends for
// one cluster through the pdc::sched planner, and the outcome reports both
// schedule-level metrics (queue wait, utilization, fairness) and per-tool
// goodput -- how much useful node-time each tool's jobs extracted from the
// contended fabric. Cells compose with fault plans exactly like TplCells.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/plan.hpp"
#include "host/platform.hpp"
#include "mp/tool.hpp"
#include "sched/scheduler.hpp"
#include "sched/workload.hpp"

namespace pdc::eval {

struct SchedCell {
  host::PlatformId platform{host::PlatformId::ClusterFlat};
  int nodes{64};
  double arrival_rate_hz{2000.0};  ///< jobs per simulated second
  int njobs{24};
  int users{4};
  std::uint64_t seed{1};
  sched::Policy policy{};
  fault::FaultPlan faults{};  ///< disabled: bit-identical to fault-free
};

/// Load-dependent service one tool's jobs received.
struct ToolGoodput {
  mp::ToolKind tool{mp::ToolKind::P4};
  int completed{0};
  double mean_wait_ms{0.0};
  double mean_slowdown{0.0};
  double node_millis{0.0};  ///< ranks x runtime delivered, in node-ms
  double goodput{0.0};      ///< node_millis / makespan_ms (cluster share)
};

struct SchedCellOutcome {
  sched::ScheduleOutcome schedule;
  std::vector<ToolGoodput> per_tool;  ///< catalogue order; only tools present
};

/// The default contended mix: ring, broadcast and global-sum jobs at a few
/// sizes across the three tools (global sum excluded for PVM, as in the
/// paper's TPL grid).
[[nodiscard]] std::vector<sched::JobTemplate> default_job_mix();

/// Run one cell: generate the workload, schedule it, aggregate per-tool
/// goodput.
[[nodiscard]] SchedCellOutcome run_sched_cell(const SchedCell& cell);

/// Run many cells, fanned out like every other sweep (PDC_SWEEP_THREADS;
/// output order matches input order regardless of thread count).
[[nodiscard]] std::vector<SchedCellOutcome> sweep_sched(const std::vector<SchedCell>& cells,
                                                        unsigned threads = 0);

}  // namespace pdc::eval
