// pdceval -- Tool Performance Level (TPL) micro-benchmarks (paper Section
// 2.1 / 3.2): the four communication primitives the paper measures, run on
// a simulated platform and reported in milliseconds of simulated time.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fault/plan.hpp"
#include "host/platform.hpp"
#include "mp/tool.hpp"

namespace pdc::eval {

// Every primitive takes an optional fault plan: a disabled (default) plan
// reproduces the fault-free timings bit-for-bit; an armed plan runs the
// same primitive over a FaultyNetwork with the reliable transport engaged,
// making robustness a measurable grid axis.

/// Round-trip time of a size-`bytes` message between ranks 0 and 1
/// (paper Table 3, "snd/recv timing").
[[nodiscard]] double sendrecv_ms(host::PlatformId platform, mp::ToolKind tool,
                                 std::int64_t bytes, const fault::FaultPlan& faults = {});

/// Time until the slowest of `procs` ranks holds the root's `bytes`-sized
/// message (paper Figure 2).
[[nodiscard]] double broadcast_ms(host::PlatformId platform, mp::ToolKind tool, int procs,
                                  std::int64_t bytes, const fault::FaultPlan& faults = {});

/// `rounds` simultaneous neighbour shifts around a `procs`-rank ring, each
/// message `bytes` long (paper Figure 3, "all nodes send and receive").
[[nodiscard]] double ring_ms(host::PlatformId platform, mp::ToolKind tool, int procs,
                             std::int64_t bytes, int rounds = 4,
                             const fault::FaultPlan& faults = {});

/// Global sum of a vector of `n_integers` int32s across `procs` ranks
/// (paper Figure 4). Returns nullopt if the tool lacks a global operation
/// (PVM, as the paper notes).
[[nodiscard]] std::optional<double> global_sum_ms(host::PlatformId platform, mp::ToolKind tool,
                                                  int procs, std::int64_t n_integers,
                                                  const fault::FaultPlan& faults = {});

/// Mean time per full barrier over `reps` back-to-back barriers across
/// `procs` ranks -- the paper's synchronisation-primitive category
/// (exsync / pvm_barrier / p4 tree, Section 2.1 item 2).
[[nodiscard]] double barrier_ms(host::PlatformId platform, mp::ToolKind tool, int procs,
                                int reps = 8, const fault::FaultPlan& faults = {});

/// The message sizes of paper Table 3 / Figures 2-3: 0..64 KB.
[[nodiscard]] const std::vector<std::int64_t>& paper_message_sizes();

}  // namespace pdc::eval
