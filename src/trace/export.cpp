#include "trace/export.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <utility>
#include <vector>

namespace pdc::trace {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Builds one traceEvents entry; fields are appended in a fixed order so
/// the output is byte-stable for a given record stream.
class EventWriter {
 public:
  explicit EventWriter(std::string& out) : out_(out) {}

  EventWriter& begin() {
    if (!first_) out_ += ",\n";
    first_ = false;
    out_ += "  {";
    field_first_ = true;
    return *this;
  }
  EventWriter& str(const char* key, const std::string& v) {
    sep();
    out_ += '"';
    out_ += key;
    out_ += "\":\"";
    append_escaped(out_, v);
    out_ += '"';
    return *this;
  }
  EventWriter& num(const char* key, double v) {
    sep();
    char buf[64];
    std::snprintf(buf, sizeof(buf), "\"%s\":%.3f", key, v);
    out_ += buf;
    return *this;
  }
  EventWriter& integer(const char* key, long long v) {
    sep();
    char buf[64];
    std::snprintf(buf, sizeof(buf), "\"%s\":%lld", key, v);
    out_ += buf;
    return *this;
  }
  EventWriter& raw(const char* key, const std::string& v) {
    sep();
    out_ += '"';
    out_ += key;
    out_ += "\":";
    out_ += v;
    return *this;
  }
  void end() { out_ += '}'; }

 private:
  void sep() {
    if (!field_first_) out_ += ',';
    field_first_ = false;
  }
  std::string& out_;
  bool first_{true};
  bool field_first_{true};
};

[[nodiscard]] double us(std::int64_t ns) { return static_cast<double>(ns) * 1e-3; }

[[nodiscard]] std::string coll_name(std::int64_t op) {
  switch (static_cast<CollOp>(op)) {
    case CollOp::Broadcast: return "broadcast";
    case CollOp::Barrier: return "barrier";
    case CollOp::GlobalSum: return "global_sum";
  }
  return "collective";
}

}  // namespace

std::string export_perfetto_json(std::span<const Record> records) {
  std::string out;
  out.reserve(records.size() * 96 + 1024);
  out += "{\"displayTimeUnit\":\"ms\",\n\"traceEvents\":[\n";
  EventWriter w(out);

  // Track naming: process 0 holds one thread per rank, process 1 one thread
  // per link (assigned in (src, dst) order).
  int max_rank = -1;
  std::map<std::pair<int, int>, int> link_tid;
  for (const Record& r : records) {
    if (r.rank > max_rank) max_rank = r.rank;
    if ((r.kind == Kind::SendBegin || r.kind == Kind::RecvEnd) && r.peer > max_rank) {
      max_rank = r.peer;
    }
    if (r.kind == Kind::Frame) link_tid.emplace(std::pair<int, int>{r.rank, r.peer}, 0);
  }
  {
    int next = 0;
    for (auto& [key, tid] : link_tid) tid = next++;
  }

  w.begin().str("ph", "M").str("name", "process_name").integer("pid", 0)
      .raw("args", "{\"name\":\"ranks\"}");
  w.end();
  if (!link_tid.empty()) {
    w.begin().str("ph", "M").str("name", "process_name").integer("pid", 1)
        .raw("args", "{\"name\":\"links\"}");
    w.end();
  }
  for (int rk = 0; rk <= max_rank; ++rk) {
    w.begin().str("ph", "M").str("name", "thread_name").integer("pid", 0)
        .integer("tid", rk)
        .raw("args", "{\"name\":\"rank " + std::to_string(rk) + "\"}");
    w.end();
  }
  for (const auto& [key, tid] : link_tid) {
    w.begin().str("ph", "M").str("name", "thread_name").integer("pid", 1)
        .integer("tid", tid)
        .raw("args", "{\"name\":\"link " + std::to_string(key.first) + "->" +
                         std::to_string(key.second) + "\"}");
    w.end();
  }

  auto slice = [&](int rk, const std::string& name, std::int64_t t0, std::int64_t t1,
                   const std::string& args) {
    w.begin().str("ph", "X").str("name", name).integer("pid", 0).integer("tid", rk)
        .num("ts", us(t0)).num("dur", us(std::max<std::int64_t>(0, t1 - t0)));
    if (!args.empty()) w.raw("args", args);
    w.end();
  };
  auto instant = [&](int rk, const std::string& name, std::int64_t t) {
    w.begin().str("ph", "i").str("name", name).integer("pid", 0).integer("tid", rk)
        .num("ts", us(t)).str("s", "t");
    w.end();
  };

  for (const Record& r : records) {
    switch (r.kind) {
      case Kind::SendBegin:
        // Flow origin: ties the send slice to the matching recv.
        w.begin().str("ph", "s").str("cat", "msg").str("name", "msg")
            .integer("id", static_cast<long long>(r.id)).integer("pid", 0)
            .integer("tid", r.rank).num("ts", us(r.t_ns));
        w.end();
        break;
      case Kind::SendEnd:
        slice(r.rank, "send->" + std::to_string(r.peer), r.aux1, r.t_ns,
              "{\"bytes\":" + std::to_string(r.bytes) +
                  ",\"tag\":" + std::to_string(r.tag) + "}");
        break;
      case Kind::RecvEnd:
        if (r.aux0 > r.aux1) slice(r.rank, "recv-wait", r.aux1, r.aux0, "");
        slice(r.rank, "recv<-" + std::to_string(r.peer), r.aux0, r.t_ns,
              "{\"bytes\":" + std::to_string(r.bytes) +
                  ",\"tag\":" + std::to_string(r.tag) + "}");
        if (r.id != 0) {
          w.begin().str("ph", "f").str("cat", "msg").str("name", "msg")
              .integer("id", static_cast<long long>(r.id)).integer("pid", 0)
              .integer("tid", r.rank).num("ts", us(r.aux0)).str("bp", "e");
          w.end();
        }
        break;
      case Kind::Compute:
        slice(r.rank, "compute", r.t_ns, r.t_ns + r.aux0, "");
        break;
      case Kind::Pack:
        slice(r.rank, "pack", r.t_ns, r.t_ns + r.aux0, "");
        break;
      case Kind::Unpack:
        slice(r.rank, "unpack", r.t_ns, r.t_ns + r.aux0, "");
        break;
      case Kind::CollEnd:
        slice(r.rank, coll_name(r.aux0), r.aux1, r.t_ns, "");
        break;
      case Kind::Frame: {
        const int tid = link_tid[{r.rank, r.peer}];
        w.begin().str("ph", "X")
            .str("name", "frame " + std::to_string(r.rank) + "->" + std::to_string(r.peer))
            .integer("pid", 1).integer("tid", tid).num("ts", us(r.aux0))
            .num("dur", us(std::max<std::int64_t>(0, r.aux1 - r.aux0)))
            .raw("args", "{\"wire_bytes\":" + std::to_string(r.bytes) + "}");
        w.end();
        break;
      }
      case Kind::Retransmit:
        instant(r.rank, "retransmit", r.t_ns);
        break;
      case Kind::FrameDrop:
        instant(r.rank, "frame-drop", r.t_ns);
        break;
      case Kind::CorruptReject:
        instant(r.rank, "corrupt-reject", r.t_ns);
        break;
      case Kind::DupDiscard:
        instant(r.rank, "dup-discard", r.t_ns);
        break;
      case Kind::CollBegin:
      case Kind::MsgWire:
      case Kind::EventDispatch:
      case Kind::HostWork:
        break;  // covered by the matching End record / analysis-only kinds
    }
  }

  out += "\n]}\n";
  return out;
}

std::string export_csv(std::span<const Record> records) {
  std::string out = "kind,t_ns,rank,peer,tag,bytes,id,aux0,aux1\n";
  out.reserve(out.size() + records.size() * 48);
  char line[192];
  for (const Record& r : records) {
    std::snprintf(line, sizeof(line), "%s,%lld,%d,%d,%d,%lld,%llu,%lld,%lld\n",
                  to_string(r.kind), static_cast<long long>(r.t_ns),
                  static_cast<int>(r.rank), static_cast<int>(r.peer), r.tag,
                  static_cast<long long>(r.bytes),
                  static_cast<unsigned long long>(r.id),
                  static_cast<long long>(r.aux0), static_cast<long long>(r.aux1));
    out += line;
  }
  return out;
}

// -- minimal JSON parser for shape validation --------------------------------

namespace {

struct JValue {
  enum class T { Null, Bool, Num, Str, Arr, Obj };
  T t{T::Null};
  bool b{false};
  double num{0};
  std::string str;
  std::vector<JValue> arr;
  std::vector<std::pair<std::string, JValue>> obj;

  [[nodiscard]] const JValue* find(const std::string& key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  [[nodiscard]] bool parse(JValue& out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    if (pos_ != s_.size()) return fail("trailing content");
    return true;
  }
  [[nodiscard]] const std::string& error() const { return err_; }

 private:
  bool fail(const char* what) {
    if (err_.empty()) {
      err_ = std::string(what) + " at offset " + std::to_string(pos_);
    }
    return false;
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }
  [[nodiscard]] bool match(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool literal(const char* word, JValue& out, JValue v) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return fail("bad literal");
    }
    out = std::move(v);
    return true;
  }
  bool string(std::string& out) {
    if (!match('"')) return fail("expected string");
    out.clear();
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return fail("bad escape");
        char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return fail("bad \\u escape");
            pos_ += 4;       // validated for length only; content is opaque
            out += '?';
            break;
          }
          default: return fail("bad escape");
        }
      } else {
        out += c;
      }
    }
    return fail("unterminated string");
  }
  bool number(JValue& out) {
    const std::size_t start = pos_;
    if (match('-')) {}
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected number");
    out.t = JValue::T::Num;
    out.num = std::strtod(s_.c_str() + start, nullptr);
    return true;
  }
  bool value(JValue& out) {
    if (++depth_ > 64) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= s_.size()) return fail("unexpected end");
    bool ok = false;
    switch (s_[pos_]) {
      case '{': ok = object(out); break;
      case '[': ok = array(out); break;
      case '"':
        out.t = JValue::T::Str;
        ok = string(out.str);
        break;
      case 't': {
        JValue v;
        v.t = JValue::T::Bool;
        v.b = true;
        ok = literal("true", out, std::move(v));
        break;
      }
      case 'f': {
        JValue v;
        v.t = JValue::T::Bool;
        ok = literal("false", out, std::move(v));
        break;
      }
      case 'n': ok = literal("null", out, JValue{}); break;
      default: ok = number(out); break;
    }
    --depth_;
    return ok;
  }
  bool object(JValue& out) {
    out.t = JValue::T::Obj;
    if (!match('{')) return fail("expected object");
    skip_ws();
    if (match('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!string(key)) return false;
      skip_ws();
      if (!match(':')) return fail("expected ':'");
      JValue v;
      if (!value(v)) return false;
      out.obj.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (match('}')) return true;
      if (!match(',')) return fail("expected ',' or '}'");
    }
  }
  bool array(JValue& out) {
    out.t = JValue::T::Arr;
    if (!match('[')) return fail("expected array");
    skip_ws();
    if (match(']')) return true;
    while (true) {
      JValue v;
      if (!value(v)) return false;
      out.arr.push_back(std::move(v));
      skip_ws();
      if (match(']')) return true;
      if (!match(',')) return fail("expected ',' or ']'");
    }
  }

  const std::string& s_;
  std::size_t pos_{0};
  int depth_{0};
  std::string err_;
};

}  // namespace

bool validate_json(const std::string& json, std::string* error) {
  JValue root;
  Parser p(json);
  if (!p.parse(root)) {
    if (error != nullptr) *error = p.error();
    return false;
  }
  return true;
}

ValidationResult validate_perfetto_json(const std::string& json) {
  ValidationResult res;
  JValue root;
  Parser p(json);
  if (!p.parse(root)) {
    res.error = "parse error: " + p.error();
    return res;
  }
  if (root.t != JValue::T::Obj) {
    res.error = "top level is not an object";
    return res;
  }
  const JValue* events = root.find("traceEvents");
  if (events == nullptr || events->t != JValue::T::Arr) {
    res.error = "missing traceEvents array";
    return res;
  }
  std::set<double> flow_starts;
  std::set<double> flow_ends;
  for (std::size_t i = 0; i < events->arr.size(); ++i) {
    const JValue& e = events->arr[i];
    const std::string at = "traceEvents[" + std::to_string(i) + "]";
    if (e.t != JValue::T::Obj) {
      res.error = at + " is not an object";
      return res;
    }
    const JValue* ph = e.find("ph");
    if (ph == nullptr || ph->t != JValue::T::Str || ph->str.empty()) {
      res.error = at + " has no ph";
      return res;
    }
    auto need_num = [&](const char* key) {
      const JValue* v = e.find(key);
      if (v == nullptr || v->t != JValue::T::Num) {
        res.error = at + " (ph=" + ph->str + ") missing numeric " + key;
        return false;
      }
      return true;
    };
    if (ph->str == "X") {
      if (!need_num("ts") || !need_num("dur") || !need_num("pid") || !need_num("tid")) {
        return res;
      }
      if (e.find("dur")->num < 0) {
        res.error = at + " has negative dur";
        return res;
      }
    } else if (ph->str == "s" || ph->str == "f") {
      if (!need_num("ts") || !need_num("id")) return res;
      (ph->str == "s" ? flow_starts : flow_ends).insert(e.find("id")->num);
      ++res.flows;
    } else if (ph->str == "i") {
      if (!need_num("ts")) return res;
    } else if (ph->str != "M") {
      res.error = at + " has unexpected ph '" + ph->str + "'";
      return res;
    }
  }
  for (double id : flow_starts) {
    if (flow_ends.find(id) == flow_ends.end()) {
      res.error = "flow id " + std::to_string(id) + " starts but never finishes";
      return res;
    }
  }
  res.events = events->arr.size();
  res.ok = true;
  return res;
}

}  // namespace pdc::trace
