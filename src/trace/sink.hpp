// pdceval -- trace sink: a per-worker binary ring buffer of Records.
//
// One Sink belongs to exactly one capture on one thread (the simulation is
// single-threaded; sweep workers each run their own cells), so the emit
// path is lock-free by construction: a masked branch, one 56-byte store,
// two index bumps. The buffer is a power-of-two ring in flight-recorder
// mode -- when it saturates, the oldest record is overwritten and counted
// as dropped, so a bounded capture always holds the most recent window.
//
// Installation is via a thread-local current-sink pointer (ScopedCapture).
// The instrumentation probes compiled into the sim/mp/net/kernels layers
// (see trace/probe.hpp) check that pointer: tracing disabled at runtime is
// one thread-local load and a null test; tracing compiled out (the default
// PDC_TRACE=OFF build) is no code at all.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/record.hpp"

namespace pdc::trace {

struct SinkStats {
  std::uint64_t emitted{0};  ///< records accepted past the category mask
  std::uint64_t dropped{0};  ///< of which: overwritten after saturation

  friend bool operator==(const SinkStats&, const SinkStats&) = default;
};

class Sink {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 20;

  explicit Sink(std::size_t capacity = kDefaultCapacity,
                std::uint32_t mask = kDefaultMask)
      : mask_(mask) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    buf_.resize(cap);
  }

  Sink(const Sink&) = delete;
  Sink& operator=(const Sink&) = delete;

  /// Store one record (emit order == chronological order for a
  /// single-threaded simulation). O(1), no allocation.
  void emit(const Record& r) noexcept {
    if ((mask_ & category(r.kind)) == 0) return;
    ++stats_.emitted;
    buf_[head_] = r;
    head_ = (head_ + 1) & (buf_.size() - 1);
    if (size_ < buf_.size()) {
      ++size_;
    } else {
      ++stats_.dropped;  // overwrote the oldest surviving record
    }
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::uint32_t mask() const noexcept { return mask_; }
  [[nodiscard]] const SinkStats& stats() const noexcept { return stats_; }

  /// Surviving records in emit order (oldest first).
  [[nodiscard]] std::vector<Record> snapshot() const {
    std::vector<Record> out;
    out.reserve(size_);
    const std::size_t start = (head_ + buf_.size() - size_) & (buf_.size() - 1);
    for (std::size_t i = 0; i < size_; ++i) {
      out.push_back(buf_[(start + i) & (buf_.size() - 1)]);
    }
    return out;
  }

  /// Forget everything but keep capacity and mask (capture reuse).
  void clear() noexcept {
    head_ = 0;
    size_ = 0;
    stats_ = {};
  }

 private:
  std::vector<Record> buf_;  // power-of-two ring
  std::size_t head_{0};      // next write slot
  std::size_t size_{0};      // live records
  std::uint32_t mask_;
  SinkStats stats_{};
};

namespace detail {
inline thread_local Sink* tl_sink = nullptr;
}  // namespace detail

/// The sink currently capturing on this thread (nullptr: tracing runtime-
/// disabled). This is the cached flag the probes branch on.
[[nodiscard]] inline Sink* current() noexcept { return detail::tl_sink; }
[[nodiscard]] inline bool active() noexcept { return detail::tl_sink != nullptr; }

/// Store `r` into the current sink, if any.
inline void emit(const Record& r) noexcept {
  if (Sink* s = detail::tl_sink) s->emit(r);
}

/// RAII capture installer; restores the previous sink (captures nest).
class ScopedCapture {
 public:
  explicit ScopedCapture(Sink& sink) noexcept : prev_(detail::tl_sink) {
    detail::tl_sink = &sink;
  }
  ~ScopedCapture() { detail::tl_sink = prev_; }
  ScopedCapture(const ScopedCapture&) = delete;
  ScopedCapture& operator=(const ScopedCapture&) = delete;

 private:
  Sink* prev_;
};

}  // namespace pdc::trace
