// pdceval -- post-run analyses over a trace record stream.
//
// All analyses are pure functions of the record vector (integers in,
// integers out): no floating point feeds any ordering decision, so results
// are bit-identical across platforms and sweep thread counts. Doubles
// appear only in convenience ratios at the reporting boundary.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "trace/record.hpp"

namespace pdc::trace {

/// End of the last traced occurrence, in simulated ns (0 for an empty
/// stream). Span-closing records contribute their end time, Compute spans
/// contribute begin+duration, wire hops their arrival.
[[nodiscard]] std::int64_t makespan_ns(std::span<const Record> records);

// -- per-rank blocking-time breakdown ----------------------------------------

/// Where one rank's simulated time went. Categories partition the rank's
/// *accounted* activity; `other_ns` is the remainder up to the global
/// makespan (idle after finishing, untraced waits).
struct RankBreakdown {
  int rank{0};
  std::int64_t compute_ns{0};    ///< billed CPU spans (flops/intops/copies)
  std::int64_t send_ns{0};       ///< blocking portion of sends
  std::int64_t recv_wait_ns{0};  ///< recv posted until message matched
  std::int64_t unpack_ns{0};     ///< recv post-processing (decode/copy)
  std::int64_t queue_ns{0};      ///< frames this rank sent: wait for the wire
  std::int64_t wire_ns{0};       ///< frames this rank sent: serialization
  std::int64_t other_ns{0};      ///< makespan minus accounted rank activity
  std::int64_t sends{0};
  std::int64_t recvs{0};
  std::int64_t retransmits{0};
  std::int64_t drops_seen{0};
  std::int64_t corrupt_rejected{0};
  std::int64_t dup_discarded{0};
};

/// One entry per rank seen in the stream, ordered by rank.
[[nodiscard]] std::vector<RankBreakdown> blocking_breakdown(
    std::span<const Record> records);

// -- P x P communication matrix ----------------------------------------------

struct CommMatrix {
  int p{0};                         ///< ranks (matrix is p*p, row-major by src)
  std::vector<std::int64_t> bytes;  ///< payload bytes src -> dst
  std::vector<std::int64_t> msgs;   ///< message count src -> dst

  [[nodiscard]] std::int64_t bytes_at(int src, int dst) const {
    return bytes[static_cast<std::size_t>(src) * static_cast<std::size_t>(p) +
                 static_cast<std::size_t>(dst)];
  }
  [[nodiscard]] std::int64_t msgs_at(int src, int dst) const {
    return msgs[static_cast<std::size_t>(src) * static_cast<std::size_t>(p) +
                static_cast<std::size_t>(dst)];
  }
  [[nodiscard]] std::int64_t total_bytes() const noexcept;
  [[nodiscard]] std::int64_t total_msgs() const noexcept;
};

[[nodiscard]] CommMatrix comm_matrix(std::span<const Record> records);

// -- per-link utilisation ----------------------------------------------------

struct LinkUsage {
  int src{0};
  int dst{0};
  std::int64_t busy_ns{0};     ///< summed serialization windows
  std::int64_t queue_ns{0};    ///< summed enqueue-to-service waits
  std::int64_t frames{0};
  std::int64_t wire_bytes{0};
  /// Busy ns per time bucket over [0, makespan) (buckets chosen by caller).
  std::vector<std::int64_t> timeline;
};

struct LinkUtilization {
  std::int64_t span_ns{0};  ///< analysis horizon (trace makespan)
  int buckets{0};
  std::vector<LinkUsage> links;  ///< ordered by (src, dst)

  [[nodiscard]] double utilization(const LinkUsage& l) const noexcept {
    return span_ns > 0 ? static_cast<double>(l.busy_ns) / static_cast<double>(span_ns)
                       : 0.0;
  }
};

[[nodiscard]] LinkUtilization link_utilization(std::span<const Record> records,
                                               int buckets = 16);

// -- critical path -----------------------------------------------------------

/// One segment of the longest recv-after-send dependency chain that ends at
/// the trace's final event. Segments are disjoint and chronological.
struct PathSegment {
  enum class Kind {
    Compute,   ///< billed CPU work on `rank`
    Overhead,  ///< tool cost: send/recv fixed+copy, daemon hops, stack queueing
    Wire,      ///< network serialization + propagation of the message
    RecvWait,  ///< receiver posted early; charged when the path stays local
  };
  Kind kind{Kind::Overhead};
  int rank{0};            ///< rank whose clock this segment occupies
  int peer{-1};           ///< message counterpart (Wire/Overhead edge parts)
  std::uint64_t msg_id{0};
  std::int64_t t0_ns{0};
  std::int64_t t1_ns{0};

  [[nodiscard]] std::int64_t duration_ns() const noexcept { return t1_ns - t0_ns; }
};

[[nodiscard]] const char* to_string(PathSegment::Kind k) noexcept;

struct CriticalPath {
  std::int64_t makespan_ns{0};
  std::int64_t covered_ns{0};   ///< summed segment durations (disjoint)
  std::int64_t compute_ns{0};
  std::int64_t overhead_ns{0};  ///< tool fixed costs on the path
  std::int64_t wire_ns{0};      ///< wire time on the path
  std::vector<PathSegment> segments;  ///< chronological

  /// Fraction of the makespan the extracted chain explains.
  [[nodiscard]] double coverage() const noexcept {
    return makespan_ns > 0
               ? static_cast<double>(covered_ns) / static_cast<double>(makespan_ns)
               : 0.0;
  }
  /// The k longest segments, longest first (ties: earlier first).
  [[nodiscard]] std::vector<PathSegment> top(std::size_t k) const;
};

/// Walk backward from the last traced event through the message dependency
/// graph: a recv that waited jumps to its sender's matching send; local
/// activity chains within the rank. See DESIGN.md section 5.11.
[[nodiscard]] CriticalPath critical_path(std::span<const Record> records);

/// Human-readable multi-line report over all analyses (the pdctrace CLI's
/// --report output).
[[nodiscard]] std::string text_report(std::span<const Record> records);

}  // namespace pdc::trace
