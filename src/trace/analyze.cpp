#include "trace/analyze.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <map>
#include <unordered_map>
#include <utility>

namespace pdc::trace {

namespace {

[[nodiscard]] std::int64_t record_end_ns(const Record& r) noexcept {
  switch (r.kind) {
    case Kind::Compute:
    case Kind::Pack:
    case Kind::Unpack:
      return r.t_ns + r.aux0;  // begin + duration
    case Kind::MsgWire:
      return r.aux0;  // arrival
    case Kind::Frame:
      return r.aux1;  // end of serialization window
    case Kind::HostWork:
      return 0;  // wall clock, not simulated time
    default:
      return r.t_ns;
  }
}

/// A rank-local activity interval reconstructed from span records.
struct Activity {
  enum class What { Send, Recv, Compute };
  What what{What::Compute};
  std::int64_t t0{0};     ///< begin
  std::int64_t t1{0};     ///< end
  std::int64_t match{0};  ///< recv only: when the message matched
  std::uint64_t id{0};
  int peer{-1};
};

struct MessageInfo {
  int src{-1};
  std::int64_t begin{0};    ///< sender's SendBegin
  std::int64_t enq{-1};     ///< wire enqueue (MsgWire), -1 if never on the wire
  std::int64_t arrival{-1};  ///< latest wire arrival
  std::int64_t bytes{0};
};

struct Indexed {
  std::vector<std::vector<Activity>> per_rank;  // sorted by t1 (emit order)
  std::unordered_map<std::uint64_t, MessageInfo> msgs;
  std::int64_t makespan{0};
  int ranks{0};
};

[[nodiscard]] Indexed build_index(std::span<const Record> records) {
  Indexed ix;
  int max_rank = -1;
  for (const Record& r : records) {
    max_rank = std::max(max_rank, static_cast<int>(r.rank));
    if (r.kind == Kind::SendBegin || r.kind == Kind::RecvEnd) {
      max_rank = std::max(max_rank, static_cast<int>(r.peer));
    }
    ix.makespan = std::max(ix.makespan, record_end_ns(r));
  }
  ix.ranks = max_rank + 1;
  ix.per_rank.resize(static_cast<std::size_t>(std::max(0, ix.ranks)));

  for (const Record& r : records) {
    switch (r.kind) {
      case Kind::SendBegin: {
        auto& m = ix.msgs[r.id];
        m.src = r.rank;
        m.begin = r.t_ns;
        m.bytes = r.bytes;
        break;
      }
      case Kind::SendEnd:
        if (r.rank >= 0) {
          ix.per_rank[static_cast<std::size_t>(r.rank)].push_back(
              {Activity::What::Send, r.aux1, r.t_ns, 0, r.id, r.peer});
        }
        break;
      case Kind::RecvEnd:
        if (r.rank >= 0) {
          ix.per_rank[static_cast<std::size_t>(r.rank)].push_back(
              {Activity::What::Recv, r.aux1, r.t_ns, r.aux0, r.id, r.peer});
        }
        break;
      case Kind::Compute:
        if (r.rank >= 0) {
          ix.per_rank[static_cast<std::size_t>(r.rank)].push_back(
              {Activity::What::Compute, r.t_ns, r.t_ns + r.aux0, 0, 0, -1});
        }
        break;
      case Kind::MsgWire: {
        auto it = ix.msgs.find(r.id);
        if (it != ix.msgs.end()) {
          if (it->second.enq < 0) it->second.enq = r.t_ns;
          it->second.arrival = std::max(it->second.arrival, r.aux0);
        }
        break;
      }
      default:
        break;
    }
  }
  // Records are emitted chronologically per rank except that span-closing
  // records arrive at span end; a stable sort on end time restores the
  // per-rank walk order the path extractor needs.
  for (auto& acts : ix.per_rank) {
    std::stable_sort(acts.begin(), acts.end(),
                     [](const Activity& a, const Activity& b) { return a.t1 < b.t1; });
  }
  return ix;
}

}  // namespace

std::int64_t makespan_ns(std::span<const Record> records) {
  std::int64_t end = 0;
  for (const Record& r : records) end = std::max(end, record_end_ns(r));
  return end;
}

std::vector<RankBreakdown> blocking_breakdown(std::span<const Record> records) {
  int max_rank = -1;
  for (const Record& r : records) max_rank = std::max(max_rank, static_cast<int>(r.rank));
  if (max_rank < 0) return {};
  std::vector<RankBreakdown> out(static_cast<std::size_t>(max_rank) + 1);
  for (int r = 0; r <= max_rank; ++r) out[static_cast<std::size_t>(r)].rank = r;

  const std::int64_t horizon = makespan_ns(records);
  for (const Record& r : records) {
    if (r.rank < 0) continue;
    RankBreakdown& b = out[static_cast<std::size_t>(r.rank)];
    switch (r.kind) {
      case Kind::SendBegin:
        ++b.sends;
        break;
      case Kind::SendEnd:
        b.send_ns += r.t_ns - r.aux1;
        break;
      case Kind::RecvEnd:
        ++b.recvs;
        b.recv_wait_ns += std::max<std::int64_t>(0, r.aux0 - r.aux1);
        b.unpack_ns += std::max<std::int64_t>(0, r.t_ns - r.aux0);
        break;
      case Kind::Compute:
        b.compute_ns += r.aux0;
        break;
      case Kind::Frame:
        b.queue_ns += std::max<std::int64_t>(0, r.aux0 - r.t_ns);
        b.wire_ns += std::max<std::int64_t>(0, r.aux1 - r.aux0);
        break;
      case Kind::Retransmit:
        ++b.retransmits;
        break;
      case Kind::FrameDrop:
        ++b.drops_seen;
        break;
      case Kind::CorruptReject:
        ++b.corrupt_rejected;
        break;
      case Kind::DupDiscard:
        ++b.dup_discarded;
        break;
      default:
        break;
    }
  }
  for (RankBreakdown& b : out) {
    const std::int64_t accounted =
        b.compute_ns + b.send_ns + b.recv_wait_ns + b.unpack_ns;
    b.other_ns = std::max<std::int64_t>(0, horizon - accounted);
  }
  return out;
}

std::int64_t CommMatrix::total_bytes() const noexcept {
  std::int64_t t = 0;
  for (auto v : bytes) t += v;
  return t;
}
std::int64_t CommMatrix::total_msgs() const noexcept {
  std::int64_t t = 0;
  for (auto v : msgs) t += v;
  return t;
}

CommMatrix comm_matrix(std::span<const Record> records) {
  int max_rank = -1;
  for (const Record& r : records) {
    if (r.kind != Kind::SendBegin) continue;
    max_rank = std::max({max_rank, static_cast<int>(r.rank), static_cast<int>(r.peer)});
  }
  CommMatrix m;
  m.p = max_rank + 1;
  if (m.p <= 0) return m;
  const auto n = static_cast<std::size_t>(m.p) * static_cast<std::size_t>(m.p);
  m.bytes.assign(n, 0);
  m.msgs.assign(n, 0);
  for (const Record& r : records) {
    if (r.kind != Kind::SendBegin || r.rank < 0 || r.peer < 0) continue;
    const auto at = static_cast<std::size_t>(r.rank) * static_cast<std::size_t>(m.p) +
                    static_cast<std::size_t>(r.peer);
    m.bytes[at] += r.bytes;
    m.msgs[at] += 1;
  }
  return m;
}

LinkUtilization link_utilization(std::span<const Record> records, int buckets) {
  LinkUtilization u;
  u.span_ns = makespan_ns(records);
  u.buckets = std::max(1, buckets);
  std::map<std::pair<int, int>, LinkUsage> links;
  for (const Record& r : records) {
    if (r.kind != Kind::Frame) continue;
    LinkUsage& l = links[{r.rank, r.peer}];
    l.src = r.rank;
    l.dst = r.peer;
    l.busy_ns += std::max<std::int64_t>(0, r.aux1 - r.aux0);
    l.queue_ns += std::max<std::int64_t>(0, r.aux0 - r.t_ns);
    ++l.frames;
    l.wire_bytes += r.bytes;
    if (l.timeline.empty()) l.timeline.assign(static_cast<std::size_t>(u.buckets), 0);
    if (u.span_ns > 0) {
      // Distribute the busy window across the buckets it overlaps.
      const std::int64_t width = (u.span_ns + u.buckets - 1) / u.buckets;
      for (std::int64_t t = r.aux0; t < r.aux1;) {
        const std::int64_t b = std::min<std::int64_t>(t / width, u.buckets - 1);
        const std::int64_t bucket_end = std::min<std::int64_t>((b + 1) * width, r.aux1);
        l.timeline[static_cast<std::size_t>(b)] += bucket_end - t;
        t = bucket_end;
      }
    }
  }
  u.links.reserve(links.size());
  for (auto& [key, l] : links) u.links.push_back(std::move(l));
  return u;
}

const char* to_string(PathSegment::Kind k) noexcept {
  switch (k) {
    case PathSegment::Kind::Compute: return "compute";
    case PathSegment::Kind::Overhead: return "tool-overhead";
    case PathSegment::Kind::Wire: return "wire";
    case PathSegment::Kind::RecvWait: return "recv-wait";
  }
  return "?";
}

std::vector<PathSegment> CriticalPath::top(std::size_t k) const {
  std::vector<PathSegment> out = segments;
  std::sort(out.begin(), out.end(), [](const PathSegment& a, const PathSegment& b) {
    if (a.duration_ns() != b.duration_ns()) return a.duration_ns() > b.duration_ns();
    return a.t0_ns < b.t0_ns;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

CriticalPath critical_path(std::span<const Record> records) {
  CriticalPath path;
  Indexed ix = build_index(records);
  path.makespan_ns = ix.makespan;
  if (ix.ranks <= 0) return path;

  // Start at the activity that finishes last anywhere.
  int rank = -1;
  std::int64_t cursor = -1;
  for (int r = 0; r < ix.ranks; ++r) {
    const auto& acts = ix.per_rank[static_cast<std::size_t>(r)];
    if (!acts.empty() && acts.back().t1 > cursor) {
      cursor = acts.back().t1;
      rank = r;
    }
  }
  if (rank < 0) return path;

  // Each rank is consumed strictly backward: walk_idx[r] is the first
  // not-yet-considered activity index + 1, so every activity is visited at
  // most once and the walk always terminates.
  std::vector<std::size_t> walk_idx(static_cast<std::size_t>(ix.ranks));
  for (int r = 0; r < ix.ranks; ++r) {
    walk_idx[static_cast<std::size_t>(r)] = ix.per_rank[static_cast<std::size_t>(r)].size();
  }

  auto push = [&](PathSegment::Kind kind, int seg_rank, int peer, std::uint64_t id,
                  std::int64_t t0, std::int64_t t1) {
    if (t1 <= t0) return;
    path.segments.push_back({kind, seg_rank, peer, id, t0, t1});
  };

  while (cursor > 0) {
    auto& acts = ix.per_rank[static_cast<std::size_t>(rank)];
    std::size_t& idx = walk_idx[static_cast<std::size_t>(rank)];
    // Latest unconsumed activity on this rank ending at or before the cursor.
    while (idx > 0 && acts[idx - 1].t1 > cursor) --idx;
    if (idx == 0) break;
    const Activity a = acts[--idx];
    const std::int64_t end = std::min(a.t1, cursor);

    switch (a.what) {
      case Activity::What::Compute:
        push(PathSegment::Kind::Compute, rank, -1, 0, a.t0, end);
        cursor = a.t0;
        break;
      case Activity::What::Send:
        push(PathSegment::Kind::Overhead, rank, a.peer, a.id, a.t0, end);
        cursor = a.t0;
        break;
      case Activity::What::Recv: {
        const std::int64_t match = std::min(a.match, end);
        push(PathSegment::Kind::Overhead, rank, a.peer, a.id, match, end);
        if (match <= a.t0) {  // message was already there: the path stays local
          cursor = a.t0;
          break;
        }
        const auto it = ix.msgs.find(a.id);
        if (it == ix.msgs.end() || it->second.src < 0 ||
            it->second.src >= ix.ranks) {
          // Loopback or truncated stream: charge the wait to this rank.
          push(PathSegment::Kind::RecvWait, rank, a.peer, a.id, a.t0, match);
          cursor = a.t0;
          break;
        }
        const MessageInfo& m = it->second;
        const std::int64_t ts = std::min(m.begin, match);
        if (m.enq >= 0 && m.arrival > m.enq) {
          const std::int64_t enq = std::clamp(m.enq, ts, match);
          const std::int64_t arr = std::clamp(m.arrival, enq, match);
          push(PathSegment::Kind::Overhead, rank, m.src, a.id, arr, match);
          push(PathSegment::Kind::Wire, m.src, rank, a.id, enq, arr);
          push(PathSegment::Kind::Overhead, m.src, rank, a.id, ts, enq);
        } else {
          push(PathSegment::Kind::Overhead, m.src, rank, a.id, ts, match);
        }
        rank = m.src;
        cursor = ts;
        break;
      }
    }
  }

  std::reverse(path.segments.begin(), path.segments.end());
  for (const PathSegment& s : path.segments) {
    path.covered_ns += s.duration_ns();
    switch (s.kind) {
      case PathSegment::Kind::Compute:
        path.compute_ns += s.duration_ns();
        break;
      case PathSegment::Kind::Wire:
        path.wire_ns += s.duration_ns();
        break;
      default:
        path.overhead_ns += s.duration_ns();
        break;
    }
  }
  return path;
}

namespace {

void append_timeline(std::string& out, std::span<const Record> records,
                     std::int64_t horizon) {
  // One 64-column strip per rank; each column shows the dominant activity
  // in its time slice: C compute, S send, r recv-wait, u unpack, . idle.
  int max_rank = -1;
  for (const Record& r : records) max_rank = std::max(max_rank, static_cast<int>(r.rank));
  if (max_rank < 0 || horizon <= 0) return;
  constexpr int kCols = 64;
  const std::int64_t width = (horizon + kCols - 1) / kCols;
  out += "timeline (per rank, " + std::to_string(horizon) + " ns across " +
         std::to_string(kCols) + " cols: C compute, S send, r recv-wait, u unpack)\n";
  for (int rk = 0; rk <= max_rank; ++rk) {
    // Per column, ns of each class; dominant wins.
    std::vector<std::array<std::int64_t, 4>> cols(kCols, {0, 0, 0, 0});
    auto charge = [&](int cls, std::int64_t t0, std::int64_t t1) {
      t0 = std::clamp<std::int64_t>(t0, 0, horizon);
      t1 = std::clamp<std::int64_t>(t1, 0, horizon);
      for (std::int64_t t = t0; t < t1;) {
        const std::int64_t c = std::min<std::int64_t>(t / width, kCols - 1);
        const std::int64_t cell_end = std::min((c + 1) * width, t1);
        cols[static_cast<std::size_t>(c)][static_cast<std::size_t>(cls)] += cell_end - t;
        t = cell_end;
      }
    };
    for (const Record& r : records) {
      if (r.rank != rk) continue;
      switch (r.kind) {
        case Kind::Compute: charge(0, r.t_ns, r.t_ns + r.aux0); break;
        case Kind::SendEnd: charge(1, r.aux1, r.t_ns); break;
        case Kind::RecvEnd:
          charge(2, r.aux1, r.aux0);
          charge(3, r.aux0, r.t_ns);
          break;
        default: break;
      }
    }
    std::string strip(kCols, '.');
    static constexpr char kGlyph[4] = {'C', 'S', 'r', 'u'};
    for (int c = 0; c < kCols; ++c) {
      std::int64_t best = 0;
      for (int cls = 0; cls < 4; ++cls) {
        const std::int64_t v = cols[static_cast<std::size_t>(c)][static_cast<std::size_t>(cls)];
        if (v > best) {
          best = v;
          strip[static_cast<std::size_t>(c)] = kGlyph[cls];
        }
      }
    }
    char head[32];
    std::snprintf(head, sizeof(head), "  rank %-3d |", rk);
    out += head;
    out += strip;
    out += "|\n";
  }
}

}  // namespace

std::string text_report(std::span<const Record> records) {
  std::string out;
  char line[256];
  const std::int64_t horizon = makespan_ns(records);
  std::snprintf(line, sizeof(line), "records: %zu   makespan: %.3f ms\n",
                records.size(), static_cast<double>(horizon) * 1e-6);
  out += line;

  const auto breakdown = blocking_breakdown(records);
  if (!breakdown.empty()) {
    out += "\nper-rank blocking breakdown (ms):\n";
    out += "  rank   compute      send recv-wait    unpack     other  rexmit\n";
    for (const RankBreakdown& b : breakdown) {
      std::snprintf(line, sizeof(line), "  %4d %9.3f %9.3f %9.3f %9.3f %9.3f %7lld\n",
                    b.rank, static_cast<double>(b.compute_ns) * 1e-6,
                    static_cast<double>(b.send_ns) * 1e-6,
                    static_cast<double>(b.recv_wait_ns) * 1e-6,
                    static_cast<double>(b.unpack_ns) * 1e-6,
                    static_cast<double>(b.other_ns) * 1e-6,
                    static_cast<long long>(b.retransmits));
      out += line;
    }
  }

  const CommMatrix m = comm_matrix(records);
  if (m.p > 0) {
    std::snprintf(line, sizeof(line),
                  "\ncommunication matrix (%d ranks, %lld msgs, %lld payload bytes):\n", m.p,
                  static_cast<long long>(m.total_msgs()),
                  static_cast<long long>(m.total_bytes()));
    out += line;
    for (int s = 0; s < m.p; ++s) {
      out += "  ";
      for (int d = 0; d < m.p; ++d) {
        std::snprintf(line, sizeof(line), "%10lld", static_cast<long long>(m.bytes_at(s, d)));
        out += line;
      }
      out += "\n";
    }
  }

  const LinkUtilization lu = link_utilization(records);
  if (!lu.links.empty()) {
    out += "\nlink utilisation (serialization busy / makespan):\n";
    for (const LinkUsage& l : lu.links) {
      std::snprintf(line, sizeof(line),
                    "  %3d->%-3d %6.2f%%  frames %6lld  wire bytes %10lld  queue %9.3f ms\n",
                    l.src, l.dst, 100.0 * lu.utilization(l), static_cast<long long>(l.frames),
                    static_cast<long long>(l.wire_bytes),
                    static_cast<double>(l.queue_ns) * 1e-6);
      out += line;
    }
  }

  const CriticalPath cp = critical_path(records);
  if (!cp.segments.empty()) {
    std::snprintf(line, sizeof(line),
                  "\ncritical path: %.3f ms covered (%.1f%% of makespan) -- "
                  "wire %.3f ms, tool overhead %.3f ms, compute %.3f ms\n",
                  static_cast<double>(cp.covered_ns) * 1e-6, 100.0 * cp.coverage(),
                  static_cast<double>(cp.wire_ns) * 1e-6,
                  static_cast<double>(cp.overhead_ns) * 1e-6,
                  static_cast<double>(cp.compute_ns) * 1e-6);
    out += line;
    out += "top path segments:\n";
    for (const PathSegment& s : cp.top(10)) {
      std::snprintf(line, sizeof(line),
                    "  %-13s rank %-3d peer %-3d  [%9.3f .. %9.3f] ms  %9.3f ms\n",
                    to_string(s.kind), s.rank, s.peer,
                    static_cast<double>(s.t0_ns) * 1e-6,
                    static_cast<double>(s.t1_ns) * 1e-6,
                    static_cast<double>(s.duration_ns()) * 1e-6);
      out += line;
    }
  }

  out += "\n";
  append_timeline(out, records, horizon);
  return out;
}

}  // namespace pdc::trace
