// pdceval -- trace exporters: Chrome/Perfetto trace.json and CSV.
//
// The JSON exporter emits the Chrome trace-event format that Perfetto's
// legacy importer (ui.perfetto.dev, chrome://tracing) loads directly:
// complete ("X") slices on one track per rank and one per link, plus
// flow arrows ("s"/"f") connecting each send to the recv that matched it.
// Timestamps are microseconds (double) per the format; the source stream
// stays integer-ns, so exporting never perturbs analysis results.
#pragma once

#include <span>
#include <string>

#include "trace/record.hpp"

namespace pdc::trace {

/// Serialize the stream as a Chrome trace-event JSON object
/// (`{"displayTimeUnit":"ms","traceEvents":[...]}`). Ranks become threads
/// of process 0, links threads of process 1; send->recv flows are keyed by
/// message id.
[[nodiscard]] std::string export_perfetto_json(std::span<const Record> records);

/// One row per record: `kind,t_ns,rank,peer,tag,bytes,id,aux0,aux1` with a
/// header line. Loads into any spreadsheet / pandas for ad-hoc analysis.
[[nodiscard]] std::string export_csv(std::span<const Record> records);

/// Result of the lightweight JSON shape check used by tests and the
/// `pdctrace --validate` flag.
struct ValidationResult {
  bool ok{false};
  std::size_t events{0};   ///< entries in traceEvents
  std::size_t flows{0};    ///< of which flow ("s"/"f") events
  std::string error;       ///< first problem found, empty when ok
};

/// Parse `json` with a minimal recursive-descent JSON parser (no external
/// dependencies) and check the Chrome trace shape: top-level object, a
/// `traceEvents` array whose entries are objects each carrying a string
/// `ph` and (for slices) numeric `ts`/`dur` plus `pid`/`tid`. Flow events
/// must pair: every "s" id has a matching "f".
[[nodiscard]] ValidationResult validate_perfetto_json(const std::string& json);

/// Syntax-only check with the same recursive-descent parser: true iff
/// `json` is one well-formed JSON value with no trailing content. Shared
/// by the pdceval/pdcmodel `--json` output tests, which only assert shape
/// (their schemas are theirs to define).
[[nodiscard]] bool validate_json(const std::string& json, std::string* error = nullptr);

}  // namespace pdc::trace
