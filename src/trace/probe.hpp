// pdceval -- instrumentation gate for the tracing probes.
//
// Call sites in the sim kernel, message-passing runtime, network models and
// compute-kernel layer wrap their record construction in PDC_TRACE_BLOCK:
//
//   PDC_TRACE_BLOCK {
//     trace::emit({.t_ns = sim.now().ns, .kind = trace::Kind::SendBegin, ...});
//   }
//
// Two gates stack:
//   * compile time -- the PDC_TRACE CMake option defines PDC_TRACE_ENABLED.
//     Without it the block is `if constexpr (false)`: still type-checked,
//     emitted as nothing, so the default build carries zero probe code and
//     all goldens/benches are trivially bit-identical to the pre-trace tree.
//   * run time -- with probes compiled in, the block costs one thread-local
//     load and a null test unless a ScopedCapture installed a Sink on this
//     thread. Installing a sink is per run (per sweep cell), so traced and
//     untraced cells coexist in one process.
#pragma once

#include "trace/record.hpp"
#include "trace/sink.hpp"

#ifdef PDC_TRACE_ENABLED
#define PDC_TRACE_BLOCK if (::pdc::trace::active())
#else
#define PDC_TRACE_BLOCK if constexpr (false)
#endif
