// pdceval -- trace record format.
//
// One fixed-width POD per traced occurrence. Records carry raw integers
// only (simulated nanoseconds, ranks, byte counts, correlation ids) so a
// stream is bit-reproducible across runs, platforms and sweep thread
// counts, and can be compared byte-for-byte by the determinism tests. All
// interpretation (spans, dependency edges, utilisation windows) happens
// post-run in trace::analyze -- the emit path just stores 56 bytes.
//
// Field use by kind (unused fields are zero):
//
//   kind           t_ns        aux0           aux1        id        notes
//   SendBegin      begin       --             --          msg id    peer=dst, tag, bytes
//   SendEnd        end         --             begin       msg id    blocking span [aux1, t]
//   RecvEnd        end         match          begin       msg id    peer=actual src; wait
//                                                                   span [aux1, aux0], post
//                                                                   processing [aux0, t]
//   CollBegin      begin       CollOp         --          --
//   CollEnd        end         CollOp         begin       --        span [aux1, t]
//   Compute        begin       duration       --          --        billed CPU span
//   Pack           begin       duration       --          msg id    send-side pack/copy
//   Unpack         begin       duration       --          msg id    recv-side decode
//   MsgWire        enqueue     arrival        attempt     msg id    message-level wire hop
//   Frame          enqueue     svc start      svc end     --        one link-level frame;
//                                                                   peer=dst, bytes=wire
//   Retransmit     fire time   attempt        --          link seq  reliable transport
//   FrameDrop      detect      attempt        --          link seq  wire ate a frame/ack
//   CorruptReject  arrival     --             --          link seq  CRC mismatch at rank
//   DupDiscard     arrival     --             --          link seq  receiver dedup hit
//   EventDispatch  fire time   events so far  queue size  --        sim kernel (verbose)
//   HostWork       0           wall ns        --          --        host-side kernel span
//                                                                   (wall clock -- excluded
//                                                                   from determinism masks)
#pragma once

#include <cstdint>

namespace pdc::trace {

enum class Kind : std::uint8_t {
  SendBegin,
  SendEnd,
  RecvEnd,
  CollBegin,
  CollEnd,
  Compute,
  Pack,
  Unpack,
  MsgWire,
  Frame,
  Retransmit,
  FrameDrop,
  CorruptReject,
  DupDiscard,
  EventDispatch,
  HostWork,
  SchedSubmit,    ///< job entered the scheduler queue (aux0 = requested ranks)
  SchedPlace,     ///< placement decided (aux0 = base node, aux1 = ranks)
  SchedStart,     ///< job's rank programs launched (aux0 = base node)
  SchedComplete,  ///< last rank finished (aux0 = start ns, aux1 = ranks)
};

/// Collective operation code carried in aux0 of CollBegin/CollEnd.
enum class CollOp : std::int64_t { Broadcast = 0, Barrier = 1, GlobalSum = 2 };

/// Capture categories: a Sink only stores kinds whose category bit is set
/// in its mask, so the verbose lanes (per-event sim kernel records,
/// wall-clock host spans) are opt-in.
enum Category : std::uint32_t {
  kCatMp = 1u << 0,         ///< send/recv/collective/compute/pack spans
  kCatNet = 1u << 1,        ///< link-level frames + message wire hops
  kCatTransport = 1u << 2,  ///< reliable-transport retransmit/dedup/CRC
  kCatSim = 1u << 3,        ///< per-event kernel dispatch (very verbose)
  kCatHost = 1u << 4,       ///< host wall-clock kernel spans (nondeterministic)
  kCatSched = 1u << 5,      ///< scheduler lifecycle (submit/place/start/complete)
};

/// Deterministic default: everything except the per-event firehose and the
/// wall-clock host spans. Streams captured under this mask are identical
/// across runs and sweep thread counts.
inline constexpr std::uint32_t kDefaultMask = kCatMp | kCatNet | kCatTransport | kCatSched;
inline constexpr std::uint32_t kAllMask =
    kCatMp | kCatNet | kCatTransport | kCatSim | kCatHost | kCatSched;

[[nodiscard]] constexpr Category category(Kind k) noexcept {
  switch (k) {
    case Kind::SendBegin:
    case Kind::SendEnd:
    case Kind::RecvEnd:
    case Kind::CollBegin:
    case Kind::CollEnd:
    case Kind::Compute:
    case Kind::Pack:
    case Kind::Unpack:
      return kCatMp;
    case Kind::MsgWire:
    case Kind::Frame:
      return kCatNet;
    case Kind::Retransmit:
    case Kind::FrameDrop:
    case Kind::CorruptReject:
    case Kind::DupDiscard:
      return kCatTransport;
    case Kind::EventDispatch:
      return kCatSim;
    case Kind::HostWork:
      return kCatHost;
    case Kind::SchedSubmit:
    case Kind::SchedPlace:
    case Kind::SchedStart:
    case Kind::SchedComplete:
      return kCatSched;
  }
  return kCatMp;  // unreachable
}

[[nodiscard]] constexpr const char* to_string(Kind k) noexcept {
  switch (k) {
    case Kind::SendBegin: return "send_begin";
    case Kind::SendEnd: return "send_end";
    case Kind::RecvEnd: return "recv_end";
    case Kind::CollBegin: return "coll_begin";
    case Kind::CollEnd: return "coll_end";
    case Kind::Compute: return "compute";
    case Kind::Pack: return "pack";
    case Kind::Unpack: return "unpack";
    case Kind::MsgWire: return "msg_wire";
    case Kind::Frame: return "frame";
    case Kind::Retransmit: return "retransmit";
    case Kind::FrameDrop: return "frame_drop";
    case Kind::CorruptReject: return "corrupt_reject";
    case Kind::DupDiscard: return "dup_discard";
    case Kind::EventDispatch: return "event_dispatch";
    case Kind::HostWork: return "host_work";
    case Kind::SchedSubmit: return "sched_submit";
    case Kind::SchedPlace: return "sched_place";
    case Kind::SchedStart: return "sched_start";
    case Kind::SchedComplete: return "sched_complete";
  }
  return "?";
}

struct Record {
  std::int64_t t_ns{0};    ///< simulated time of the occurrence (see table)
  std::int64_t bytes{0};   ///< payload or wire bytes involved
  std::int64_t aux0{0};    ///< kind-specific (see table)
  std::int64_t aux1{0};    ///< kind-specific (see table)
  std::uint64_t id{0};     ///< correlation id (message id / link sequence)
  Kind kind{Kind::SendBegin};
  std::int16_t rank{-1};   ///< owning rank (frame: source node)
  std::int16_t peer{-1};   ///< counterpart rank/node (-1: none)
  std::int32_t tag{0};     ///< message tag where applicable

  friend bool operator==(const Record&, const Record&) = default;
};

static_assert(sizeof(Record) <= 56, "Record is the emit-path unit; keep it one cache line");

}  // namespace pdc::trace
