// pdceval -- native-flavour veneers over Communicator.
//
// The paper's Table 1 maps each benchmark primitive to the tools' native
// calls (exsend/exreceive, p4_send/p4_recv, pvm_send/pvm_recv, ...). These
// thin adapters reproduce those spellings so example programs read like
// 1995 code while exercising exactly the same cost machinery. They add no
// behaviour of their own.
#pragma once

#include <cstdint>
#include <vector>

#include "mp/communicator.hpp"
#include "mp/pack.hpp"

namespace pdc::mp::native {

// --- p4 (Argonne) -----------------------------------------------------------

struct P4 {
  Communicator& comm;

  sim::Task<void> p4_send(int type, int dest, Payload data) {
    co_await comm.send(dest, type, std::move(data));
  }
  sim::Task<Message> p4_recv(int type = kAnyTag, int from = kAnySource) {
    co_return co_await comm.recv(from, type);
  }
  sim::Task<void> p4_broadcast(int type, Bytes& data) {
    co_await comm.broadcast(0, data, type);
  }
  sim::Task<void> p4_global_op(std::vector<double>& v) { co_await comm.global_sum(v); }
  sim::Task<void> p4_global_op(std::vector<std::int32_t>& v) { co_await comm.global_sum(v); }
};

// --- PVM 3.x (Oak Ridge) ----------------------------------------------------

/// pvm_initsend/pvm_pk*/pvm_send sequence collapsed into a send buffer.
class Pvm {
 public:
  explicit Pvm(Communicator& comm) : comm_(comm) {}

  void pvm_initsend() { packer_ = Packer{}; }
  template <typename T>
  void pvm_pk(std::span<const T> data) {
    packer_.put_span(data);
  }
  sim::Task<void> pvm_send(int tid, int msgtag) {
    co_await comm_.send(tid, msgtag, packer_.finish());
  }
  sim::Task<void> pvm_mcast(int msgtag) {
    Payload data = packer_.finish();
    co_await comm_.broadcast(comm_.rank(), data, msgtag);
  }
  sim::Task<Message> pvm_recv(int tid = kAnySource, int msgtag = kAnyTag) {
    co_return co_await comm_.recv(tid, msgtag);
  }
  sim::Task<void> pvm_barrier() { co_await comm_.barrier(); }

  [[nodiscard]] int pvm_mytid() const { return comm_.rank(); }

 private:
  Communicator& comm_;
  Packer packer_;
};

// --- Express (ParaSoft) -----------------------------------------------------

struct Express {
  Communicator& comm;

  sim::Task<void> exsend(int type, int node, Payload data) {
    co_await comm.send(node, type, std::move(data));
  }
  sim::Task<Message> exreceive(int type = kAnyTag, int node = kAnySource) {
    co_return co_await comm.recv(node, type);
  }
  sim::Task<void> exbroadcast(int type, Bytes& data, int origin = 0) {
    co_await comm.broadcast(origin, data, type);
  }
  sim::Task<void> excombine(std::vector<double>& v) { co_await comm.global_sum(v); }
  sim::Task<void> excombine(std::vector<std::int32_t>& v) { co_await comm.global_sum(v); }
  sim::Task<void> exsync() { co_await comm.barrier(); }
};

}  // namespace pdc::mp::native
