// pdceval -- tool runtime: the messaging fabric one tool instance owns on
// one cluster.
//
// The runtime owns per-rank mailboxes and the per-node auxiliary resources
// (pvmd daemons, Express background receive engines) and implements the
// kernel transfer pipeline: sender stack -> wire -> receiver stack, as a
// chain of scheduled events so every resource reservation happens at its
// own moment in simulated time (exact FIFO queueing).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "host/platform.hpp"
#include "mp/message.hpp"
#include "mp/profile.hpp"
#include "mp/tool.hpp"
#include "sim/mailbox.hpp"
#include "sim/pooled_function.hpp"
#include "sim/resource.hpp"

namespace pdc::mp {

class Communicator;

class Runtime {
 public:
  Runtime(host::Cluster& cluster, ToolKind kind);
  /// Run with an explicit cost profile instead of a catalogued tool's --
  /// the hook for evaluating hypothetical or future tools against the 1995
  /// field (the paper's second objective: "defining the requirements of
  /// future systems"). `kind` only labels the runtime.
  Runtime(host::Cluster& cluster, ToolKind kind, ToolProfile profile);
  ~Runtime();
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  [[nodiscard]] ToolKind kind() const noexcept { return kind_; }
  [[nodiscard]] int size() const noexcept { return cluster_.size(); }
  [[nodiscard]] host::Cluster& cluster() noexcept { return cluster_; }
  [[nodiscard]] sim::Simulation& sim() noexcept { return cluster_.simulation(); }
  [[nodiscard]] const ToolProfile& profile() const noexcept { return profile_; }

  [[nodiscard]] Communicator& comm(int rank);

  [[nodiscard]] sim::Mailbox<Message>& mailbox(int rank) {
    return *mailboxes_.at(static_cast<std::size_t>(rank));
  }
  [[nodiscard]] sim::SerialResource& daemon(int rank) {
    return *daemons_.at(static_cast<std::size_t>(rank));
  }
  [[nodiscard]] sim::SerialResource& rx_engine(int rank) {
    return *rx_engines_.at(static_cast<std::size_t>(rank));
  }
  [[nodiscard]] sim::SerialResource& tx_engine(int rank) {
    return *tx_engines_.at(static_cast<std::size_t>(rank));
  }

  /// Push `bytes` through sender stack -> network -> receiver stack,
  /// starting now. Returns the sender-stack completion time (what a
  /// blocking send waits for); invokes `delivered` (via the scheduler) when
  /// the receiver's kernel has the data. `chunked` selects the fragment+ack
  /// wire protocol (PVM daemon traffic). The continuation rides in a
  /// pool-backed callable so per-message delivery never hits malloc.
  sim::TimePoint kernel_transfer(int src, int dst, std::int64_t bytes,
                                 sim::PooledFunction<void(sim::TimePoint)> delivered,
                                 std::optional<net::ChunkProtocol> chunked = std::nullopt);

  /// Hand a message to rank `dst`'s mailbox at time `at`.
  void deliver_at(sim::TimePoint at, int dst, Message msg);

  /// Total messages moved through the fabric (reporting / tests).
  [[nodiscard]] std::uint64_t messages_sent() const noexcept { return messages_sent_; }
  [[nodiscard]] std::uint64_t payload_bytes_sent() const noexcept { return payload_bytes_; }

 private:
  host::Cluster& cluster_;
  ToolKind kind_;
  ToolProfile profile_;
  std::vector<std::unique_ptr<sim::Mailbox<Message>>> mailboxes_;
  std::vector<std::unique_ptr<sim::SerialResource>> daemons_;
  std::vector<std::unique_ptr<sim::SerialResource>> rx_engines_;
  std::vector<std::unique_ptr<sim::SerialResource>> tx_engines_;
  std::vector<std::unique_ptr<Communicator>> comms_;
  std::uint64_t messages_sent_{0};
  std::uint64_t payload_bytes_{0};

  friend class Communicator;
};

}  // namespace pdc::mp
