// pdceval -- tool runtime: the messaging fabric one tool instance owns on
// one cluster.
//
// The runtime owns per-rank mailboxes and the per-node auxiliary resources
// (pvmd daemons, Express background receive engines) and implements the
// kernel transfer pipeline: sender stack -> wire -> receiver stack, as a
// chain of scheduled events so every resource reservation happens at its
// own moment in simulated time (exact FIFO queueing).
//
// On a reliable wire (every catalogued physical network) the pipeline is
// exactly that three-hop chain. When the cluster's network reports
// `reliable() == false` (the fault-injection decorator with an armed plan)
// the kernel switches to a reliable transport: per-link sequence numbers,
// CRC32 on the payload, receiver-side dedup and in-order release, and
// ack/timeout/retransmission with capped exponential backoff -- all as
// scheduled events on the same queue, so runs stay bit-reproducible.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "host/platform.hpp"
#include "mp/message.hpp"
#include "mp/profile.hpp"
#include "mp/tool.hpp"
#include "sim/mailbox.hpp"
#include "sim/pooled_function.hpp"
#include "sim/resource.hpp"

namespace pdc::mp {

class Communicator;

// TagSourceMatch spells the "no bucket" sentinel out (to stay free of the
// simulation kernel headers); pin it to the mailbox's definition here,
// where both headers meet.
static_assert(TagSourceMatch{kAnySource, kAnyTag}.bucket_key() == sim::kAnyBucket);
static_assert(TagSourceMatch{7, kAnyTag}.bucket_key() == 7);

/// Reliability work performed by one rank's transport (all zero on a
/// reliable wire). `drops_seen` counts frames this rank transmitted that
/// the wire lost (data frames at the sender, acks at the receiver);
/// `corrupt_rejected` and `dup_discarded` count at the receiving rank.
struct TransportStats {
  std::int64_t retransmits{0};
  std::int64_t drops_seen{0};
  std::int64_t corrupt_rejected{0};
  std::int64_t dup_discarded{0};

  TransportStats& operator+=(const TransportStats& o) noexcept {
    retransmits += o.retransmits;
    drops_seen += o.drops_seen;
    corrupt_rejected += o.corrupt_rejected;
    dup_discarded += o.dup_discarded;
    return *this;
  }
  friend bool operator==(const TransportStats&, const TransportStats&) = default;
};

/// A message exhausted its retransmission budget (the link is effectively
/// down for longer than the transport is willing to wait).
class TransportFailure : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A contiguous slice of a cluster's nodes. A Runtime built over a range
/// exposes a dense rank space 0..count-1 whose rank r lives on physical
/// node base + r -- the multi-tenant scheduler places every job on such a
/// slice, so concurrent jobs on one cluster each see an ordinary
/// 0-based communicator while their traffic shares the physical fabric.
struct NodeRange {
  int base{0};
  int count{0};
};

class Runtime {
 public:
  Runtime(host::Cluster& cluster, ToolKind kind);
  /// Run with an explicit cost profile instead of a catalogued tool's --
  /// the hook for evaluating hypothetical or future tools against the 1995
  /// field (the paper's second objective: "defining the requirements of
  /// future systems"). `kind` only labels the runtime.
  Runtime(host::Cluster& cluster, ToolKind kind, ToolProfile profile);
  /// A runtime spanning only `range` of the cluster (a scheduler job's
  /// allocation). Ranks are job-local; the whole-cluster constructors are
  /// the degenerate range {0, cluster.size()}, bit-identical to before the
  /// range existed.
  Runtime(host::Cluster& cluster, ToolKind kind, ToolProfile profile, NodeRange range);
  ~Runtime();
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  [[nodiscard]] ToolKind kind() const noexcept { return kind_; }
  [[nodiscard]] int size() const noexcept { return range_.count; }
  [[nodiscard]] host::Cluster& cluster() noexcept { return cluster_; }
  [[nodiscard]] sim::Simulation& sim() noexcept { return cluster_.simulation(); }
  [[nodiscard]] const ToolProfile& profile() const noexcept { return profile_; }

  /// Physical node id of a runtime-local rank (identity for whole-cluster
  /// runtimes). Every touch of a Node or of the network goes through this.
  [[nodiscard]] net::NodeId node_of(int rank) const noexcept {
    return static_cast<net::NodeId>(range_.base + rank);
  }
  [[nodiscard]] host::Node& node(int rank) { return cluster_.node(node_of(rank)); }

  [[nodiscard]] Communicator& comm(int rank);

  // Per-rank fabric state is created on first touch: a P=4096 cell whose
  // traffic involves a handful of ranks materialises a handful of
  // mailboxes, and p4/Express runs never pay for pvmd daemons at all.
  // Lazily-created resources start idle, exactly as eager ones would be at
  // first use, so results are bit-identical to the eager layout.
  [[nodiscard]] sim::Mailbox<Message>& mailbox(int rank) {
    auto& slot = mailboxes_.at(static_cast<std::size_t>(rank));
    if (!slot) {
      slot = std::make_unique<sim::Mailbox<Message>>(
          sim(), +[](const Message& m) { return m.src; });
    }
    return *slot;
  }
  [[nodiscard]] sim::SerialResource& daemon(int rank) {
    return lazy_resource(daemons_, rank, "pvmd#");
  }
  [[nodiscard]] sim::SerialResource& rx_engine(int rank) {
    return lazy_resource(rx_engines_, rank, "rxengine#");
  }
  [[nodiscard]] sim::SerialResource& tx_engine(int rank) {
    return lazy_resource(tx_engines_, rank, "txengine#");
  }

  /// Mailboxes actually created (O(active) state pins in tests).
  [[nodiscard]] std::size_t active_mailboxes() const noexcept {
    std::size_t n = 0;
    for (const auto& m : mailboxes_) n += m != nullptr;
    return n;
  }

  /// Matching telemetry summed over every created mailbox (counters sum,
  /// peak depth is the max across ranks).
  [[nodiscard]] sim::MailboxStats mailbox_total() const noexcept {
    sim::MailboxStats total;
    for (const auto& m : mailboxes_) {
      if (m) total += m->stats();
    }
    return total;
  }

  /// Push `bytes` through sender stack -> network -> receiver stack,
  /// starting now. Returns the sender-stack completion time (what a
  /// blocking send waits for); invokes `delivered` (via the scheduler) when
  /// the receiver's kernel has the data. `wire_data` is the payload the
  /// frame carries (checksummed by the reliable transport; may be null for
  /// overhead-only transfers). `chunked` selects the fragment+ack wire
  /// protocol (PVM daemon traffic). The continuation rides in a
  /// pool-backed callable so per-message delivery never hits malloc.
  /// `trace_id` correlates the wire hops with the originating send's trace
  /// records; 0 (the default, and always when tracing is inactive) records
  /// nothing.
  sim::TimePoint kernel_transfer(int src, int dst, std::int64_t bytes, Payload wire_data,
                                 sim::PooledFunction<void(sim::TimePoint)> delivered,
                                 std::optional<net::ChunkProtocol> chunked = std::nullopt,
                                 std::uint64_t trace_id = 0);

  /// Next message correlation id for trace records. Only called while a
  /// capture is active, so untraced runs never touch the counter and stay
  /// byte-identical whether or not tracing is compiled in.
  [[nodiscard]] std::uint64_t next_trace_msg_id() noexcept { return ++trace_msg_seq_; }

  /// Hand a message to rank `dst`'s mailbox at time `at`.
  void deliver_at(sim::TimePoint at, int dst, Message msg);

  /// Total messages moved through the fabric (reporting / tests). Relaxed
  /// atomics: sends on different shards bump them concurrently, and only
  /// the totals are observable (read after run() completes).
  [[nodiscard]] std::uint64_t messages_sent() const noexcept {
    return messages_sent_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t payload_bytes_sent() const noexcept {
    return payload_bytes_.load(std::memory_order_relaxed);
  }

  /// false iff the cluster network injects faults (cached at construction;
  /// wrap the network *before* building the Runtime).
  [[nodiscard]] bool reliable_wire() const noexcept { return reliable_wire_; }
  [[nodiscard]] const TransportStats& transport_stats(int rank) const {
    return transport_.at(static_cast<std::size_t>(rank));
  }
  [[nodiscard]] TransportStats transport_total() const noexcept;

 private:
  struct Flight;  // one reliable-transport message in flight (runtime.cpp)

  /// Receiver-side transport state of one directed link: the in-order
  /// release cursor and the reorder buffer.
  struct RxLink {
    std::uint64_t rx_next{0};
    std::map<std::uint64_t, std::shared_ptr<Flight>> rx_held;
  };

  /// Directed-link transport state, created on first use; O(active links),
  /// not O(P^2) (the seed's n*n vector cost ~1 GB at P=4096 before a single
  /// message moved). Split by owning side so the sharded loop never shares
  /// it across threads: the sender's sequence counter lives with src (bumped
  /// in kernel_transfer, on src's shard), the receive cursor + reorder
  /// buffer live with dst (touched in on_data_frame, on dst's shard). The
  /// outer per-rank slot tables are pre-sized, so concurrent first touches
  /// of different ranks never reallocate shared state.
  [[nodiscard]] std::uint64_t& tx_seq(int src, int dst) {
    auto& slot = tx_links_.at(static_cast<std::size_t>(src));
    if (!slot) slot = std::make_unique<std::unordered_map<int, std::uint64_t>>();
    return (*slot)[dst];
  }
  [[nodiscard]] RxLink& rx_link(int src, int dst) {
    auto& slot = rx_links_.at(static_cast<std::size_t>(dst));
    if (!slot) slot = std::make_unique<std::unordered_map<int, RxLink>>();
    return (*slot)[src];
  }

  [[nodiscard]] sim::SerialResource& lazy_resource(
      std::vector<std::unique_ptr<sim::SerialResource>>& slots, int rank, const char* prefix) {
    auto& slot = slots.at(static_cast<std::size_t>(rank));
    if (!slot) {
      slot = std::make_unique<sim::SerialResource>(sim(), prefix + std::to_string(rank));
    }
    return *slot;
  }

  void reliable_transfer(std::shared_ptr<Flight> flight, sim::TimePoint at);
  void transmit_attempt(const std::shared_ptr<Flight>& flight);
  void arm_retransmit(const std::shared_ptr<Flight>& flight, sim::TimePoint at);
  void on_data_frame(const std::shared_ptr<Flight>& flight, std::uint32_t wire_crc);
  void send_ack(const std::shared_ptr<Flight>& flight);
  void release_to_receiver(const std::shared_ptr<Flight>& flight);
  [[nodiscard]] sim::Duration rto(const Flight& flight) const noexcept;

  host::Cluster& cluster_;
  ToolKind kind_;
  ToolProfile profile_;
  NodeRange range_;
  bool reliable_wire_;
  std::vector<std::unique_ptr<sim::Mailbox<Message>>> mailboxes_;
  std::vector<std::unique_ptr<sim::SerialResource>> daemons_;
  std::vector<std::unique_ptr<sim::SerialResource>> rx_engines_;
  std::vector<std::unique_ptr<sim::SerialResource>> tx_engines_;
  std::vector<std::unique_ptr<Communicator>> comms_;
  std::vector<std::unique_ptr<std::unordered_map<int, std::uint64_t>>> tx_links_;  // [src] -> dst
  std::vector<std::unique_ptr<std::unordered_map<int, RxLink>>> rx_links_;         // [dst] -> src
  std::vector<TransportStats> transport_;  // per rank; sender fields written on
                                           // the hub, receiver fields on the
                                           // rank's shard (phase/merge disjoint)
  std::atomic<std::uint64_t> messages_sent_{0};
  std::atomic<std::uint64_t> payload_bytes_{0};
  std::uint64_t trace_msg_seq_{0};  // capture-only, and captures force serial

  friend class Communicator;
};

}  // namespace pdc::mp
