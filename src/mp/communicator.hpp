// pdceval -- the per-rank communication endpoint.
//
// One Communicator implementation serves all three tools; every behavioural
// difference (daemon routing, blocking semantics, packetisation, collective
// algorithms, missing primitives) is driven by the ToolProfile, so the
// architectural claims in DESIGN.md live in exactly one place and apply
// uniformly to micro-benchmarks and applications.
//
// All operations are coroutines: `co_await comm.send(...)`. Costs are
// billed in simulated time; payload bytes are really moved.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "host/node.hpp"
#include "mp/message.hpp"
#include "mp/profile.hpp"
#include "mp/runtime.hpp"
#include "sim/task.hpp"

namespace pdc::mp {

class Communicator {
 public:
  Communicator(Runtime& rt, int rank);
  Communicator(const Communicator&) = delete;
  Communicator& operator=(const Communicator&) = delete;

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept { return rt_.size(); }
  [[nodiscard]] sim::Simulation& sim() noexcept { return rt_.sim(); }
  [[nodiscard]] Runtime& runtime() noexcept { return rt_; }
  [[nodiscard]] host::Node& node() { return rt_.node(rank_); }
  [[nodiscard]] const ToolProfile& profile() const noexcept { return rt_.profile(); }

  /// Reliability work the transport did on this rank's behalf (all zero on
  /// a fault-free wire).
  [[nodiscard]] const TransportStats& transport_stats() const {
    return rt_.transport_stats(rank_);
  }

  // -- point to point ------------------------------------------------------

  /// Send `payload` to rank `dst` with `tag`. Blocking semantics follow the
  /// tool (p4/Express: returns when the kernel has taken the data; PVM:
  /// returns once the local pvmd has the buffer).
  sim::Task<void> send(int dst, int tag, Payload payload);

  /// Routing hint mirroring pvm_setopt(PvmRouteDirect): task-to-task TCP
  /// connections that bypass the pvmd daemons. Honoured by PVM only; a
  /// no-op for p4 and Express (which are always direct). Real PVM codes
  /// enabled this for symmetric all-to-all exchanges (PSRS, transposes) and
  /// kept the default daemon route in host-node codes, where a master
  /// holding sockets to every worker would exhaust descriptors.
  void set_route_direct(bool direct) noexcept { route_direct_ = direct; }
  [[nodiscard]] bool route_direct() const noexcept { return route_direct_; }

  /// Receive the oldest message matching (src, tag); kAnySource/kAnyTag act
  /// as wildcards.
  sim::Task<Message> recv(int src = kAnySource, int tag = kAnyTag);

  /// Non-blocking probe.
  [[nodiscard]] bool probe(int src = kAnySource, int tag = kAnyTag);

  // -- collectives ---------------------------------------------------------

  /// Broadcast `data` from `root` to everyone (in: root's payload; out:
  /// everyone holds a reference to the *same* immutable payload -- zero
  /// host copies at forwarding nodes and receivers). Algorithm per tool:
  /// p4 binomial tree, PVM sequential mcast, Express sequential
  /// exbroadcast.
  sim::Task<void> broadcast(int root, Payload& data, int tag);

  /// Owning-buffer convenience overload (in: root's bytes; out: everyone's
  /// own copy). Same simulated cost; one host copy-out per receiver.
  sim::Task<void> broadcast(int root, Bytes& data, int tag);

  /// Barrier: p4 tree, PVM coordinator round-trip, Express dissemination.
  sim::Task<void> barrier();

  [[nodiscard]] bool has_global_sum() const noexcept {
    return profile().reduce_algo != ToolProfile::ReduceAlgo::Unsupported;
  }

  /// Element-wise global sum; result replaces `v` on every rank.
  /// Throws ToolUnsupported for PVM (as in the paper).
  sim::Task<void> global_sum(std::vector<double>& v);
  sim::Task<void> global_sum(std::vector<std::int32_t>& v);

  // -- compute billing -----------------------------------------------------

  /// Bill floating-point work to this rank's simulated CPU.
  sim::Task<void> compute_flops(double flops);
  /// Bill integer/compare-bound work (sorting, encoding).
  sim::Task<void> compute_intops(double ops);
  /// Bill one memory copy of `bytes`.
  sim::Task<void> compute_copy(std::int64_t bytes);

 private:
  template <typename T>
  sim::Task<void> global_sum_impl(std::vector<T>& v);
  template <typename T>
  sim::Task<void> reduce_gather_broadcast(std::vector<T>& v);
  template <typename T>
  sim::Task<void> reduce_recursive_doubling(std::vector<T>& v);

  sim::Task<void> barrier_tree();
  sim::Task<void> barrier_dissemination();
  sim::Task<void> barrier_coordinator();

  [[nodiscard]] std::int64_t packets_for(std::int64_t bytes) const noexcept;
  [[nodiscard]] sim::Duration send_side_cost(std::int64_t bytes) const;
  [[nodiscard]] sim::Duration daemon_service(std::int64_t bytes) const;
  [[nodiscard]] sim::Duration daemon_latency(std::int64_t bytes, sim::Duration service) const;

  Runtime& rt_;
  int rank_;
  int barrier_seq_{0};  // parity for dissemination-barrier tag separation
  bool route_direct_{false};
};

// Internal tags (top of the tag space; user code should stay below 1<<20).
inline constexpr int kTagBarrier = (1 << 20) + 1;
inline constexpr int kTagBarrierRelease = (1 << 20) + 2;
inline constexpr int kTagReduce = (1 << 20) + 3;
inline constexpr int kTagReduceBcast = (1 << 20) + 4;

}  // namespace pdc::mp
