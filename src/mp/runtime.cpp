#include "mp/runtime.hpp"

#include <algorithm>
#include <span>
#include <string>
#include <utility>

#include "mp/checksum.hpp"
#include "mp/communicator.hpp"
#include "trace/probe.hpp"

namespace pdc::mp {

namespace {

constexpr std::int64_t kAckBytes = 64;       // sequence + CRC + framing
constexpr int kMaxAttempts = 64;             // then TransportFailure
constexpr int kMaxBackoffShift = 8;          // RTO doubling cap: base * 2^8
constexpr std::uint32_t kCorruptMask = 0xDEADBEEFu;  // wire CRC perturbation

[[nodiscard]] std::uint32_t payload_crc(const Payload& p) noexcept {
  if (!p) return crc32({});
  return crc32(std::span<const std::byte>(p->data(), p->size()));
}

}  // namespace

/// One reliable-transport message. Shared between the sender side (attempt
/// counter, retransmission deadline) and the receiver side (payload,
/// delivery continuation) -- the simulation is single-threaded, so this is
/// bookkeeping, not shared-memory cheating: every field change happens at a
/// definite simulated time on the side that owns it.
struct Runtime::Flight {
  int src{0};
  int dst{0};
  std::int64_t bytes{0};
  std::uint64_t seq{0};
  std::uint32_t crc{0};                 // CRC32 of `data`, computed at send
  Payload data;
  sim::PooledFunction<void(sim::TimePoint)> delivered;
  std::optional<net::ChunkProtocol> chunked;
  std::uint64_t trace_id{0};            // message correlation id (0: untraced)
  int attempt{0};
  bool completed{false};                // an ack reached the sender
  sim::TimePoint deadline{};            // current attempt's retransmission deadline
  sim::Duration rto_base{};
};

Runtime::Runtime(host::Cluster& cluster, ToolKind kind)
    : Runtime(cluster, kind, tool_profile(kind, cluster.platform())) {}

Runtime::Runtime(host::Cluster& cluster, ToolKind kind, ToolProfile profile)
    : Runtime(cluster, kind, std::move(profile), NodeRange{0, cluster.size()}) {}

Runtime::Runtime(host::Cluster& cluster, ToolKind kind, ToolProfile profile, NodeRange range)
    : cluster_(cluster),
      kind_(kind),
      profile_(profile),
      range_(range),
      reliable_wire_(cluster.network().reliable()) {
  if (range_.base < 0 || range_.count <= 0 || range_.base + range_.count > cluster.size()) {
    throw std::invalid_argument("Runtime: node range outside the cluster");
  }
  // Per-rank state is all create-on-first-touch; construction only sizes
  // the slot tables (one allocation each) so a 4096-rank cluster costs a
  // few vectors of null pointers until traffic actually flows.
  const auto n = static_cast<std::size_t>(range_.count);
  mailboxes_.resize(n);
  daemons_.resize(n);
  rx_engines_.resize(n);
  tx_engines_.resize(n);
  comms_.resize(n);
  tx_links_.resize(n);
  rx_links_.resize(n);
  transport_.resize(n);
}

Runtime::~Runtime() = default;

Communicator& Runtime::comm(int rank) {
  auto& slot = comms_.at(static_cast<std::size_t>(rank));
  if (!slot) slot = std::make_unique<Communicator>(*this, rank);
  return *slot;
}

TransportStats Runtime::transport_total() const noexcept {
  TransportStats total;
  for (const auto& t : transport_) total += t;
  return total;
}

sim::TimePoint Runtime::kernel_transfer(int src, int dst, std::int64_t bytes, Payload wire_data,
                                        sim::PooledFunction<void(sim::TimePoint)> delivered,
                                        std::optional<net::ChunkProtocol> chunked,
                                        std::uint64_t trace_id) {
  messages_sent_.fetch_add(1, std::memory_order_relaxed);
  payload_bytes_.fetch_add(static_cast<std::uint64_t>(bytes), std::memory_order_relaxed);
  auto& simulation = sim();
  auto& src_node = node(src);
  const sim::TimePoint t1 = src_node.stack().reserve(src_node.stack_service(bytes));

  if (reliable_wire_) {
    // Fast path: the wire delivers every frame intact exactly once, so no
    // sequencing/checksum/ack machinery runs (and fault-free timings stay
    // bit-identical to the pre-fault kernel). The wire hop touches shared
    // network resources, so under sharding it runs on the hub; the arrival
    // lands back on dst's shard (always beyond the lookahead horizon).
    simulation.schedule_hub(t1, [this, src, dst, bytes, chunked, trace_id,
                                 delivered = std::move(delivered)]() mutable {
      const net::NodeId s = node_of(src);
      const net::NodeId d = node_of(dst);
      const sim::TimePoint arrival =
          chunked ? cluster_.network().transfer_chunked(s, d, bytes, *chunked)
                  : cluster_.network().transfer(s, d, bytes);
      PDC_TRACE_BLOCK {
        trace::emit({.t_ns = sim().now().ns,
                     .bytes = bytes,
                     .aux0 = arrival.ns,
                     .aux1 = 1,  // single attempt on a reliable wire
                     .id = trace_id,
                     .kind = trace::Kind::MsgWire,
                     .rank = static_cast<std::int16_t>(s),
                     .peer = static_cast<std::int16_t>(d)});
      }
      sim().schedule_on_rank(
          node_of(dst), arrival, [this, dst, bytes, delivered = std::move(delivered)]() mutable {
            auto& dst_node = node(dst);
            const sim::TimePoint t2 = dst_node.stack().reserve(dst_node.stack_service(bytes));
            sim().schedule_at(t2, [delivered = std::move(delivered), t2] { delivered(t2); });
          });
    });
    return t1;
  }

  auto flight = std::make_shared<Flight>();
  flight->src = src;
  flight->dst = dst;
  flight->bytes = bytes;
  flight->seq = tx_seq(src, dst)++;  // send order == t1 order (FIFO src stack)
  flight->crc = payload_crc(wire_data);
  flight->data = std::move(wire_data);
  flight->delivered = std::move(delivered);
  flight->chunked = chunked;
  flight->trace_id = trace_id;
  const auto& network = cluster_.network();
  const double round_trip_s =
      static_cast<double>(network.wire_bytes(bytes) + network.wire_bytes(kAckBytes)) * 8.0 /
      network.line_rate_bps();
  flight->rto_base = sim::from_seconds(4.0 * round_trip_s) + sim::milliseconds(2);
  reliable_transfer(std::move(flight), t1);
  return t1;
}

void Runtime::reliable_transfer(std::shared_ptr<Flight> flight, sim::TimePoint at) {
  // Transmission (wire fate, retransmission timers, sender-side flight
  // state) is hub work: it reads shared network resources and the fault
  // plan's RNG, whose draw order must match the serial run exactly.
  sim().schedule_hub(at, [this, flight = std::move(flight)] { transmit_attempt(flight); });
}

sim::Duration Runtime::rto(const Flight& flight) const noexcept {
  const int shift = std::min(flight.attempt - 1, kMaxBackoffShift);
  const sim::Duration backed_off = flight.rto_base * (std::int64_t{1} << shift);
  // Absolute cap, but never below one base RTO -- a timeout shorter than
  // the round trip itself would retransmit unconditionally.
  return std::min(backed_off, std::max(sim::milliseconds(500), flight.rto_base));
}

void Runtime::transmit_attempt(const std::shared_ptr<Flight>& flight) {
  if (flight->completed) return;  // a late ack landed after this was scheduled
  if (flight->attempt >= kMaxAttempts) {
    throw TransportFailure("reliable transport: message " + std::to_string(flight->seq) +
                           " on link " + std::to_string(flight->src) + "->" +
                           std::to_string(flight->dst) + " exceeded " +
                           std::to_string(kMaxAttempts) + " transmission attempts");
  }
  ++flight->attempt;
  auto& network = cluster_.network();
  const net::NodeId src_node = node_of(flight->src);
  const net::NodeId dst_node = node_of(flight->dst);
  const net::Delivery d =
      flight->chunked
          ? network.transmit_chunked(src_node, dst_node, flight->bytes, *flight->chunked)
          : network.transmit(src_node, dst_node, flight->bytes);
  flight->deadline = sim().now() + rto(*flight);
  PDC_TRACE_BLOCK {
    if (!d.dropped) {
      trace::emit({.t_ns = sim().now().ns,
                   .bytes = flight->bytes,
                   .aux0 = d.arrival.ns,
                   .aux1 = flight->attempt,
                   .id = flight->trace_id,
                   .kind = trace::Kind::MsgWire,
                   .rank = static_cast<std::int16_t>(src_node),
                   .peer = static_cast<std::int16_t>(dst_node)});
    }
  }

  // The event queue has no erase, so a timer armed "just in case" would pop
  // as a clock-holding no-op even after an ack cancels it. Instead the
  // kernel -- which already knows this frame's fate from the Delivery --
  // arms a retransmission only on paths where no ack can come back (drop,
  // corruption) or where the ack itself is known lost/late (send_ack). The
  // *timing* is exactly what a real timeout-driven sender would produce;
  // only the pointless no-op events are skipped.
  if (d.dropped) {
    ++transport_[static_cast<std::size_t>(flight->src)].drops_seen;
    PDC_TRACE_BLOCK {
      trace::emit({.t_ns = sim().now().ns,
                   .bytes = flight->bytes,
                   .aux0 = flight->attempt,
                   .id = flight->seq,
                   .kind = trace::Kind::FrameDrop,
                   .rank = static_cast<std::int16_t>(flight->src),
                   .peer = static_cast<std::int16_t>(flight->dst)});
    }
    arm_retransmit(flight, flight->deadline);
    return;
  }
  const std::uint32_t wire_crc = d.corrupted ? (flight->crc ^ kCorruptMask) : flight->crc;
  // Frame reception (CRC check, dedup, in-order release into dst's stack)
  // is dst-rank work: it lands on dst's shard, beyond the lookahead horizon.
  sim().schedule_on_rank(dst_node, d.arrival,
                         [this, flight, wire_crc] { on_data_frame(flight, wire_crc); });
  if (d.duplicated) {
    sim().schedule_on_rank(dst_node, d.dup_arrival,
                           [this, flight, wire_crc] { on_data_frame(flight, wire_crc); });
  }
  if (d.corrupted) {
    // The receiver will reject both copies on CRC and stay silent.
    arm_retransmit(flight, flight->deadline);
  }
}

void Runtime::arm_retransmit(const std::shared_ptr<Flight>& flight, sim::TimePoint at) {
  const sim::TimePoint when = std::max(at, sim().now());
  const int armed_for = flight->attempt;
  sim().schedule_at(when, [this, flight, armed_for] {
    // Superseded if an ack completed the flight, or another event (a second
    // lost ack for the same attempt) already retransmitted it.
    if (flight->completed || flight->attempt != armed_for) return;
    ++transport_[static_cast<std::size_t>(flight->src)].retransmits;
    PDC_TRACE_BLOCK {
      trace::emit({.t_ns = sim().now().ns,
                   .bytes = flight->bytes,
                   .aux0 = armed_for,
                   .id = flight->seq,
                   .kind = trace::Kind::Retransmit,
                   .rank = static_cast<std::int16_t>(flight->src),
                   .peer = static_cast<std::int16_t>(flight->dst)});
    }
    transmit_attempt(flight);
  });
}

void Runtime::on_data_frame(const std::shared_ptr<Flight>& flight, std::uint32_t wire_crc) {
  if (payload_crc(flight->data) != wire_crc) {
    ++transport_[static_cast<std::size_t>(flight->dst)].corrupt_rejected;
    PDC_TRACE_BLOCK {
      trace::emit({.t_ns = sim().now().ns,
                   .bytes = flight->bytes,
                   .id = flight->seq,
                   .kind = trace::Kind::CorruptReject,
                   .rank = static_cast<std::int16_t>(flight->dst),
                   .peer = static_cast<std::int16_t>(flight->src)});
    }
    return;  // no ack; the sender's retransmission timer is already armed
  }
  RxLink& ls = rx_link(flight->src, flight->dst);
  if (flight->seq < ls.rx_next || ls.rx_held.contains(flight->seq)) {
    // Duplicate (wire duplication or a spurious retransmission). Re-ack so
    // a sender that missed the first ack stops resending.
    ++transport_[static_cast<std::size_t>(flight->dst)].dup_discarded;
    PDC_TRACE_BLOCK {
      trace::emit({.t_ns = sim().now().ns,
                   .bytes = flight->bytes,
                   .id = flight->seq,
                   .kind = trace::Kind::DupDiscard,
                   .rank = static_cast<std::int16_t>(flight->dst),
                   .peer = static_cast<std::int16_t>(flight->src)});
    }
    // The ack is hub work (reverse-path wire + sender flight state); it must
    // be the event's last action so its pushes extend this event's block.
    sim().schedule_hub_inline([this, flight] { send_ack(flight); });
    return;
  }
  ls.rx_held.emplace(flight->seq, flight);
  while (!ls.rx_held.empty() && ls.rx_held.begin()->first == ls.rx_next) {
    auto ready = ls.rx_held.begin()->second;
    ls.rx_held.erase(ls.rx_held.begin());
    ++ls.rx_next;
    release_to_receiver(ready);
  }
  sim().schedule_hub_inline([this, flight] { send_ack(flight); });
}

void Runtime::release_to_receiver(const std::shared_ptr<Flight>& flight) {
  auto& dst_node = node(flight->dst);
  const sim::TimePoint t2 = dst_node.stack().reserve(dst_node.stack_service(flight->bytes));
  sim().schedule_at(t2, [flight, t2] { flight->delivered(t2); });
}

void Runtime::send_ack(const std::shared_ptr<Flight>& flight) {
  auto& network = cluster_.network();
  // The ack is a real frame on the reverse link: it contends for the wire
  // and is subject to the same fault plan as data.
  const net::Delivery a =
      network.transmit(node_of(flight->dst), node_of(flight->src), kAckBytes);
  if (a.dropped || a.corrupted) {
    // Lost ack (a corrupted ack fails the sender's CRC and is dropped
    // there). Charged to this rank: it transmitted the frame the wire ate.
    ++transport_[static_cast<std::size_t>(flight->dst)].drops_seen;
    PDC_TRACE_BLOCK {
      trace::emit({.t_ns = sim().now().ns,
                   .bytes = kAckBytes,
                   .aux0 = flight->attempt,
                   .id = flight->seq,
                   .kind = trace::Kind::FrameDrop,
                   .rank = static_cast<std::int16_t>(flight->dst),
                   .peer = static_cast<std::int16_t>(flight->src)});
    }
    arm_retransmit(flight, flight->deadline);
    return;
  }
  if (a.arrival > flight->deadline) {
    // The ack will land after the timeout: a real sender retransmits
    // spuriously at the deadline (the receiver dedups the extra copy).
    arm_retransmit(flight, flight->deadline);
  }
  sim().schedule_at(a.arrival, [flight] { flight->completed = true; });
  // Wire duplication of the ack needs no handling: a second ack for a
  // completed flight is a no-op.
}

void Runtime::deliver_at(sim::TimePoint at, int dst, Message msg) {
  sim().schedule_at(at, [this, dst, msg = std::move(msg)] { mailbox(dst).push(msg); });
}

}  // namespace pdc::mp
