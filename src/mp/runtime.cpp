#include "mp/runtime.hpp"

#include <utility>

#include "mp/communicator.hpp"

namespace pdc::mp {

Runtime::Runtime(host::Cluster& cluster, ToolKind kind)
    : Runtime(cluster, kind, tool_profile(kind, cluster.platform())) {}

Runtime::Runtime(host::Cluster& cluster, ToolKind kind, ToolProfile profile)
    : cluster_(cluster), kind_(kind), profile_(profile) {
  auto& sim = cluster_.simulation();
  const int n = cluster_.size();
  for (int r = 0; r < n; ++r) {
    mailboxes_.push_back(std::make_unique<sim::Mailbox<Message>>(sim));
    daemons_.push_back(
        std::make_unique<sim::SerialResource>(sim, "pvmd#" + std::to_string(r)));
    rx_engines_.push_back(
        std::make_unique<sim::SerialResource>(sim, "rxengine#" + std::to_string(r)));
    tx_engines_.push_back(
        std::make_unique<sim::SerialResource>(sim, "txengine#" + std::to_string(r)));
  }
  for (int r = 0; r < n; ++r) {
    comms_.push_back(std::make_unique<Communicator>(*this, r));
  }
}

Runtime::~Runtime() = default;

Communicator& Runtime::comm(int rank) { return *comms_.at(static_cast<std::size_t>(rank)); }

sim::TimePoint Runtime::kernel_transfer(int src, int dst, std::int64_t bytes,
                                        sim::PooledFunction<void(sim::TimePoint)> delivered,
                                        std::optional<net::ChunkProtocol> chunked) {
  ++messages_sent_;
  payload_bytes_ += static_cast<std::uint64_t>(bytes);
  auto& simulation = sim();
  auto& src_node = cluster_.node(src);
  const sim::TimePoint t1 = src_node.stack().reserve(src_node.stack_service(bytes));
  simulation.schedule_at(t1, [this, src, dst, bytes, chunked,
                              delivered = std::move(delivered)]() mutable {
    const sim::TimePoint arrival =
        chunked ? cluster_.network().transfer_chunked(src, dst, bytes, *chunked)
                : cluster_.network().transfer(src, dst, bytes);
    sim().schedule_at(arrival, [this, dst, bytes, delivered = std::move(delivered)]() mutable {
      auto& dst_node = cluster_.node(dst);
      const sim::TimePoint t2 = dst_node.stack().reserve(dst_node.stack_service(bytes));
      sim().schedule_at(t2, [delivered = std::move(delivered), t2] { delivered(t2); });
    });
  });
  return t1;
}

void Runtime::deliver_at(sim::TimePoint at, int dst, Message msg) {
  sim().schedule_at(at, [this, dst, msg = std::move(msg)] { mailbox(dst).push(msg); });
}

}  // namespace pdc::mp
