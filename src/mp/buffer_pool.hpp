// pdceval -- thread-local, size-class buffer pool for payload bytes.
//
// The message layer moves real data: every send packs a fresh `Bytes`
// vector and every payload dies when the last receiver drops it. Without a
// pool that is one malloc/free round trip per message *of host time* --
// pure measurement perturbation, since simulated costs are billed
// separately. The pool recycles payload storage through power-of-two size
// classes instead: `acquire` serves a cached buffer whose capacity covers
// the request, and payload destruction (see `make_payload`'s deleter
// machinery in message.hpp) hands the storage back.
//
// Thread safety by construction: the pool is strictly thread-local
// (`BufferPool::local()`), so the parallel sweep runner's workers each
// recycle through their own instance and no buffer is ever visible to two
// threads. A payload that migrates threads is simply released into the
// destroying thread's pool -- correct, just a different free list. Within
// one simulation every rank runs on one host thread, which is what makes
// the hit rate high: rank A's dropped payload serves rank B's next pack.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace pdc::mp {

/// Raw payload bytes. Canonical alias (message.hpp re-exports it).
using Bytes = std::vector<std::byte>;

class BufferPool {
 public:
  struct Stats {
    std::uint64_t hits{0};            ///< acquires served from a free list
    std::uint64_t misses{0};          ///< acquires that had to allocate
    std::uint64_t releases{0};        ///< buffers returned to a free list
    std::uint64_t discards{0};        ///< returned buffers dropped (full/tiny/disabled)
    std::uint64_t bytes_recycled{0};  ///< total capacity served from free lists

    [[nodiscard]] double hit_rate() const noexcept {
      const auto total = hits + misses;
      return total > 0 ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
    }
  };

  BufferPool() = default;
  ~BufferPool();
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// The calling thread's pool.
  [[nodiscard]] static BufferPool& local();

  /// A buffer of exactly `n` bytes (value-initialised), with capacity
  /// rounded up to the size class so it is recyclable on release.
  [[nodiscard]] Bytes acquire(std::size_t n);

  /// Return a buffer's storage to the free list of its capacity class.
  /// Buffers below the smallest class, beyond the per-class cap, or
  /// received while the pool is disabled are simply freed.
  void release(Bytes&& b) noexcept;

  /// Fixed-size node recycling for `make_payload`'s allocate_shared control
  /// blocks (one node = shared_ptr control block + the Bytes header).
  [[nodiscard]] void* allocate_node(std::size_t bytes);
  void deallocate_node(void* p, std::size_t bytes) noexcept;

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = Stats{}; }

  /// Drop every cached buffer and node (memory hygiene between sweeps).
  void trim() noexcept;

  /// Disabled: acquire always allocates, release/deallocate always free.
  /// The benches use this for before/after allocation ablations.
  void set_enabled(bool on) noexcept { enabled_ = on; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Buffers currently cached across all classes (tests/telemetry).
  [[nodiscard]] std::size_t cached_buffers() const noexcept;

 private:
  static constexpr std::size_t kMinClassLog2 = 6;   // 64 B
  static constexpr std::size_t kMaxClassLog2 = 22;  // 4 MB
  static constexpr std::size_t kClasses = kMaxClassLog2 - kMinClassLog2 + 1;
  static constexpr std::size_t kMaxPerClass = 64;
  static constexpr std::size_t kMaxNodes = 256;

  [[nodiscard]] static constexpr std::size_t class_size(std::size_t idx) noexcept {
    return std::size_t{1} << (kMinClassLog2 + idx);
  }
  /// Smallest class whose size covers `n` (may be == kClasses: oversize).
  [[nodiscard]] static std::size_t class_ceil(std::size_t n) noexcept {
    const auto w = static_cast<std::size_t>(std::bit_width(n > 0 ? n - 1 : 0));
    return w <= kMinClassLog2 ? 0 : w - kMinClassLog2;
  }
  /// Largest class whose size fits within `capacity` (callers pre-check
  /// capacity >= the smallest class size).
  [[nodiscard]] static std::size_t class_floor(std::size_t capacity) noexcept {
    return static_cast<std::size_t>(std::bit_width(capacity)) - 1 - kMinClassLog2;
  }

  std::array<std::vector<Bytes>, kClasses> free_;
  std::vector<void*> nodes_;    ///< recycled allocate_shared nodes
  std::size_t node_size_{0};    ///< the (single) node size seen so far
  Stats stats_;
  bool enabled_{true};
};

}  // namespace pdc::mp
