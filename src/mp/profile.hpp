// pdceval -- per-tool, per-platform cost profiles.
//
// Every architectural difference the paper attributes to a tool is carried
// here as an explicit, documented constant, consumed mechanically by the
// communicator implementations:
//
//   p4       direct TCP, blocking send, one send-side copy, binomial
//            collectives. Lowest overheads everywhere (paper Table 4).
//   PVM      fire-and-forget sends routed through per-host single-threaded
//            pvmd daemons (IPC copy + per-4KB-fragment processing), XDR
//            pack/unpack in the application, sequential mcast, barrier via
//            coordinator, NO global reduction.
//   Express  heavier buffer layer that packetises messages (per-packet cost
//            split between sender and a background receive engine that
//            overlaps with the wire -- the "continuous flow" behaviour the
//            paper observes in the ring test), sequential broadcast, but a
//            well-tuned excombine/exsync; its Alpha and SP-1 native ports
//            are markedly better than its SUN port (quality factor).
//
// Fixed costs are specified at a 33 MHz reference clock and scaled by the
// platform clock; per-byte costs are multiples of the platform's copy rate.
// Calibration targets: paper Table 3 (see EXPERIMENTS.md).
#pragma once

#include <cstdint>

#include "host/platform.hpp"
#include "mp/tool.hpp"
#include "sim/time.hpp"

namespace pdc::mp {

struct ToolProfile {
  // Application-level fixed costs (already scaled to the platform's clock).
  sim::Duration send_fixed;
  sim::Duration recv_fixed;
  // Application-level per-byte copy/encode costs, multiples of cpu.copy().
  double send_copies{0};
  double recv_copies{0};
  /// true: receive-side processing runs on a background per-node engine
  /// (pipelines with the wire); false: billed in the receiving process.
  bool recv_in_background{false};
  /// true: send-side copies/packetisation run on a background per-node tx
  /// engine after a short fixed handoff (Express's buffer layer -- the
  /// "continuous flow" behaviour of the paper's ring test). The work still
  /// precedes the wire for each message, so one-at-a-time exchanges (ping-
  /// pong) pay full cost; only streaming overlaps.
  bool send_in_background{false};

  // Daemon routing (PVM).
  bool via_daemon{false};
  sim::Duration daemon_fixed;       ///< per daemon traversal
  double daemon_copies{0};          ///< IPC copy, multiples of cpu.copy()
  std::int64_t daemon_fragment{0};  ///< pvmd fragment size (bytes)
  sim::Duration daemon_per_fragment;
  /// Service inflation when the daemon is already backlogged: the single-
  /// threaded pvmd thrashes between concurrent inbound/outbound streams and
  /// the application IPC (context switches, interleaved fragment queues).
  /// One message at a time (ping-pong) never pays this; the ring's
  /// simultaneous in+out traffic always does -- which is exactly the
  /// anomaly the paper reports in Figure 3.
  double daemon_duplex_penalty{1.0};

  /// true: send returns when the sender's kernel stack has taken the data
  /// (p4/Express over TCP). false: send returns after local processing only
  /// (PVM hands off to the daemon and continues).
  bool blocking_send{true};

  // Packetisation in the tool's own buffer layer (Express).
  std::int64_t packet_bytes{0};
  sim::Duration per_packet_send;
  sim::Duration per_packet_recv;

  /// Extra fixed cost per collective tree/dissemination step.
  sim::Duration collective_step;

  /// Broadcast/barrier/combine algorithm selection.
  enum class BroadcastAlgo { BinomialTree, SequentialFromRoot } broadcast_algo{
      BroadcastAlgo::BinomialTree};
  enum class BarrierAlgo { Tree, Dissemination, Coordinator } barrier_algo{BarrierAlgo::Tree};
  enum class ReduceAlgo { GatherBroadcastTree, RecursiveDoubling, Unsupported } reduce_algo{
      ReduceAlgo::GatherBroadcastTree};
};

/// The calibrated profile of `kind` on `platform`.
[[nodiscard]] ToolProfile tool_profile(ToolKind kind, host::PlatformId platform);

}  // namespace pdc::mp
