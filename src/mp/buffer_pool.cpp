#include "mp/buffer_pool.hpp"

#include <new>

namespace pdc::mp {

BufferPool& BufferPool::local() {
  static thread_local BufferPool pool;
  return pool;
}

BufferPool::~BufferPool() { trim(); }

Bytes BufferPool::acquire(std::size_t n) {
  if (n == 0) {
    ++stats_.misses;
    return Bytes{};
  }
  const std::size_t ci = class_ceil(n);
  if (enabled_ && ci < kClasses && !free_[ci].empty()) {
    Bytes b = std::move(free_[ci].back());
    free_[ci].pop_back();
    ++stats_.hits;
    stats_.bytes_recycled += b.capacity();
    b.resize(n);  // capacity >= class size >= n: never reallocates
    return b;
  }
  ++stats_.misses;
  Bytes b;
  // Round fresh capacity up to the class size so this buffer slots into a
  // free list when it comes back.
  if (enabled_ && ci < kClasses) b.reserve(class_size(ci));
  b.resize(n);
  return b;
}

void BufferPool::release(Bytes&& b) noexcept {
  if (!enabled_ || b.capacity() < class_size(0)) {
    ++stats_.discards;
    return;
  }
  // Oversize capacities still serve the top class (capacity >= class size).
  const std::size_t ci = std::min(class_floor(b.capacity()), kClasses - 1);
  if (free_[ci].size() >= kMaxPerClass) {
    ++stats_.discards;
    return;
  }
  b.clear();
  try {
    free_[ci].push_back(std::move(b));
  } catch (...) {  // free-list growth failed: just let the buffer die
    ++stats_.discards;
    return;
  }
  ++stats_.releases;
}

void* BufferPool::allocate_node(std::size_t bytes) {
  if (node_size_ == 0) node_size_ = bytes;
  if (enabled_ && bytes == node_size_ && !nodes_.empty()) {
    void* p = nodes_.back();
    nodes_.pop_back();
    return p;
  }
  return ::operator new(bytes);
}

void BufferPool::deallocate_node(void* p, std::size_t bytes) noexcept {
  if (enabled_ && bytes == node_size_ && nodes_.size() < kMaxNodes) {
    try {
      nodes_.push_back(p);
      return;
    } catch (...) {  // fall through to plain delete
    }
  }
  ::operator delete(p);
}

void BufferPool::trim() noexcept {
  for (auto& cls : free_) {
    cls.clear();
    cls.shrink_to_fit();
  }
  for (void* p : nodes_) ::operator delete(p);
  nodes_.clear();
  nodes_.shrink_to_fit();
}

std::size_t BufferPool::cached_buffers() const noexcept {
  std::size_t total = 0;
  for (const auto& cls : free_) total += cls.size();
  return total;
}

}  // namespace pdc::mp
