#include "mp/communicator.hpp"

#include <algorithm>
#include <stdexcept>

#include "mp/pack.hpp"
#include "trace/probe.hpp"

namespace pdc::mp {

Communicator::Communicator(Runtime& rt, int rank) : rt_(rt), rank_(rank) {}

std::int64_t Communicator::packets_for(std::int64_t bytes) const noexcept {
  const auto& p = profile();
  if (p.packet_bytes <= 0) return 0;
  return std::max<std::int64_t>(1, (bytes + p.packet_bytes - 1) / p.packet_bytes);
}

sim::Duration Communicator::send_side_cost(std::int64_t bytes) const {
  const auto& p = profile();
  const auto& cpu = rt_.node(rank_).cpu();
  sim::Duration d = p.send_fixed + sim::from_seconds(p.send_copies * cpu.copy(bytes).seconds());
  d += packets_for(bytes) * p.per_packet_send;
  return d;
}

sim::Duration Communicator::daemon_service(std::int64_t bytes) const {
  const auto& p = profile();
  const auto& cpu = rt_.node(rank_).cpu();
  const std::int64_t frags =
      p.daemon_fragment > 0
          ? std::max<std::int64_t>(1, (bytes + p.daemon_fragment - 1) / p.daemon_fragment)
          : 1;
  return p.daemon_fixed + sim::from_seconds(p.daemon_copies * cpu.copy(bytes).seconds()) +
         frags * p.daemon_per_fragment;
}

sim::Duration Communicator::daemon_latency(std::int64_t bytes, sim::Duration service) const {
  // Pipeline-fill latency: route lookup plus one fragment's processing --
  // unless the daemon itself is slower than the wire, in which case the
  // critical path grows by the difference (the wire drains faster than the
  // daemon produces).
  const auto& p = profile();
  const auto& cpu = rt_.node(rank_).cpu();
  const auto& network = rt_.cluster().network();
  const sim::Duration wire = sim::from_seconds(
      static_cast<double>(network.wire_bytes(bytes)) * 8.0 / network.line_rate_bps());
  const sim::Duration fill =
      p.daemon_fixed + p.daemon_per_fragment +
      sim::from_seconds(p.daemon_copies *
                        cpu.copy(std::min(bytes, p.daemon_fragment)).seconds());
  return std::max(fill, service - wire);
}

bool Communicator::probe(int src, int tag) {
  return rt_.mailbox(rank_).poll(TagSourceMatch{src, tag});
}

sim::Task<void> Communicator::send(int dst, int tag, Payload payload) {
  if (dst < 0 || dst >= size()) throw std::out_of_range("Communicator::send: bad destination");
  const std::int64_t n = payload ? static_cast<std::int64_t>(payload->size()) : 0;
  const auto& prof = profile();

  [[maybe_unused]] std::uint64_t trace_id = 0;
  [[maybe_unused]] std::int64_t send_begin_ns = 0;
  PDC_TRACE_BLOCK {
    trace_id = rt_.next_trace_msg_id();
    send_begin_ns = sim().now().ns;
    trace::emit({.t_ns = send_begin_ns,
                 .bytes = n,
                 .id = trace_id,
                 .kind = trace::Kind::SendBegin,
                 .rank = static_cast<std::int16_t>(rank_),
                 .peer = static_cast<std::int16_t>(dst),
                 .tag = tag});
  }
  // Closes the blocking span at each of send's exits (the blocking shapes
  // differ per tool: see the co_returns below).
  auto emit_send_end = [&] {
    PDC_TRACE_BLOCK {
      trace::emit({.t_ns = sim().now().ns,
                   .bytes = n,
                   .aux1 = send_begin_ns,
                   .id = trace_id,
                   .kind = trace::Kind::SendEnd,
                   .rank = static_cast<std::int16_t>(rank_),
                   .peer = static_cast<std::int16_t>(dst),
                   .tag = tag});
    }
  };

  // Application-side processing. With a background tx engine (Express) the
  // application only pays the fixed handoff; the copies/packetisation run
  // on the engine ahead of the wire.
  const sim::Duration app_cost = prof.send_in_background ? prof.send_fixed : send_side_cost(n);
  PDC_TRACE_BLOCK {
    trace::emit({.t_ns = sim().now().ns,
                 .bytes = n,
                 .aux0 = app_cost.ns,
                 .id = trace_id,
                 .kind = trace::Kind::Pack,
                 .rank = static_cast<std::int16_t>(rank_),
                 .peer = static_cast<std::int16_t>(dst),
                 .tag = tag});
  }
  co_await sim().delay(app_cost);

  Message msg{rank_, tag, payload ? std::move(payload) : empty_payload(), trace_id};

  if (dst == rank_) {
    // Loopback: one memory copy, no wire.
    const sim::TimePoint at = sim().now() + node().cpu().copy(n);
    rt_.deliver_at(at, dst, std::move(msg));
    emit_send_end();
    co_return;
  }

  if (prof.send_in_background) {
    const auto& cpu = node().cpu();
    const sim::Duration engine_work =
        sim::from_seconds(prof.send_copies * cpu.copy(n).seconds()) +
        packets_for(n) * prof.per_packet_send;
    const sim::TimePoint e1 = rt_.tx_engine(rank_).reserve(engine_work);
    Runtime* rt = &rt_;
    const int src_rank = rank_;
    const bool background = prof.recv_in_background;
    const double recv_copies = prof.recv_copies;
    const sim::Duration per_packet_recv = packets_for(n) * prof.per_packet_recv;
    rt_.sim().schedule_at(e1, [rt, src_rank, dst, n, background, recv_copies,
                               per_packet_recv, trace_id, msg = std::move(msg)]() mutable {
      // Hoist before the call: `msg` is moved into the continuation, and
      // argument evaluation order is unspecified.
      Payload frame = msg.data;
      rt->kernel_transfer(
          src_rank, dst, n, std::move(frame),
          [rt, dst, n, background, recv_copies, per_packet_recv,
           msg = std::move(msg)](sim::TimePoint t2) mutable {
            if (background) {
              const auto& cpu = rt->node(dst).cpu();
              const sim::Duration service =
                  sim::from_seconds(recv_copies * cpu.copy(n).seconds()) + per_packet_recv;
              const sim::TimePoint b = rt->rx_engine(dst).reserve(service);
              rt->deliver_at(b, dst, std::move(msg));
            } else {
              rt->deliver_at(t2, dst, std::move(msg));
            }
          },
          std::nullopt, trace_id);
    });
    // exsend blocks until the buffer layer has packetised the message (the
    // receive side still pipelines with the wire).
    if (prof.blocking_send) co_await sim().delay_until(e1);
    emit_send_end();
    co_return;
  }

  if (prof.via_daemon && route_direct_) {
    // PvmRouteDirect: task-to-task TCP, no daemons, no fragment/ack wire
    // protocol; the send stays asynchronous (buffer handed to the kernel).
    Runtime* rt = &rt_;
    Payload frame = msg.data;
    rt_.kernel_transfer(rank_, dst, n, std::move(frame),
                        [rt, dst, msg = std::move(msg)](sim::TimePoint t2) mutable {
                          rt->deliver_at(t2, dst, std::move(msg));
                        },
                        std::nullopt, trace_id);
    emit_send_end();
    co_return;
  }

  if (prof.via_daemon) {
    // Hand the buffer to the local pvmd and return (fire-and-forget). The
    // daemon chain: src pvmd -> kernel/wire -> dst pvmd -> mailbox. Each
    // daemon is busy for its full service time (contention under load) but
    // streams fragments onward, so the pipeline advances after the first
    // fragment unless the daemon -- not the wire -- is the bottleneck.
    const sim::Duration service = daemon_service(n);
    const sim::Duration latency = daemon_latency(n, service);
    const double penalty = prof.daemon_duplex_penalty;
    auto daemon_hop = [penalty](sim::SerialResource& d, sim::Simulation& s,
                                sim::Duration svc, sim::Duration lat) {
      if (d.busy_until() > s.now()) {  // backlogged: duplex thrash
        svc = sim::from_seconds(svc.seconds() * penalty);
        lat = sim::from_seconds(lat.seconds() * penalty);
      }
      return d.reserve_pipelined(svc, lat);
    };
    const sim::TimePoint d1 = daemon_hop(rt_.daemon(rank_), sim(), service, latency);
    Runtime* rt = &rt_;
    const int src_rank = rank_;
    const net::ChunkProtocol wire_protocol{.chunk_bytes = prof.daemon_fragment,
                                           .ack_bytes = 64,
                                           .turnaround = sim::microseconds(250)};
    rt_.sim().schedule_at(
        d1, [rt, src_rank, dst, n, service, latency, daemon_hop, wire_protocol,
             trace_id, msg = std::move(msg)]() mutable {
          Payload frame = msg.data;
          rt->kernel_transfer(
              src_rank, dst, n, std::move(frame),
              [rt, dst, service, latency, daemon_hop, msg = std::move(msg)](
                  sim::TimePoint) mutable {
                const sim::TimePoint d2 =
                    daemon_hop(rt->daemon(dst), rt->sim(), service, latency);
                rt->deliver_at(d2, dst, std::move(msg));
              },
              wire_protocol, trace_id);
        });
    emit_send_end();
    co_return;  // pvm_send does not wait for the wire
  }

  // Direct route (p4, Express).
  Runtime* rt = &rt_;
  const bool background = prof.recv_in_background;
  const double recv_copies = prof.recv_copies;
  const sim::Duration per_packet_recv = packets_for(n) * prof.per_packet_recv;
  Payload frame = msg.data;
  const sim::TimePoint t1 = rt_.kernel_transfer(
      rank_, dst, n, std::move(frame),
      [rt, dst, n, background, recv_copies, per_packet_recv,
       msg = std::move(msg)](sim::TimePoint t2) mutable {
        if (background) {
          // Express buffer layer: the receive engine drains and reassembles
          // packets concurrently with the application (and the wire).
          const auto& cpu = rt->node(dst).cpu();
          const sim::Duration service =
              sim::from_seconds(recv_copies * cpu.copy(n).seconds()) + per_packet_recv;
          const sim::TimePoint b = rt->rx_engine(dst).reserve(service);
          rt->deliver_at(b, dst, std::move(msg));
        } else {
          rt->deliver_at(t2, dst, std::move(msg));
        }
      },
      std::nullopt, trace_id);
  if (prof.blocking_send) co_await sim().delay_until(t1);
  emit_send_end();
}

sim::Task<Message> Communicator::recv(int src, int tag) {
  [[maybe_unused]] std::int64_t recv_begin_ns = 0;
  PDC_TRACE_BLOCK { recv_begin_ns = sim().now().ns; }
  Message m = co_await rt_.mailbox(rank_).recv(TagSourceMatch{src, tag});
  [[maybe_unused]] std::int64_t match_ns = 0;
  PDC_TRACE_BLOCK { match_ns = sim().now().ns; }
  const auto& prof = profile();
  sim::Duration post = prof.recv_fixed;
  if (!prof.recv_in_background) {
    // In-process unpack (PVM XDR decode, p4 buffer copy).
    post += sim::from_seconds(prof.recv_copies * node().cpu().copy(m.size_bytes()).seconds());
  }
  PDC_TRACE_BLOCK {
    trace::emit({.t_ns = match_ns,
                 .bytes = m.size_bytes(),
                 .aux0 = post.ns,
                 .id = m.trace_id,
                 .kind = trace::Kind::Unpack,
                 .rank = static_cast<std::int16_t>(rank_),
                 .peer = static_cast<std::int16_t>(m.src),
                 .tag = m.tag});
  }
  co_await sim().delay(post);
  PDC_TRACE_BLOCK {
    trace::emit({.t_ns = sim().now().ns,
                 .bytes = m.size_bytes(),
                 .aux0 = match_ns,
                 .aux1 = recv_begin_ns,
                 .id = m.trace_id,
                 .kind = trace::Kind::RecvEnd,
                 .rank = static_cast<std::int16_t>(rank_),
                 .peer = static_cast<std::int16_t>(m.src),
                 .tag = m.tag});
  }
  co_return m;
}

// -- collectives -------------------------------------------------------------

namespace {

/// Brackets one collective call with CollBegin/CollEnd records. Declared as
/// a coroutine local: its destructor runs when the coroutine body exits (on
/// any co_return path), which is exactly the collective's completion time
/// on this rank.
class [[maybe_unused]] CollSpan {
 public:
  CollSpan(sim::Simulation& sim, int rank, trace::CollOp op) noexcept
      : sim_(sim), rank_(rank), op_(op) {
    PDC_TRACE_BLOCK {
      armed_ = true;
      begin_ns_ = sim_.now().ns;
      trace::emit({.t_ns = begin_ns_,
                   .aux0 = static_cast<std::int64_t>(op_),
                   .kind = trace::Kind::CollBegin,
                   .rank = static_cast<std::int16_t>(rank_)});
    }
  }
  ~CollSpan() {
    PDC_TRACE_BLOCK {
      if (armed_) {
        trace::emit({.t_ns = sim_.now().ns,
                     .aux0 = static_cast<std::int64_t>(op_),
                     .aux1 = begin_ns_,
                     .kind = trace::Kind::CollEnd,
                     .rank = static_cast<std::int16_t>(rank_)});
      }
    }
  }
  CollSpan(const CollSpan&) = delete;
  CollSpan& operator=(const CollSpan&) = delete;

 private:
  sim::Simulation& sim_;
  int rank_;
  trace::CollOp op_;
  std::int64_t begin_ns_{0};
  bool armed_{false};
};

}  // namespace

sim::Task<void> Communicator::broadcast(int root, Payload& data, int tag) {
  const CollSpan span(sim(), rank_, trace::CollOp::Broadcast);
  const int p = size();
  if (p == 1) co_return;
  const auto& prof = profile();
  if (rank_ == root && !data) data = empty_payload();

  if (prof.broadcast_algo == ToolProfile::BroadcastAlgo::SequentialFromRoot) {
    if (rank_ == root) {
      for (int i = 0; i < p; ++i) {
        if (i == root) continue;
        co_await sim().delay(prof.collective_step);
        co_await send(i, tag, data);  // shared payload: refcount bump, no clone
      }
    } else {
      Message m = co_await recv(root, tag);
      data = std::move(m.data);
    }
    co_return;
  }

  // Binomial tree (MPICH-style). Receivers adopt the incoming payload and
  // forward it as-is -- the whole tree shares one buffer in host memory
  // (the simulated copy costs are still billed per hop by send/recv).
  const int rel = (rank_ - root + p) % p;
  int mask = 1;
  while (mask < p) {
    if (rel & mask) {
      int src = rank_ - mask;
      if (src < 0) src += p;
      Message m = co_await recv(src, tag);
      data = std::move(m.data);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (rel + mask < p) {
      int dst = rank_ + mask;
      if (dst >= p) dst -= p;
      co_await sim().delay(prof.collective_step);
      co_await send(dst, tag, data);
    }
    mask >>= 1;
  }
}

sim::Task<void> Communicator::broadcast(int root, Bytes& data, int tag) {
  if (size() == 1) co_return;
  Payload pay;
  if (rank_ == root) pay = make_payload(Bytes(data));  // root keeps its buffer
  co_await broadcast(root, pay, tag);
  if (rank_ != root) data = *pay;  // copy out for the owning-buffer API
}

sim::Task<void> Communicator::barrier() {
  const CollSpan span(sim(), rank_, trace::CollOp::Barrier);
  const int p = size();
  if (p == 1) co_return;
  switch (profile().barrier_algo) {
    case ToolProfile::BarrierAlgo::Tree:
      co_await barrier_tree();
      break;
    case ToolProfile::BarrierAlgo::Coordinator:
      co_await barrier_coordinator();
      break;
    case ToolProfile::BarrierAlgo::Dissemination:
      co_await barrier_dissemination();
      break;
  }
}

sim::Task<void> Communicator::barrier_tree() {
  const int p = size();
  const auto step = profile().collective_step;
  // Fan-in to rank 0.
  int mask = 1;
  while (mask < p) {
    if (rank_ & mask) {
      co_await sim().delay(step);
      co_await send(rank_ - mask, kTagBarrier, empty_payload());
      break;
    }
    if (rank_ + mask < p) (void)co_await recv(rank_ + mask, kTagBarrier);
    mask <<= 1;
  }
  // Release fan-out from rank 0.
  mask = 1;
  while (mask < p) {
    if (rank_ & mask) {
      (void)co_await recv(rank_ - mask, kTagBarrierRelease);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (rank_ + mask < p) {
      co_await sim().delay(step);
      co_await send(rank_ + mask, kTagBarrierRelease, empty_payload());
    }
    mask >>= 1;
  }
}

sim::Task<void> Communicator::barrier_dissemination() {
  const int p = size();
  const auto step = profile().collective_step;
  const int parity = barrier_seq_++ & 1;
  for (int k = 1; k < p; k <<= 1) {
    const int to = (rank_ + k) % p;
    const int from = (rank_ - k + p) % p;  // k < p, so one +p suffices
    const int tag = kTagBarrier + 2 * k + parity;
    co_await sim().delay(step);
    co_await send(to, tag, empty_payload());
    (void)co_await recv(from, tag);
  }
}

sim::Task<void> Communicator::barrier_coordinator() {
  const int p = size();
  const auto step = profile().collective_step;
  if (rank_ != 0) {
    co_await send(0, kTagBarrier, empty_payload());
    (void)co_await recv(0, kTagBarrierRelease);
    co_return;
  }
  for (int i = 1; i < p; ++i) (void)co_await recv(kAnySource, kTagBarrier);
  for (int i = 1; i < p; ++i) {
    co_await sim().delay(step);
    co_await send(i, kTagBarrierRelease, empty_payload());
  }
}

// -- global reduction --------------------------------------------------------

namespace {

/// Combine received elements straight out of the borrowed payload span --
/// no intermediate vector.
template <typename T>
void add_into(std::vector<T>& acc, std::span<const T> other) {
  if (acc.size() != other.size()) {
    throw std::invalid_argument("global_sum: mismatched vector lengths across ranks");
  }
  for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += other[i];
}

/// Overwrite `v` in place from the payload span (capacity already there).
template <typename T>
void assign_from(std::vector<T>& v, std::span<const T> other) {
  v.assign(other.begin(), other.end());
}

}  // namespace

template <typename T>
sim::Task<void> Communicator::global_sum_impl(std::vector<T>& v) {
  const CollSpan span(sim(), rank_, trace::CollOp::GlobalSum);
  const auto& prof = profile();
  switch (prof.reduce_algo) {
    case ToolProfile::ReduceAlgo::Unsupported:
      throw ToolUnsupported(std::string(to_string(rt_.kind())) +
                            " does not provide a global reduction primitive");
    case ToolProfile::ReduceAlgo::GatherBroadcastTree:
      co_await reduce_gather_broadcast(v);
      break;
    case ToolProfile::ReduceAlgo::RecursiveDoubling:
      co_await reduce_recursive_doubling(v);
      break;
  }
}

template <typename T>
sim::Task<void> Communicator::reduce_gather_broadcast(std::vector<T>& v) {
  const int p = size();
  if (p == 1) co_return;
  const auto step = profile().collective_step;
  const auto n = static_cast<double>(v.size());

  // Binomial fan-in with element-wise combine.
  int mask = 1;
  while (mask < p) {
    if (rank_ & mask) {
      co_await sim().delay(step);
      co_await send(rank_ - mask, kTagReduce, pack_vector(v));
      break;
    }
    if (rank_ + mask < p) {
      Message m = co_await recv(rank_ + mask, kTagReduce);
      add_into(v, payload_span<T>(*m.data));
      if constexpr (std::is_floating_point_v<T>) {
        co_await compute_flops(n);
      } else {
        co_await compute_intops(n);
      }
    }
    mask <<= 1;
  }
  // Binomial broadcast of the result from rank 0.
  mask = 1;
  while (mask < p) {
    if (rank_ & mask) {
      Message m = co_await recv(rank_ - mask, kTagReduceBcast);
      assign_from(v, payload_span<T>(*m.data));
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (rank_ + mask < p) {
      co_await sim().delay(step);
      co_await send(rank_ + mask, kTagReduceBcast, pack_vector(v));
    }
    mask >>= 1;
  }
}

template <typename T>
sim::Task<void> Communicator::reduce_recursive_doubling(std::vector<T>& v) {
  const int p = size();
  if (p == 1) co_return;
  const auto step = profile().collective_step;
  const auto n = static_cast<double>(v.size());

  int pof2 = 1;
  while (pof2 * 2 <= p) pof2 *= 2;
  const int rem = p - pof2;

  // Fold the ranks beyond the largest power of two into the core.
  if (rank_ >= pof2) {
    co_await sim().delay(step);
    co_await send(rank_ - pof2, kTagReduce, pack_vector(v));
  } else if (rank_ < rem) {
    Message m = co_await recv(rank_ + pof2, kTagReduce);
    add_into(v, payload_span<T>(*m.data));
  }

  if (rank_ < pof2) {
    for (int k = 1; k < pof2; k <<= 1) {
      const int partner = rank_ ^ k;
      const int tag = kTagReduce + 2 * k;
      co_await sim().delay(step);
      co_await send(partner, tag, pack_vector(v));
      Message m = co_await recv(partner, tag);
      add_into(v, payload_span<T>(*m.data));
      if constexpr (std::is_floating_point_v<T>) {
        co_await compute_flops(n);
      } else {
        co_await compute_intops(n);
      }
    }
  }

  // Unfold: the core sends results back to the folded ranks.
  if (rank_ >= pof2) {
    Message m = co_await recv(rank_ - pof2, kTagReduceBcast);
    assign_from(v, payload_span<T>(*m.data));
  } else if (rank_ < rem) {
    co_await sim().delay(step);
    co_await send(rank_ + pof2, kTagReduceBcast, pack_vector(v));
  }
}

sim::Task<void> Communicator::global_sum(std::vector<double>& v) {
  co_await global_sum_impl(v);
}
sim::Task<void> Communicator::global_sum(std::vector<std::int32_t>& v) {
  co_await global_sum_impl(v);
}

// -- compute billing ----------------------------------------------------------

namespace {

[[maybe_unused]] void emit_compute(sim::Simulation& sim, int rank, sim::Duration d) {
  PDC_TRACE_BLOCK {
    trace::emit({.t_ns = sim.now().ns,
                 .aux0 = d.ns,
                 .kind = trace::Kind::Compute,
                 .rank = static_cast<std::int16_t>(rank)});
  }
}

}  // namespace

sim::Task<void> Communicator::compute_flops(double flops) {
  const sim::Duration d = node().cpu().compute(flops);
  emit_compute(sim(), rank_, d);
  co_await sim().delay(d);
}
sim::Task<void> Communicator::compute_intops(double ops) {
  const sim::Duration d = node().cpu().int_ops(ops);
  emit_compute(sim(), rank_, d);
  co_await sim().delay(d);
}
sim::Task<void> Communicator::compute_copy(std::int64_t bytes) {
  const sim::Duration d = node().cpu().copy(bytes);
  emit_compute(sim(), rank_, d);
  co_await sim().delay(d);
}

}  // namespace pdc::mp
