// pdceval -- the evaluated PDC tools.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

namespace pdc::mp {

/// The three message-passing tools the paper evaluates.
enum class ToolKind {
  P4,       ///< Argonne p4: thin layer over direct sockets
  Pvm,      ///< Oak Ridge PVM 3.x: pvmd daemons, XDR packing
  Express,  ///< ParaSoft Express: packetised buffer layer, Cubix model
};

[[nodiscard]] const char* to_string(ToolKind k);

[[nodiscard]] const std::vector<ToolKind>& all_tools();

/// Thrown when a primitive is not provided by a tool (e.g. PVM 3.2 has no
/// global reduction -- the paper excludes it from the global-sum benchmark).
class ToolUnsupported : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace pdc::mp
