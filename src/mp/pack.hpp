// pdceval -- payload (de)serialisation helpers.
//
// Applications move real data through the simulated tools; these helpers
// convert typed vectors and scalar streams to/from byte payloads. Native
// byte order (the simulation runs in one address space; XDR costs are
// billed in simulated time by the PVM profile, not performed).
//
// Two read paths exist. The owning one (`unpack_vector`, `Unpacker`)
// materialises fresh vectors; the zero-copy one (`payload_span`,
// `PayloadReader`) borrows typed spans straight from the immutable payload
// bytes, so the simulator's hot loops (collectives, app exchanges) never
// heap-allocate just to look at received data. Borrowed spans are valid as
// long as the payload/Message they came from is alive.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "mp/message.hpp"

namespace pdc::mp {

template <typename T>
  requires std::is_trivially_copyable_v<T>
[[nodiscard]] Payload pack_vector(std::span<const T> v) {
  Bytes b = BufferPool::local().acquire(v.size() * sizeof(T));
  if (!v.empty()) std::memcpy(b.data(), v.data(), b.size());
  return make_payload(std::move(b));
}

template <typename T>
  requires std::is_trivially_copyable_v<T>
[[nodiscard]] Payload pack_vector(const std::vector<T>& v) {
  return pack_vector(std::span<const T>(v));
}

/// Borrow the payload bytes as a typed span -- the zero-copy counterpart of
/// unpack_vector. Vector storage is new-aligned, so the front of a payload
/// is aligned for any packable T; misalignment can only arise for views at
/// an offset (see PayloadReader::get_span) and is checked there.
template <typename T>
  requires std::is_trivially_copyable_v<T>
[[nodiscard]] std::span<const T> payload_span(const Bytes& b) {
  if (b.size() % sizeof(T) != 0) {
    throw std::invalid_argument("payload_span: payload size not a multiple of element size");
  }
  if (b.empty()) return {};
  return {reinterpret_cast<const T*>(b.data()), b.size() / sizeof(T)};
}

template <typename T>
  requires std::is_trivially_copyable_v<T>
[[nodiscard]] std::vector<T> unpack_vector(const Bytes& b) {
  const auto s = payload_span<T>(b);
  return std::vector<T>(s.begin(), s.end());
}

/// Sequential writer for mixed-type headers + data. The buffer comes from
/// the thread-local BufferPool (via reserve/finish), so a sized-up Packer
/// never touches the allocator on the hot path.
class Packer {
 public:
  /// Pool-backed capacity: grab a recycled buffer big enough for `bytes`
  /// so subsequent put/put_span calls append without reallocating.
  Packer& reserve(std::size_t bytes) {
    if (bytes > buf_.capacity()) {
      Bytes grown = BufferPool::local().acquire(bytes);
      grown.resize(buf_.size());
      if (!buf_.empty()) std::memcpy(grown.data(), buf_.data(), buf_.size());
      BufferPool::local().release(std::move(buf_));
      buf_ = std::move(grown);
    }
    return *this;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  Packer& put(const T& value) {
    const auto* p = reinterpret_cast<const std::byte*>(&value);
    buf_.insert(buf_.end(), p, p + sizeof(T));
    return *this;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  Packer& put_span(std::span<const T> v) {
    put<std::uint64_t>(v.size());
    if (!v.empty()) {  // empty spans may have data() == nullptr: no arithmetic on it
      const auto* p = reinterpret_cast<const std::byte*>(v.data());
      buf_.insert(buf_.end(), p, p + v.size() * sizeof(T));
    }
    return *this;
  }

  [[nodiscard]] Payload finish() { return make_payload(std::move(buf_)); }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

 private:
  Bytes buf_;
};

namespace detail {

/// Overflow-hardened bounds check shared by the sequential readers: with
/// pos <= size as the invariant, `n > size - pos` cannot wrap, unlike the
/// naive `pos + n > size`.
inline void require_bytes(std::size_t pos, std::size_t size, std::size_t n) {
  if (n > size - pos) throw std::out_of_range("payload reader: truncated payload");
}

/// Element count `n` of size `elem` fits in the remaining bytes -- checked
/// by division so `n * elem` cannot overflow for a corrupted length prefix.
inline void require_elems(std::size_t pos, std::size_t size, std::uint64_t n,
                          std::size_t elem) {
  if (n > (size - pos) / elem) {
    throw std::out_of_range("payload reader: length prefix exceeds payload");
  }
}

}  // namespace detail

/// Sequential reader matching Packer's layout; owning reads (copies out).
class Unpacker {
 public:
  explicit Unpacker(const Bytes& b) : buf_(b) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  [[nodiscard]] T get() {
    T value;
    detail::require_bytes(pos_, buf_.size(), sizeof(T));
    std::memcpy(&value, buf_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  [[nodiscard]] std::vector<T> get_vector() {
    const auto n = get<std::uint64_t>();
    detail::require_elems(pos_, buf_.size(), n, sizeof(T));
    std::vector<T> v(static_cast<std::size_t>(n));
    if (n > 0) std::memcpy(v.data(), buf_.data() + pos_, n * sizeof(T));
    pos_ += static_cast<std::size_t>(n) * sizeof(T);
    return v;
  }

  [[nodiscard]] std::size_t remaining() const noexcept { return buf_.size() - pos_; }

 private:
  const Bytes& buf_;
  std::size_t pos_{0};
};

/// Zero-copy sequential reader matching Packer's layout: `get_span` borrows
/// typed views straight out of the payload instead of materialising
/// vectors. Construct from a Payload (shares ownership -- spans outlive the
/// Message) or from a `const Bytes&` the caller keeps alive.
class PayloadReader {
 public:
  explicit PayloadReader(const Bytes& b) : buf_(&b) {}
  explicit PayloadReader(Payload p)
      : owner_(p ? std::move(p) : empty_payload()), buf_(owner_.get()) {}
  explicit PayloadReader(const Message& m) : PayloadReader(m.data) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  [[nodiscard]] T get() {
    T value;
    detail::require_bytes(pos_, buf_->size(), sizeof(T));
    std::memcpy(&value, buf_->data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  /// Borrow the next length-prefixed array without copying. Throws if the
  /// element data is misaligned for T (a layout bug: put header fields in
  /// multiples of alignof(T) before a put_span of T).
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  [[nodiscard]] std::span<const T> get_span() {
    const auto n = get<std::uint64_t>();
    detail::require_elems(pos_, buf_->size(), n, sizeof(T));
    if (n == 0) return {};
    const std::byte* p = buf_->data() + pos_;
    if (reinterpret_cast<std::uintptr_t>(p) % alignof(T) != 0) {
      throw std::runtime_error("PayloadReader::get_span: misaligned element data");
    }
    pos_ += static_cast<std::size_t>(n) * sizeof(T);
    return {reinterpret_cast<const T*>(p), static_cast<std::size_t>(n)};
  }

  /// Owning fallback for callers that need storage (e.g. building an
  /// Image); layout-compatible with get_span.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  [[nodiscard]] std::vector<T> get_vector() {
    const auto n = get<std::uint64_t>();
    detail::require_elems(pos_, buf_->size(), n, sizeof(T));
    std::vector<T> v(static_cast<std::size_t>(n));
    if (n > 0) std::memcpy(v.data(), buf_->data() + pos_, n * sizeof(T));
    pos_ += static_cast<std::size_t>(n) * sizeof(T);
    return v;
  }

  [[nodiscard]] std::size_t remaining() const noexcept { return buf_->size() - pos_; }

 private:
  Payload owner_;  ///< null when constructed over borrowed Bytes
  const Bytes* buf_;
  std::size_t pos_{0};
};

}  // namespace pdc::mp
