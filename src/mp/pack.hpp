// pdceval -- payload (de)serialisation helpers.
//
// Applications move real data through the simulated tools; these helpers
// convert typed vectors and scalar streams to/from byte payloads. Native
// byte order (the simulation runs in one address space; XDR costs are
// billed in simulated time by the PVM profile, not performed).
#pragma once

#include <cstring>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "mp/message.hpp"

namespace pdc::mp {

template <typename T>
  requires std::is_trivially_copyable_v<T>
[[nodiscard]] Payload pack_vector(std::span<const T> v) {
  Bytes b(v.size() * sizeof(T));
  if (!v.empty()) std::memcpy(b.data(), v.data(), b.size());
  return make_payload(std::move(b));
}

template <typename T>
  requires std::is_trivially_copyable_v<T>
[[nodiscard]] Payload pack_vector(const std::vector<T>& v) {
  return pack_vector(std::span<const T>(v));
}

template <typename T>
  requires std::is_trivially_copyable_v<T>
[[nodiscard]] std::vector<T> unpack_vector(const Bytes& b) {
  if (b.size() % sizeof(T) != 0) {
    throw std::invalid_argument("unpack_vector: payload size not a multiple of element size");
  }
  std::vector<T> v(b.size() / sizeof(T));
  if (!v.empty()) std::memcpy(v.data(), b.data(), b.size());
  return v;
}

/// Sequential writer for mixed-type headers + data.
class Packer {
 public:
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  Packer& put(const T& value) {
    const auto* p = reinterpret_cast<const std::byte*>(&value);
    buf_.insert(buf_.end(), p, p + sizeof(T));
    return *this;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  Packer& put_span(std::span<const T> v) {
    put<std::uint64_t>(v.size());
    const auto* p = reinterpret_cast<const std::byte*>(v.data());
    buf_.insert(buf_.end(), p, p + v.size() * sizeof(T));
    return *this;
  }

  [[nodiscard]] Payload finish() { return make_payload(std::move(buf_)); }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Sequential reader matching Packer's layout.
class Unpacker {
 public:
  explicit Unpacker(const Bytes& b) : buf_(b) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  [[nodiscard]] T get() {
    T value;
    require(sizeof(T));
    std::memcpy(&value, buf_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  [[nodiscard]] std::vector<T> get_vector() {
    const auto n = get<std::uint64_t>();
    require(n * sizeof(T));
    std::vector<T> v(n);
    if (n > 0) std::memcpy(v.data(), buf_.data() + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return v;
  }

  [[nodiscard]] std::size_t remaining() const noexcept { return buf_.size() - pos_; }

 private:
  void require(std::size_t n) const {
    if (pos_ + n > buf_.size()) throw std::out_of_range("Unpacker: truncated payload");
  }

  const Bytes& buf_;
  std::size_t pos_{0};
};

}  // namespace pdc::mp
