// pdceval -- messages carried by the simulated tools.
//
// Payloads are real bytes: applications serialise actual data, the runtime
// moves it between rank address spaces, and tests verify distributed
// results bit-for-bit against serial references. Payloads are shared
// (immutable) so a broadcast does not physically clone the buffer P times
// in host memory -- the *simulated* copy costs are billed by the tools.
//
// Payload storage is recycled through the thread-local BufferPool: the
// shared_ptr's owner is a PooledBytes node whose destructor hands the byte
// storage back to the pool, and the node itself (control block + Bytes
// header, fused by allocate_shared) is recycled through the pool's node
// free list. In steady state a pack -> send -> recv -> drop cycle touches
// the allocator zero times. None of this changes simulated time -- only
// host-side allocation behaviour.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "mp/buffer_pool.hpp"

namespace pdc::mp {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

using Payload = std::shared_ptr<const Bytes>;

namespace detail {

/// Owner object for pooled payloads: releases its storage back to the
/// destroying thread's pool instead of freeing it.
struct PooledBytes {
  Bytes bytes;
  explicit PooledBytes(Bytes b) noexcept : bytes(std::move(b)) {}
  ~PooledBytes() { BufferPool::local().release(std::move(bytes)); }
};

/// Stateless allocator routing allocate_shared's single fused node
/// (control block + PooledBytes) through the current thread's pool.
template <typename T>
struct NodeAllocator {
  using value_type = T;
  NodeAllocator() noexcept = default;
  template <typename U>
  NodeAllocator(const NodeAllocator<U>&) noexcept {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(BufferPool::local().allocate_node(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    BufferPool::local().deallocate_node(p, n * sizeof(T));
  }
  friend bool operator==(const NodeAllocator&, const NodeAllocator&) noexcept { return true; }
};

}  // namespace detail

/// Wrap `bytes` as an immutable shared payload. The storage (and the
/// shared_ptr node) come back through the thread-local BufferPool when the
/// last reference drops, so acquiring `bytes` via BufferPool::acquire (as
/// pack_vector and Packer do) makes the whole payload cycle allocation-free
/// in steady state.
[[nodiscard]] inline Payload make_payload(Bytes bytes) {
  auto owner = std::allocate_shared<detail::PooledBytes>(
      detail::NodeAllocator<detail::PooledBytes>{}, std::move(bytes));
  const Bytes* view = &owner->bytes;
  return Payload(std::move(owner), view);  // aliasing: share the node, expose the bytes
}

[[nodiscard]] inline Payload empty_payload() {
  // Deliberately *not* pooled: this payload outlives every thread-local
  // pool (static storage duration).
  static const Payload kEmpty = std::make_shared<const Bytes>();
  return kEmpty;
}

struct Message {
  int src{kAnySource};
  int tag{kAnyTag};
  Payload data;
  /// Trace correlation id: nonzero only while a trace capture is active on
  /// the sending rank's thread (see trace/sink.hpp). Carried end-to-end so
  /// the recv-side record pairs with the matching send and wire hops.
  std::uint64_t trace_id{0};

  [[nodiscard]] std::int64_t size_bytes() const noexcept {
    return data ? static_cast<std::int64_t>(data->size()) : 0;
  }
  [[nodiscard]] bool matches(int want_src, int want_tag) const noexcept {
    return (want_src == kAnySource || want_src == src) &&
           (want_tag == kAnyTag || want_tag == tag);
  }
};

/// The (source, tag) wildcard match every tool's recv performs, as a named
/// trivially-copyable predicate so mailbox matching never allocates.
struct TagSourceMatch {
  int src{kAnySource};
  int tag{kAnyTag};

  [[nodiscard]] bool operator()(const Message& m) const noexcept {
    return m.matches(src, tag);
  }

  /// Bucket hint for sim::Mailbox source-bucketed matching: a concrete
  /// source restricts matches to that source's bucket; a wildcard source
  /// must scan everything. The sentinel equals sim::kAnyBucket (pinned by a
  /// static_assert in runtime.hpp; spelled out here to keep this header
  /// free of the simulation kernel).
  [[nodiscard]] constexpr int bucket_key() const noexcept {
    return src == kAnySource ? std::numeric_limits<int>::min() : src;
  }
};

}  // namespace pdc::mp
