// pdceval -- messages carried by the simulated tools.
//
// Payloads are real bytes: applications serialise actual data, the runtime
// moves it between rank address spaces, and tests verify distributed
// results bit-for-bit against serial references. Payloads are shared
// (immutable) so a broadcast does not physically clone the buffer P times
// in host memory -- the *simulated* copy costs are billed by the tools.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace pdc::mp {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

using Bytes = std::vector<std::byte>;
using Payload = std::shared_ptr<const Bytes>;

[[nodiscard]] inline Payload make_payload(Bytes bytes) {
  return std::make_shared<const Bytes>(std::move(bytes));
}

[[nodiscard]] inline Payload empty_payload() {
  static const Payload kEmpty = std::make_shared<const Bytes>();
  return kEmpty;
}

struct Message {
  int src{kAnySource};
  int tag{kAnyTag};
  Payload data;

  [[nodiscard]] std::int64_t size_bytes() const noexcept {
    return data ? static_cast<std::int64_t>(data->size()) : 0;
  }
  [[nodiscard]] bool matches(int want_src, int want_tag) const noexcept {
    return (want_src == kAnySource || want_src == src) &&
           (want_tag == kAnyTag || want_tag == tag);
  }
};

/// The (source, tag) wildcard match every tool's recv performs, as a named
/// trivially-copyable predicate so mailbox matching never allocates.
struct TagSourceMatch {
  int src{kAnySource};
  int tag{kAnyTag};

  [[nodiscard]] bool operator()(const Message& m) const noexcept {
    return m.matches(src, tag);
  }
};

}  // namespace pdc::mp
