#include "mp/profile.hpp"

#include <stdexcept>

namespace pdc::mp {

const char* to_string(ToolKind k) {
  switch (k) {
    case ToolKind::P4:
      return "p4";
    case ToolKind::Pvm:
      return "PVM";
    case ToolKind::Express:
      return "Express";
  }
  return "?";
}

const std::vector<ToolKind>& all_tools() {
  static const std::vector<ToolKind> kAll = {ToolKind::Express, ToolKind::P4, ToolKind::Pvm};
  return kAll;
}

namespace {

constexpr double kReferenceClockMhz = 33.0;

[[nodiscard]] sim::Duration scaled(double us_at_ref, double clock_mhz) {
  return sim::from_seconds(us_at_ref * 1e-6 * kReferenceClockMhz / clock_mhz);
}

/// Express's SUN port was its weakest; the Alpha and SP-1 (Cubix-era)
/// native ports were markedly better tuned. p4 and PVM were portable Unix
/// code with roughly uniform quality.
[[nodiscard]] double express_port_quality(host::PlatformId p) {
  switch (p) {
    case host::PlatformId::AlphaFddi:
    case host::PlatformId::Sp1Switch:
    case host::PlatformId::Sp1Ethernet:
      return 0.55;
    default:
      return 1.0;
  }
}

}  // namespace

ToolProfile tool_profile(ToolKind kind, host::PlatformId platform) {
  const auto& spec = host::platform_spec(platform);
  const double mhz = spec.cpu.clock_mhz;
  ToolProfile p;
  switch (kind) {
    case ToolKind::P4:
      p.send_fixed = scaled(300, mhz);
      p.recv_fixed = scaled(250, mhz);
      p.send_copies = 1.0;
      p.recv_copies = 0.6;
      p.blocking_send = true;
      p.collective_step = scaled(220, mhz);
      p.broadcast_algo = ToolProfile::BroadcastAlgo::BinomialTree;
      p.barrier_algo = ToolProfile::BarrierAlgo::Tree;
      p.reduce_algo = ToolProfile::ReduceAlgo::GatherBroadcastTree;
      return p;

    case ToolKind::Pvm:
      p.send_fixed = scaled(380, mhz);  // pvm_initsend + pack dispatch
      p.recv_fixed = scaled(320, mhz);
      p.send_copies = 0.9;  // XDR encode
      p.recv_copies = 0.5;  // XDR decode degenerates to a copy (homogeneous cluster)
      p.via_daemon = true;
      p.daemon_fixed = scaled(900, mhz);
      p.daemon_copies = 0.5;  // Unix-domain IPC copy into pvmd
      p.daemon_fragment = 4096;
      p.daemon_per_fragment = scaled(800, mhz);
      p.daemon_duplex_penalty = 2.5;
      p.blocking_send = false;  // pvm_send returns once pvmd has the buffer
      p.collective_step = scaled(420, mhz);
      p.broadcast_algo = ToolProfile::BroadcastAlgo::SequentialFromRoot;  // pvm_mcast
      p.barrier_algo = ToolProfile::BarrierAlgo::Coordinator;             // pvm_barrier
      p.reduce_algo = ToolProfile::ReduceAlgo::Unsupported;
      return p;

    case ToolKind::Express: {
      const double q = express_port_quality(platform);
      p.send_fixed = scaled(480 * q, mhz);
      p.recv_fixed = scaled(360 * q, mhz);
      p.send_copies = 1.1;
      p.recv_copies = 1.1;
      p.recv_in_background = true;  // buffer layer drains the wire itself
      p.send_in_background = true;  // ... and packetises outbound buffers
      p.blocking_send = true;       // exsend returns once packetisation completes
      p.packet_bytes = 1024;
      p.per_packet_send = scaled(600 * q, mhz);
      p.per_packet_recv = scaled(600 * q, mhz);
      p.collective_step = scaled(300 * q, mhz);
      p.broadcast_algo = ToolProfile::BroadcastAlgo::SequentialFromRoot;
      p.barrier_algo = ToolProfile::BarrierAlgo::Dissemination;    // exsync
      p.reduce_algo = ToolProfile::ReduceAlgo::RecursiveDoubling;  // excombine
      return p;
    }
  }
  throw std::logic_error("tool_profile: unknown tool");
}

}  // namespace pdc::mp
